// Command scaddar is a command-line front end to the SCADDAR library:
// locate blocks through a scaling history, check the randomness budget,
// simulate load balance, size reorganization plans, run full online server
// scenarios, and serve the whole thing as a live HTTP service.
//
// Usage:
//
//	scaddar locate   -n0 8 -ops add:2,remove:1+3 -seed 42 -block 17
//	scaddar bound    -bits 32 -eps 0.05 -disks 8
//	scaddar balance  -n0 4 -adds 8 -objects 20 -blocks 1000 -bits 32
//	scaddar plan     -n0 8 -objects 20 -blocks 1000 [-add 2 | -remove 1+3]
//	scaddar simulate -n0 8 -load 0.6 -add-at 20 -add 2 -rounds 100
//	scaddar serve    -addr 127.0.0.1:8080 -n0 8 -round 100ms
//	scaddar loadgen  -addr http://127.0.0.1:8080 -clients 8 -scale-at 3s
//
// The -ops grammar is a comma-separated list of "add:K" (add K disks) and
// "remove:I+J+..." (remove logical disks I, J, ...).
package main

import (
	"os"

	"scaddar/internal/cli"
)

func main() {
	os.Exit(cli.Run(os.Args[1:], os.Stdout, os.Stderr))
}
