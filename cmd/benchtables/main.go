// Command benchtables regenerates every table and figure of the SCADDAR
// paper's evaluation from the simulator in this repository and prints them
// as aligned text tables.
//
// Usage:
//
//	benchtables             # run all experiments
//	benchtables -exp e2,e4  # run a subset
//
// Experiment IDs: e1 (Figure 1 naive skew), e2 (Section 5 load balance),
// e3 (RO1 movement fractions), e4 (Section 4.3 bound table), e5 (AO1 access
// cost), e6 (unfairness bound), e7 (online reorganization), e8 (fault
// tolerance: mirroring vs parity), e9 (metadata storage: directory vs log),
// e10 (round scheduling), e11 (heterogeneous arrays), e12 (generator quality), e13 (block buffer).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"scaddar/internal/experiments"
)

// runner produces one experiment table.
type runner func() (*experiments.Table, error)

func main() {
	expFlag := flag.String("exp", "all", "comma-separated experiment IDs (e1..e10) or 'all'")
	format := flag.String("format", "text", "output format: text or csv")
	flag.Parse()
	if *format != "text" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "benchtables: unknown format %q\n", *format)
		os.Exit(2)
	}

	runners := map[string]runner{
		"e1": func() (*experiments.Table, error) {
			r, err := experiments.RunE1(experiments.DefaultE1())
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		},
		"e2": func() (*experiments.Table, error) {
			r, err := experiments.RunE2(experiments.DefaultE2())
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		},
		"e3": func() (*experiments.Table, error) {
			r, err := experiments.RunE3(experiments.DefaultE3())
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		},
		"e4": func() (*experiments.Table, error) {
			r, err := experiments.RunE4()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		},
		"e5": func() (*experiments.Table, error) {
			r, err := experiments.RunE5(experiments.DefaultE5())
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		},
		"e6": func() (*experiments.Table, error) {
			r, err := experiments.RunE6(experiments.DefaultE6())
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		},
		"e7": func() (*experiments.Table, error) {
			r, err := experiments.RunE7(experiments.DefaultE7())
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		},
		"e8": func() (*experiments.Table, error) {
			r, err := experiments.RunE8(experiments.DefaultE8())
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		},
		"e9": func() (*experiments.Table, error) {
			r, err := experiments.RunE9(experiments.DefaultE9())
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		},
		"e10": func() (*experiments.Table, error) {
			r, err := experiments.RunE10(experiments.DefaultE10())
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		},
		"e11": func() (*experiments.Table, error) {
			r, err := experiments.RunE11(experiments.DefaultE11())
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		},
		"e12": func() (*experiments.Table, error) {
			r, err := experiments.RunE12(experiments.DefaultE12())
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		},
		"e13": func() (*experiments.Table, error) {
			r, err := experiments.RunE13(experiments.DefaultE13())
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		},
	}
	order := []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13"}

	var selected []string
	if *expFlag == "all" {
		selected = order
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(strings.ToLower(id))
			if _, ok := runners[id]; !ok {
				fmt.Fprintf(os.Stderr, "benchtables: unknown experiment %q (have %s)\n", id, strings.Join(order, ", "))
				os.Exit(2)
			}
			selected = append(selected, id)
		}
	}

	for _, id := range selected {
		tbl, err := runners[id]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtables: %s: %v\n", id, err)
			os.Exit(1)
		}
		if *format == "csv" {
			fmt.Print(tbl.RenderCSV())
		} else {
			fmt.Println(tbl.Render())
		}
	}
}
