package scaddar_test

// End-to-end tests of the public facade: everything a downstream user would
// touch, exercised through the root package only.

import (
	"testing"

	"scaddar"
)

func TestFacadeHistoryAndLocator(t *testing.T) {
	hist, err := scaddar.NewHistory(8)
	if err != nil {
		t.Fatal(err)
	}
	loc, err := scaddar.NewLocator(hist, func(seed uint64) scaddar.Source {
		return scaddar.NewSplitMix64(seed)
	})
	if err != nil {
		t.Fatal(err)
	}
	before := make([]int, 100)
	for i := range before {
		d, err := loc.Disk(42, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		before[i] = d
	}
	if _, err := hist.Add(2); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := range before {
		d, err := loc.Disk(42, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if d != before[i] {
			moved++
			if d < 8 {
				t.Fatalf("block %d moved to old disk %d", i, d)
			}
		}
	}
	if moved == 0 || moved > 40 {
		t.Fatalf("moved %d of 100 blocks, want ~20", moved)
	}
}

func TestFacadeBudgetAndRuleOfThumb(t *testing.T) {
	if got := scaddar.RuleOfThumb(64, 0.01, 16); got != 13 {
		t.Fatalf("RuleOfThumb = %d, want 13", got)
	}
	b, err := scaddar.NewBudget(32, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !b.WithinTolerance(0.05) {
		t.Fatal("fresh budget out of tolerance")
	}
	exact, err := scaddar.MaxOpsExact(32, 8, 0.05, func(int) int { return 8 }, 100)
	if err != nil || exact != 8 {
		t.Fatalf("MaxOpsExact = %d, %v", exact, err)
	}
}

func TestFacadeDiskArray(t *testing.T) {
	a, err := scaddar.NewDiskArray(6)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Remove(scaddar.DiskID(4)); err != nil {
		t.Fatal(err)
	}
	// The paper's worked example through the public API.
	if got := a.Locate(28); got != scaddar.DiskID(5) {
		t.Fatalf("Locate(28) = %d, want physical disk 5", got)
	}
}

func TestFacadeStrategies(t *testing.T) {
	x0 := scaddar.NewX0Func(func(seed uint64) scaddar.Source {
		return scaddar.NewSplitMix64(seed)
	})
	strategies := []scaddar.Strategy{}
	if s, err := scaddar.NewScaddarStrategy(8, x0); err == nil {
		strategies = append(strategies, s)
	} else {
		t.Fatal(err)
	}
	if s, err := scaddar.NewNaiveStrategy(8, x0); err == nil {
		strategies = append(strategies, s)
	} else {
		t.Fatal(err)
	}
	if s, err := scaddar.NewReshuffleStrategy(8, x0); err == nil {
		strategies = append(strategies, s)
	} else {
		t.Fatal(err)
	}
	if s, err := scaddar.NewRoundRobinStrategy(8); err == nil {
		strategies = append(strategies, s)
	} else {
		t.Fatal(err)
	}
	if s, err := scaddar.NewDirectoryStrategy(8, scaddar.NewSplitMix64(3)); err == nil {
		strategies = append(strategies, s)
	} else {
		t.Fatal(err)
	}
	if s, err := scaddar.NewConsistentStrategy(8, 64); err == nil {
		strategies = append(strategies, s)
	} else {
		t.Fatal(err)
	}
	for _, s := range strategies {
		if err := s.AddDisks(1); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		d := s.Disk(scaddar.BlockRef{Seed: 9, Index: 3})
		if d < 0 || d >= s.N() {
			t.Fatalf("%s: disk %d out of range", s.Name(), d)
		}
	}
}

func TestFacadeServerLifecycle(t *testing.T) {
	x0 := scaddar.NewX0Func(func(seed uint64) scaddar.Source {
		return scaddar.NewSplitMix64(seed)
	})
	strat, err := scaddar.NewScaddarStrategy(6, x0)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := scaddar.NewServer(scaddar.DefaultServerConfig(), strat)
	if err != nil {
		t.Fatal(err)
	}
	cfg := scaddar.DefaultLibraryConfig()
	cfg.Objects = 5
	cfg.MinBlocks, cfg.MaxBlocks = 200, 200
	lib, err := scaddar.Library(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, obj := range lib {
		if err := srv.AddObject(obj); err != nil {
			t.Fatal(err)
		}
	}
	st, err := srv.StartStream(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.ScaleUp(2); err != nil {
		t.Fatal(err)
	}
	for srv.Reorganizing() {
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.FinishReorganization(); err != nil {
		t.Fatal(err)
	}
	for st.State == 0 { // StreamPlaying
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if srv.Metrics().Hiccups != 0 {
		t.Fatalf("hiccups: %d", srv.Metrics().Hiccups)
	}
	if err := srv.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
	if cov := scaddar.CoV(srv.Array().Loads()); cov > 0.15 {
		t.Fatalf("CoV %.4f", cov)
	}
	if _, err := scaddar.Unfairness(srv.Array().Loads()); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeMirrorAndHetero(t *testing.T) {
	x0 := scaddar.NewX0Func(func(seed uint64) scaddar.Source {
		return scaddar.NewSplitMix64(seed)
	})
	strat, err := scaddar.NewScaddarStrategy(6, x0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := scaddar.NewMirrored(strat, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, mir, err := m.Locate(scaddar.BlockRef{Seed: 1, Index: 2})
	if err != nil || p == mir {
		t.Fatalf("mirror locate: %d %d %v", p, mir, err)
	}

	mapping, err := scaddar.NewHeteroMapping([]scaddar.HeteroPhysical{
		{ID: 0, Profile: scaddar.ProfileCheetah73},
		{ID: 1, Profile: scaddar.ProfileCheetah73},
	})
	if err != nil {
		t.Fatal(err)
	}
	if mapping.Logicals() != 2 {
		t.Fatalf("logicals = %d", mapping.Logicals())
	}
}

func TestFacadeWorkload(t *testing.T) {
	z, err := scaddar.NewZipf(scaddar.NewPCG32(1), 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d := z.Draw(); d < 0 || d >= 10 {
		t.Fatalf("zipf draw %d", d)
	}
	p, err := scaddar.NewPoisson(scaddar.NewXorshift64Star(1), 2)
	if err != nil {
		t.Fatal(err)
	}
	if iv := p.NextInterval(); iv < 0 {
		t.Fatalf("interval %v", iv)
	}
	if src := scaddar.Truncate(scaddar.NewSplitMix64(1), 32); src.Bits() != 32 {
		t.Fatal("truncate width")
	}
}
