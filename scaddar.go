// Package scaddar is a complete Go implementation of SCADDAR — "SCAling
// Disks for Data Arranged Randomly" (Goel, Shahabi, Yao, Zimmermann; USC TR
// 742 / ICDE 2002) — together with the continuous-media-server substrate the
// paper assumes and every baseline it compares against.
//
// SCADDAR places the blocks of continuous-media objects pseudo-randomly over
// a disk array and, when disks are added or removed, remaps block locations
// with a chain of cheap mod/div REMAP functions so that (RO1) only the
// minimum number of blocks move, (RO2) placement stays uniformly random and
// the load balanced, and (AO1) any block's location is computable online
// from its object's seed and the operation log alone — no directory.
//
// # Quick start
//
//	hist, _ := scaddar.NewHistory(8)            // 8 disks initially
//	loc, _ := scaddar.NewLocator(hist, func(seed uint64) scaddar.Source {
//		return scaddar.NewSplitMix64(seed)
//	})
//	disk, _ := loc.Disk(objectSeed, blockIndex)  // before scaling
//	hist.Add(2)                                  // grow to 10 disks
//	disk, _ = loc.Disk(objectSeed, blockIndex)   // after scaling: O(j) math
//
// For a full online server — admission control, round-based retrieval,
// throttled reorganization — see NewServer and the examples/ directory. The
// internal packages remain importable inside this module; this package
// re-exports the surface a downstream user needs.
package scaddar

import (
	"bufio"
	"io"
	"os"

	"scaddar/internal/binproto"
	"scaddar/internal/cluster"
	"scaddar/internal/cm"
	"scaddar/internal/dataplane"
	"scaddar/internal/disk"
	"scaddar/internal/fsio"
	"scaddar/internal/gateway"
	"scaddar/internal/hetero"
	"scaddar/internal/mirror"
	"scaddar/internal/obs"
	"scaddar/internal/parity"
	"scaddar/internal/placement"
	"scaddar/internal/prng"
	"scaddar/internal/reorg"
	"scaddar/internal/repl"
	"scaddar/internal/scaddar"
	"scaddar/internal/stats"
	"scaddar/internal/store"
	"scaddar/internal/trace"
	"scaddar/internal/workload"
)

// ---- Core algorithm (internal/scaddar) ----

// History is the ordered log of scaling operations — SCADDAR's only
// persistent state besides per-object seeds.
type History = scaddar.History

// Op is one recorded scaling operation.
type Op = scaddar.Op

// OpKind distinguishes additions from removals.
type OpKind = scaddar.OpKind

// Scaling operation kinds.
const (
	OpAdd    = scaddar.OpAdd
	OpRemove = scaddar.OpRemove
)

// DiskArray couples a History with stable physical disk identities.
type DiskArray = scaddar.Array

// DiskID is a stable physical disk identity.
type DiskID = scaddar.DiskID

// Budget tracks the shrinking random range (Section 4.3 analysis).
type Budget = scaddar.Budget

// Locator is the complete access function AF(): seed + block index + log →
// disk.
type Locator = scaddar.Locator

// CompiledChain is a History's REMAP chain lowered to straight-line
// arithmetic: per-operation multiply-shift reciprocals replace every div/mod
// and flat survivor-rank tables replace the per-removal scan, so Locate,
// Final, Moved, and LocateBatch run allocation-free. Obtain one with
// History.Compile; it caches per history version and is invalidated (and
// transparently recompiled) when the history records another operation.
type CompiledChain = scaddar.CompiledChain

// SourceFactory builds the per-object generator p_r(s_m).
type SourceFactory = scaddar.SourceFactory

// NewHistory creates a History for an array of n0 disks.
func NewHistory(n0 int) (*History, error) { return scaddar.NewHistory(n0) }

// MustNewHistory is NewHistory for statically valid arguments; it panics on
// error.
func MustNewHistory(n0 int) *History { return scaddar.MustNewHistory(n0) }

// NewDiskArray creates an Array of n0 disks with physical IDs 0..n0-1.
func NewDiskArray(n0 int) (*DiskArray, error) { return scaddar.NewArray(n0) }

// NewBudget creates a randomness budget for a b-bit generator and n0 disks.
func NewBudget(bits uint, n0 int) (*Budget, error) { return scaddar.NewBudget(bits, n0) }

// NewLocator binds a History to per-object pseudo-random sequences.
func NewLocator(hist *History, factory SourceFactory) (*Locator, error) {
	return scaddar.NewLocator(hist, factory)
}

// SafeLocator is a Locator whose lookups are safe for concurrent use (the
// access pattern of parallel stream handlers); scaling operations must
// still be serialized externally.
type SafeLocator = scaddar.SafeLocator

// NewSafeLocator creates a concurrency-safe locator over the given history.
func NewSafeLocator(hist *History, factory SourceFactory) (*SafeLocator, error) {
	return scaddar.NewSafeLocator(hist, factory)
}

// RuleOfThumb estimates the number of supportable scaling operations for a
// b-bit generator, an average array size, and unfairness tolerance eps
// (Section 4.3: k+1 <= (b - log2(1/eps)) / log2 N̄).
func RuleOfThumb(bits uint, eps float64, avgDisks float64) int {
	return scaddar.RuleOfThumb(bits, eps, avgDisks)
}

// MaxOpsExact simulates the exact Lemma 4.3 precondition for a disk-count
// trajectory.
func MaxOpsExact(bits uint, n0 int, eps float64, disksAfterOp func(j int) int, maxOps int) (int, error) {
	return scaddar.MaxOpsExact(bits, n0, eps, disksAfterOp, maxOps)
}

// PlannedOp is one future scaling operation for ForecastPlan.
type PlannedOp = scaddar.PlannedOp

// Forecast is a capacity-planning evaluation of future operations.
type Forecast = scaddar.Forecast

// ForecastPlan predicts per-operation movement (z_j), cumulative I/O, and
// the randomness-budget trajectory for a planned operation sequence,
// flagging where a complete redistribution becomes necessary.
func ForecastPlan(hist *History, bits uint, eps float64, plan []PlannedOp) (*Forecast, error) {
	return scaddar.ForecastPlan(hist, bits, eps, plan)
}

// ---- Pseudo-random generators (internal/prng) ----

// Source is a deterministic b-bit pseudo-random stream.
type Source = prng.Source

// Indexed is a Source with O(1) access to its i-th value.
type Indexed = prng.Indexed

// NewSplitMix64 returns the default counter-based 64-bit generator.
func NewSplitMix64(seed uint64) *prng.SplitMix64 { return prng.NewSplitMix64(seed) }

// NewPCG32 returns a sequential 32-bit generator (the paper's b=32 setting).
func NewPCG32(seed uint64) *prng.PCG32 { return prng.NewPCG32(seed) }

// NewXorshift64Star returns a sequential 64-bit generator.
func NewXorshift64Star(seed uint64) *prng.Xorshift64Star { return prng.NewXorshift64Star(seed) }

// Truncate adapts a Source to a b-bit output width.
func Truncate(src Source, bits uint) Source { return prng.Truncate(src, bits) }

// ---- Placement strategies (internal/placement) ----

// BlockRef identifies a block by object seed and index.
type BlockRef = placement.BlockRef

// Strategy is a pluggable block-placement scheme.
type Strategy = placement.Strategy

// X0Func supplies a block's original random number.
type X0Func = placement.X0Func

// NewX0Func memoizes per-object sequences over a generator factory.
func NewX0Func(factory func(seed uint64) Source) X0Func { return placement.NewX0Func(factory) }

// NewScaddarStrategy creates the paper's placement scheme.
func NewScaddarStrategy(n0 int, x0 X0Func) (*placement.Scaddar, error) {
	return placement.NewScaddar(n0, x0)
}

// NewNaiveStrategy creates the Section 4.1 baseline (skews after 2 ops).
func NewNaiveStrategy(n0 int, x0 X0Func) (*placement.Naive, error) {
	return placement.NewNaive(n0, x0)
}

// NewReshuffleStrategy creates the complete-redistribution baseline.
func NewReshuffleStrategy(n0 int, x0 X0Func) (*placement.Reshuffle, error) {
	return placement.NewReshuffle(n0, x0)
}

// NewRoundRobinStrategy creates the constrained striping baseline.
func NewRoundRobinStrategy(n0 int) (*placement.RoundRobin, error) {
	return placement.NewRoundRobin(n0)
}

// NewDirectoryStrategy creates the Appendix A directory baseline.
func NewDirectoryStrategy(n0 int, src Source) (*placement.Directory, error) {
	return placement.NewDirectory(n0, src)
}

// NewConsistentStrategy creates a consistent-hashing comparator.
func NewConsistentStrategy(n0, vnodes int) (*placement.Consistent, error) {
	return placement.NewConsistent(n0, vnodes)
}

// NewJumpStrategy creates a jump-consistent-hashing comparator (grow and
// tail-shrink only — arbitrary disk retirement needs SCADDAR's removal
// REMAP).
func NewJumpStrategy(n0 int, x0 X0Func) (*placement.Jump, error) {
	return placement.NewJump(n0, x0)
}

// ---- Continuous-media server (internal/cm, internal/disk, internal/reorg) ----

// Server is the online continuous-media server simulator.
type Server = cm.Server

// ServerConfig fixes round length, disk profile, block size, and admission
// target.
type ServerConfig = cm.Config

// Stream is one playback session.
type Stream = cm.Stream

// ServerMetrics aggregates server activity.
type ServerMetrics = cm.Metrics

// DiskProfile describes a disk model.
type DiskProfile = disk.Profile

// Disk profiles of the paper's hardware era plus a modern comparator.
var (
	ProfileCheetah73    = disk.Cheetah73
	ProfileBarracuda180 = disk.Barracuda180
	ProfileModern       = disk.Modern
)

// Plan is an executable block-movement plan for one scaling operation.
type Plan = reorg.Plan

// DefaultServerConfig returns a paper-era server configuration.
func DefaultServerConfig() ServerConfig { return cm.DefaultConfig() }

// NewServer creates a continuous-media server over a placement strategy.
func NewServer(cfg ServerConfig, strat Strategy) (*Server, error) { return cm.NewServer(cfg, strat) }

// ---- Network gateway (internal/gateway) ----

// Gateway is the concurrent HTTP front end over one server: a wall-clock
// round driver owns the server, control operations serialize through a
// bounded command mailbox, and block lookups run lock-free against an
// atomically republished locator snapshot.
type Gateway = gateway.Gateway

// GatewayConfig tunes the gateway around a server.
type GatewayConfig = gateway.Config

// GatewayStatus is the owner-published status view (the /v1/status body).
type GatewayStatus = gateway.Status

// LocatorSnapshot is an immutable, concurrency-safe view of the server's
// block placement, including in-flight migration state.
type LocatorSnapshot = cm.LocatorSnapshot

// NewGateway wraps a server (objects already loaded) in a gateway and
// starts its round driver. The gateway takes ownership of the server.
func NewGateway(srv *Server, cfg GatewayConfig) (*Gateway, error) { return gateway.New(srv, cfg) }

// ---- Binary lookup protocol (internal/binproto) ----

// BinClient is a persistent, pipelining client connection for the binary
// lookup protocol specified in docs/PROTOCOL.md. Safe for concurrent use.
type BinClient = binproto.Client

// BinClientConfig tunes DialBin.
type BinClientConfig = binproto.ClientConfig

// BinClientPool is a fixed set of BinClient connections handed out
// round-robin, for callers that want more than one pipe per server.
type BinClientPool = binproto.Pool

// BinResult is one lookup's outcome within a LocateBatch response.
type BinResult = binproto.Result

// BlockAddr names one block of one catalog object, the unit a batched
// lookup request carries.
type BlockAddr = cm.BlockAddr

// BinEpochInfo is the answer to a binary epoch probe.
type BinEpochInfo = binproto.EpochInfo

// BinServerConfig tunes a standalone binary protocol server; most callers
// should use Gateway.ServeBin instead, which wires the gateway's snapshot,
// registry, and lifecycle in automatically.
type BinServerConfig = binproto.ServerConfig

// DialBin connects and handshakes with a binary lookup listener (started
// with Gateway.ServeBin or the serve -bin-addr / cluster -bin flags).
func DialBin(addr string, cfg BinClientConfig) (*BinClient, error) { return binproto.Dial(addr, cfg) }

// DialBinPool opens size binary protocol connections to one address.
func DialBinPool(addr string, size int, cfg BinClientConfig) (*BinClientPool, error) {
	return binproto.DialPool(addr, size, cfg)
}

// ---- Observability (internal/obs) ----

// MetricsRegistry is a typed registry of lock-free counters, gauges, and
// fixed-bucket histograms with Prometheus text exposition. Registration is
// idempotent: asking for an existing name (with the same type) returns the
// same cell, so a recovered server can adopt the registry of the instance
// it replaces.
type MetricsRegistry = obs.Registry

// Counter is a monotonically increasing metric cell. All methods are safe
// for concurrent use and allocation-free.
type Counter = obs.Counter

// Gauge is a set-to-current-value metric cell holding a float64.
type Gauge = obs.Gauge

// Histogram is a fixed-bucket histogram; Observe is lock-free and
// allocation-free, suitable for request hot paths.
type Histogram = obs.Histogram

// HistogramSnapshot is a point-in-time copy of a histogram with quantile
// estimation, merging, and mean.
type HistogramSnapshot = obs.HistogramSnapshot

// TraceRing is a bounded, overwrite-oldest ring of trace spans; attach one
// to a gateway (GatewayConfig.TraceRing) or a store to record the server's
// event history.
type TraceRing = obs.Ring

// TraceSpan is one recorded span: a durable server event with its round,
// object, disk, and payload size.
type TraceSpan = obs.Span

// MetricSample is one parsed sample from a Prometheus text exposition.
type MetricSample = obs.Sample

// MetricSet indexes parsed samples by name and label for assertions and
// scraping clients, including histogram reconstruction.
type MetricSet = obs.MetricSet

// NewMetricsRegistry returns an empty metrics registry. Pass it as
// GatewayConfig.Registry to share one across components or expose it on a
// debug listener.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewTraceRing returns a trace ring holding the most recent capacity spans.
func NewTraceRing(capacity int) *TraceRing { return obs.NewRing(capacity) }

// NewMetricSet wraps parsed samples for name/label lookup.
func NewMetricSet(samples []MetricSample) *MetricSet { return obs.NewMetricSet(samples) }

// ParseMetricsText parses a Prometheus text-format exposition (the
// /v1/metrics body) into samples.
func ParseMetricsText(r io.Reader) ([]MetricSample, error) { return obs.ParseText(r) }

// LatencyBuckets returns the exponential bucket bounds (in seconds) the
// built-in latency histograms use, from 10µs to ~80s.
func LatencyBuckets() []float64 { return obs.LatencyBuckets() }

// ExpBuckets returns n exponentially spaced histogram bucket bounds
// starting at lo, each factor times the previous.
func ExpBuckets(lo, factor float64, n int) []float64 { return obs.ExpBuckets(lo, factor, n) }

// ServerEventSpan converts a journaled server event to the trace span the
// live event stream and crash-recovery replay both record, so a replayed
// history retraces identically.
func ServerEventSpan(ev ServerEvent) TraceSpan { return cm.EventSpan(ev) }

// ---- Durable state (internal/store, internal/fsio) ----

// Store is the durable state store: every server mutation is journaled to a
// CRC-framed write-ahead log, periodic checkpoints serialize the full
// metadata, and recovery restores the newest checkpoint then replays the
// journal tail — truncating at the first torn or corrupt record. This is the
// paper's "storage structure for recording scaling operations" made
// crash-safe: the journal persists exactly the operation log plus object
// seeds that SCADDAR needs, never a block directory.
type Store = store.Store

// StoreConfig locates and tunes a durable state directory.
type StoreConfig = store.Config

// StoreStatus is a point-in-time view of journal health and position.
type StoreStatus = store.Status

// RecoveryInfo reports what recovery found: checkpoint LSN, events
// replayed, and any torn tail or dropped files.
type RecoveryInfo = store.RecoveryInfo

// ServerEvent is one journaled state-changing server event.
type ServerEvent = cm.Event

// EventSink receives server events as they are committed.
type EventSink = cm.EventSink

// Durable-store sentinel errors.
var (
	ErrNoCheckpoint = store.ErrNoCheckpoint
	ErrStoreCorrupt = store.ErrCorrupt
)

// OpenStore opens (or, unless read-only, creates) a durable state
// directory. Use Store.Bootstrap for a fresh server and Store.Recover to
// rebuild one after a restart or crash.
func OpenStore(cfg StoreConfig) (*Store, error) { return store.Open(cfg) }

// WriteFileAtomic writes data to path via a temp file, fsync, rename, and
// directory fsync, so a crash never leaves a torn file under the final
// name.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	return fsio.WriteFileAtomic(path, data, perm)
}

// ---- Replication (internal/repl) ----

// ReplicationLeader streams a store's journal to follower replicas over
// TCP: each follower bootstraps from the newest checkpoint and then tails
// committed records, so read capacity scales without moving or re-deriving
// any block state — only the operation log ships.
type ReplicationLeader = repl.Leader

// ReplicationLeaderConfig configures the streaming side of a leader.
type ReplicationLeaderConfig = repl.LeaderConfig

// ReplicationLeaderStatus reports the leader's followers and frontier.
type ReplicationLeaderStatus = repl.LeaderStatus

// Follower tails a leader's journal, applies events to a local replica
// server, and serves lock-free epoch-fenced reads from its own locator
// snapshot.
type Follower = repl.Follower

// FollowerConfig configures a follower replica.
type FollowerConfig = repl.FollowerConfig

// FollowerStatus reports a follower's position, lag, and connection state.
type FollowerStatus = repl.FollowerStatus

// FollowerView is a follower's immutable published read state.
type FollowerView = repl.View

// NetworkFaultInjector is a seeded TCP proxy that drops, stalls,
// truncates, and duplicates leader-to-follower traffic — the chaos
// harness's network. (FaultInjector is the disk-level injector.)
type NetworkFaultInjector = repl.FaultInjector

// NetworkFaultConfig sets the injector's target and fault rates.
type NetworkFaultConfig = repl.FaultConfig

// Replication read errors: both are retryable by design — the follower
// refuses rather than serves an answer it cannot vouch for.
var (
	// ErrEpochFenced rejects reads that would straddle a scaling operation
	// the follower has not applied yet.
	ErrEpochFenced = cm.ErrEpochFenced
	// ErrStaleRead rejects reads beyond the configured staleness budget
	// (or before the replica has bootstrapped).
	ErrStaleRead = cm.ErrStaleRead
)

// NewReplicationLeader builds the journal-streaming service over an open
// store; call Serve with a listener to accept followers.
func NewReplicationLeader(cfg ReplicationLeaderConfig) (*ReplicationLeader, error) {
	return repl.NewLeader(cfg)
}

// StartFollower connects to a leader and begins bootstrapping and tailing;
// reads are available once the first snapshot applies.
func StartFollower(cfg FollowerConfig) (*Follower, error) { return repl.StartFollower(cfg) }

// StartNetworkFaultInjector starts the chaos proxy in front of a leader
// address.
func StartNetworkFaultInjector(cfg NetworkFaultConfig) (*NetworkFaultInjector, error) {
	return repl.StartFaultInjector(cfg)
}

// ---- Fault tolerance (internal/cm fault injection, internal/disk health) ----

// Redundancy selects the server's block-protection scheme.
type Redundancy = cm.Redundancy

// Redundancy schemes: none (failures lose data), Section 6 offset
// mirroring, or hybrid parity groups.
const (
	RedundancyNone   = cm.RedundancyNone
	RedundancyMirror = cm.RedundancyMirror
	RedundancyParity = cm.RedundancyParity
)

// DiskHealth is a disk's position in the failure lifecycle.
type DiskHealth = disk.Health

// Disk health states: serving normally, failed (contents gone), or
// rebuilding onto a replacement.
const (
	DiskHealthy    = disk.Healthy
	DiskFailed     = disk.Failed
	DiskRebuilding = disk.Rebuilding
)

// FaultInjector schedules deterministic disk failures, repairs, and
// transient per-read error rates against a running server.
type FaultInjector = cm.Injector

// NewFaultInjector creates a seeded fault injector; chain FailAt, RepairAt,
// and WithTransientErrorRate to build a drill schedule, then install it
// with Server.InstallFaults.
func NewFaultInjector(seed uint64) *FaultInjector { return cm.NewInjector(seed) }

// ---- Workloads (internal/workload) ----

// Object describes one continuous-media object.
type Object = workload.Object

// LibraryConfig controls synthetic library generation.
type LibraryConfig = workload.LibraryConfig

// DefaultLibraryConfig matches the paper's Section 5 experiment scale.
func DefaultLibraryConfig() LibraryConfig { return workload.DefaultLibraryConfig() }

// Library generates a reproducible object library.
func Library(cfg LibraryConfig) ([]Object, error) { return workload.Library(cfg) }

// NewZipf creates a Zipf popularity sampler.
func NewZipf(src Source, n int, s float64) (*workload.Zipf, error) {
	return workload.NewZipf(src, n, s)
}

// NewPoisson creates a Poisson arrival process.
func NewPoisson(src Source, rate float64) (*workload.Poisson, error) {
	return workload.NewPoisson(src, rate)
}

// ---- Extensions (internal/mirror, internal/hetero) ----

// Mirrored derives primary and offset-mirror locations (Section 6).
type Mirrored = mirror.Mirrored

// NewMirrored wraps a strategy with offset mirroring; a nil offset uses the
// paper's f(N) = N/2 example.
func NewMirrored(strat Strategy, offset mirror.OffsetFunc) (*Mirrored, error) {
	return mirror.New(strat, offset)
}

// Parity derives hybrid parity/mirror protection layouts (the Section 6
// future-work idea: parity where member disks are distinct, offset mirrors
// for colliding groups — single-disk failures never lose data, at 1+1/g to
// 2x storage).
type Parity = parity.Parity

// NewParity wraps a strategy with hybrid parity groups of size g.
func NewParity(strat Strategy, g int) (*Parity, error) { return parity.New(strat, g) }

// HeteroMapping maps homogeneous logical disks onto heterogeneous physical
// disks (Section 6).
type HeteroMapping = hetero.Mapping

// HeteroPhysical describes one heterogeneous physical disk.
type HeteroPhysical = hetero.Physical

// NewHeteroMapping builds a resource-proportional logical→physical mapping.
func NewHeteroMapping(physicals []HeteroPhysical) (*HeteroMapping, error) {
	return hetero.NewMapping(physicals)
}

// ---- Session traces (internal/trace) ----

// Trace is a replayable server session (admissions, viewer actions,
// scaling operations, round ticks).
type Trace = trace.Trace

// TraceEvent is one step of a session.
type TraceEvent = trace.Event

// TraceResult summarizes a replay.
type TraceResult = trace.Result

// SessionConfig parameterizes synthetic session generation.
type SessionConfig = trace.SessionConfig

// DefaultSession is a moderate Zipf session with a mid-run scale-out.
func DefaultSession() SessionConfig { return trace.DefaultSession() }

// GenerateSession builds a reproducible synthetic session trace.
func GenerateSession(cfg SessionConfig) (*Trace, error) { return trace.GenerateSession(cfg) }

// ApplyTrace replays a trace against a freshly loaded server.
func ApplyTrace(srv *Server, tr *Trace) (*TraceResult, error) { return trace.Apply(srv, tr) }

// ---- Metrics (internal/stats) ----

// CoV returns the coefficient of variation of a load vector — the paper's
// Section 5 load-balance metric.
func CoV(loads []int) float64 { return stats.CoVInts(loads) }

// Unfairness returns (max/min - 1) of a load vector — the Section 4.3
// metric.
func Unfairness(loads []int) (float64, error) { return stats.UnfairnessInts(loads) }

// ---- Streaming data plane (internal/dataplane) ----

// PayloadManager owns per-disk segment stores under one root directory —
// the real bytes beneath the metadata simulator. Pass Manager.Factory() and
// SeededContent to Server.AttachPayloads to put byte-bearing stores under
// every disk; ingest, reorganization, and rebuild then move actual payloads.
type PayloadManager = dataplane.Manager

// PayloadOptions tunes segment-store sizing and durability.
type PayloadOptions = dataplane.Options

// StreamFrame is one decoded frame of a session's chunked stream: either a
// data frame carrying a block's bytes or the end frame carrying the close
// reason.
type StreamFrame = dataplane.Frame

// StreamCloseReason says why a session's stream ended.
type StreamCloseReason = dataplane.CloseReason

// Stream close reasons: played to completion, stopped (client or operator),
// or evicted for falling hopelessly behind the round pace.
const (
	StreamCloseDone    = dataplane.CloseDone
	StreamCloseStopped = dataplane.CloseStopped
	StreamCloseEvicted = dataplane.CloseEvicted
)

// StreamClientLocator is the client side of the snapshot+delta locator
// protocol: a local pure-function replica of the server's placement,
// refreshed by feed deltas instead of per-block server round trips.
type StreamClientLocator = dataplane.ClientLocator

// StreamLocatorSnapshot is the full locator baseline served at
// GET /v1/locator/snapshot.
type StreamLocatorSnapshot = dataplane.Snapshot

// StreamLocatorDelta is one feed entry from GET /v1/locator/deltas:
// moved-block batches during a reorganization, or a fresh snapshot at epoch
// boundaries.
type StreamLocatorDelta = dataplane.Delta

// ErrStreamSnapshotRequired reports a client locator that has fallen off
// the bounded delta feed and must re-fetch the full snapshot.
var ErrStreamSnapshotRequired = dataplane.ErrSnapshotRequired

// NewPayloadManager opens (creating if needed) the per-disk segment stores
// rooted at dir.
func NewPayloadManager(dir string, opts PayloadOptions) (*PayloadManager, error) {
	return dataplane.NewManager(dir, opts)
}

// SeededContent returns the deterministic payload oracle's bytes for block
// index of an object with the given placement seed — what ingest writes is
// what this computes, so any layer can verify a delivered chunk.
func SeededContent(seed, index uint64, blockBytes int64) []byte {
	return dataplane.SeededContent(seed, index, blockBytes)
}

// VerifySeededContent reports whether data is byte-identical to the oracle
// bytes for (seed, index).
func VerifySeededContent(data []byte, seed, index uint64) bool {
	return dataplane.VerifySeededContent(data, seed, index)
}

// ReadStreamFrame decodes the next frame from a session stream body.
func ReadStreamFrame(br *bufio.Reader) (StreamFrame, error) { return dataplane.ReadFrame(br) }

// NewStreamClientLocator creates an empty client locator; install a
// baseline with ApplySnapshot, then fold in feed deltas with Apply.
func NewStreamClientLocator(factory SourceFactory) *StreamClientLocator {
	return dataplane.NewClientLocator(factory)
}

// ---- Horizontal sharding (internal/cluster) ----

// ClusterRouter fronts K independent shard gateways with one /v1 surface:
// object-addressed requests are proxied to the shard that jump-hash owns
// the object, aggregate endpoints fan out with per-shard deadlines, and
// shard add/drain operations migrate only the minimally moved key fraction
// — SCADDAR's RO1 property applied one level up, across arrays.
type ClusterRouter = cluster.Router

// ClusterRouterConfig tunes the router: manifest path, per-shard and
// topology-operation deadlines, and the health-probe interval.
type ClusterRouterConfig = cluster.RouterConfig

// ClusterShardInfo describes one shard in the cluster manifest.
type ClusterShardInfo = cluster.ShardInfo

// ClusterManifest is the durable topology record the router journals every
// shard operation through; on restart it is the recovery contract.
type ClusterManifest = cluster.Manifest

// ClusterPendingOp marks an in-flight topology operation inside the
// manifest, so a crashed migration resumes instead of vanishing.
type ClusterPendingOp = cluster.PendingOp

// ClusterMigrationStats reports how many objects a topology operation
// moved, against the jump-hash ideal fraction.
type ClusterMigrationStats = cluster.MigrationStats

// ClusterTopologyView is the live topology document served at
// GET /v1/cluster/shards.
type ClusterTopologyView = cluster.TopologyView

// ClusterMoveResult reports a cross-shard object move (POST
// /v1/cluster/objects/{id}/move): source and destination shard, and whether
// the object is now pinned against jump-hash placement.
type ClusterMoveResult = cluster.MoveResult

// ClusterShardHeader is the response header the router stamps with the ID
// of the shard that answered a proxied request.
const ClusterShardHeader = cluster.ShardHeader

// NewClusterRouter builds a router over the manifest at cfg.ManifestPath
// (or an empty topology) and starts its health prober.
func NewClusterRouter(cfg ClusterRouterConfig) (*ClusterRouter, error) { return cluster.NewRouter(cfg) }

// ClusterRouteSlot returns the routing slot that owns an object ID among
// `buckets` shards: SplitMix64 whitening followed by jump consistent hash,
// so growing K to K+1 relocates only ~1/(K+1) of the keys.
func ClusterRouteSlot(object, buckets int) int { return cluster.RouteSlot(object, buckets) }
