package scaddar_test

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// generator family behind p_r(s_m) (counter-based vs. sequential), the
// virtual-node count of the consistent-hashing comparator, the parity group
// size of the hybrid fault-tolerance scheme, and the migration throttle.
// Domain metrics (balance, storage overhead, drain rounds) are attached via
// b.ReportMetric so `go test -bench=Ablation` reads as a study, not just a
// stopwatch.

import (
	"fmt"
	"testing"

	"scaddar/internal/cm"
	"scaddar/internal/experiments"
	"scaddar/internal/parity"
	"scaddar/internal/placement"
	"scaddar/internal/prng"
	"scaddar/internal/scaddar"
	"scaddar/internal/stats"
	"scaddar/internal/workload"
)

// BenchmarkAblationGenerator compares the access function over a
// counter-based generator (O(1) indexed access) against sequential
// generators served through the caching adapter. Block accesses are random
// within a 10k-block object, the server's actual access pattern.
func BenchmarkAblationGenerator(b *testing.B) {
	factories := []struct {
		name string
		make scaddar.SourceFactory
	}{
		{"splitmix64-indexed", func(seed uint64) prng.Source { return prng.NewSplitMix64(seed) }},
		{"pcg32-cached", func(seed uint64) prng.Source { return prng.NewPCG32(seed) }},
		{"xorshift-cached", func(seed uint64) prng.Source { return prng.NewXorshift64Star(seed) }},
	}
	for _, f := range factories {
		b.Run(f.name, func(b *testing.B) {
			hist := scaddar.MustNewHistory(8)
			hist.Add(2)
			loc, err := scaddar.NewLocator(hist, f.make)
			if err != nil {
				b.Fatal(err)
			}
			probe := prng.NewSplitMix64(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := loc.Disk(42, probe.At(uint64(i))%10000); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationVnodes sweeps the consistent-hashing virtual-node count:
// more vnodes buy balance (reported as the CoV metric) at higher lookup and
// ring-maintenance cost.
func BenchmarkAblationVnodes(b *testing.B) {
	blocks := experiments.BlockUniverse(20, 500)
	for _, vnodes := range []int{16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("vnodes=%d", vnodes), func(b *testing.B) {
			ch, err := placement.NewConsistent(10, vnodes)
			if err != nil {
				b.Fatal(err)
			}
			cov := stats.CoVInts(placement.LoadVector(ch, blocks))
			b.ReportMetric(cov, "CoV")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ch.Disk(blocks[i%len(blocks)])
			}
		})
	}
}

// BenchmarkAblationParityGroup sweeps the parity group size g: larger
// groups save storage until disk-collision fallbacks eat the savings.
// Metrics: realized storage overhead and the fraction of groups that fell
// back to mirroring.
func BenchmarkAblationParityGroup(b *testing.B) {
	x0 := experiments.X0FuncBits(64)
	objects := map[uint64]int{1: 1000, 2: 1000, 3: 1000}
	for _, g := range []int{2, 3, 4, 6, 8} {
		b.Run(fmt.Sprintf("g=%d", g), func(b *testing.B) {
			strat, err := placement.NewScaddar(12, x0)
			if err != nil {
				b.Fatal(err)
			}
			p, err := parity.New(strat, g)
			if err != nil {
				b.Fatal(err)
			}
			overhead, err := p.Overhead(objects)
			if err != nil {
				b.Fatal(err)
			}
			mirrored, total := 0, 0
			for seed, n := range objects {
				groups := (n + g - 1) / g
				for k := 0; k < groups; k++ {
					layout, err := p.Place(seed, uint64(k), n)
					if err != nil {
						b.Fatal(err)
					}
					total++
					if layout.Mirrored {
						mirrored++
					}
				}
			}
			b.ReportMetric(overhead, "overhead")
			b.ReportMetric(float64(mirrored)/float64(total), "mirror-frac")
			groups := (1000 + g - 1) / g
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Place(1, uint64(i%groups), 1000); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBatchedAdds compares growing an array by one k-disk
// group against k single-disk operations. REMAP chains are not associative:
// the incremental path moves more blocks (sum of per-step z_j exceeds the
// batched z) and burns k budget factors instead of one. Metrics: movement
// fraction and the guaranteed unfairness bound afterwards. Operational
// guidance: batch your disk additions.
func BenchmarkAblationBatchedAdds(b *testing.B) {
	const (
		n0 = 8
		k  = 4
	)
	blocks := experiments.BlockUniverse(20, 500)
	x0 := experiments.X0FuncBits(32)
	for _, mode := range []string{"batched", "incremental"} {
		b.Run(mode, func(b *testing.B) {
			var frac, bound float64
			for i := 0; i < b.N; i++ {
				strat, err := placement.NewScaddar(n0, x0)
				if err != nil {
					b.Fatal(err)
				}
				budget := scaddar.MustNewBudget(32, n0)
				// Count the actual I/O: blocks moved at each step (a block
				// relocated twice by two single-disk adds costs two moves).
				moves := 0
				prev := placement.Snapshot(strat, blocks)
				step := func(count int) {
					if err := strat.AddDisks(count); err != nil {
						b.Fatal(err)
					}
					budget.Record(strat.N())
					cur := placement.Snapshot(strat, blocks)
					m, err := placement.Moves(prev, cur)
					if err != nil {
						b.Fatal(err)
					}
					moves += m
					prev = cur
				}
				if mode == "batched" {
					step(k)
				} else {
					for j := 0; j < k; j++ {
						step(1)
					}
				}
				frac = float64(moves) / float64(len(blocks))
				bound = budget.GuaranteedUnfairness()
			}
			b.ReportMetric(frac, "move-frac")
			b.ReportMetric(bound*1e9, "bound-ppb")
		})
	}
}

// BenchmarkAblationThrottle measures one full online scale-out per
// iteration at different stream loads; the drain length in rounds is the
// reported metric (migration shares bandwidth with streams, so load
// stretches the drain).
func BenchmarkAblationThrottle(b *testing.B) {
	for _, load := range []float64{0, 0.4, 0.8} {
		b.Run(fmt.Sprintf("load=%.1f", load), func(b *testing.B) {
			var rounds int
			for i := 0; i < b.N; i++ {
				r, err := runThrottledScaleOut(load)
				if err != nil {
					b.Fatal(err)
				}
				rounds = r
			}
			b.ReportMetric(float64(rounds), "drain-rounds")
		})
	}
}

// runThrottledScaleOut performs one 6→8 scale-out under the given load and
// returns the drain length in rounds.
func runThrottledScaleOut(load float64) (int, error) {
	x0 := placement.NewX0Func(func(seed uint64) prng.Source { return prng.NewSplitMix64(seed) })
	strat, err := placement.NewScaddar(6, x0)
	if err != nil {
		return 0, err
	}
	srv, err := cm.NewServer(cm.DefaultConfig(), strat)
	if err != nil {
		return 0, err
	}
	lib, err := workload.Library(workload.LibraryConfig{
		Objects: 8, MinBlocks: 300, MaxBlocks: 300,
		BlockBytes: srv.Config().BlockBytes, BitrateBitsPerSec: 4 << 20, SeedBase: 5,
	})
	if err != nil {
		return 0, err
	}
	for _, obj := range lib {
		if err := srv.AddObject(obj); err != nil {
			return 0, err
		}
	}
	pos := prng.NewSplitMix64(9)
	streams := int(load * float64(srv.N()) * float64(srv.Config().Profile.BlocksPerRound(srv.Config().Round, srv.Config().BlockBytes)))
	for i := 0; i < streams; i++ {
		st, err := srv.StartStream(i % len(lib))
		if err != nil {
			return 0, err
		}
		if err := srv.SeekStream(st.ID, int(pos.Next()%300)); err != nil {
			return 0, err
		}
	}
	if _, err := srv.ScaleUp(2); err != nil {
		return 0, err
	}
	rounds := 0
	for srv.Reorganizing() {
		if err := srv.Tick(); err != nil {
			return 0, err
		}
		rounds++
		if rounds > 100000 {
			return 0, fmt.Errorf("drain did not converge")
		}
	}
	return rounds, srv.FinishReorganization()
}
