// Diskupgrade: retiring an old disk generation and absorbing a new one.
//
// The paper's Section 1 scenario: "adding newer generation disks ... may
// cause the existing disks to become bottlenecks. These existing disks may
// eventually need to be replaced with newer disks." We run that lifecycle:
//
//  1. start with 6 old-generation disks;
//  2. attach a group of 3 new disks (minimal migration onto them);
//  3. retire 2 old disks (only their blocks move);
//  4. map the resulting logical array onto heterogeneous physical drives
//     (Section 6), checking the physical load lands proportional to each
//     drive's bandwidth share.
//
// Run with: go run ./examples/diskupgrade
package main

import (
	"fmt"
	"log"

	"scaddar"
)

func main() {
	x0 := scaddar.NewX0Func(func(seed uint64) scaddar.Source {
		return scaddar.NewSplitMix64(seed)
	})
	strat, err := scaddar.NewScaddarStrategy(6, x0)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := scaddar.NewServer(scaddar.DefaultServerConfig(), strat)
	if err != nil {
		log.Fatal(err)
	}
	lib, err := scaddar.Library(scaddar.DefaultLibraryConfig())
	if err != nil {
		log.Fatal(err)
	}
	for _, obj := range lib {
		if err := srv.AddObject(obj); err != nil {
			log.Fatal(err)
		}
	}
	total := srv.TotalBlocks()
	fmt.Printf("phase 0: %d blocks on %d old disks (CoV %.4f)\n",
		total, srv.N(), scaddar.CoV(srv.Array().Loads()))

	// Phase 1: attach the new 3-disk group.
	plan, err := srv.ScaleUp(3)
	if err != nil {
		log.Fatal(err)
	}
	drain(srv)
	if err := srv.FinishReorganization(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 1: +3 disks, moved %d/%d blocks (%.1f%%, optimal %.1f%%), CoV %.4f\n",
		len(plan.Moves), total, 100*plan.MoveFraction(), 100*plan.OptimalFraction(),
		scaddar.CoV(srv.Array().Loads()))

	// Phase 2: retire two of the old drives (logical indices 0 and 1).
	plan, err = srv.ScaleDown(0, 1)
	if err != nil {
		log.Fatal(err)
	}
	drain(srv)
	if err := srv.CompleteScaleDown(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 2: -2 disks, moved %d/%d blocks (%.1f%%, optimal %.1f%%), CoV %.4f on %d disks\n",
		len(plan.Moves), total, 100*plan.MoveFraction(), 100*plan.OptimalFraction(),
		scaddar.CoV(srv.Array().Loads()), srv.N())
	if err := srv.VerifyIntegrity(); err != nil {
		log.Fatal(err)
	}

	// Phase 3 (Section 6): run the same logical array over heterogeneous
	// hardware. A new drive with twice the bandwidth and capacity of the
	// old generation hosts two logical disks; carving every physical drive
	// into weakest-drive-sized logical disks keeps SCADDAR oblivious to the
	// heterogeneity.
	newGen := scaddar.ProfileCheetah73
	newGen.Name = "nextgen146"
	newGen.CapacityBytes *= 2
	newGen.TransferBytesPerSec *= 2
	mapping, err := scaddar.NewHeteroMapping([]scaddar.HeteroPhysical{
		{ID: 0, Profile: scaddar.ProfileCheetah73}, // old generation -> 1 logical
		{ID: 1, Profile: newGen},                   // -> 2 logical
		{ID: 2, Profile: newGen},                   // -> 2 logical
		{ID: 3, Profile: newGen},                   // -> 2 logical
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 3: heterogeneous mapping hosts %d logical disks on %d physical drives\n",
		mapping.Logicals(), mapping.Physicals())
	if mapping.Logicals() != srv.N() {
		log.Fatalf("logical count %d does not match array size %d", mapping.Logicals(), srv.N())
	}
	worst, err := mapping.ProportionalityError(srv.Array().Loads())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("         physical load within %.1f%% of each drive's bandwidth share\n", 100*worst)
}

// drain ticks the server until the in-flight migration completes. The
// caller then finishes the operation: FinishReorganization for scale-ups,
// CompleteScaleDown for scale-downs.
func drain(srv *scaddar.Server) {
	for srv.Reorganizing() {
		if err := srv.Tick(); err != nil {
			log.Fatal(err)
		}
	}
}
