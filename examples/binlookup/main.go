// Binlookup: the binary lookup protocol against the HTTP read path.
//
// The HTTP/JSON gateway costs two orders of magnitude more per lookup than
// the SCADDAR placement computation it wraps. This example boots one
// gateway with both front ends — HTTP on a test server, the binary
// protocol (docs/PROTOCOL.md) on a loopback listener — and proves two
// things about the binary path:
//
//  1. Agreement: every batched binary answer matches the HTTP answer for
//     the same (object, block), and after a scale-up both paths agree
//     again under the new placement, with the response epoch advanced.
//  2. Speed: batched binary lookups beat serial HTTP by at least 10×
//     throughput, the headline claim reproduced in EXPERIMENTS.md (E20).
//
// The process exits non-zero on any mismatch or if the speedup falls
// short, so `make verify` gates on both.
//
// Run with: go run ./examples/binlookup
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"scaddar"
)

var (
	round   = flag.Duration("round", 2*time.Millisecond, "wall-clock round period")
	lookups = flag.Int("lookups", 12000, "lookups per measured phase")
	batch   = flag.Int("batch", 64, "lookups per binary batch frame")
)

const (
	nDisks  = 6
	objects = 12
	blocks  = 400
)

func main() {
	flag.Parse()

	// One server, two front ends.
	x0 := scaddar.NewX0Func(func(seed uint64) scaddar.Source {
		return scaddar.NewSplitMix64(seed)
	})
	strat, err := scaddar.NewScaddarStrategy(nDisks, x0)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := scaddar.NewServer(scaddar.DefaultServerConfig(), strat)
	if err != nil {
		log.Fatal(err)
	}
	libCfg := scaddar.DefaultLibraryConfig()
	libCfg.Objects, libCfg.MinBlocks, libCfg.MaxBlocks = objects, blocks, blocks
	lib, err := scaddar.Library(libCfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, obj := range lib {
		if err := srv.AddObject(obj); err != nil {
			log.Fatal(err)
		}
	}
	gw, err := scaddar.NewGateway(srv, scaddar.GatewayConfig{
		Factory: func(seed uint64) scaddar.Source { return scaddar.NewSplitMix64(seed) },
		Round:   *round,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer gw.Close()
	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := gw.ServeBin(ln); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gateway: %d disks, %d objects x %d blocks; HTTP on %s, binary on %s\n",
		nDisks, objects, blocks, ts.URL, ln.Addr())

	// The same lookup sequence drives both paths.
	rng := rand.New(rand.NewSource(1))
	addrs := make([]scaddar.BlockAddr, *lookups)
	for i := range addrs {
		addrs[i] = scaddar.BlockAddr{Object: rng.Intn(objects), Index: rng.Intn(blocks)}
	}

	httpDisks, httpDur := httpPhase(ts, addrs)
	httpRate := float64(len(addrs)) / httpDur.Seconds()
	fmt.Printf("http:      %d lookups in %v (%.0f lookups/s)\n", len(addrs), httpDur.Round(time.Millisecond), httpRate)

	c, err := scaddar.DialBin(ln.Addr().String(), scaddar.BinClientConfig{RequestTimeout: 10 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	binDisks, epoch1, binDur := binPhase(c, addrs, *batch)
	binRate := float64(len(addrs)) / binDur.Seconds()
	fmt.Printf("bin batch%d: %d lookups in %v (%.0f lookups/s), epoch %d\n",
		*batch, len(addrs), binDur.Round(time.Millisecond), binRate, epoch1)

	mismatches := 0
	for i := range addrs {
		if httpDisks[i] != binDisks[i] {
			mismatches++
		}
	}
	if mismatches > 0 {
		log.Fatalf("FAIL: %d/%d binary answers disagree with HTTP", mismatches, len(addrs))
	}
	fmt.Printf("agree:     all %d answers match across both paths\n", len(addrs))

	// Scale up over HTTP, then show both paths agreeing under the new
	// placement, with the binary epoch advanced past the pre-scale one.
	resp, err := ts.Client().Post(ts.URL+"/v1/scale", "application/json",
		strings.NewReader(`{"add": 2}`))
	if err != nil || resp.StatusCode != http.StatusAccepted {
		log.Fatalf("scale: err=%v status=%v", err, respCode(resp))
	}
	resp.Body.Close()
	for deadline := time.Now().Add(60 * time.Second); ; {
		st := gw.Status()
		if !st.Reorganizing && st.Disks == nDisks+2 {
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("scale-up never drained")
		}
		time.Sleep(5 * time.Millisecond)
	}
	httpDisks, _ = httpPhase(ts, addrs)
	binDisks, epoch2, _ := binPhase(c, addrs, *batch)
	for i := range addrs {
		if httpDisks[i] != binDisks[i] {
			log.Fatalf("FAIL: post-scale disagreement at %v", addrs[i])
		}
	}
	if epoch2 <= epoch1 {
		log.Fatalf("FAIL: epoch did not advance across the scale-up (%d -> %d)", epoch1, epoch2)
	}
	fmt.Printf("scale:     +2 disks; both paths agree again, epoch %d -> %d\n", epoch1, epoch2)

	speedup := binRate / httpRate
	fmt.Printf("speedup:   batched binary is %.1fx serial HTTP\n", speedup)
	if speedup < 10 {
		log.Fatalf("FAIL: speedup %.1fx is below the documented 10x floor", speedup)
	}
	fmt.Println("OK: binary protocol agrees with HTTP, tracks epochs, and clears 10x")
}

// httpPhase answers every lookup through GET /v1/objects/{o}/blocks/{i},
// serially on one connection — the baseline a simple HTTP client gets.
func httpPhase(ts *httptest.Server, addrs []scaddar.BlockAddr) ([]int, time.Duration) {
	client := ts.Client()
	disks := make([]int, len(addrs))
	start := time.Now()
	for i, a := range addrs {
		resp, err := client.Get(fmt.Sprintf("%s/v1/objects/%d/blocks/%d", ts.URL, a.Object, a.Index))
		if err != nil {
			log.Fatal(err)
		}
		var body struct {
			Disk int `json:"disk"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || resp.StatusCode != http.StatusOK {
			log.Fatalf("lookup %v: status %d err %v", a, resp.StatusCode, err)
		}
		resp.Body.Close()
		disks[i] = body.Disk
	}
	return disks, time.Since(start)
}

// binPhase answers the same lookups through OpLocateBatch frames of the
// given size on one persistent connection.
func binPhase(c *scaddar.BinClient, addrs []scaddar.BlockAddr, batch int) ([]int, uint64, time.Duration) {
	disks := make([]int, 0, len(addrs))
	results := make([]scaddar.BinResult, batch)
	buf := make([]scaddar.BlockAddr, 0, batch)
	var epoch uint64
	flush := func() {
		if len(buf) == 0 {
			return
		}
		e, err := c.LocateBatch(buf, results[:len(buf)])
		if err != nil {
			log.Fatalf("batch: %v", err)
		}
		epoch = e
		for _, r := range results[:len(buf)] {
			if r.Code != 0 {
				log.Fatalf("batch entry failed with code %d", r.Code)
			}
			disks = append(disks, r.Disk)
		}
		buf = buf[:0]
	}
	start := time.Now()
	for _, a := range addrs {
		buf = append(buf, a)
		if len(buf) == batch {
			flush()
		}
	}
	flush()
	return disks, epoch, time.Since(start)
}

func respCode(r *http.Response) any {
	if r == nil {
		return "nil"
	}
	return r.StatusCode
}
