// Gateway: the online server as a live concurrent network service.
//
// SCADDAR's AO1 property — block location computable in O(j) from the
// operation log, no directory — has an architectural payoff beyond saved
// memory: lookups need no lock, so a server front end can answer them
// concurrently on every core while scaling operations run underneath. This
// example boots the HTTP gateway on a loopback port and demonstrates
// exactly that: concurrent clients stream block locations over HTTP while
// the array scales from 6 to 8 disks, survives a disk failure and rebuild,
// and finally drains gracefully — all without a read ever failing.
//
// Run with: go run ./examples/gateway
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"scaddar"
)

var (
	round    = flag.Duration("round", 2*time.Millisecond, "wall-clock round period")
	duration = flag.Duration("duration", 400*time.Millisecond, "load duration")
	clients  = flag.Int("clients", 6, "concurrent client goroutines")
)

const (
	nDisks  = 6
	objects = 8
	blocks  = 200
)

func main() {
	flag.Parse()

	// Build the server: 6 disks, mirrored redundancy, a small library.
	x0 := scaddar.NewX0Func(func(seed uint64) scaddar.Source {
		return scaddar.NewSplitMix64(seed)
	})
	strat, err := scaddar.NewScaddarStrategy(nDisks, x0)
	if err != nil {
		log.Fatal(err)
	}
	cfg := scaddar.DefaultServerConfig()
	cfg.Redundancy = scaddar.RedundancyMirror
	srv, err := scaddar.NewServer(cfg, strat)
	if err != nil {
		log.Fatal(err)
	}
	libCfg := scaddar.DefaultLibraryConfig()
	libCfg.Objects, libCfg.MinBlocks, libCfg.MaxBlocks = objects, blocks, blocks
	libCfg.BlockBytes = cfg.BlockBytes
	lib, err := scaddar.Library(libCfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, obj := range lib {
		if err := srv.AddObject(obj); err != nil {
			log.Fatal(err)
		}
	}

	// Wrap it in the gateway: the round driver now owns the server.
	gw, err := scaddar.NewGateway(srv, scaddar.GatewayConfig{
		Factory: func(seed uint64) scaddar.Source { return scaddar.NewSplitMix64(seed) },
		Round:   *round,
	})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()
	fmt.Printf("gateway: %d disks, %d objects x %d blocks, serving on %s\n",
		nDisks, objects, blocks, ts.URL)

	// Concurrent clients: open sessions and stream block locations.
	var (
		stop     atomic.Bool
		lookups  atomic.Int64
		sessions atomic.Int64
		failures atomic.Int64
		wg       sync.WaitGroup
	)
	client := ts.Client()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c + 1)))
			for !stop.Load() {
				obj := rng.Intn(objects)
				resp, err := client.Post(ts.URL+"/v1/sessions", "application/json",
					bytes.NewReader([]byte(fmt.Sprintf(`{"object": %d}`, obj))))
				if err != nil {
					failures.Add(1)
					return
				}
				var sess struct {
					Session int `json:"session"`
				}
				ok := resp.StatusCode == http.StatusCreated
				if ok {
					if err := json.NewDecoder(resp.Body).Decode(&sess); err != nil {
						ok = false
					}
				}
				resp.Body.Close()
				if !ok {
					// 503 means backpressure, not failure; try again.
					time.Sleep(2 * time.Millisecond)
					continue
				}
				sessions.Add(1)
				for i := 0; i < 25 && !stop.Load(); i++ {
					r, err := client.Get(fmt.Sprintf("%s/v1/objects/%d/blocks/%d",
						ts.URL, obj, rng.Intn(blocks)))
					if err != nil {
						failures.Add(1)
						return
					}
					r.Body.Close()
					if r.StatusCode != http.StatusOK {
						failures.Add(1)
					}
					lookups.Add(1)
				}
				req, _ := http.NewRequest("DELETE",
					fmt.Sprintf("%s/v1/sessions/%d", ts.URL, sess.Session), nil)
				if r, err := client.Do(req); err == nil {
					r.Body.Close()
				}
			}
		}(c)
	}

	post := func(path, body string) *http.Response {
		resp, err := client.Post(ts.URL+path, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			log.Fatalf("POST %s -> %d", path, resp.StatusCode)
		}
		return resp
	}
	wait := func(what string, done func(scaddar.GatewayStatus) bool) {
		deadline := time.Now().Add(60 * time.Second)
		for !done(gw.Status()) {
			if time.Now().After(deadline) {
				log.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Maintenance under live load, all over HTTP.
	time.Sleep(*duration / 4)
	fmt.Println("scale:   adding 2 disks over HTTP while clients stream...")
	post("/v1/scale", `{"add": 2}`)
	wait("scale-up", func(st scaddar.GatewayStatus) bool {
		return !st.Reorganizing && st.Disks == nDisks+2
	})
	fmt.Printf("scale:   done; %d disks, reads never paused\n", gw.Status().Disks)

	fmt.Println("drill:   failing disk 2, then repairing it...")
	post("/v1/disks/2/fail", "")
	time.Sleep(*duration / 8)
	post("/v1/disks/2/repair", "")
	wait("rebuild", func(st scaddar.GatewayStatus) bool { return !st.Degraded })
	fmt.Printf("drill:   healthy again; %d blocks rebuilt\n", gw.Status().Server.BlocksRebuilt)

	time.Sleep(*duration / 4)
	stop.Store(true)
	wg.Wait()

	// The observability plane tells the same story back: scrape the
	// Prometheus endpoint and read the run's shape out of the metrics.
	resp, err := client.Get(ts.URL + "/v1/metrics")
	if err != nil {
		log.Fatal(err)
	}
	samples, err := scaddar.ParseMetricsText(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatalf("parse /v1/metrics: %v", err)
	}
	ms := scaddar.NewMetricSet(samples)
	reads, _ := ms.Value("gateway_reads_total")
	migrated, _ := ms.Value("cm_blocks_migrated_total")
	rebuilt, _ := ms.Value("cm_blocks_rebuilt_total")
	if h, ok := ms.Histogram("gateway_read_seconds", "", ""); ok && h.Count > 0 {
		fmt.Printf("metrics: %.0f reads served (server-side p99 %.0fµs), %.0f blocks migrated, %.0f rebuilt\n",
			reads, h.Quantile(0.99)*1e6, migrated, rebuilt)
	}

	// Graceful drain: active sessions play out, then the driver stops.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := gw.Shutdown(ctx); err != nil {
		log.Fatalf("drain: %v", err)
	}
	st := gw.Status()
	fmt.Printf("load:    %d sessions, %d lookups, %d rejected (503), %d rounds\n",
		sessions.Load(), lookups.Load(), st.Gateway.SessionsRejected, st.Rounds)
	if failures.Load() > 0 {
		log.Fatalf("FAIL: %d reads failed during reorganization", failures.Load())
	}
	if lookups.Load() == 0 || sessions.Load() == 0 {
		log.Fatal("FAIL: no load generated")
	}
	fmt.Println("OK: scaling, a failure drill, and a graceful drain — zero failed reads")
}
