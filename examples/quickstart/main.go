// Quickstart: the SCADDAR access function in a dozen lines.
//
// We place the blocks of one object pseudo-randomly over 8 disks, scale the
// array twice (add a 2-disk group, retire disk 3), and locate blocks after
// each operation using nothing but the object's seed and the operation log.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"scaddar"
)

func main() {
	// A history starts with the initial disk count and records every
	// scaling operation. It is the ONLY state SCADDAR persists besides
	// per-object seeds.
	hist, err := scaddar.NewHistory(8)
	if err != nil {
		log.Fatal(err)
	}

	// The locator regenerates each block's pseudo-random number X(i)_0
	// from the object seed and remaps it through the history.
	loc, err := scaddar.NewLocator(hist, func(seed uint64) scaddar.Source {
		return scaddar.NewSplitMix64(seed)
	})
	if err != nil {
		log.Fatal(err)
	}

	const objectSeed = 42
	fmt.Println("initial placement on 8 disks:")
	printLayout(loc, objectSeed, 12)

	// Scale up: add a 2-disk group. Only ~2/10 of blocks change disks, and
	// those land exclusively on the new disks 8 and 9.
	if _, err := hist.Add(2); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter adding 2 disks (only movers relocate, all onto disks 8-9):")
	printLayout(loc, objectSeed, 12)

	// Scale down: retire logical disk 3. Only its blocks move, uniformly
	// onto the survivors.
	if _, err := hist.Remove(3); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter removing disk 3 (its blocks scatter; the others stay on their")
	fmt.Println("physical disks — logical indices above 3 just shift down by one):")
	printLayout(loc, objectSeed, 12)

	// The randomness budget says how many more operations the 64-bit
	// generator supports before a full redistribution is advisable.
	budget, err := scaddar.NewBudget(64, 8)
	if err != nil {
		log.Fatal(err)
	}
	for j := 1; j <= hist.Ops(); j++ {
		if err := budget.Record(hist.NAt(j)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nguaranteed unfairness after %d ops: %.2e (tolerance check 1%%: %v)\n",
		hist.Ops(), budget.GuaranteedUnfairness(), budget.WithinTolerance(0.01))
	fmt.Printf("rule of thumb: a 64-bit generator at ~9 disks supports ~%d operations\n",
		scaddar.RuleOfThumb(64, 0.01, 9))
}

// printLayout prints the disks of the object's first n blocks.
func printLayout(loc *scaddar.Locator, seed uint64, n int) {
	for i := 0; i < n; i++ {
		d, err := loc.Disk(seed, uint64(i))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  block %2d -> disk %d\n", i, d)
	}
}
