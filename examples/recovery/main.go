// Recovery: crash-safe durable state for a SCADDAR server.
//
// SCADDAR's access function needs no block directory — only the operation
// log and per-object seeds. This example makes that state crash-safe with
// the durable store: a server is bootstrapped into a write-ahead journal, a
// scale-up is driven partway through its migration, and then the process
// "crashes" — the journal's newest segment is left with a torn, partially
// written record, exactly what a power cut mid-write produces. Recovery
// must truncate the torn bytes, replay the intact tail, land mid-migration
// with every block location identical to the pre-crash server, and then
// finish the reorganization cleanly.
//
// Run with: go run ./examples/recovery
// Exits non-zero if the recovered state diverges from the pre-crash state.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"scaddar"
)

func factory(seed uint64) scaddar.Source { return scaddar.NewSplitMix64(seed) }

// capture records every block's logical disk from a consistent snapshot.
func capture(srv *scaddar.Server) (map[[2]int]int, error) {
	sn, err := srv.BuildSnapshot(factory)
	if err != nil {
		return nil, err
	}
	locs := make(map[[2]int]int)
	for _, obj := range sn.Objects() {
		for idx := 0; idx < obj.Blocks; idx++ {
			d, err := sn.Locate(obj.ID, idx)
			if err != nil {
				return nil, err
			}
			locs[[2]int{obj.ID, idx}] = d
		}
	}
	return locs, nil
}

func main() {
	dir, err := os.MkdirTemp("", "scaddar-recovery-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	x0 := scaddar.NewX0Func(factory)

	// Boot a fresh server and bootstrap it into a durable store: the
	// checkpoint captures the library, every later mutation is journaled.
	strat, err := scaddar.NewScaddarStrategy(4, x0)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := scaddar.NewServer(scaddar.DefaultServerConfig(), strat)
	if err != nil {
		log.Fatal(err)
	}
	libCfg := scaddar.DefaultLibraryConfig()
	libCfg.Objects, libCfg.MinBlocks, libCfg.MaxBlocks = 6, 600, 600
	lib, err := scaddar.Library(libCfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, obj := range lib {
		if err := srv.AddObject(obj); err != nil {
			log.Fatal(err)
		}
	}
	st, err := scaddar.OpenStore(scaddar.StoreConfig{Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	if err := st.Bootstrap(srv); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bootstrapped %d disks, %d blocks into %s (LSN %d)\n",
		srv.N(), srv.TotalBlocks(), dir, st.LSN())

	// Scale up and drive the migration partway — the interesting crash
	// window, with blocks split between old and new locations.
	if _, err := srv.ScaleUp(2); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 3 && srv.Reorganizing(); i++ {
		if err := srv.Tick(); err != nil {
			log.Fatal(err)
		}
	}
	if !srv.Reorganizing() {
		log.Fatal("migration drained too fast to demonstrate a mid-flight crash")
	}
	remaining := srv.MigrationRemaining()
	preCrash, err := capture(srv)
	if err != nil {
		log.Fatal(err)
	}
	if err := st.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scale-up to %d disks journaled; crash with %d blocks still to move (LSN %d)\n",
		srv.N(), remaining, st.LSN())

	// Simulate the crash: the next record was half-written when power died.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		log.Fatalf("no journal segments in %s: %v", dir, err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := f.Write([]byte{0x21, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("simulated torn write at the journal tail")

	// Recover in a "new process": newest checkpoint, replay the tail,
	// truncate the torn record.
	st2, err := scaddar.OpenStore(scaddar.StoreConfig{Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer st2.Close()
	srv2, info, err := st2.Recover(x0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered: checkpoint LSN %d, %d events replayed, torn tail: %v (%d bytes dropped)\n",
		info.CheckpointLSN, info.ReplayedEvents, info.TornTail, info.TruncatedBytes)
	if !info.TornTail {
		log.Fatal("expected recovery to report the torn tail")
	}

	// The recovered server must be mid-migration with identical placement.
	if !srv2.Reorganizing() || srv2.MigrationRemaining() != remaining {
		log.Fatalf("recovered migration state: reorganizing=%v remaining=%d, want true/%d",
			srv2.Reorganizing(), srv2.MigrationRemaining(), remaining)
	}
	postCrash, err := capture(srv2)
	if err != nil {
		log.Fatal(err)
	}
	if len(postCrash) != len(preCrash) {
		log.Fatalf("recovered %d block locations, want %d", len(postCrash), len(preCrash))
	}
	for key, want := range preCrash {
		if postCrash[key] != want {
			log.Fatalf("object %d block %d recovered on disk %d, want %d",
				key[0], key[1], postCrash[key], want)
		}
	}
	fmt.Printf("all %d block locations identical to the pre-crash server\n", len(preCrash))

	// Finish what the crash interrupted.
	for srv2.Reorganizing() {
		if err := srv2.Tick(); err != nil {
			log.Fatal(err)
		}
	}
	if err := srv2.FinishReorganization(); err != nil {
		log.Fatal(err)
	}
	if err := srv2.VerifyIntegrity(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("migration finished after recovery: %d disks, integrity ok, final LSN %d\n",
		srv2.N(), st2.LSN())
}
