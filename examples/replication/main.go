// Replication: journal-shipping follower replicas under a hostile network.
//
// SCADDAR's state is tiny — the operation log plus per-object seeds — so
// replicating a server means shipping the write-ahead journal, nothing
// else. This example bootstraps a durable leader, streams its journal to a
// follower THROUGH a seeded fault injector (a TCP proxy that drops,
// stalls, truncates, and duplicates traffic), runs a scaling workload,
// kills and restarts the leader from disk mid-run, and then proves the
// follower converged: same LSN, same epoch, every block of every object
// located on the same disk as the leader.
//
// Run with: go run ./examples/replication
// Exits non-zero if the follower diverges from the leader.
package main

import (
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"scaddar"
)

func factory(seed uint64) scaddar.Source { return scaddar.NewSplitMix64(seed) }

// capture records every block's logical disk from a consistent snapshot.
func capture(srv *scaddar.Server) (map[[2]int]int, error) {
	sn, err := srv.BuildSnapshot(factory)
	if err != nil {
		return nil, err
	}
	locs := make(map[[2]int]int)
	for _, obj := range sn.Objects() {
		for idx := 0; idx < obj.Blocks; idx++ {
			d, err := sn.Locate(obj.ID, idx)
			if err != nil {
				return nil, err
			}
			locs[[2]int{obj.ID, idx}] = d
		}
	}
	return locs, nil
}

// drain ticks a reorganization to completion.
func drain(srv *scaddar.Server) error {
	for srv.Reorganizing() {
		if err := srv.Tick(); err != nil {
			return err
		}
		// Pace the migration so the stream runs live through the injector
		// rather than as one bulk replay after the fact.
		time.Sleep(time.Millisecond)
	}
	return srv.FinishReorganization()
}

func main() {
	dir, err := os.MkdirTemp("", "scaddar-replication-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	x0 := scaddar.NewX0Func(factory)

	// Leader: a durable server with a small library, serving its journal.
	strat, err := scaddar.NewScaddarStrategy(4, x0)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := scaddar.NewServer(scaddar.DefaultServerConfig(), strat)
	if err != nil {
		log.Fatal(err)
	}
	libCfg := scaddar.DefaultLibraryConfig()
	libCfg.Objects, libCfg.MinBlocks, libCfg.MaxBlocks = 6, 120, 120
	lib, err := scaddar.Library(libCfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, obj := range lib {
		if err := srv.AddObject(obj); err != nil {
			log.Fatal(err)
		}
	}
	st, err := scaddar.OpenStore(scaddar.StoreConfig{Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	if err := st.Bootstrap(srv); err != nil {
		log.Fatal(err)
	}
	ldr, err := scaddar.NewReplicationLeader(scaddar.ReplicationLeaderConfig{
		Store:     st,
		Heartbeat: 50 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ldr.Serve(ln)
	leaderAddr := ln.Addr().String()
	fmt.Printf("leader: %d disks, %d blocks, journal at LSN %d, serving %s\n",
		srv.N(), srv.TotalBlocks(), st.LSN(), leaderAddr)

	// The hostile network: every leader->follower byte goes through a
	// seeded proxy that drops, stalls, truncates, and duplicates.
	fi, err := scaddar.StartNetworkFaultInjector(scaddar.NetworkFaultConfig{
		Target:        leaderAddr,
		Seed:          42,
		DropRate:      0.02,
		TruncateRate:  0.02,
		DuplicateRate: 0.15,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer fi.Close()

	f, err := scaddar.StartFollower(scaddar.FollowerConfig{
		Addr:    fi.Addr(),
		X0:      x0,
		Factory: factory,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	fmt.Printf("follower tailing through fault injector at %s\n", fi.Addr())

	// Workload half 1: scale up, drain, checkpoint (which prunes journal
	// segments under the live stream).
	if _, err := srv.ScaleUp(2); err != nil {
		log.Fatal(err)
	}
	if err := drain(srv); err != nil {
		log.Fatal(err)
	}
	if _, err := st.Checkpoint(srv); err != nil {
		log.Fatal(err)
	}

	// The crash: leader process dies, then restarts from disk on the same
	// address. The follower reconnects and resumes from its applied LSN.
	ldr.Close()
	if err := st.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("leader killed; restarting from disk")
	st, err = scaddar.OpenStore(scaddar.StoreConfig{Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	srv, info, err := st.Recover(x0)
	if err != nil {
		log.Fatal(err)
	}
	ldr, err = scaddar.NewReplicationLeader(scaddar.ReplicationLeaderConfig{
		Store:     st,
		Heartbeat: 50 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err = net.Listen("tcp", leaderAddr)
	if err != nil {
		log.Fatal(err)
	}
	ldr.Serve(ln)
	defer ldr.Close()
	fmt.Printf("leader recovered (checkpoint LSN %d, %d events replayed) and serving again\n",
		info.CheckpointLSN, info.ReplayedEvents)

	// Workload half 2: another scaling operation after the restart.
	if _, err := srv.FullRedistribute(); err != nil {
		log.Fatal(err)
	}
	if err := drain(srv); err != nil {
		log.Fatal(err)
	}
	if err := st.Sync(); err != nil {
		log.Fatal(err)
	}

	// Convergence: the follower must reach the leader's durable frontier
	// and agree on every block location.
	durable, epoch := st.Durable()
	deadline := time.Now().Add(30 * time.Second)
	for {
		v := f.View()
		if v != nil && v.AppliedLSN >= durable {
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("follower never converged to LSN %d; status %+v", durable, f.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
	fst := f.Status()
	if fst.Epoch != epoch {
		log.Fatalf("follower at epoch %d, leader at %d", fst.Epoch, epoch)
	}
	// Stop the stream before inspecting the replica server directly; the
	// published view would keep serving reads, but Server() wants quiet.
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	want, err := capture(srv)
	if err != nil {
		log.Fatal(err)
	}
	got, err := capture(f.Server())
	if err != nil {
		log.Fatal(err)
	}
	if len(got) != len(want) {
		log.Fatalf("follower has %d block locations, leader %d", len(got), len(want))
	}
	for key, d := range want {
		if got[key] != d {
			log.Fatalf("object %d block %d: follower disk %d, leader disk %d",
				key[0], key[1], got[key], d)
		}
	}
	fmt.Printf("converged through %d injected faults and a leader restart: LSN %d, epoch %d, all %d block locations identical\n",
		fi.Faults(), fst.AppliedLSN, fst.Epoch, len(want))
}
