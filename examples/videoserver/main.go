// Videoserver: an online video-on-demand server scaling out under load.
//
// A 20-title library is striped pseudo-randomly over 8 Cheetah-class disks.
// Viewers arrive with Zipf-skewed title popularity and play continuously,
// one block per one-second round. Mid-operation we add a 2-disk group; the
// minimal SCADDAR migration runs in the background using only each disk's
// spare bandwidth, and the run reports that no stream missed a deadline.
//
// Run with: go run ./examples/videoserver
package main

import (
	"fmt"
	"log"

	"scaddar"
)

func main() {
	// Placement: SCADDAR over 8 disks, 64-bit generator.
	x0 := scaddar.NewX0Func(func(seed uint64) scaddar.Source {
		return scaddar.NewSplitMix64(seed)
	})
	strat, err := scaddar.NewScaddarStrategy(8, x0)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := scaddar.NewServer(scaddar.DefaultServerConfig(), strat)
	if err != nil {
		log.Fatal(err)
	}

	// Load the standard 20-object library (≈20k blocks of 256 KiB).
	lib, err := scaddar.Library(scaddar.DefaultLibraryConfig())
	if err != nil {
		log.Fatal(err)
	}
	for _, obj := range lib {
		if err := srv.AddObject(obj); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("library loaded: %d objects, %d blocks on %d disks (CoV %.4f)\n",
		srv.Objects(), srv.TotalBlocks(), srv.N(), scaddar.CoV(srv.Array().Loads()))

	// Admit viewers at 60% of capacity with Zipf(0.729) title popularity,
	// staggered to steady-state playback positions.
	zipf, err := scaddar.NewZipf(scaddar.NewSplitMix64(2024), len(lib), 0.729)
	if err != nil {
		log.Fatal(err)
	}
	pos := scaddar.NewSplitMix64(99)
	admit := func() {
		title := zipf.Draw()
		st, err := srv.StartStream(title)
		if err != nil {
			log.Fatal(err)
		}
		if err := srv.SeekStream(st.ID, int(pos.Next()%uint64(lib[title].Blocks))); err != nil {
			log.Fatal(err)
		}
	}
	target := int(0.6 * float64(srv.N()) * 79) // ~79 blocks/round/disk for this profile
	for i := 0; i < target; i++ {
		admit()
	}
	fmt.Printf("admitted %d concurrent streams\n", srv.ActiveStreams())

	// Warm-up rounds.
	for i := 0; i < 10; i++ {
		if err := srv.Tick(); err != nil {
			log.Fatal(err)
		}
	}

	// Scale out online: attach a 2-disk group.
	plan, err := srv.ScaleUp(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nscale-out 8→10 disks: %d of %d blocks to move (optimal %.1f%%, planned %.1f%%)\n",
		len(plan.Moves), plan.Blocks, 100*plan.OptimalFraction(), 100*plan.MoveFraction())

	rounds := 0
	for srv.Reorganizing() {
		if err := srv.Tick(); err != nil {
			log.Fatal(err)
		}
		rounds++
		for srv.ActiveStreams() < target {
			admit()
		}
	}
	if err := srv.FinishReorganization(); err != nil {
		log.Fatal(err)
	}

	m := srv.Metrics()
	fmt.Printf("migration finished in %d one-second rounds while serving %d streams\n", rounds, srv.ActiveStreams())
	fmt.Printf("blocks served: %d, deadline misses: %d, blocks migrated: %d\n",
		m.BlocksServed, m.Hiccups, m.BlocksMigrated)
	fmt.Printf("post-scale load balance: CoV %.4f over %d disks\n",
		scaddar.CoV(srv.Array().Loads()), srv.N())
	if err := srv.VerifyIntegrity(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("integrity verified: every block is exactly where the access function says.")
}
