// Cluster: horizontal sharding behind one routing gateway.
//
// SCADDAR's RO1 property — scaling moves only the minimum number of blocks
// — has a twin one level up: jump consistent hashing over shard IDs moves
// only ~1/(K+1) of the *objects* when a K-shard cluster grows to K+1. This
// example boots three independent shard gateways behind one cluster
// router, streams concurrent Zipf-ish reads through the router, and adds a
// fourth shard under that load. It then verifies the three invariants the
// design promises: the moved fraction is within 10% of the 1/4 ideal, no
// routed read ever failed, and afterward every object lives on exactly the
// shard the jump hash names — reachable through the router.
//
// Run with: go run ./examples/cluster
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"scaddar"
)

var (
	round    = flag.Duration("round", 2*time.Millisecond, "shard round period")
	duration = flag.Duration("duration", 400*time.Millisecond, "load duration")
	clients  = flag.Int("clients", 6, "concurrent client goroutines")
)

const (
	shards  = 3
	nDisks  = 6
	objects = 360 // large enough that the moved fraction concentrates near 1/4
	blocks  = 4
)

// bootShard builds one empty shard gateway (objects arrive through the
// router) and serves it on a loopback port.
func bootShard() (*scaddar.Gateway, *httptest.Server) {
	x0 := scaddar.NewX0Func(func(seed uint64) scaddar.Source {
		return scaddar.NewSplitMix64(seed)
	})
	strat, err := scaddar.NewScaddarStrategy(nDisks, x0)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := scaddar.NewServer(scaddar.DefaultServerConfig(), strat)
	if err != nil {
		log.Fatal(err)
	}
	gw, err := scaddar.NewGateway(srv, scaddar.GatewayConfig{
		Factory: func(seed uint64) scaddar.Source { return scaddar.NewSplitMix64(seed) },
		Round:   *round,
	})
	if err != nil {
		log.Fatal(err)
	}
	return gw, httptest.NewServer(gw.Handler())
}

func main() {
	flag.Parse()

	// Boot the shard fleet and the router over it.
	gateways := make([]*scaddar.Gateway, 0, shards+1)
	servers := make([]*httptest.Server, 0, shards+1)
	for i := 0; i < shards+1; i++ { // the last one joins later
		gw, ts := bootShard()
		gateways, servers = append(gateways, gw), append(servers, ts)
		defer ts.Close()
	}
	router, err := scaddar.NewClusterRouter(scaddar.ClusterRouterConfig{
		ProbeInterval: 50 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer router.Close()
	for i := 0; i < shards; i++ {
		if _, _, err := router.AddShard(context.Background(), servers[i].URL); err != nil {
			log.Fatal(err)
		}
	}
	front := httptest.NewServer(router.Handler())
	defer front.Close()
	client := front.Client()
	fmt.Printf("cluster: %d shards x %d disks behind %s\n", shards, nDisks, front.URL)

	// Seed the library through the router: each object lands on its
	// jump-hash home shard.
	for id := 0; id < objects; id++ {
		body := fmt.Sprintf(`{"id": %d, "seed": %d, "blocks": %d, "bitrateBitsPerSec": 4194304}`,
			id, 1000+id, blocks)
		resp, err := client.Post(front.URL+"/v1/admin/objects", "application/json",
			bytes.NewReader([]byte(body)))
		if err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			log.Fatalf("seed object %d: status %d", id, resp.StatusCode)
		}
	}
	fmt.Printf("seed:    %d objects x %d blocks placed through the router\n", objects, blocks)

	// Concurrent readers through the router. 503/409 are backpressure
	// (retried); anything else non-200 is a failure.
	var (
		stop     atomic.Bool
		lookups  atomic.Int64
		retries  atomic.Int64
		failures atomic.Int64
		wg       sync.WaitGroup
	)
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c + 1)))
			for !stop.Load() {
				id, idx := rng.Intn(objects), rng.Intn(blocks)
				resp, err := client.Get(fmt.Sprintf("%s/v1/objects/%d/blocks/%d",
					front.URL, id, idx))
				if err != nil {
					failures.Add(1)
					return
				}
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					lookups.Add(1)
				case http.StatusServiceUnavailable, http.StatusConflict:
					retries.Add(1)
					time.Sleep(2 * time.Millisecond)
				default:
					failures.Add(1)
				}
			}
		}(c)
	}

	// Grow the cluster under load: shard 4 joins, and only the jump-hash
	// moved fraction of objects migrates to it.
	time.Sleep(*duration / 4)
	fmt.Printf("scale:   adding shard %d while clients stream...\n", shards)
	info, stats, err := router.AddShard(context.Background(), servers[shards].URL)
	if err != nil {
		log.Fatalf("add shard: %v", err)
	}
	fmt.Printf("scale:   shard %d joined: moved %d/%d objects (%.1f%%, ideal %.1f%%)\n",
		info.ID, stats.Moved, stats.Objects, 100*stats.Fraction, 100*stats.Ideal)
	if math.Abs(stats.Fraction-stats.Ideal) > 0.1*stats.Ideal {
		log.Fatalf("FAIL: moved fraction %.4f not within 10%% of ideal %.4f",
			stats.Fraction, stats.Ideal)
	}

	time.Sleep(*duration / 2)
	stop.Store(true)
	wg.Wait()

	// Every object must now live on exactly the shard the 4-wide jump hash
	// names, and read correctly through the router.
	for id := 0; id < objects; id++ {
		want := scaddar.ClusterRouteSlot(id, shards+1)
		resp, err := client.Get(fmt.Sprintf("%s/v1/objects/%d/blocks/0", front.URL, id))
		if err != nil {
			log.Fatal(err)
		}
		var doc struct {
			Object int `json:"object"`
		}
		err = json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			log.Fatalf("FAIL: object %d unreadable after scale (status %d, err %v)",
				id, resp.StatusCode, err)
		}
		if got := resp.Header.Get(scaddar.ClusterShardHeader); got != fmt.Sprint(want) {
			log.Fatalf("FAIL: object %d served by shard %s, jump hash names %d", id, got, want)
		}
	}
	fmt.Printf("verify:  all %d objects on their jump-hash home shard\n", objects)

	fmt.Printf("load:    %d lookups, %d backpressure retries\n", lookups.Load(), retries.Load())
	if failures.Load() > 0 {
		log.Fatalf("FAIL: %d reads failed during the shard join", failures.Load())
	}
	if lookups.Load() == 0 {
		log.Fatal("FAIL: no load generated")
	}
	for _, gw := range gateways {
		gw.Close()
	}
	fmt.Println("OK: a shard joined under live load — minimal movement, zero failed reads")
}
