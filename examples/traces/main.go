// Traces: deterministic record/replay of server sessions.
//
// A synthetic Zipf session — sixty viewers, VCR jumps and stops, a mid-run
// scale-out — is generated as a compact event trace, serialized to a few
// hundred bytes, and replayed twice against freshly built servers. The two
// replays produce byte-identical metrics: every simulator run in this
// repository reduces to a file.
//
// Run with: go run ./examples/traces
package main

import (
	"fmt"
	"log"

	"scaddar"
)

func main() {
	cfg := scaddar.DefaultSession()
	tr, err := scaddar.GenerateSession(cfg)
	if err != nil {
		log.Fatal(err)
	}
	data, err := tr.MarshalBinary()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated session: %d events, %d bytes serialized\n", len(tr.Events), len(data))

	var back scaddar.Trace
	if err := back.UnmarshalBinary(data); err != nil {
		log.Fatal(err)
	}

	run := func() scaddar.ServerMetrics {
		srv := buildServer(cfg)
		res, err := scaddar.ApplyTrace(srv, &back)
		if err != nil {
			log.Fatal(err)
		}
		if err := srv.VerifyIntegrity(); err != nil {
			log.Fatal(err)
		}
		return res.Metrics
	}
	m1 := run()
	m2 := run()
	fmt.Printf("replay 1: rounds %d, served %d, hiccups %d, migrated %d\n",
		m1.Rounds, m1.BlocksServed, m1.Hiccups, m1.BlocksMigrated)
	fmt.Printf("replay 2: rounds %d, served %d, hiccups %d, migrated %d\n",
		m2.Rounds, m2.BlocksServed, m2.Hiccups, m2.BlocksMigrated)
	if m1 == m2 {
		fmt.Println("replays are identical: the session is fully deterministic.")
	} else {
		log.Fatal("replays diverged!")
	}
}

// buildServer creates a fresh server loaded with the session's library.
func buildServer(cfg scaddar.SessionConfig) *scaddar.Server {
	x0 := scaddar.NewX0Func(func(seed uint64) scaddar.Source {
		return scaddar.NewSplitMix64(seed)
	})
	strat, err := scaddar.NewScaddarStrategy(6, x0)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := scaddar.NewServer(scaddar.DefaultServerConfig(), strat)
	if err != nil {
		log.Fatal(err)
	}
	libCfg := scaddar.DefaultLibraryConfig()
	libCfg.Objects = cfg.Objects
	libCfg.MinBlocks, libCfg.MaxBlocks = cfg.BlocksPer, cfg.BlocksPer
	libCfg.SeedBase = 99
	lib, err := scaddar.Library(libCfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, obj := range lib {
		if err := srv.AddObject(obj); err != nil {
			log.Fatal(err)
		}
	}
	return srv
}
