// Lifecycle: operating a SCADDAR server for years.
//
// This example exercises the complete operational story of Section 4.3: a
// server with a 32-bit generator and a 5% unfairness tolerance undergoes
// repeated scaling operations; the randomness budget is tracked after each
// one; and when the NEXT operation would break the Lemma 4.3 precondition,
// the server performs the paper's recommended complete redistribution
// online and keeps going. Admission uses the statistical policy (overload
// probability ≤ 1e-3 per round) and every round is replayed through the
// calibrated SCAN schedule to confirm no disk overruns its round.
//
// Run with: go run ./examples/lifecycle
package main

import (
	"fmt"
	"log"

	"scaddar"
)

func main() {
	const bits = 32
	x0 := scaddar.NewX0Func(func(seed uint64) scaddar.Source {
		return scaddar.Truncate(scaddar.NewSplitMix64(seed), bits)
	})
	strat, err := scaddar.NewScaddarStrategy(4, x0)
	if err != nil {
		log.Fatal(err)
	}
	if err := strat.SetBits(bits); err != nil {
		log.Fatal(err)
	}

	cfg := scaddar.DefaultServerConfig()
	cfg.GeneratorBits = bits
	cfg.Tolerance = 0.05
	cfg.OverloadTarget = 1e-3
	cfg.MeasureRounds = true
	srv, err := scaddar.NewServer(cfg, strat)
	if err != nil {
		log.Fatal(err)
	}

	libCfg := scaddar.DefaultLibraryConfig()
	libCfg.Objects = 12
	libCfg.MinBlocks, libCfg.MaxBlocks = 600, 600
	lib, err := scaddar.Library(libCfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, obj := range lib {
		if err := srv.AddObject(obj); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("server: %d disks, %d blocks, b=%d, ε=5%%, statistical admission (P(overload)≤1e-3)\n",
		srv.N(), srv.TotalBlocks(), bits)

	// Years of operation: one growth operation per "quarter".
	redistributions := 0
	for quarter := 1; quarter <= 12; quarter++ {
		// The Section 4.3 check: would the next operation break the budget?
		if srv.NeedsRedistribution() {
			plan, err := srv.FullRedistribute()
			if err != nil {
				log.Fatal(err)
			}
			rounds := drain(srv)
			redistributions++
			fmt.Printf("q%-2d  budget exhausted -> FULL REDISTRIBUTION: %d blocks over %d rounds\n",
				quarter, len(plan.Moves), rounds)
			if err := srv.FinishReorganization(); err != nil {
				log.Fatal(err)
			}
		}
		plan, err := srv.ScaleUp(1)
		if err != nil {
			log.Fatal(err)
		}
		rounds := drain(srv)
		if err := srv.FinishReorganization(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("q%-2d  +1 disk -> %d disks; moved %4d blocks (z=%4.1f%%) in %d rounds; CoV %.4f; bound f %.4f\n",
			quarter, srv.N(), len(plan.Moves), 100*plan.OptimalFraction(), rounds,
			scaddar.CoV(srv.Array().Loads()), srv.Budget().GuaranteedUnfairness())
	}

	m := srv.Metrics()
	fmt.Printf("\nafter 12 quarters: %d disks, %d complete redistributions, hiccups %d, round overruns %d\n",
		srv.N(), redistributions, m.Hiccups, m.RoundOverruns)
	if err := srv.VerifyIntegrity(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("integrity verified across the whole lifecycle.")
}

// drain ticks until the in-flight migration completes, returning the rounds
// used.
func drain(srv *scaddar.Server) int {
	rounds := 0
	for srv.Reorganizing() {
		if err := srv.Tick(); err != nil {
			log.Fatal(err)
		}
		rounds++
	}
	return rounds
}
