// Faulttolerance: a live failure drill against the online server.
//
// The Section 6 mirroring extension places every block's mirror copy at
// offset f(N) = N/2 from its primary — computable from the operation log
// like the primary itself, so fault tolerance costs no directory either.
// This example drills the scheme under live load: a fault injector fails a
// whole disk while streams are playing, reads fail over to the mirrors
// in-round (charged against real per-disk round budgets), a replacement
// disk arrives five rounds later, and an online rebuild re-materializes the
// lost blocks from leftover bandwidth only. With mirroring, no read is ever
// unrecoverable; the same drill without redundancy shows what is at stake.
//
// Run with: go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"

	"scaddar"
)

const (
	disks      = 6
	objects    = 8
	blocksPer  = 400
	streams    = 180
	failRound  = 5
	fixRound   = 10
	drillSpan  = 120
	failedDisk = 2
)

// newLoadedServer builds a server with the given redundancy, a small
// library, and active streams staggered through each object.
func newLoadedServer(red scaddar.Redundancy) (*scaddar.Server, error) {
	x0 := scaddar.NewX0Func(func(seed uint64) scaddar.Source {
		return scaddar.NewSplitMix64(seed)
	})
	strat, err := scaddar.NewScaddarStrategy(disks, x0)
	if err != nil {
		return nil, err
	}
	cfg := scaddar.DefaultServerConfig()
	cfg.Redundancy = red
	srv, err := scaddar.NewServer(cfg, strat)
	if err != nil {
		return nil, err
	}
	for o := 0; o < objects; o++ {
		obj := scaddar.Object{
			ID: o, Seed: uint64(o)*1000 + 7, Blocks: blocksPer,
			BlockBytes: cfg.BlockBytes, BitrateBitsPerSec: 4 << 20,
		}
		if err := srv.AddObject(obj); err != nil {
			return nil, err
		}
	}
	for i := 0; i < streams; i++ {
		st, err := srv.StartStream(i % objects)
		if err != nil {
			return nil, err
		}
		if err := srv.SeekStream(st.ID, (i*37)%blocksPer); err != nil {
			return nil, err
		}
	}
	return srv, nil
}

// drill runs the failure schedule against a server and returns its metrics.
func drill(red scaddar.Redundancy) (scaddar.ServerMetrics, error) {
	srv, err := newLoadedServer(red)
	if err != nil {
		return scaddar.ServerMetrics{}, err
	}
	inj := scaddar.NewFaultInjector(1).FailAt(failRound, failedDisk).RepairAt(fixRound, failedDisk)
	if err := srv.InstallFaults(inj); err != nil {
		return scaddar.ServerMetrics{}, err
	}
	wasDegraded := false
	for r := 1; r <= drillSpan; r++ {
		if err := srv.Tick(); err != nil {
			return scaddar.ServerMetrics{}, err
		}
		switch {
		case r == failRound:
			h, err := srv.DiskHealth(failedDisk)
			if err != nil {
				return scaddar.ServerMetrics{}, err
			}
			fmt.Printf("  round %3d: disk %d is %s; serving degraded, %d blocks permanently lost\n",
				r, failedDisk, h, srv.LostBlocks())
		case r == fixRound:
			fmt.Printf("  round %3d: replacement online, %d rebuild items queued behind stream service\n",
				r, srv.RebuildRemaining())
		case wasDegraded && !srv.Degraded():
			fmt.Printf("  round %3d: rebuild complete, array healthy\n", r)
		}
		wasDegraded = srv.Degraded()
	}
	if err := srv.VerifyIntegrity(); err != nil {
		return scaddar.ServerMetrics{}, err
	}
	return srv.Metrics(), nil
}

func main() {
	fmt.Printf("live drill: %d disks, %d streams; disk %d fails at round %d, replacement at round %d\n\n",
		disks, streams, failedDisk, failRound, fixRound)

	fmt.Printf("with offset mirroring (f(N)=N/2, 2x storage, no directory):\n")
	m, err := drill(scaddar.RedundancyMirror)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  served %d blocks; %d reads degraded to the mirror, %d unrecoverable, %d hiccups\n",
		m.BlocksServed, m.DegradedReads, m.UnrecoverableReads, m.Hiccups)
	fmt.Printf("  rebuilt %d primary copies in %d rounds using %d spare I/Os\n\n",
		m.BlocksRebuilt, m.RoundsToRepair, m.RebuildIOs)
	if m.UnrecoverableReads != 0 {
		log.Fatalf("mirroring lost %d reads", m.UnrecoverableReads)
	}

	fmt.Printf("same drill without redundancy:\n")
	bare, err := drill(scaddar.RedundancyNone)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  served %d blocks; %d reads unrecoverable — the failed disk's data is simply gone\n",
		bare.BlocksServed, bare.UnrecoverableReads)
	fmt.Printf("\nmirroring turned %d lost reads into %d degraded (mirror-served) reads at 2x storage.\n",
		bare.UnrecoverableReads, m.DegradedReads)
}
