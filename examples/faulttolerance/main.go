// Faulttolerance: the Section 6 mirroring extension in action.
//
// Every block gets a mirror copy at offset f(N) = N/2 from its primary —
// computable from the operation log like the primary itself, so fault
// tolerance costs no directory either. We drill every single-disk failure
// (zero loss, reads fail over), show the load-smoothing read policy, and
// demonstrate that the guarantee survives scaling operations because the
// offset recomputes against the current disk count.
//
// Run with: go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"

	"scaddar"
)

func main() {
	x0 := scaddar.NewX0Func(func(seed uint64) scaddar.Source {
		return scaddar.NewSplitMix64(seed)
	})
	strat, err := scaddar.NewScaddarStrategy(6, x0)
	if err != nil {
		log.Fatal(err)
	}
	mirrored, err := scaddar.NewMirrored(strat, nil) // nil -> the paper's f(N)=N/2
	if err != nil {
		log.Fatal(err)
	}

	// A universe of 10 objects x 500 blocks.
	var blocks []scaddar.BlockRef
	for o := 0; o < 10; o++ {
		for i := 0; i < 500; i++ {
			blocks = append(blocks, scaddar.BlockRef{Seed: uint64(o + 1), Index: uint64(i)})
		}
	}

	fmt.Printf("placement: %d blocks mirrored at offset f(N)=N/2 on %d disks (%.0fx storage)\n",
		len(blocks), mirrored.N(), mirrored.StorageOverhead())
	b := blocks[0]
	p, m, err := mirrored.Locate(b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("example: block {seed %d, index %d} -> primary disk %d, mirror disk %d\n\n",
		b.Seed, b.Index, p, m)

	// Drill every single-disk failure.
	fmt.Println("single-disk failure drills:")
	for d := 0; d < mirrored.N(); d++ {
		rep, err := mirrored.Survive(blocks, map[int]bool{d: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  disk %d down: %d/%d readable, %d reads degraded to the mirror, %d lost\n",
			d, rep.Readable, rep.Blocks, rep.DegradedReads, rep.Lost)
	}

	// Load-smoothing reads: with a hot primary, reads fail over.
	depths := make([]int, mirrored.N())
	depths[p] = 12 // primary busy
	from, err := mirrored.ReadFrom(b, depths)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nread policy: primary disk %d has queue depth 12 -> serve from disk %d\n", p, from)

	// The guarantee survives scaling: add a disk group, remove a disk, and
	// re-drill. The offset recomputes against the new N automatically.
	if err := strat.AddDisks(2); err != nil {
		log.Fatal(err)
	}
	if err := strat.RemoveDisks(1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter scaling to %d disks:\n", mirrored.N())
	worstDegraded := 0
	for d := 0; d < mirrored.N(); d++ {
		rep, err := mirrored.Survive(blocks, map[int]bool{d: true})
		if err != nil {
			log.Fatal(err)
		}
		if rep.Lost != 0 {
			log.Fatalf("disk %d failure lost %d blocks", d, rep.Lost)
		}
		if rep.DegradedReads > worstDegraded {
			worstDegraded = rep.DegradedReads
		}
	}
	fmt.Printf("  every single-disk failure still loses 0 blocks (worst case %d degraded reads)\n",
		worstDegraded)

	// The limit of mirroring: losing an offset pair loses blocks. This is
	// what the paper's planned parity extension would address.
	partner := (0 + (mirrored.N()+1)/2) % mirrored.N()
	rep, err := mirrored.Survive(blocks, map[int]bool{0: true, partner: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  limit: losing offset partners 0 and %d loses %d blocks (%.1f%%)\n",
		partner, rep.Lost, 100*float64(rep.Lost)/float64(rep.Blocks))
}
