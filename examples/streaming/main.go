// Streaming: the real data plane end to end — thousands of round-paced
// sessions playing actual bytes through a scale-up and a disk failure drill.
//
// This is the harness behind experiment E19. It boots a gateway whose disks
// carry real per-disk segment stores (internal/dataplane), opens many
// concurrent playback sessions against GET /v1/sessions/{id}/stream, and
// drains every one to completion while the array (1) gains disks in a live
// SCADDAR scale-up and (2) loses and rebuilds a disk. Every delivered chunk
// is verified byte-for-byte against the seeded content oracle — the exact
// bytes ingest wrote — and every inter-chunk gap is recorded, split into
// the before/during/after phases of the maintenance window, so the output
// shows what reorganization does to delivery pacing (the paper's hiccups).
//
// Placement tracking uses the snapshot+delta side channel: all sessions
// share ONE client locator fed by GET /v1/locator/snapshot once plus
// GET /v1/locator/deltas long-polls, so the locator cost of a reorg is a
// single subscription, not sessions × blocks lookups.
//
// Sessions talk to the gateway's http.Handler through an in-process pipe
// transport rather than TCP sockets: the handler stack (routing, streaming
// writes, flushes, context cancellation) is exercised unchanged, but the
// harness can hold 10,000 concurrent streams without hitting the file-
// descriptor ceiling. Control requests use the same transport.
//
// Run with: go run ./examples/streaming
// E19 scale: go run ./examples/streaming -sessions 10000 -disks 120 -objects 100 -blocks 24 -round 1s
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"scaddar"
)

var (
	roundD     = flag.Duration("round", 20*time.Millisecond, "wall-clock round period (one chunk per session per round)")
	sessions   = flag.Int("sessions", 240, "concurrent streaming sessions")
	nDisks     = flag.Int("disks", 24, "initial disk count")
	addDisks   = flag.Int("add", 4, "disks added by the mid-run scale-up")
	objects    = flag.Int("objects", 48, "objects in the library")
	blocks     = flag.Int("blocks", 40, "blocks per object (session length in rounds)")
	blockBytes = flag.Int64("block-bytes", 4<<10, "payload bytes per block")
	buffer     = flag.Int("buffer", 8, "per-session chunk buffer (rounds)")
	evictAfter = flag.Int("evict-after", 120, "consecutive missed rounds before eviction")
	mailbox    = flag.Int("mailbox", 1024, "gateway command mailbox depth (sized for the open stampede)")
)

// phase labels the maintenance window for gap attribution.
const (
	phaseBefore = iota
	phaseDuring
	phaseAfter
)

func main() {
	flag.Parse()

	// Server with a real data plane: segment stores under every disk,
	// mirrored redundancy so the failure drill degrades instead of losing
	// blocks, and the seeded oracle as the single source of payload truth.
	factory := func(seed uint64) scaddar.Source { return scaddar.NewSplitMix64(seed) }
	strat, err := scaddar.NewScaddarStrategy(*nDisks, scaddar.NewX0Func(factory))
	if err != nil {
		log.Fatal(err)
	}
	cfg := scaddar.DefaultServerConfig()
	cfg.Redundancy = scaddar.RedundancyMirror
	cfg.BlockBytes = *blockBytes
	srv, err := scaddar.NewServer(cfg, strat)
	if err != nil {
		log.Fatal(err)
	}
	payloadDir, err := os.MkdirTemp("", "scaddar-streaming-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(payloadDir)
	mgr, err := scaddar.NewPayloadManager(payloadDir, scaddar.PayloadOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer mgr.Close()
	if err := srv.AttachPayloads(mgr.Factory(), scaddar.SeededContent); err != nil {
		log.Fatal(err)
	}
	libCfg := scaddar.DefaultLibraryConfig()
	libCfg.Objects, libCfg.MinBlocks, libCfg.MaxBlocks = *objects, *blocks, *blocks
	libCfg.BlockBytes = cfg.BlockBytes
	lib, err := scaddar.Library(libCfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, obj := range lib {
		if err := srv.AddObject(obj); err != nil {
			log.Fatal(err)
		}
	}
	gw, err := scaddar.NewGateway(srv, scaddar.GatewayConfig{
		Factory:          factory,
		Round:            *roundD,
		StreamBuffer:     *buffer,
		StreamEvictAfter: *evictAfter,
		MailboxDepth:     *mailbox,
	})
	if err != nil {
		log.Fatal(err)
	}
	hc := &http.Client{Transport: handlerTransport{h: gw.Handler()}}
	base := "http://gateway.local"
	fmt.Printf("streaming: %d disks, %d objects x %d blocks x %dB, %d sessions, round %s (%.1f MB/round at full rate)\n",
		*nDisks, *objects, *blocks, *blockBytes, *sessions, *roundD,
		float64(*sessions)*float64(*blockBytes)/1e6)

	// One shared locator for every session: snapshot once, then deltas.
	loc := scaddar.NewStreamClientLocator(factory)
	if err := applySnapshot(hc, base, loc); err != nil {
		log.Fatal(err)
	}
	followCtx, stopFollow := context.WithCancel(context.Background())
	var resyncs atomic.Int64
	var followWG sync.WaitGroup
	followWG.Add(1)
	go func() {
		defer followWG.Done()
		followDeltas(followCtx, hc, base, loc, &resyncs)
	}()

	// Gap histograms per phase, in seconds. Buckets fine enough to resolve
	// fractions of a round around the configured pace.
	reg := scaddar.NewMetricsRegistry()
	gapBuckets := scaddar.ExpBuckets(float64(*roundD)/float64(time.Second)/8, 1.3, 40)
	gapH := [3]*scaddar.Histogram{
		reg.NewHistogram("gap_before_seconds", "inter-chunk gaps before maintenance", gapBuckets),
		reg.NewHistogram("gap_during_seconds", "inter-chunk gaps during maintenance", gapBuckets),
		reg.NewHistogram("gap_after_seconds", "inter-chunk gaps after maintenance", gapBuckets),
	}
	var phase atomic.Int32

	// The session fleet: each goroutine opens one session and drains its
	// stream to the end frame, verifying every chunk against the oracle and
	// the shared locator. Admission and attach are two requests, so the
	// pacer may play a stream's first round(s) unattended before the GET
	// lands — those head chunks are dropped by design and tracked as late
	// joins; everything after the first received frame is zero-tolerance:
	// a mid-stream index gap must match a server-counted miss, and any
	// content mismatch, frame error, or non-"done" ending is a failure.
	var (
		wg         sync.WaitGroup
		opened     atomic.Int64
		done       atomic.Int64
		chunks     atomic.Int64
		badEnd     atomic.Int64
		mismatch   atomic.Int64
		locErrs    atomic.Int64
		frameErrs  atomic.Int64
		headMissed atomic.Int64    // chunks paced out before the consumer attached
		lateJoins  atomic.Int64    // sessions whose first received frame was not chunk 0
		midGaps    atomic.Int64    // chunks skipped after the first received frame
		hiccups    [3]atomic.Int64 // gaps > 2 rounds, per phase
	)
	deadline := 2 * *roundD
	for i := 0; i < *sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			object := i % *objects
			sid, err := openSession(hc, base, object, i)
			if err != nil {
				badEnd.Add(1)
				log.Printf("session open (object %d): %v", object, err)
				return
			}
			opened.Add(1)
			resp, err := attachStream(hc, base, sid, i)
			if err != nil {
				badEnd.Add(1)
				log.Printf("session %d: %v", sid, err)
				return
			}
			defer resp.Body.Close()
			obj, _ := loc.Object(object)
			br := bufio.NewReader(resp.Body)
			last := time.Time{}
			next, first := 0, true
			for {
				f, err := scaddar.ReadStreamFrame(br)
				if err != nil {
					frameErrs.Add(1)
					badEnd.Add(1)
					return
				}
				if f.End {
					if f.Reason == scaddar.StreamCloseDone && next == *blocks {
						done.Add(1)
					} else {
						badEnd.Add(1)
					}
					return
				}
				switch {
				case first:
					// A late join: rounds paced out before we attached.
					if f.Index > 0 {
						lateJoins.Add(1)
						headMissed.Add(int64(f.Index))
					}
					first = false
				case f.Index > next:
					midGaps.Add(int64(f.Index - next))
				case f.Index < next:
					mismatch.Add(1) // replay/reorder: never legal
				}
				next = f.Index + 1
				if !scaddar.VerifySeededContent(f.Data, obj.Seed, uint64(f.Index)) {
					mismatch.Add(1)
				}
				if _, err := loc.Locate(object, f.Index); err != nil {
					locErrs.Add(1)
				}
				now := time.Now()
				if !last.IsZero() {
					p := phase.Load()
					gapH[p].ObserveDuration(now.Sub(last))
					if now.Sub(last) > deadline {
						hiccups[p].Add(1)
					}
				}
				last = now
				chunks.Add(1)
			}
		}(i)
	}

	// Maintenance under full streaming load: let pacing establish, then run
	// one scale-up and one fail/rebuild cycle back to back — the "during"
	// phase for gap attribution.
	waitRounds(gw, 4)
	phase.Store(phaseDuring)
	fmt.Printf("scale:   +%d disks while %d sessions stream...\n", *addDisks, opened.Load())
	post(hc, base, "/v1/scale", fmt.Sprintf(`{"add": %d}`, *addDisks), func() bool {
		st := gw.Status()
		return st.Reorganizing || st.Disks == *nDisks+*addDisks
	})
	waitFor("scale-up", gw, func(st scaddar.GatewayStatus) bool {
		return !st.Reorganizing && st.Disks == *nDisks+*addDisks
	})
	fmt.Printf("drill:   failing disk 2, then repairing it...\n")
	post(hc, base, "/v1/disks/2/fail", "", func() bool { return gw.Status().Degraded })
	waitRounds(gw, 2)
	rebuiltBefore := gw.Status().Server.BlocksRebuilt
	post(hc, base, "/v1/disks/2/repair", "", func() bool {
		st := gw.Status()
		return !st.Degraded || st.Server.BlocksRebuilt > rebuiltBefore
	})
	waitFor("rebuild", gw, func(st scaddar.GatewayStatus) bool { return !st.Degraded })
	phase.Store(phaseAfter)
	st := gw.Status()
	fmt.Printf("drill:   healthy again; %d blocks migrated, %d rebuilt\n",
		st.Server.BlocksMigrated, st.Server.BlocksRebuilt)

	wg.Wait()
	stopFollow()
	followWG.Wait()

	// Report: pacing percentiles per phase, then the verdicts.
	fmt.Printf("deltas:  locator feed published %d deltas, %d client resyncs\n",
		gw.Status().Gateway.DeltasPublished, resyncs.Load())
	for p, name := range []string{"before", "during", "after "} {
		s := gapH[p].Snapshot()
		if s.Count == 0 {
			continue
		}
		fmt.Printf("gaps %s: n=%-8d p50 %6.1fms  p90 %6.1fms  p99 %6.1fms  p99.9 %6.1fms  hiccups(>2 rounds) %d\n",
			name, s.Count, s.Quantile(0.50)*1e3, s.Quantile(0.90)*1e3,
			s.Quantile(0.99)*1e3, s.Quantile(0.999)*1e3, hiccups[p].Load())
	}
	g := gw.Status()
	fmt.Printf("server:  %d chunks delivered, %d round misses, %d evictions, %d degraded reads, %d unrecoverable\n",
		g.Gateway.StreamChunks, g.Gateway.StreamMisses, g.Gateway.StreamEvictions,
		g.Server.DegradedReads, g.Server.UnrecoverableReads)

	if err := shutdown(gw); err != nil {
		log.Fatalf("drain: %v", err)
	}
	want := int64(*sessions)
	total := int64(*sessions) * int64(*blocks)
	fmt.Printf("load:    %d/%d sessions played to completion, %d/%d chunks verified (%d head chunks on %d late joins)\n",
		done.Load(), want, chunks.Load(), total, headMissed.Load(), lateJoins.Load())
	// Conservation: every block the server served was either received and
	// verified by a client, paced out before that client attached (late
	// join), or dropped as a server-counted round miss. Nothing vanishes
	// silently.
	switch {
	case done.Load() != want || badEnd.Load() != 0:
		log.Fatalf("FAIL: lost sessions: %d done, %d failed (want %d done, 0 failed)",
			done.Load(), badEnd.Load(), want)
	case mismatch.Load() != 0 || frameErrs.Load() != 0:
		log.Fatalf("FAIL: %d chunk mismatches, %d frame errors — delivered bytes differ from ingest",
			mismatch.Load(), frameErrs.Load())
	case locErrs.Load() != 0:
		log.Fatalf("FAIL: %d client-locator lookup failures", locErrs.Load())
	case g.Server.UnrecoverableReads != 0:
		log.Fatalf("FAIL: %d unrecoverable reads — redundancy lost blocks", g.Server.UnrecoverableReads)
	case chunks.Load() != g.Gateway.StreamChunks:
		log.Fatalf("FAIL: clients received %d chunks, server buffered %d — chunks lost in flight",
			chunks.Load(), g.Gateway.StreamChunks)
	case chunks.Load()+headMissed.Load()+midGaps.Load() != total:
		log.Fatalf("FAIL: %d received + %d late-join head + %d mid-stream gaps != %d served",
			chunks.Load(), headMissed.Load(), midGaps.Load(), total)
	case midGaps.Load() != g.Gateway.StreamMisses:
		log.Fatalf("FAIL: clients saw %d mid-stream gaps, server counted %d round misses",
			midGaps.Load(), g.Gateway.StreamMisses)
	case g.Gateway.StreamEvictions != 0:
		log.Fatalf("FAIL: %d sessions evicted", g.Gateway.StreamEvictions)
	}
	fmt.Println("OK: every session played to the end through a scale-up and a rebuild — every chunk byte-identical to ingest")
}

// openSession opens one playback session (paused, so the pacer delivers
// nothing until the stream attach lands and resumes it — under an open
// stampede the attach can trail the open by many rounds) and returns its
// ID. 503 is backpressure (a full mailbox during the open stampede, or
// admission control), so it retries with jitter until the deadline.
func openSession(hc *http.Client, base string, object, jitterSeed int) (int, error) {
	body := fmt.Sprintf(`{"object": %d, "paused": true}`, object)
	deadline := time.Now().Add(2 * time.Minute)
	for attempt := 0; ; attempt++ {
		resp, err := hc.Post(base+"/v1/sessions", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			return 0, err
		}
		var out struct {
			Session int `json:"session"`
		}
		ok := resp.StatusCode == http.StatusCreated
		if ok {
			err = json.NewDecoder(resp.Body).Decode(&out)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if ok && err == nil {
			return out.Session, nil
		}
		retryable := resp.StatusCode == http.StatusServiceUnavailable ||
			resp.StatusCode == http.StatusGatewayTimeout
		if retryable && time.Now().Before(deadline) {
			// Spread the retries so ten thousand rejected openers do not
			// stampede the mailbox again in lockstep.
			time.Sleep(time.Duration(2+(jitterSeed+attempt*7)%23) * time.Millisecond)
			continue
		}
		return 0, fmt.Errorf("open session: status %d (attempt %d)", resp.StatusCode, attempt)
	}
}

// attachStream opens the session's chunk stream, retrying backpressure
// rejections (503) and mailbox-queue timeouts (504) the same way openSession
// does; the stream plays unattended until the attach lands, which the
// late-join accounting absorbs.
func attachStream(hc *http.Client, base string, sid, jitterSeed int) (*http.Response, error) {
	deadline := time.Now().Add(2 * time.Minute)
	for attempt := 0; ; attempt++ {
		resp, err := hc.Get(fmt.Sprintf("%s/v1/sessions/%d/stream", base, sid))
		if err != nil {
			return nil, err
		}
		if resp.StatusCode == http.StatusOK {
			return resp, nil
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		retryable := resp.StatusCode == http.StatusServiceUnavailable ||
			resp.StatusCode == http.StatusGatewayTimeout
		if retryable && time.Now().Before(deadline) {
			time.Sleep(time.Duration(2+(jitterSeed+attempt*7)%23) * time.Millisecond)
			continue
		}
		return nil, fmt.Errorf("attach stream %d: status %d (attempt %d)", sid, resp.StatusCode, attempt)
	}
}

// applySnapshot fetches the full locator snapshot and installs it.
func applySnapshot(hc *http.Client, base string, loc *scaddar.StreamClientLocator) error {
	resp, err := hc.Get(base + "/v1/locator/snapshot")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("locator snapshot: status %d", resp.StatusCode)
	}
	var snap scaddar.StreamLocatorSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return err
	}
	return loc.ApplySnapshot(&snap)
}

// followDeltas long-polls the locator delta feed into the shared locator
// until ctx cancels, resyncing from a fresh snapshot when it falls off the
// bounded feed.
func followDeltas(ctx context.Context, hc *http.Client, base string,
	loc *scaddar.StreamClientLocator, resyncs *atomic.Int64) {
	for ctx.Err() == nil {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			fmt.Sprintf("%s/v1/locator/deltas?after=%d", base, loc.Seq()), nil)
		if err != nil {
			return
		}
		resp, err := hc.Do(req)
		if err != nil {
			return // canceled, or the gateway is shutting down
		}
		var out struct {
			Deltas []scaddar.StreamLocatorDelta `json:"deltas"`
			Seq    uint64                       `json:"seq"`
		}
		code := resp.StatusCode
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if code == http.StatusGone || err != nil {
			resyncs.Add(1)
			if applySnapshot(hc, base, loc) != nil {
				return
			}
			continue
		}
		for _, d := range out.Deltas {
			if loc.Apply(d) != nil {
				resyncs.Add(1)
				if applySnapshot(hc, base, loc) != nil {
					return
				}
				break
			}
		}
	}
}

// post issues a control request and requires 202, retrying 503 (the control
// plane shares the mailbox with session traffic) until a deadline. A 504 is
// ambiguous — the command may still land after the gateway's exec deadline,
// or be skipped as expired at the mailbox head — so took, an observable
// effect predicate, arbitrates: post watches for the effect for a while and
// re-POSTs only if it never appears. Blind retry would double-apply (two
// scale-ups instead of one).
func post(hc *http.Client, base, path, body string, took func() bool) {
	deadline := time.Now().Add(2 * time.Minute)
	for {
		resp, err := hc.Post(base+path, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			log.Fatal(err)
		}
		code := resp.StatusCode
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch {
		case code == http.StatusAccepted:
			return
		case time.Now().After(deadline):
			log.Fatalf("POST %s -> %d", path, code)
		case code == http.StatusServiceUnavailable:
			time.Sleep(20 * time.Millisecond)
		case code == http.StatusGatewayTimeout:
			for i := 0; i < 40 && !took(); i++ {
				time.Sleep(50 * time.Millisecond)
			}
			if took() {
				return
			}
		default:
			log.Fatalf("POST %s -> %d", path, code)
		}
	}
}

// waitFor polls gateway status until done reports true.
func waitFor(what string, gw *scaddar.Gateway, pred func(scaddar.GatewayStatus) bool) {
	deadline := time.Now().Add(10 * time.Minute)
	for !pred(gw.Status()) {
		if time.Now().After(deadline) {
			log.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitRounds sleeps for n wall-clock rounds.
func waitRounds(gw *scaddar.Gateway, n int) {
	start := gw.Status().Rounds
	waitFor("rounds", gw, func(st scaddar.GatewayStatus) bool { return st.Rounds >= start+n })
}

// shutdown drains the gateway.
func shutdown(gw *scaddar.Gateway) error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	return gw.Shutdown(ctx)
}

// handlerTransport serves requests straight through an http.Handler with a
// piped streaming body — the full handler stack without TCP sockets, so a
// 10k-session fleet costs goroutines, not file descriptors.
type handlerTransport struct{ h http.Handler }

// RoundTrip implements http.RoundTripper.
func (t handlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	pr, pw := io.Pipe()
	rw := &pipeResponse{pw: pw, header: make(http.Header), ready: make(chan struct{})}
	go func() {
		t.h.ServeHTTP(rw, req)
		rw.finish()
	}()
	<-rw.ready
	return &http.Response{
		Status:     http.StatusText(rw.status),
		StatusCode: rw.status,
		Proto:      "HTTP/1.1",
		ProtoMajor: 1,
		ProtoMinor: 1,
		Header:     rw.header,
		Body:       pr,
		Request:    req,
	}, nil
}

// pipeResponse adapts an io.Pipe into the http.ResponseWriter + Flusher the
// streaming handler needs. The response becomes visible to the client at
// the first WriteHeader/Write (like a real server); closing the pipe ends
// the body.
type pipeResponse struct {
	pw     *io.PipeWriter
	header http.Header
	status int
	once   sync.Once
	ready  chan struct{}
}

// Header implements http.ResponseWriter.
func (w *pipeResponse) Header() http.Header { return w.header }

// WriteHeader implements http.ResponseWriter; the first call releases the
// buffered *http.Response to the client.
func (w *pipeResponse) WriteHeader(code int) {
	w.once.Do(func() {
		w.status = code
		close(w.ready)
	})
}

// Write implements http.ResponseWriter, streaming into the pipe.
func (w *pipeResponse) Write(p []byte) (int, error) {
	w.WriteHeader(http.StatusOK)
	return w.pw.Write(p)
}

// Flush implements http.Flusher; the pipe has no buffering to flush.
func (w *pipeResponse) Flush() {}

// finish releases a response that never wrote anything and ends the body.
func (w *pipeResponse) finish() {
	w.WriteHeader(http.StatusOK)
	w.pw.Close()
}
