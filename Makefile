GO ?= go

.PHONY: build test verify fuzz clean

# Tier-1 gate: everything must build and the full suite must pass.
build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# Tier-1+ gate: vet plus the full suite under the race detector, then the
# gateway example end to end (live HTTP scaling + failure drill + drain;
# it exits non-zero if any concurrent read fails) and the crash-recovery
# example (journal bootstrap, torn-write crash mid-migration, recovery with
# every block location verified). Run this before merging anything that
# touches the server, the rebuild executor, the fault injector, the
# gateway, or the store — the concurrency- and durability-sensitive layers.
verify:
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) run ./examples/gateway -duration 200ms
	$(GO) run ./examples/recovery

# Short fuzz passes over the History codecs (seed corpora under
# internal/scaddar/testdata/fuzz/) and the write-ahead-journal reader.
fuzz:
	$(GO) test ./internal/scaddar/ -fuzz FuzzCodec -fuzztime 30s
	$(GO) test ./internal/store/ -fuzz FuzzJournal -fuzztime 30s

clean:
	$(GO) clean ./...
