GO ?= go

.PHONY: build test verify fuzz clean

# Tier-1 gate: everything must build and the full suite must pass.
build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# Tier-1+ gate: vet plus the full suite under the race detector, then the
# gateway example end to end (live HTTP scaling + failure drill + drain;
# it exits non-zero if any concurrent read fails). Run this before merging
# anything that touches the server, the rebuild executor, the fault
# injector, or the gateway — the concurrency-sensitive layers.
verify:
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) run ./examples/gateway -duration 200ms

# Short fuzz pass over the History codecs (seed corpora under
# internal/scaddar/testdata/fuzz/).
fuzz:
	$(GO) test ./internal/scaddar/ -fuzz FuzzCodec -fuzztime 30s

clean:
	$(GO) clean ./...
