GO ?= go

.PHONY: build test lint verify benchtables bench bench-cluster bench-stream bench-bin fuzz clean

# Tier-1 gate: everything must build and the full suite must pass.
build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# Static gates: vet, the exported-surface documentation check — every
# exported identifier in the facade and in the concurrency/durability
# packages (internal/cm, internal/gateway, internal/binproto,
# internal/store, internal/obs) must carry a doc comment stating its
# contract — and the wire-spec sync check: every exported opcode, error
# code, and flag constant in internal/binproto must be mentioned in
# docs/PROTOCOL.md, so the spec cannot silently fall behind the code.
lint:
	$(GO) vet ./...
	$(GO) run ./tools/missingdoc
	$(GO) run ./tools/speclink

# Tier-1+ gate: lint plus the full suite under the race detector — which
# includes the replication chaos harness (internal/repl TestChaosConvergence:
# seeded network faults + a leader kill/restart, byte-identical convergence)
# — then the gateway example end to end (live HTTP scaling + failure drill +
# drain; it exits non-zero if any concurrent read fails), the crash-recovery
# example (journal bootstrap, torn-write crash mid-migration, recovery with
# every block location verified), the replication example (journal
# shipping through the fault injector with a leader restart, every block
# location compared), the cluster example (a shard joins a 3-shard
# cluster under live load; moved fraction within 10% of the jump-hash
# ideal, every object verified on its home shard, zero failed reads), and
# the streaming example (real segment-store bytes paced to concurrent
# chunked sessions through a scale-up and a disk fail/rebuild; every chunk
# oracle-verified, delivery accounted chunk-for-chunk against the server's
# counters). The race-detected suite includes the seeded cluster scale
# harness (internal/cluster TestClusterScaleUnderLoad: shard add + drain
# under Zipf load, zero lost blocks, oracle-checked reads). Run this before
# merging anything that touches the server, the rebuild executor, the
# fault injectors, the gateway, the store, the replication layer, or the
# cluster router — the concurrency- and durability-sensitive layers.
verify: lint
	$(GO) test -race ./...
	$(GO) run ./examples/gateway -duration 200ms
	$(GO) run ./examples/recovery
	$(GO) run ./examples/replication
	$(GO) run ./examples/cluster -duration 200ms
	$(GO) run -race ./examples/streaming -round 60ms -sessions 48 -disks 12 -add 2 -objects 24 -blocks 12
	$(GO) run ./examples/binlookup

# Regenerate the committed experiment-table capture (the source for the
# tables quoted in README.md and EXPERIMENTS.md), so docs cannot silently
# drift from the code. Commit the refreshed file with any change that
# moves a number.
benchtables:
	$(GO) run ./cmd/benchtables > benchtables_output.txt
	@echo "regenerated benchtables_output.txt"

# Capture the core benchmark suite as BENCH_5.json (benchmark name →
# ns/op, allocs/op), the committed perf baseline for the compiled-chain
# work. Re-run and commit with any change that moves a number.
bench:
	$(GO) test -run '^$$' -bench 'Locat|Lookup|Snapshot|PlanAdd|SafeLocator|Strategy|Codec|PRNG|Gateway|Compiled' -benchmem ./... | $(GO) run ./tools/benchjson > BENCH_5.json
	@echo "regenerated BENCH_5.json"

# Capture the cluster-router benchmarks as BENCH_7.json: the pure routing
# decision (whitening + jump hash, per shard count) and the full routed
# read path through a live 3-shard cluster, to compare against the
# single-gateway BenchmarkGatewayRead baseline in BENCH_5.json. Re-run and
# commit with any change that moves a number.
bench-cluster:
	$(GO) test -run '^$$' -bench 'ClusterRoute|ClusterGatewayRead' -benchmem ./internal/cluster/ | $(GO) run ./tools/benchjson > BENCH_7.json
	@echo "regenerated BENCH_7.json"

# Capture the streaming data-plane benchmarks as BENCH_10.json: the
# per-chunk hot path (pooled buffer → session buffer → wire frame →
# scratch-reuse client decode, zero allocations per chunk), the locator
# feed's publish/catch-up cycle alone and fanning out to 64 parked
# long-pollers, and the full round-delivery path (per-disk batched,
# coalesced segment reads feeding every playing stream) across disk counts
# plus the unbatched per-block baseline. BENCH_8.json is the pre-pooling
# capture of the same chunk path, kept as history. Re-run and commit with
# any change that moves a number.
bench-stream:
	$(GO) test -run '^$$' -bench 'StreamChunk|DeltaFeed|RoundDelivery' -benchmem ./internal/dataplane/ ./internal/cm/ | $(GO) run ./tools/benchjson > BENCH_10.json
	@echo "regenerated BENCH_10.json"

# Capture the binary-lookup-protocol benchmarks as BENCH_9.json: frame
# encode/decode alone, then the full client/server round trip over
# loopback TCP — single pipelined lookups and 64-lookup batches — next to
# the HTTP read path (BenchmarkGatewayRead) they are measured against in
# EXPERIMENTS.md E20. Re-run and commit with any change that moves a
# number.
bench-bin:
	$(GO) test -run '^$$' -bench 'GatewayRead|EncodeBatch|DecodeBatch' -benchmem ./internal/gateway/ ./internal/binproto/ | $(GO) run ./tools/benchjson > BENCH_9.json
	@echo "regenerated BENCH_9.json"

# Short fuzz passes over the History codecs (seed corpora under
# internal/scaddar/testdata/fuzz/), the compiled-chain differential
# fuzzer (compiled vs interpreted lookups), the write-ahead-journal
# reader, and the binary-protocol frame handler (hostile frames against a
# live server; the connection must survive or die per spec, never panic).
fuzz:
	$(GO) test ./internal/scaddar/ -fuzz FuzzCodec -fuzztime 30s
	$(GO) test ./internal/scaddar/ -fuzz FuzzCompiledChain -fuzztime 30s
	$(GO) test ./internal/store/ -fuzz FuzzJournal -fuzztime 30s
	$(GO) test ./internal/binproto/ -fuzz FuzzBinProto -fuzztime 30s

clean:
	$(GO) clean ./...
