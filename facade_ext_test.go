package scaddar_test

// Facade tests for the extensions beyond the paper's core: parity, jump
// hashing, traces, forecasting, the concurrent locator, and the cached
// server — everything exercised strictly through the public API.

import (
	"testing"

	"scaddar"
)

func facadeX0() scaddar.X0Func {
	return scaddar.NewX0Func(func(seed uint64) scaddar.Source {
		return scaddar.NewSplitMix64(seed)
	})
}

func TestFacadeParity(t *testing.T) {
	strat, err := scaddar.NewScaddarStrategy(8, facadeX0())
	if err != nil {
		t.Fatal(err)
	}
	p, err := scaddar.NewParity(strat, 4)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := p.Place(1, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !layout.Mirrored && layout.ParityDisk < 0 {
		t.Fatalf("layout %+v", layout)
	}
	rep, err := p.Survive(map[uint64]int{1: 100}, map[int]bool{0: true})
	if err != nil || rep.Lost != 0 {
		t.Fatalf("survive: %+v %v", rep, err)
	}
}

func TestFacadeJump(t *testing.T) {
	j, err := scaddar.NewJumpStrategy(8, facadeX0())
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AddDisks(2); err != nil {
		t.Fatal(err)
	}
	if d := j.Disk(scaddar.BlockRef{Seed: 3, Index: 9}); d < 0 || d >= 10 {
		t.Fatalf("disk %d", d)
	}
	if err := j.RemoveDisks(4); err == nil {
		t.Fatal("jump middle removal accepted")
	}
	if err := j.RemoveDisks(9); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeForecast(t *testing.T) {
	hist := scaddar.MustNewHistory(4)
	f, err := scaddar.ForecastPlan(hist, 32, 0.05, []scaddar.PlannedOp{
		{Add: 1}, {Add: 1}, {Remove: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Steps) != 3 || f.RedistributeAfter != 3 {
		t.Fatalf("forecast %+v", f)
	}
}

func TestFacadeSafeLocator(t *testing.T) {
	hist := scaddar.MustNewHistory(6)
	hist.Add(1)
	safe, err := scaddar.NewSafeLocator(hist, func(seed uint64) scaddar.Source {
		return scaddar.NewSplitMix64(seed)
	})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := scaddar.NewLocator(hist, func(seed uint64) scaddar.Source {
		return scaddar.NewSplitMix64(seed)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		a, err := safe.Disk(5, i)
		if err != nil {
			t.Fatal(err)
		}
		b, err := plain.Disk(5, i)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("block %d: safe %d, plain %d", i, a, b)
		}
	}
}

func TestFacadeTraceRoundTrip(t *testing.T) {
	cfg := scaddar.DefaultSession()
	cfg.Streams = 10
	cfg.Rounds = 15
	cfg.ScaleUpAt = 0
	tr, err := scaddar.GenerateSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := tr.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back scaddar.Trace
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}

	strat, err := scaddar.NewScaddarStrategy(6, facadeX0())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := scaddar.NewServer(scaddar.DefaultServerConfig(), strat)
	if err != nil {
		t.Fatal(err)
	}
	libCfg := scaddar.DefaultLibraryConfig()
	libCfg.Objects = cfg.Objects
	libCfg.MinBlocks, libCfg.MaxBlocks = cfg.BlocksPer, cfg.BlocksPer
	lib, err := scaddar.Library(libCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, obj := range lib {
		if err := srv.AddObject(obj); err != nil {
			t.Fatal(err)
		}
	}
	res, err := scaddar.ApplyTrace(srv, &back)
	if err != nil {
		t.Fatal(err)
	}
	if res.Streams != cfg.Streams || res.Metrics.Rounds != cfg.Rounds {
		t.Fatalf("replay %+v", res)
	}
}

func TestFacadeCachedServer(t *testing.T) {
	strat, err := scaddar.NewScaddarStrategy(4, facadeX0())
	if err != nil {
		t.Fatal(err)
	}
	cfg := scaddar.DefaultServerConfig()
	cfg.CacheBlocks = 256
	srv, err := scaddar.NewServer(cfg, strat)
	if err != nil {
		t.Fatal(err)
	}
	libCfg := scaddar.DefaultLibraryConfig()
	libCfg.Objects = 2
	libCfg.MinBlocks, libCfg.MaxBlocks = 100, 100
	lib, err := scaddar.Library(libCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, obj := range lib {
		if err := srv.AddObject(obj); err != nil {
			t.Fatal(err)
		}
	}
	// Two synchronized streams: the second hits the cache.
	if _, err := srv.StartStream(0); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.StartStream(0); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 50; r++ {
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if srv.Metrics().CacheHits == 0 {
		t.Fatal("no cache hits for a synchronized pair")
	}
}

func TestFacadeFullRedistributeAndBudget(t *testing.T) {
	strat, err := scaddar.NewScaddarStrategy(4, facadeX0())
	if err != nil {
		t.Fatal(err)
	}
	cfg := scaddar.DefaultServerConfig()
	cfg.GeneratorBits = 64
	cfg.Tolerance = 0.01
	srv, err := scaddar.NewServer(cfg, strat)
	if err != nil {
		t.Fatal(err)
	}
	libCfg := scaddar.DefaultLibraryConfig()
	libCfg.Objects = 2
	libCfg.MinBlocks, libCfg.MaxBlocks = 150, 150
	lib, err := scaddar.Library(libCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, obj := range lib {
		if err := srv.AddObject(obj); err != nil {
			t.Fatal(err)
		}
	}
	if srv.Budget() == nil || srv.NeedsRedistribution() {
		t.Fatal("budget state wrong on a fresh server")
	}
	if _, err := srv.FullRedistribute(); err != nil {
		t.Fatal(err)
	}
	for srv.Reorganizing() {
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.FinishReorganization(); err != nil {
		t.Fatal(err)
	}
	if err := srv.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}
