package scaddar_test

// One benchmark per paper artifact (E1..E8; see DESIGN.md for the index),
// plus micro-benchmarks of the core operations whose cost the paper argues
// about: the REMAP chain lookup (AO1), plan construction (RF), and the
// operation-log codec. Run with:
//
//	go test -bench=. -benchmem
//
// The E* benchmarks execute a full experiment per iteration, so their
// ns/op is the cost of regenerating the corresponding table.

import (
	"testing"

	"scaddar"
	"scaddar/internal/experiments"
	"scaddar/internal/placement"
	"scaddar/internal/prng"
	"scaddar/internal/reorg"
	iscaddar "scaddar/internal/scaddar"
)

// BenchmarkE1NaiveSkew regenerates Figure 1 (naive-approach skew).
func BenchmarkE1NaiveSkew(b *testing.B) {
	cfg := experiments.DefaultE1()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunE1(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2LoadBalance regenerates the Section 5 CoV-vs-operations series.
func BenchmarkE2LoadBalance(b *testing.B) {
	cfg := experiments.DefaultE2()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunE2(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3Movement regenerates the RO1 movement-fraction table.
func BenchmarkE3Movement(b *testing.B) {
	cfg := experiments.DefaultE3()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunE3(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4Bound regenerates the Section 4.3 budget table.
func BenchmarkE4Bound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunE4(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5AccessCost regenerates the AO1 access-cost series (with a
// reduced lookup count per iteration; the table itself times lookups).
func BenchmarkE5AccessCost(b *testing.B) {
	cfg := experiments.DefaultE5()
	cfg.Lookups = 20000
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunE5(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6Unfairness regenerates the Lemma 4.2/4.3 bound-vs-empirical
// series.
func BenchmarkE6Unfairness(b *testing.B) {
	cfg := experiments.DefaultE6()
	cfg.Blocks = 1 << 16
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunE6(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7OnlineReorg regenerates the online-reorganization table.
func BenchmarkE7OnlineReorg(b *testing.B) {
	cfg := experiments.DefaultE7()
	cfg.Objects = 10
	cfg.BlocksPer = 300
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunE7(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8Mirror regenerates the Section 6 fault-tolerance table
// (mirroring vs hybrid parity).
func BenchmarkE8Mirror(b *testing.B) {
	cfg := experiments.DefaultE8()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunE8(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9Storage regenerates the metadata-storage comparison.
func BenchmarkE9Storage(b *testing.B) {
	cfg := experiments.DefaultE9()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunE9(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10Schedule regenerates the round-scheduling budgets.
func BenchmarkE10Schedule(b *testing.B) {
	cfg := experiments.DefaultE10()
	cfg.Trials = 10
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunE10(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE11Hetero regenerates the heterogeneous-array comparison.
func BenchmarkE11Hetero(b *testing.B) {
	cfg := experiments.DefaultE11()
	cfg.Rounds = 5
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunE11(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE12Generators regenerates the generator-quality comparison.
func BenchmarkE12Generators(b *testing.B) {
	cfg := experiments.DefaultE12()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunE12(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE13Cache regenerates the block-buffer sweep.
func BenchmarkE13Cache(b *testing.B) {
	cfg := experiments.DefaultE13()
	cfg.Rounds = 50
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunE13(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSafeLocatorParallel measures the concurrent access function
// under contention — a mixed read pattern across 8 objects.
func BenchmarkSafeLocatorParallel(b *testing.B) {
	hist := scaddar.MustNewHistory(8)
	hist.Add(2)
	hist.Remove(3)
	loc, err := scaddar.NewSafeLocator(hist, func(seed uint64) scaddar.Source {
		return scaddar.NewSplitMix64(seed)
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := uint64(0)
		for pb.Next() {
			i++
			if _, err := loc.Disk(i%8+1, i%10000); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- Micro-benchmarks of the core operations ----

// benchHistory builds a j-operation history mixing adds and removals.
func benchHistory(b *testing.B, ops int) *iscaddar.History {
	b.Helper()
	h, err := iscaddar.NewHistory(8)
	if err != nil {
		b.Fatal(err)
	}
	for j := 0; j < ops; j++ {
		if j%3 == 2 {
			if _, err := h.Remove(j % h.N()); err != nil {
				b.Fatal(err)
			}
		} else {
			if _, err := h.Add(1); err != nil {
				b.Fatal(err)
			}
		}
	}
	return h
}

// BenchmarkLocate measures the AO1 chain lookup at several history lengths.
func BenchmarkLocate(b *testing.B) {
	for _, ops := range []int{0, 1, 4, 16, 64} {
		h := benchHistory(b, ops)
		b.Run(benchName("ops", ops), func(b *testing.B) {
			b.ReportAllocs()
			x := uint64(0x9e3779b97f4a7c15)
			sink := 0
			for i := 0; i < b.N; i++ {
				sink += h.Locate(x + uint64(i))
			}
			if sink == -1 {
				b.Fatal("impossible")
			}
		})
	}
}

// BenchmarkLocateBatch measures the compiled chain's bulk sweep at the same
// history lengths as BenchmarkLocate; ns/op here covers 4096 blocks per
// iteration (see the ns/block metric).
func BenchmarkLocateBatch(b *testing.B) {
	xs := make([]uint64, 4096)
	src := prng.NewSplitMix64(7)
	for i := range xs {
		xs[i] = src.Next()
	}
	out := make([]int, len(xs))
	for _, ops := range []int{0, 1, 4, 16, 64} {
		chain := benchHistory(b, ops).Compile()
		b.Run(benchName("ops", ops), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				chain.LocateBatch(xs, out)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(xs)), "ns/block")
		})
	}
}

// BenchmarkLocatorDisk measures the full access function including the
// per-object generator.
func BenchmarkLocatorDisk(b *testing.B) {
	hist, err := scaddar.NewHistory(8)
	if err != nil {
		b.Fatal(err)
	}
	hist.Add(2)
	hist.Remove(3)
	loc, err := scaddar.NewLocator(hist, func(seed uint64) scaddar.Source {
		return scaddar.NewSplitMix64(seed)
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := loc.Disk(42, uint64(i%10000)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStrategyDisk compares per-lookup cost across strategies after a
// 4-operation history.
func BenchmarkStrategyDisk(b *testing.B) {
	x0 := placement.NewX0Func(func(seed uint64) prng.Source { return prng.NewSplitMix64(seed) })
	sc, _ := placement.NewScaddar(8, x0)
	nv, _ := placement.NewNaive(8, x0)
	rs, _ := placement.NewReshuffle(8, x0)
	rr, _ := placement.NewRoundRobin(8)
	dir, _ := placement.NewDirectory(8, prng.NewSplitMix64(5))
	ch, _ := placement.NewConsistent(8, 128)
	for _, s := range []placement.Strategy{sc, nv, rs, rr, dir, ch} {
		s.AddDisks(2)
		s.RemoveDisks(3)
		s.AddDisks(1)
		s.RemoveDisks(0)
		b.Run(s.Name(), func(b *testing.B) {
			b.ReportAllocs()
			sink := 0
			for i := 0; i < b.N; i++ {
				sink += s.Disk(placement.BlockRef{Seed: uint64(i % 64), Index: uint64(i % 4096)})
			}
			if sink == -1 {
				b.Fatal("impossible")
			}
		})
	}
}

// BenchmarkPlanAdd measures RF() plan construction for a 20k-block server.
func BenchmarkPlanAdd(b *testing.B) {
	blocks := experiments.BlockUniverse(20, 1000)
	x0 := experiments.X0FuncBits(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		strat, err := placement.NewScaddar(8, x0)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := reorg.PlanAdd(strat, blocks, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHistoryCodec measures the operation-log binary codec round trip.
func BenchmarkHistoryCodec(b *testing.B) {
	h := benchHistory(b, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := h.MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		var back iscaddar.History
		if err := back.UnmarshalBinary(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPRNG compares the generator families.
func BenchmarkPRNG(b *testing.B) {
	sources := map[string]prng.Source{
		"splitmix64":     prng.NewSplitMix64(1),
		"xorshift64star": prng.NewXorshift64Star(1),
		"pcg32":          prng.NewPCG32(1),
		"lcg64":          prng.NewLCG64(1),
	}
	for name, src := range sources {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var sink uint64
			for i := 0; i < b.N; i++ {
				sink += src.Next()
			}
			if sink == 1 {
				b.Fatal("impossible")
			}
		})
	}
}

// benchName formats a sub-benchmark name.
func benchName(prefix string, v int) string {
	const digits = "0123456789"
	if v == 0 {
		return prefix + "=0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = digits[v%10]
		v /= 10
	}
	return prefix + "=" + string(buf[i:])
}
