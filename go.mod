module scaddar

go 1.22
