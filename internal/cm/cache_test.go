package cm

import (
	"testing"

	"scaddar/internal/placement"
	"scaddar/internal/prng"
)

// newCachedServer builds a server with a block buffer of the given size.
func newCachedServer(t *testing.T, n0, cacheBlocks int) *Server {
	t.Helper()
	x0 := placement.NewX0Func(func(seed uint64) prng.Source { return prng.NewSplitMix64(seed) })
	strat, err := placement.NewScaddar(n0, x0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.CacheBlocks = cacheBlocks
	srv, err := NewServer(cfg, strat)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func TestCacheConfigValidation(t *testing.T) {
	x0 := placement.NewX0Func(func(seed uint64) prng.Source { return prng.NewSplitMix64(seed) })
	strat, _ := placement.NewScaddar(4, x0)
	cfg := DefaultConfig()
	cfg.CacheBlocks = -1
	if _, err := NewServer(cfg, strat); err == nil {
		t.Fatal("negative cache size accepted")
	}
}

// TestCloseFollowersHitCache is the interval-caching effect end to end: a
// follower trailing a leader by a few blocks on the same object streams
// from the buffer, consuming no disk bandwidth.
func TestCloseFollowersHitCache(t *testing.T) {
	srv := newCachedServer(t, 4, 256)
	loadObjects(t, srv, 1, 400)
	leader, err := srv.StartStream(0)
	if err != nil {
		t.Fatal(err)
	}
	follower, err := srv.StartStream(0)
	if err != nil {
		t.Fatal(err)
	}
	// The follower starts 10 blocks behind.
	if err := srv.SeekStream(leader.ID, 10); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 200; r++ {
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	m := srv.Metrics()
	// Leader misses everything; follower hits everything after warm-up.
	// (Stream IDs are served in order, so the leader reads first each
	// round.)
	if m.CacheHits < follower.Served*8/10 {
		t.Fatalf("cache hits %d, follower served %d; interval effect missing", m.CacheHits, follower.Served)
	}
	if leader.Hiccups != 0 || follower.Hiccups != 0 {
		t.Fatal("hiccups with cache enabled")
	}
}

// TestCacheReducesDiskLoad verifies that cache hits do not consume disk
// bandwidth: with many synchronized followers the server sustains a stream
// population far beyond raw disk capacity.
func TestCacheReducesDiskLoad(t *testing.T) {
	srv := newCachedServer(t, 2, 512)
	loadObjects(t, srv, 1, 2000)
	// Capacity without cache: 2 disks * ~79 = 158 streams. Admit 120
	// streams all within a tight window: after warm-up only the leader
	// touches the disks.
	lead, err := srv.StartStream(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.SeekStream(lead.ID, 119); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 120; i++ {
		st, err := srv.StartStream(0)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.SeekStream(st.ID, 119-i); err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < 300; r++ {
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	m := srv.Metrics()
	if m.Hiccups != 0 {
		t.Fatalf("%d hiccups", m.Hiccups)
	}
	// The vast majority of reads come from the buffer.
	if m.CacheHits*10 < m.BlocksServed*8 {
		t.Fatalf("cache hits %d of %d served", m.CacheHits, m.BlocksServed)
	}
	// Per-round disk reads stay near one stream's worth: check a final
	// round's accounting.
	srv.Array().ResetRounds()
	if err := srv.Tick(); err != nil {
		t.Fatal(err)
	}
	diskReads := 0
	for i := 0; i < srv.N(); i++ {
		d, err := srv.Array().Disk(i)
		if err != nil {
			t.Fatal(err)
		}
		r, _, _ := d.RoundLoad()
		diskReads += r
	}
	if diskReads > 5 {
		t.Fatalf("disk reads per round = %d with a warm cache; want ~1", diskReads)
	}
}

func TestCacheDisabledByDefault(t *testing.T) {
	srv := newServer(t, 4)
	loadObjects(t, srv, 1, 100)
	if _, err := srv.StartStream(0); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 20; r++ {
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if srv.Metrics().CacheHits != 0 {
		t.Fatal("cache hits without a cache")
	}
}

func TestCachePurgedOnObjectRemoval(t *testing.T) {
	srv := newCachedServer(t, 4, 128)
	loadObjects(t, srv, 2, 100)
	st, err := srv.StartStream(0)
	if err != nil {
		t.Fatal(err)
	}
	for st.State == StreamPlaying {
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.RemoveObject(0); err != nil {
		t.Fatal(err)
	}
	// Re-adding an object with the same ID must not hit stale cache
	// entries (the blocks are gone from the disks).
	obj := testObject(0, 100)
	obj.Seed = 123456
	if err := srv.AddObject(obj); err != nil {
		t.Fatal(err)
	}
	st2, err := srv.StartStream(0)
	if err != nil {
		t.Fatal(err)
	}
	hitsBefore := srv.Metrics().CacheHits
	for r := 0; r < 3 && st2.State == StreamPlaying; r++ {
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if srv.Metrics().CacheHits != hitsBefore {
		t.Fatal("stale cache entries survived object removal")
	}
	if err := srv.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}
