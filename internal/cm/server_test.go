package cm

import (
	"strings"
	"testing"
	"time"

	"scaddar/internal/disk"
	"scaddar/internal/placement"
	"scaddar/internal/prng"
	"scaddar/internal/stats"
	"scaddar/internal/workload"
)

func newStrategy(t *testing.T, n0 int) placement.Strategy {
	t.Helper()
	x0 := placement.NewX0Func(func(seed uint64) prng.Source { return prng.NewSplitMix64(seed) })
	s, err := placement.NewScaddar(n0, x0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newServer(t *testing.T, n0 int) *Server {
	t.Helper()
	srv, err := NewServer(DefaultConfig(), newStrategy(t, n0))
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func testObject(id int, blocks int) workload.Object {
	return workload.Object{
		ID:                id,
		Seed:              uint64(id)*1000 + 7,
		Blocks:            blocks,
		BlockBytes:        256 << 10,
		BitrateBitsPerSec: 4 << 20,
	}
}

func loadObjects(t *testing.T, srv *Server, n, blocks int) []workload.Object {
	t.Helper()
	objs := make([]workload.Object, n)
	for i := range objs {
		objs[i] = testObject(i, blocks)
		if err := srv.AddObject(objs[i]); err != nil {
			t.Fatal(err)
		}
	}
	return objs
}

func TestNewServerValidation(t *testing.T) {
	strat := newStrategy(t, 4)
	bad := DefaultConfig()
	bad.Round = 0
	if _, err := NewServer(bad, strat); err == nil {
		t.Error("zero round accepted")
	}
	bad = DefaultConfig()
	bad.BlockBytes = 0
	if _, err := NewServer(bad, strat); err == nil {
		t.Error("zero block size accepted")
	}
	bad = DefaultConfig()
	bad.Utilization = 0
	if _, err := NewServer(bad, strat); err == nil {
		t.Error("zero utilization accepted")
	}
	bad = DefaultConfig()
	bad.Utilization = 1.5
	if _, err := NewServer(bad, strat); err == nil {
		t.Error("utilization > 1 accepted")
	}
	if _, err := NewServer(DefaultConfig(), nil); err == nil {
		t.Error("nil strategy accepted")
	}
	// A round too short to serve one block must be rejected.
	bad = DefaultConfig()
	bad.Round = time.Millisecond
	if _, err := NewServer(bad, strat); err == nil {
		t.Error("starved round length accepted")
	}
}

func TestAddObjectPlacesEveryBlock(t *testing.T) {
	srv := newServer(t, 4)
	obj := testObject(1, 500)
	if err := srv.AddObject(obj); err != nil {
		t.Fatal(err)
	}
	if srv.TotalBlocks() != 500 {
		t.Fatalf("array holds %d blocks, want 500", srv.TotalBlocks())
	}
	if err := srv.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
	// The load is spread over all disks.
	loads := srv.Array().Loads()
	for i, l := range loads {
		if l == 0 {
			t.Fatalf("disk %d holds no blocks: %v", i, loads)
		}
	}
}

func TestAddObjectValidation(t *testing.T) {
	srv := newServer(t, 4)
	obj := testObject(1, 100)
	if err := srv.AddObject(obj); err != nil {
		t.Fatal(err)
	}
	if err := srv.AddObject(obj); err == nil {
		t.Error("duplicate object accepted")
	}
	dupSeed := testObject(2, 100)
	dupSeed.Seed = obj.Seed
	if err := srv.AddObject(dupSeed); err == nil {
		t.Error("duplicate seed accepted")
	}
	empty := testObject(3, 0)
	if err := srv.AddObject(empty); err == nil {
		t.Error("empty object accepted")
	}
	wrongBlock := testObject(4, 10)
	wrongBlock.BlockBytes = 1024
	if err := srv.AddObject(wrongBlock); err == nil {
		t.Error("mismatched block size accepted")
	}
}

func TestRemoveObject(t *testing.T) {
	srv := newServer(t, 4)
	loadObjects(t, srv, 3, 100)
	if err := srv.RemoveObject(1); err != nil {
		t.Fatal(err)
	}
	if srv.TotalBlocks() != 200 {
		t.Fatalf("blocks after removal = %d, want 200", srv.TotalBlocks())
	}
	if err := srv.RemoveObject(1); err == nil {
		t.Error("double removal accepted")
	}
	if err := srv.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveObjectWithActiveStream(t *testing.T) {
	srv := newServer(t, 4)
	loadObjects(t, srv, 1, 100)
	if _, err := srv.StartStream(0); err != nil {
		t.Fatal(err)
	}
	if err := srv.RemoveObject(0); err == nil {
		t.Fatal("removed object with active stream")
	}
}

func TestLookup(t *testing.T) {
	srv := newServer(t, 4)
	loadObjects(t, srv, 2, 100)
	d, err := srv.Lookup(0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if d == nil {
		t.Fatal("nil disk")
	}
	if _, err := srv.Lookup(9, 0); err == nil {
		t.Error("unknown object accepted")
	}
	if _, err := srv.Lookup(0, 100); err == nil {
		t.Error("out-of-range block accepted")
	}
	if _, err := srv.Lookup(0, -1); err == nil {
		t.Error("negative block accepted")
	}
}

func TestStreamLifecycle(t *testing.T) {
	srv := newServer(t, 4)
	loadObjects(t, srv, 1, 50)
	st, err := srv.StartStream(0)
	if err != nil {
		t.Fatal(err)
	}
	if srv.ActiveStreams() != 1 {
		t.Fatal("stream not active")
	}
	for i := 0; i < 50; i++ {
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if st.State != StreamDone {
		t.Fatalf("stream state = %v after full playback", st.State)
	}
	if st.Served != 50 {
		t.Fatalf("served %d blocks, want 50", st.Served)
	}
	m := srv.Metrics()
	if m.StreamsCompleted != 1 || m.BlocksServed != 50 {
		t.Fatalf("metrics %+v", m)
	}
	if srv.ActiveStreams() != 0 {
		t.Fatal("done stream still counted active")
	}
}

func TestStartStreamValidation(t *testing.T) {
	srv := newServer(t, 4)
	loadObjects(t, srv, 1, 50)
	if _, err := srv.StartStream(42); err == nil {
		t.Error("unknown object accepted")
	}
}

func TestAdmissionControl(t *testing.T) {
	srv := newServer(t, 2)
	loadObjects(t, srv, 1, 10000)
	cap := srv.capacityStreams()
	if cap < 1 {
		t.Fatalf("capacity %d", cap)
	}
	for i := 0; i < cap; i++ {
		if _, err := srv.StartStream(0); err != nil {
			t.Fatalf("admission %d/%d failed: %v", i, cap, err)
		}
	}
	if _, err := srv.StartStream(0); err == nil {
		t.Fatal("stream beyond capacity admitted")
	}
	if srv.Metrics().StreamsRejected != 1 {
		t.Fatal("rejection not counted")
	}
}

func TestStopAndSeek(t *testing.T) {
	srv := newServer(t, 4)
	loadObjects(t, srv, 1, 100)
	st, _ := srv.StartStream(0)
	if err := srv.SeekStream(st.ID, 90); err != nil {
		t.Fatal(err)
	}
	if err := srv.SeekStream(st.ID, 100); err == nil {
		t.Error("out-of-range seek accepted")
	}
	if err := srv.SeekStream(999, 0); err == nil {
		t.Error("seek of unknown stream accepted")
	}
	if err := srv.Tick(); err != nil {
		t.Fatal(err)
	}
	if st.Position != 91 {
		t.Fatalf("position after seek+tick = %d, want 91", st.Position)
	}
	if err := srv.StopStream(st.ID); err != nil {
		t.Fatal(err)
	}
	if st.State != StreamStopped {
		t.Fatal("stream not stopped")
	}
	if err := srv.StopStream(999); err == nil {
		t.Error("stop of unknown stream accepted")
	}
	got, err := srv.Stream(st.ID)
	if err != nil || got != st {
		t.Fatal("Stream lookup failed")
	}
	if _, err := srv.Stream(999); err == nil {
		t.Error("unknown stream lookup accepted")
	}
}

func TestScaleUpOnline(t *testing.T) {
	srv := newServer(t, 4)
	loadObjects(t, srv, 5, 400) // 2000 blocks
	st, err := srv.StartStream(0)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := srv.ScaleUp(2)
	if err != nil {
		t.Fatal(err)
	}
	if srv.N() != 6 {
		t.Fatalf("N = %d, want 6", srv.N())
	}
	if !srv.Reorganizing() {
		t.Fatal("no reorganization in progress")
	}
	z := plan.OptimalFraction()
	if f := plan.MoveFraction(); f < z-0.05 || f > z+0.05 {
		t.Fatalf("move fraction %.3f, want ~%.3f", f, z)
	}
	// Stream keeps playing during migration; ticks drive the migration.
	rounds := 0
	for srv.Reorganizing() {
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
		rounds++
		if rounds > 10000 {
			t.Fatal("migration did not converge")
		}
	}
	if err := srv.FinishReorganization(); err != nil {
		t.Fatal(err)
	}
	if st.Hiccups > 0 {
		t.Fatalf("stream hiccuped %d times during migration", st.Hiccups)
	}
	if srv.Metrics().BlocksMigrated != len(plan.Moves) {
		t.Fatalf("migrated %d, want %d", srv.Metrics().BlocksMigrated, len(plan.Moves))
	}
	if err := srv.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
	// Load is balanced across the 6 disks afterwards.
	if cov := stats.CoVInts(srv.Array().Loads()); cov > 0.12 {
		t.Fatalf("post-scale CoV %.4f too high: %v", cov, srv.Array().Loads())
	}
}

func TestScaleDownOnline(t *testing.T) {
	srv := newServer(t, 6)
	loadObjects(t, srv, 5, 400)
	plan, err := srv.ScaleDown(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if srv.N() != 6 {
		t.Fatal("physical disks detached before drain")
	}
	if err := srv.CompleteScaleDown(); err == nil {
		t.Fatal("CompleteScaleDown succeeded before drain finished")
	}
	rounds := 0
	for srv.Reorganizing() {
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
		rounds++
		if rounds > 10000 {
			t.Fatal("drain did not converge")
		}
	}
	if err := srv.CompleteScaleDown(); err != nil {
		t.Fatal(err)
	}
	if srv.N() != 4 {
		t.Fatalf("N = %d, want 4", srv.N())
	}
	if err := srv.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
	if got := srv.TotalBlocks(); got != plan.Blocks {
		t.Fatalf("blocks after scale-down = %d, want %d", got, plan.Blocks)
	}
}

func TestLookupDuringMigration(t *testing.T) {
	srv := newServer(t, 4)
	loadObjects(t, srv, 3, 300)
	if _, err := srv.ScaleUp(2); err != nil {
		t.Fatal(err)
	}
	// Before any tick, every block must still be locatable (on its old
	// disk if its move is pending).
	for obj := 0; obj < 3; obj++ {
		for i := 0; i < 300; i++ {
			if _, err := srv.Lookup(obj, i); err != nil {
				t.Fatalf("mid-migration lookup failed: %v", err)
			}
		}
	}
	// Run one throttled round and re-verify.
	if err := srv.Tick(); err != nil {
		t.Fatal(err)
	}
	for obj := 0; obj < 3; obj++ {
		for i := 0; i < 300; i++ {
			if _, err := srv.Lookup(obj, i); err != nil {
				t.Fatalf("post-tick lookup failed: %v", err)
			}
		}
	}
}

func TestConcurrentScalingRejected(t *testing.T) {
	srv := newServer(t, 4)
	loadObjects(t, srv, 2, 300)
	if _, err := srv.ScaleUp(1); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.ScaleUp(1); err == nil {
		t.Error("second scale-up during migration accepted")
	}
	if _, err := srv.ScaleDown(0); err == nil {
		t.Error("scale-down during migration accepted")
	}
	if err := srv.AddObject(testObject(77, 10)); err == nil {
		t.Error("object add during migration accepted")
	}
	if err := srv.RemoveObject(0); err == nil {
		t.Error("object removal during migration accepted")
	}
	if err := srv.FinishReorganization(); err == nil {
		t.Error("FinishReorganization succeeded with pending moves")
	}
}

func TestCompleteScaleDownWithoutScaleDown(t *testing.T) {
	srv := newServer(t, 4)
	if err := srv.CompleteScaleDown(); err == nil {
		t.Fatal("CompleteScaleDown without a scale-down accepted")
	}
}

func TestStreamDuringScaleDown(t *testing.T) {
	srv := newServer(t, 6)
	loadObjects(t, srv, 4, 300)
	st, err := srv.StartStream(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.ScaleDown(5); err != nil {
		t.Fatal(err)
	}
	for srv.Reorganizing() {
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.CompleteScaleDown(); err != nil {
		t.Fatal(err)
	}
	// Finish the stream on the shrunken array.
	for st.State == StreamPlaying {
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if st.State != StreamDone {
		t.Fatalf("stream state %v", st.State)
	}
	if st.Served != 300 {
		t.Fatalf("served %d, want 300", st.Served)
	}
}

// TestStreamDuringMiddleDiskDrain is the regression test for the logical-
// renumbering bug: while draining a *middle* disk (so survivor indices
// shift), streams reading staying blocks must still find them — the
// strategy's post-removal numbering has to be translated back to the
// physical array's pre-removal numbering until the drain completes.
func TestStreamDuringMiddleDiskDrain(t *testing.T) {
	srv := newServer(t, 6)
	loadObjects(t, srv, 4, 300)
	st, err := srv.StartStream(1)
	if err != nil {
		t.Fatal(err)
	}
	// Remove logical disk 1 — every survivor above it renumbers.
	if _, err := srv.ScaleDown(1); err != nil {
		t.Fatal(err)
	}
	// Lookups of every block must succeed mid-drain.
	for obj := 0; obj < 4; obj++ {
		for i := 0; i < 300; i += 17 {
			if _, err := srv.Lookup(obj, i); err != nil {
				t.Fatalf("mid-drain lookup %d/%d: %v", obj, i, err)
			}
		}
	}
	for srv.Reorganizing() {
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	// Migration done but disks not yet detached: reads still work.
	for i := 0; i < 20; i++ {
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.CompleteScaleDown(); err != nil {
		t.Fatal(err)
	}
	for st.State == StreamPlaying {
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if st.Served != 300 || st.Hiccups != 0 {
		t.Fatalf("served %d hiccups %d", st.Served, st.Hiccups)
	}
	if err := srv.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestMissingBlockDetected(t *testing.T) {
	srv := newServer(t, 4)
	loadObjects(t, srv, 1, 50)
	// Sabotage: remove a block physically behind the server's back.
	d, err := srv.Lookup(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Remove(blockID(0, 10)); err != nil {
		t.Fatal(err)
	}
	if err := srv.VerifyIntegrity(); err == nil {
		t.Fatal("integrity violation not detected")
	}
	st, _ := srv.StartStream(0)
	_ = st
	var tickErr error
	for i := 0; i < 12; i++ {
		if tickErr = srv.Tick(); tickErr != nil {
			break
		}
	}
	if tickErr == nil || !strings.Contains(tickErr.Error(), "missing") {
		t.Fatalf("tick over missing block: %v", tickErr)
	}
}

func TestMigrationRemaining(t *testing.T) {
	srv := newServer(t, 4)
	loadObjects(t, srv, 2, 200)
	if srv.MigrationRemaining() != 0 {
		t.Fatal("fresh server has pending migration")
	}
	plan, err := srv.ScaleUp(1)
	if err != nil {
		t.Fatal(err)
	}
	if srv.MigrationRemaining() != len(plan.Moves) {
		t.Fatalf("remaining %d, want %d", srv.MigrationRemaining(), len(plan.Moves))
	}
}

// TestScaleUpProfileMixedArray attaches faster disks and verifies the
// admission limit stays bound by the weakest disk while everything else
// keeps working.
func TestScaleUpProfileMixedArray(t *testing.T) {
	srv := newServer(t, 4)
	loadObjects(t, srv, 4, 300)
	before := srv.capacityStreams()
	fast := disk.Cheetah73
	fast.Name = "fast"
	fast.AvgSeek /= 2
	fast.TransferBytesPerSec *= 2
	plan, err := srv.ScaleUpProfile(2, fast)
	if err != nil {
		t.Fatal(err)
	}
	for srv.Reorganizing() {
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.FinishReorganization(); err != nil {
		t.Fatal(err)
	}
	if srv.N() != 6 {
		t.Fatalf("N = %d, want 6", srv.N())
	}
	if f := plan.MoveFraction(); f < 0.25 || f > 0.42 {
		t.Fatalf("moved %.3f, want ~1/3", f)
	}
	// Admission grew by exactly the old-generation capacity per new disk
	// (uniform placement is bound by the weakest disk).
	after := srv.capacityStreams()
	wantGrowth := float64(6) / float64(4)
	if got := float64(after) / float64(before); got < wantGrowth*0.95 || got > wantGrowth*1.05 {
		t.Fatalf("admission grew %.3fx, want ~%.2fx (weakest-disk bound)", got, wantGrowth)
	}
	if err := srv.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
	// A slower new disk LOWERS the limit: the weakest disk binds.
	slow := disk.Barracuda180
	if _, err := srv.ScaleUpProfile(1, slow); err != nil {
		t.Fatal(err)
	}
	for srv.Reorganizing() {
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.FinishReorganization(); err != nil {
		t.Fatal(err)
	}
	if got := srv.capacityStreams(); got >= after {
		t.Fatalf("slow disk did not lower admission: %d -> %d", after, got)
	}
}

func TestScaleUpProfileValidation(t *testing.T) {
	srv := newServer(t, 4)
	loadObjects(t, srv, 1, 50)
	if _, err := srv.ScaleUpProfile(1, disk.Profile{}); err == nil {
		t.Fatal("degenerate profile accepted")
	}
	if _, err := srv.ScaleUp(1); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.ScaleUpProfile(1, disk.Cheetah73); err == nil {
		t.Fatal("scale-up-profile during migration accepted")
	}
}

func TestServerWithDifferentProfiles(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Profile = disk.Barracuda180
	srv, err := NewServer(cfg, newStrategy(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	loadObjects(t, srv, 1, 50)
	if err := srv.Tick(); err != nil {
		t.Fatal(err)
	}
}

func TestObjectAccessors(t *testing.T) {
	srv := newServer(t, 4)
	objs := loadObjects(t, srv, 3, 50)
	if srv.Objects() != 3 {
		t.Fatalf("Objects() = %d", srv.Objects())
	}
	got, err := srv.Object(1)
	if err != nil || got.Seed != objs[1].Seed {
		t.Fatalf("Object(1) = %+v, %v", got, err)
	}
	if _, err := srv.Object(9); err == nil {
		t.Error("unknown object accepted")
	}
	if srv.Config().BlockBytes != 256<<10 {
		t.Fatal("config accessor wrong")
	}
	if srv.Strategy().Name() != "scaddar" {
		t.Fatal("strategy accessor wrong")
	}
}
