package cm

import (
	"testing"

	"scaddar/internal/placement"
	"scaddar/internal/prng"
	"scaddar/internal/reorg"
)

// synthMoves builds n distinct pending moves with deterministic contents.
func synthMoves(n int) []reorg.Move {
	moves := make([]reorg.Move, n)
	for i := range moves {
		moves[i] = reorg.Move{
			Block: placement.BlockRef{Seed: uint64(i%37 + 1), Index: uint64(i)},
			From:  i % 11,
			To:    i % 13,
		}
	}
	return moves
}

func TestPendingIndexParallelMatchesSerial(t *testing.T) {
	moves := synthMoves(5000)
	serial := buildPendingIndexN(moves, 1)
	if serial.size() != len(moves) {
		t.Fatalf("serial index holds %d of %d moves", serial.size(), len(moves))
	}
	for _, workers := range []int{2, 3, 4, 8} {
		idx := buildPendingIndexN(moves, workers)
		if idx.size() != serial.size() {
			t.Fatalf("workers=%d: index holds %d moves, serial %d", workers, idx.size(), serial.size())
		}
		for _, m := range moves {
			from, ok := idx.lookup(m.Block)
			if !ok || from != m.From {
				t.Fatalf("workers=%d: lookup(%v) = (%d,%v), want (%d,true)",
					workers, m.Block, from, ok, m.From)
			}
		}
		if _, ok := idx.lookup(placement.BlockRef{Seed: 999999, Index: 0}); ok {
			t.Fatalf("workers=%d: absent block reported pending", workers)
		}
	}
}

func TestPendingIndexEmpty(t *testing.T) {
	if idx := buildPendingIndexN(nil, 4); idx != nil {
		t.Fatal("empty move list built a non-nil index")
	}
	var nilIdx *pendingIndex
	if _, ok := nilIdx.lookup(placement.BlockRef{}); ok {
		t.Fatal("nil index reported a pending block")
	}
	if nilIdx.size() != 0 {
		t.Fatal("nil index reports nonzero size")
	}
}

// TestSnapshotLocateZeroAlloc is the read-path allocation guard: once the
// per-object sequences exist, LocatorSnapshot.Locate — the gateway's per-
// request locate step — must not allocate, neither in steady state nor
// mid-migration with a pending index in place.
func TestSnapshotLocateZeroAlloc(t *testing.T) {
	srv := newServer(t, 4)
	loadObjects(t, srv, 4, 100)

	steady := buildSnap(t, srv)
	if _, err := srv.ScaleUp(2); err != nil {
		t.Fatal(err)
	}
	migrating := buildSnap(t, srv)
	if migrating.pending.size() == 0 {
		t.Fatal("scale-up produced no pending moves; the guard would not cover the pending path")
	}
	for name, sn := range map[string]*LocatorSnapshot{"steady": steady, "migrating": migrating} {
		// Warm the per-seed sequence cache.
		for o := 0; o < 4; o++ {
			if _, err := sn.Locate(o, 0); err != nil {
				t.Fatal(err)
			}
		}
		i := 0
		if n := testing.AllocsPerRun(200, func() {
			if _, err := sn.Locate(i%4, (i*7)%100); err != nil {
				t.Fatal(err)
			}
			i++
		}); n != 0 {
			t.Errorf("%s snapshot Locate allocates %.1f/op", name, n)
		}
	}
}

// BenchmarkBuildSnapshot measures snapshot construction mid-migration — the
// owner rebuilds one after every drained round, so this bounds how often the
// gateway can refresh its read view.
func BenchmarkBuildSnapshot(b *testing.B) {
	x0 := placement.NewX0Func(func(seed uint64) prng.Source { return prng.NewSplitMix64(seed) })
	strat, err := placement.NewScaddar(8, x0)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := NewServer(DefaultConfig(), strat)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := srv.AddObject(testObject(i, 500)); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := srv.ScaleUp(2); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.BuildSnapshot(testFactory); err != nil {
			b.Fatal(err)
		}
	}
}
