package cm

import (
	"testing"

	"scaddar/internal/placement"
	"scaddar/internal/prng"
	"scaddar/internal/stats"
	"scaddar/internal/workload"
)

// TestRandomWalk drives a server through a long random sequence of
// operations — scale-ups, scale-downs, full redistributions, object adds
// and removals, stream churn, ingests — verifying the global invariants
// after every step: physical inventory matches the access function, no
// blocks are lost, and load balance stays healthy. This is the model-based
// integration test for the whole stack.
func TestRandomWalk(t *testing.T) {
	const steps = 60
	x0 := placement.NewX0Func(func(seed uint64) prng.Source { return prng.NewSplitMix64(seed) })
	strat, err := placement.NewScaddar(6, x0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.GeneratorBits = 64
	cfg.Tolerance = 0.05
	srv, err := NewServer(cfg, strat)
	if err != nil {
		t.Fatal(err)
	}
	rnd := prng.NewSplitMix64(20260704)
	nextObj := 0
	addObject := func(blocks int) {
		t.Helper()
		obj := workload.Object{
			ID:                nextObj,
			Seed:              uint64(nextObj)*31 + 5,
			Blocks:            blocks,
			BlockBytes:        cfg.BlockBytes,
			BitrateBitsPerSec: 4 << 20,
		}
		nextObj++
		if err := srv.AddObject(obj); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		addObject(150 + int(rnd.Next()%100))
	}

	drain := func() {
		t.Helper()
		for srv.Reorganizing() {
			if err := srv.Tick(); err != nil {
				t.Fatal(err)
			}
		}
	}
	verify := func(step int, what string) {
		t.Helper()
		if err := srv.VerifyIntegrity(); err != nil {
			t.Fatalf("step %d (%s): %v", step, what, err)
		}
	}

	for step := 0; step < steps; step++ {
		action := rnd.Next() % 8
		switch action {
		case 0, 1: // scale up
			if srv.N() < 24 {
				if _, err := srv.ScaleUp(int(rnd.Next()%2) + 1); err != nil {
					t.Fatalf("step %d scale-up: %v", step, err)
				}
				drain()
				if err := srv.FinishReorganization(); err != nil {
					t.Fatal(err)
				}
				verify(step, "scale-up")
			}
		case 2: // scale down
			if srv.N() > 4 {
				victim := int(rnd.Next() % uint64(srv.N()))
				if _, err := srv.ScaleDown(victim); err != nil {
					t.Fatalf("step %d scale-down: %v", step, err)
				}
				drain()
				if err := srv.CompleteScaleDown(); err != nil {
					t.Fatal(err)
				}
				verify(step, "scale-down")
			}
		case 3: // full redistribution
			if _, err := srv.FullRedistribute(); err != nil {
				t.Fatalf("step %d redistribute: %v", step, err)
			}
			drain()
			if err := srv.FinishReorganization(); err != nil {
				t.Fatal(err)
			}
			verify(step, "redistribute")
		case 4: // add an object
			if srv.Objects() < 12 {
				addObject(100 + int(rnd.Next()%200))
				verify(step, "add-object")
			}
		case 5: // remove an object without active streams
			for id := 0; id < nextObj; id++ {
				if _, err := srv.Object(id); err != nil {
					continue
				}
				busy := false
				for sid := 0; sid < 1000; sid++ {
					st, err := srv.Stream(sid)
					if err != nil {
						continue
					}
					if st.Object == id && st.State == StreamPlaying {
						busy = true
						break
					}
				}
				if busy {
					continue
				}
				if srv.Objects() > 2 {
					if err := srv.RemoveObject(id); err != nil {
						t.Fatalf("step %d remove-object: %v", step, err)
					}
					verify(step, "remove-object")
				}
				break
			}
		case 6: // stream churn: admit a few, tick a few rounds
			for k := 0; k < 3 && srv.ActiveStreams() < srv.capacityStreams(); k++ {
				// Pick any live object.
				for id := 0; id < nextObj; id++ {
					if _, err := srv.Object(id); err == nil {
						if _, err := srv.StartStream(id); err != nil {
							t.Fatalf("step %d stream: %v", step, err)
						}
						break
					}
				}
			}
			for k := 0; k < 5; k++ {
				if err := srv.Tick(); err != nil {
					t.Fatalf("step %d tick: %v", step, err)
				}
			}
		case 7: // ingest a small object to completion
			if srv.Objects() < 12 {
				obj := workload.Object{
					ID:                nextObj,
					Seed:              uint64(nextObj)*31 + 5,
					Blocks:            40 + int(rnd.Next()%40),
					BlockBytes:        cfg.BlockBytes,
					BitrateBitsPerSec: 4 << 20,
				}
				nextObj++
				in, err := srv.StartIngest(obj, 10)
				if err != nil {
					t.Fatalf("step %d ingest: %v", step, err)
				}
				for !in.Done {
					if err := srv.Tick(); err != nil {
						t.Fatalf("step %d ingest tick: %v", step, err)
					}
				}
				verify(step, "ingest")
			}
		}
	}

	// Final global checks.
	verify(steps, "final")
	if srv.TotalBlocks() > 0 && srv.N() >= 4 {
		cov := stats.CoVInts(srv.Array().Loads())
		if cov > 0.25 {
			t.Fatalf("final CoV %.4f; load balance lost along the walk (loads %v)", cov, srv.Array().Loads())
		}
	}
	if srv.Metrics().Hiccups != 0 {
		t.Fatalf("%d hiccups along the walk", srv.Metrics().Hiccups)
	}
}
