package cm

import (
	"fmt"
	"math"
)

// This file implements statistical admission control for randomly placed
// blocks — the quantitative form of the RIO advantage the paper adopts
// random placement for ("load balancing by the law of large numbers").
//
// With S concurrent streams each reading one block per round and blocks
// placed uniformly at random, a disk's per-round demand is Binomial(S, 1/N).
// Deterministic admission must assume the worst case (all S requests on one
// disk); statistical admission only keeps the *probability* of a round
// overload below a target, which admits far more streams — and the gap is
// exactly the law-of-large-numbers effect.

// BinomialTail returns P(X > c) for X ~ Binomial(s, q), computed by
// log-space summation of the upper tail (stable for the s ≈ 10³ range of
// round-based admission).
func BinomialTail(s int, q float64, c int) (float64, error) {
	if s < 0 {
		return 0, fmt.Errorf("cm: negative trial count %d", s)
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("cm: probability %g outside [0,1]", q)
	}
	if c >= s {
		return 0, nil
	}
	if c < 0 {
		return 1, nil
	}
	if q == 0 {
		return 0, nil
	}
	if q == 1 {
		return 1, nil
	}
	lq := math.Log(q)
	l1q := math.Log1p(-q)
	lgS, _ := math.Lgamma(float64(s) + 1)
	sum := 0.0
	for k := c + 1; k <= s; k++ {
		lgK, _ := math.Lgamma(float64(k) + 1)
		lgSK, _ := math.Lgamma(float64(s-k) + 1)
		logTerm := lgS - lgK - lgSK + float64(k)*lq + float64(s-k)*l1q
		sum += math.Exp(logTerm)
	}
	if sum > 1 {
		sum = 1
	}
	return sum, nil
}

// OverloadProbability returns the probability that at least one of n disks
// receives more than capacity requests in a round with streams concurrent
// streams, under uniform random placement. The per-disk tails are combined
// with a union bound, so the result is a (tight, for small values)
// overestimate — the safe direction for admission control.
func OverloadProbability(streams, n, capacity int) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("cm: need at least one disk")
	}
	if capacity < 0 {
		return 0, fmt.Errorf("cm: negative capacity %d", capacity)
	}
	tail, err := BinomialTail(streams, 1/float64(n), capacity)
	if err != nil {
		return 0, err
	}
	p := tail * float64(n)
	if p > 1 {
		p = 1
	}
	return p, nil
}

// MaxStreamsStatistical returns the largest stream count whose per-round
// overload probability (union-bounded over disks) stays at or below target.
// It is the statistical counterpart of the deterministic limit n*capacity
// used when every stream must be guaranteed service even if all requests
// collide — random placement admits between those two extremes.
func MaxStreamsStatistical(n, capacity int, target float64) (int, error) {
	if target <= 0 || target >= 1 {
		return 0, fmt.Errorf("cm: overload target %g outside (0,1)", target)
	}
	if n < 1 || capacity < 1 {
		return 0, fmt.Errorf("cm: degenerate array n=%d capacity=%d", n, capacity)
	}
	// The overload probability is monotone in the stream count; binary
	// search on [0, n*capacity].
	lo, hi := 0, n*capacity
	for lo < hi {
		mid := (lo + hi + 1) / 2
		p, err := OverloadProbability(mid, n, capacity)
		if err != nil {
			return 0, err
		}
		if p <= target {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, nil
}
