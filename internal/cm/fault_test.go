package cm

import (
	"strings"
	"testing"

	"scaddar/internal/disk"
)

// newFaultServer builds a server with the given redundancy over n0 disks.
func newFaultServer(t *testing.T, n0 int, red Redundancy) *Server {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Redundancy = red
	srv, err := NewServer(cfg, newStrategy(t, n0))
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// startStreams admits count streams round-robin over the loaded objects.
func startStreams(t *testing.T, srv *Server, objs int, count int) {
	t.Helper()
	for i := 0; i < count; i++ {
		if _, err := srv.StartStream(i % objs); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMirrorFailureDrill is the headline deterministic drill: a whole-disk
// failure under active streams is absorbed entirely by mirror failover
// (zero unrecoverable reads), the replacement rebuilds from leftover round
// bandwidth, and the metrics report the repair.
func TestMirrorFailureDrill(t *testing.T) {
	srv := newFaultServer(t, 6, RedundancyMirror)
	loadObjects(t, srv, 8, 400)
	startStreams(t, srv, 8, 40)

	inj := NewInjector(1).FailAt(5, 2).RepairAt(12, 2)
	if err := srv.InstallFaults(inj); err != nil {
		t.Fatal(err)
	}

	failedAt5 := false
	rebuiltAt := 0
	for r := 1; r <= 200; r++ {
		if err := srv.Tick(); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		h, err := srv.DiskHealth(2)
		if err != nil {
			t.Fatal(err)
		}
		if r == 5 && h == disk.Failed {
			failedAt5 = true
		}
		if r >= 12 && h == disk.Healthy && rebuiltAt == 0 {
			rebuiltAt = r
		}
		if err := srv.VerifyIntegrity(); err != nil {
			t.Fatalf("round %d: integrity: %v", r, err)
		}
	}
	if !failedAt5 {
		t.Error("disk 2 not failed at round 5")
	}
	if rebuiltAt == 0 {
		t.Fatalf("rebuild never completed; %d items remaining", srv.RebuildRemaining())
	}
	m := srv.Metrics()
	if m.UnrecoverableReads != 0 {
		t.Errorf("mirroring lost %d reads; want 0", m.UnrecoverableReads)
	}
	if m.DegradedReads == 0 {
		t.Error("no degraded reads recorded under a failed disk")
	}
	if m.FailoverReads != m.DegradedReads {
		t.Errorf("mirror failover bandwidth %d != degraded reads %d (one source read each)",
			m.FailoverReads, m.DegradedReads)
	}
	if m.DiskFailures != 1 || m.DiskRepairs != 1 || m.RebuildsCompleted != 1 {
		t.Errorf("failure/repair/rebuild counts = %d/%d/%d; want 1/1/1",
			m.DiskFailures, m.DiskRepairs, m.RebuildsCompleted)
	}
	if m.RoundsToRepair != rebuiltAt-12+1 {
		t.Errorf("RoundsToRepair = %d; completion at round %d after repair at 12 implies %d",
			m.RoundsToRepair, rebuiltAt, rebuiltAt-12+1)
	}
	if m.BlocksRebuilt == 0 {
		t.Error("no primary copies rebuilt")
	}
	if srv.Degraded() {
		t.Error("server still degraded after rebuild completion")
	}
	// The drill is deterministic: a re-run reproduces the exact metrics.
	srv2 := newFaultServer(t, 6, RedundancyMirror)
	loadObjects(t, srv2, 8, 400)
	startStreams(t, srv2, 8, 40)
	inj2 := NewInjector(1).FailAt(5, 2).RepairAt(12, 2)
	if err := srv2.InstallFaults(inj2); err != nil {
		t.Fatal(err)
	}
	for r := 1; r <= 200; r++ {
		if err := srv2.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if srv2.Metrics() != m {
		t.Errorf("drill not deterministic:\n first %+v\nsecond %+v", m, srv2.Metrics())
	}
}

// TestFailureDuringScaleUp lands a whole-disk failure while a ScaleUp
// migration is still draining: moves sourced at the failed disk convert to
// rebuild work at their destinations, rebuild and reorganization share the
// spare-bandwidth pool, and both drain with zero lost blocks.
func TestFailureDuringScaleUp(t *testing.T) {
	srv := newFaultServer(t, 6, RedundancyMirror)
	loadObjects(t, srv, 8, 400)
	startStreams(t, srv, 8, 30)

	plan, err := srv.ScaleUp(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) == 0 {
		t.Fatal("scale-up plan moved nothing")
	}
	// One round of migration, then the failure lands mid-drain.
	if err := srv.Tick(); err != nil {
		t.Fatal(err)
	}
	if !srv.Reorganizing() {
		t.Fatal("migration drained in one round; pick a bigger universe")
	}
	if err := srv.FailDisk(1); err != nil {
		t.Fatal(err)
	}
	if srv.RebuildRemaining() == 0 {
		t.Fatal("no pending moves were converted to rebuild work")
	}
	// Further scaling is refused while the drain and rebuild are pending.
	if _, err := srv.ScaleUp(1); err == nil {
		t.Error("ScaleUp accepted mid-drain in degraded mode")
	}
	if err := srv.RepairDisk(1); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 300 && (srv.Reorganizing() || srv.RebuildRemaining() > 0); r++ {
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if srv.Reorganizing() {
		t.Fatalf("migration stuck with %d moves", srv.MigrationRemaining())
	}
	if srv.RebuildRemaining() > 0 {
		t.Fatalf("rebuild stuck with %d items", srv.RebuildRemaining())
	}
	if err := srv.FinishReorganization(); err != nil {
		t.Fatal(err)
	}
	m := srv.Metrics()
	if m.UnrecoverableReads != 0 {
		t.Errorf("%d unrecoverable reads; want 0", m.UnrecoverableReads)
	}
	if srv.LostBlocks() != 0 {
		t.Errorf("%d blocks lost; want 0", srv.LostBlocks())
	}
	// Every block is physically where placement expects it again.
	if err := srv.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
	if srv.Degraded() {
		t.Error("server still degraded after drains")
	}
	for o := 0; o < 8; o++ {
		for i := 0; i < 400; i++ {
			if _, err := srv.Lookup(o, i); err != nil {
				t.Fatalf("block %d/%d unreachable after recovery: %v", o, i, err)
			}
		}
	}
}

// TestParityFailureDrill drills the hybrid parity scheme live: degraded
// reads reconstruct from every surviving group member plus the parity disk,
// so the failover bandwidth bill exceeds one read per degraded read.
func TestParityFailureDrill(t *testing.T) {
	srv := newFaultServer(t, 8, RedundancyParity)
	loadObjects(t, srv, 6, 400)
	startStreams(t, srv, 6, 24)

	inj := NewInjector(7).FailAt(4, 3).RepairAt(10, 3)
	if err := srv.InstallFaults(inj); err != nil {
		t.Fatal(err)
	}
	for r := 1; r <= 400; r++ {
		if err := srv.Tick(); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		if err := srv.VerifyIntegrity(); err != nil {
			t.Fatalf("round %d: integrity: %v", r, err)
		}
	}
	m := srv.Metrics()
	if m.UnrecoverableReads != 0 {
		t.Errorf("parity lost %d reads; want 0", m.UnrecoverableReads)
	}
	if m.DegradedReads == 0 {
		t.Error("no degraded reads recorded")
	}
	if m.FailoverReads <= m.DegradedReads {
		t.Errorf("parity failover bandwidth %d should exceed degraded reads %d",
			m.FailoverReads, m.DegradedReads)
	}
	if m.RebuildsCompleted != 1 {
		t.Errorf("rebuilds completed = %d; want 1 (remaining %d)", m.RebuildsCompleted, srv.RebuildRemaining())
	}
}

// TestNoRedundancyLosesBlocks confirms the contrast case: without
// redundancy a failed disk's blocks are permanently lost, reads of them are
// unrecoverable, and a replacement comes back empty.
func TestNoRedundancyLosesBlocks(t *testing.T) {
	srv := newFaultServer(t, 4, RedundancyNone)
	loadObjects(t, srv, 4, 200)
	startStreams(t, srv, 4, 12)

	if err := srv.FailDisk(1); err != nil {
		t.Fatal(err)
	}
	if srv.LostBlocks() == 0 {
		t.Fatal("no blocks recorded lost")
	}
	for r := 0; r < 250; r++ {
		if err := srv.Tick(); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		if err := srv.VerifyIntegrity(); err != nil {
			t.Fatalf("round %d: integrity: %v", r, err)
		}
	}
	m := srv.Metrics()
	if m.UnrecoverableReads == 0 {
		t.Error("no unrecoverable reads despite lost blocks under traffic")
	}
	if m.DegradedReads != 0 {
		t.Errorf("%d degraded reads without redundancy", m.DegradedReads)
	}
	// Repair restores service but not data.
	if err := srv.RepairDisk(1); err != nil {
		t.Fatal(err)
	}
	h, err := srv.DiskHealth(1)
	if err != nil {
		t.Fatal(err)
	}
	if h != disk.Healthy {
		t.Errorf("repaired disk health %s; want healthy (nothing to rebuild)", h)
	}
	if srv.LostBlocks() == 0 {
		t.Error("lost blocks forgotten after repair")
	}
}

// TestTransientReadErrors injects a per-read error rate on a healthy array:
// with mirroring every transient fault fails over within the round, so
// streams see no unrecoverable reads and almost no hiccups.
func TestTransientReadErrors(t *testing.T) {
	srv := newFaultServer(t, 6, RedundancyMirror)
	loadObjects(t, srv, 6, 300)
	startStreams(t, srv, 6, 24)

	inj, err := NewInjector(99).WithTransientErrorRate(0.05)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.InstallFaults(inj); err != nil {
		t.Fatal(err)
	}
	for r := 1; r <= 100; r++ {
		if err := srv.Tick(); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
	}
	m := srv.Metrics()
	if m.TransientReadErrors == 0 {
		t.Fatal("no transient errors at a 5% rate over thousands of reads")
	}
	if m.DegradedReads == 0 {
		t.Error("transient errors never failed over to the mirror")
	}
	if m.UnrecoverableReads != 0 {
		t.Errorf("%d unrecoverable reads from transient faults", m.UnrecoverableReads)
	}
}

// TestInjectorValidation covers injector and installation error paths.
func TestInjectorValidation(t *testing.T) {
	if _, err := NewInjector(1).WithTransientErrorRate(-0.1); err == nil {
		t.Error("negative error rate accepted")
	}
	if _, err := NewInjector(1).WithTransientErrorRate(1.0); err == nil {
		t.Error("error rate 1.0 accepted")
	}
	srv := newFaultServer(t, 4, RedundancyNone)
	if err := srv.InstallFaults(nil); err == nil {
		t.Error("nil injector accepted")
	}
	if err := srv.InstallFaults(NewInjector(1)); err != nil {
		t.Fatal(err)
	}
	if err := srv.InstallFaults(NewInjector(2)); err == nil {
		t.Error("second injector accepted")
	}
}

// TestHealthTransitionErrors covers invalid fail/repair sequencing at the
// server surface.
func TestHealthTransitionErrors(t *testing.T) {
	srv := newFaultServer(t, 4, RedundancyMirror)
	loadObjects(t, srv, 2, 100)
	if err := srv.RepairDisk(0); err == nil {
		t.Error("repair of a healthy disk accepted")
	}
	if err := srv.FailDisk(0); err != nil {
		t.Fatal(err)
	}
	if err := srv.FailDisk(0); err == nil {
		t.Error("double failure accepted")
	}
	if err := srv.FailDisk(99); err == nil {
		t.Error("failure of an absent disk accepted")
	}
	// Degraded mode refuses catalog changes and scaling.
	if err := srv.AddObject(testObject(50, 10)); err == nil {
		t.Error("AddObject accepted in degraded mode")
	}
	if err := srv.RemoveObject(0); err == nil {
		t.Error("RemoveObject accepted in degraded mode")
	}
	if _, err := srv.ScaleUp(1); err == nil || !strings.Contains(err.Error(), "degraded") {
		t.Errorf("ScaleUp in degraded mode: %v; want degraded refusal", err)
	}
	if _, err := srv.ScaleDown(1); err == nil || !strings.Contains(err.Error(), "degraded") {
		t.Errorf("ScaleDown in degraded mode: %v; want degraded refusal", err)
	}
}

// TestDegradedReadsShareRoundBudget drives a failed disk whose mirror
// partner saturates: degraded reads that overflow the partner's round
// budget hiccup instead of overcommitting the disk.
func TestDegradedReadsShareRoundBudget(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Redundancy = RedundancyMirror
	cfg.Utilization = 1.0 // admit to the theoretical limit
	srv, err := NewServer(cfg, newStrategy(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	loadObjects(t, srv, 6, 300)
	// Saturate: every disk's full round budget is subscribed.
	cap := srv.capacityStreams()
	startStreams(t, srv, 6, cap)
	if err := srv.FailDisk(0); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 30; r++ {
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	m := srv.Metrics()
	if m.Hiccups == 0 {
		t.Error("a saturated degraded array produced no hiccups")
	}
	if m.UnrecoverableReads != 0 {
		t.Errorf("%d unrecoverable reads; mirroring should cover all", m.UnrecoverableReads)
	}
	// The per-disk read tallies never exceeded capacity.
	caps, err := srv.capacities()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < srv.N(); i++ {
		d, err := srv.Array().Disk(i)
		if err != nil {
			t.Fatal(err)
		}
		reads, _, _ := d.RoundLoad()
		if reads > caps[i] {
			t.Errorf("disk %d served %d reads in a round of capacity %d", i, reads, caps[i])
		}
	}
}
