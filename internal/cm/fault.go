package cm

// This file implements the live fault-tolerance loop the paper's Section 6
// sketches but never operationalizes: disks fail and are repaired *while
// streams play*, reads on failed disks fail over to redundant copies inside
// the same round (paying the real bandwidth cost — a parity reconstruction
// touches every surviving disk of the group), and a seeded injector drives
// deterministic failure/repair/transient-error schedules from Tick so
// availability claims become observable under traffic.
//
// The redundancy model matches the paper's directory-free stance: the
// physical inventories track primary copies only, and redundant copies
// (offset mirrors, parity blocks) are *computable* from the placement — so
// serving or rebuilding from them is modeled as bandwidth charged against
// the disks that hold them, gated on those disks' health. A redundant copy
// on a disk that failed is gone until the disk's rebuild re-materializes it.

import (
	"fmt"
	"sort"

	"scaddar/internal/disk"
	"scaddar/internal/parity"
	"scaddar/internal/placement"
	"scaddar/internal/prng"
)

// Redundancy selects the live fault-tolerance scheme the server maintains.
type Redundancy int

// Redundancy schemes.
const (
	// RedundancyNone stores single copies: a disk failure loses its blocks
	// permanently and reads of them are unrecoverable.
	RedundancyNone Redundancy = iota
	// RedundancyMirror keeps the Section 6 offset mirror of every block:
	// reads fail over to the mirror disk at one extra read.
	RedundancyMirror
	// RedundancyParity keeps the hybrid parity/mirror layout: reads of a
	// lost block reconstruct from every surviving group member plus the
	// parity block (or from the offset mirror for collided groups).
	RedundancyParity
)

// String names the redundancy scheme.
func (r Redundancy) String() string {
	switch r {
	case RedundancyNone:
		return "none"
	case RedundancyMirror:
		return "mirror"
	case RedundancyParity:
		return "parity"
	default:
		return fmt.Sprintf("redundancy(%d)", int(r))
	}
}

// faultEvent is one scheduled whole-disk event.
type faultEvent struct {
	round   int
	logical int
	repair  bool
}

// Injector is a deterministic, seeded fault schedule: whole-disk failures,
// repair arrivals, and an optional transient per-read error rate. Rounds are
// 1-based (the first Tick is round 1); events fire at the start of their
// round, before streams are served. Disk references are logical indices
// evaluated at fire time.
type Injector struct {
	events  []faultEvent
	errRate float64
	rng     *prng.SplitMix64
}

// NewInjector creates an injector whose transient-error rolls derive from
// the given seed.
func NewInjector(seed uint64) *Injector {
	return &Injector{rng: prng.NewSplitMix64(seed)}
}

// FailAt schedules a whole-disk failure of the given logical disk at the
// start of the given round. It returns the injector for chaining.
func (in *Injector) FailAt(round, logical int) *Injector {
	in.events = append(in.events, faultEvent{round: round, logical: logical})
	return in
}

// RepairAt schedules the arrival of a replacement for the failed disk at
// the given logical index: the disk transitions to Rebuilding and the
// server starts re-materializing its blocks from redundancy.
func (in *Injector) RepairAt(round, logical int) *Injector {
	in.events = append(in.events, faultEvent{round: round, logical: logical, repair: true})
	return in
}

// WithTransientErrorRate sets the probability in [0, 1) that any single
// direct read attempt fails transiently (media error, command timeout). The
// failed attempt still consumes the disk's bandwidth; the read then fails
// over to redundancy or retries next round.
func (in *Injector) WithTransientErrorRate(p float64) (*Injector, error) {
	if p < 0 || p >= 1 {
		return nil, fmt.Errorf("cm: transient error rate %g outside [0,1)", p)
	}
	in.errRate = p
	return in, nil
}

// eventsAt returns the events scheduled for a round in insertion order.
func (in *Injector) eventsAt(round int) []faultEvent {
	var out []faultEvent
	for _, ev := range in.events {
		if ev.round == round {
			out = append(out, ev)
		}
	}
	return out
}

// transientError rolls one per-read transient fault.
func (in *Injector) transientError() bool {
	if in.errRate <= 0 {
		return false
	}
	const denom = 1 << 53
	return float64(in.rng.Next()>>11)/denom < in.errRate
}

// InstallFaults attaches a fault injector; its schedule is driven by
// subsequent Tick calls.
func (s *Server) InstallFaults(in *Injector) error {
	if in == nil {
		return fmt.Errorf("cm: nil fault injector")
	}
	if s.faults != nil {
		return fmt.Errorf("cm: a fault injector is already installed")
	}
	s.faults = in
	return nil
}

// fireFaults fires the injector events scheduled for the current round.
func (s *Server) fireFaults() error {
	if s.faults == nil {
		return nil
	}
	for _, ev := range s.faults.eventsAt(s.metrics.Rounds) {
		var err error
		if ev.repair {
			err = s.RepairDisk(ev.logical)
		} else {
			err = s.FailDisk(ev.logical)
		}
		if err != nil {
			return fmt.Errorf("cm: fault event at round %d: %w", s.metrics.Rounds, err)
		}
	}
	return nil
}

// toPhysical translates a strategy-space logical index to the index the
// physical array uses right now (they differ only while a scale-down drain
// is in flight).
func (s *Server) toPhysical(strategyIdx int) int {
	if s.removalPreOf != nil {
		return s.removalPreOf[strategyIdx]
	}
	return strategyIdx
}

// Degraded reports whether the server is in degraded mode: some disk is
// failed or rebuilding, or blocks still await re-materialization.
func (s *Server) Degraded() bool {
	return s.array.Degraded() || s.RebuildRemaining() > 0 || len(s.lost) > 0
}

// DiskHealth returns the health of the disk at a logical index.
func (s *Server) DiskHealth(logical int) (disk.Health, error) {
	d, err := s.array.Disk(logical)
	if err != nil {
		return 0, err
	}
	return d.Health(), nil
}

// LostBlocks returns the number of blocks recorded as permanently lost
// (only possible with RedundancyNone).
func (s *Server) LostBlocks() int { return len(s.lost) }

// FailDisk fails the disk at a logical index right now: its contents are
// wiped, pending migration moves sourced there are converted into rebuild
// work at their destinations (recoverable via redundancy) or recorded lost,
// and — without redundancy — every block homed there becomes unrecoverable.
func (s *Server) FailDisk(logical int) error {
	return s.failDisk(logical, false)
}

// failDisk applies a disk failure. In replay mode the lost-block bookkeeping
// and event emission are skipped: the journaled event carries the
// authoritative lost list (the survivor may have seen in-flight recordings
// this process cannot enumerate) and ReplayDiskFailed applies it.
func (s *Server) failDisk(logical int, replay bool) error {
	d, err := s.array.Disk(logical)
	if err != nil {
		return err
	}
	if _, err := d.Fail(); err != nil {
		return err
	}
	s.metrics.DiskFailures++
	var lost []BlockPos
	// A failed disk mid-migration strands the moves it sources: the block
	// data is gone locally, so each such block is re-materialized at its
	// destination from redundancy instead — rebuild and reorganization then
	// drain side by side from the same spare-bandwidth pool.
	if s.migration != nil {
		for _, m := range s.migration.ExtractBySource(logical) {
			bid := s.blockIDOf(m.Block)
			if s.cfg.Redundancy == RedundancyNone {
				if !replay {
					s.lost[bid] = true
					if object, ok := s.objectOfSeed(m.Block.Seed); ok {
						lost = append(lost, BlockPos{Object: object, Index: m.Block.Index})
					}
				}
				continue
			}
			s.ensureRebuilder().add(rebuildItem{
				key:    rebuildKey{kind: rebuildPrimary, ref: m.Block},
				bid:    bid,
				target: m.To,
			})
		}
	}
	if !replay && s.cfg.Redundancy == RedundancyNone {
		s.forEachBlock(func(object int, ref placement.BlockRef) {
			if s.locate(ref) == logical {
				s.lost[blockID(object, ref.Index)] = true
				lost = append(lost, BlockPos{Object: object, Index: ref.Index})
			}
		})
	}
	if !replay {
		s.emit(Event{Kind: EventDiskFailed, Disk: logical, Lost: lost})
	}
	return nil
}

// RepairDisk installs an empty replacement for the failed disk at a logical
// index. With redundancy configured, the disk enters Rebuilding and the
// server enqueues every block homed there — primary copies plus the virtual
// mirror/parity copies it carried — to be re-materialized from surviving
// redundancy using leftover round bandwidth. Without redundancy there is
// nothing to restore: the replacement enters service empty and previously
// lost blocks stay lost.
func (s *Server) RepairDisk(logical int) error {
	d, err := s.array.Disk(logical)
	if err != nil {
		return err
	}
	if err := d.StartRebuild(); err != nil {
		return err
	}
	s.metrics.DiskRepairs++
	if s.cfg.Redundancy == RedundancyNone {
		if err := d.FinishRebuild(); err != nil {
			return err
		}
		s.emit(Event{Kind: EventDiskRepaired, Disk: logical})
		return nil
	}
	rb := s.ensureRebuilder()
	rb.started[logical] = s.metrics.Rounds
	s.forEachBlock(func(object int, ref placement.BlockRef) {
		bid := blockID(object, ref.Index)
		if s.lost[bid] {
			return
		}
		if s.locate(ref) == logical {
			rb.add(rebuildItem{key: rebuildKey{kind: rebuildPrimary, ref: ref}, bid: bid, target: logical})
		}
		if s.cfg.Redundancy == RedundancyMirror {
			if midx, err := s.mirrored.Mirror(ref); err == nil && s.toPhysical(midx) == logical {
				rb.add(rebuildItem{key: rebuildKey{kind: rebuildMirrorCopy, ref: ref}, bid: bid, target: logical})
			}
		}
	})
	if s.cfg.Redundancy == RedundancyParity {
		s.forEachParityGroup(func(object int, seed uint64, group uint64, nblocks int, layout *parity.Layout) {
			if layout.Mirrored {
				// Collided group: each member has an offset mirror instead.
				start := group * uint64(s.par.GroupSize())
				for i, md := range layout.MemberDisks {
					ref := placement.BlockRef{Seed: seed, Index: start + uint64(i)}
					if s.lost[blockID(object, ref.Index)] {
						continue
					}
					if s.toPhysical(s.par.FallbackMirror(md)) == logical {
						rb.add(rebuildItem{
							key:    rebuildKey{kind: rebuildMirrorCopy, ref: ref},
							bid:    blockID(object, ref.Index),
							target: logical,
						})
					}
				}
				return
			}
			if s.toPhysical(layout.ParityDisk) == logical {
				rb.add(rebuildItem{
					key:    rebuildKey{kind: rebuildParityBlock, ref: placement.BlockRef{Seed: seed, Index: group}},
					target: logical,
				})
			}
		})
	}
	s.emit(Event{Kind: EventDiskRepaired, Disk: logical})
	return nil
}

// forEachBlock visits every catalogued block plus the written prefix of
// in-progress ingests, in deterministic (object ID, index) order.
func (s *Server) forEachBlock(fn func(object int, ref placement.BlockRef)) {
	ids := make([]int, 0, len(s.objects))
	for id := range s.objects {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		obj := s.objects[id]
		for i := 0; i < obj.Blocks; i++ {
			fn(id, placement.BlockRef{Seed: obj.Seed, Index: uint64(i)})
		}
	}
	for _, in := range s.ingests {
		if in.Done {
			continue // completed ingests are in the catalog
		}
		for i := 0; i < in.Written; i++ {
			fn(in.Object.ID, placement.BlockRef{Seed: in.Object.Seed, Index: uint64(i)})
		}
	}
}

// forEachParityGroup visits every parity group of every catalogued object in
// deterministic order. In-progress ingests are skipped: their groups are
// incomplete until recording finishes.
func (s *Server) forEachParityGroup(fn func(object int, seed uint64, group uint64, nblocks int, layout *parity.Layout)) {
	ids := make([]int, 0, len(s.objects))
	for id := range s.objects {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	g := uint64(s.par.GroupSize())
	for _, id := range ids {
		obj := s.objects[id]
		groups := (uint64(obj.Blocks) + g - 1) / g
		for k := uint64(0); k < groups; k++ {
			layout, err := s.par.Place(obj.Seed, k, obj.Blocks)
			if err != nil {
				continue // degenerate arrays are caught at read time
			}
			fn(id, obj.Seed, k, obj.Blocks, layout)
		}
	}
}

// redundantCopyAvailable reports whether the virtual redundant copy
// identified by key, homed on physical logical index p, is readable: its
// disk is healthy, or rebuilding and the copy has already been restored.
func (s *Server) redundantCopyAvailable(key rebuildKey, p int) bool {
	d, err := s.array.Disk(p)
	if err != nil {
		return false
	}
	switch d.Health() {
	case disk.Healthy:
		return true
	case disk.Rebuilding:
		return !s.rebuildPending(key)
	default:
		return false
	}
}

// memberReadable reports whether a parity-group member block is physically
// readable right now (for use as a reconstruction source), and from which
// physical logical index.
func (s *Server) memberReadable(object int, ref placement.BlockRef) (int, bool) {
	bid := blockID(object, ref.Index)
	if s.lost[bid] {
		return 0, false
	}
	p := s.locate(ref)
	d, err := s.array.Disk(p)
	if err != nil || d.Health() == disk.Failed || !d.Has(bid) {
		return 0, false
	}
	return p, true
}

// failoverSources resolves the disks a degraded read (or a primary-copy
// rebuild) of the block must touch: the mirror disk, or every surviving
// group member plus the parity disk. ok is false when the redundant copies
// are themselves unavailable — the read is unrecoverable until a rebuild
// restores them (or forever, if the data is gone on every path).
func (s *Server) failoverSources(ref placement.BlockRef) (sources []int, ok bool, err error) {
	switch s.cfg.Redundancy {
	case RedundancyMirror:
		midx, err := s.mirrored.Mirror(ref)
		if err != nil {
			return nil, false, err
		}
		p := s.toPhysical(midx)
		if !s.redundantCopyAvailable(rebuildKey{kind: rebuildMirrorCopy, ref: ref}, p) {
			return nil, false, nil
		}
		return []int{p}, true, nil
	case RedundancyParity:
		object, okObj := s.seedOf[ref.Seed]
		if !okObj {
			return nil, false, fmt.Errorf("cm: failover for unknown seed %d", ref.Seed)
		}
		nblocks := s.objectBlocks(object)
		group := s.par.Group(ref.Index)
		layout, err := s.par.Place(ref.Seed, group, nblocks)
		if err != nil {
			return nil, false, err
		}
		if layout.Mirrored {
			p := s.toPhysical(s.par.FallbackMirror(s.strat.Disk(ref)))
			if !s.redundantCopyAvailable(rebuildKey{kind: rebuildMirrorCopy, ref: ref}, p) {
				return nil, false, nil
			}
			return []int{p}, true, nil
		}
		start := group * uint64(s.par.GroupSize())
		for i := range layout.MemberDisks {
			idx := start + uint64(i)
			if idx == ref.Index {
				continue // the lost block itself
			}
			mref := placement.BlockRef{Seed: ref.Seed, Index: idx}
			p, readable := s.memberReadable(object, mref)
			if !readable {
				return nil, false, nil
			}
			sources = append(sources, p)
		}
		pp := s.toPhysical(layout.ParityDisk)
		pkey := rebuildKey{kind: rebuildParityBlock, ref: placement.BlockRef{Seed: ref.Seed, Index: group}}
		if !s.redundantCopyAvailable(pkey, pp) {
			return nil, false, nil
		}
		return append(sources, pp), true, nil
	default:
		return nil, false, nil
	}
}

// objectBlocks returns the declared block count of an object, consulting
// in-progress ingests as well as the catalog.
func (s *Server) objectBlocks(object int) int {
	if obj, ok := s.objects[object]; ok {
		return obj.Blocks
	}
	for _, in := range s.ingests {
		if in.Object.ID == object {
			return in.Object.Blocks
		}
	}
	return 0
}
