package cm

import "testing"

// assertBatchAgrees checks that LocateBatch returns, for every loaded block,
// exactly what serial Locate returns.
func assertBatchAgrees(t *testing.T, sn *LocatorSnapshot, objects, blocks int) {
	t.Helper()
	var addrs []BlockAddr
	for o := 0; o < objects; o++ {
		for i := 0; i < blocks; i++ {
			addrs = append(addrs, BlockAddr{Object: o, Index: i})
		}
	}
	disks := make([]int32, len(addrs))
	status := make([]uint8, len(addrs))
	var sc BatchScratch
	sn.LocateBatch(addrs, disks, status, &sc)
	for k, a := range addrs {
		want, err := sn.Locate(a.Object, a.Index)
		if err != nil {
			t.Fatalf("Locate(%d,%d): %v", a.Object, a.Index, err)
		}
		if status[k] != LocateOK {
			t.Fatalf("block %d/%d: batch status %d, want OK", a.Object, a.Index, status[k])
		}
		if int(disks[k]) != want {
			t.Fatalf("block %d/%d: batch disk %d, serial Locate %d", a.Object, a.Index, disks[k], want)
		}
	}
}

func TestLocateBatchAgreesDuringScaleUp(t *testing.T) {
	srv := newServer(t, 4)
	loadObjects(t, srv, 6, 300)
	assertBatchAgrees(t, buildSnap(t, srv), 6, 300)
	if _, err := srv.ScaleUp(2); err != nil {
		t.Fatal(err)
	}
	for srv.Reorganizing() {
		assertBatchAgrees(t, buildSnap(t, srv), 6, 300)
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.FinishReorganization(); err != nil {
		t.Fatal(err)
	}
	assertBatchAgrees(t, buildSnap(t, srv), 6, 300)
}

func TestLocateBatchAgreesDuringScaleDown(t *testing.T) {
	srv := newServer(t, 6)
	loadObjects(t, srv, 6, 300)
	if _, err := srv.ScaleDown(1, 4); err != nil {
		t.Fatal(err)
	}
	for srv.Reorganizing() {
		assertBatchAgrees(t, buildSnap(t, srv), 6, 300)
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	assertBatchAgrees(t, buildSnap(t, srv), 6, 300)
	if err := srv.CompleteScaleDown(); err != nil {
		t.Fatal(err)
	}
	assertBatchAgrees(t, buildSnap(t, srv), 6, 300)
}

func TestLocateBatchStatuses(t *testing.T) {
	srv := newServer(t, 4)
	loadObjects(t, srv, 2, 50)
	sn := buildSnap(t, srv)
	addrs := []BlockAddr{
		{Object: 0, Index: 0},
		{Object: 99, Index: 0},
		{Object: 1, Index: 50},
		{Object: 1, Index: -1},
		{Object: 1, Index: 49},
	}
	disks := make([]int32, len(addrs))
	status := make([]uint8, len(addrs))
	sn.LocateBatch(addrs, disks, status, &BatchScratch{})
	want := []uint8{LocateOK, LocateUnknownObject, LocateOutOfRange, LocateOutOfRange, LocateOK}
	for i, w := range want {
		if status[i] != w {
			t.Fatalf("entry %d: status %d, want %d", i, status[i], w)
		}
	}
	for _, i := range []int{1, 2, 3} {
		if disks[i] != 0 {
			t.Fatalf("failed entry %d: disk %d, want 0", i, disks[i])
		}
	}
}

func TestLocateBatchZeroAlloc(t *testing.T) {
	srv := newServer(t, 8)
	loadObjects(t, srv, 4, 200)
	sn := buildSnap(t, srv)
	addrs := make([]BlockAddr, 64)
	for i := range addrs {
		addrs[i] = BlockAddr{Object: i % 4, Index: (i * 37) % 200}
	}
	disks := make([]int32, len(addrs))
	status := make([]uint8, len(addrs))
	var sc BatchScratch
	sn.LocateBatch(addrs, disks, status, &sc) // warm the scratch
	allocs := testing.AllocsPerRun(100, func() {
		sn.LocateBatch(addrs, disks, status, &sc)
	})
	if allocs != 0 {
		t.Fatalf("LocateBatch allocates %.1f per batch, want 0", allocs)
	}
}

func TestPlacementEpochAdvances(t *testing.T) {
	srv := newServer(t, 4)
	loadObjects(t, srv, 2, 100)
	if got := srv.PlacementEpoch(); got != 0 {
		t.Fatalf("epoch after load: %d, want 0 (object adds are not epoch events)", got)
	}
	sn0 := buildSnap(t, srv)
	if sn0.Epoch() != 0 {
		t.Fatalf("snapshot epoch %d, want 0", sn0.Epoch())
	}
	if _, err := srv.ScaleUp(2); err != nil {
		t.Fatal(err)
	}
	if got := srv.PlacementEpoch(); got != 1 {
		t.Fatalf("epoch after ScaleUp: %d, want 1", got)
	}
	for srv.Reorganizing() {
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	// Per-block migration progress must not advance the epoch.
	if got := srv.PlacementEpoch(); got != 1 {
		t.Fatalf("epoch after drain ticks: %d, want 1", got)
	}
	if err := srv.FinishReorganization(); err != nil {
		t.Fatal(err)
	}
	if got := srv.PlacementEpoch(); got != 2 {
		t.Fatalf("epoch after FinishReorganization: %d, want 2", got)
	}
	if sn := buildSnap(t, srv); sn.Epoch() != 2 {
		t.Fatalf("snapshot epoch %d, want 2", sn.Epoch())
	}
}
