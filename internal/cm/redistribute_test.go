package cm

import (
	"testing"

	"scaddar/internal/placement"
	"scaddar/internal/prng"
	"scaddar/internal/stats"
)

// newBudgetServer builds a server with budget tracking at the given width.
func newBudgetServer(t *testing.T, n0 int, bits uint, eps float64) (*Server, *placement.Scaddar) {
	t.Helper()
	x0 := placement.NewX0Func(func(seed uint64) prng.Source {
		return prng.Truncate(prng.NewSplitMix64(seed), bits)
	})
	strat, err := placement.NewScaddar(n0, x0)
	if err != nil {
		t.Fatal(err)
	}
	if err := strat.SetBits(bits); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.GeneratorBits = bits
	cfg.Tolerance = eps
	srv, err := NewServer(cfg, strat)
	if err != nil {
		t.Fatal(err)
	}
	return srv, strat
}

func TestBudgetConfigValidation(t *testing.T) {
	x0 := placement.NewX0Func(func(seed uint64) prng.Source { return prng.NewSplitMix64(seed) })
	strat, err := placement.NewScaddar(4, x0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.GeneratorBits = 32
	cfg.Tolerance = 0 // invalid with budget on
	if _, err := NewServer(cfg, strat); err == nil {
		t.Fatal("budget tracking without tolerance accepted")
	}
	cfg.Tolerance = 1.5
	if _, err := NewServer(cfg, strat); err == nil {
		t.Fatal("tolerance > 1 accepted")
	}
}

func TestNeedsRedistributionOffByDefault(t *testing.T) {
	srv := newServer(t, 4)
	if srv.NeedsRedistribution() {
		t.Fatal("budget-less server wants redistribution")
	}
	if srv.Budget() != nil {
		t.Fatal("budget-less server has a budget")
	}
}

// TestBudgetLifecycle drives a server past its randomness budget, performs
// the recommended full redistribution, and verifies the budget resets and
// balance recovers — the complete Section 4.3 + Section 4 story end to end.
func TestBudgetLifecycle(t *testing.T) {
	srv, _ := newBudgetServer(t, 4, 32, 0.05)
	loadObjects(t, srv, 10, 400)
	if srv.Budget() == nil {
		t.Fatal("no budget with tracking enabled")
	}

	// With b=32, ε=5%, single-disk adds from 4: the 9th operation breaks
	// the precondition (8 supported; see EXPERIMENTS.md E2).
	ops := 0
	for !srv.NeedsRedistribution() {
		if _, err := srv.ScaleUp(1); err != nil {
			t.Fatal(err)
		}
		for srv.Reorganizing() {
			if err := srv.Tick(); err != nil {
				t.Fatal(err)
			}
		}
		if err := srv.FinishReorganization(); err != nil {
			t.Fatal(err)
		}
		ops++
		if ops > 20 {
			t.Fatal("budget never exhausted")
		}
	}
	if ops != 9 {
		t.Fatalf("budget exhausted after %d ops, want 9", ops)
	}

	// The paper's remedy: redistribute everything.
	plan, err := srv.FullRedistribute()
	if err != nil {
		t.Fatal(err)
	}
	if f := plan.MoveFraction(); f < 0.8 {
		t.Fatalf("full redistribution moved only %.3f", f)
	}
	if plan.NBefore != plan.NAfter || plan.NAfter != srv.N() {
		t.Fatalf("plan header %+v, N=%d", plan, srv.N())
	}
	for srv.Reorganizing() {
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.FinishReorganization(); err != nil {
		t.Fatal(err)
	}
	if srv.NeedsRedistribution() {
		t.Fatal("budget not reset by full redistribution")
	}
	if err := srv.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
	if cov := stats.CoVInts(srv.Array().Loads()); cov > 0.1 {
		t.Fatalf("post-redistribution CoV %.4f", cov)
	}

	// And the server can keep scaling afterwards.
	if _, err := srv.ScaleUp(1); err != nil {
		t.Fatal(err)
	}
	for srv.Reorganizing() {
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.FinishReorganization(); err != nil {
		t.Fatal(err)
	}
	if err := srv.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestFullRedistributeGuards(t *testing.T) {
	srv, _ := newBudgetServer(t, 4, 32, 0.05)
	loadObjects(t, srv, 3, 200)
	if _, err := srv.ScaleUp(1); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.FullRedistribute(); err == nil {
		t.Fatal("full redistribution during migration accepted")
	}
	for srv.Reorganizing() {
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.FinishReorganization(); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.FullRedistribute(); err != nil {
		t.Fatal(err)
	}
}

func TestFullRedistributeRequiresRebaseliner(t *testing.T) {
	// Round-robin does not implement Rebaseliner.
	strat, err := placement.NewRoundRobin(4)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(DefaultConfig(), strat)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.FullRedistribute(); err == nil {
		t.Fatal("full redistribution on round-robin accepted")
	}
}

func TestFullRedistributeOnlineWithStreams(t *testing.T) {
	srv, _ := newBudgetServer(t, 6, 32, 0.05)
	loadObjects(t, srv, 5, 300)
	st, err := srv.StartStream(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.FullRedistribute(); err != nil {
		t.Fatal(err)
	}
	for srv.Reorganizing() {
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.FinishReorganization(); err != nil {
		t.Fatal(err)
	}
	if st.Hiccups != 0 {
		t.Fatalf("stream hiccuped %d times during full redistribution", st.Hiccups)
	}
	if err := srv.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}
