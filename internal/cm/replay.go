package cm

// Replay helpers: the mutation entry points the durable store uses to
// re-apply journaled events onto a server restored from a checkpoint. They
// mirror the live paths but take the journaled facts as authoritative —
// which specific moves executed, which blocks were lost — instead of
// recomputing them, because the live computations depend on state (plan
// iteration order, in-flight recordings) a restarted process no longer has.
//
// Known limitation, documented rather than journaled around: a recording
// session in flight across a disk failure/repair keeps per-round progress
// only in memory, so rebuild items the survivor queued for its uncommitted
// blocks cannot be reconstructed here. Scaling and ingest are mutually
// exclusive, so this affects only fail/repair under an active ingest.

import (
	"fmt"

	"scaddar/internal/disk"
	"scaddar/internal/placement"
	"scaddar/internal/workload"
)

// ReplayMigratedBlocks re-executes the journaled subset of pending
// reorganization moves. The blocks are identified by catalog coordinates
// because the plan's move ordering is not deterministic across restarts.
func (s *Server) ReplayMigratedBlocks(moves []BlockPos) error {
	if s.migration == nil {
		return fmt.Errorf("cm: replay: no reorganization in flight")
	}
	for _, mv := range moves {
		seed, ok := s.seedOfObject(mv.Object)
		if !ok {
			return fmt.Errorf("%w: object %d", ErrUnknownObject, mv.Object)
		}
		if err := s.migration.ExecuteBlock(placement.BlockRef{Seed: seed, Index: mv.Index}); err != nil {
			return fmt.Errorf("cm: replay: %w", err)
		}
		s.metrics.BlocksMigrated++
	}
	return nil
}

// ReplayRebuiltItems marks the journaled rebuild items complete, applying
// their physical effect (primary copies are re-stored on their targets) and
// repairing any Rebuilding disk whose queue drains.
func (s *Server) ReplayRebuiltItems(items []RebuildPos) error {
	rb := s.rebuild
	if rb == nil {
		return fmt.Errorf("cm: replay: no rebuild in flight")
	}
	for _, rp := range items {
		seed, ok := s.seedOfObject(rp.Object)
		if !ok {
			return fmt.Errorf("%w: object %d", ErrUnknownObject, rp.Object)
		}
		key := rebuildKey{kind: rebuildKind(rp.Kind), ref: placement.BlockRef{Seed: seed, Index: rp.Index}}
		found := -1
		for i, it := range rb.items {
			if it.key == key {
				found = i
				break
			}
		}
		if found < 0 {
			return fmt.Errorf("cm: replay: rebuild item kind %d for block %d/%d is not pending",
				rp.Kind, rp.Object, rp.Index)
		}
		it := rb.items[found]
		if it.key.kind == rebuildPrimary {
			target, err := s.array.Disk(it.target)
			if err != nil {
				return err
			}
			if err := target.Store(it.bid); err != nil {
				return fmt.Errorf("cm: replay: rebuild: %w", err)
			}
			target.RecordMigration()
			s.metrics.BlocksRebuilt++
		}
		delete(rb.pending, it.key)
		rb.items = append(rb.items[:found], rb.items[found+1:]...)
	}
	return s.sweepRebuiltDisks()
}

// ReplayIngestCommit restores a committed recording: like AddObject, but
// tolerant of a degraded array, since a recording that started on a healthy
// array may commit after a disk has failed. Blocks homed on a failed disk
// are handled the way the failure itself would have: recorded lost without
// redundancy, queued for rebuild with it.
func (s *Server) ReplayIngestCommit(obj workload.Object) error {
	if _, dup := s.objects[obj.ID]; dup {
		return fmt.Errorf("cm: duplicate object ID %d", obj.ID)
	}
	if id, dup := s.seedOf[obj.Seed]; dup && id != obj.ID {
		return fmt.Errorf("cm: duplicate object seed %d", obj.Seed)
	}
	if obj.Blocks < 1 {
		return fmt.Errorf("cm: object %d has no blocks", obj.ID)
	}
	if obj.BlockBytes != s.cfg.BlockBytes {
		return fmt.Errorf("cm: object %d block size %d != server block size %d",
			obj.ID, obj.BlockBytes, s.cfg.BlockBytes)
	}
	if obj.ID < 0 || obj.ID >= 1<<24 || uint64(obj.Blocks) >= 1<<40 {
		return fmt.Errorf("cm: object %d outside addressable range", obj.ID)
	}
	for i := 0; i < obj.Blocks; i++ {
		ref := placement.BlockRef{Seed: obj.Seed, Index: uint64(i)}
		logical := s.strat.Disk(ref)
		d, err := s.array.Disk(logical)
		if err != nil {
			return err
		}
		bid := blockID(obj.ID, uint64(i))
		if d.Health() == disk.Failed {
			if s.cfg.Redundancy == RedundancyNone {
				s.lost[bid] = true
			} else {
				s.ensureRebuilder().add(rebuildItem{
					key:    rebuildKey{kind: rebuildPrimary, ref: ref},
					bid:    bid,
					target: logical,
				})
			}
			continue
		}
		if err := d.Store(bid); err != nil {
			return err
		}
	}
	s.objects[obj.ID] = obj
	s.seedOf[obj.Seed] = obj.ID
	return nil
}

// ReplayDiskFailed re-applies a journaled disk failure. The journaled lost
// list is authoritative: the survivor may have recorded blocks of an
// in-flight recording this restored server cannot enumerate.
func (s *Server) ReplayDiskFailed(logical int, lost []BlockPos) error {
	if err := s.failDisk(logical, true); err != nil {
		return err
	}
	for _, lp := range lost {
		s.lost[blockID(lp.Object, lp.Index)] = true
	}
	return nil
}
