package cm

// This file is the round scheduler's batched read executor. Phase 1 of
// Tick (serveRead) plans every store-backed stream read into s.roundPlan
// without touching a segment file; phase 2 (executeBatchReads) scatters
// the plan into per-disk batches and runs them in parallel — one
// coalescing ReadBlocks call per disk — and phase 3 (deliverBatch) walks
// the plan in stream-ID order, handing each pooled payload to the delivery
// sink or recovering through failover. Planning, budget accounting, and
// delivery all stay on the owner goroutine in stream order, so the
// simulation remains deterministic; only the file I/O fans out.

import (
	"scaddar/internal/bufpool"
	"scaddar/internal/disk"
	"scaddar/internal/par"
	"scaddar/internal/placement"
)

// plannedRead is one store-backed stream read queued by phase 1.
type plannedRead struct {
	st      *Stream
	blocks  int // owning object's block count, for advanceStream
	ref     placement.BlockRef
	bid     disk.BlockID
	logical int
	d       *disk.Disk
	slot    int // index into the scattered request array, set by phase 2
}

// readGroup is one disk's contiguous slice of the scattered request array.
type readGroup struct {
	ps     disk.PayloadStore
	lo, hi int
}

// runBatchedReads executes the round plan: per-disk parallel batch I/O,
// then in-order delivery.
func (s *Server) runBatchedReads(used, caps []int) error {
	s.executeBatchReads()
	return s.deliverBatch(used, caps)
}

// executeBatchReads groups s.roundPlan by serving disk with a counting
// scatter (no sort, no allocation in steady state), then runs one
// ReadBlocks batch per disk, in parallel across disks when more than one
// disk has work.
func (s *Server) executeBatchReads() {
	n := s.N()
	if cap(s.batchCounts) < n {
		s.batchCounts = make([]int, n)
		s.batchStarts = make([]int, n)
		s.batchStores = make([]disk.PayloadStore, n)
	}
	counts := s.batchCounts[:n]
	starts := s.batchStarts[:n]
	stores := s.batchStores[:n]
	for i := range counts {
		counts[i] = 0
		stores[i] = nil
	}
	for i := range s.roundPlan {
		p := &s.roundPlan[i]
		counts[p.logical]++
		// Every planned read's disk had a payload store at plan time.
		stores[p.logical] = p.d.Payload()
	}
	off := 0
	for i, c := range counts {
		starts[i] = off
		off += c
	}
	if cap(s.batchReqs) < len(s.roundPlan) {
		s.batchReqs = make([]disk.BlockRead, len(s.roundPlan))
	}
	reqs := s.batchReqs[:len(s.roundPlan)]
	s.batchGroups = s.batchGroups[:0]
	for i, c := range counts {
		if c == 0 {
			continue
		}
		s.batchGroups = append(s.batchGroups, readGroup{
			ps: stores[i], lo: starts[i], hi: starts[i] + c,
		})
	}
	for i := range s.roundPlan {
		p := &s.roundPlan[i]
		slot := starts[p.logical]
		starts[p.logical]++
		p.slot = slot
		reqs[slot] = disk.BlockRead{Block: p.bid}
	}

	groups := s.batchGroups
	s.inBatchRead.Store(true)
	if len(groups) == 1 {
		disk.ReadBlocksFrom(groups[0].ps, reqs[groups[0].lo:groups[0].hi])
	} else {
		par.RangesN(len(groups), par.Workers(), func(lo, hi int) {
			for gi := lo; gi < hi; gi++ {
				g := groups[gi]
				disk.ReadBlocksFrom(g.ps, reqs[g.lo:g.hi])
			}
		})
	}
	s.inBatchRead.Store(false)
}

// deliverBatch walks the round plan in stream-ID order, delivering each
// successful read's pooled payload and recovering failed reads (corrupt
// frames, real media errors) through failover. The budget slot for each
// attempt was charged at plan time; a failed attempt keeps its slot, as a
// real disk would have spent the service time, and failover charges its
// own sources.
func (s *Server) deliverBatch(used, caps []int) error {
	reqs := s.batchReqs[:len(s.roundPlan)]
	for i := range s.roundPlan {
		p := &s.roundPlan[i]
		st := p.st
		res := &reqs[p.slot]
		if res.Err == nil {
			s.deliver(st, res.Payload)
			if st.State == StreamPlaying {
				s.advanceStream(st, p.blocks, true)
			}
			s.notifyClosed(st)
			continue
		}
		// The real read failed. The optimistic cache entry from plan time
		// must not serve a block the store could not produce.
		s.blockCache.Remove(p.bid)
		s.metrics.TransientReadErrors++
		p.d.RecordFailoverRead()
		outcome, err := s.failover(p.ref, p.bid, used, caps, true)
		if err != nil {
			s.releaseBatchFrom(i + 1)
			return err
		}
		switch outcome {
		case readServed:
			s.deliver(st, bufpool.Payload{})
			if st.State == StreamPlaying {
				s.advanceStream(st, p.blocks, true)
			}
		case readHiccup:
			st.Hiccups++
			s.metrics.Hiccups++
		case readLost:
			s.metrics.UnrecoverableReads++
			s.advanceStream(st, p.blocks, false)
		}
		s.notifyClosed(st)
	}
	return nil
}

// releaseBatchFrom returns the payloads of not-yet-delivered slots to the
// pool when delivery aborts on an error.
func (s *Server) releaseBatchFrom(from int) {
	reqs := s.batchReqs[:len(s.roundPlan)]
	for i := from; i < len(s.roundPlan); i++ {
		reqs[s.roundPlan[i].slot].Payload.Release()
	}
}
