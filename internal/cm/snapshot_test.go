package cm

import (
	"errors"
	"sync"
	"testing"

	"scaddar/internal/placement"
	"scaddar/internal/prng"
)

func testFactory(seed uint64) prng.Source { return prng.NewSplitMix64(seed) }

// buildSnap builds a snapshot or fails the test.
func buildSnap(t *testing.T, srv *Server) *LocatorSnapshot {
	t.Helper()
	sn, err := srv.BuildSnapshot(testFactory)
	if err != nil {
		t.Fatal(err)
	}
	return sn
}

// assertSnapshotAgrees checks that, for every loaded block, the snapshot's
// Locate names the same physical disk Server.Lookup serves the block from.
func assertSnapshotAgrees(t *testing.T, srv *Server, sn *LocatorSnapshot, objects, blocks int) {
	t.Helper()
	for o := 0; o < objects; o++ {
		for i := 0; i < blocks; i++ {
			want, err := srv.Lookup(o, i)
			if err != nil {
				t.Fatalf("Lookup(%d,%d): %v", o, i, err)
			}
			logical, err := sn.Locate(o, i)
			if err != nil {
				t.Fatalf("snapshot Locate(%d,%d): %v", o, i, err)
			}
			got, err := srv.Array().Disk(logical)
			if err != nil {
				t.Fatalf("resolving snapshot disk %d: %v", logical, err)
			}
			if got.ID() != want.ID() {
				t.Fatalf("block %d/%d: snapshot says disk %v, server serves from %v",
					o, i, got.ID(), want.ID())
			}
		}
	}
}

func TestSnapshotAgreesWithLookupDuringScaleUp(t *testing.T) {
	srv := newServer(t, 4)
	loadObjects(t, srv, 6, 300)
	assertSnapshotAgrees(t, srv, buildSnap(t, srv), 6, 300)

	if _, err := srv.ScaleUp(2); err != nil {
		t.Fatal(err)
	}
	// Re-snapshot after every round of the drain: the pending set shrinks
	// each Tick and the snapshot must track it.
	for srv.Reorganizing() {
		assertSnapshotAgrees(t, srv, buildSnap(t, srv), 6, 300)
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.FinishReorganization(); err != nil {
		t.Fatal(err)
	}
	assertSnapshotAgrees(t, srv, buildSnap(t, srv), 6, 300)
}

func TestSnapshotAgreesWithLookupDuringScaleDown(t *testing.T) {
	srv := newServer(t, 6)
	loadObjects(t, srv, 6, 300)
	if _, err := srv.ScaleDown(1, 4); err != nil {
		t.Fatal(err)
	}
	for srv.Reorganizing() {
		assertSnapshotAgrees(t, srv, buildSnap(t, srv), 6, 300)
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	// Drained but not yet detached: the pre-removal translation still
	// applies.
	assertSnapshotAgrees(t, srv, buildSnap(t, srv), 6, 300)
	if err := srv.CompleteScaleDown(); err != nil {
		t.Fatal(err)
	}
	assertSnapshotAgrees(t, srv, buildSnap(t, srv), 6, 300)
}

func TestSnapshotAgreesAfterFullRedistribute(t *testing.T) {
	srv := newServer(t, 4)
	loadObjects(t, srv, 4, 200)
	if _, err := srv.FullRedistribute(); err != nil {
		t.Fatal(err)
	}
	for srv.Reorganizing() {
		assertSnapshotAgrees(t, srv, buildSnap(t, srv), 4, 200)
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.FinishReorganization(); err != nil {
		t.Fatal(err)
	}
	// Epoch is now 1: the snapshot's locator must reproduce the
	// epoch-mixed placement.
	assertSnapshotAgrees(t, srv, buildSnap(t, srv), 4, 200)
}

func TestSnapshotTypedErrors(t *testing.T) {
	srv := newServer(t, 4)
	loadObjects(t, srv, 2, 50)
	sn := buildSnap(t, srv)
	if _, err := sn.Locate(99, 0); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("unknown object error = %v, want ErrUnknownObject", err)
	}
	if _, err := sn.Locate(0, 50); !errors.Is(err, ErrBlockOutOfRange) {
		t.Errorf("out-of-range error = %v, want ErrBlockOutOfRange", err)
	}
	if _, err := sn.Locate(0, -1); !errors.Is(err, ErrBlockOutOfRange) {
		t.Errorf("negative index error = %v, want ErrBlockOutOfRange", err)
	}
}

func TestServerTypedErrors(t *testing.T) {
	srv := newServer(t, 4)
	loadObjects(t, srv, 2, 50)
	if _, err := srv.Lookup(99, 0); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("Lookup unknown object = %v, want ErrUnknownObject", err)
	}
	if _, err := srv.Lookup(0, 50); !errors.Is(err, ErrBlockOutOfRange) {
		t.Errorf("Lookup out of range = %v, want ErrBlockOutOfRange", err)
	}
	if _, err := srv.StartStream(99); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("StartStream unknown object = %v, want ErrUnknownObject", err)
	}
	if err := srv.SeekStream(12345, 0); !errors.Is(err, ErrUnknownStream) {
		t.Errorf("SeekStream unknown stream = %v, want ErrUnknownStream", err)
	}
	st, err := srv.StartStream(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.SeekStream(st.ID, 50); !errors.Is(err, ErrBlockOutOfRange) {
		t.Errorf("SeekStream out of range = %v, want ErrBlockOutOfRange", err)
	}
	// Exhaust admission and check the rejection is typed.
	var admitErr error
	for i := 0; i < 10000; i++ {
		if _, admitErr = srv.StartStream(0); admitErr != nil {
			break
		}
	}
	if !errors.Is(admitErr, ErrAdmissionRejected) {
		t.Errorf("admission rejection = %v, want ErrAdmissionRejected", admitErr)
	}
	if _, err := srv.ScaleUp(1); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.ScaleUp(1); !errors.Is(err, ErrBusy) {
		t.Errorf("double scale-up = %v, want ErrBusy", err)
	}
}

func TestSnapshotConcurrentLookups(t *testing.T) {
	srv := newServer(t, 4)
	loadObjects(t, srv, 4, 200)
	sn := buildSnap(t, srv)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for o := 0; o < 4; o++ {
				for i := 0; i < 200; i++ {
					if _, err := sn.Locate(o, (i+g)%200); err != nil {
						t.Errorf("Locate: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestBuildSnapshotNeedsConcurrentStrategy(t *testing.T) {
	strat, err := placement.NewRoundRobin(4)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(DefaultConfig(), strat)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.BuildSnapshot(testFactory); err == nil {
		t.Error("round-robin strategy produced a snapshot")
	}
	srv2 := newServer(t, 4)
	if _, err := srv2.BuildSnapshot(nil); err == nil {
		t.Error("nil factory accepted")
	}
}

// BenchmarkLookup compares the owner-goroutine Lookup path with the
// concurrent snapshot path the gateway uses (single-threaded and parallel).
func BenchmarkLookup(b *testing.B) {
	x0 := placement.NewX0Func(func(seed uint64) prng.Source { return prng.NewSplitMix64(seed) })
	strat, err := placement.NewScaddar(8, x0)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := NewServer(DefaultConfig(), strat)
	if err != nil {
		b.Fatal(err)
	}
	const objects, blocks = 8, 500
	for i := 0; i < objects; i++ {
		if err := srv.AddObject(testObject(i, blocks)); err != nil {
			b.Fatal(err)
		}
	}
	sn, err := srv.BuildSnapshot(testFactory)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("server", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := srv.Lookup(i%objects, (i*7)%blocks); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("snapshot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sn.Locate(i%objects, (i*7)%blocks); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("snapshot-parallel", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if _, err := sn.Locate(i%objects, (i*7)%blocks); err != nil {
					b.Fatal(err)
				}
				i++
			}
		})
	})
}
