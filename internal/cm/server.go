// Package cm implements the continuous-media server the SCADDAR paper
// targets: objects split into fixed-size blocks and scattered over a disk
// array by a pluggable placement strategy, round-based retrieval of one
// block per active stream per round, admission control against disk
// bandwidth, and online scaling operations that reorganize blocks while
// streams keep playing.
//
// The server is a discrete-time simulator: Tick() advances one scheduling
// round, serving every active stream and spending each disk's leftover
// bandwidth on any in-progress reorganization. The paper's claims — minimal
// movement, preserved load balance, one disk access per block — are all
// observable through this layer.
package cm

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"scaddar/internal/bufpool"
	"scaddar/internal/cache"
	"scaddar/internal/disk"
	"scaddar/internal/mirror"
	"scaddar/internal/obs"
	"scaddar/internal/parity"
	"scaddar/internal/placement"
	"scaddar/internal/reorg"
	"scaddar/internal/scaddar"
	"scaddar/internal/schedule"
	"scaddar/internal/workload"
)

// Config fixes the server's scheduling and hardware parameters.
type Config struct {
	// Round is the scheduling round length; every active stream receives
	// one block per round.
	Round time.Duration
	// Profile is the disk model used for every disk in the array.
	Profile disk.Profile
	// BlockBytes is the server-wide block size; objects must match it.
	BlockBytes int64
	// Utilization is the admission-control target in (0, 1]: streams are
	// admitted while activeStreams < Utilization * aggregate per-round
	// block capacity.
	Utilization float64
	// OverloadTarget, when non-zero, switches admission to the statistical
	// policy: admit streams while the probability that any disk's
	// per-round demand exceeds its capacity stays at or below this value
	// (see MaxStreamsStatistical). Utilization is ignored in that mode.
	OverloadTarget float64
	// GeneratorBits, when non-zero, enables Section 4.3 randomness-budget
	// tracking: every scaling operation is recorded against a Budget and
	// NeedsRedistribution reports when the Tolerance can no longer be
	// guaranteed. It must match the width of the placement strategy's
	// generators.
	GeneratorBits uint
	// Tolerance is the unfairness tolerance ε for the budget check; only
	// meaningful when GeneratorBits is non-zero.
	Tolerance float64
	// CacheBlocks, when non-zero, puts an LRU block buffer of that many
	// blocks in front of the disks: a stream's read that hits the cache
	// consumes no disk bandwidth (the interval-caching effect for close
	// followers on popular titles). Sized in blocks of BlockBytes.
	CacheBlocks int
	// MeasureRounds, when true, replays each round's per-disk requests
	// through a calibrated SCAN schedule (seek-distance model, elevator
	// ordering, head tracking) and counts rounds whose actual service time
	// exceeds the round length in Metrics.RoundOverruns. It validates the
	// fixed per-round block budget from inside the live simulation.
	MeasureRounds bool
	// Redundancy selects the live fault-tolerance scheme: none, Section 6
	// offset mirroring, or hybrid parity groups. It determines whether reads
	// on a failed disk can fail over and whether a replaced disk can be
	// rebuilt.
	Redundancy Redundancy
	// ParityGroup is the parity group size g for RedundancyParity; 0 means
	// the default of 4.
	ParityGroup int
	// MirrorOffset overrides the mirror offset function for
	// RedundancyMirror; nil means the paper's f(N) = N/2.
	MirrorOffset mirror.OffsetFunc
}

// DefaultConfig returns a server configuration matching the paper's era:
// one-second rounds of 256 KiB blocks on Cheetah-class disks, admitting up
// to 80% of theoretical capacity.
func DefaultConfig() Config {
	return Config{
		Round:       time.Second,
		Profile:     disk.Cheetah73,
		BlockBytes:  256 << 10,
		Utilization: 0.8,
	}
}

// StreamState describes a stream's lifecycle.
type StreamState int

// Stream states.
const (
	// StreamPlaying streams are served one block per round.
	StreamPlaying StreamState = iota
	// StreamDone streams reached the end of their object.
	StreamDone
	// StreamStopped streams were terminated by the viewer.
	StreamStopped
	// StreamPaused streams hold an admission slot but are not served;
	// playback begins at ResumeStream. Opening paused lets a client
	// reserve capacity first and attach its consumer before any round
	// paces a block out — nothing is delivered to nobody.
	StreamPaused
)

// String names the stream state.
func (s StreamState) String() string {
	switch s {
	case StreamPlaying:
		return "playing"
	case StreamDone:
		return "done"
	case StreamStopped:
		return "stopped"
	case StreamPaused:
		return "paused"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Stream is one active playback session.
type Stream struct {
	// ID is the server-assigned stream identity.
	ID int
	// Object is the object being played.
	Object int
	// Position is the next block index to deliver.
	Position int
	// State is the lifecycle state.
	State StreamState
	// Hiccups counts rounds in which the block could not be served in
	// time because its disk was overloaded.
	Hiccups int
	// Served counts blocks delivered.
	Served int
}

// Metrics aggregates server activity.
type Metrics struct {
	// Rounds is the number of Tick calls.
	Rounds int
	// BlocksServed counts blocks delivered to streams.
	BlocksServed int
	// Hiccups counts stream-rounds that missed their deadline.
	Hiccups int
	// StreamsCompleted counts streams that played to the end.
	StreamsCompleted int
	// StreamsRejected counts admission-control rejections.
	StreamsRejected int
	// BlocksMigrated counts reorganization moves executed inside Tick.
	BlocksMigrated int
	// RoundOverruns counts disk-rounds whose measured SCAN service time
	// exceeded the round length (only tracked with Config.MeasureRounds).
	RoundOverruns int
	// BlocksIngested counts blocks written by recording sessions.
	BlocksIngested int
	// CacheHits counts stream reads served from the block buffer.
	CacheHits int
	// DiskFailures counts whole-disk failures injected or invoked.
	DiskFailures int
	// DiskRepairs counts replacement arrivals (rebuild starts).
	DiskRepairs int
	// DegradedReads counts stream reads served via mirror failover or
	// parity reconstruction instead of the block's home disk.
	DegradedReads int
	// UnrecoverableReads counts stream reads of blocks no redundancy could
	// serve; the stream skips the block after the attempt.
	UnrecoverableReads int
	// TransientReadErrors counts per-read transient faults injected on
	// otherwise healthy reads.
	TransientReadErrors int
	// FailoverReads counts the source-disk reads consumed serving degraded
	// reads — the failover bandwidth bill (a parity reconstruction charges
	// one read per surviving member plus the parity disk).
	FailoverReads int
	// BlocksRebuilt counts primary copies re-materialized onto replaced
	// disks (or onto migration destinations after a mid-reorg failure).
	BlocksRebuilt int
	// RebuildIOs counts every disk I/O (source reads + target writes) the
	// rebuild executor spent.
	RebuildIOs int
	// RebuildsCompleted counts disks whose rebuild drained fully.
	RebuildsCompleted int
	// RoundsToRepair accumulates, over completed rebuilds, the rounds from
	// repair arrival to rebuild completion.
	RoundsToRepair int
	// PayloadBytesServed counts real block bytes handed to the delivery
	// sink (only non-zero with a data plane attached).
	PayloadBytesServed int64
	// SessionsEvicted counts streams stopped because the delivery sink
	// reported the client hopelessly behind.
	SessionsEvicted int
}

// Server is the continuous-media server simulator.
type Server struct {
	cfg     Config
	strat   placement.Strategy
	array   *disk.Array
	objects map[int]workload.Object
	seedOf  map[uint64]int // object seed -> object ID, for block IDs
	streams map[int]*Stream
	nextSID int
	metrics Metrics

	// migration is the in-progress reorganization, if any.
	migration *reorg.Executor
	// pendingRemoval holds logical indices awaiting CompleteScaleDown, and
	// removalPreOf translates post-removal logical indices (what the
	// already-updated strategy reports) back to the pre-removal numbering
	// the physical array still uses while the drain is in flight.
	pendingRemoval []int
	removalPreOf   []int
	// budget tracks the Section 4.3 randomness budget when configured.
	budget *scaddar.Budget
	// seek and heads implement MeasureRounds: the calibrated seek model
	// and the per-physical-disk head positions.
	seek  *schedule.SeekModel
	heads map[int]int64
	// ingests holds recording sessions (completed ones are kept for
	// inspection).
	ingests []*Ingest
	// blockCache is the optional LRU block buffer.
	blockCache *cache.LRU
	// faults is the installed fault injector, if any.
	faults *Injector
	// mirrored resolves redundant copy locations for RedundancyMirror.
	mirrored *mirror.Mirrored
	// par resolves redundant copy locations for RedundancyParity.
	par *parity.Parity
	// rebuild is the online rebuild executor (created on first fault work).
	rebuild *rebuilder
	// lost records blocks that are permanently unrecoverable.
	lost map[disk.BlockID]bool
	// events is the optional durable-event sink and extraSinks the
	// non-durable observers teed behind it (see events.go).
	events     EventSink
	extraSinks []EventSink
	// placementEpoch counts epoch events (IsEpochEvent) emitted so far: it
	// advances when a scaling operation starts or finishes, never mid-drain.
	// Snapshots carry it so remote readers can detect that two answers came
	// from different placement generations (see LocatorSnapshot.Epoch).
	placementEpoch uint64
	// payloads, content, and delivery wire the real data plane: per-disk
	// byte stores, the deterministic content oracle, and the sink served
	// bytes are handed to (see dataplane.go).
	payloads disk.PayloadFactory
	content  ContentFunc
	delivery DeliverySink
	// obsv is the optional metrics observer and trace the optional span ring
	// (see observe.go).
	obsv  *Observer
	trace *obs.Ring

	// roundPlan collects the current round's store-backed reads in stream
	// order; the batch* slices are the scheduler's reusable scratch
	// (batchread.go). All are owner-goroutine state reused across rounds so
	// the steady-state round performs no per-stream allocation.
	roundPlan   []plannedRead
	batchReqs   []disk.BlockRead
	batchCounts []int
	batchStarts []int
	batchStores []disk.PayloadStore
	batchGroups []readGroup
	// inBatchRead suppresses the store-level injected-fault hook while the
	// parallel batch executes: batched reads pre-roll their faults at plan
	// time on the owner goroutine (serveRead), keeping the injector's draw
	// sequence deterministic regardless of batch scheduling.
	inBatchRead atomic.Bool
}

// NewServer creates a server over a fresh homogeneous array sized to the
// strategy's current disk count.
func NewServer(cfg Config, strat placement.Strategy) (*Server, error) {
	if cfg.Round <= 0 {
		return nil, fmt.Errorf("cm: round length %v must be positive", cfg.Round)
	}
	if cfg.BlockBytes <= 0 {
		return nil, fmt.Errorf("cm: block size %d must be positive", cfg.BlockBytes)
	}
	if cfg.Utilization <= 0 || cfg.Utilization > 1 {
		return nil, fmt.Errorf("cm: utilization %g outside (0,1]", cfg.Utilization)
	}
	if cfg.OverloadTarget < 0 || cfg.OverloadTarget >= 1 {
		return nil, fmt.Errorf("cm: overload target %g outside [0,1)", cfg.OverloadTarget)
	}
	if strat == nil {
		return nil, fmt.Errorf("cm: server needs a placement strategy")
	}
	if cfg.Profile.BlocksPerRound(cfg.Round, cfg.BlockBytes) < 1 {
		return nil, fmt.Errorf("cm: disk %s cannot serve a single %d-byte block per %v round",
			cfg.Profile.Name, cfg.BlockBytes, cfg.Round)
	}
	array, err := disk.NewArray(strat.N(), cfg.Profile)
	if err != nil {
		return nil, err
	}
	var budget *scaddar.Budget
	if cfg.GeneratorBits > 0 {
		if cfg.Tolerance <= 0 || cfg.Tolerance >= 1 {
			return nil, fmt.Errorf("cm: tolerance %g outside (0,1) with budget tracking enabled", cfg.Tolerance)
		}
		budget, err = scaddar.NewBudget(cfg.GeneratorBits, strat.N())
		if err != nil {
			return nil, err
		}
	}
	var seek *schedule.SeekModel
	if cfg.MeasureRounds {
		seek, err = schedule.Calibrate(cfg.Profile, cfg.BlockBytes)
		if err != nil {
			return nil, err
		}
	}
	blockCache, err := cache.New(cfg.CacheBlocks)
	if err != nil {
		return nil, err
	}
	var mirrored *mirror.Mirrored
	var par *parity.Parity
	switch cfg.Redundancy {
	case RedundancyNone:
	case RedundancyMirror:
		mirrored, err = mirror.New(strat, cfg.MirrorOffset)
		if err != nil {
			return nil, err
		}
	case RedundancyParity:
		g := cfg.ParityGroup
		if g == 0 {
			g = 4
		}
		par, err = parity.New(strat, g)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("cm: unknown redundancy scheme %d", cfg.Redundancy)
	}
	return &Server{
		cfg:        cfg,
		strat:      strat,
		array:      array,
		objects:    make(map[int]workload.Object),
		seedOf:     make(map[uint64]int),
		streams:    make(map[int]*Stream),
		budget:     budget,
		seek:       seek,
		heads:      make(map[int]int64),
		blockCache: blockCache,
		mirrored:   mirrored,
		par:        par,
		lost:       make(map[disk.BlockID]bool),
	}, nil
}

// Config returns the server configuration.
func (s *Server) Config() Config { return s.cfg }

// Strategy returns the placement strategy in use.
func (s *Server) Strategy() placement.Strategy { return s.strat }

// Array exposes the physical disk array.
func (s *Server) Array() *disk.Array { return s.array }

// Metrics returns a copy of the accumulated metrics.
func (s *Server) Metrics() Metrics { return s.metrics }

// N returns the current number of disks.
func (s *Server) N() int { return s.array.N() }

// Reorganizing reports whether a scaling operation is still migrating
// blocks.
func (s *Server) Reorganizing() bool {
	return s.migration != nil && !s.migration.Done()
}

// blockID packs (object, index) into a disk-layer block identity.
func blockID(object int, index uint64) disk.BlockID {
	return disk.BlockID(uint64(object)<<40 | index)
}

// blockIDOf resolves a placement reference through the seed table.
func (s *Server) blockIDOf(b placement.BlockRef) disk.BlockID {
	obj, ok := s.seedOf[b.Seed]
	if !ok {
		panic(fmt.Sprintf("cm: block reference with unknown seed %d", b.Seed))
	}
	return blockID(obj, b.Index)
}

// objectLayout resolves the logical disk of every block of an object in one
// sweep, going through placement.Snapshot so strategies with a bulk path
// (compiled and parallel for SCADDAR) resolve the whole object at once.
func objectLayout(strat placement.Strategy, obj workload.Object) []int {
	blocks := make([]placement.BlockRef, obj.Blocks)
	for i := range blocks {
		blocks[i] = placement.BlockRef{Seed: obj.Seed, Index: uint64(i)}
	}
	return placement.Snapshot(strat, blocks)
}

// AddObject loads an object's blocks onto the array according to the
// placement strategy. Objects must have distinct IDs and seeds and match
// the server block size.
func (s *Server) AddObject(obj workload.Object) error {
	if s.Reorganizing() {
		return fmt.Errorf("%w: cannot add objects during reorganization", ErrBusy)
	}
	if s.Degraded() {
		return fmt.Errorf("%w: cannot add objects while the array is degraded", ErrBusy)
	}
	if _, dup := s.objects[obj.ID]; dup {
		return fmt.Errorf("cm: duplicate object ID %d", obj.ID)
	}
	if _, dup := s.seedOf[obj.Seed]; dup {
		return fmt.Errorf("cm: duplicate object seed %d", obj.Seed)
	}
	for _, in := range s.ingests {
		if !in.Done && in.Object.ID == obj.ID {
			return fmt.Errorf("cm: object %d is being ingested", obj.ID)
		}
	}
	if obj.Blocks < 1 {
		return fmt.Errorf("cm: object %d has no blocks", obj.ID)
	}
	if obj.BlockBytes != s.cfg.BlockBytes {
		return fmt.Errorf("cm: object %d block size %d != server block size %d",
			obj.ID, obj.BlockBytes, s.cfg.BlockBytes)
	}
	if obj.ID < 0 || obj.ID >= 1<<24 || uint64(obj.Blocks) >= 1<<40 {
		return fmt.Errorf("cm: object %d outside addressable range", obj.ID)
	}
	// Reserve the identity before the block loop so the payload oracle can
	// resolve the object's seed for the bytes being written.
	s.objects[obj.ID] = obj
	s.seedOf[obj.Seed] = obj.ID
	for i, logical := range objectLayout(s.strat, obj) {
		d, err := s.array.Disk(logical)
		if err != nil {
			return err
		}
		if err := d.Store(blockID(obj.ID, uint64(i))); err != nil {
			return err
		}
		if err := s.putPayload(d, blockID(obj.ID, uint64(i))); err != nil {
			return err
		}
	}
	s.emit(Event{Kind: EventObjectAdded, Object: obj})
	return nil
}

// RemoveObject deletes an object and its blocks.
func (s *Server) RemoveObject(id int) error {
	if s.Reorganizing() {
		return fmt.Errorf("%w: cannot remove objects during reorganization", ErrBusy)
	}
	if s.Degraded() {
		return fmt.Errorf("%w: cannot remove objects while the array is degraded", ErrBusy)
	}
	obj, ok := s.objects[id]
	if !ok {
		return fmt.Errorf("%w: object %d", ErrUnknownObject, id)
	}
	for _, st := range s.streams {
		if st.Object == id && st.State == StreamPlaying {
			return fmt.Errorf("%w: object %d has active streams", ErrBusy, id)
		}
	}
	for i, logical := range objectLayout(s.strat, obj) {
		d, err := s.array.Disk(logical)
		if err != nil {
			return err
		}
		if err := d.Remove(blockID(obj.ID, uint64(i))); err != nil {
			return err
		}
		if err := s.deletePayload(d, blockID(obj.ID, uint64(i))); err != nil {
			return err
		}
		s.blockCache.Remove(blockID(obj.ID, uint64(i)))
	}
	delete(s.objects, id)
	delete(s.seedOf, obj.Seed)
	s.emit(Event{Kind: EventObjectRemoved, ObjectID: id})
	return nil
}

// Catalog returns every loaded object sorted by ID — the full metadata a
// peer needs to recreate the catalog elsewhere (cluster migration ships
// objects between shards with it).
func (s *Server) Catalog() []workload.Object {
	out := make([]workload.Object, 0, len(s.objects))
	for _, obj := range s.objects {
		out = append(out, obj)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// StopObjectStreams stops every playing stream on the given object and
// returns how many it stopped. It is the forced-eviction prologue to
// RemoveObject: a cluster migration moves the object's home shard out from
// under its viewers, who re-open through the router and land on the new
// home.
func (s *Server) StopObjectStreams(object int) int {
	n := 0
	for _, st := range s.streams {
		if st.Object == object && st.State == StreamPlaying {
			st.State = StreamStopped
			n++
		}
	}
	return n
}

// Object returns an object by ID.
func (s *Server) Object(id int) (workload.Object, error) {
	obj, ok := s.objects[id]
	if !ok {
		return workload.Object{}, fmt.Errorf("%w: object %d", ErrUnknownObject, id)
	}
	return obj, nil
}

// Objects returns the number of loaded objects.
func (s *Server) Objects() int { return len(s.objects) }

// TotalBlocks returns the number of blocks stored across the array.
func (s *Server) TotalBlocks() int { return s.array.TotalBlocks() }

// allBlocks enumerates every loaded block as a placement reference.
func (s *Server) allBlocks() []placement.BlockRef {
	var blocks []placement.BlockRef
	for _, obj := range s.objects {
		for i := 0; i < obj.Blocks; i++ {
			blocks = append(blocks, placement.BlockRef{Seed: obj.Seed, Index: uint64(i)})
		}
	}
	return blocks
}

// locate returns the logical disk a block must be read from right now:
// normally the strategy's answer, but while a reorganization is in flight a
// block whose move is still pending is served from its pre-operation home,
// and during a scale-down drain the strategy's post-removal numbering is
// translated back to the pre-removal numbering the physical array still
// uses.
func (s *Server) locate(b placement.BlockRef) int {
	if s.migration != nil {
		if from, pending := s.migration.PendingSource(b); pending {
			return from
		}
		if s.removalPreOf != nil {
			return s.removalPreOf[s.strat.Disk(b)]
		}
	}
	return s.strat.Disk(b)
}

// Lookup returns the disk currently holding a block, verifying that the
// placement layer and the physical inventory agree — the paper's AO1
// one-access guarantee depends on this invariant. It is correct even while
// a reorganization is in flight.
func (s *Server) Lookup(object int, index int) (*disk.Disk, error) {
	obj, ok := s.objects[object]
	if !ok {
		return nil, fmt.Errorf("%w: object %d", ErrUnknownObject, object)
	}
	if index < 0 || index >= obj.Blocks {
		return nil, fmt.Errorf("%w: object %d has no block %d", ErrBlockOutOfRange, object, index)
	}
	ref := placement.BlockRef{Seed: obj.Seed, Index: uint64(index)}
	logical := s.locate(ref)
	d, err := s.array.Disk(logical)
	if err != nil {
		return nil, err
	}
	if !d.Has(blockID(object, uint64(index))) {
		if s.blockDegraded(ref, blockID(object, uint64(index)), d) {
			return nil, fmt.Errorf("%w: block %d/%d: disk %d is %s and the copy is not yet rebuilt",
				ErrDegradedRead, object, index, d.ID(), d.Health())
		}
		return nil, fmt.Errorf("cm: block %d/%d not on disk %d where placement expects it",
			object, index, d.ID())
	}
	return d, nil
}

// blockDegraded reports whether a block's absence from its home disk is an
// expected degraded-mode condition (failure, pending rebuild, permanent
// loss) rather than an integrity violation.
func (s *Server) blockDegraded(ref placement.BlockRef, bid disk.BlockID, d *disk.Disk) bool {
	return s.lost[bid] ||
		s.rebuildPending(rebuildKey{kind: rebuildPrimary, ref: ref}) ||
		d.Health() != disk.Healthy
}

// diskCapacityPerRound is the block budget of one round for the server's
// configured (baseline) profile.
func (s *Server) diskCapacityPerRound() int {
	return s.cfg.Profile.BlocksPerRound(s.cfg.Round, s.cfg.BlockBytes)
}

// capacities returns the per-logical-disk block budgets of one round,
// honoring per-disk profiles in mixed-generation arrays.
func (s *Server) capacities() ([]int, error) {
	out := make([]int, s.N())
	for i := range out {
		d, err := s.array.Disk(i)
		if err != nil {
			return nil, err
		}
		out[i] = d.Profile().BlocksPerRound(s.cfg.Round, s.cfg.BlockBytes)
	}
	return out, nil
}

// capacityStreams is the admission limit on simultaneous streams: the
// statistical limit when an overload target is configured, the fixed
// utilization fraction otherwise. Uniform random placement spreads demand
// evenly over logical disks, so in a mixed-generation array the WEAKEST
// disk binds: admission uses N times the minimum per-disk capacity (this
// is exactly the inefficiency the Section 6 logical mapping removes; see
// experiment E11).
func (s *Server) capacityStreams() int {
	caps, err := s.capacities()
	if err != nil || len(caps) == 0 {
		return 0
	}
	minCap := caps[0]
	for _, c := range caps[1:] {
		if c < minCap {
			minCap = c
		}
	}
	if s.cfg.OverloadTarget > 0 {
		limit, err := MaxStreamsStatistical(s.N(), minCap, s.cfg.OverloadTarget)
		if err != nil {
			return 0 // degenerate configuration: admit nothing
		}
		return limit
	}
	return int(s.cfg.Utilization * float64(s.N()*minCap))
}

// ActiveStreams returns the number of playing streams.
func (s *Server) ActiveStreams() int {
	n := 0
	for _, st := range s.streams {
		if st.State == StreamPlaying {
			n++
		}
	}
	return n
}

// StartStream admits a new playback session for an object, or rejects it if
// the server is at its admission limit. The stream plays from the next
// round on, attached consumer or not.
func (s *Server) StartStream(object int) (*Stream, error) {
	return s.startStream(object, StreamPlaying)
}

// StartStreamPaused admits a session that holds its admission slot but is
// not served until ResumeStream — the client reserves capacity first and
// connects its consumer before the pacer delivers anything.
func (s *Server) StartStreamPaused(object int) (*Stream, error) {
	return s.startStream(object, StreamPaused)
}

func (s *Server) startStream(object int, state StreamState) (*Stream, error) {
	if _, ok := s.objects[object]; !ok {
		return nil, fmt.Errorf("%w: object %d", ErrUnknownObject, object)
	}
	// Paused streams count against admission: the slot is reserved the
	// moment the session exists, not when playback starts.
	if s.admittedStreams() >= s.capacityStreams() {
		s.metrics.StreamsRejected++
		return nil, fmt.Errorf("%w: object %d (%d active, capacity %d)",
			ErrAdmissionRejected, object, s.admittedStreams(), s.capacityStreams())
	}
	st := &Stream{ID: s.nextSID, Object: object, State: state}
	s.nextSID++
	s.streams[st.ID] = st
	return st, nil
}

// admittedStreams counts the sessions holding admission slots: playing
// streams plus paused ones whose playback has not started yet.
func (s *Server) admittedStreams() int {
	n := 0
	for _, st := range s.streams {
		if st.State == StreamPlaying || st.State == StreamPaused {
			n++
		}
	}
	return n
}

// ResumeStream starts playback of a paused stream; resuming a stream that
// is already playing is a no-op. Finished streams cannot be resumed.
func (s *Server) ResumeStream(id int) error {
	st, ok := s.streams[id]
	if !ok {
		return fmt.Errorf("%w: stream %d", ErrUnknownStream, id)
	}
	switch st.State {
	case StreamPaused:
		st.State = StreamPlaying
	case StreamPlaying:
	default:
		return fmt.Errorf("cannot resume stream %d: %s", id, st.State)
	}
	return nil
}

// StopStream terminates a stream (viewer pressed stop).
func (s *Server) StopStream(id int) error {
	st, ok := s.streams[id]
	if !ok {
		return fmt.Errorf("%w: stream %d", ErrUnknownStream, id)
	}
	if st.State == StreamPlaying || st.State == StreamPaused {
		st.State = StreamStopped
	}
	return nil
}

// SeekStream repositions a stream (VCR jump).
func (s *Server) SeekStream(id, position int) error {
	st, ok := s.streams[id]
	if !ok {
		return fmt.Errorf("%w: stream %d", ErrUnknownStream, id)
	}
	obj := s.objects[st.Object]
	if position < 0 || position >= obj.Blocks {
		return fmt.Errorf("%w: seek position %d outside object %d", ErrBlockOutOfRange, position, st.Object)
	}
	st.Position = position
	return nil
}

// Stream returns a stream by ID.
func (s *Server) Stream(id int) (*Stream, error) {
	st, ok := s.streams[id]
	if !ok {
		return nil, fmt.Errorf("%w: stream %d", ErrUnknownStream, id)
	}
	return st, nil
}

// readOutcome is the result of one stream read attempt.
type readOutcome int

const (
	// readServed: the block was delivered (directly or via failover).
	readServed readOutcome = iota
	// readHiccup: the block exists but could not be served this round
	// (budget exhausted, or a transient error with no failover path); the
	// stream stalls and retries.
	readHiccup
	// readLost: no copy of the block is available; the stream skips it.
	readLost
	// readPlanned: the block is served from a payload store; the read was
	// queued for the per-disk parallel batch and the stream's delivery
	// happens after the batch executes (see batchread.go).
	readPlanned
)

// serveRead attempts one block read against the current array state: the
// home disk when it is healthy (or rebuilding and already restored), with a
// transient-error roll; otherwise failover to the mirror copy or parity
// reconstruction, charging one read on every source disk. used is
// decremented-into per-disk round accounting shared with ingest and the
// spare pool. With a payload store on the serving disk the file I/O is not
// performed here: the read is queued on s.roundPlan (readPlanned) and
// executed by the per-disk parallel batch after every stream has planned
// (see batchread.go). Transient faults for those reads are pre-rolled here,
// on the owner goroutine in stream order, so the injector's draw sequence
// stays deterministic regardless of how the batch parallelizes.
func (s *Server) serveRead(st *Stream, ref placement.BlockRef, bid disk.BlockID,
	used, caps []int, roundReqs map[int][]schedule.Request) (readOutcome, error) {
	if s.lost[bid] {
		return readLost, nil
	}
	logical := s.locate(ref)
	d, err := s.array.Disk(logical)
	if err != nil {
		return 0, err
	}
	present := d.Health() != disk.Failed && d.Has(bid)
	if !present {
		// Absent blocks are legal only in degraded mode: the home disk
		// failed, or the block awaits re-materialization.
		if d.Health() == disk.Healthy && !s.rebuildPending(rebuildKey{kind: rebuildPrimary, ref: ref}) {
			return 0, fmt.Errorf("cm: stream %d: block %d/%d missing from disk %d",
				st.ID, st.Object, st.Position, d.ID())
		}
		return s.failover(ref, bid, used, caps, false)
	}
	ps := d.Payload()
	if ps == nil && s.faults != nil && s.faults.transientError() {
		// Pure metadata simulation: roll the transient fault here.
		s.metrics.TransientReadErrors++
		// The failed attempt still occupied the disk for a service slot.
		if used[logical] < caps[logical] {
			used[logical]++
			d.RecordFailoverRead()
		}
		return s.failover(ref, bid, used, caps, true)
	}
	if used[logical] >= caps[logical] {
		return readHiccup, nil
	}
	if !d.Read(bid) {
		return 0, fmt.Errorf("cm: stream %d: block %d/%d missing from disk %d",
			st.ID, st.Object, st.Position, d.ID())
	}
	if ps != nil && s.faults != nil && s.faults.transientError() {
		// Pre-rolled transient fault for a store-backed read: the attempt
		// consumed the slot; recover via redundancy. (The store-level hook
		// is suppressed during the batch so the roll happens exactly once.)
		s.metrics.TransientReadErrors++
		used[logical]++
		d.RecordFailoverRead()
		return s.failover(ref, bid, used, caps, true)
	}
	s.blockCache.Put(bid)
	if roundReqs != nil {
		lba, err := schedule.LBAFor(bid, int64(s.cfg.Profile.CapacityBlocks(s.cfg.BlockBytes)))
		if err != nil {
			return 0, err
		}
		roundReqs[d.ID()] = append(roundReqs[d.ID()], schedule.Request{Block: bid, LBA: lba})
	}
	used[logical]++
	if ps != nil {
		obj := s.objects[st.Object]
		s.roundPlan = append(s.roundPlan, plannedRead{
			st: st, blocks: obj.Blocks, ref: ref, bid: bid, logical: logical, d: d,
		})
		return readPlanned, nil
	}
	return readServed, nil
}

// failover serves a read from redundant copies. dataIntact marks transient
// failures of a still-present block: those never report readLost — the data
// survives, so a blocked failover just retries next round. Served bytes are
// re-materialized from the content oracle inside deliver: redundant copies
// are virtual (computable), so reconstruction produces exactly the bytes
// ingest wrote — and streams nobody listens to skip the materialization
// entirely.
func (s *Server) failover(ref placement.BlockRef, bid disk.BlockID,
	used, caps []int, dataIntact bool) (readOutcome, error) {
	if s.cfg.Redundancy == RedundancyNone {
		if dataIntact {
			return readHiccup, nil
		}
		return readLost, nil
	}
	sources, ok, err := s.failoverSources(ref)
	if err != nil {
		return 0, err
	}
	if !ok {
		if dataIntact {
			return readHiccup, nil
		}
		return readLost, nil
	}
	// All-or-nothing budget: a parity reconstruction needs every source in
	// the same round. Degraded reads that overflow a round hiccup and retry.
	need := make(map[int]int, len(sources))
	for _, src := range sources {
		need[src]++
	}
	for src, n := range need {
		if used[src]+n > caps[src] {
			return readHiccup, nil
		}
	}
	for _, src := range sources {
		used[src]++
		d, err := s.array.Disk(src)
		if err != nil {
			return 0, err
		}
		d.RecordFailoverRead()
	}
	s.metrics.DegradedReads++
	s.metrics.FailoverReads += len(sources)
	s.blockCache.Put(bid)
	return readServed, nil
}

// Tick advances one scheduling round: scheduled fault events fire first;
// then every playing stream requests its next block from the disk the
// placement strategy names — failing over to redundancy when that disk is
// down — disks serve up to their per-round capacity and excess requests
// hiccup (the stream stalls one round). Leftover per-disk capacity then
// goes first to any in-progress rebuild (restoring redundancy outranks
// rebalancing) and then to any in-progress reorganization.
func (s *Server) Tick() error {
	s.metrics.Rounds++
	prevMigrated, prevRebuildIOs := s.metrics.BlocksMigrated, s.metrics.RebuildIOs
	if err := s.fireFaults(); err != nil {
		return err
	}
	s.array.ResetRounds()
	caps, err := s.capacities()
	if err != nil {
		return err
	}
	// Failed disks serve nothing this round.
	for i := range caps {
		d, err := s.array.Disk(i)
		if err != nil {
			return err
		}
		if d.Health() == disk.Failed {
			caps[i] = 0
		}
	}
	used := make([]int, s.N())

	// Serve streams in ID order so the simulation is deterministic.
	ids := make([]int, 0, len(s.streams))
	for id := range s.streams {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var roundReqs map[int][]schedule.Request
	if s.seek != nil {
		roundReqs = make(map[int][]schedule.Request)
	}
	// Phase 1 — plan: every playing stream resolves its block, charges the
	// round budget, and either completes immediately (cache hit, failover,
	// hiccup, metadata-only serve) or queues a store-backed read on the
	// round plan. No segment-file I/O happens in this loop.
	s.roundPlan = s.roundPlan[:0]
	for _, id := range ids {
		st := s.streams[id]
		if st.State != StreamPlaying {
			continue
		}
		obj := s.objects[st.Object]
		bid := blockID(st.Object, uint64(st.Position))
		// A block-buffer hit serves the stream without touching a disk (the
		// buffer is RAM: it survives disk failures; its bytes come from the
		// oracle inside deliver).
		if s.blockCache.Get(bid) {
			s.metrics.CacheHits++
			s.deliver(st, bufpool.Payload{})
			if st.State == StreamPlaying {
				s.advanceStream(st, obj.Blocks, true)
			}
			s.notifyClosed(st)
			continue
		}
		ref := placement.BlockRef{Seed: obj.Seed, Index: uint64(st.Position)}
		outcome, err := s.serveRead(st, ref, bid, used, caps, roundReqs)
		if err != nil {
			return err
		}
		switch outcome {
		case readServed:
			s.deliver(st, bufpool.Payload{})
			if st.State == StreamPlaying {
				s.advanceStream(st, obj.Blocks, true)
			}
		case readHiccup:
			st.Hiccups++
			s.metrics.Hiccups++
		case readLost:
			// No copy survives: the viewer sees a glitch and playback
			// skips the block rather than stalling forever.
			s.metrics.UnrecoverableReads++
			s.advanceStream(st, obj.Blocks, false)
		case readPlanned:
			// Deferred to the batch below; notifyClosed fires after
			// delivery in phase 3.
		}
		s.notifyClosed(st)
	}

	// Phases 2+3 — execute the planned reads as per-disk parallel batches,
	// then deliver the results in stream-ID order (see batchread.go).
	if len(s.roundPlan) > 0 {
		if err := s.runBatchedReads(used, caps); err != nil {
			return err
		}
	}

	// Writes of in-progress recordings share the round's leftover budget.
	if err := s.stepIngests(used, caps); err != nil {
		return err
	}

	// Replay each disk's round through the calibrated SCAN schedule. The
	// measurement covers stream reads (the traffic the admission budget
	// models); migration I/O is bounded separately by the spare-capacity
	// accounting below.
	for id, reqs := range roundReqs {
		head := s.heads[id]
		ordered, err := schedule.Order(schedule.SCAN, reqs, head)
		if err != nil {
			return err
		}
		cost := schedule.ServiceTime(s.seek, s.cfg.Profile, s.cfg.BlockBytes, ordered, head, schedule.SCAN)
		if cost.Total > s.cfg.Round {
			s.metrics.RoundOverruns++
		}
		s.heads[id] = cost.Head
	}

	// Spend leftover bandwidth: rebuild first, then reorganization.
	needSpare := s.RebuildRemaining() > 0 || s.Reorganizing()
	if needSpare {
		spare := make([]int, s.N())
		for i := range spare {
			spare[i] = caps[i] - used[i]
			if spare[i] < 0 {
				spare[i] = 0
			}
		}
		if err := s.stepRebuild(spare); err != nil {
			return err
		}
		if s.Reorganizing() {
			moved, err := s.migration.Step(spare)
			if err != nil {
				return err
			}
			s.metrics.BlocksMigrated += moved
			if refs := s.migration.TakeMoved(); len(refs) > 0 {
				poss := make([]BlockPos, 0, len(refs))
				for _, b := range refs {
					object, ok := s.objectOfSeed(b.Seed)
					if !ok {
						continue // never journal a forged object ID
					}
					poss = append(poss, BlockPos{Object: object, Index: b.Index})
				}
				if len(poss) > 0 {
					s.emit(Event{Kind: EventBlocksMigrated, Moves: poss})
				}
			}
		}
	}
	if s.obsv != nil {
		s.obsv.observeRound(s, used,
			s.metrics.BlocksMigrated-prevMigrated, s.metrics.RebuildIOs-prevRebuildIOs)
	}
	return nil
}

// advanceStream moves a stream past its current block, counting it as
// served (delivered) or skipped (unrecoverable).
func (s *Server) advanceStream(st *Stream, blocks int, delivered bool) {
	if delivered {
		st.Served++
		s.metrics.BlocksServed++
	}
	st.Position++
	if st.Position >= blocks {
		st.State = StreamDone
		s.metrics.StreamsCompleted++
	}
}

// ScaleUp attaches count new disks and starts the minimal reorganization
// that rebalances onto them. The migration runs inside subsequent Tick
// calls using spare bandwidth; the new disks serve reads immediately for
// blocks already moved. The returned plan describes the migration.
func (s *Server) ScaleUp(count int) (*reorg.Plan, error) {
	if s.Ingesting() {
		return nil, fmt.Errorf("%w: cannot scale while a recording is in progress", ErrBusy)
	}
	if s.Reorganizing() {
		return nil, fmt.Errorf("%w: a reorganization is already in progress", ErrBusy)
	}
	if s.Degraded() {
		return nil, fmt.Errorf("%w: cannot scale while the array is degraded", ErrBusy)
	}
	if len(s.pendingRemoval) > 0 {
		return nil, fmt.Errorf("%w: a scale-down awaits completion", ErrBusy)
	}
	blocks := s.allBlocks()
	plan, err := reorg.PlanAdd(s.strat, blocks, count)
	if err != nil {
		return nil, err
	}
	if _, err := s.array.Add(count, s.cfg.Profile); err != nil {
		return nil, err
	}
	if err := s.attachAddedPayloads(s.N() - count); err != nil {
		return nil, err
	}
	exec, err := s.newExecutor(plan)
	if err != nil {
		return nil, err
	}
	s.migration = exec
	if s.budget != nil {
		if err := s.budget.Record(s.strat.N()); err != nil {
			return nil, err
		}
	}
	s.emit(Event{Kind: EventScaleUpStarted, Count: count})
	return plan, nil
}

// ScaleUpProfile attaches count new disks of a possibly different
// generation (profile) and starts the minimal rebalancing migration, the
// Section 1 scenario of "adding newer generation disks (higher bandwidth
// and more capacity)". Placement stays uniform across logical disks, so a
// faster disk in a mixed array is simply underutilized; carving it into
// multiple logical disks via the hetero mapping is how its full bandwidth
// is exploited (experiment E11 quantifies the difference).
func (s *Server) ScaleUpProfile(count int, profile disk.Profile) (*reorg.Plan, error) {
	if s.Ingesting() {
		return nil, fmt.Errorf("%w: cannot scale while a recording is in progress", ErrBusy)
	}
	if s.Reorganizing() {
		return nil, fmt.Errorf("%w: a reorganization is already in progress", ErrBusy)
	}
	if s.Degraded() {
		return nil, fmt.Errorf("%w: cannot scale while the array is degraded", ErrBusy)
	}
	if len(s.pendingRemoval) > 0 {
		return nil, fmt.Errorf("%w: a scale-down awaits completion", ErrBusy)
	}
	if profile.BlocksPerRound(s.cfg.Round, s.cfg.BlockBytes) < 1 {
		return nil, fmt.Errorf("cm: disk %s cannot serve a single %d-byte block per %v round",
			profile.Name, s.cfg.BlockBytes, s.cfg.Round)
	}
	blocks := s.allBlocks()
	plan, err := reorg.PlanAdd(s.strat, blocks, count)
	if err != nil {
		return nil, err
	}
	if _, err := s.array.Add(count, profile); err != nil {
		return nil, err
	}
	if err := s.attachAddedPayloads(s.N() - count); err != nil {
		return nil, err
	}
	exec, err := s.newExecutor(plan)
	if err != nil {
		return nil, err
	}
	s.migration = exec
	if s.budget != nil {
		if err := s.budget.Record(s.strat.N()); err != nil {
			return nil, err
		}
	}
	s.emit(Event{Kind: EventScaleUpStarted, Count: count, Profile: &profile})
	return plan, nil
}

// ScaleDown starts draining the disks at the given logical indices. Blocks
// migrate off them inside subsequent Tick calls; once the migration is done,
// CompleteScaleDown detaches the empty disks. Streams keep reading from the
// doomed disks until their blocks have moved.
func (s *Server) ScaleDown(indices ...int) (*reorg.Plan, error) {
	if s.Ingesting() {
		return nil, fmt.Errorf("%w: cannot scale while a recording is in progress", ErrBusy)
	}
	if s.Reorganizing() {
		return nil, fmt.Errorf("%w: a reorganization is already in progress", ErrBusy)
	}
	if s.Degraded() {
		return nil, fmt.Errorf("%w: cannot scale while the array is degraded", ErrBusy)
	}
	if len(s.pendingRemoval) > 0 {
		return nil, fmt.Errorf("%w: a scale-down awaits completion", ErrBusy)
	}
	blocks := s.allBlocks()
	plan, err := reorg.PlanRemove(s.strat, blocks, indices...)
	if err != nil {
		return nil, err
	}
	exec, err := s.newExecutor(plan)
	if err != nil {
		return nil, err
	}
	s.migration = exec
	s.pendingRemoval = append([]int(nil), indices...)
	// Build the post-removal -> pre-removal logical translation used by
	// locate() while the drain is in flight.
	sorted := append([]int(nil), indices...)
	sort.Ints(sorted)
	surv := placement.SurvivorMap(plan.NBefore, sorted)
	s.removalPreOf = make([]int, plan.NAfter)
	for old, nw := range surv {
		if nw >= 0 {
			s.removalPreOf[nw] = old
		}
	}
	if s.budget != nil {
		if err := s.budget.Record(s.strat.N()); err != nil {
			return nil, err
		}
	}
	s.emit(Event{Kind: EventScaleDownStarted, Disks: append([]int(nil), indices...)})
	return plan, nil
}

// NeedsRedistribution reports whether the configured unfairness tolerance
// can no longer be guaranteed (the Lemma 4.3 precondition failed) and a
// FullRedistribute should be scheduled. Always false when budget tracking
// is disabled.
func (s *Server) NeedsRedistribution() bool {
	return s.budget != nil && !s.budget.WithinTolerance(s.cfg.Tolerance)
}

// Budget exposes the randomness budget, or nil when tracking is disabled.
func (s *Server) Budget() *scaddar.Budget { return s.budget }

// FullRedistribute performs the complete redistribution the paper
// recommends once the randomness budget is exhausted: every block re-places
// with fresh randomness (nearly all of them move), the operation log
// restarts from the current disk count, and the budget resets. The
// migration runs inside subsequent Tick calls like any scaling operation.
// The placement strategy must support rebaselining (SCADDAR does).
func (s *Server) FullRedistribute() (*reorg.Plan, error) {
	if s.Ingesting() {
		return nil, fmt.Errorf("%w: cannot scale while a recording is in progress", ErrBusy)
	}
	if s.Reorganizing() {
		return nil, fmt.Errorf("%w: a reorganization is already in progress", ErrBusy)
	}
	if s.Degraded() {
		return nil, fmt.Errorf("%w: cannot scale while the array is degraded", ErrBusy)
	}
	if len(s.pendingRemoval) > 0 {
		return nil, fmt.Errorf("%w: a scale-down awaits completion", ErrBusy)
	}
	rb, ok := s.strat.(reorg.Rebaseliner)
	if !ok {
		return nil, fmt.Errorf("cm: strategy %q does not support full redistribution", s.strat.Name())
	}
	plan, err := reorg.PlanRebaseline(rb, s.allBlocks())
	if err != nil {
		return nil, err
	}
	exec, err := s.newExecutor(plan)
	if err != nil {
		return nil, err
	}
	s.migration = exec
	if s.budget != nil {
		if err := s.budget.Reset(s.strat.N()); err != nil {
			return nil, err
		}
	}
	s.emit(Event{Kind: EventRedistributeStarted})
	return plan, nil
}

// CompleteScaleDown detaches the drained disks of a ScaleDown. It fails if
// the migration has not finished or any doomed disk still holds blocks.
func (s *Server) CompleteScaleDown() error {
	if len(s.pendingRemoval) == 0 {
		return fmt.Errorf("cm: no scale-down in progress")
	}
	if s.Reorganizing() {
		return fmt.Errorf("cm: scale-down migration still has %d moves pending", s.migration.Remaining())
	}
	if s.RebuildRemaining() > 0 {
		// Detaching disks renumbers logical indices the rebuild items hold.
		return fmt.Errorf("cm: %d rebuild items still pending", s.RebuildRemaining())
	}
	for _, logical := range s.pendingRemoval {
		d, err := s.array.Disk(logical)
		if err != nil {
			return err
		}
		if d.Len() != 0 {
			return fmt.Errorf("cm: disk %d still holds %d blocks", d.ID(), d.Len())
		}
	}
	// The drained disks leave the array for good: their payload footprint
	// goes with them.
	for _, logical := range s.pendingRemoval {
		d, err := s.array.Disk(logical)
		if err != nil {
			return err
		}
		if ps := d.Payload(); ps != nil {
			if err := ps.Destroy(); err != nil {
				return fmt.Errorf("cm: destroy payload store of disk %d: %w", d.ID(), err)
			}
			d.AttachPayload(nil)
		}
	}
	if _, err := s.array.Remove(s.pendingRemoval...); err != nil {
		return err
	}
	s.pendingRemoval = nil
	s.removalPreOf = nil
	s.migration = nil
	s.emit(Event{Kind: EventReorgCompleted})
	return nil
}

// FinishReorganization clears a completed scale-up migration. It is called
// automatically by the next scaling operation; exposing it lets callers
// assert quiescence.
func (s *Server) FinishReorganization() error {
	if s.migration == nil {
		return nil
	}
	if !s.migration.Done() {
		return fmt.Errorf("cm: reorganization still has %d moves pending", s.migration.Remaining())
	}
	if len(s.pendingRemoval) > 0 {
		return s.CompleteScaleDown()
	}
	s.migration = nil
	s.emit(Event{Kind: EventReorgCompleted})
	return nil
}

// MigrationRemaining reports pending reorganization moves.
func (s *Server) MigrationRemaining() int {
	if s.migration == nil {
		return 0
	}
	return s.migration.Remaining()
}

// ProblemStreams — streams currently mid-hiccup — is not tracked separately;
// use Stream.Hiccups. VerifyIntegrity checks the global invariant instead:
// every loaded block is on exactly the disk the strategy names, except for
// blocks whose absence is an accounted degraded-mode condition (home disk
// failed, rebuild pending, or recorded permanently lost).
func (s *Server) VerifyIntegrity() error {
	total, missing := 0, 0
	var verr error
	s.forEachBlock(func(object int, ref placement.BlockRef) {
		if verr != nil {
			return
		}
		total++
		bid := blockID(object, ref.Index)
		logical := s.locate(ref)
		d, err := s.array.Disk(logical)
		if err != nil {
			verr = err
			return
		}
		if d.Has(bid) {
			return
		}
		if s.blockDegraded(ref, bid, d) {
			missing++
			return
		}
		verr = fmt.Errorf("cm: block %d/%d not on disk %d where placement expects it",
			object, ref.Index, d.ID())
	})
	if verr != nil {
		return verr
	}
	if got, want := s.array.TotalBlocks(), total-missing; got != want {
		return fmt.Errorf("cm: array holds %d blocks, catalog expects %d (%d degraded-missing)",
			got, want, missing)
	}
	return nil
}
