package cm

import (
	"testing"

	"scaddar/internal/workload"
)

func ingestObject(id, blocks int) workload.Object {
	return workload.Object{
		ID:                id,
		Seed:              uint64(id)*7777 + 3,
		Blocks:            blocks,
		BlockBytes:        256 << 10,
		BitrateBitsPerSec: 4 << 20,
	}
}

func TestStartIngestValidation(t *testing.T) {
	srv := newServer(t, 4)
	loadObjects(t, srv, 1, 50)
	if _, err := srv.StartIngest(ingestObject(5, 100), 0); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := srv.StartIngest(ingestObject(0, 100), 4); err == nil {
		t.Error("duplicate ID accepted")
	}
	dupSeed := ingestObject(9, 100)
	obj, _ := srv.Object(0)
	dupSeed.Seed = obj.Seed
	if _, err := srv.StartIngest(dupSeed, 4); err == nil {
		t.Error("duplicate seed accepted")
	}
	if _, err := srv.StartIngest(ingestObject(6, 0), 4); err == nil {
		t.Error("empty object accepted")
	}
	wrong := ingestObject(7, 10)
	wrong.BlockBytes = 512
	if _, err := srv.StartIngest(wrong, 4); err == nil {
		t.Error("wrong block size accepted")
	}
	if _, err := srv.StartIngest(ingestObject(8, 100), 4); err != nil {
		t.Error(err)
	}
	// Same object cannot be ingested twice concurrently.
	if _, err := srv.StartIngest(ingestObject(8, 100), 4); err == nil {
		t.Error("double ingest of one object accepted")
	}
	// Nor added while ingesting.
	if err := srv.AddObject(ingestObject(8, 100)); err == nil {
		t.Error("AddObject of ingesting object accepted")
	}
}

func TestIngestCompletes(t *testing.T) {
	srv := newServer(t, 4)
	loadObjects(t, srv, 2, 200)
	in, err := srv.StartIngest(ingestObject(10, 120), 8)
	if err != nil {
		t.Fatal(err)
	}
	if !srv.Ingesting() {
		t.Fatal("server not ingesting")
	}
	rounds := 0
	for !in.Done {
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
		rounds++
		if rounds > 1000 {
			t.Fatal("ingest did not complete")
		}
	}
	// 120 blocks at 8/round: 15 rounds.
	if rounds != 15 {
		t.Fatalf("ingest took %d rounds, want 15", rounds)
	}
	if srv.Ingesting() {
		t.Fatal("server still ingesting after completion")
	}
	if srv.Metrics().BlocksIngested != 120 {
		t.Fatalf("ingested %d blocks, want 120", srv.Metrics().BlocksIngested)
	}
	if err := srv.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
	// The recorded object is fully playable.
	st, err := srv.StartStream(10)
	if err != nil {
		t.Fatal(err)
	}
	for st.State == StreamPlaying {
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if st.Served != 120 {
		t.Fatalf("played %d blocks, want 120", st.Served)
	}
}

func TestIngestIntegrityMidway(t *testing.T) {
	srv := newServer(t, 4)
	loadObjects(t, srv, 1, 100)
	in, err := srv.StartIngest(ingestObject(20, 200), 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if in.Written != 50 {
		t.Fatalf("written %d, want 50", in.Written)
	}
	if in.Done {
		t.Fatal("ingest done early")
	}
	// Integrity holds with a partial object on the disks.
	if err := srv.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
	// Scaling is rejected mid-ingest.
	if _, err := srv.ScaleUp(1); err == nil {
		t.Fatal("scale-up during ingest accepted")
	}
	if _, err := srv.ScaleDown(0); err == nil {
		t.Fatal("scale-down during ingest accepted")
	}
}

func TestIngestDuringReorgRejected(t *testing.T) {
	srv := newServer(t, 4)
	loadObjects(t, srv, 2, 200)
	if _, err := srv.ScaleUp(1); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.StartIngest(ingestObject(30, 50), 4); err == nil {
		t.Fatal("ingest during reorganization accepted")
	}
}

// TestIngestBackPressure drives the server at full stream load so writes
// must stall and complete later than the unloaded schedule.
func TestIngestBackPressure(t *testing.T) {
	srv := newServer(t, 2)
	loadObjects(t, srv, 2, 5000)
	// Saturate admission.
	for {
		if _, err := srv.StartStream(0); err != nil {
			break
		}
	}
	in, err := srv.StartIngest(ingestObject(40, 100), 50)
	if err != nil {
		t.Fatal(err)
	}
	rounds := 0
	for !in.Done {
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
		rounds++
		if rounds > 10000 {
			t.Fatal("ingest never completed under load")
		}
	}
	// Unloaded, 100 blocks at 50/round over 2 disks would need at least 2
	// rounds but disk capacity (~79/disk, ~126 spare after streams at 80%)
	// also binds; under load it must take strictly longer than the
	// unloaded 2 rounds or record stalls.
	if rounds <= 2 && in.Stalls == 0 {
		t.Fatalf("ingest under saturation finished in %d rounds with no stalls", rounds)
	}
	if err := srv.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}
