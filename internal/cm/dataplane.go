package cm

// This file wires a real data plane under the simulator: per-disk payload
// stores (internal/dataplane implements disk.PayloadStore) carry actual block
// bytes alongside the metadata inventories, and a DeliverySink receives each
// served block's bytes so a gateway can pace them to streaming clients.
//
// The layering is deliberate: cm knows only the disk.PayloadStore interface
// and a ContentFunc oracle, never the dataplane package itself. Payload bytes
// are deterministic functions of (seed, index) — what ingest writes is what
// the oracle computes — so redundant copies stay virtual (mirror/parity
// failover and rebuild re-materialize bytes from the oracle, modeling
// reconstruction) while direct reads, migrations, and recovery move the real
// stored bytes and surface real integrity failures.

import (
	"fmt"

	"scaddar/internal/bufpool"
	"scaddar/internal/disk"
	"scaddar/internal/placement"
	"scaddar/internal/reorg"
	"scaddar/internal/workload"
)

// ContentFunc is the deterministic payload oracle: the bytes of block index
// of the object seeded seed. Ingest writes exactly these bytes, so any layer
// can re-materialize or verify a block without reading another disk.
type ContentFunc func(seed, index uint64, blockBytes int64) []byte

// DeliverySink receives served block bytes, synchronously from Tick on the
// server's goroutine. It must not call back into the server.
type DeliverySink interface {
	// WantsPayload reports whether the sink needs bytes for a stream this
	// round; the server skips payload materialization for streams nobody is
	// listening to.
	WantsPayload(stream int) bool
	// Deliver hands over one served block's bytes, transferring ownership
	// of the payload's buffer reference: the sink must Release it exactly
	// once (directly, or by handing it down a pipeline that does) — pooled
	// reads land in shared refcounted buffers, and a leaked reference keeps
	// a whole coalesced span out of the pool. Returning evict=true tells
	// the server the client has fallen hopelessly behind: the stream is
	// stopped (backpressure protects the round, not the laggard).
	Deliver(stream, object int, index int, p bufpool.Payload) (evict bool)
	// StreamClosed reports a stream leaving StreamPlaying during Tick, with
	// its final state.
	StreamClosed(stream int, state StreamState)
}

// SetDeliverySink installs (or, with nil, removes) the delivery sink.
func (s *Server) SetDeliverySink(sink DeliverySink) { s.delivery = sink }

// AttachPayloads puts a real byte-bearing store under every disk and recon-
// ciles each store against the metadata inventory, which is the system of
// record:
//
//   - orphan payloads (bytes present, metadata absent) are deleted — the
//     signature of an ingest killed between its data append and its metadata
//     journal write; recovery garbage-collects the half-written block.
//   - missing payloads (metadata present, bytes absent) are re-materialized
//     from the content oracle — the store was lost or truncated behind the
//     journal's back.
//
// Subsequent ingests, migrations, and rebuilds keep data and metadata moving
// together. Call it after the catalog is populated (post-restore) and before
// the first Tick that should serve real bytes.
func (s *Server) AttachPayloads(factory disk.PayloadFactory, content ContentFunc) error {
	if factory == nil || content == nil {
		return fmt.Errorf("cm: AttachPayloads needs a store factory and a content oracle")
	}
	if s.payloads != nil {
		return fmt.Errorf("cm: payload stores are already attached")
	}
	s.payloads = factory
	s.content = content
	for i := 0; i < s.N(); i++ {
		d, err := s.array.Disk(i)
		if err != nil {
			return err
		}
		if err := s.attachPayload(d); err != nil {
			return err
		}
	}
	return nil
}

// attachPayload opens one disk's store, wires the fault injector into its
// real read path, and reconciles it against the disk's metadata inventory.
func (s *Server) attachPayload(d *disk.Disk) error {
	ps, err := s.payloads(d.ID())
	if err != nil {
		return fmt.Errorf("cm: payload store for disk %d: %w", d.ID(), err)
	}
	d.AttachPayload(ps)
	// Transient-error injection fires on the store's real read path so a
	// faulted Get is indistinguishable from a media error. During the round
	// scheduler's parallel batch the hook is suppressed: those reads
	// pre-rolled their fault at plan time on the owner goroutine (serveRead),
	// which keeps the injector's draw sequence deterministic — a concurrent
	// roll per disk would make which stream faults depend on goroutine
	// scheduling.
	if fi, ok := ps.(interface {
		SetReadFault(func(disk.BlockID) error)
	}); ok {
		fi.SetReadFault(func(disk.BlockID) error {
			if s.inBatchRead.Load() {
				return nil
			}
			if s.faults != nil && s.faults.transientError() {
				return fmt.Errorf("cm: injected transient read fault")
			}
			return nil
		})
	}
	return s.reconcilePayloads(d, ps)
}

// reconcilePayloads makes a store agree with its disk's metadata inventory
// (see AttachPayloads for the two repair directions).
func (s *Server) reconcilePayloads(d *disk.Disk, ps disk.PayloadStore) error {
	have := make(map[disk.BlockID]bool)
	for _, bid := range ps.Blocks() {
		have[bid] = true
		if !d.Has(bid) {
			if err := ps.Delete(bid); err != nil {
				return fmt.Errorf("cm: disk %d: GC orphan payload %d: %w", d.ID(), bid, err)
			}
		}
	}
	for _, bid := range d.Blocks() {
		if have[bid] {
			continue
		}
		data := s.contentFor(bid)
		if data == nil {
			return fmt.Errorf("cm: disk %d: block %d has no payload and no oracle seed", d.ID(), bid)
		}
		if err := ps.Put(bid, data); err != nil {
			return fmt.Errorf("cm: disk %d: re-materialize payload %d: %w", d.ID(), bid, err)
		}
	}
	return nil
}

// PayloadsAttached reports whether a real data plane is wired under the
// disks.
func (s *Server) PayloadsAttached() bool { return s.payloads != nil }

// contentFor computes a block's oracle bytes from its packed ID, or nil when
// no oracle is attached or the owning object is unknown.
func (s *Server) contentFor(bid disk.BlockID) []byte {
	if s.content == nil {
		return nil
	}
	object := int(uint64(bid) >> 40)
	index := uint64(bid) & (1<<40 - 1)
	seed, ok := s.seedOfObject(object)
	if !ok {
		return nil
	}
	return s.content(seed, index, s.cfg.BlockBytes)
}

// putPayload writes a block's oracle bytes to a disk's store, if one is
// attached — the data half of every metadata Store call on the write path.
func (s *Server) putPayload(d *disk.Disk, bid disk.BlockID) error {
	ps := d.Payload()
	if ps == nil {
		return nil
	}
	data := s.contentFor(bid)
	if data == nil {
		return fmt.Errorf("cm: disk %d: no oracle bytes for block %d", d.ID(), bid)
	}
	return ps.Put(bid, data)
}

// deletePayload removes a block's bytes from a disk's store, if one is
// attached.
func (s *Server) deletePayload(d *disk.Disk, bid disk.BlockID) error {
	if ps := d.Payload(); ps != nil {
		return ps.Delete(bid)
	}
	return nil
}

// movePayload relocates one block's bytes for the reorganization executor:
// read the real bytes from the source store (falling back to the oracle when
// the read faults — a migration does not abort on a transient error), write
// them to the destination, then drop the source copy. Metadata has already
// moved when this runs, so a crash between the two stores leaves at worst a
// duplicate or missing payload that AttachPayloads reconciles on reopen.
func (s *Server) movePayload(b placement.BlockRef, bid disk.BlockID, src, dst *disk.Disk) error {
	sps, dps := src.Payload(), dst.Payload()
	if sps == nil && dps == nil {
		return nil
	}
	var data []byte
	if sps != nil {
		if got, err := sps.Get(bid); err == nil {
			data = got
		}
	}
	if data == nil {
		if data = s.contentFor(bid); data == nil {
			return fmt.Errorf("cm: migrate block %d: no source payload and no oracle", bid)
		}
	}
	if dps != nil {
		if err := dps.Put(bid, data); err != nil {
			return fmt.Errorf("cm: migrate block %d: %w", bid, err)
		}
	}
	if sps != nil {
		if err := sps.Delete(bid); err != nil {
			return fmt.Errorf("cm: migrate block %d: %w", bid, err)
		}
	}
	return nil
}

// newExecutor prepares a reorganization plan for execution, wiring the
// payload mover when a data plane is attached so every metadata move carries
// its real bytes.
func (s *Server) newExecutor(plan *reorg.Plan) (*reorg.Executor, error) {
	exec, err := reorg.NewExecutor(plan, s.blockIDOf, s.array.Disk)
	if err != nil {
		return nil, err
	}
	if s.payloads != nil {
		exec.SetPayloadMover(s.movePayload)
	}
	return exec, nil
}

// attachAddedPayloads opens stores for the disks a scale-up just attached
// (logical indices [from, N)). New disks start empty; a leftover store dir
// under a recycled ID would have been destroyed by the store manager's
// startup GC, and disk IDs are never reused anyway.
func (s *Server) attachAddedPayloads(from int) error {
	if s.payloads == nil {
		return nil
	}
	for i := from; i < s.N(); i++ {
		d, err := s.array.Disk(i)
		if err != nil {
			return err
		}
		if err := s.attachPayload(d); err != nil {
			return err
		}
	}
	return nil
}

// deliver hands one served block's payload to the delivery sink and
// applies its eviction verdict. The caller transfers its buffer reference:
// when no sink wants the stream the reference is released here, and an
// empty payload (no store on the serving path — failover, cache hit,
// metadata-only serve) is materialized from the oracle only when a sink is
// actually listening.
func (s *Server) deliver(st *Stream, p bufpool.Payload) {
	if s.delivery == nil || !s.delivery.WantsPayload(st.ID) {
		p.Release()
		return
	}
	if p.Data == nil {
		p = bufpool.Unpooled(s.contentFor(blockID(st.Object, uint64(st.Position))))
	}
	s.metrics.PayloadBytesServed += int64(len(p.Data))
	if s.delivery.Deliver(st.ID, st.Object, st.Position, p) {
		st.State = StreamStopped
		s.metrics.SessionsEvicted++
	}
}

// notifyClosed reports a stream's exit from StreamPlaying to the delivery
// sink. Tick calls it only for streams that entered the round playing, so it
// fires exactly once per transition.
func (s *Server) notifyClosed(st *Stream) {
	if s.delivery != nil && st.State != StreamPlaying {
		s.delivery.StreamClosed(st.ID, st.State)
	}
}

// PendingMove is one not-yet-executed migration move in catalog coordinates,
// as exported to locator clients.
type PendingMove struct {
	// Object names the block's owning object.
	Object int `json:"object"`
	// Index is the block's index within the object.
	Index uint64 `json:"index"`
	// From is the pre-operation logical disk the block is still served from.
	From int `json:"from"`
}

// LocatorState is everything a remote client needs to reconstruct the block
// location function and keep it current: the operation log (History binary
// codec), the strategy shape, the catalog, and the in-flight migration's
// pending set. Unlike ExportMetadata it is available mid-reorganization and
// mid-rebuild — that is its entire point: clients track a live reorg through
// deltas against this baseline instead of re-asking the server per block.
type LocatorState struct {
	// History is the scaling-operation log in its binary codec.
	History []byte
	// Bits is the generator width.
	Bits uint
	// Epoch counts complete redistributions.
	Epoch uint64
	// N is the current logical disk count.
	N int
	// Reorganizing reports an in-flight migration.
	Reorganizing bool
	// Objects is the catalog.
	Objects []workload.Object
	// Pending lists the blocks whose moves have not executed yet.
	Pending []PendingMove
	// PreOf translates post-removal logical indices to pre-removal ones
	// while a scale-down drain is in flight; nil otherwise.
	PreOf []int
}

// LocatorStateExport captures the current locator state. It requires a
// SCADDAR strategy (the operation log is what makes the state compact) and
// must be called from the server's owning goroutine.
func (s *Server) LocatorStateExport() (*LocatorState, error) {
	sc, ok := s.strat.(*placement.Scaddar)
	if !ok {
		return nil, fmt.Errorf("cm: strategy %q has no exportable operation log", s.strat.Name())
	}
	hist, err := sc.History().MarshalBinary()
	if err != nil {
		return nil, err
	}
	ls := &LocatorState{
		History:      hist,
		Bits:         sc.Bits(),
		Epoch:        sc.Epoch(),
		N:            s.N(),
		Reorganizing: s.Reorganizing(),
		Objects:      s.Catalog(),
	}
	if s.migration != nil {
		for _, m := range s.migration.PendingList() {
			object, ok := s.objectOfSeed(m.Block.Seed)
			if !ok {
				continue
			}
			ls.Pending = append(ls.Pending, PendingMove{Object: object, Index: m.Block.Index, From: m.From})
		}
		if s.removalPreOf != nil {
			ls.PreOf = append([]int(nil), s.removalPreOf...)
		}
	}
	return ls, nil
}
