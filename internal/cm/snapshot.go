package cm

import (
	"fmt"
	"sort"

	"scaddar/internal/disk"
	"scaddar/internal/par"
	"scaddar/internal/placement"
	"scaddar/internal/prng"
	"scaddar/internal/reorg"
	"scaddar/internal/scaddar"
)

// This file gives the server a concurrency-safe read path. The simulator
// itself is single-owner: one goroutine calls Tick and the control surface.
// A network gateway, however, must answer "which disk holds block i of
// object m" from many request handlers at once — exactly the workload the
// paper's AO1 property (directory-free O(j) lookup) makes viable. The
// bridge is a LocatorSnapshot: an immutable point-in-time view built by the
// owner after every placement-changing event and published to readers
// behind an atomic pointer. Lookups inside the snapshot go through
// scaddar.SafeLocator, whose concurrent access is lock-free for
// counter-based generators.

// SnapshotObject describes one loaded object in a snapshot's catalog.
type SnapshotObject struct {
	// ID is the object's identity.
	ID int `json:"id"`
	// Blocks is the object's extent in blocks.
	Blocks int `json:"blocks"`
	// BlockBytes is the block size.
	BlockBytes int64 `json:"blockBytes"`
}

// snapObject is the internal per-object record.
type snapObject struct {
	seed       uint64
	blocks     int
	blockBytes int64
}

// LocatorSnapshot is an immutable, concurrency-safe view of the block
// location function at one instant: the object catalog, a SafeLocator over
// a cloned operation log, the in-flight migration's pending-source index,
// and the scale-down index translation. All fields are written once at
// build time; any number of goroutines may call Locate concurrently
// afterwards.
//
// The snapshot holds the SafeLocator's compiled REMAP chain directly, so
// the steady-state Locate path — pending-index probe, X0 regeneration,
// multiply-shift remap — interprets no operation log and allocates nothing.
type LocatorSnapshot struct {
	n            int
	epoch        uint64
	reorganizing bool
	degraded     bool
	objects      map[int]snapObject
	loc          *scaddar.SafeLocator
	// chain is loc's compiled chain, resolved once at build time so Locate
	// skips even the cached-compile version check.
	chain *scaddar.CompiledChain
	// pending indexes blocks whose migration move has not executed yet by
	// their pre-operation source disk (mirrors Executor.PendingSource).
	pending *pendingIndex
	// preOf translates post-removal logical indices back to the
	// pre-removal numbering while a scale-down drain is in flight
	// (mirrors Server.removalPreOf).
	preOf []int
	// health is the per-logical-disk health at build time.
	health []disk.Health
}

// pendingIndex is an immutable sharded view of an in-flight migration's
// pending moves. It is built once by BuildSnapshot — in parallel for large
// move sets — and read lock-free afterwards: shard choice is a pure hash of
// the block reference, so concurrent readers never contend on a lock or
// allocate.
type pendingIndex struct {
	mask   uint64
	shards []map[placement.BlockRef]int
}

// pendingShard hashes a block reference to its shard.
func pendingShard(b placement.BlockRef, mask uint64) uint64 {
	return prng.Combine(b.Seed, b.Index) & mask
}

// buildPendingIndex builds the sharded pending index from the executor's
// pending-move list. Small lists index serially into a single shard. Large
// lists fan disjoint ranges of the move list across GOMAXPROCS workers,
// each accumulating per-shard slices; the per-shard accumulators are then
// merged in worker order, so the resulting index content is identical to a
// serial build regardless of core count.
func buildPendingIndex(moves []reorg.Move) *pendingIndex {
	return buildPendingIndexN(moves, par.Workers())
}

// buildPendingIndexN is buildPendingIndex with an explicit worker count, so
// determinism tests can exercise the fan-out/merge path on any machine.
func buildPendingIndexN(moves []reorg.Move, workers int) *pendingIndex {
	if len(moves) == 0 {
		return nil
	}
	if len(moves) < par.MinParallel || workers < 2 {
		m := make(map[placement.BlockRef]int, len(moves))
		for _, mv := range moves {
			m[mv.Block] = mv.From
		}
		return &pendingIndex{mask: 0, shards: []map[placement.BlockRef]int{m}}
	}
	nshards := 1
	for nshards < workers {
		nshards <<= 1
	}
	mask := uint64(nshards - 1)
	// Phase 1: workers partition the move list into contiguous ranges and
	// bucket their range by shard.
	locals := make([][][]reorg.Move, workers)
	par.RangesN(workers, workers, func(wlo, whi int) {
		for w := wlo; w < whi; w++ {
			buckets := make([][]reorg.Move, nshards)
			lo, hi := w*len(moves)/workers, (w+1)*len(moves)/workers
			for _, mv := range moves[lo:hi] {
				s := pendingShard(mv.Block, mask)
				buckets[s] = append(buckets[s], mv)
			}
			locals[w] = buckets
		}
	})
	// Phase 2: each shard map is filled from the per-worker accumulators in
	// worker order (blocks are distinct across moves, so the content is
	// order-independent anyway; worker order keeps the merge deterministic
	// by construction).
	idx := &pendingIndex{mask: mask, shards: make([]map[placement.BlockRef]int, nshards)}
	par.RangesN(nshards, workers, func(slo, shi int) {
		for s := slo; s < shi; s++ {
			total := 0
			for w := 0; w < workers; w++ {
				total += len(locals[w][s])
			}
			m := make(map[placement.BlockRef]int, total)
			for w := 0; w < workers; w++ {
				for _, mv := range locals[w][s] {
					m[mv.Block] = mv.From
				}
			}
			idx.shards[s] = m
		}
	})
	return idx
}

// lookup reports the pending-move source disk for a block, if its move has
// not executed yet. Safe for concurrent callers; never allocates.
func (p *pendingIndex) lookup(b placement.BlockRef) (from int, pending bool) {
	if p == nil {
		return 0, false
	}
	from, pending = p.shards[pendingShard(b, p.mask)][b]
	return from, pending
}

// size returns the total number of indexed pending moves.
func (p *pendingIndex) size() int {
	if p == nil {
		return 0
	}
	n := 0
	for _, m := range p.shards {
		n += len(m)
	}
	return n
}

// BuildSnapshot constructs a LocatorSnapshot of the server's current state.
// The placement strategy must provide a concurrent locator
// (placement.ConcurrentLocatorProvider; SCADDAR does), built from the same
// generator factory the strategy's X0Func uses. It must be called from the
// goroutine that owns the server — typically after every scaling operation
// and after each Tick while a migration is draining, so the pending set
// stays fresh.
func (s *Server) BuildSnapshot(factory scaddar.SourceFactory) (*LocatorSnapshot, error) {
	provider, ok := s.strat.(placement.ConcurrentLocatorProvider)
	if !ok {
		return nil, fmt.Errorf("cm: strategy %q does not provide a concurrent locator", s.strat.Name())
	}
	loc, err := provider.ConcurrentLocator(factory)
	if err != nil {
		return nil, err
	}
	objs := make(map[int]snapObject, len(s.objects))
	for id, o := range s.objects {
		objs[id] = snapObject{seed: o.Seed, blocks: o.Blocks, blockBytes: o.BlockBytes}
	}
	sn := &LocatorSnapshot{
		n:            s.N(),
		epoch:        s.placementEpoch,
		reorganizing: s.Reorganizing(),
		degraded:     s.Degraded(),
		objects:      objs,
		loc:          loc,
		chain:        loc.Chain(),
	}
	if s.migration != nil {
		sn.pending = buildPendingIndex(s.migration.PendingList())
		if s.removalPreOf != nil {
			sn.preOf = append([]int(nil), s.removalPreOf...)
		}
	}
	sn.health = make([]disk.Health, s.N())
	for i := range sn.health {
		d, err := s.array.Disk(i)
		if err != nil {
			return nil, err
		}
		sn.health[i] = d.Health()
	}
	return sn, nil
}

// N returns the logical disk count at snapshot time.
func (sn *LocatorSnapshot) N() int { return sn.n }

// Epoch returns the server's placement epoch at snapshot time (see
// Server.PlacementEpoch). Two snapshots with equal epochs were built under
// the same scaling-operation generation; a change tells a remote reader that
// a reorganization started or finished between its lookups.
func (sn *LocatorSnapshot) Epoch() uint64 { return sn.epoch }

// Reorganizing reports whether a migration was draining at snapshot time.
func (sn *LocatorSnapshot) Reorganizing() bool { return sn.reorganizing }

// Degraded reports whether any disk was failed or rebuilding at snapshot
// time.
func (sn *LocatorSnapshot) Degraded() bool { return sn.degraded }

// Objects returns the snapshot's object catalog sorted by ID.
func (sn *LocatorSnapshot) Objects() []SnapshotObject {
	out := make([]SnapshotObject, 0, len(sn.objects))
	for id, o := range sn.objects {
		out = append(out, SnapshotObject{ID: id, Blocks: o.blocks, BlockBytes: o.blockBytes})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Locate returns the logical disk currently holding a block, applying the
// same mid-migration rules as Server.locate: a block whose move is still
// pending is served from its pre-operation home, and during a scale-down
// drain the post-removal numbering is translated back to the pre-removal
// numbering the physical array still uses. Safe for concurrent callers.
func (sn *LocatorSnapshot) Locate(object, index int) (int, error) {
	obj, ok := sn.objects[object]
	if !ok {
		return 0, fmt.Errorf("%w: object %d", ErrUnknownObject, object)
	}
	if index < 0 || index >= obj.blocks {
		return 0, fmt.Errorf("%w: object %d has no block %d", ErrBlockOutOfRange, object, index)
	}
	ref := placement.BlockRef{Seed: obj.seed, Index: uint64(index)}
	if from, pending := sn.pending.lookup(ref); pending {
		return from, nil
	}
	x0, err := sn.loc.X0(obj.seed, uint64(index))
	if err != nil {
		return 0, err
	}
	d := sn.chain.Locate(x0)
	if sn.preOf != nil {
		return sn.preOf[d], nil
	}
	return d, nil
}

// Healthy reports whether the disk at the given logical index was healthy
// at snapshot time. Out-of-range indices report false.
func (sn *LocatorSnapshot) Healthy(logical int) bool {
	if logical < 0 || logical >= len(sn.health) {
		return false
	}
	return sn.health[logical] == disk.Healthy
}
