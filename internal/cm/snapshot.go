package cm

import (
	"fmt"
	"sort"

	"scaddar/internal/disk"
	"scaddar/internal/placement"
	"scaddar/internal/scaddar"
)

// This file gives the server a concurrency-safe read path. The simulator
// itself is single-owner: one goroutine calls Tick and the control surface.
// A network gateway, however, must answer "which disk holds block i of
// object m" from many request handlers at once — exactly the workload the
// paper's AO1 property (directory-free O(j) lookup) makes viable. The
// bridge is a LocatorSnapshot: an immutable point-in-time view built by the
// owner after every placement-changing event and published to readers
// behind an atomic pointer. Lookups inside the snapshot go through
// scaddar.SafeLocator, whose concurrent access is lock-free for
// counter-based generators.

// SnapshotObject describes one loaded object in a snapshot's catalog.
type SnapshotObject struct {
	// ID is the object's identity.
	ID int `json:"id"`
	// Blocks is the object's extent in blocks.
	Blocks int `json:"blocks"`
	// BlockBytes is the block size.
	BlockBytes int64 `json:"blockBytes"`
}

// snapObject is the internal per-object record.
type snapObject struct {
	seed       uint64
	blocks     int
	blockBytes int64
}

// LocatorSnapshot is an immutable, concurrency-safe view of the block
// location function at one instant: the object catalog, a SafeLocator over
// a cloned operation log, the in-flight migration's pending-source map, and
// the scale-down index translation. All fields are written once at build
// time; any number of goroutines may call Locate concurrently afterwards.
type LocatorSnapshot struct {
	n            int
	reorganizing bool
	degraded     bool
	objects      map[int]snapObject
	loc          *scaddar.SafeLocator
	// pending maps blocks whose migration move has not executed yet to
	// their pre-operation source disk (mirrors Executor.PendingSource).
	pending map[placement.BlockRef]int
	// preOf translates post-removal logical indices back to the
	// pre-removal numbering while a scale-down drain is in flight
	// (mirrors Server.removalPreOf).
	preOf []int
	// health is the per-logical-disk health at build time.
	health []disk.Health
}

// BuildSnapshot constructs a LocatorSnapshot of the server's current state.
// The placement strategy must provide a concurrent locator
// (placement.ConcurrentLocatorProvider; SCADDAR does), built from the same
// generator factory the strategy's X0Func uses. It must be called from the
// goroutine that owns the server — typically after every scaling operation
// and after each Tick while a migration is draining, so the pending set
// stays fresh.
func (s *Server) BuildSnapshot(factory scaddar.SourceFactory) (*LocatorSnapshot, error) {
	provider, ok := s.strat.(placement.ConcurrentLocatorProvider)
	if !ok {
		return nil, fmt.Errorf("cm: strategy %q does not provide a concurrent locator", s.strat.Name())
	}
	loc, err := provider.ConcurrentLocator(factory)
	if err != nil {
		return nil, err
	}
	objs := make(map[int]snapObject, len(s.objects))
	for id, o := range s.objects {
		objs[id] = snapObject{seed: o.Seed, blocks: o.Blocks, blockBytes: o.BlockBytes}
	}
	sn := &LocatorSnapshot{
		n:            s.N(),
		reorganizing: s.Reorganizing(),
		degraded:     s.Degraded(),
		objects:      objs,
		loc:          loc,
	}
	if s.migration != nil {
		sn.pending = s.migration.PendingSources()
		if s.removalPreOf != nil {
			sn.preOf = append([]int(nil), s.removalPreOf...)
		}
	}
	sn.health = make([]disk.Health, s.N())
	for i := range sn.health {
		d, err := s.array.Disk(i)
		if err != nil {
			return nil, err
		}
		sn.health[i] = d.Health()
	}
	return sn, nil
}

// N returns the logical disk count at snapshot time.
func (sn *LocatorSnapshot) N() int { return sn.n }

// Reorganizing reports whether a migration was draining at snapshot time.
func (sn *LocatorSnapshot) Reorganizing() bool { return sn.reorganizing }

// Degraded reports whether any disk was failed or rebuilding at snapshot
// time.
func (sn *LocatorSnapshot) Degraded() bool { return sn.degraded }

// Objects returns the snapshot's object catalog sorted by ID.
func (sn *LocatorSnapshot) Objects() []SnapshotObject {
	out := make([]SnapshotObject, 0, len(sn.objects))
	for id, o := range sn.objects {
		out = append(out, SnapshotObject{ID: id, Blocks: o.blocks, BlockBytes: o.blockBytes})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Locate returns the logical disk currently holding a block, applying the
// same mid-migration rules as Server.locate: a block whose move is still
// pending is served from its pre-operation home, and during a scale-down
// drain the post-removal numbering is translated back to the pre-removal
// numbering the physical array still uses. Safe for concurrent callers.
func (sn *LocatorSnapshot) Locate(object, index int) (int, error) {
	obj, ok := sn.objects[object]
	if !ok {
		return 0, fmt.Errorf("%w: object %d", ErrUnknownObject, object)
	}
	if index < 0 || index >= obj.blocks {
		return 0, fmt.Errorf("%w: object %d has no block %d", ErrBlockOutOfRange, object, index)
	}
	ref := placement.BlockRef{Seed: obj.seed, Index: uint64(index)}
	if sn.pending != nil {
		if from, pending := sn.pending[ref]; pending {
			return from, nil
		}
	}
	d, err := sn.loc.Disk(obj.seed, uint64(index))
	if err != nil {
		return 0, err
	}
	if sn.preOf != nil {
		return sn.preOf[d], nil
	}
	return d, nil
}

// Healthy reports whether the disk at the given logical index was healthy
// at snapshot time. Out-of-range indices report false.
func (sn *LocatorSnapshot) Healthy(logical int) bool {
	if logical < 0 || logical >= len(sn.health) {
		return false
	}
	return sn.health[logical] == disk.Healthy
}
