package cm

import (
	"testing"

	"scaddar/internal/placement"
	"scaddar/internal/prng"
)

// TestMeasuredRoundsNoOverrunAtBudget runs a fully loaded server with SCAN
// round measurement enabled: because the fixed admission budget is derived
// from the average-seek model and SCAN amortizes seeks below it (E10), a
// server admitted to its fixed budget must not overrun rounds.
func TestMeasuredRoundsNoOverrunAtBudget(t *testing.T) {
	x0 := placement.NewX0Func(func(seed uint64) prng.Source { return prng.NewSplitMix64(seed) })
	strat, err := placement.NewScaddar(6, x0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MeasureRounds = true
	cfg.Utilization = 1.0 // fill the fixed budget completely
	srv, err := NewServer(cfg, strat)
	if err != nil {
		t.Fatal(err)
	}
	loadObjects(t, srv, 6, 3000)

	// Admit to capacity, staggered to steady-state positions.
	pos := prng.NewSplitMix64(5)
	for i := 0; srv.ActiveStreams() < srv.capacityStreams(); i++ {
		st, err := srv.StartStream(i % 6)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.SeekStream(st.ID, int(pos.Next()%3000)); err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < 50; r++ {
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	m := srv.Metrics()
	if m.BlocksServed == 0 {
		t.Fatal("no blocks served")
	}
	if m.RoundOverruns != 0 {
		t.Fatalf("%d disk-round overruns at the fixed budget; the budget is not conservative", m.RoundOverruns)
	}
}

// TestMeasuredRoundsDisabledByDefault checks the metric stays zero when
// measurement is off.
func TestMeasuredRoundsDisabledByDefault(t *testing.T) {
	srv := newServer(t, 4)
	loadObjects(t, srv, 2, 100)
	if _, err := srv.StartStream(0); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 10; r++ {
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if srv.Metrics().RoundOverruns != 0 {
		t.Fatal("overruns counted without measurement")
	}
}

// TestMeasuredRoundsRejectDegenerateProfile checks calibration failures
// surface at construction.
func TestMeasuredRoundsRejectDegenerateProfile(t *testing.T) {
	x0 := placement.NewX0Func(func(seed uint64) prng.Source { return prng.NewSplitMix64(seed) })
	strat, _ := placement.NewScaddar(4, x0)
	cfg := DefaultConfig()
	cfg.MeasureRounds = true
	cfg.Profile.AvgSeek = 0
	if _, err := NewServer(cfg, strat); err == nil {
		t.Fatal("degenerate profile accepted with measurement enabled")
	}
}
