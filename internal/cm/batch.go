package cm

// This file adds the bulk companion to LocatorSnapshot.Locate. A binary
// lookup frame carries many (object, block) pairs, and resolving them one
// Locate call at a time would re-pay the wrapped-error allocation and the
// op-by-op chain walk per block. LocateBatch instead resolves the catalog
// and pending-index phase per entry, then hands every still-unresolved X0 to
// the compiled chain's op-major LocateBatch sweep, and reports per-entry
// failures as status codes rather than errors — so the whole batch is
// zero-alloc once the caller's scratch has warmed up.

import "scaddar/internal/placement"

// BlockAddr names one block in a bulk lookup: catalog object ID plus block
// index within the object.
type BlockAddr struct {
	// Object is the object's catalog ID.
	Object int
	// Index is the block index within the object.
	Index int
}

// Per-entry status codes reported by LocatorSnapshot.LocateBatch. They stand
// in for the typed errors Locate would wrap (ErrUnknownObject,
// ErrBlockOutOfRange) so a bulk caller pays no allocation for failed entries.
const (
	// LocateOK: the entry resolved; the disks slot holds its logical disk.
	LocateOK uint8 = 0
	// LocateUnknownObject: the object ID is not in the snapshot's catalog
	// (Locate would return ErrUnknownObject).
	LocateUnknownObject uint8 = 1
	// LocateOutOfRange: the block index is outside the object's extent
	// (Locate would return ErrBlockOutOfRange).
	LocateOutOfRange uint8 = 2
	// LocateFailed: the locator could not regenerate the entry's X0 — a
	// generator-width misconfiguration, never a per-request condition.
	LocateFailed uint8 = 3
)

// BatchScratch carries LocateBatch's reusable intermediate buffers so
// repeated batches allocate nothing once the buffers have grown to the
// caller's steady batch size. The zero value is ready to use. A scratch must
// not be shared by concurrent callers.
type BatchScratch struct {
	xs  []uint64
	ds  []int
	pos []int
}

// grow returns s sized to n, reusing capacity when possible.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// LocateBatch resolves addrs[i] into disks[i] and status[i], applying the
// same mid-migration rules as Locate: pending moves are served from their
// pre-operation home, and scale-down drains translate back to the
// pre-removal numbering. disks and status must be at least len(addrs) long;
// failed entries get a non-OK status and disk 0. Safe for concurrent callers
// as long as each uses its own scratch; allocation-free once the scratch has
// warmed to the batch size.
func (sn *LocatorSnapshot) LocateBatch(addrs []BlockAddr, disks []int32, status []uint8, sc *BatchScratch) {
	if len(disks) < len(addrs) || len(status) < len(addrs) {
		panic("cm: LocateBatch output shorter than input")
	}
	sc.xs = sc.xs[:0]
	sc.pos = sc.pos[:0]
	for i, a := range addrs {
		obj, ok := sn.objects[a.Object]
		if !ok {
			disks[i], status[i] = 0, LocateUnknownObject
			continue
		}
		if a.Index < 0 || a.Index >= obj.blocks {
			disks[i], status[i] = 0, LocateOutOfRange
			continue
		}
		ref := placement.BlockRef{Seed: obj.seed, Index: uint64(a.Index)}
		if from, pending := sn.pending.lookup(ref); pending {
			disks[i], status[i] = int32(from), LocateOK
			continue
		}
		x0, err := sn.loc.X0(obj.seed, uint64(a.Index))
		if err != nil {
			disks[i], status[i] = 0, LocateFailed
			continue
		}
		sc.xs = append(sc.xs, x0)
		sc.pos = append(sc.pos, i)
	}
	if len(sc.xs) == 0 {
		return
	}
	sc.ds = growInts(sc.ds, len(sc.xs))
	sn.chain.LocateBatch(sc.xs, sc.ds)
	for k, i := range sc.pos {
		d := sc.ds[k]
		if sn.preOf != nil {
			d = sn.preOf[d]
		}
		disks[i], status[i] = int32(d), LocateOK
	}
}
