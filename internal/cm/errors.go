package cm

import "errors"

// Typed errors for the server's request surface, so a network front end can
// map operational conditions to protocol outcomes (404 for a bad name, 503
// for admission pressure, 409 for a conflicting control operation) instead
// of parsing message strings. Every error below is wrapped with %w at its
// raise sites; match with errors.Is.
var (
	// ErrUnknownObject is returned when a request names an object that is
	// not loaded.
	ErrUnknownObject = errors.New("cm: unknown object")
	// ErrBlockOutOfRange is returned when a request names a block index
	// outside the object's extent (including seek positions).
	ErrBlockOutOfRange = errors.New("cm: block index out of range")
	// ErrUnknownStream is returned when a request names a stream ID that
	// was never issued.
	ErrUnknownStream = errors.New("cm: unknown stream")
	// ErrAdmissionRejected is returned when StartStream refuses a session
	// because the array is at its admission limit — the caller should back
	// off and retry, not treat it as a failure.
	ErrAdmissionRejected = errors.New("cm: admission control rejected stream")
	// ErrBusy is returned when a control operation conflicts with
	// in-progress work: a reorganization or ingest in flight, a scale-down
	// awaiting completion, or a degraded array.
	ErrBusy = errors.New("cm: conflicting operation in progress")
	// ErrDegradedRead is returned by Lookup when the block's home disk is
	// down (or its copy not yet rebuilt): the block is temporarily
	// unreadable at its placed location, not misplaced.
	ErrDegradedRead = errors.New("cm: block degraded")
	// ErrEpochFenced is returned by a follower replica refusing a lookup
	// that would straddle a scaling operation it has not applied yet: the
	// leader's placement epoch is ahead of the replica's, so answering from
	// the stale snapshot could name a disk the block has already left. The
	// condition clears as soon as the replica applies through the scaling
	// event — retry after a short backoff.
	ErrEpochFenced = errors.New("cm: read fenced across unapplied scaling epoch")
	// ErrStaleRead is returned by a follower replica whose applied position
	// lags the leader beyond the configured staleness budget. The answer
	// would still be epoch-consistent, but older than the caller agreed to
	// tolerate — retry after a short backoff, or read from the leader.
	ErrStaleRead = errors.New("cm: replica lag exceeds staleness budget")
)
