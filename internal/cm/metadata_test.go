package cm

import (
	"errors"
	"testing"

	"scaddar/internal/placement"
	"scaddar/internal/prng"
)

func x0Of(bits uint) placement.X0Func {
	return placement.NewX0Func(func(seed uint64) prng.Source {
		return prng.Truncate(prng.NewSplitMix64(seed), bits)
	})
}

// buildBusyServer creates a server, runs several scaling operations and a
// full redistribution, and returns it quiescent.
func buildBusyServer(t *testing.T) *Server {
	t.Helper()
	strat, err := placement.NewScaddar(4, x0Of(32))
	if err != nil {
		t.Fatal(err)
	}
	if err := strat.SetBits(32); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.GeneratorBits = 32
	cfg.Tolerance = 0.05
	srv, err := NewServer(cfg, strat)
	if err != nil {
		t.Fatal(err)
	}
	loadObjects(t, srv, 5, 300)
	step := func(f func() error) {
		t.Helper()
		if err := f(); err != nil {
			t.Fatal(err)
		}
		for srv.Reorganizing() {
			if err := srv.Tick(); err != nil {
				t.Fatal(err)
			}
		}
		if err := srv.FinishReorganization(); err != nil {
			t.Fatal(err)
		}
	}
	step(func() error { _, err := srv.ScaleUp(2); return err })
	step(func() error { _, err := srv.FullRedistribute(); return err })
	step(func() error { _, err := srv.ScaleUp(1); return err })
	sd := func() error {
		_, err := srv.ScaleDown(3)
		return err
	}
	if err := sd(); err != nil {
		t.Fatal(err)
	}
	for srv.Reorganizing() {
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.CompleteScaleDown(); err != nil {
		t.Fatal(err)
	}
	return srv
}

func TestMetadataRoundTrip(t *testing.T) {
	srv := buildBusyServer(t)
	md, err := srv.ExportMetadata()
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeMetadata(md)
	if err != nil {
		t.Fatal(err)
	}
	// The whole server's durable state stays tiny — the paper's point.
	if len(data) > 4096 {
		t.Fatalf("metadata is %d bytes; expected compact", len(data))
	}
	back, err := DecodeMetadata(data)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.GeneratorBits = 32
	cfg.Tolerance = 0.05
	restored, err := RestoreServer(cfg, back, x0Of(32))
	if err != nil {
		t.Fatal(err)
	}
	// Every block must be located identically by the restored server.
	if restored.N() != srv.N() {
		t.Fatalf("restored N = %d, want %d", restored.N(), srv.N())
	}
	if restored.TotalBlocks() != srv.TotalBlocks() {
		t.Fatalf("restored blocks = %d, want %d", restored.TotalBlocks(), srv.TotalBlocks())
	}
	// Logical placement must match block for block. (Physical IDs differ
	// by construction: the original array carried stable IDs across
	// removals, while the restore builds a fresh array.)
	for id := 0; id < 5; id++ {
		obj, err := srv.Object(id)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < obj.Blocks; i += 7 {
			ref := placement.BlockRef{Seed: obj.Seed, Index: uint64(i)}
			a := srv.Strategy().Disk(ref)
			b := restored.Strategy().Disk(ref)
			if a != b {
				t.Fatalf("block %d/%d: original logical disk %d, restored %d", id, i, a, b)
			}
			if _, err := restored.Lookup(id, i); err != nil {
				t.Fatal(err)
			}
		}
	}
	// The restored budget resumes where the original left off.
	if (srv.Budget() == nil) != (restored.Budget() == nil) {
		t.Fatal("budget presence differs")
	}
	if srv.Budget().Mu().Cmp(restored.Budget().Mu()) != 0 {
		t.Fatalf("restored budget mu %v, want %v", restored.Budget().Mu(), srv.Budget().Mu())
	}
	// And the restored server keeps working.
	if _, err := restored.ScaleUp(1); err != nil {
		t.Fatal(err)
	}
	for restored.Reorganizing() {
		if err := restored.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if err := restored.FinishReorganization(); err != nil {
		t.Fatal(err)
	}
	if err := restored.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestExportMetadataGuards(t *testing.T) {
	srv := newServer(t, 4)
	loadObjects(t, srv, 2, 100)
	if _, err := srv.ScaleUp(1); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.ExportMetadata(); err == nil {
		t.Fatal("export during migration accepted")
	}
	for srv.Reorganizing() {
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.FinishReorganization(); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.ExportMetadata(); err != nil {
		t.Fatal(err)
	}
}

// TestExportMetadataDegradedGuard locks in the checkpoint-safety contract:
// metadata carries no disk-health, rebuild-queue, or lost-block state, so a
// degraded server must refuse to export — a checkpoint cut then would
// restore an all-healthy array and strand (or silently drop) the journaled
// fail/rebuild events layered on top.
func TestExportMetadataDegradedGuard(t *testing.T) {
	srv := newFaultServer(t, 4, RedundancyMirror)
	loadObjects(t, srv, 2, 60)

	if err := srv.FailDisk(1); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.ExportMetadata(); !errors.Is(err, ErrBusy) {
		t.Fatalf("export with a failed disk: %v, want ErrBusy", err)
	}
	if err := srv.RepairDisk(1); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.ExportMetadata(); !errors.Is(err, ErrBusy) {
		t.Fatalf("export mid-rebuild: %v, want ErrBusy", err)
	}
	for i := 0; srv.Degraded(); i++ {
		if i > 10000 {
			t.Fatalf("rebuild did not drain; %d items remaining", srv.RebuildRemaining())
		}
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := srv.ExportMetadata(); err != nil {
		t.Fatalf("export after the rebuild drained: %v", err)
	}

	// Without redundancy a failure loses blocks permanently: the server can
	// never be checkpointed again, and the journal (which records the loss)
	// remains the durable record.
	lossy := newFaultServer(t, 4, RedundancyNone)
	loadObjects(t, lossy, 2, 60)
	if err := lossy.FailDisk(1); err != nil {
		t.Fatal(err)
	}
	if err := lossy.RepairDisk(1); err != nil {
		t.Fatal(err)
	}
	if lossy.LostBlocks() == 0 {
		t.Fatal("no blocks recorded lost after an unredundant failure")
	}
	if _, err := lossy.ExportMetadata(); !errors.Is(err, ErrBusy) {
		t.Fatalf("export with lost blocks: %v, want ErrBusy", err)
	}
}

func TestExportMetadataRequiresScaddar(t *testing.T) {
	rr, err := placement.NewRoundRobin(4)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(DefaultConfig(), rr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.ExportMetadata(); err == nil {
		t.Fatal("export with non-scaddar strategy accepted")
	}
}

func TestRestoreValidation(t *testing.T) {
	if _, err := RestoreServer(DefaultConfig(), nil, x0Of(32)); err == nil {
		t.Error("nil metadata accepted")
	}
	if _, err := RestoreServer(DefaultConfig(), &Metadata{Version: 99}, x0Of(32)); err == nil {
		t.Error("wrong version accepted")
	}
	if _, err := RestoreServer(DefaultConfig(), &Metadata{Version: 1}, x0Of(32)); err == nil {
		t.Error("missing history accepted")
	}
}

// TestRestoreGeneratorContract documents the recovery contract: metadata
// alone does not pin the generator family — the operator must supply the
// same one. A restore with a different generator builds a self-consistent
// server whose placements differ from the original (in a real recovery the
// mismatch against the surviving physical disks would surface immediately;
// this simulator restores onto fresh disks).
func TestRestoreGeneratorContract(t *testing.T) {
	srv := buildBusyServer(t)
	md, err := srv.ExportMetadata()
	if err != nil {
		t.Fatal(err)
	}
	wrong := placement.NewX0Func(func(seed uint64) prng.Source {
		return prng.Truncate(prng.NewSplitMix64(seed^0xdead), 32)
	})
	restored, err := RestoreServer(DefaultConfig(), md, wrong)
	if err != nil {
		t.Fatal(err)
	}
	differ := 0
	obj, err := srv.Object(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < obj.Blocks; i++ {
		ref := placement.BlockRef{Seed: obj.Seed, Index: uint64(i)}
		if srv.Strategy().Disk(ref) != restored.Strategy().Disk(ref) {
			differ++
		}
	}
	if differ < obj.Blocks/2 {
		t.Fatalf("wrong-generator restore agrees on %d/%d blocks; generators are not actually different",
			obj.Blocks-differ, obj.Blocks)
	}
}
