package cm

import (
	"math"
	"testing"

	"scaddar/internal/placement"
	"scaddar/internal/prng"
)

func TestBinomialTailEdges(t *testing.T) {
	if _, err := BinomialTail(-1, 0.5, 0); err == nil {
		t.Error("negative trials accepted")
	}
	if _, err := BinomialTail(10, -0.1, 0); err == nil {
		t.Error("negative probability accepted")
	}
	if _, err := BinomialTail(10, 1.1, 0); err == nil {
		t.Error("probability > 1 accepted")
	}
	if p, _ := BinomialTail(10, 0.5, 10); p != 0 {
		t.Errorf("P(X > s) = %g, want 0", p)
	}
	if p, _ := BinomialTail(10, 0.5, -1); p != 1 {
		t.Errorf("P(X > -1) = %g, want 1", p)
	}
	if p, _ := BinomialTail(10, 0, 0); p != 0 {
		t.Errorf("q=0 tail = %g, want 0", p)
	}
	if p, _ := BinomialTail(10, 1, 5); p != 1 {
		t.Errorf("q=1 tail = %g, want 1", p)
	}
}

func TestBinomialTailKnownValues(t *testing.T) {
	// P(X > 5) for X ~ Bin(10, 0.5) = 1 - P(X <= 5) = 0.376953125.
	p, err := BinomialTail(10, 0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.376953125) > 1e-9 {
		t.Errorf("Bin(10,0.5) tail at 5 = %.9f, want 0.376953125", p)
	}
	// P(X > 0) for Bin(4, 0.25) = 1 - 0.75^4 = 0.68359375.
	p, err = BinomialTail(4, 0.25, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.68359375) > 1e-9 {
		t.Errorf("Bin(4,0.25) tail at 0 = %.9f, want 0.68359375", p)
	}
}

func TestBinomialTailMatchesSimulation(t *testing.T) {
	const (
		s      = 400
		n      = 8
		c      = 60
		rounds = 200000
	)
	analytic, err := BinomialTail(s, 1.0/n, c)
	if err != nil {
		t.Fatal(err)
	}
	src := prng.NewSplitMix64(7)
	over := 0
	for r := 0; r < rounds; r++ {
		load := 0
		for i := 0; i < s; i++ {
			if src.Next()%n == 0 {
				load++
			}
		}
		if load > c {
			over++
		}
	}
	empirical := float64(over) / rounds
	// analytic ≈ 0.02-0.1 territory; allow 20% relative + absolute slack.
	if math.Abs(empirical-analytic) > 0.2*analytic+0.002 {
		t.Errorf("empirical %.5f vs analytic %.5f", empirical, analytic)
	}
}

func TestOverloadProbabilityMonotone(t *testing.T) {
	prev := 0.0
	for _, streams := range []int{100, 200, 400, 600} {
		p, err := OverloadProbability(streams, 8, 79)
		if err != nil {
			t.Fatal(err)
		}
		if p < prev {
			t.Errorf("overload probability decreased at %d streams", streams)
		}
		prev = p
	}
	if _, err := OverloadProbability(10, 0, 5); err == nil {
		t.Error("zero disks accepted")
	}
	if _, err := OverloadProbability(10, 4, -1); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestMaxStreamsStatistical(t *testing.T) {
	if _, err := MaxStreamsStatistical(8, 79, 0); err == nil {
		t.Error("zero target accepted")
	}
	if _, err := MaxStreamsStatistical(8, 79, 1); err == nil {
		t.Error("target 1 accepted")
	}
	if _, err := MaxStreamsStatistical(0, 79, 0.01); err == nil {
		t.Error("zero disks accepted")
	}
	limit, err := MaxStreamsStatistical(8, 79, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	// The statistical limit sits strictly between a conservative fixed
	// utilization (say 60%) and the aggregate capacity.
	aggregate := 8 * 79
	if limit <= aggregate*60/100 || limit >= aggregate {
		t.Fatalf("statistical limit %d outside (%d, %d)", limit, aggregate*60/100, aggregate)
	}
	// The limit it returns must actually satisfy the target, and limit+1
	// must not.
	p, _ := OverloadProbability(limit, 8, 79)
	if p > 1e-3 {
		t.Fatalf("limit %d violates the target: p=%g", limit, p)
	}
	p, _ = OverloadProbability(limit+1, 8, 79)
	if p <= 1e-3 {
		t.Fatalf("limit %d is not maximal: p=%g at +1", limit, p)
	}
}

func TestMaxStreamsFractionGrowsWithCapacity(t *testing.T) {
	// The law of large numbers acts per disk: as the per-round capacity c
	// grows, the relative fluctuation of Binomial demand shrinks like
	// 1/sqrt(c), so the admissible *fraction* of aggregate capacity grows.
	frac := func(c int) float64 {
		limit, err := MaxStreamsStatistical(8, c, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		return float64(limit) / float64(8*c)
	}
	f20, f79, f320 := frac(20), frac(79), frac(320)
	if !(f20 < f79 && f79 < f320) {
		t.Fatalf("admissible fractions not increasing with capacity: %.3f %.3f %.3f", f20, f79, f320)
	}
}

func TestMaxStreamsBeatsWorstCaseGuarantee(t *testing.T) {
	// A deterministic guarantee under random placement must survive the
	// worst case of every request landing on one disk, i.e. admit only a
	// single disk's capacity. The statistical policy admits a large
	// multiple of that at a 1e-3 overload probability — the quantitative
	// form of the paper's "load balancing by the law of large numbers".
	limit, err := MaxStreamsStatistical(8, 79, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if limit < 4*79 {
		t.Fatalf("statistical limit %d not well above the worst-case 79", limit)
	}
	if limit >= 8*79 {
		t.Fatalf("statistical limit %d at or above aggregate capacity", limit)
	}
}

func TestServerStatisticalAdmission(t *testing.T) {
	x0 := placement.NewX0Func(func(seed uint64) prng.Source { return prng.NewSplitMix64(seed) })
	strat, err := placement.NewScaddar(8, x0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.OverloadTarget = 1e-3
	srv, err := NewServer(cfg, strat)
	if err != nil {
		t.Fatal(err)
	}
	loadObjects(t, srv, 4, 5000)
	want, err := MaxStreamsStatistical(8, srv.diskCapacityPerRound(), 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if got := srv.capacityStreams(); got != want {
		t.Fatalf("capacity = %d, want %d", got, want)
	}
	// It must admit far more than the worst-case deterministic guarantee
	// (a single disk's capacity) while staying below aggregate capacity.
	if want <= 2*srv.diskCapacityPerRound() || want >= 8*srv.diskCapacityPerRound() {
		t.Fatalf("statistical limit %d outside the sensible band", want)
	}
	// And the server rejects exactly past the limit.
	for i := 0; i < want; i++ {
		if _, err := srv.StartStream(i % 4); err != nil {
			t.Fatalf("admission %d/%d: %v", i, want, err)
		}
	}
	if _, err := srv.StartStream(0); err == nil {
		t.Fatal("stream beyond statistical limit admitted")
	}
}

func TestServerOverloadTargetValidation(t *testing.T) {
	x0 := placement.NewX0Func(func(seed uint64) prng.Source { return prng.NewSplitMix64(seed) })
	strat, _ := placement.NewScaddar(4, x0)
	cfg := DefaultConfig()
	cfg.OverloadTarget = -0.1
	if _, err := NewServer(cfg, strat); err == nil {
		t.Fatal("negative overload target accepted")
	}
	cfg.OverloadTarget = 1
	if _, err := NewServer(cfg, strat); err == nil {
		t.Fatal("overload target 1 accepted")
	}
}
