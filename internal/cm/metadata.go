package cm

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"scaddar/internal/placement"
	"scaddar/internal/scaddar"
	"scaddar/internal/workload"
)

// This file implements server metadata persistence — the operational payoff
// of SCADDAR's no-directory design. The durable state of the whole server
// is the object catalog (IDs, seeds, sizes) plus the scaling-operation log;
// block locations are NOT stored anywhere. Restore rebuilds the placement
// strategy from the log and re-derives every block's disk, and
// VerifyIntegrity proves the physical inventory matches.

// Metadata is the durable state of a Server.
type Metadata struct {
	// Version guards the format.
	Version int `json:"version"`
	// History is the scaling-operation log.
	History *scaddar.History `json:"history"`
	// Epoch counts complete redistributions (the placement strategy's
	// rebaseline epoch).
	Epoch uint64 `json:"epoch,omitempty"`
	// Bits is the generator width the strategy was configured with.
	Bits uint `json:"bits"`
	// Objects is the catalog.
	Objects []workload.Object `json:"objects"`
}

// metadataVersion is the current format version.
const metadataVersion = 1

// ExportMetadata captures the server's durable state. It requires a SCADDAR
// placement strategy (the schemes without an operation log have nothing
// this compact to export) and a quiescent, healthy server: no migration in
// flight, no failed or rebuilding disk, no pending rebuild work, and no
// lost blocks. Metadata carries none of that state, so restoring it yields
// an all-healthy array — exporting while any of it exists would produce a
// checkpoint that contradicts the journaled fail/rebuild events layered on
// top (a real system would persist the pending sets too; this simulator
// keeps the boundary clean instead). Callers treat ErrBusy as "retry after
// the drain"; note that lost blocks under RedundancyNone never drain, so
// such a server can no longer be checkpointed — the journal, which records
// the loss, remains the durable record.
func (s *Server) ExportMetadata() (*Metadata, error) {
	if s.Reorganizing() || len(s.pendingRemoval) > 0 {
		return nil, fmt.Errorf("%w: cannot export metadata during a reorganization", ErrBusy)
	}
	if s.Degraded() {
		return nil, fmt.Errorf("%w: cannot export metadata while the array is degraded "+
			"(failed or rebuilding disk, pending rebuild work, or lost blocks)", ErrBusy)
	}
	sc, ok := s.strat.(*placement.Scaddar)
	if !ok {
		return nil, fmt.Errorf("cm: strategy %q has no exportable operation log", s.strat.Name())
	}
	md := &Metadata{
		Version: metadataVersion,
		History: sc.History().Clone(),
		Epoch:   sc.Epoch(),
		Bits:    sc.Bits(),
	}
	// Export objects in ID order for stable output.
	ids := make([]int, 0, len(s.objects))
	for id := range s.objects {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for k := i; k > 0 && ids[k] < ids[k-1]; k-- {
			ids[k], ids[k-1] = ids[k-1], ids[k]
		}
	}
	for _, id := range ids {
		md.Objects = append(md.Objects, s.objects[id])
	}
	return md, nil
}

// MarshalJSON is provided by the embedded fields; Metadata round-trips
// through encoding/json directly.

// RestoreServer rebuilds a server from exported metadata: the strategy is
// reconstructed from the operation log (replaying it into a fresh SCADDAR
// strategy), every object's blocks are re-placed by computation alone, and
// the result is integrity-verified. x0 must be built over the same
// generator family and seeds as the original server.
func RestoreServer(cfg Config, md *Metadata, x0 placement.X0Func) (*Server, error) {
	if md == nil {
		return nil, fmt.Errorf("cm: nil metadata")
	}
	if md.Version != metadataVersion {
		return nil, fmt.Errorf("cm: metadata version %d, want %d", md.Version, metadataVersion)
	}
	if md.History == nil {
		return nil, fmt.Errorf("cm: metadata has no history")
	}
	strat, err := placement.NewScaddar(md.History.N0(), x0)
	if err != nil {
		return nil, err
	}
	if md.Bits != 0 {
		if err := strat.SetBits(md.Bits); err != nil {
			return nil, err
		}
	}
	for e := uint64(0); e < md.Epoch; e++ {
		if err := strat.Rebaseline(); err != nil {
			return nil, err
		}
	}
	// Replay the operation log into the strategy.
	for j := 1; j <= md.History.Ops(); j++ {
		op := md.History.Op(j)
		switch op.Kind {
		case scaddar.OpAdd:
			if err := strat.AddDisks(op.Count()); err != nil {
				return nil, err
			}
		case scaddar.OpRemove:
			if err := strat.RemoveDisks(op.Removed...); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("cm: metadata op %d has unknown kind", j)
		}
	}
	srv, err := NewServer(cfg, strat)
	if err != nil {
		return nil, err
	}
	// The budget, if tracked, resumes from the recorded history.
	if srv.budget != nil {
		if err := srv.budget.Reset(md.History.N0()); err != nil {
			return nil, err
		}
		for j := 1; j <= md.History.Ops(); j++ {
			if err := srv.budget.Record(md.History.NAt(j)); err != nil {
				return nil, err
			}
		}
	}
	for _, obj := range md.Objects {
		if err := srv.AddObject(obj); err != nil {
			return nil, err
		}
	}
	if err := srv.VerifyIntegrity(); err != nil {
		return nil, fmt.Errorf("cm: restored server failed verification: %w", err)
	}
	return srv, nil
}

// EncodeMetadata serializes metadata as JSON.
func EncodeMetadata(md *Metadata) ([]byte, error) {
	return json.Marshal(md)
}

// DecodeMetadata parses JSON metadata.
func DecodeMetadata(data []byte) (*Metadata, error) {
	var md Metadata
	if err := json.Unmarshal(data, &md); err != nil {
		return nil, err
	}
	return &md, nil
}

// metadataMagic introduces the binary metadata form ("SCADDAR metadata").
var metadataMagic = [4]byte{'S', 'C', 'M', 'D'}

// EncodeMetadataBinary serializes metadata in the compact binary form the
// durable store's checkpoints use: the History binary codec wrapped with the
// epoch, generator width, and varint-packed object catalog.
func EncodeMetadataBinary(md *Metadata) ([]byte, error) {
	if md == nil {
		return nil, fmt.Errorf("cm: nil metadata")
	}
	if md.Version != metadataVersion {
		return nil, fmt.Errorf("cm: metadata version %d, want %d", md.Version, metadataVersion)
	}
	if md.History == nil {
		return nil, fmt.Errorf("cm: metadata has no history")
	}
	hist, err := md.History.MarshalBinary()
	if err != nil {
		return nil, err
	}
	dst := append([]byte(nil), metadataMagic[:]...)
	dst = binary.AppendUvarint(dst, uint64(md.Version))
	dst = binary.AppendUvarint(dst, uint64(md.Bits))
	dst = binary.AppendUvarint(dst, md.Epoch)
	dst = binary.AppendUvarint(dst, uint64(len(hist)))
	dst = append(dst, hist...)
	dst = binary.AppendUvarint(dst, uint64(len(md.Objects)))
	for _, obj := range md.Objects {
		if obj.ID < 0 || obj.Blocks < 0 || obj.BlockBytes < 0 || obj.BitrateBitsPerSec < 0 {
			return nil, fmt.Errorf("cm: object %d has negative fields", obj.ID)
		}
		dst = binary.AppendUvarint(dst, uint64(obj.ID))
		dst = binary.AppendUvarint(dst, obj.Seed)
		dst = binary.AppendUvarint(dst, uint64(obj.Blocks))
		dst = binary.AppendUvarint(dst, uint64(obj.BlockBytes))
		dst = binary.AppendUvarint(dst, uint64(obj.BitrateBitsPerSec))
	}
	return dst, nil
}

// DecodeMetadataBinary parses the binary metadata form, validating it
// structurally (the embedded History codec re-validates the operation log by
// replay).
func DecodeMetadataBinary(data []byte) (*Metadata, error) {
	if len(data) < len(metadataMagic) || string(data[:4]) != string(metadataMagic[:]) {
		return nil, fmt.Errorf("cm: binary metadata lacks magic %q", metadataMagic)
	}
	r := bytes.NewReader(data[4:])
	version, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("cm: binary metadata: %w", err)
	}
	if version != metadataVersion {
		return nil, fmt.Errorf("cm: metadata version %d, want %d", version, metadataVersion)
	}
	bits, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("cm: binary metadata: %w", err)
	}
	if bits > 64 {
		return nil, fmt.Errorf("cm: binary metadata declares %d generator bits", bits)
	}
	epoch, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("cm: binary metadata: %w", err)
	}
	histLen, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("cm: binary metadata: %w", err)
	}
	if histLen > uint64(r.Len()) {
		return nil, fmt.Errorf("cm: binary metadata declares %d history bytes, %d remain", histLen, r.Len())
	}
	hist := make([]byte, histLen)
	if _, err := io.ReadFull(r, hist); err != nil {
		return nil, fmt.Errorf("cm: binary metadata: %w", err)
	}
	history := &scaddar.History{}
	if err := history.UnmarshalBinary(hist); err != nil {
		return nil, fmt.Errorf("cm: binary metadata history: %w", err)
	}
	nObjects, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("cm: binary metadata: %w", err)
	}
	// Five varints of at least one byte each per object: reject forged
	// counts before allocating.
	if nObjects > uint64(r.Len())/5 {
		return nil, fmt.Errorf("cm: binary metadata declares %d objects in %d bytes", nObjects, r.Len())
	}
	md := &Metadata{Version: int(version), History: history, Epoch: epoch, Bits: uint(bits)}
	for i := uint64(0); i < nObjects; i++ {
		var fields [5]uint64
		for k := range fields {
			fields[k], err = binary.ReadUvarint(r)
			if err != nil {
				return nil, fmt.Errorf("cm: binary metadata object %d: %w", i, err)
			}
		}
		if fields[0] > uint64(1)<<62 || fields[2] > uint64(1)<<62 || fields[3] > uint64(1)<<62 || fields[4] > uint64(1)<<62 {
			return nil, fmt.Errorf("cm: binary metadata object %d has out-of-range fields", i)
		}
		md.Objects = append(md.Objects, workload.Object{
			ID:                int(fields[0]),
			Seed:              fields[1],
			Blocks:            int(fields[2]),
			BlockBytes:        int64(fields[3]),
			BitrateBitsPerSec: int64(fields[4]),
		})
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("cm: binary metadata has %d trailing bytes", r.Len())
	}
	return md, nil
}
