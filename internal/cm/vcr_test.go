package cm

import (
	"testing"

	"scaddar/internal/prng"
	"scaddar/internal/workload"
)

// TestVCRChurn drives streams with VCR behavior — random jumps and stops at
// block boundaries — the unpredictable access pattern the paper adopts
// random placement to support ("support for unpredictable access patterns
// as generated, for example, by interactive applications or VCR-style
// operations"). The server must stay hiccup-free and consistent, including
// across a mid-churn scale-out.
func TestVCRChurn(t *testing.T) {
	srv := newServer(t, 6)
	loadObjects(t, srv, 6, 500)
	vcr, err := workload.NewVCR(prng.NewSplitMix64(8), 100, 20) // 10% jump, 2% stop
	if err != nil {
		t.Fatal(err)
	}
	rnd := prng.NewSplitMix64(9)

	const target = 100
	admit := func() {
		t.Helper()
		st, err := srv.StartStream(int(rnd.Next() % 6))
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.SeekStream(st.ID, int(rnd.Next()%500)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < target; i++ {
		admit()
	}

	live := func() []*Stream {
		var out []*Stream
		for id := 0; id < 100000; id++ {
			st, err := srv.Stream(id)
			if err != nil {
				break
			}
			if st.State == StreamPlaying {
				out = append(out, st)
			}
		}
		return out
	}

	scaleAt := 40
	for round := 0; round < 120; round++ {
		if round == scaleAt {
			if _, err := srv.ScaleUp(2); err != nil {
				t.Fatal(err)
			}
		}
		// Apply viewer actions to every live stream at block boundaries.
		for _, st := range live() {
			action, pos := vcr.Next(500)
			switch action {
			case workload.VCRJump:
				if err := srv.SeekStream(st.ID, pos); err != nil {
					t.Fatal(err)
				}
			case workload.VCRStop:
				if err := srv.StopStream(st.ID); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
		for srv.ActiveStreams() < target {
			admit()
		}
	}
	if srv.Reorganizing() {
		for srv.Reorganizing() {
			if err := srv.Tick(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := srv.FinishReorganization(); err != nil {
		t.Fatal(err)
	}
	m := srv.Metrics()
	if m.Hiccups != 0 {
		t.Fatalf("%d hiccups under VCR churn", m.Hiccups)
	}
	if m.BlocksServed < 100*100 {
		t.Fatalf("served only %d blocks", m.BlocksServed)
	}
	if err := srv.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}
