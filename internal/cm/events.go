package cm

// This file defines the server's durable event stream: every state-changing
// transition emits one Event to an optional sink after the mutation has been
// applied. The stream is what internal/store journals — together with a
// metadata checkpoint it is sufficient to rebuild the server's control-plane
// state after a crash (replay helpers live in replay.go). Read-path activity
// (stream service, hiccups, cache hits) is deliberately not evented: it is
// reconstructible from nothing and journaling it would put the data path in
// the durability hot loop.

import (
	"fmt"

	"scaddar/internal/disk"
	"scaddar/internal/workload"
)

// EventKind enumerates the durable control-plane events a Server emits.
type EventKind int

// Event kinds. Values are part of the journal's on-disk format: append new
// kinds at the end, never renumber.
const (
	// EventObjectAdded: an object's blocks were loaded (Object).
	EventObjectAdded EventKind = iota + 1
	// EventObjectRemoved: an object and its blocks were deleted (ObjectID).
	EventObjectRemoved
	// EventIngestCommitted: a recording session finished and its object
	// entered the catalog (Object).
	EventIngestCommitted
	// EventScaleUpStarted: disks were attached and a rebalancing migration
	// began (Count, and Profile when a non-baseline generation was added).
	EventScaleUpStarted
	// EventScaleDownStarted: a drain of the given logical disks began
	// (Disks).
	EventScaleDownStarted
	// EventRedistributeStarted: a complete redistribution (rebaseline)
	// began.
	EventRedistributeStarted
	// EventBlocksMigrated: the listed pending moves executed (Moves).
	EventBlocksMigrated
	// EventReorgCompleted: the in-flight reorganization finished and was
	// cleared (for a scale-down, the drained disks were detached).
	EventReorgCompleted
	// EventDiskFailed: the disk at a logical index failed (Disk, and Lost
	// when the failure made blocks permanently unrecoverable).
	EventDiskFailed
	// EventDiskRepaired: a replacement arrived at a logical index (Disk).
	EventDiskRepaired
	// EventBlocksRebuilt: the listed rebuild items completed (Rebuilt).
	EventBlocksRebuilt
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventObjectAdded:
		return "object-added"
	case EventObjectRemoved:
		return "object-removed"
	case EventIngestCommitted:
		return "ingest-committed"
	case EventScaleUpStarted:
		return "scale-up-started"
	case EventScaleDownStarted:
		return "scale-down-started"
	case EventRedistributeStarted:
		return "redistribute-started"
	case EventBlocksMigrated:
		return "blocks-migrated"
	case EventReorgCompleted:
		return "reorg-completed"
	case EventDiskFailed:
		return "disk-failed"
	case EventDiskRepaired:
		return "disk-repaired"
	case EventBlocksRebuilt:
		return "blocks-rebuilt"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// IsEpochEvent reports whether an event kind begins or ends a scaling
// operation — the placement-epoch boundaries replication fences reads on. A
// follower that has not applied an epoch event the leader has journaled must
// refuse lookups (ErrEpochFenced) rather than serve locations computed under
// the superseded operation log. Per-block migration events deliberately do
// not count: mid-drain moves are what bounded staleness covers.
func IsEpochEvent(k EventKind) bool {
	switch k {
	case EventScaleUpStarted, EventScaleDownStarted, EventRedistributeStarted, EventReorgCompleted:
		return true
	}
	return false
}

// BlockPos identifies one block by catalog coordinates. Events use it
// instead of placement references because seeds are already durable in the
// catalog and plan ordering is not deterministic across restarts.
type BlockPos struct {
	// Object is the owning object's catalog ID.
	Object int
	// Index is the block's index within the object.
	Index uint64
}

// RebuildPos identifies one rebuild item by catalog coordinates; Kind is the
// rebuild kind (primary copy, mirror copy, parity block). For parity blocks
// Index holds the group number.
type RebuildPos struct {
	// Kind is the rebuild item kind (primary, mirror, or parity).
	Kind int
	// Object is the owning object's catalog ID.
	Object int
	// Index is the block index, or the parity group number for parity items.
	Index uint64
}

// Event is one durable control-plane transition. Exactly the fields the
// Kind documents are meaningful; the rest are zero.
type Event struct {
	// Kind says which transition happened and which fields are meaningful.
	Kind EventKind
	// Object is the full catalog entry for EventObjectAdded and
	// EventIngestCommitted.
	Object workload.Object
	// ObjectID names the removed object for EventObjectRemoved.
	ObjectID int
	// Disk is the failed or repaired disk's logical index.
	Disk int
	// Count is the number of disks added by EventScaleUpStarted.
	Count int
	// Profile, when non-nil, is the hardware profile of the added disks.
	Profile *disk.Profile
	// Disks lists the logical indices removed by EventScaleDownStarted.
	Disks []int
	// Moves lists the blocks a migration round committed.
	Moves []BlockPos
	// Rebuilt lists the items a rebuild round re-materialized.
	Rebuilt []RebuildPos
	// Lost lists the blocks an unprotected disk failure destroyed.
	Lost []BlockPos
}

// EventSink receives events synchronously, on the goroutine that mutated the
// server, after the mutation succeeded. A sink must not call back into the
// server.
type EventSink func(Event)

// SetEventSink installs (or, with nil, removes) the event sink. Events are
// emitted after their mutation has been applied, so a sink that journals
// them loses at most the transitions since its last flush on a crash — the
// group-commit window, never committed state.
func (s *Server) SetEventSink(sink EventSink) { s.events = sink }

// AddEventSink tees an additional, non-durable observer behind the primary
// sink: it sees every event the journal does, after the journal's sink. The
// gateway's delta feed uses this to learn about migrated blocks and epoch
// boundaries without displacing the durable store.
func (s *Server) AddEventSink(sink EventSink) {
	if sink != nil {
		s.extraSinks = append(s.extraSinks, sink)
	}
}

// emit delivers an event to the sink, if any, after teeing it into the
// observability layer: the observer's per-kind counter and the trace ring
// (tagged with the current round) both see every event the journal does.
func (s *Server) emit(ev Event) {
	if IsEpochEvent(ev.Kind) {
		s.placementEpoch++
	}
	if s.obsv != nil {
		s.obsv.observeEvent(ev)
	}
	if s.trace != nil {
		sp := EventSpan(ev)
		sp.Round = int64(s.metrics.Rounds)
		s.trace.Append(sp)
	}
	if s.events != nil {
		s.events(ev)
	}
	for _, sink := range s.extraSinks {
		sink(ev)
	}
}

// PlacementEpoch returns the number of epoch events emitted so far: it
// advances when a scaling operation starts or finishes (IsEpochEvent), never
// for per-block migration progress. Crash recovery and follower replay drive
// the same emitting mutators, so the counter is consistent with the journal
// suffix it was rebuilt from; it is NOT comparable across processes that
// replayed from different checkpoints — clients must treat it as an opaque
// generation tag, not a global sequence number.
func (s *Server) PlacementEpoch() uint64 { return s.placementEpoch }

// seedOfObject resolves an object ID to its placement seed, consulting
// in-progress ingests as well as the catalog.
func (s *Server) seedOfObject(object int) (uint64, bool) {
	if obj, ok := s.objects[object]; ok {
		return obj.Seed, true
	}
	for _, in := range s.ingests {
		if in.Object.ID == object {
			return in.Object.Seed, true
		}
	}
	return 0, false
}

// objectOfSeed is the inverse of seedOfObject: it resolves a placement seed
// to its object ID, consulting in-progress ingests as well as the catalog.
// Emit sites must use it (and skip on a miss) rather than indexing seedOf
// directly — an unchecked miss would journal object 0, which replays as the
// wrong object's mutation or fails recovery outright.
func (s *Server) objectOfSeed(seed uint64) (int, bool) {
	if id, ok := s.seedOf[seed]; ok {
		return id, true
	}
	for _, in := range s.ingests {
		if in.Object.Seed == seed {
			return in.Object.ID, true
		}
	}
	return 0, false
}
