package cm

import (
	"testing"
	"time"

	"scaddar/internal/bufpool"
	"scaddar/internal/dataplane"
	"scaddar/internal/disk"
	"scaddar/internal/placement"
	"scaddar/internal/prng"
	"scaddar/internal/workload"
)

// benchSink is a minimal delivery sink for round benchmarks: it wants every
// payload, counts the bytes, and releases each buffer immediately — the
// cheapest well-behaved consumer, so the measured cost is the server's.
type benchSink struct {
	bytes int64
}

func (s *benchSink) WantsPayload(int) bool { return true }

func (s *benchSink) Deliver(stream, object, index int, p bufpool.Payload) bool {
	s.bytes += int64(len(p.Data))
	p.Release()
	return false
}

func (s *benchSink) StreamClosed(int, StreamState) {}

// unbatchedStore hides a store's BatchReader so disk.ReadBlocksFrom takes
// the sequential per-block Get fallback — the pre-batching read path, kept
// as the benchmark baseline.
type unbatchedStore struct {
	disk.PayloadStore
}

// BenchmarkRoundDelivery measures one full scheduling round of the payload
// path: every playing stream plans its block read, the reads are grouped by
// disk, coalesced, and executed as per-disk batches running in parallel
// (one worker per batch, bounded by GOMAXPROCS), and the delivered chunks
// flow through the sink. The disks subdimension varies how many stores the
// same stream population is spread over; the seq variant disables batching
// (per-block Get, one syscall and one allocation per block) to show what
// coalescing and pooling buy.
func BenchmarkRoundDelivery(b *testing.B) {
	type variant struct {
		name    string
		disks   int
		batched bool
	}
	variants := []variant{
		{"disks=1", 1, true},
		{"disks=2", 2, true},
		{"disks=4", 4, true},
		{"disks=8", 8, true},
		{"disks=4/seq", 4, false},
	}
	for _, v := range variants {
		disks := v.disks
		b.Run(v.name, func(b *testing.B) {
			// 128 streams of 128 KiB blocks move 16 MiB per round — enough
			// CRC-verify work per batch that the per-disk parallelism is
			// visible over the goroutine fan-out cost. The 2 s round keeps a
			// single simulated disk's block budget above the stream count so
			// every sub-benchmark serves the same population.
			const (
				blockBytes = 128 << 10
				objects    = 8
				blocks     = 64
				streams    = 128
			)
			cfg := DefaultConfig()
			cfg.BlockBytes = blockBytes
			cfg.Round = 2 * time.Second
			cfg.Utilization = 1
			x0 := placement.NewX0Func(func(seed uint64) prng.Source { return prng.NewSplitMix64(seed) })
			strat, err := placement.NewScaddar(disks, x0)
			if err != nil {
				b.Fatal(err)
			}
			srv, err := NewServer(cfg, strat)
			if err != nil {
				b.Fatal(err)
			}
			mgr, err := dataplane.NewManager(b.TempDir(), dataplane.Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer mgr.Close()
			factory := mgr.Factory()
			if !v.batched {
				inner := factory
				factory = func(id int) (disk.PayloadStore, error) {
					ps, err := inner(id)
					if err != nil {
						return nil, err
					}
					return unbatchedStore{ps}, nil
				}
			}
			if err := srv.AttachPayloads(factory, dataplane.SeededContent); err != nil {
				b.Fatal(err)
			}
			for o := 0; o < objects; o++ {
				obj := workload.Object{ID: o + 1, Seed: uint64(o)*77 + 5, Blocks: blocks, BlockBytes: blockBytes}
				if err := srv.AddObject(obj); err != nil {
					b.Fatal(err)
				}
			}
			sink := &benchSink{}
			srv.SetDeliverySink(sink)
			sts := make([]*Stream, streams)
			for i := range sts {
				st, err := srv.StartStream(i%objects + 1)
				if err != nil {
					b.Fatal(err)
				}
				// Stagger start positions so a round's reads span each
				// store instead of clustering on one ingest-order run.
				if err := srv.SeekStream(st.ID, (i*blocks/streams)%blocks); err != nil {
					b.Fatal(err)
				}
				sts[i] = st
			}
			b.SetBytes(int64(streams) * blockBytes)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, st := range sts {
					if st.Position >= blocks-1 {
						b.StopTimer()
						if err := srv.SeekStream(st.ID, 0); err != nil {
							b.Fatal(err)
						}
						b.StartTimer()
					}
				}
				if err := srv.Tick(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if want := int64(b.N) * int64(streams) * blockBytes; sink.bytes != want {
				b.Fatalf("sink received %d bytes, want %d", sink.bytes, want)
			}
		})
	}
}
