package cm

import (
	"fmt"

	"scaddar/internal/placement"
	"scaddar/internal/workload"
)

// This file implements the write path: ingesting a new object's blocks at a
// fixed rate while the server keeps serving streams. The paper cites disk
// scheduling for *recording* continuous media (Aref et al.) as orthogonal
// work it would reuse; here ingest shares each round's per-disk I/O budget
// with stream reads, with reads taking priority and writes back-pressured.

// Ingest is one in-progress recording session.
type Ingest struct {
	// Object is the object being recorded; its Blocks field is the final
	// size, announced up front.
	Object workload.Object
	// Rate is the target blocks written per round (the encoding rate).
	Rate int
	// Written is the number of blocks stored so far.
	Written int
	// Stalls counts rounds in which back-pressure delayed at least one
	// scheduled write.
	Stalls int
	// Done reports completion; the object has moved to the catalog.
	Done bool
}

// StartIngest begins recording a new object at the given rate (blocks per
// round). The object's identity, seed, and final size must be declared up
// front — the seed is what makes every block's location computable. Blocks
// are written by subsequent Tick calls using spare disk bandwidth. Scaling
// operations are rejected while an ingest is active (and vice versa) to
// keep reorganization plans over a stable block population.
func (s *Server) StartIngest(obj workload.Object, rate int) (*Ingest, error) {
	if s.Reorganizing() || len(s.pendingRemoval) > 0 {
		return nil, fmt.Errorf("cm: cannot ingest during a reorganization")
	}
	if s.Degraded() {
		return nil, fmt.Errorf("cm: cannot start an ingest while the array is degraded")
	}
	if rate < 1 {
		return nil, fmt.Errorf("cm: ingest rate %d blocks/round", rate)
	}
	if _, dup := s.objects[obj.ID]; dup {
		return nil, fmt.Errorf("cm: duplicate object ID %d", obj.ID)
	}
	if _, dup := s.seedOf[obj.Seed]; dup {
		return nil, fmt.Errorf("cm: duplicate object seed %d", obj.Seed)
	}
	for _, in := range s.ingests {
		if !in.Done && (in.Object.ID == obj.ID || in.Object.Seed == obj.Seed) {
			return nil, fmt.Errorf("cm: object %d already being ingested", obj.ID)
		}
	}
	if obj.Blocks < 1 {
		return nil, fmt.Errorf("cm: object %d has no blocks", obj.ID)
	}
	if obj.BlockBytes != s.cfg.BlockBytes {
		return nil, fmt.Errorf("cm: object %d block size %d != server block size %d",
			obj.ID, obj.BlockBytes, s.cfg.BlockBytes)
	}
	if obj.ID < 0 || obj.ID >= 1<<24 || uint64(obj.Blocks) >= 1<<40 {
		return nil, fmt.Errorf("cm: object %d outside addressable range", obj.ID)
	}
	in := &Ingest{Object: obj, Rate: rate}
	s.ingests = append(s.ingests, in)
	// Reserve the identity immediately so concurrent AddObject/StartIngest
	// calls cannot collide.
	s.seedOf[obj.Seed] = obj.ID
	return in, nil
}

// Ingesting reports whether any recording session is still active.
func (s *Server) Ingesting() bool {
	for _, in := range s.ingests {
		if !in.Done {
			return true
		}
	}
	return false
}

// stepIngests writes up to each session's rate this round, consuming spare
// per-disk budget tracked in used against the per-disk capacities.
func (s *Server) stepIngests(used []int, caps []int) error {
	for _, in := range s.ingests {
		if in.Done {
			continue
		}
		wrote := 0
		stalled := false
		for wrote < in.Rate && in.Written < in.Object.Blocks {
			ref := placement.BlockRef{Seed: in.Object.Seed, Index: uint64(in.Written)}
			logical := s.strat.Disk(ref)
			if used[logical] >= caps[logical] {
				stalled = true
				break // back-pressure: retry next round
			}
			d, err := s.array.Disk(logical)
			if err != nil {
				return err
			}
			if err := d.Store(blockID(in.Object.ID, uint64(in.Written))); err != nil {
				return err
			}
			// Data and metadata move together: the block's real bytes land
			// in the disk's payload store in the same step. (A crash between
			// the two leaves an orphan payload the recovery reconcile GCs.)
			if err := s.putPayload(d, blockID(in.Object.ID, uint64(in.Written))); err != nil {
				return err
			}
			used[logical]++
			in.Written++
			wrote++
			s.metrics.BlocksIngested++
		}
		if stalled {
			in.Stalls++
		}
		if in.Written == in.Object.Blocks {
			in.Done = true
			s.objects[in.Object.ID] = in.Object
			s.emit(Event{Kind: EventIngestCommitted, Object: in.Object})
		}
	}
	return nil
}
