package cm

import (
	"testing"
	"time"

	"scaddar/internal/bufpool"
	"scaddar/internal/dataplane"
	"scaddar/internal/disk"
	"scaddar/internal/placement"
	"scaddar/internal/prng"
	"scaddar/internal/workload"
)

// newPayloadServer builds a server over n0 disks with a real data plane
// rooted in a temp dir, returning the server and its store manager.
func newPayloadServer(t *testing.T, n0 int, cfg Config) (*Server, *dataplane.Manager) {
	t.Helper()
	x0 := placement.NewX0Func(func(seed uint64) prng.Source { return prng.NewSplitMix64(seed) })
	strat, err := placement.NewScaddar(n0, x0)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(cfg, strat)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := dataplane.NewManager(t.TempDir(), dataplane.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	if err := srv.AttachPayloads(mgr.Factory(), dataplane.SeededContent); err != nil {
		t.Fatal(err)
	}
	return srv, mgr
}

// payloadConfig is a small-block config so payload tests stay fast.
func payloadConfig() Config {
	cfg := DefaultConfig()
	cfg.BlockBytes = 1 << 10
	cfg.Round = time.Second
	return cfg
}

// verifyPayloadInventory checks that every disk's payload store holds
// exactly the blocks its metadata inventory names, with oracle-exact bytes.
func verifyPayloadInventory(t *testing.T, srv *Server) {
	t.Helper()
	for i := 0; i < srv.N(); i++ {
		d, err := srv.Array().Disk(i)
		if err != nil {
			t.Fatal(err)
		}
		ps := d.Payload()
		if ps == nil {
			t.Fatalf("disk %d has no payload store", d.ID())
		}
		stored := make(map[disk.BlockID]bool)
		for _, bid := range ps.Blocks() {
			stored[bid] = true
			if !d.Has(bid) {
				t.Fatalf("disk %d: payload %d has no metadata entry", d.ID(), bid)
			}
		}
		for _, bid := range d.Blocks() {
			if !stored[bid] {
				t.Fatalf("disk %d: block %d has metadata but no payload", d.ID(), bid)
			}
			data, err := ps.Get(bid)
			if err != nil {
				t.Fatalf("disk %d: read payload %d: %v", d.ID(), bid, err)
			}
			object := int(uint64(bid) >> 40)
			index := uint64(bid) & (1<<40 - 1)
			obj, err := srv.Object(object)
			if err != nil {
				t.Fatalf("disk %d: payload %d names unknown object: %v", d.ID(), bid, err)
			}
			if !dataplane.VerifySeededContent(data, obj.Seed, index) {
				t.Fatalf("disk %d: payload %d bytes diverge from the oracle", d.ID(), bid)
			}
		}
	}
}

// captureSink collects delivered bytes per stream for verification.
type captureSink struct {
	chunks map[int][][]byte
	closed map[int]StreamState
}

func newCaptureSink() *captureSink {
	return &captureSink{chunks: make(map[int][][]byte), closed: make(map[int]StreamState)}
}

func (c *captureSink) WantsPayload(int) bool { return true }

func (c *captureSink) Deliver(stream, object, index int, p bufpool.Payload) bool {
	buf := append([]byte(nil), p.Data...)
	p.Release()
	c.chunks[stream] = append(c.chunks[stream], buf)
	return false
}

func (c *captureSink) StreamClosed(stream int, state StreamState) { c.closed[stream] = state }

func TestPayloadServeDeliversIngestBytes(t *testing.T) {
	srv, mgr := newPayloadServer(t, 4, payloadConfig())
	obj := workload.Object{ID: 1, Seed: 77, Blocks: 24, BlockBytes: 1 << 10}
	if err := srv.AddObject(obj); err != nil {
		t.Fatal(err)
	}
	if mgr.LiveBytes() != int64(obj.Blocks)*obj.BlockBytes {
		t.Fatalf("stores hold %d live bytes, want %d", mgr.LiveBytes(), int64(obj.Blocks)*obj.BlockBytes)
	}
	sink := newCaptureSink()
	srv.SetDeliverySink(sink)
	st, err := srv.StartStream(obj.ID)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < obj.Blocks+4 && st.State == StreamPlaying; r++ {
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if st.State != StreamDone {
		t.Fatalf("stream state = %v after %d blocks", st.State, st.Served)
	}
	got := sink.chunks[st.ID]
	if len(got) != obj.Blocks {
		t.Fatalf("delivered %d chunks, want %d", len(got), obj.Blocks)
	}
	for i, data := range got {
		if !dataplane.VerifySeededContent(data, obj.Seed, uint64(i)) {
			t.Fatalf("chunk %d bytes diverge from ingest", i)
		}
	}
	if sink.closed[st.ID] != StreamDone {
		t.Fatalf("close notification = %v, want done", sink.closed[st.ID])
	}
	if m := srv.Metrics(); m.PayloadBytesServed != int64(obj.Blocks)*obj.BlockBytes {
		t.Fatalf("PayloadBytesServed = %d, want %d", m.PayloadBytesServed, int64(obj.Blocks)*obj.BlockBytes)
	}
	verifyPayloadInventory(t, srv)
}

func TestPayloadMovesWithScaleUpAndDown(t *testing.T) {
	srv, _ := newPayloadServer(t, 4, payloadConfig())
	obj := workload.Object{ID: 2, Seed: 99, Blocks: 200, BlockBytes: 1 << 10}
	if err := srv.AddObject(obj); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.ScaleUp(2); err != nil {
		t.Fatal(err)
	}
	for srv.Reorganizing() {
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.FinishReorganization(); err != nil {
		t.Fatal(err)
	}
	verifyPayloadInventory(t, srv)

	// Drain two disks back out; their stores must be destroyed on detach.
	if _, err := srv.ScaleDown(1, 4); err != nil {
		t.Fatal(err)
	}
	for srv.Reorganizing() {
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.CompleteScaleDown(); err != nil {
		t.Fatal(err)
	}
	if err := srv.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
	verifyPayloadInventory(t, srv)
}

func TestTransientFaultsFireOnRealReads(t *testing.T) {
	cfg := payloadConfig()
	cfg.Redundancy = RedundancyMirror
	srv, _ := newPayloadServer(t, 6, cfg)
	obj := workload.Object{ID: 3, Seed: 55, Blocks: 64, BlockBytes: 1 << 10}
	if err := srv.AddObject(obj); err != nil {
		t.Fatal(err)
	}
	inj, err := NewInjector(42).WithTransientErrorRate(0.3)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.InstallFaults(inj); err != nil {
		t.Fatal(err)
	}
	sink := newCaptureSink()
	srv.SetDeliverySink(sink)
	st, err := srv.StartStream(obj.ID)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < obj.Blocks*3 && st.State == StreamPlaying; r++ {
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if st.State != StreamDone {
		t.Fatalf("stream did not finish under transient faults: %v", st.State)
	}
	m := srv.Metrics()
	if m.TransientReadErrors == 0 {
		t.Fatal("no transient errors fired on the real read path")
	}
	if m.DegradedReads == 0 {
		t.Fatal("no degraded reads: failover never reconstructed")
	}
	// Every delivered chunk is byte-identical to ingest regardless of which
	// path (direct read or mirror reconstruction) served it.
	for i, data := range sink.chunks[st.ID] {
		if !dataplane.VerifySeededContent(data, obj.Seed, uint64(i)) {
			t.Fatalf("chunk %d corrupted by failover path", i)
		}
	}
}

func TestPayloadFailoverAndRebuildRealBytes(t *testing.T) {
	cfg := payloadConfig()
	cfg.Redundancy = RedundancyMirror
	srv, _ := newPayloadServer(t, 6, cfg)
	obj := workload.Object{ID: 4, Seed: 11, Blocks: 120, BlockBytes: 1 << 10}
	if err := srv.AddObject(obj); err != nil {
		t.Fatal(err)
	}
	sink := newCaptureSink()
	srv.SetDeliverySink(sink)
	st, err := srv.StartStream(obj.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.FailDisk(2); err != nil {
		t.Fatal(err)
	}
	// The failed disk's store was wiped with it.
	d2, _ := srv.Array().Disk(2)
	if got := len(d2.Payload().Blocks()); got != 0 {
		t.Fatalf("failed disk still holds %d payloads", got)
	}
	for r := 0; r < 20; r++ {
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.RepairDisk(2); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 600 && (srv.RebuildRemaining() > 0 || st.State == StreamPlaying); r++ {
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if srv.RebuildRemaining() != 0 {
		t.Fatalf("rebuild stuck with %d items", srv.RebuildRemaining())
	}
	if st.State != StreamDone {
		t.Fatalf("stream state = %v", st.State)
	}
	for i, data := range sink.chunks[st.ID] {
		if !dataplane.VerifySeededContent(data, obj.Seed, uint64(i)) {
			t.Fatalf("chunk %d corrupted across fail/rebuild", i)
		}
	}
	// The rebuilt disk's store holds real, oracle-exact bytes again.
	verifyPayloadInventory(t, srv)
	if m := srv.Metrics(); m.BlocksRebuilt == 0 {
		t.Fatal("no blocks rebuilt")
	}
}

// TestIngestCrashOrphanPayloadGC covers the torn write-path crash: an ingest
// killed after appending a block's bytes but before journaling its metadata
// leaves an orphan payload; recovery's reconcile garbage-collects it, and a
// metadata block whose payload vanished is re-materialized from the oracle.
func TestIngestCrashOrphanPayloadGC(t *testing.T) {
	x0 := placement.NewX0Func(func(seed uint64) prng.Source { return prng.NewSplitMix64(seed) })
	strat, err := placement.NewScaddar(4, x0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := payloadConfig()
	srv, err := NewServer(cfg, strat)
	if err != nil {
		t.Fatal(err)
	}
	obj := workload.Object{ID: 5, Seed: 123, Blocks: 32, BlockBytes: 1 << 10}
	if err := srv.AddObject(obj); err != nil { // metadata only: no payloads yet
		t.Fatal(err)
	}
	root := t.TempDir()
	mgr, err := dataplane.NewManager(root, dataplane.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	// Simulate the crash remnant: disk 0's store holds bytes for a block the
	// metadata journal never committed (object 9 block 0), and none of the
	// catalog's payloads exist yet (the "store lost behind the journal" case).
	st0, err := mgr.Open(0)
	if err != nil {
		t.Fatal(err)
	}
	orphan := disk.BlockID(uint64(9)<<40 | 0)
	if err := st0.Put(orphan, dataplane.SeededContent(999, 0, 1<<10)); err != nil {
		t.Fatal(err)
	}
	if err := srv.AttachPayloads(mgr.Factory(), dataplane.SeededContent); err != nil {
		t.Fatal(err)
	}
	if st0.Has(orphan) {
		t.Fatal("orphan payload survived recovery reconcile")
	}
	// Every catalogued block was re-materialized with oracle-exact bytes.
	verifyPayloadInventory(t, srv)
	if mgr.LiveBytes() != int64(obj.Blocks)*obj.BlockBytes {
		t.Fatalf("reconciled stores hold %d bytes, want %d", mgr.LiveBytes(), int64(obj.Blocks)*obj.BlockBytes)
	}
}

func TestLocatorStateExportMidReorg(t *testing.T) {
	srv, _ := newPayloadServer(t, 4, payloadConfig())
	obj := workload.Object{ID: 6, Seed: 200, Blocks: 300, BlockBytes: 1 << 10}
	if err := srv.AddObject(obj); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.ScaleUp(2); err != nil {
		t.Fatal(err)
	}
	ls, err := srv.LocatorStateExport()
	if err != nil {
		t.Fatal(err)
	}
	if !ls.Reorganizing || ls.N != 6 || len(ls.Pending) == 0 {
		t.Fatalf("state = reorg:%v n:%d pending:%d", ls.Reorganizing, ls.N, len(ls.Pending))
	}
	if len(ls.Objects) != 1 || ls.Objects[0].Seed != obj.Seed {
		t.Fatalf("catalog = %+v", ls.Objects)
	}
	// The pending set names exactly the blocks still served from their
	// pre-operation homes; each must agree with the live server's locate.
	for _, p := range ls.Pending {
		d, err := srv.Lookup(p.Object, int(p.Index))
		if err != nil {
			t.Fatal(err)
		}
		home, err := srv.Array().Disk(p.From)
		if err != nil {
			t.Fatal(err)
		}
		if d.ID() != home.ID() {
			t.Fatalf("pending block %d/%d served from disk %d, state says %d",
				p.Object, p.Index, d.ID(), home.ID())
		}
	}
}

// TestIngestWritesPayloadsLive drives a recording session and checks its
// payloads land with the metadata, round by round.
func TestIngestWritesPayloadsLive(t *testing.T) {
	srv, mgr := newPayloadServer(t, 4, payloadConfig())
	base := workload.Object{ID: 7, Seed: 31, Blocks: 16, BlockBytes: 1 << 10}
	if err := srv.AddObject(base); err != nil {
		t.Fatal(err)
	}
	rec := workload.Object{ID: 8, Seed: 32, Blocks: 40, BlockBytes: 1 << 10}
	in, err := srv.StartIngest(rec, 4)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 40 && !in.Done; r++ {
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if !in.Done {
		t.Fatalf("ingest wrote %d/%d blocks", in.Written, rec.Blocks)
	}
	verifyPayloadInventory(t, srv)
	want := int64(base.Blocks+rec.Blocks) * (1 << 10)
	if mgr.LiveBytes() != want {
		t.Fatalf("stores hold %d live bytes, want %d", mgr.LiveBytes(), want)
	}
}
