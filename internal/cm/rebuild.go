package cm

// The online rebuild executor: modeled on reorg.Executor, it re-materializes
// a replaced disk's blocks from surviving redundancy using each round's
// leftover bandwidth, sharing the spare pool deterministically with any
// in-flight reorganization (rebuild runs first — restoring redundancy beats
// rebalancing — then migration gets what remains). Each item charges one
// read on every source disk and one write on the target; items whose
// sources or target are out of budget this round stay pending, so rebuild
// never steals bandwidth from stream service.

import (
	"fmt"

	"scaddar/internal/disk"
	"scaddar/internal/placement"
)

// rebuildKind distinguishes what a rebuild item restores.
type rebuildKind int

const (
	// rebuildPrimary re-materializes a block's primary copy (physically
	// stored) on the target disk, reading from its redundancy.
	rebuildPrimary rebuildKind = iota
	// rebuildMirrorCopy restores a virtual offset-mirror copy homed on the
	// target disk by reading the block's primary copy. Bandwidth only.
	rebuildMirrorCopy
	// rebuildParityBlock recomputes a virtual parity block homed on the
	// target disk by reading every member of its group. Bandwidth only;
	// ref.Index holds the group number, not a block index.
	rebuildParityBlock
)

// rebuildKey identifies one pending re-materialization.
type rebuildKey struct {
	kind rebuildKind
	ref  placement.BlockRef
}

// rebuildItem is one unit of rebuild work.
type rebuildItem struct {
	key    rebuildKey
	bid    disk.BlockID // physical block ID; unused for rebuildParityBlock
	target int          // logical index in physical-array space
}

// rebuilder tracks pending rebuild work and per-disk repair timing.
type rebuilder struct {
	items   []rebuildItem
	pending map[rebuildKey]bool
	started map[int]int // target logical index -> round its repair began
}

// ensureRebuilder returns the server's rebuilder, creating it on first use.
func (s *Server) ensureRebuilder() *rebuilder {
	if s.rebuild == nil {
		s.rebuild = &rebuilder{
			pending: make(map[rebuildKey]bool),
			started: make(map[int]int),
		}
	}
	return s.rebuild
}

// add enqueues an item unless an identical re-materialization is already
// pending.
func (rb *rebuilder) add(it rebuildItem) {
	if rb.pending[it.key] {
		return
	}
	rb.pending[it.key] = true
	rb.items = append(rb.items, it)
}

// rebuildPending reports whether the given re-materialization is queued.
func (s *Server) rebuildPending(key rebuildKey) bool {
	return s.rebuild != nil && s.rebuild.pending[key]
}

// RebuildRemaining reports pending rebuild items (primary copies plus
// virtual redundant copies).
func (s *Server) RebuildRemaining() int {
	if s.rebuild == nil {
		return 0
	}
	return len(s.rebuild.items)
}

// rebuildSources resolves the physical disks an item must read this round.
// ok is false when a source is unavailable right now (failed, or its copy
// not yet restored); the item stays pending and retries after the blocking
// rebuild or repair completes.
func (s *Server) rebuildSources(it rebuildItem) (sources []int, ok bool, err error) {
	switch it.key.kind {
	case rebuildPrimary:
		return s.failoverSources(it.key.ref)
	case rebuildMirrorCopy:
		object, okObj := s.seedOf[it.key.ref.Seed]
		if !okObj {
			return nil, false, fmt.Errorf("cm: rebuild for unknown seed %d", it.key.ref.Seed)
		}
		p, readable := s.memberReadable(object, it.key.ref)
		if !readable {
			return nil, false, nil
		}
		return []int{p}, true, nil
	case rebuildParityBlock:
		object, okObj := s.seedOf[it.key.ref.Seed]
		if !okObj {
			return nil, false, fmt.Errorf("cm: rebuild for unknown seed %d", it.key.ref.Seed)
		}
		nblocks := s.objectBlocks(object)
		group := it.key.ref.Index
		start := group * uint64(s.par.GroupSize())
		for idx := start; idx < start+uint64(s.par.GroupSize()) && idx < uint64(nblocks); idx++ {
			mref := placement.BlockRef{Seed: it.key.ref.Seed, Index: idx}
			p, readable := s.memberReadable(object, mref)
			if !readable {
				return nil, false, nil
			}
			sources = append(sources, p)
		}
		return sources, true, nil
	default:
		return nil, false, fmt.Errorf("cm: unknown rebuild kind %d", it.key.kind)
	}
}

// stepRebuild spends leftover round bandwidth on pending rebuild items,
// decrementing spare in place, then transitions any Rebuilding disk whose
// work has drained back to Healthy.
func (s *Server) stepRebuild(spare []int) error {
	rb := s.rebuild
	if rb == nil || len(rb.items) == 0 {
		return nil
	}
	var completed []RebuildPos
	kept := rb.items[:0]
	for _, it := range rb.items {
		target, err := s.array.Disk(it.target)
		if err != nil {
			return err
		}
		if target.Health() == disk.Failed || spare[it.target] <= 0 {
			kept = append(kept, it)
			continue
		}
		sources, ok, err := s.rebuildSources(it)
		if err != nil {
			return err
		}
		if !ok {
			kept = append(kept, it) // source unavailable: retry after repairs
			continue
		}
		if !chargeable(spare, it.target, sources) {
			kept = append(kept, it) // out of budget this round
			continue
		}
		spare[it.target]--
		for _, src := range sources {
			spare[src]--
			d, err := s.array.Disk(src)
			if err != nil {
				return err
			}
			d.RecordFailoverRead()
		}
		s.metrics.RebuildIOs += len(sources) + 1
		if it.key.kind == rebuildPrimary {
			if err := target.Store(it.bid); err != nil {
				return fmt.Errorf("cm: rebuild: %w", err)
			}
			// Reconstruction produces the block's actual bytes (redundant
			// copies are computable): the replacement disk's payload store
			// gets real data, not just a metadata entry.
			if err := s.putPayload(target, it.bid); err != nil {
				return fmt.Errorf("cm: rebuild: %w", err)
			}
			target.RecordMigration()
			s.metrics.BlocksRebuilt++
		}
		delete(rb.pending, it.key)
		if object, okObj := s.seedOf[it.key.ref.Seed]; okObj {
			completed = append(completed, RebuildPos{Kind: int(it.key.kind), Object: object, Index: it.key.ref.Index})
		}
	}
	for i := len(kept); i < len(rb.items); i++ {
		rb.items[i] = rebuildItem{}
	}
	rb.items = kept
	if err := s.sweepRebuiltDisks(); err != nil {
		return err
	}
	// Emit after the sweep so the journaled event's replay (which also
	// sweeps) reproduces exactly the state observable at emit time.
	if len(completed) > 0 {
		s.emit(Event{Kind: EventBlocksRebuilt, Rebuilt: completed})
	}
	return nil
}

// sweepRebuiltDisks transitions every Rebuilding disk whose work has drained
// back to Healthy. Shared by the live rebuild step and journal replay.
func (s *Server) sweepRebuiltDisks() error {
	rb := s.rebuild
	if rb == nil {
		return nil
	}
	remaining := make(map[int]int)
	for _, it := range rb.items {
		remaining[it.target]++
	}
	for i := 0; i < s.array.N(); i++ {
		d, err := s.array.Disk(i)
		if err != nil {
			return err
		}
		if d.Health() != disk.Rebuilding || remaining[i] > 0 {
			continue
		}
		if err := d.FinishRebuild(); err != nil {
			return err
		}
		s.metrics.RebuildsCompleted++
		if start, ok := rb.started[i]; ok {
			s.metrics.RoundsToRepair += s.metrics.Rounds - start + 1
			delete(rb.started, i)
		}
	}
	return nil
}

// chargeable reports whether the round budget can cover one write on target
// plus one read on every source (sources may repeat a disk).
func chargeable(spare []int, target int, sources []int) bool {
	need := make(map[int]int, len(sources)+1)
	need[target]++
	for _, src := range sources {
		need[src]++
	}
	for d, n := range need {
		if d < 0 || d >= len(spare) || spare[d] < n {
			return false
		}
	}
	return true
}
