package cm

// This file bridges the server into the internal/obs observability layer:
// an Observer mirrors cm.Metrics and per-disk state into a metrics registry
// at the end of every round, and an optional trace ring records the same
// event stream the durable store journals, so a recovered server retraces
// the ring of the run it replays (store-side replay appends the identical
// spans; see internal/store).
//
// All hooks run on the goroutine that owns the server — the observer needs
// no locking of its own beyond the registry's lock-free cells.

import (
	"math"
	"strconv"

	"scaddar/internal/obs"
	"scaddar/internal/stats"
)

// Observer publishes a Server's state into an obs.Registry: monotonic
// counters mirroring Metrics, per-disk load and queue-depth gauges, a live
// unfairness estimate next to the analytic Section 4.3 bound, and per-round
// migration/rebuild histograms. Create it with NewObserver and install it
// with Server.SetObserver; the server then refreshes every cell at the end
// of each Tick on its owner goroutine. Readers (an HTTP exposition handler,
// a dashboard) may scrape the registry concurrently — the cells are atomic.
type Observer struct {
	// Counters mirroring the monotonic cm.Metrics fields.
	rounds          *obs.Counter
	blocksServed    *obs.Counter
	hiccups         *obs.Counter
	streamsDone     *obs.Counter
	streamsRejected *obs.Counter
	blocksMigrated  *obs.Counter
	blocksIngested  *obs.Counter
	cacheHits       *obs.Counter
	diskFailures    *obs.Counter
	diskRepairs     *obs.Counter
	degradedReads   *obs.Counter
	unrecoverable   *obs.Counter
	transientErrors *obs.Counter
	failoverReads   *obs.Counter
	blocksRebuilt   *obs.Counter
	rebuildIOs      *obs.Counter
	events          *obs.CounterVec

	// Gauges of current state.
	disks            *obs.Gauge
	activeStreams    *obs.Gauge
	objects          *obs.Gauge
	totalBlocks      *obs.Gauge
	migrationPending *obs.Gauge
	rebuildPending   *obs.Gauge
	loadCoV          *obs.Gauge
	unfairness       *obs.Gauge
	unfairnessBound  *obs.Gauge
	diskLoad         *obs.GaugeVec
	diskQueue        *obs.GaugeVec

	// Per-round distributions: how much spare bandwidth each round spent on
	// reorganization moves vs. rebuild I/Os.
	roundMoves      *obs.Histogram
	roundRebuildIOs *obs.Histogram

	// prevDisks tracks the last published array width so per-disk gauge
	// children are pruned when a scale-down shrinks the array.
	prevDisks int
}

// NewObserver registers the server's metric families in reg and returns the
// observer to install with Server.SetObserver. Registering twice against
// the same registry reuses the same cells (registration is idempotent), so
// a recovered server can adopt the registry of the one it replaces.
func NewObserver(reg *obs.Registry) *Observer {
	return &Observer{
		rounds:          reg.NewCounter("cm_rounds_total", "Scheduling rounds executed."),
		blocksServed:    reg.NewCounter("cm_blocks_served_total", "Blocks delivered to streams."),
		hiccups:         reg.NewCounter("cm_hiccups_total", "Stream-rounds that missed their deadline."),
		streamsDone:     reg.NewCounter("cm_streams_completed_total", "Streams that played to the end."),
		streamsRejected: reg.NewCounter("cm_streams_rejected_total", "Admission-control rejections."),
		blocksMigrated:  reg.NewCounter("cm_blocks_migrated_total", "Reorganization moves executed."),
		blocksIngested:  reg.NewCounter("cm_blocks_ingested_total", "Blocks written by recording sessions."),
		cacheHits:       reg.NewCounter("cm_cache_hits_total", "Stream reads served from the block buffer."),
		diskFailures:    reg.NewCounter("cm_disk_failures_total", "Whole-disk failures injected or invoked."),
		diskRepairs:     reg.NewCounter("cm_disk_repairs_total", "Replacement-disk arrivals (rebuild starts)."),
		degradedReads:   reg.NewCounter("cm_degraded_reads_total", "Reads served via mirror failover or parity reconstruction."),
		unrecoverable:   reg.NewCounter("cm_unrecoverable_reads_total", "Reads of blocks no redundancy could serve."),
		transientErrors: reg.NewCounter("cm_transient_read_errors_total", "Injected per-read transient faults."),
		failoverReads:   reg.NewCounter("cm_failover_reads_total", "Source-disk reads consumed by degraded serving."),
		blocksRebuilt:   reg.NewCounter("cm_blocks_rebuilt_total", "Primary copies re-materialized by the rebuild executor."),
		rebuildIOs:      reg.NewCounter("cm_rebuild_ios_total", "Disk I/Os (reads+writes) spent on rebuild."),
		events:          reg.NewCounterVec("cm_events_total", "Durable control-plane events emitted, by kind.", "kind"),

		disks:            reg.NewGauge("cm_disks", "Disks in the array."),
		activeStreams:    reg.NewGauge("cm_active_streams", "Streams currently playing."),
		objects:          reg.NewGauge("cm_objects", "Objects loaded in the catalog."),
		totalBlocks:      reg.NewGauge("cm_total_blocks", "Blocks stored across the array."),
		migrationPending: reg.NewGauge("cm_migration_pending", "Reorganization moves still pending."),
		rebuildPending:   reg.NewGauge("cm_rebuild_pending", "Rebuild items still pending."),
		loadCoV:          reg.NewGauge("cm_load_cov", "Coefficient of variation of per-disk block load (paper Section 5)."),
		unfairness:       reg.NewGauge("cm_unfairness", "Live unfairness of per-disk load: max/min - 1 (paper Section 4.3)."),
		unfairnessBound:  reg.NewGauge("cm_unfairness_bound", "Analytic guaranteed unfairness bound f(R_k,N_k) from the randomness budget; NaN without budget tracking."),
		diskLoad:         reg.NewGaugeVec("cm_disk_load_blocks", "Blocks stored per logical disk.", "disk"),
		diskQueue:        reg.NewGaugeVec("cm_disk_queue_depth", "Stream/ingest block requests served by the disk in the last round.", "disk"),

		roundMoves:      reg.NewHistogram("cm_round_moves", "Reorganization moves executed per round while a migration is active.", obs.SizeBuckets()),
		roundRebuildIOs: reg.NewHistogram("cm_round_rebuild_ios", "Rebuild I/Os executed per round while a rebuild is active.", obs.SizeBuckets()),
	}
}

// SetObserver installs (or, with nil, removes) the observer. The server
// refreshes it at the end of every Tick; between ticks the registry serves
// the previous round's values.
func (s *Server) SetObserver(o *Observer) {
	s.obsv = o
	if o != nil {
		o.observeRound(s, nil, 0, 0)
	}
}

// SetTraceRing installs (or, with nil, removes) the trace ring. Every
// emitted event appends one span tagged with the current round; replaying
// the journal through internal/store appends the same spans (with Round set
// to -1), so live ring contents and a recovery's retrace agree on the event
// sequence.
func (s *Server) SetTraceRing(r *obs.Ring) { s.trace = r }

// EventSpan converts a durable event into its trace-ring span. The mapping
// is the single source of truth shared by the live emit path and the
// store's replay path — identical events always yield identical spans
// (before Seq/Round assignment), which is what makes a replayed recovery
// retrace the ring of the run it replays.
func EventSpan(ev Event) obs.Span {
	sp := obs.Span{Kind: ev.Kind.String(), Round: -1, Object: -1, Disk: -1}
	switch ev.Kind {
	case EventObjectAdded:
		sp.Object = int64(ev.Object.ID)
		sp.Count = int64(ev.Object.Blocks)
	case EventObjectRemoved:
		sp.Object = int64(ev.ObjectID)
	case EventIngestCommitted:
		sp.Object = int64(ev.Object.ID)
		sp.Count = int64(ev.Object.Blocks)
	case EventScaleUpStarted:
		sp.Count = int64(ev.Count)
		if ev.Profile != nil {
			sp.Aux = 1 // non-baseline generation attached
		}
	case EventScaleDownStarted:
		sp.Count = int64(len(ev.Disks))
		if len(ev.Disks) > 0 {
			sp.Disk = int64(ev.Disks[0])
		}
	case EventBlocksMigrated:
		sp.Count = int64(len(ev.Moves))
	case EventDiskFailed:
		sp.Disk = int64(ev.Disk)
		sp.Aux = int64(len(ev.Lost))
	case EventDiskRepaired:
		sp.Disk = int64(ev.Disk)
	case EventBlocksRebuilt:
		sp.Count = int64(len(ev.Rebuilt))
	}
	return sp
}

// observeRound refreshes every registry cell from the server's current
// state. used is the per-disk served-request count of the round just
// executed (nil outside Tick); moved and rebuildIOs are that round's
// migration and rebuild expenditure.
func (o *Observer) observeRound(s *Server, used []int, moved, rebuildIOs int) {
	m := &s.metrics
	o.rounds.Set(uint64(m.Rounds))
	o.blocksServed.Set(uint64(m.BlocksServed))
	o.hiccups.Set(uint64(m.Hiccups))
	o.streamsDone.Set(uint64(m.StreamsCompleted))
	o.streamsRejected.Set(uint64(m.StreamsRejected))
	o.blocksMigrated.Set(uint64(m.BlocksMigrated))
	o.blocksIngested.Set(uint64(m.BlocksIngested))
	o.cacheHits.Set(uint64(m.CacheHits))
	o.diskFailures.Set(uint64(m.DiskFailures))
	o.diskRepairs.Set(uint64(m.DiskRepairs))
	o.degradedReads.Set(uint64(m.DegradedReads))
	o.unrecoverable.Set(uint64(m.UnrecoverableReads))
	o.transientErrors.Set(uint64(m.TransientReadErrors))
	o.failoverReads.Set(uint64(m.FailoverReads))
	o.blocksRebuilt.Set(uint64(m.BlocksRebuilt))
	o.rebuildIOs.Set(uint64(m.RebuildIOs))

	o.disks.SetInt(s.N())
	o.activeStreams.SetInt(s.ActiveStreams())
	o.objects.SetInt(len(s.objects))
	o.totalBlocks.SetInt(s.array.TotalBlocks())
	o.migrationPending.SetInt(s.MigrationRemaining())
	o.rebuildPending.SetInt(s.RebuildRemaining())

	loads := s.array.Loads()
	o.loadCoV.Set(stats.CoVInts(loads))
	if unf, err := stats.UnfairnessInts(loads); err == nil {
		o.unfairness.Set(unf)
	}
	if s.budget != nil {
		o.unfairnessBound.Set(s.budget.GuaranteedUnfairness())
	} else {
		o.unfairnessBound.Set(math.NaN())
	}

	for i, l := range loads {
		key := strconv.Itoa(i)
		o.diskLoad.With(key).SetInt(l)
		if used != nil && i < len(used) {
			o.diskQueue.With(key).SetInt(used[i])
		}
	}
	// Prune gauges for disks a scale-down detached.
	for i := len(loads); i < o.prevDisks; i++ {
		key := strconv.Itoa(i)
		o.diskLoad.Delete(key)
		o.diskQueue.Delete(key)
	}
	o.prevDisks = len(loads)

	if moved > 0 || s.Reorganizing() {
		o.roundMoves.Observe(float64(moved))
	}
	if rebuildIOs > 0 || s.RebuildRemaining() > 0 {
		o.roundRebuildIOs.Observe(float64(rebuildIOs))
	}
}

// observeEvent counts an emitted event by kind. Runs on the emit path
// (control plane), so the vec's mutex is acceptable.
func (o *Observer) observeEvent(ev Event) {
	o.events.With(ev.Kind.String()).Inc()
}
