package fsio

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileAtomicCreatesAndReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.bin")
	if err := WriteFileAtomic(path, []byte("one"), 0o644); err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "one" {
		t.Fatalf("read back %q, want %q", got, "one")
	}
	if err := WriteFileAtomic(path, []byte("two"), 0o644); err != nil {
		t.Fatalf("WriteFileAtomic replace: %v", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "two" {
		t.Fatalf("read back %q, want %q", got, "two")
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}

func TestWriteFileAtomicMissingDir(t *testing.T) {
	err := WriteFileAtomic(filepath.Join(t.TempDir(), "nope", "state.bin"), []byte("x"), 0o644)
	if err == nil {
		t.Fatal("expected error writing into a missing directory")
	}
}

func TestWriteFileAtomicPerm(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.bin")
	if err := WriteFileAtomic(path, []byte("x"), 0o600); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := fi.Mode().Perm(); got != 0o600 {
		t.Fatalf("mode %v, want 0600", got)
	}
}
