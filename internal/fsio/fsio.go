// Package fsio provides filesystem primitives with explicit durability
// semantics. The durable state store builds its checkpoints on
// WriteFileAtomic; anything else in the tree that must never leave a
// half-written file behind (trace exports, config snapshots) should use it
// too instead of a bare os.WriteFile.
package fsio

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path with all-or-nothing visibility: the
// bytes go to a temporary file in the same directory, are fsynced, and the
// file is renamed over path; finally the directory itself is fsynced so the
// rename survives a crash. Readers either see the complete old file or the
// complete new one, never a prefix.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("fsio: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err = tmp.Write(data); err != nil {
		return fmt.Errorf("fsio: writing %s: %w", path, err)
	}
	if err = tmp.Chmod(perm); err != nil {
		return fmt.Errorf("fsio: %w", err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("fsio: syncing %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("fsio: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("fsio: %w", err)
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory so that entry mutations inside it (renames,
// creates, removes) are durable.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("fsio: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("fsio: syncing directory %s: %w", dir, err)
	}
	return nil
}
