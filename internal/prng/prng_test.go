package prng

import (
	"testing"
	"testing/quick"
)

func TestMaxValue(t *testing.T) {
	cases := []struct {
		bits uint
		want uint64
	}{
		{1, 1},
		{8, 255},
		{32, 1<<32 - 1},
		{63, 1<<63 - 1},
		{64, ^uint64(0)},
	}
	for _, c := range cases {
		if got := MaxValue(c.bits); got != c.want {
			t.Errorf("MaxValue(%d) = %d, want %d", c.bits, got, c.want)
		}
	}
}

func TestMaxValuePanics(t *testing.T) {
	for _, bits := range []uint{0, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MaxValue(%d) did not panic", bits)
				}
			}()
			MaxValue(bits)
		}()
	}
}

// allSources builds one instance of every generator family with a fixed seed.
func allSources(seed uint64) map[string]Source {
	return map[string]Source{
		"splitmix64":     NewSplitMix64(seed),
		"xorshift64star": NewXorshift64Star(seed),
		"pcg32":          NewPCG32(seed),
		"lcg64":          NewLCG64(seed),
	}
}

func TestDeterminism(t *testing.T) {
	for name, src := range allSources(12345) {
		first := make([]uint64, 100)
		for i := range first {
			first[i] = src.Next()
		}
		src.Reset()
		for i := range first {
			if got := src.Next(); got != first[i] {
				t.Fatalf("%s: value %d after Reset = %d, want %d", name, i, got, first[i])
			}
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	for name := range allSources(0) {
		a := allSources(1)[name]
		b := allSources(2)[name]
		same := 0
		for i := 0; i < 100; i++ {
			if a.Next() == b.Next() {
				same++
			}
		}
		if same > 2 {
			t.Errorf("%s: seeds 1 and 2 agree on %d/100 outputs", name, same)
		}
	}
}

func TestSeedAccessor(t *testing.T) {
	for name, src := range allSources(77) {
		if src.Seed() != 77 {
			t.Errorf("%s: Seed() = %d, want 77", name, src.Seed())
		}
	}
}

func TestSplitMix64IndexedMatchesSequential(t *testing.T) {
	s := NewSplitMix64(42)
	seq := make([]uint64, 50)
	for i := range seq {
		seq[i] = s.Next()
	}
	for i, want := range seq {
		if got := s.At(uint64(i)); got != want {
			t.Fatalf("At(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestSplitMix64AtDoesNotDisturbSequence(t *testing.T) {
	s := NewSplitMix64(7)
	a := s.Next()
	_ = s.At(100)
	b := s.Next()
	s2 := NewSplitMix64(7)
	if s2.Next() != a || s2.Next() != b {
		t.Fatal("At() disturbed the sequential position")
	}
}

func TestPCG32Is32Bit(t *testing.T) {
	p := NewPCG32(99)
	for i := 0; i < 1000; i++ {
		if v := p.Next(); v > MaxValue(32) {
			t.Fatalf("PCG32 output %d exceeds 32 bits", v)
		}
	}
}

func TestXorshiftZeroSeed(t *testing.T) {
	x := NewXorshift64Star(0)
	if v := x.Next(); v == 0 {
		t.Fatal("zero seed produced a stuck all-zero state")
	}
}

func TestTruncate(t *testing.T) {
	src := NewSplitMix64(5)
	tr := Truncate(NewSplitMix64(5), 16)
	if tr.Bits() != 16 {
		t.Fatalf("Bits() = %d, want 16", tr.Bits())
	}
	for i := 0; i < 100; i++ {
		full := src.Next()
		got := tr.Next()
		if want := full >> 48; got != want {
			t.Fatalf("value %d: got %d, want high 16 bits %d", i, got, want)
		}
		if got > MaxValue(16) {
			t.Fatalf("truncated value %d out of range", got)
		}
	}
}

func TestTruncateIdentity(t *testing.T) {
	src := NewSplitMix64(5)
	if Truncate(src, 64) != Source(src) {
		t.Fatal("Truncate to native width should return the source unchanged")
	}
}

func TestTruncatePreservesIndexed(t *testing.T) {
	tr := Truncate(NewSplitMix64(5), 32)
	idx, ok := tr.(Indexed)
	if !ok {
		t.Fatal("truncated SplitMix64 lost indexed access")
	}
	want := NewSplitMix64(5).At(9) >> 32
	if got := idx.At(9); got != want {
		t.Fatalf("At(9) = %d, want %d", got, want)
	}
}

func TestTruncatePanics(t *testing.T) {
	for _, bits := range []uint{0, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Truncate(src, %d) did not panic", bits)
				}
			}()
			Truncate(NewSplitMix64(1), bits)
		}()
	}
}

func TestNewByKind(t *testing.T) {
	for _, kind := range []Kind{KindSplitMix64, KindXorshift64Star, KindPCG32, KindLCG64} {
		src, err := NewByKind(kind, 1, 0)
		if err != nil {
			t.Fatalf("NewByKind(%s): %v", kind, err)
		}
		if src.Bits() == 0 {
			t.Fatalf("NewByKind(%s): zero width", kind)
		}
	}
	if _, err := NewByKind("nope", 1, 0); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := NewByKind(KindPCG32, 1, 64); err == nil {
		t.Fatal("64-bit truncation of a 32-bit source accepted")
	}
	src, err := NewByKind(KindSplitMix64, 9, 32)
	if err != nil {
		t.Fatal(err)
	}
	if src.Bits() != 32 {
		t.Fatalf("width = %d, want 32", src.Bits())
	}
}

func TestCachedMatchesSequential(t *testing.T) {
	direct := NewXorshift64Star(3)
	want := make([]uint64, 30)
	for i := range want {
		want[i] = direct.Next()
	}
	c := NewCached(NewXorshift64Star(3))
	// Access out of order.
	for _, i := range []uint64{29, 0, 15, 7, 29} {
		if got := c.At(i); got != want[i] {
			t.Fatalf("At(%d) = %d, want %d", i, got, want[i])
		}
	}
}

func TestCachedResetReplays(t *testing.T) {
	c := NewCached(NewPCG32(4))
	a := c.At(5)
	c.Reset()
	if got := c.At(5); got != a {
		t.Fatalf("after Reset At(5) = %d, want %d", got, a)
	}
}

func TestCachedNext(t *testing.T) {
	c := NewCached(NewPCG32(4))
	v0 := c.Next()
	if got := c.At(0); got != v0 {
		t.Fatalf("At(0) = %d, want %d (value returned by Next)", got, v0)
	}
}

func TestEnsureIndexed(t *testing.T) {
	sm := NewSplitMix64(1)
	if EnsureIndexed(sm) != Indexed(sm) {
		t.Fatal("EnsureIndexed wrapped a natively indexed source")
	}
	if _, ok := EnsureIndexed(NewPCG32(1)).(*Cached); !ok {
		t.Fatal("EnsureIndexed did not wrap a sequential source")
	}
}

func TestHash64Injective(t *testing.T) {
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 10000; i++ {
		h := Hash64(i)
		if prev, dup := seen[h]; dup {
			t.Fatalf("Hash64 collision: %d and %d -> %d", prev, i, h)
		}
		seen[h] = i
	}
}

func TestCombineOrderMatters(t *testing.T) {
	if Combine(1, 2) == Combine(2, 1) {
		t.Fatal("Combine should not be symmetric")
	}
}

// TestUniformityModN checks the property SCADDAR relies on: X mod N is close
// to uniform for the quality generators. A crude tolerance suffices here;
// rigorous chi-square testing lives in the stats package tests.
func TestUniformityModN(t *testing.T) {
	const (
		n       = 7
		samples = 70000
	)
	for name, src := range allSources(2024) {
		if name == "lcg64" {
			continue // kept as a deliberately weak comparator
		}
		counts := make([]int, n)
		for i := 0; i < samples; i++ {
			counts[src.Next()%n]++
		}
		want := samples / n
		for d, c := range counts {
			if c < want*9/10 || c > want*11/10 {
				t.Errorf("%s: disk %d count %d deviates >10%% from %d", name, d, c, want)
			}
		}
	}
}

// TestQuickTruncateRange property-tests that truncation always respects the
// requested width.
func TestQuickTruncateRange(t *testing.T) {
	f := func(seed uint64, bitsRaw uint8) bool {
		bits := uint(bitsRaw)%64 + 1
		tr := Truncate(NewSplitMix64(seed), bits)
		for i := 0; i < 20; i++ {
			if tr.Next() > MaxValue(bits) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
