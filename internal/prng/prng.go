// Package prng provides the reproducible pseudo-random number sources that
// SCADDAR's pseudo-random placement is built on.
//
// The paper assumes a function p_r(s_m) that, for a per-object seed s_m,
// returns a reproducible sequence of b-bit random numbers; the i-th value of
// the sequence is X(i)_0, the block's random number before any scaling
// operation. This package supplies several such generators, all deterministic
// in their seed and implemented from first principles (no math/rand), so the
// exact sequences are stable across Go releases:
//
//   - SplitMix64: counter-based, supports O(1) random access to the i-th
//     value (the default for SCADDAR access functions).
//   - Xorshift64Star: fast sequential 64-bit generator.
//   - PCG32: sequential 32-bit generator (used for the paper's b=32
//     experiments).
//   - LCG64: the classic MMIX linear congruential generator, kept as a
//     deliberately weak comparator for randomness-quality tests.
//
// All generators implement Source; those that can jump directly to the i-th
// output also implement Indexed. Truncate adapts any Source to a smaller
// output width b, matching the paper's "p_r(s) returns a b-bit random number"
// with R = 2^b - 1.
package prng

// Source is a deterministic stream of b-bit pseudo-random values.
//
// A Source with Bits() == b yields values uniformly distributed over
// [0, 2^b - 1]. Two Sources of the same concrete type and seed produce
// identical sequences.
type Source interface {
	// Next returns the next value of the sequence.
	Next() uint64
	// Bits reports the output width b; values are in [0, 2^b-1].
	Bits() uint
	// Seed reports the seed the source was created with.
	Seed() uint64
	// Reset rewinds the source to the beginning of its sequence.
	Reset()
}

// Indexed is a Source that can produce its i-th output in O(1) without
// generating the preceding values. SCADDAR access functions prefer Indexed
// sources: locating block i then costs O(j) arithmetic for j scaling
// operations instead of O(i + j).
type Indexed interface {
	Source
	// At returns the i-th value of the sequence (0-based). It does not
	// disturb the sequential position used by Next/Reset.
	At(i uint64) uint64
}

// MaxValue returns R = 2^bits - 1, the largest value a source of the given
// width can return. bits must be in [1, 64].
func MaxValue(bits uint) uint64 {
	if bits == 0 || bits > 64 {
		panic("prng: bits out of range [1,64]")
	}
	if bits == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << bits) - 1
}

// mix64 is the SplitMix64 finalizer (Steele, Lea, Flood 2014; same constants
// as Java's SplittableRandom). It is a high-quality 64-bit permutation.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// goldenGamma is the odd fractional part of the golden ratio scaled to 64
// bits; it is the canonical SplitMix64 stream increment.
const goldenGamma = 0x9e3779b97f4a7c15

// Hash64 applies the SplitMix64 finalizer to x: a fast, high-quality 64-bit
// permutation usable as a non-cryptographic hash.
func Hash64(x uint64) uint64 { return mix64(x) }

// Combine hashes two 64-bit values into one, for keying on composite
// identities such as (object seed, block index).
func Combine(a, b uint64) uint64 { return mix64(a ^ mix64(b+goldenGamma)) }

// SplitMix64 is a counter-based generator: output i is a mix of
// seed + (i+1)*goldenGamma. It passes BigCrush-style batteries and, being
// counter-based, supports O(1) indexed access.
type SplitMix64 struct {
	seed uint64
	i    uint64
}

// NewSplitMix64 returns a SplitMix64 source for the given seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{seed: seed}
}

// Next returns the next 64-bit value.
func (s *SplitMix64) Next() uint64 {
	v := s.At(s.i)
	s.i++
	return v
}

// At returns the i-th value of the sequence in O(1).
func (s *SplitMix64) At(i uint64) uint64 {
	return mix64(s.seed + (i+1)*goldenGamma)
}

// Bits reports the 64-bit output width.
func (s *SplitMix64) Bits() uint { return 64 }

// Seed reports the construction seed.
func (s *SplitMix64) Seed() uint64 { return s.seed }

// Reset rewinds the sequential position to the first value.
func (s *SplitMix64) Reset() { s.i = 0 }

// Xorshift64Star is Marsaglia's xorshift64 followed by a multiplicative
// scramble (Vigna 2016). Sequential only.
type Xorshift64Star struct {
	seed  uint64
	state uint64
}

// NewXorshift64Star returns a sequential 64-bit source. A zero seed is
// remapped to a fixed non-zero constant because the all-zero state is a
// fixed point of the xorshift transition.
func NewXorshift64Star(seed uint64) *Xorshift64Star {
	x := &Xorshift64Star{seed: seed}
	x.Reset()
	return x
}

// Next returns the next 64-bit value.
func (x *Xorshift64Star) Next() uint64 {
	x.state ^= x.state >> 12
	x.state ^= x.state << 25
	x.state ^= x.state >> 27
	return x.state * 0x2545f4914f6cdd1d
}

// Bits reports the 64-bit output width.
func (x *Xorshift64Star) Bits() uint { return 64 }

// Seed reports the construction seed.
func (x *Xorshift64Star) Seed() uint64 { return x.seed }

// Reset rewinds the source to the beginning of its sequence.
func (x *Xorshift64Star) Reset() {
	x.state = x.seed
	if x.state == 0 {
		x.state = 0x853c49e6748fea9b
	}
}

// PCG32 is O'Neill's PCG-XSH-RR 64/32 generator: a 64-bit LCG state with a
// permuted 32-bit output. It is the package's native 32-bit source, used for
// the paper's b=32 simulation setting.
type PCG32 struct {
	seed  uint64
	state uint64
}

const (
	pcgMult = 6364136223846793005
	pcgInc  = 1442695040888963407 // must be odd
)

// NewPCG32 returns a sequential 32-bit source.
func NewPCG32(seed uint64) *PCG32 {
	p := &PCG32{seed: seed}
	p.Reset()
	return p
}

// Next returns the next 32-bit value (in the low 32 bits of the result).
func (p *PCG32) Next() uint64 {
	old := p.state
	p.state = old*pcgMult + pcgInc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint(old >> 59)
	return uint64(xorshifted>>rot | xorshifted<<((32-rot)&31))
}

// Bits reports the 32-bit output width.
func (p *PCG32) Bits() uint { return 32 }

// Seed reports the construction seed.
func (p *PCG32) Seed() uint64 { return p.seed }

// Reset rewinds the source to the beginning of its sequence.
func (p *PCG32) Reset() {
	p.state = 0
	p.state = p.state*pcgMult + pcgInc
	p.state += p.seed
	p.state = p.state*pcgMult + pcgInc
}

// LCG64 is the MMIX linear congruential generator (Knuth). Its low bits have
// short periods, which makes it a useful *bad* comparator in uniformity
// tests: SCADDAR's D = X mod N is exactly the kind of usage that exposes a
// weak LCG.
type LCG64 struct {
	seed  uint64
	state uint64
}

// NewLCG64 returns a sequential 64-bit LCG source.
func NewLCG64(seed uint64) *LCG64 {
	l := &LCG64{seed: seed}
	l.Reset()
	return l
}

// Next returns the next 64-bit value.
func (l *LCG64) Next() uint64 {
	l.state = l.state*6364136223846793005 + 1442695040888963407
	return l.state
}

// Bits reports the 64-bit output width.
func (l *LCG64) Bits() uint { return 64 }

// Seed reports the construction seed.
func (l *LCG64) Seed() uint64 { return l.seed }

// Reset rewinds the source to the beginning of its sequence.
func (l *LCG64) Reset() { l.state = l.seed }

// Truncated adapts a wider Source to a b-bit Source by keeping the high b
// bits of each output. High bits are used (rather than low) because every
// generator in this package has stronger high bits; for an LCG the low bits
// are catastrophically weak.
type Truncated struct {
	src  Source
	bits uint
}

// Truncate returns a Source of the given width backed by src. bits must be
// in [1, src.Bits()]. If src already has the requested width it is returned
// unchanged.
func Truncate(src Source, bits uint) Source {
	if bits == 0 || bits > src.Bits() {
		panic("prng: truncation width out of range")
	}
	if bits == src.Bits() {
		return src
	}
	if idx, ok := src.(Indexed); ok {
		return &truncatedIndexed{Truncated{src: idx, bits: bits}}
	}
	return &Truncated{src: src, bits: bits}
}

// Next returns the next truncated value.
func (t *Truncated) Next() uint64 { return t.src.Next() >> (t.src.Bits() - t.bits) }

// Bits reports the truncated output width.
func (t *Truncated) Bits() uint { return t.bits }

// Seed reports the seed of the underlying source.
func (t *Truncated) Seed() uint64 { return t.src.Seed() }

// Reset rewinds the underlying source.
func (t *Truncated) Reset() { t.src.Reset() }

type truncatedIndexed struct{ Truncated }

// At returns the i-th truncated value in O(1).
func (t *truncatedIndexed) At(i uint64) uint64 {
	return t.src.(Indexed).At(i) >> (t.src.Bits() - t.bits)
}

// Kind names a generator family for NewByKind.
type Kind string

// Generator kinds accepted by NewByKind.
const (
	KindSplitMix64     Kind = "splitmix64"
	KindXorshift64Star Kind = "xorshift64star"
	KindPCG32          Kind = "pcg32"
	KindLCG64          Kind = "lcg64"
)

// NewByKind constructs a source of the named family, truncated to the given
// width. It reports an error for unknown kinds or impossible widths, which
// makes it convenient for wiring CLI flags.
func NewByKind(kind Kind, seed uint64, bits uint) (Source, error) {
	var src Source
	switch kind {
	case KindSplitMix64:
		src = NewSplitMix64(seed)
	case KindXorshift64Star:
		src = NewXorshift64Star(seed)
	case KindPCG32:
		src = NewPCG32(seed)
	case KindLCG64:
		src = NewLCG64(seed)
	default:
		return nil, &UnknownKindError{Kind: kind}
	}
	if bits > src.Bits() {
		return nil, &WidthError{Kind: kind, Requested: bits, Native: src.Bits()}
	}
	if bits == 0 {
		bits = src.Bits()
	}
	return Truncate(src, bits), nil
}

// UnknownKindError reports a generator family name that NewByKind does not
// recognize.
type UnknownKindError struct{ Kind Kind }

func (e *UnknownKindError) Error() string {
	return "prng: unknown generator kind " + string(e.Kind)
}

// WidthError reports a truncation width exceeding the generator's native
// output width.
type WidthError struct {
	Kind      Kind
	Requested uint
	Native    uint
}

func (e *WidthError) Error() string {
	return "prng: " + string(e.Kind) + " cannot produce the requested width"
}
