package prng

import "sync"

// Cached adapts any sequential Source into an Indexed one by memoizing the
// values generated so far. The paper's access function needs X(i)_0 — the
// i-th value of the object's pseudo-random sequence — for arbitrary i; with
// a purely sequential generator that requires either re-iterating from the
// seed (O(i)) or remembering the prefix. Cached remembers the prefix, so the
// first access to block i costs O(i) and subsequent accesses cost O(1).
//
// Counter-based generators (SplitMix64) implement Indexed natively and do
// not need this adapter; EnsureIndexed picks whichever applies.
type Cached struct {
	src  Source
	vals []uint64
}

// NewCached wraps src. The source is Reset so the cache is aligned with the
// beginning of the sequence; the caller must not use src directly afterward.
func NewCached(src Source) *Cached {
	src.Reset()
	return &Cached{src: src}
}

// At returns the i-th value of the underlying sequence, generating and
// memoizing any missing prefix.
func (c *Cached) At(i uint64) uint64 {
	for uint64(len(c.vals)) <= i {
		c.vals = append(c.vals, c.src.Next())
	}
	return c.vals[i]
}

// Next returns the value after the highest one generated so far, mirroring
// sequential use of the underlying source.
func (c *Cached) Next() uint64 {
	v := c.src.Next()
	c.vals = append(c.vals, v)
	return v
}

// Bits reports the output width of the underlying source.
func (c *Cached) Bits() uint { return c.src.Bits() }

// Seed reports the seed of the underlying source.
func (c *Cached) Seed() uint64 { return c.src.Seed() }

// Reset rewinds the sequential position; the memoized prefix is kept, so
// previously generated values are replayed identically.
func (c *Cached) Reset() {
	c.src.Reset()
	c.vals = c.vals[:0]
}

// EnsureIndexed returns src itself when it already supports O(1) indexed
// access and a caching adapter otherwise.
func EnsureIndexed(src Source) Indexed {
	if idx, ok := src.(Indexed); ok {
		return idx
	}
	return NewCached(src)
}

// SyncCached is a Cached whose At is safe for concurrent use.
type SyncCached struct {
	mu sync.Mutex
	c  *Cached
}

// NewSyncCached wraps src with a memoizing, mutex-guarded indexed view.
func NewSyncCached(src Source) *SyncCached {
	return &SyncCached{c: NewCached(src)}
}

// At returns the i-th value; safe for concurrent callers.
func (s *SyncCached) At(i uint64) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c.At(i)
}

// Next returns the next sequential value; safe for concurrent callers.
func (s *SyncCached) Next() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c.Next()
}

// Bits reports the output width of the underlying source.
func (s *SyncCached) Bits() uint { return s.c.Bits() }

// Seed reports the seed of the underlying source.
func (s *SyncCached) Seed() uint64 { return s.c.Seed() }

// Reset rewinds the underlying sequence; safe for concurrent callers.
func (s *SyncCached) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.c.Reset()
}

// EnsureConcurrentIndexed returns an Indexed view of src whose At is safe
// for concurrent use: counter-based generators (whose At is a pure
// function) are returned as-is, everything else is wrapped in a SyncCached.
func EnsureConcurrentIndexed(src Source) Indexed {
	switch v := src.(type) {
	case *SplitMix64:
		return v
	case *truncatedIndexed:
		if _, pure := v.src.(*SplitMix64); pure {
			return v
		}
	}
	return NewSyncCached(src)
}
