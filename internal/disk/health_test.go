package disk

import (
	"errors"
	"testing"
)

func TestHealthLifecycle(t *testing.T) {
	d := New(0, Cheetah73)
	if d.Health() != Healthy {
		t.Fatalf("new disk health = %s, want healthy", d.Health())
	}
	for _, b := range []BlockID{1, 2, 3} {
		if err := d.Store(b); err != nil {
			t.Fatal(err)
		}
	}
	lost, err := d.Fail()
	if err != nil {
		t.Fatal(err)
	}
	if len(lost) != 3 || d.Len() != 0 {
		t.Fatalf("Fail lost %d blocks and kept %d; want 3 lost, 0 kept", len(lost), d.Len())
	}
	if d.Health() != Failed {
		t.Fatalf("health after Fail = %s", d.Health())
	}
	if err := d.StartRebuild(); err != nil {
		t.Fatal(err)
	}
	if d.Health() != Rebuilding {
		t.Fatalf("health after StartRebuild = %s", d.Health())
	}
	// A rebuilding disk absorbs restored blocks.
	if err := d.Store(1); err != nil {
		t.Fatalf("store on rebuilding disk: %v", err)
	}
	if err := d.FinishRebuild(); err != nil {
		t.Fatal(err)
	}
	if d.Health() != Healthy {
		t.Fatalf("health after FinishRebuild = %s", d.Health())
	}
}

func TestHealthTransitionErrorsTyped(t *testing.T) {
	d := New(0, Cheetah73)
	if _, err := d.Fail(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Fail(); !errors.Is(err, ErrBadHealthTransition) {
		t.Errorf("double Fail: %v; want ErrBadHealthTransition", err)
	}
	if err := d.FinishRebuild(); !errors.Is(err, ErrBadHealthTransition) {
		t.Errorf("FinishRebuild on failed disk: %v; want ErrBadHealthTransition", err)
	}
	if err := d.Store(9); !errors.Is(err, ErrDiskFailed) {
		t.Errorf("Store on failed disk: %v; want ErrDiskFailed", err)
	}
	if d.Read(9) {
		t.Error("Read on failed, wiped disk reported the block present")
	}
	h := New(1, Cheetah73)
	if err := h.StartRebuild(); !errors.Is(err, ErrBadHealthTransition) {
		t.Errorf("StartRebuild on healthy disk: %v; want ErrBadHealthTransition", err)
	}
	if err := h.FinishRebuild(); !errors.Is(err, ErrBadHealthTransition) {
		t.Errorf("FinishRebuild on healthy disk: %v; want ErrBadHealthTransition", err)
	}
}

func TestHealthString(t *testing.T) {
	cases := map[Health]string{Healthy: "healthy", Failed: "failed", Rebuilding: "rebuilding", Health(9): "health(9)"}
	for h, want := range cases {
		if h.String() != want {
			t.Errorf("Health(%d).String() = %q, want %q", int(h), h.String(), want)
		}
	}
}

func TestArrayAddZeroDisks(t *testing.T) {
	a, err := NewArray(2, Cheetah73)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Add(0, Cheetah73); !errors.Is(err, ErrAddNone) {
		t.Errorf("Add(0): %v; want ErrAddNone", err)
	}
	if _, err := a.Add(-3, Cheetah73); !errors.Is(err, ErrAddNone) {
		t.Errorf("Add(-3): %v; want ErrAddNone", err)
	}
	if a.N() != 2 {
		t.Errorf("rejected Add changed the array to %d disks", a.N())
	}
}

func TestArrayRemoveNoneAndAll(t *testing.T) {
	a, err := NewArray(3, Cheetah73)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Remove(); !errors.Is(err, ErrRemoveNone) {
		t.Errorf("Remove(): %v; want ErrRemoveNone", err)
	}
	if _, err := a.Remove(0, 1, 2); !errors.Is(err, ErrRemoveAll) {
		t.Errorf("Remove(all): %v; want ErrRemoveAll", err)
	}
	// Naming more indices than disks is also a remove-all, even with junk
	// indices in the list — the count check comes first.
	if _, err := a.Remove(0, 1, 2, 99); !errors.Is(err, ErrRemoveAll) {
		t.Errorf("Remove(>N): %v; want ErrRemoveAll", err)
	}
	if a.N() != 3 {
		t.Errorf("rejected Remove changed the array to %d disks", a.N())
	}
}

func TestArrayRemoveMidRebuild(t *testing.T) {
	a, err := NewArray(3, Cheetah73)
	if err != nil {
		t.Fatal(err)
	}
	d, err := a.Disk(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Fail(); err != nil {
		t.Fatal(err)
	}
	// A failed disk can be removed (pull the dead hardware)...
	if err := d.StartRebuild(); err != nil {
		t.Fatal(err)
	}
	// ...but once its replacement is rebuilding, removal is refused: it
	// would discard the blocks already re-materialized.
	if _, err := a.Remove(1); !errors.Is(err, ErrDiskRebuilding) {
		t.Errorf("Remove(rebuilding): %v; want ErrDiskRebuilding", err)
	}
	if a.N() != 3 {
		t.Errorf("rejected Remove changed the array to %d disks", a.N())
	}
	if err := d.FinishRebuild(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Remove(1); err != nil {
		t.Errorf("Remove after rebuild completed: %v", err)
	}
	if a.N() != 2 {
		t.Errorf("array has %d disks after removal, want 2", a.N())
	}
}

func TestArrayDegraded(t *testing.T) {
	a, err := NewArray(2, Cheetah73)
	if err != nil {
		t.Fatal(err)
	}
	if a.Degraded() {
		t.Fatal("fresh array reports degraded")
	}
	d, err := a.Disk(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Fail(); err != nil {
		t.Fatal(err)
	}
	if !a.Degraded() {
		t.Error("array with a failed disk not degraded")
	}
	if err := d.StartRebuild(); err != nil {
		t.Fatal(err)
	}
	if !a.Degraded() {
		t.Error("array with a rebuilding disk not degraded")
	}
	if err := d.FinishRebuild(); err != nil {
		t.Fatal(err)
	}
	if a.Degraded() {
		t.Error("fully healthy array still degraded")
	}
}

func TestRecordFailoverRead(t *testing.T) {
	d := New(0, Cheetah73)
	if err := d.Store(5); err != nil {
		t.Fatal(err)
	}
	d.Read(5)
	d.RecordFailoverRead()
	reads, _, _ := d.RoundLoad()
	if reads != 2 {
		t.Errorf("reads = %d after one direct and one failover read; want 2", reads)
	}
}
