package disk

import (
	"testing"
	"time"
)

func TestProfileRotationalLatency(t *testing.T) {
	// 10000 RPM: one revolution is 6 ms, half is 3 ms.
	if got := Cheetah73.RotationalLatency(); got != 3*time.Millisecond {
		t.Errorf("Cheetah73 rotational latency = %v, want 3ms", got)
	}
	zero := Profile{RPM: 0}
	if got := zero.RotationalLatency(); got != 0 {
		t.Errorf("zero-RPM latency = %v, want 0", got)
	}
}

func TestProfileServiceTime(t *testing.T) {
	// Cheetah73: 4.9ms seek + 3ms rotation + 256KiB/53MiB/s ≈ 4.72ms.
	st := Cheetah73.ServiceTime(256 << 10)
	if st < 12*time.Millisecond || st > 13*time.Millisecond {
		t.Errorf("service time = %v, want ~12.6ms", st)
	}
}

func TestProfileBlocksPerRound(t *testing.T) {
	// ~12.6ms per block -> 79 blocks per 1s round.
	got := Cheetah73.BlocksPerRound(time.Second, 256<<10)
	if got < 75 || got > 85 {
		t.Errorf("blocks per round = %d, want ~79", got)
	}
	if got := (Profile{}).BlocksPerRound(time.Second, 1); got != 0 {
		t.Errorf("degenerate profile blocks per round = %d, want 0", got)
	}
}

func TestProfileCapacityBlocks(t *testing.T) {
	if got := Cheetah73.CapacityBlocks(256 << 10); got != int((73<<30)/(256<<10)) {
		t.Errorf("capacity blocks = %d", got)
	}
	if got := Cheetah73.CapacityBlocks(0); got != 0 {
		t.Errorf("zero block size capacity = %d, want 0", got)
	}
}

func TestDiskStoreRemove(t *testing.T) {
	d := New(7, Cheetah73)
	if d.ID() != 7 {
		t.Fatalf("ID = %d, want 7", d.ID())
	}
	if err := d.Store(42); err != nil {
		t.Fatal(err)
	}
	if err := d.Store(42); err == nil {
		t.Fatal("duplicate store accepted")
	}
	if !d.Has(42) || d.Len() != 1 {
		t.Fatal("stored block not visible")
	}
	if err := d.Remove(42); err != nil {
		t.Fatal(err)
	}
	if err := d.Remove(42); err == nil {
		t.Fatal("double remove accepted")
	}
	if d.Has(42) || d.Len() != 0 {
		t.Fatal("removed block still visible")
	}
}

func TestDiskReadAccounting(t *testing.T) {
	d := New(0, Cheetah73)
	d.Store(1)
	if d.Read(2) {
		t.Fatal("read of absent block succeeded")
	}
	if !d.Read(1) {
		t.Fatal("read of present block failed")
	}
	d.RecordMigration()
	reads, writes, migrated := d.RoundLoad()
	if reads != 1 || writes != 1 || migrated != 1 {
		t.Fatalf("round load = %d/%d/%d, want 1/1/1", reads, writes, migrated)
	}
	d.ResetRound()
	reads, writes, migrated = d.RoundLoad()
	if reads != 0 || writes != 0 || migrated != 0 {
		t.Fatal("ResetRound did not clear counters")
	}
}

func TestDiskBlocks(t *testing.T) {
	d := New(0, Cheetah73)
	want := map[BlockID]bool{1: true, 5: true, 9: true}
	for b := range want {
		d.Store(b)
	}
	got := d.Blocks()
	if len(got) != 3 {
		t.Fatalf("Blocks() returned %d, want 3", len(got))
	}
	for _, b := range got {
		if !want[b] {
			t.Fatalf("unexpected block %d", b)
		}
	}
}

func TestNewArrayValidation(t *testing.T) {
	if _, err := NewArray(0, Cheetah73); err == nil {
		t.Error("empty array accepted")
	}
	a, err := NewArray(4, Cheetah73)
	if err != nil || a.N() != 4 {
		t.Fatalf("array: %v", err)
	}
	for i := 0; i < 4; i++ {
		d, err := a.Disk(i)
		if err != nil || d.ID() != i {
			t.Fatalf("disk %d: id=%v err=%v", i, d, err)
		}
	}
	if _, err := a.Disk(4); err == nil {
		t.Error("out-of-range disk accepted")
	}
	if _, err := a.Disk(-1); err == nil {
		t.Error("negative disk accepted")
	}
}

func TestArrayAdd(t *testing.T) {
	a, _ := NewArray(2, Cheetah73)
	added, err := a.Add(3, Barracuda180)
	if err != nil {
		t.Fatal(err)
	}
	if len(added) != 3 || a.N() != 5 {
		t.Fatalf("added %d, N=%d", len(added), a.N())
	}
	// New disks get fresh stable IDs and the requested profile.
	if added[0].ID() != 2 || added[2].ID() != 4 {
		t.Fatalf("added IDs = %d..%d, want 2..4", added[0].ID(), added[2].ID())
	}
	if added[0].Profile().Name != Barracuda180.Name {
		t.Fatal("added disk has wrong profile")
	}
	if _, err := a.Add(0, Cheetah73); err == nil {
		t.Error("add of zero disks accepted")
	}
}

func TestArrayRemove(t *testing.T) {
	a, _ := NewArray(5, Cheetah73)
	d3, _ := a.Disk(3)
	d3.Store(77)
	removed, err := a.Remove(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 2 || a.N() != 3 {
		t.Fatalf("removed %d, N=%d", len(removed), a.N())
	}
	// Removed disks keep their blocks for draining.
	found := false
	for _, d := range removed {
		if d.Has(77) {
			found = true
		}
	}
	if !found {
		t.Fatal("removed disk lost its blocks")
	}
	// Survivors compact in order: IDs 0, 2, 4.
	wantIDs := []int{0, 2, 4}
	for i, want := range wantIDs {
		d, _ := a.Disk(i)
		if d.ID() != want {
			t.Fatalf("logical %d has ID %d, want %d", i, d.ID(), want)
		}
	}
}

func TestArrayRemoveValidation(t *testing.T) {
	a, _ := NewArray(3, Cheetah73)
	if _, err := a.Remove(); err == nil {
		t.Error("empty removal accepted")
	}
	if _, err := a.Remove(0, 1, 2); err == nil {
		t.Error("removing all disks accepted")
	}
	if _, err := a.Remove(5); err == nil {
		t.Error("out-of-range removal accepted")
	}
	if _, err := a.Remove(1, 1); err == nil {
		t.Error("duplicate removal accepted")
	}
	if a.N() != 3 {
		t.Fatal("failed removals mutated the array")
	}
}

func TestArrayLoadsAndTotal(t *testing.T) {
	a, _ := NewArray(3, Cheetah73)
	for i := 0; i < 3; i++ {
		d, _ := a.Disk(i)
		for b := 0; b <= i; b++ {
			d.Store(BlockID(i*10 + b))
		}
	}
	loads := a.Loads()
	if loads[0] != 1 || loads[1] != 2 || loads[2] != 3 {
		t.Fatalf("loads = %v, want [1 2 3]", loads)
	}
	if a.TotalBlocks() != 6 {
		t.Fatalf("total = %d, want 6", a.TotalBlocks())
	}
	a.ResetRounds()
	for i := 0; i < 3; i++ {
		d, _ := a.Disk(i)
		if r, w, m := d.RoundLoad(); r != 0 || w != 0 || m != 0 {
			t.Fatal("ResetRounds did not clear counters")
		}
	}
}
