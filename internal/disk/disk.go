// Package disk models the magnetic disks a continuous-media server stores
// its blocks on: capacity in blocks, a seek/rotation/transfer service-time
// model, and per-disk block inventories. The model is deliberately simple —
// a fixed average seek, half-rotation latency, and linear transfer — which
// is the standard first-order model for round-based CM retrieval scheduling
// and is all the SCADDAR experiments need: the paper's claims are about
// which blocks live where and how many must move, not about head-scheduling
// micro-behaviour.
//
// Profiles of typical circa-2001 drives (the paper's hardware era) and a
// modern comparator are provided so examples and benchmarks can speak in
// real units.
package disk

import (
	"errors"
	"fmt"
	"time"

	"scaddar/internal/bufpool"
)

// Typed errors for array surgery and health transitions, so callers can
// distinguish operational conditions (a disk mid-rebuild, a degenerate
// removal) from programming errors with errors.Is.
var (
	// ErrAddNone is returned when an Add names a non-positive disk count.
	ErrAddNone = errors.New("disk: add of fewer than 1 disk")
	// ErrRemoveNone is returned when a Remove names no disks.
	ErrRemoveNone = errors.New("disk: removal of empty disk group")
	// ErrRemoveAll is returned when a Remove would leave an empty array.
	ErrRemoveAll = errors.New("disk: removal would leave no disks")
	// ErrDiskRebuilding is returned when a Remove names a disk whose rebuild
	// is still in progress — pulling it would discard the blocks already
	// re-materialized and restart the repair from nothing.
	ErrDiskRebuilding = errors.New("disk: disk is mid-rebuild")
	// ErrDiskFailed is returned when a block is stored on a failed disk.
	ErrDiskFailed = errors.New("disk: disk has failed")
	// ErrBadHealthTransition is returned for invalid health state changes
	// (failing a failed disk, rebuilding a healthy one, ...).
	ErrBadHealthTransition = errors.New("disk: invalid health transition")
)

// Health is a disk's position in the failure/repair lifecycle:
// Healthy → Failed (fault) → Rebuilding (replacement arrived) → Healthy
// (re-materialization complete).
type Health int

// Health states.
const (
	// Healthy disks serve reads and writes normally.
	Healthy Health = iota
	// Failed disks lost their contents and serve nothing; reads targeting
	// them must fail over to redundant copies.
	Failed
	// Rebuilding disks are empty replacements being re-filled from
	// redundancy; they absorb writes and serve reads for blocks already
	// restored.
	Rebuilding
)

// String names the health state.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Failed:
		return "failed"
	case Rebuilding:
		return "rebuilding"
	default:
		return fmt.Sprintf("health(%d)", int(h))
	}
}

// BlockID identifies a stored block. The continuous-media layer composes it
// from (object, index); this package treats it as opaque.
type BlockID uint64

// Profile describes a disk model's performance characteristics.
type Profile struct {
	// Name of the disk model.
	Name string
	// CapacityBytes is the formatted capacity.
	CapacityBytes int64
	// AvgSeek is the average seek time.
	AvgSeek time.Duration
	// RPM is the spindle speed, used for the half-rotation latency.
	RPM int
	// TransferBytesPerSec is the sustained transfer rate.
	TransferBytesPerSec int64
}

// Typical profiles. Cheetah73 approximates a Seagate Cheetah 73LP (2001),
// the class of drive a CM server of the paper's era would use; Barracuda180
// a slower high-capacity drive of the same period; Modern a contemporary
// 7200-RPM nearline disk for scale-up experiments.
var (
	Cheetah73 = Profile{
		Name:                "cheetah73lp",
		CapacityBytes:       73 << 30,
		AvgSeek:             4900 * time.Microsecond,
		RPM:                 10000,
		TransferBytesPerSec: 53 << 20,
	}
	Barracuda180 = Profile{
		Name:                "barracuda180",
		CapacityBytes:       180 << 30,
		AvgSeek:             7400 * time.Microsecond,
		RPM:                 7200,
		TransferBytesPerSec: 26 << 20,
	}
	Modern = Profile{
		Name:                "modern7200",
		CapacityBytes:       4 << 40,
		AvgSeek:             8 * time.Millisecond,
		RPM:                 7200,
		TransferBytesPerSec: 220 << 20,
	}
)

// RotationalLatency returns the expected rotational delay (half a
// revolution).
func (p Profile) RotationalLatency() time.Duration {
	if p.RPM <= 0 {
		return 0
	}
	revolution := time.Duration(float64(time.Minute) / float64(p.RPM))
	return revolution / 2
}

// ServiceTime returns the expected time to read one block of the given
// size: average seek + half rotation + transfer.
func (p Profile) ServiceTime(blockBytes int64) time.Duration {
	transfer := time.Duration(0)
	if p.TransferBytesPerSec > 0 {
		transfer = time.Duration(float64(blockBytes) / float64(p.TransferBytesPerSec) * float64(time.Second))
	}
	return p.AvgSeek + p.RotationalLatency() + transfer
}

// BlocksPerRound returns how many block reads of the given size fit into
// one scheduling round — the per-disk stream capacity of a round-based CM
// server.
func (p Profile) BlocksPerRound(round time.Duration, blockBytes int64) int {
	st := p.ServiceTime(blockBytes)
	if st <= 0 {
		return 0
	}
	return int(round / st)
}

// CapacityBlocks returns how many blocks of the given size the disk holds.
func (p Profile) CapacityBlocks(blockBytes int64) int {
	if blockBytes <= 0 {
		return 0
	}
	return int(p.CapacityBytes / blockBytes)
}

// PayloadStore is the optional byte-bearing backend of a disk: real block
// payloads in per-disk segment files (internal/dataplane implements it).
// Without one attached, the disk is a pure metadata simulation, as in the
// original reproduction.
type PayloadStore interface {
	// Put stores (or replaces) a block's payload.
	Put(BlockID, []byte) error
	// Get reads a block's payload, verifying its integrity frame.
	Get(BlockID) ([]byte, error)
	// Delete removes a block's payload; absent blocks are a no-op.
	Delete(BlockID) error
	// Blocks lists every stored payload's ID in unspecified order.
	Blocks() []BlockID
	// Wipe discards all payloads, leaving an empty usable store — the
	// data-loss half of a whole-disk failure.
	Wipe() error
	// Destroy wipes the store and removes its on-disk footprint — the
	// disk left the array for good.
	Destroy() error
	// Close releases resources, persisting what should persist.
	Close() error
}

// BlockRead is one request/result slot in a batched payload read. The
// caller fills Block; the store fills exactly one of Payload or Err. A
// successful slot's Payload carries one buffer reference owned by the
// caller — release it (or hand it on) exactly once.
type BlockRead struct {
	// Block is the requested block, set by the caller.
	Block BlockID
	// Payload is the block's bytes on success. Coalesced implementations
	// may back several slots with one shared pooled buffer, one reference
	// per slot.
	Payload bufpool.Payload
	// Err is the per-block failure: not-found, integrity, or injected
	// fault. A fault in one slot must not poison its neighbours.
	Err error
}

// BatchReader is the optional batched read fast path of a PayloadStore.
// ReadBlocks resolves every slot independently — per-block errors, shared
// buffers for physically adjacent records — letting the round scheduler
// issue one call per disk instead of one locked Get per stream. Stores
// that do not implement it are served by a sequential Get fallback.
type BatchReader interface {
	// ReadBlocks fills Payload or Err for every request slot.
	ReadBlocks(reqs []BlockRead)
}

// ReadBlocksFrom issues a batched read against ps, using the BatchReader
// fast path when available and falling back to per-block Get otherwise
// (fallback payloads are unpooled).
func ReadBlocksFrom(ps PayloadStore, reqs []BlockRead) {
	if br, ok := ps.(BatchReader); ok {
		br.ReadBlocks(reqs)
		return
	}
	for i := range reqs {
		data, err := ps.Get(reqs[i].Block)
		if err != nil {
			reqs[i].Payload, reqs[i].Err = bufpool.Payload{}, err
			continue
		}
		reqs[i].Payload, reqs[i].Err = bufpool.Unpooled(data), nil
	}
}

// PayloadFactory opens the payload store for a disk by its stable ID —
// how the CM server attaches backends as disks join the array.
type PayloadFactory func(diskID int) (PayloadStore, error)

// Disk is one simulated disk: a profile, a stable identity, and the
// inventory of blocks currently stored on it.
type Disk struct {
	id      int
	profile Profile
	blocks  map[BlockID]struct{}
	health  Health
	payload PayloadStore

	// Round accounting, reset by ResetRound.
	reads    int
	writes   int
	migrated int
}

// New creates an empty disk with the given stable identity and profile.
func New(id int, profile Profile) *Disk {
	return &Disk{id: id, profile: profile, blocks: make(map[BlockID]struct{})}
}

// ID returns the disk's stable identity.
func (d *Disk) ID() int { return d.id }

// Profile returns the disk's performance profile.
func (d *Disk) Profile() Profile { return d.profile }

// Len returns the number of blocks stored.
func (d *Disk) Len() int { return len(d.blocks) }

// Health returns the disk's current health state.
func (d *Disk) Health() Health { return d.health }

// Fail transitions the disk to Failed and wipes its contents — a whole-disk
// fault loses the data, payload bytes included when a payload store is
// attached. It returns the IDs of the blocks that were lost so the recovery
// layer can plan their re-materialization.
func (d *Disk) Fail() ([]BlockID, error) {
	if d.health == Failed {
		return nil, fmt.Errorf("%w: disk %d is already failed", ErrBadHealthTransition, d.id)
	}
	lost := d.Blocks()
	d.blocks = make(map[BlockID]struct{})
	d.health = Failed
	if d.payload != nil {
		if err := d.payload.Wipe(); err != nil {
			return nil, fmt.Errorf("disk %d: wipe payload on failure: %w", d.id, err)
		}
	}
	return lost, nil
}

// AttachPayload attaches (or detaches, with nil) the disk's payload store.
func (d *Disk) AttachPayload(ps PayloadStore) { d.payload = ps }

// Payload returns the attached payload store, or nil.
func (d *Disk) Payload() PayloadStore { return d.payload }

// StartRebuild transitions a Failed disk to Rebuilding: the replacement
// hardware arrived empty and re-materialization may begin.
func (d *Disk) StartRebuild() error {
	if d.health != Failed {
		return fmt.Errorf("%w: disk %d is %s, not failed", ErrBadHealthTransition, d.id, d.health)
	}
	d.health = Rebuilding
	return nil
}

// FinishRebuild transitions a Rebuilding disk back to Healthy.
func (d *Disk) FinishRebuild() error {
	if d.health != Rebuilding {
		return fmt.Errorf("%w: disk %d is %s, not rebuilding", ErrBadHealthTransition, d.id, d.health)
	}
	d.health = Healthy
	return nil
}

// Has reports whether the block is stored on this disk.
func (d *Disk) Has(b BlockID) bool {
	_, ok := d.blocks[b]
	return ok
}

// Store places a block on the disk. Storing a block twice is an error — it
// would mask accounting bugs in the reorganization engine.
func (d *Disk) Store(b BlockID) error {
	if d.health == Failed {
		return fmt.Errorf("%w: disk %d cannot store block %d", ErrDiskFailed, d.id, b)
	}
	if _, ok := d.blocks[b]; ok {
		return fmt.Errorf("disk %d: block %d already stored", d.id, b)
	}
	d.blocks[b] = struct{}{}
	d.writes++
	return nil
}

// Remove deletes a block from the disk.
func (d *Disk) Remove(b BlockID) error {
	if _, ok := d.blocks[b]; !ok {
		return fmt.Errorf("disk %d: block %d not stored", d.id, b)
	}
	delete(d.blocks, b)
	return nil
}

// Read records a block read for round accounting and reports whether the
// block was present.
func (d *Disk) Read(b BlockID) bool {
	if _, ok := d.blocks[b]; !ok {
		return false
	}
	d.reads++
	return true
}

// RecordMigration accounts one migration I/O (read from a source or write
// to a target during reorganization).
func (d *Disk) RecordMigration() { d.migrated++ }

// RecordFailoverRead accounts a read served on this disk on behalf of a
// block homed elsewhere — a mirror read or a parity-reconstruction source
// read. It counts against the same per-round read tally as direct reads.
func (d *Disk) RecordFailoverRead() { d.reads++ }

// RoundLoad reports the I/Os recorded since the last ResetRound: stream
// reads, block writes, and migration I/Os.
func (d *Disk) RoundLoad() (reads, writes, migrated int) {
	return d.reads, d.writes, d.migrated
}

// ResetRound clears the per-round counters.
func (d *Disk) ResetRound() {
	d.reads, d.writes, d.migrated = 0, 0, 0
}

// Blocks returns the stored block IDs in unspecified order.
func (d *Disk) Blocks() []BlockID {
	out := make([]BlockID, 0, len(d.blocks))
	for b := range d.blocks {
		out = append(out, b)
	}
	return out
}

// Array is an ordered collection of disks addressed by logical index, with
// stable per-disk identities preserved across removals — the physical layer
// the placement strategies decide over.
type Array struct {
	disks  []*Disk
	nextID int
}

// NewArray creates an array of n identical disks with IDs 0..n-1.
func NewArray(n int, profile Profile) (*Array, error) {
	if n < 1 {
		return nil, fmt.Errorf("disk: array needs at least 1 disk, got %d", n)
	}
	a := &Array{}
	for i := 0; i < n; i++ {
		a.disks = append(a.disks, New(a.nextID, profile))
		a.nextID++
	}
	return a, nil
}

// N returns the number of disks.
func (a *Array) N() int { return len(a.disks) }

// Disk returns the disk at a logical index.
func (a *Array) Disk(logical int) (*Disk, error) {
	if logical < 0 || logical >= len(a.disks) {
		return nil, fmt.Errorf("disk: logical index %d outside [0,%d)", logical, len(a.disks))
	}
	return a.disks[logical], nil
}

// Add appends count new disks with the given profile; heterogeneous arrays
// arise by adding groups with different profiles.
func (a *Array) Add(count int, profile Profile) ([]*Disk, error) {
	if count < 1 {
		return nil, fmt.Errorf("%w: got %d", ErrAddNone, count)
	}
	added := make([]*Disk, count)
	for i := range added {
		d := New(a.nextID, profile)
		a.nextID++
		a.disks = append(a.disks, d)
		added[i] = d
	}
	return added, nil
}

// Remove detaches the disks at the given logical indices (sorted or not)
// and returns them — still holding their blocks, so the reorganization
// engine can drain them. Survivors are compacted in order.
func (a *Array) Remove(indices ...int) ([]*Disk, error) {
	if len(indices) == 0 {
		return nil, ErrRemoveNone
	}
	if len(indices) >= len(a.disks) {
		return nil, fmt.Errorf("%w: removing %d of %d disks", ErrRemoveAll, len(indices), len(a.disks))
	}
	gone := make(map[int]bool, len(indices))
	for _, i := range indices {
		if i < 0 || i >= len(a.disks) {
			return nil, fmt.Errorf("disk: logical index %d outside [0,%d)", i, len(a.disks))
		}
		if gone[i] {
			return nil, fmt.Errorf("disk: duplicate removal index %d", i)
		}
		if a.disks[i].Health() == Rebuilding {
			return nil, fmt.Errorf("%w: disk %d (logical %d)", ErrDiskRebuilding, a.disks[i].ID(), i)
		}
		gone[i] = true
	}
	var removed []*Disk
	survivors := a.disks[:0]
	for i, d := range a.disks {
		if gone[i] {
			removed = append(removed, d)
		} else {
			survivors = append(survivors, d)
		}
	}
	a.disks = survivors
	return removed, nil
}

// Degraded reports whether any disk is not Healthy — the array is serving
// in degraded mode and reads may need redundant copies.
func (a *Array) Degraded() bool {
	for _, d := range a.disks {
		if d.Health() != Healthy {
			return true
		}
	}
	return false
}

// TotalBlocks returns the number of blocks across all disks.
func (a *Array) TotalBlocks() int {
	n := 0
	for _, d := range a.disks {
		n += d.Len()
	}
	return n
}

// Loads returns the per-disk block counts in logical order.
func (a *Array) Loads() []int {
	out := make([]int, len(a.disks))
	for i, d := range a.disks {
		out[i] = d.Len()
	}
	return out
}

// ResetRounds clears the round counters of every disk.
func (a *Array) ResetRounds() {
	for _, d := range a.disks {
		d.ResetRound()
	}
}
