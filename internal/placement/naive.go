package placement

import (
	"scaddar/internal/scaddar"
)

// Naive implements the paper's Section 4.1 scheme (Eq. 2): at every addition
// the block is re-hashed with its ORIGINAL random number X_0 against the new
// disk count and moves only if the re-hash lands on an added disk. The first
// operation is perfectly random; every later one reuses the same randomness,
// so the set of source disks that feed the new disks becomes skewed — the
// Figure 1 pathology this repository reproduces as experiment E1.
//
// The paper omits the removal case ("the same results are seen when the
// scaling operation is a removal of a disk group"); we implement the natural
// analogue with the same flaw: blocks on removed disks re-hash with X_0
// against the survivor count, and survivors keep their (compacted) position.
type Naive struct {
	hist *scaddar.History
	x0   X0Func
}

// NewNaive creates the Section 4.1 baseline over n0 initial disks.
func NewNaive(n0 int, x0 X0Func) (*Naive, error) {
	h, err := scaddar.NewHistory(n0)
	if err != nil {
		return nil, err
	}
	return &Naive{hist: h, x0: x0}, nil
}

// Name returns "naive".
func (s *Naive) Name() string { return "naive" }

// N returns the current disk count.
func (s *Naive) N() int { return s.hist.N() }

// Disk chains Eq. 2 over every recorded operation.
func (s *Naive) Disk(b BlockRef) int {
	x0 := s.x0(b)
	d := int(x0 % uint64(s.hist.N0()))
	for j := 1; j <= s.hist.Ops(); j++ {
		op := s.hist.Op(j)
		switch op.Kind {
		case scaddar.OpAdd:
			// Re-hash with the same X_0; move only to an added disk.
			t := int(x0 % uint64(op.NAfter))
			if t >= op.NBefore {
				d = t
			}
		case scaddar.OpRemove:
			if nd, gone := compactIndex(d, op.Removed); gone {
				d = int(x0 % uint64(op.NAfter))
			} else {
				d = nd
			}
		}
	}
	return d
}

// AddDisks records an addition operation.
func (s *Naive) AddDisks(count int) error {
	_, err := s.hist.Add(count)
	return err
}

// RemoveDisks records a removal operation.
func (s *Naive) RemoveDisks(indices ...int) error {
	_, err := s.hist.Remove(indices...)
	return err
}

// compactIndex maps a pre-removal disk index to the compacted post-removal
// numbering; gone reports the disk itself was removed. removed is sorted.
func compactIndex(d int, removed []int) (newIndex int, gone bool) {
	below := 0
	for _, r := range removed {
		if r == d {
			return 0, true
		}
		if r < d {
			below++
		} else {
			break
		}
	}
	return d - below, false
}
