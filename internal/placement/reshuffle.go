package placement

import "fmt"

// Reshuffle is the complete-redistribution baseline of Appendix A: after
// every scaling operation each block is re-placed at X_0 mod N_j. Placement
// stays perfectly random — the unfairness never grows — but nearly every
// block moves on every operation, violating RO1. The Section 5 experiment
// compares SCADDAR's coefficient of variation against this curve.
type Reshuffle struct {
	n  int
	x0 X0Func
}

// NewReshuffle creates the complete-redistribution baseline.
func NewReshuffle(n0 int, x0 X0Func) (*Reshuffle, error) {
	if n0 < 1 {
		return nil, fmt.Errorf("placement: reshuffle needs at least 1 disk, got %d", n0)
	}
	return &Reshuffle{n: n0, x0: x0}, nil
}

// Name returns "reshuffle".
func (s *Reshuffle) Name() string { return "reshuffle" }

// N returns the current disk count.
func (s *Reshuffle) N() int { return s.n }

// Disk returns X_0 mod N.
func (s *Reshuffle) Disk(b BlockRef) int { return int(s.x0(b) % uint64(s.n)) }

// AddDisks grows the array.
func (s *Reshuffle) AddDisks(count int) error {
	if count < 1 {
		return fmt.Errorf("placement: add of %d disks", count)
	}
	s.n += count
	return nil
}

// RemoveDisks shrinks the array; which logical indices are named is
// irrelevant to this scheme since every block is re-hashed anyway.
func (s *Reshuffle) RemoveDisks(indices ...int) error {
	if err := checkRemoval(s.n, indices); err != nil {
		return err
	}
	s.n -= len(indices)
	return nil
}

// checkRemoval validates a removal request against the current disk count.
func checkRemoval(n int, indices []int) error {
	if len(indices) == 0 {
		return fmt.Errorf("placement: removal of empty disk group")
	}
	if len(indices) >= n {
		return fmt.Errorf("placement: removing %d of %d disks leaves none", len(indices), n)
	}
	seen := make(map[int]bool, len(indices))
	for _, i := range indices {
		if i < 0 || i >= n {
			return fmt.Errorf("placement: removal index %d outside [0,%d)", i, n)
		}
		if seen[i] {
			return fmt.Errorf("placement: duplicate removal index %d", i)
		}
		seen[i] = true
	}
	return nil
}
