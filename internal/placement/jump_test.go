package placement

import (
	"testing"

	"scaddar/internal/stats"
)

func newJump(t *testing.T, n0 int) *Jump {
	t.Helper()
	j, err := NewJump(n0, x0For(t))
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestNewJumpValidation(t *testing.T) {
	if _, err := NewJump(0, x0For(t)); err == nil {
		t.Fatal("zero disks accepted")
	}
	j := newJump(t, 8)
	if j.Name() != "jump" || j.N() != 8 {
		t.Fatalf("name=%q n=%d", j.Name(), j.N())
	}
}

func TestJumpHashKnownProperties(t *testing.T) {
	// Single bucket: everything lands on 0.
	for key := uint64(0); key < 100; key++ {
		if got := jumpHash(key*2654435761, 1); got != 0 {
			t.Fatalf("jumpHash(_, 1) = %d", got)
		}
	}
	// Range check across bucket counts.
	for _, n := range []int{1, 2, 7, 100} {
		for key := uint64(1); key < 2000; key *= 3 {
			if got := jumpHash(key, n); got < 0 || got >= n {
				t.Fatalf("jumpHash(%d, %d) = %d out of range", key, n, got)
			}
		}
	}
}

// TestJumpMonotoneGrowth is jump hashing's defining property: growing the
// bucket count never moves a key between existing buckets — it either stays
// or jumps to a new bucket.
func TestJumpMonotoneGrowth(t *testing.T) {
	for key := uint64(1); key < 100000; key = key*5 + 1 {
		prev := jumpHash(key, 8)
		for n := 9; n <= 16; n++ {
			cur := jumpHash(key, n)
			if cur != prev && cur < n-1 {
				// moved, but not to the newest bucket added at this step
				if cur < 8 || cur < prev {
					t.Fatalf("key %d moved %d -> %d when growing to %d", key, prev, cur, n)
				}
			}
			prev = cur
		}
	}
}

func TestJumpMovementOptimalOnAdd(t *testing.T) {
	blocks := testBlocks(20, 500)
	j := newJump(t, 8)
	before := Snapshot(j, blocks)
	if err := j.AddDisks(2); err != nil {
		t.Fatal(err)
	}
	after := Snapshot(j, blocks)
	moves, err := Moves(before, after)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(moves) / float64(len(blocks))
	if frac < 0.17 || frac > 0.23 {
		t.Fatalf("moved %.3f, want ~0.20", frac)
	}
	for i := range blocks {
		if before[i] != after[i] && after[i] < 8 {
			t.Fatalf("mover landed on old bucket %d", after[i])
		}
	}
}

func TestJumpBalanced(t *testing.T) {
	blocks := testBlocks(20, 1000)
	j := newJump(t, 10)
	cov := stats.CoVInts(LoadVector(j, blocks))
	if cov > 0.05 {
		t.Fatalf("CoV %.4f", cov)
	}
}

func TestJumpTailRemovalOnly(t *testing.T) {
	j := newJump(t, 8)
	// Tail removals succeed.
	if err := j.RemoveDisks(7); err != nil {
		t.Fatal(err)
	}
	if err := j.RemoveDisks(5, 6); err != nil {
		t.Fatal(err)
	}
	if j.N() != 5 {
		t.Fatalf("N = %d, want 5", j.N())
	}
	// Middle removals are structurally impossible.
	if err := j.RemoveDisks(0); err == nil {
		t.Fatal("middle-bucket removal accepted")
	}
	if err := j.RemoveDisks(2, 4); err == nil {
		t.Fatal("non-suffix removal accepted")
	}
	// Shrinking at the tail moves exactly the dropped buckets' blocks.
	blocks := testBlocks(10, 500)
	before := Snapshot(j, blocks)
	onTail := 0
	for _, d := range before {
		if d == 4 {
			onTail++
		}
	}
	if err := j.RemoveDisks(4); err != nil {
		t.Fatal(err)
	}
	after := Snapshot(j, blocks)
	moves, err := Moves(before, after)
	if err != nil {
		t.Fatal(err)
	}
	if moves != onTail {
		t.Fatalf("tail removal moved %d, want %d", moves, onTail)
	}
}

// TestJumpVsScaddarRemovalFlexibility documents the comparison this
// repository exists to make: SCADDAR retires an arbitrary disk; jump
// hashing cannot.
func TestJumpVsScaddarRemovalFlexibility(t *testing.T) {
	sc, err := NewScaddar(8, x0For(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.RemoveDisks(3); err != nil {
		t.Fatalf("scaddar middle removal failed: %v", err)
	}
	j := newJump(t, 8)
	if err := j.RemoveDisks(3); err == nil {
		t.Fatal("jump middle removal unexpectedly succeeded")
	}
}
