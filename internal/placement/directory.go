package placement

import (
	"fmt"
	"sort"

	"scaddar/internal/prng"
)

// Directory is the bookkeeping baseline of Appendix A: blocks are placed
// uniformly at random and a directory remembers every location. Scaling
// moves the optimal number of blocks (each to a fresh uniform destination),
// so the scheme is ideal on both RO1 and RO2 — its cost is the per-block
// directory the paper is designed to eliminate: millions of entries for a
// realistic server, with concurrency-control and consistency burdens.
//
// Blocks are assigned lazily on first lookup, drawing from a dedicated
// decision source, so the directory only grows with the blocks actually in
// use.
type Directory struct {
	n       int
	src     prng.Source
	entries map[BlockRef]int
}

// NewDirectory creates the directory baseline; src supplies placement and
// redistribution randomness.
func NewDirectory(n0 int, src prng.Source) (*Directory, error) {
	if n0 < 1 {
		return nil, fmt.Errorf("placement: directory needs at least 1 disk, got %d", n0)
	}
	if src == nil {
		return nil, fmt.Errorf("placement: directory needs a random source")
	}
	return &Directory{n: n0, src: src, entries: make(map[BlockRef]int)}, nil
}

// Name returns "directory".
func (s *Directory) Name() string { return "directory" }

// N returns the current disk count.
func (s *Directory) N() int { return s.n }

// Len returns the number of directory entries — the storage cost the paper
// contrasts with SCADDAR's operation log.
func (s *Directory) Len() int { return len(s.entries) }

// Disk returns the block's recorded disk, assigning a uniform one on first
// sight.
func (s *Directory) Disk(b BlockRef) int {
	if d, ok := s.entries[b]; ok {
		return d
	}
	d := int(s.src.Next() % uint64(s.n))
	s.entries[b] = d
	return d
}

// AddDisks moves each known block onto the added disks with the optimal
// probability: a block moves iff a fresh uniform draw over the new array
// lands on an added disk, which relocates an expected (N_j-N_{j-1})/N_j
// fraction, each mover uniform over the new disks.
func (s *Directory) AddDisks(count int) error {
	if count < 1 {
		return fmt.Errorf("placement: add of %d disks", count)
	}
	nAfter := s.n + count
	for b, d := range s.entries {
		t := int(s.src.Next() % uint64(nAfter))
		if t >= s.n {
			s.entries[b] = t
		} else {
			s.entries[b] = d
		}
	}
	s.n = nAfter
	return nil
}

// RemoveDisks relocates exactly the blocks of the removed disks, each to a
// uniform surviving disk; survivors are renumbered compactly.
func (s *Directory) RemoveDisks(indices ...int) error {
	if err := checkRemoval(s.n, indices); err != nil {
		return err
	}
	removed := sortedCopy(indices)
	nAfter := s.n - len(removed)
	for b, d := range s.entries {
		if nd, gone := compactIndex(d, removed); gone {
			s.entries[b] = int(s.src.Next() % uint64(nAfter))
		} else {
			s.entries[b] = nd
		}
	}
	s.n = nAfter
	return nil
}

// sortedCopy returns a sorted copy of xs.
func sortedCopy(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}
