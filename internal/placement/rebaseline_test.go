package placement

import (
	"testing"

	"scaddar/internal/stats"
)

func TestRebaselineClearsHistoryAndBumpsEpoch(t *testing.T) {
	sc, err := NewScaddar(4, x0For(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.AddDisks(3); err != nil {
		t.Fatal(err)
	}
	if err := sc.RemoveDisks(2); err != nil {
		t.Fatal(err)
	}
	if sc.Epoch() != 0 || sc.History().Ops() != 2 {
		t.Fatalf("pre-rebaseline epoch=%d ops=%d", sc.Epoch(), sc.History().Ops())
	}
	if err := sc.Rebaseline(); err != nil {
		t.Fatal(err)
	}
	if sc.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", sc.Epoch())
	}
	if sc.History().Ops() != 0 || sc.History().N0() != 6 {
		t.Fatalf("post-rebaseline history %v", sc.History())
	}
	if sc.N() != 6 {
		t.Fatalf("N = %d, want 6", sc.N())
	}
}

func TestRebaselineMovesMostBlocksAndRestoresBalance(t *testing.T) {
	blocks := testBlocks(20, 1000)
	sc, err := NewScaddar(4, x0For(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.SetBits(32); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := sc.AddDisks(1); err != nil {
			t.Fatal(err)
		}
	}
	before := Snapshot(sc, blocks)
	if err := sc.Rebaseline(); err != nil {
		t.Fatal(err)
	}
	after := Snapshot(sc, blocks)
	moves, err := Moves(before, after)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh uniform placement keeps a block only by coincidence (~1/N).
	frac := float64(moves) / float64(len(blocks))
	if frac < 0.8 {
		t.Fatalf("rebaseline moved only %.3f of blocks", frac)
	}
	cov := stats.CoVInts(LoadVector(sc, blocks))
	if cov > 0.06 {
		t.Fatalf("post-rebaseline CoV %.4f", cov)
	}
	// Placement must remain deterministic across epochs.
	again := Snapshot(sc, blocks)
	for i := range after {
		if after[i] != again[i] {
			t.Fatal("post-rebaseline placement nondeterministic")
		}
	}
}

func TestRebaselineEpochsIndependent(t *testing.T) {
	blocks := testBlocks(10, 500)
	sc, err := NewScaddar(8, x0For(t))
	if err != nil {
		t.Fatal(err)
	}
	e1 := Snapshot(sc, blocks)
	if err := sc.Rebaseline(); err != nil {
		t.Fatal(err)
	}
	e2 := Snapshot(sc, blocks)
	if err := sc.Rebaseline(); err != nil {
		t.Fatal(err)
	}
	e3 := Snapshot(sc, blocks)
	// Distinct epochs produce (nearly) independent placements: agreement
	// should be around 1/N, far from total.
	agree := func(a, b []int) float64 {
		n := 0
		for i := range a {
			if a[i] == b[i] {
				n++
			}
		}
		return float64(n) / float64(len(a))
	}
	for _, pair := range [][2][]int{{e1, e2}, {e2, e3}, {e1, e3}} {
		if f := agree(pair[0], pair[1]); f > 0.3 {
			t.Fatalf("epochs agree on %.3f of blocks; not independent", f)
		}
	}
}

func TestSetBitsValidation(t *testing.T) {
	sc, err := NewScaddar(4, x0For(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.SetBits(0); err == nil {
		t.Error("zero bits accepted")
	}
	if err := sc.SetBits(65); err == nil {
		t.Error("65 bits accepted")
	}
	if err := sc.SetBits(32); err != nil {
		t.Error(err)
	}
}

func TestSetBitsBoundsEpochValues(t *testing.T) {
	// With a declared narrow width, epoch-mixed X0 values must stay within
	// that width (checked via blockX0 directly) so the randomness budget
	// remains honest after a rebaseline.
	sc, err := NewScaddar(5, x0For(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.SetBits(16); err != nil {
		t.Fatal(err)
	}
	if err := sc.Rebaseline(); err != nil {
		t.Fatal(err)
	}
	for _, b := range testBlocks(5, 100) {
		if x := sc.blockX0(b); x > 0xFFFF {
			t.Fatalf("epoch-mixed value %d exceeds 16 bits", x)
		}
		if d := sc.Disk(b); d < 0 || d >= 5 {
			t.Fatalf("disk %d out of range", d)
		}
	}
}
