package placement

import (
	"sync"
	"testing"

	"scaddar/internal/prng"
)

// TestConcurrentLocatorAgreesWithDisk checks that a ConcurrentLocator
// snapshot reproduces Disk() for every block, stays pinned to its clone
// when the strategy scales afterwards, and survives Rebaseline epochs.
func TestConcurrentLocatorAgreesWithDisk(t *testing.T) {
	factory := func(seed uint64) prng.Source { return prng.NewSplitMix64(seed) }
	strat, err := NewScaddar(4, NewX0Func(factory))
	if err != nil {
		t.Fatal(err)
	}
	check := func(label string) {
		t.Helper()
		loc, err := strat.ConcurrentLocator(factory)
		if err != nil {
			t.Fatal(err)
		}
		for seed := uint64(1); seed <= 5; seed++ {
			for i := uint64(0); i < 200; i++ {
				want := strat.Disk(BlockRef{Seed: seed, Index: i})
				got, err := loc.Disk(seed, i)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("%s: block %d/%d: locator says %d, strategy says %d",
						label, seed, i, got, want)
				}
			}
		}
	}
	check("initial")
	if err := strat.AddDisks(3); err != nil {
		t.Fatal(err)
	}
	check("after add")
	if err := strat.RemoveDisks(2, 5); err != nil {
		t.Fatal(err)
	}
	check("after remove")

	// A snapshot taken now must not see the next operation.
	loc, err := strat.ConcurrentLocator(factory)
	if err != nil {
		t.Fatal(err)
	}
	frozen := make(map[uint64]int)
	for i := uint64(0); i < 100; i++ {
		d, err := loc.Disk(1, i)
		if err != nil {
			t.Fatal(err)
		}
		frozen[i] = d
	}
	if err := strat.AddDisks(2); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		d, err := loc.Disk(1, i)
		if err != nil {
			t.Fatal(err)
		}
		if d != frozen[i] {
			t.Fatalf("snapshot moved with the strategy: block 1/%d %d -> %d", i, frozen[i], d)
		}
	}
	check("after second add")

	if err := strat.Rebaseline(); err != nil {
		t.Fatal(err)
	}
	check("after rebaseline")
	if err := strat.AddDisks(1); err != nil {
		t.Fatal(err)
	}
	check("epoch 1 after add")
}

// TestConcurrentLocatorParallel hammers one snapshot from many goroutines;
// run under -race this is the lock-freedom check.
func TestConcurrentLocatorParallel(t *testing.T) {
	factory := func(seed uint64) prng.Source { return prng.NewSplitMix64(seed) }
	strat, err := NewScaddar(6, NewX0Func(factory))
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int, 500)
	for i := range want {
		want[i] = strat.Disk(BlockRef{Seed: 9, Index: uint64(i)})
	}
	loc, err := strat.ConcurrentLocator(factory)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				idx := (i + g*61) % 500
				got, err := loc.Disk(9, uint64(idx))
				if err != nil {
					t.Errorf("Disk: %v", err)
					return
				}
				if got != want[idx] {
					t.Errorf("block 9/%d: got disk %d, want %d", idx, got, want[idx])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestConcurrentLocatorNilFactory(t *testing.T) {
	strat, err := NewScaddar(4, NewX0Func(func(seed uint64) prng.Source { return prng.NewSplitMix64(seed) }))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := strat.ConcurrentLocator(nil); err == nil {
		t.Error("nil factory accepted")
	}
}
