package placement

import (
	"fmt"
	"sort"

	"scaddar/internal/prng"
)

// Consistent is consistent hashing with virtual nodes, included as a modern
// comparator: it solves the same minimal-remapping problem SCADDAR solves,
// with different trade-offs. Movement on scaling is near-optimal, but load
// balance depends on the virtual-node count (per-disk load concentrates
// around the mean with relative spread ~1/sqrt(vnodes)), whereas SCADDAR's
// balance depends on the remaining random range. Unlike SCADDAR it needs no
// operation log — only the current disk roster — but its lookups cost
// O(log(N·vnodes)) instead of O(j).
type Consistent struct {
	vnodes    int
	disks     []int // logical index -> stable disk identity
	logicalOf map[int]int
	next      int // next identity to assign
	ring      []ringPoint
}

// ringPoint is one virtual node: a position on the 2^64 ring owned by a
// disk identity.
type ringPoint struct {
	point uint64
	id    int
}

// NewConsistent creates a consistent-hashing strategy with the given number
// of virtual nodes per disk (128-256 is typical).
func NewConsistent(n0, vnodes int) (*Consistent, error) {
	if n0 < 1 {
		return nil, fmt.Errorf("placement: consistent hashing needs at least 1 disk, got %d", n0)
	}
	if vnodes < 1 {
		return nil, fmt.Errorf("placement: consistent hashing needs at least 1 vnode, got %d", vnodes)
	}
	s := &Consistent{vnodes: vnodes, logicalOf: make(map[int]int)}
	for i := 0; i < n0; i++ {
		s.addDisk()
	}
	return s, nil
}

// Name returns "consistent".
func (s *Consistent) Name() string { return "consistent" }

// N returns the current disk count.
func (s *Consistent) N() int { return len(s.disks) }

// Disk maps the block's hash to the owning virtual node's disk.
func (s *Consistent) Disk(b BlockRef) int {
	h := prng.Combine(b.Seed, b.Index)
	i := sort.Search(len(s.ring), func(i int) bool { return s.ring[i].point >= h })
	if i == len(s.ring) {
		i = 0 // wrap around the ring
	}
	logical, ok := s.logicalOf[s.ring[i].id]
	if !ok {
		panic("placement: consistent ring references unknown disk")
	}
	return logical
}

// AddDisks appends count disks, each with vnodes ring positions.
func (s *Consistent) AddDisks(count int) error {
	if count < 1 {
		return fmt.Errorf("placement: add of %d disks", count)
	}
	for i := 0; i < count; i++ {
		s.addDisk()
	}
	return nil
}

// addDisk assigns the next identity and inserts its virtual nodes.
func (s *Consistent) addDisk() {
	id := s.next
	s.next++
	s.logicalOf[id] = len(s.disks)
	s.disks = append(s.disks, id)
	for v := 0; v < s.vnodes; v++ {
		s.ring = append(s.ring, ringPoint{
			point: prng.Combine(uint64(id)+0x5ca0dda5, uint64(v)),
			id:    id,
		})
	}
	sort.Slice(s.ring, func(i, j int) bool { return s.ring[i].point < s.ring[j].point })
}

// RemoveDisks removes the disk group with the given logical indices and
// drops their virtual nodes; blocks they owned fall to ring successors.
func (s *Consistent) RemoveDisks(indices ...int) error {
	if err := checkRemoval(len(s.disks), indices); err != nil {
		return err
	}
	removed := sortedCopy(indices)
	gone := make(map[int]bool, len(removed))
	for _, logical := range removed {
		gone[s.disks[logical]] = true
	}
	survivors := s.disks[:0]
	for _, id := range s.disks {
		if gone[id] {
			delete(s.logicalOf, id)
			continue
		}
		s.logicalOf[id] = len(survivors)
		survivors = append(survivors, id)
	}
	s.disks = survivors
	kept := s.ring[:0]
	for _, p := range s.ring {
		if !gone[p.id] {
			kept = append(kept, p)
		}
	}
	s.ring = kept
	return nil
}
