package placement

import (
	"testing"
	"testing/quick"

	"scaddar/internal/prng"
	"scaddar/internal/stats"
)

// testBlocks builds a universe of nobj objects with blocksPer blocks each.
func testBlocks(nobj, blocksPer int) []BlockRef {
	blocks := make([]BlockRef, 0, nobj*blocksPer)
	for o := 0; o < nobj; o++ {
		for i := 0; i < blocksPer; i++ {
			blocks = append(blocks, BlockRef{Seed: uint64(o + 1), Index: uint64(i)})
		}
	}
	return blocks
}

func x0For(t *testing.T) X0Func {
	t.Helper()
	return NewX0Func(func(seed uint64) prng.Source { return prng.NewSplitMix64(seed) })
}

// strategies builds one of each strategy over n0 disks.
func strategies(t *testing.T, n0 int) []Strategy {
	t.Helper()
	x0 := x0For(t)
	sc, err := NewScaddar(n0, x0)
	if err != nil {
		t.Fatal(err)
	}
	nv, err := NewNaive(n0, x0)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := NewReshuffle(n0, x0)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := NewRoundRobin(n0)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := NewDirectory(n0, prng.NewSplitMix64(555))
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewConsistent(n0, 128)
	if err != nil {
		t.Fatal(err)
	}
	return []Strategy{sc, nv, rs, rr, dir, ch}
}

func TestConstructorValidation(t *testing.T) {
	x0 := x0For(t)
	if _, err := NewScaddar(0, x0); err == nil {
		t.Error("scaddar with 0 disks accepted")
	}
	if _, err := NewNaive(0, x0); err == nil {
		t.Error("naive with 0 disks accepted")
	}
	if _, err := NewReshuffle(0, x0); err == nil {
		t.Error("reshuffle with 0 disks accepted")
	}
	if _, err := NewRoundRobin(0); err == nil {
		t.Error("round robin with 0 disks accepted")
	}
	if _, err := NewDirectory(0, prng.NewSplitMix64(1)); err == nil {
		t.Error("directory with 0 disks accepted")
	}
	if _, err := NewDirectory(4, nil); err == nil {
		t.Error("directory with nil source accepted")
	}
	if _, err := NewConsistent(0, 64); err == nil {
		t.Error("consistent with 0 disks accepted")
	}
	if _, err := NewConsistent(4, 0); err == nil {
		t.Error("consistent with 0 vnodes accepted")
	}
}

func TestNames(t *testing.T) {
	want := map[string]bool{
		"scaddar": true, "naive": true, "reshuffle": true,
		"roundrobin": true, "directory": true, "consistent": true,
	}
	for _, s := range strategies(t, 4) {
		if !want[s.Name()] {
			t.Errorf("unexpected strategy name %q", s.Name())
		}
		delete(want, s.Name())
	}
	if len(want) != 0 {
		t.Errorf("missing strategies: %v", want)
	}
}

func TestDiskInRangeAndDeterministic(t *testing.T) {
	blocks := testBlocks(5, 200)
	for _, s := range strategies(t, 4) {
		if err := s.AddDisks(3); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if err := s.RemoveDisks(2, 5); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if s.N() != 5 {
			t.Fatalf("%s: N = %d, want 5", s.Name(), s.N())
		}
		for _, b := range blocks {
			d1 := s.Disk(b)
			d2 := s.Disk(b)
			if d1 != d2 {
				t.Fatalf("%s: nondeterministic disk for %+v", s.Name(), b)
			}
			if d1 < 0 || d1 >= s.N() {
				t.Fatalf("%s: disk %d out of range", s.Name(), d1)
			}
		}
	}
}

func TestScalingValidationErrors(t *testing.T) {
	for _, s := range strategies(t, 4) {
		if err := s.AddDisks(0); err == nil {
			t.Errorf("%s: add of 0 disks accepted", s.Name())
		}
		if err := s.RemoveDisks(); err == nil {
			t.Errorf("%s: empty removal accepted", s.Name())
		}
		if err := s.RemoveDisks(0, 1, 2, 3); err == nil {
			t.Errorf("%s: removing all disks accepted", s.Name())
		}
		if err := s.RemoveDisks(7); err == nil {
			t.Errorf("%s: out-of-range removal accepted", s.Name())
		}
		if err := s.RemoveDisks(1, 1); err == nil {
			t.Errorf("%s: duplicate removal accepted", s.Name())
		}
	}
}

// TestAdditionMovement checks RO1 per strategy: the randomized minimal
// schemes move ~z_j of blocks; reshuffle and round-robin move far more.
func TestAdditionMovement(t *testing.T) {
	blocks := testBlocks(20, 500) // 10000 blocks
	for _, s := range strategies(t, 8) {
		before := Snapshot(s, blocks)
		if err := s.AddDisks(2); err != nil {
			t.Fatal(err)
		}
		after := Snapshot(s, blocks)
		moves, err := Moves(before, after)
		if err != nil {
			t.Fatal(err)
		}
		frac := float64(moves) / float64(len(blocks))
		z := OptimalMoveFraction(8, 10) // 0.2
		switch s.Name() {
		case "scaddar", "naive", "directory":
			if frac < z-0.03 || frac > z+0.03 {
				t.Errorf("%s: moved %.3f, want ~%.2f", s.Name(), frac, z)
			}
		case "consistent":
			// Consistent hashing moves ~z on average with wider spread.
			if frac < z-0.1 || frac > z+0.1 {
				t.Errorf("%s: moved %.3f, want roughly %.2f", s.Name(), frac, z)
			}
		case "reshuffle":
			// Rehash mod 10 keeps a block iff x mod 8 == x mod 10: ~1/10+ of
			// blocks stay; most move.
			if frac < 0.7 {
				t.Errorf("%s: moved %.3f, expected most blocks to move", s.Name(), frac)
			}
		case "roundrobin":
			// Re-striping 8 -> 10 disks keeps a block only on coincidental
			// alignment; the vast majority move.
			if frac < 0.7 {
				t.Errorf("%s: moved %.3f, expected almost all blocks to move", s.Name(), frac)
			}
		}
	}
}

// TestRemovalMovement checks RO1 for removals: minimal schemes move only
// the blocks of the removed disk.
func TestRemovalMovement(t *testing.T) {
	blocks := testBlocks(20, 500)
	for _, s := range strategies(t, 8) {
		before := Snapshot(s, blocks)
		onRemoved := 0
		for _, d := range before {
			if d == 3 {
				onRemoved++
			}
		}
		if err := s.RemoveDisks(3); err != nil {
			t.Fatal(err)
		}
		after := Snapshot(s, blocks)
		moves, err := MovedPhysical(before, after, 8, []int{3})
		if err != nil {
			t.Fatal(err)
		}
		switch s.Name() {
		case "scaddar", "naive", "directory":
			if moves != onRemoved {
				t.Errorf("%s: moved %d blocks, want exactly the %d on the removed disk", s.Name(), moves, onRemoved)
			}
		case "consistent":
			frac := float64(moves) / float64(len(blocks))
			if frac > 0.25 {
				t.Errorf("%s: moved %.3f of blocks, want near-minimal", s.Name(), frac)
			}
		case "reshuffle", "roundrobin":
			frac := float64(moves) / float64(len(blocks))
			if frac < 0.5 {
				t.Errorf("%s: moved %.3f, expected most blocks to move", s.Name(), frac)
			}
		}
	}
}

// TestAdditionMoversLandOnNewDisks verifies that for the minimal schemes
// every mover lands on an added disk.
func TestAdditionMoversLandOnNewDisks(t *testing.T) {
	blocks := testBlocks(10, 300)
	for _, s := range strategies(t, 6) {
		switch s.Name() {
		case "scaddar", "naive", "directory":
		default:
			continue
		}
		before := Snapshot(s, blocks)
		if err := s.AddDisks(2); err != nil {
			t.Fatal(err)
		}
		after := Snapshot(s, blocks)
		for i := range blocks {
			if before[i] != after[i] && after[i] < 6 {
				t.Errorf("%s: mover landed on old disk %d", s.Name(), after[i])
			}
		}
	}
}

// TestLoadBalanceAfterChain checks RO2: after a chain of operations the
// fresh-randomness schemes keep the load balanced (CoV small). The naive
// scheme is *expected* to be worse — that skew is the paper's motivation —
// and consistent hashing's balance is limited by its virtual-node count, so
// both get looser bounds.
func TestLoadBalanceAfterChain(t *testing.T) {
	blocks := testBlocks(20, 1000) // 20000 blocks
	covs := make(map[string]float64)
	for _, s := range strategies(t, 6) {
		if s.Name() == "roundrobin" {
			continue // trivially balanced by construction
		}
		steps := []func() error{
			func() error { return s.AddDisks(2) },    // 8
			func() error { return s.RemoveDisks(3) }, // 7
			func() error { return s.AddDisks(3) },    // 10
		}
		for _, step := range steps {
			if err := step(); err != nil {
				t.Fatal(err)
			}
		}
		loads := LoadVector(s, blocks)
		cov := stats.CoVInts(loads)
		covs[s.Name()] = cov
		limit := 0.08
		switch s.Name() {
		case "naive", "consistent":
			limit = 0.2
		}
		if cov > limit {
			t.Errorf("%s: CoV %.4f after chain, want < %.2f (loads %v)", s.Name(), cov, limit, loads)
		}
	}
	// The paper's claim: SCADDAR stays comparable to the ideal directory
	// scheme. Sampling noise at 2000 blocks/disk is ~0.022, so allow slack.
	if covs["scaddar"] > covs["directory"]+0.05 {
		t.Errorf("scaddar CoV %.4f much worse than directory %.4f", covs["scaddar"], covs["directory"])
	}
}

// TestNaiveSecondAddSkew reproduces the Figure 1 pathology: after two
// successive single-disk additions under the naive scheme, the blocks moved
// by the second addition come only from disks whose index is reachable —
// the movement source distribution is skewed, unlike SCADDAR's.
func TestNaiveSecondAddSkew(t *testing.T) {
	blocks := testBlocks(40, 500) // 20000 blocks
	x0 := x0For(t)
	nv, err := NewNaive(4, x0)
	if err != nil {
		t.Fatal(err)
	}
	if err := nv.AddDisks(1); err != nil {
		t.Fatal(err)
	}
	before := Snapshot(nv, blocks)
	if err := nv.AddDisks(1); err != nil {
		t.Fatal(err)
	}
	after := Snapshot(nv, blocks)
	sources := make([]int, 5)
	for i := range blocks {
		if before[i] != after[i] {
			sources[before[i]]++
		}
	}
	// Figure 1: only disks 1, 3, 4 feed disk 5; disks 0 and 2 are ignored.
	// With x0 uniform, movers have x0 ≡ 5 (mod 6); their previous disk is
	// x0 mod 5 == 4 ? 4 : x0 mod 4 — never 0 or 2 for odd x0.
	if sources[0] != 0 || sources[2] != 0 {
		t.Errorf("naive second add drew from disks 0/2: %v (expected skew leaves them empty)", sources)
	}
	if sources[1] == 0 || sources[3] == 0 || sources[4] == 0 {
		t.Errorf("naive second add sources = %v, expected disks 1, 3, 4 to contribute", sources)
	}

	// SCADDAR under the same schedule draws movers from every disk.
	sc, err := NewScaddar(4, x0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.AddDisks(1); err != nil {
		t.Fatal(err)
	}
	before = Snapshot(sc, blocks)
	if err := sc.AddDisks(1); err != nil {
		t.Fatal(err)
	}
	after = Snapshot(sc, blocks)
	scSources := make([]int, 5)
	for i := range blocks {
		if before[i] != after[i] {
			scSources[before[i]]++
		}
	}
	for d, c := range scSources {
		if c == 0 {
			t.Errorf("scaddar second add drew nothing from disk %d: %v", d, scSources)
		}
	}
}

func TestDirectoryLen(t *testing.T) {
	dir, err := NewDirectory(4, prng.NewSplitMix64(1))
	if err != nil {
		t.Fatal(err)
	}
	blocks := testBlocks(3, 10)
	for _, b := range blocks {
		dir.Disk(b)
	}
	if dir.Len() != len(blocks) {
		t.Fatalf("directory has %d entries, want %d", dir.Len(), len(blocks))
	}
}

func TestSurvivorMap(t *testing.T) {
	m := SurvivorMap(6, []int{1, 4})
	want := []int{0, -1, 1, 2, -1, 3}
	for i, w := range want {
		if m[i] != w {
			t.Fatalf("SurvivorMap[%d] = %d, want %d (full %v)", i, m[i], w, m)
		}
	}
}

func TestMovesLengthMismatch(t *testing.T) {
	if _, err := Moves([]int{1}, []int{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := MovedPhysical([]int{1}, []int{1, 2}, 4, []int{0}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestOptimalMoveFraction(t *testing.T) {
	if got := OptimalMoveFraction(8, 10); got != 0.2 {
		t.Errorf("add fraction = %g, want 0.2", got)
	}
	if got := OptimalMoveFraction(10, 8); got != 0.2 {
		t.Errorf("remove fraction = %g, want 0.2", got)
	}
	if got := OptimalMoveFraction(5, 5); got != 0 {
		t.Errorf("no-op fraction = %g, want 0", got)
	}
}

// TestBatchedVsIncrementalAdds documents an operational property of the
// REMAP chain: adding k disks in one group is strictly cheaper than k
// single-disk additions — less total block I/O (incremental adds can move
// the same block twice) and one budget factor instead of k. The paper's
// disk-group notion (Definition 3.3) is the right operational unit.
func TestBatchedVsIncrementalAdds(t *testing.T) {
	blocks := testBlocks(20, 500)
	x0 := x0For(t)
	const (
		n0 = 8
		k  = 4
	)
	runMode := func(batched bool) (frac float64, mu uint64) {
		strat, err := NewScaddar(n0, x0)
		if err != nil {
			t.Fatal(err)
		}
		moves := 0
		prev := Snapshot(strat, blocks)
		mu = n0
		step := func(count int) {
			if err := strat.AddDisks(count); err != nil {
				t.Fatal(err)
			}
			mu *= uint64(strat.N())
			cur := Snapshot(strat, blocks)
			m, err := Moves(prev, cur)
			if err != nil {
				t.Fatal(err)
			}
			moves += m
			prev = cur
		}
		if batched {
			step(k)
		} else {
			for j := 0; j < k; j++ {
				step(1)
			}
		}
		return float64(moves) / float64(len(blocks)), mu
	}
	batchedFrac, batchedMu := runMode(true)
	incFrac, incMu := runMode(false)
	z := OptimalMoveFraction(n0, n0+k)
	if batchedFrac < z-0.02 || batchedFrac > z+0.02 {
		t.Fatalf("batched moved %.3f, want ~%.3f", batchedFrac, z)
	}
	// Incremental: expected sum of per-step z_j = 1/9+1/10+1/11+1/12 ≈ 0.385.
	if incFrac <= batchedFrac+0.03 {
		t.Fatalf("incremental %.3f not clearly above batched %.3f", incFrac, batchedFrac)
	}
	// Budget: one factor of 12 vs factors 9·10·11·12.
	if batchedMu != uint64(n0)*uint64(n0+k) {
		t.Fatalf("batched mu = %d", batchedMu)
	}
	if incMu != uint64(n0)*9*10*11*12 {
		t.Fatalf("incremental mu = %d", incMu)
	}
}

// TestQuickSurvivorMapBijective property-tests that SurvivorMap maps
// survivors bijectively onto 0..nAfter-1.
func TestQuickSurvivorMapBijective(t *testing.T) {
	f := func(nRaw uint8, mask uint16) bool {
		n := int(nRaw%30) + 2
		var removed []int
		for d := 0; d < n-1; d++ {
			if mask&(1<<(d%16)) != 0 {
				removed = append(removed, d)
			}
		}
		m := SurvivorMap(n, removed)
		seen := make(map[int]bool)
		survivors := 0
		for old, nw := range m {
			isRemoved := false
			for _, r := range removed {
				if r == old {
					isRemoved = true
				}
			}
			if isRemoved {
				if nw != -1 {
					return false
				}
				continue
			}
			survivors++
			if nw < 0 || nw >= n-len(removed) || seen[nw] {
				return false
			}
			seen[nw] = true
		}
		return survivors == n-len(removed)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestConsistentRingStability verifies that blocks not owned by a removed
// disk keep their disk identity across removal (the defining property of
// consistent hashing).
func TestConsistentRingStability(t *testing.T) {
	ch, err := NewConsistent(6, 64)
	if err != nil {
		t.Fatal(err)
	}
	blocks := testBlocks(10, 200)
	before := Snapshot(ch, blocks)
	if err := ch.RemoveDisks(2); err != nil {
		t.Fatal(err)
	}
	after := Snapshot(ch, blocks)
	m := SurvivorMap(6, []int{2})
	for i := range blocks {
		if before[i] == 2 {
			continue // owned by the removed disk; may land anywhere
		}
		if after[i] != m[before[i]] {
			t.Fatalf("block %d moved from surviving disk %d to %d", i, before[i], after[i])
		}
	}
}
