package placement

import (
	"fmt"

	"scaddar/internal/prng"
)

// RoundRobin is the constrained-placement baseline: block i of an object is
// stored on disk (start_m + i) mod N, the classic striping layout of
// multimedia servers. The start disk is derived from the object seed so
// different objects begin on different disks. On any scaling operation the
// stripe is recomputed against the new disk count, which relocates almost
// all blocks — the behaviour the paper's Related Work attributes to on-line
// reorganization of round-robin striping (Ghandeharizadeh & Kim, DEXA'96).
type RoundRobin struct {
	n int
}

// NewRoundRobin creates the striping baseline.
func NewRoundRobin(n0 int) (*RoundRobin, error) {
	if n0 < 1 {
		return nil, fmt.Errorf("placement: round-robin needs at least 1 disk, got %d", n0)
	}
	return &RoundRobin{n: n0}, nil
}

// Name returns "roundrobin".
func (s *RoundRobin) Name() string { return "roundrobin" }

// N returns the current disk count.
func (s *RoundRobin) N() int { return s.n }

// Disk returns (start_m + i) mod N with start_m seed-derived.
func (s *RoundRobin) Disk(b BlockRef) int {
	start := prng.Hash64(b.Seed) % uint64(s.n)
	return int((start + b.Index) % uint64(s.n))
}

// AddDisks grows the array and implicitly re-stripes every object.
func (s *RoundRobin) AddDisks(count int) error {
	if count < 1 {
		return fmt.Errorf("placement: add of %d disks", count)
	}
	s.n += count
	return nil
}

// RemoveDisks shrinks the array and implicitly re-stripes every object.
func (s *RoundRobin) RemoveDisks(indices ...int) error {
	if err := checkRemoval(s.n, indices); err != nil {
		return err
	}
	s.n -= len(indices)
	return nil
}
