package placement

import (
	"fmt"
)

// Jump implements jump consistent hashing (Lamping & Veach, 2014) as a
// second modern comparator. Like SCADDAR it computes a block's disk with a
// short chain of integer arithmetic and no per-block state, and it moves
// the optimal fraction of blocks when the array grows. The instructive
// difference is its interface restriction: jump hashing supports ONLY
// growing and shrinking at the tail — bucket i can never be removed unless
// it is the last one. SCADDAR's removal REMAP (Eq. 3) handles arbitrary
// disk-group removals, which is exactly what disk retirement needs; with
// jump hashing, retiring a middle disk forces an out-of-band relocation
// scheme. RemoveDisks therefore accepts only a suffix of the logical
// indices.
type Jump struct {
	n  int
	x0 X0Func
}

// NewJump creates a jump-consistent-hashing strategy.
func NewJump(n0 int, x0 X0Func) (*Jump, error) {
	if n0 < 1 {
		return nil, fmt.Errorf("placement: jump hashing needs at least 1 disk, got %d", n0)
	}
	return &Jump{n: n0, x0: x0}, nil
}

// Name returns "jump".
func (s *Jump) Name() string { return "jump" }

// N returns the current disk count.
func (s *Jump) N() int { return s.n }

// Disk computes the jump-hash bucket of the block's key.
func (s *Jump) Disk(b BlockRef) int {
	return jumpHash(s.x0(b), s.n)
}

// jumpHash is the Lamping-Veach loop: the key doubles as the LCG state, and
// the bucket "jumps" forward with geometrically increasing strides.
func jumpHash(key uint64, buckets int) int {
	var b, j int64 = -1, 0
	for j < int64(buckets) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return int(b)
}

// AddDisks grows the array; an expected count/N_j fraction of blocks jumps
// to the new buckets.
func (s *Jump) AddDisks(count int) error {
	if count < 1 {
		return fmt.Errorf("placement: add of %d disks", count)
	}
	s.n += count
	return nil
}

// RemoveDisks shrinks the array. Jump hashing can only drop the
// highest-numbered buckets, so the indices must be exactly the current
// tail; anything else is rejected — the structural limitation SCADDAR's
// removal REMAP avoids.
func (s *Jump) RemoveDisks(indices ...int) error {
	if err := checkRemoval(s.n, indices); err != nil {
		return err
	}
	want := make(map[int]bool, len(indices))
	for _, i := range indices {
		want[i] = true
	}
	for i := s.n - len(indices); i < s.n; i++ {
		if !want[i] {
			return fmt.Errorf("placement: jump hashing can only remove the tail buckets %d..%d", s.n-len(indices), s.n-1)
		}
	}
	s.n -= len(indices)
	return nil
}

// compile-time interface checks for every strategy in the package.
var (
	_ Strategy = (*Scaddar)(nil)
	_ Strategy = (*Naive)(nil)
	_ Strategy = (*Reshuffle)(nil)
	_ Strategy = (*RoundRobin)(nil)
	_ Strategy = (*Directory)(nil)
	_ Strategy = (*Consistent)(nil)
	_ Strategy = (*Jump)(nil)
)
