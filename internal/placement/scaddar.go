package placement

import (
	"fmt"

	"scaddar/internal/par"
	"scaddar/internal/prng"
	"scaddar/internal/scaddar"
)

// Scaddar adapts the core SCADDAR remap chain to the Strategy interface.
//
// Beyond the paper's REMAP chain it implements the paper's own prescription
// for a chain that has exhausted its randomness budget: "In this case, we
// suggest a redistribution of all the blocks" (Section 4). Rebaseline
// performs that complete redistribution logically: the operation log resets
// to a fresh single-epoch history over the current disk count and every
// block draws a brand-new random number (its X0 mixed with the epoch
// counter), restoring the full b-bit range at the cost of moving almost all
// blocks once.
type Scaddar struct {
	hist  *scaddar.History
	x0    X0Func
	epoch uint64
	bits  uint
}

// NewScaddar creates a SCADDAR strategy over n0 initial disks with the given
// block-randomness source. The generator width defaults to 64 bits; when the
// x0 source is narrower, call SetBits so post-Rebaseline values stay within
// the same range the Budget accounts for.
func NewScaddar(n0 int, x0 X0Func) (*Scaddar, error) {
	h, err := scaddar.NewHistory(n0)
	if err != nil {
		return nil, err
	}
	return &Scaddar{hist: h, x0: x0, bits: 64}, nil
}

// SetBits declares the width of the x0 source (1..64). Epoch-mixed values
// after a Rebaseline are truncated to this width, keeping the randomness
// budget honest for narrow generators.
func (s *Scaddar) SetBits(bits uint) error {
	if bits == 0 || bits > 64 {
		return fmt.Errorf("placement: scaddar bits %d outside [1,64]", bits)
	}
	s.bits = bits
	return nil
}

// Name returns "scaddar".
func (s *Scaddar) Name() string { return "scaddar" }

// N returns the current disk count.
func (s *Scaddar) N() int { return s.hist.N() }

// History exposes the underlying operation log (shared, not a copy).
func (s *Scaddar) History() *scaddar.History { return s.hist }

// Epoch returns the number of complete redistributions performed.
func (s *Scaddar) Epoch() uint64 { return s.epoch }

// Bits returns the declared width of the x0 source.
func (s *Scaddar) Bits() uint { return s.bits }

// blockX0 returns the block's effective random number in the current epoch:
// the raw X0 in epoch 0 (byte-for-byte the paper's scheme), an
// epoch-mixed value afterwards so each redistribution draws an independent
// fresh placement.
func (s *Scaddar) blockX0(b BlockRef) uint64 {
	x := s.x0(b)
	if s.epoch == 0 {
		return x
	}
	return prng.Combine(s.epoch, x) >> (64 - s.bits)
}

// Disk locates the block through the REMAP chain.
func (s *Scaddar) Disk(b BlockRef) int { return s.hist.Locate(s.blockX0(b)) }

// DiskBatch resolves many blocks at once (placement.BatchStrategy): the
// per-object random numbers are drawn serially (the X0 source memoizes per
// seed and is not concurrency-safe), then the compiled REMAP chain sweeps
// the batch across GOMAXPROCS workers in disjoint ranges, so the output is
// byte-identical to per-block Disk calls regardless of core count.
func (s *Scaddar) DiskBatch(blocks []BlockRef, out []int) {
	if len(out) < len(blocks) {
		panic("placement: DiskBatch output shorter than input")
	}
	chain := s.hist.Compile()
	if len(blocks) < par.MinParallel || par.Workers() < 2 {
		// Serial: stream through a stack chunk, no per-call allocation.
		var xs [256]uint64
		for base := 0; base < len(blocks); base += len(xs) {
			n := len(blocks) - base
			if n > len(xs) {
				n = len(xs)
			}
			for i := 0; i < n; i++ {
				xs[i] = s.blockX0(blocks[base+i])
			}
			chain.LocateBatch(xs[:n], out[base:base+n])
		}
		return
	}
	xs := make([]uint64, len(blocks))
	for i, b := range blocks {
		xs[i] = s.blockX0(b)
	}
	par.Ranges(len(xs), func(lo, hi int) {
		chain.LocateBatch(xs[lo:hi], out[lo:hi])
	})
}

// Rebaseline performs the complete redistribution the paper recommends once
// the Section 4.3 budget is exhausted: the operation log is cleared (N0
// becomes the current disk count) and every block re-places with fresh
// randomness. Nearly all blocks move; afterwards the full random range is
// available again and the caller should Reset its Budget.
func (s *Scaddar) Rebaseline() error {
	h, err := scaddar.NewHistory(s.hist.N())
	if err != nil {
		return err
	}
	s.hist = h
	s.epoch++
	return nil
}

// ConcurrentLocator returns a SafeLocator over a clone of the current
// operation log whose lookups agree with Disk() for every block — including
// after Rebaseline epochs, which are reproduced by wrapping the factory's
// sources in the same epoch-mixing transform blockX0 applies. factory must
// build the same generator family the strategy's X0Func was built from.
//
// The clone is immutable from the strategy's point of view: later scaling
// operations on the strategy do not disturb it, so the returned locator is
// a consistent point-in-time snapshot safe for concurrent lookups.
func (s *Scaddar) ConcurrentLocator(factory scaddar.SourceFactory) (*scaddar.SafeLocator, error) {
	if factory == nil {
		return nil, fmt.Errorf("placement: concurrent locator needs a source factory")
	}
	f := factory
	if s.epoch > 0 {
		epoch, bits := s.epoch, s.bits
		f = func(seed uint64) prng.Source {
			return &epochSource{inner: factory(seed), epoch: epoch, bits: bits}
		}
	}
	return scaddar.NewSafeLocator(s.hist.Clone(), f)
}

// epochSource applies the post-Rebaseline transform of blockX0 — mix the
// raw value with the epoch counter and truncate to the declared width — to
// every output of an inner source, so SafeLocator sequences built from it
// reproduce the strategy's epoch-mixed X0 values.
type epochSource struct {
	inner prng.Source
	epoch uint64
	bits  uint
}

func (s *epochSource) Next() uint64 { return prng.Combine(s.epoch, s.inner.Next()) >> (64 - s.bits) }
func (s *epochSource) Bits() uint   { return s.bits }
func (s *epochSource) Seed() uint64 { return s.inner.Seed() }
func (s *epochSource) Reset()       { s.inner.Reset() }

// ConcurrentLocatorProvider is a strategy that can produce point-in-time
// SafeLocator snapshots for concurrent read paths (Scaddar implements it).
type ConcurrentLocatorProvider interface {
	Strategy
	ConcurrentLocator(factory scaddar.SourceFactory) (*scaddar.SafeLocator, error)
}

// AddDisks records an addition operation.
func (s *Scaddar) AddDisks(count int) error {
	_, err := s.hist.Add(count)
	return err
}

// RemoveDisks records a removal operation.
func (s *Scaddar) RemoveDisks(indices ...int) error {
	_, err := s.hist.Remove(indices...)
	return err
}
