package placement

import (
	"fmt"

	"scaddar/internal/prng"
	"scaddar/internal/scaddar"
)

// Scaddar adapts the core SCADDAR remap chain to the Strategy interface.
//
// Beyond the paper's REMAP chain it implements the paper's own prescription
// for a chain that has exhausted its randomness budget: "In this case, we
// suggest a redistribution of all the blocks" (Section 4). Rebaseline
// performs that complete redistribution logically: the operation log resets
// to a fresh single-epoch history over the current disk count and every
// block draws a brand-new random number (its X0 mixed with the epoch
// counter), restoring the full b-bit range at the cost of moving almost all
// blocks once.
type Scaddar struct {
	hist  *scaddar.History
	x0    X0Func
	epoch uint64
	bits  uint
}

// NewScaddar creates a SCADDAR strategy over n0 initial disks with the given
// block-randomness source. The generator width defaults to 64 bits; when the
// x0 source is narrower, call SetBits so post-Rebaseline values stay within
// the same range the Budget accounts for.
func NewScaddar(n0 int, x0 X0Func) (*Scaddar, error) {
	h, err := scaddar.NewHistory(n0)
	if err != nil {
		return nil, err
	}
	return &Scaddar{hist: h, x0: x0, bits: 64}, nil
}

// SetBits declares the width of the x0 source (1..64). Epoch-mixed values
// after a Rebaseline are truncated to this width, keeping the randomness
// budget honest for narrow generators.
func (s *Scaddar) SetBits(bits uint) error {
	if bits == 0 || bits > 64 {
		return fmt.Errorf("placement: scaddar bits %d outside [1,64]", bits)
	}
	s.bits = bits
	return nil
}

// Name returns "scaddar".
func (s *Scaddar) Name() string { return "scaddar" }

// N returns the current disk count.
func (s *Scaddar) N() int { return s.hist.N() }

// History exposes the underlying operation log (shared, not a copy).
func (s *Scaddar) History() *scaddar.History { return s.hist }

// Epoch returns the number of complete redistributions performed.
func (s *Scaddar) Epoch() uint64 { return s.epoch }

// Bits returns the declared width of the x0 source.
func (s *Scaddar) Bits() uint { return s.bits }

// blockX0 returns the block's effective random number in the current epoch:
// the raw X0 in epoch 0 (byte-for-byte the paper's scheme), an
// epoch-mixed value afterwards so each redistribution draws an independent
// fresh placement.
func (s *Scaddar) blockX0(b BlockRef) uint64 {
	x := s.x0(b)
	if s.epoch == 0 {
		return x
	}
	return prng.Combine(s.epoch, x) >> (64 - s.bits)
}

// Disk locates the block through the REMAP chain.
func (s *Scaddar) Disk(b BlockRef) int { return s.hist.Locate(s.blockX0(b)) }

// Rebaseline performs the complete redistribution the paper recommends once
// the Section 4.3 budget is exhausted: the operation log is cleared (N0
// becomes the current disk count) and every block re-places with fresh
// randomness. Nearly all blocks move; afterwards the full random range is
// available again and the caller should Reset its Budget.
func (s *Scaddar) Rebaseline() error {
	h, err := scaddar.NewHistory(s.hist.N())
	if err != nil {
		return err
	}
	s.hist = h
	s.epoch++
	return nil
}

// AddDisks records an addition operation.
func (s *Scaddar) AddDisks(count int) error {
	_, err := s.hist.Add(count)
	return err
}

// RemoveDisks records a removal operation.
func (s *Scaddar) RemoveDisks(indices ...int) error {
	_, err := s.hist.Remove(indices...)
	return err
}
