// Package placement defines a common interface over block-placement
// strategies for scalable continuous-media servers and implements every
// scheme the SCADDAR paper builds on, compares against, or discusses:
//
//   - Scaddar: the paper's contribution (REMAP chains over pseudo-random
//     placement);
//   - Naive: the single-operation scheme of Section 4.1 that reuses the same
//     random number at every operation and therefore skews after the second
//     one (Figure 1);
//   - Reshuffle: complete redistribution X_0 mod N_j — perfectly random but
//     moves almost every block (Appendix A's second initial approach);
//   - RoundRobin: constrained round-robin striping, which must move nearly
//     all blocks on scaling (the Ghandeharizadeh/Kim comparison in Related
//     Work);
//   - Directory: random placement with an explicit block directory
//     (Appendix A's first initial approach) — optimal movement and perfect
//     randomness, at the cost of per-block state;
//   - Consistent: consistent hashing with virtual nodes, included as a
//     modern comparator for the same remapping problem.
//
// All strategies present the same Strategy interface, so the experiment
// harness can subject each to identical scaling schedules and measure block
// movement (RO1), load balance (RO2), and access cost (AO1) uniformly.
package placement

import (
	"fmt"

	"scaddar/internal/prng"
)

// BlockRef identifies one block: the seed of its object and its index within
// the object. Strategies must be pure functions of (BlockRef, scaling
// history, own randomness) so lookups are reproducible.
type BlockRef struct {
	Seed  uint64
	Index uint64
}

// Strategy is a block-placement scheme over an array of logical disks
// 0..N-1 that supports scaling operations.
//
// Disk must be deterministic between scaling operations: two calls with the
// same block return the same disk. Strategies are not safe for concurrent
// mutation; concurrent Disk calls between mutations are safe for the
// stateless schemes but not for Directory (which assigns lazily) — the
// simulator serializes access.
type Strategy interface {
	// Name returns a short stable identifier, e.g. "scaddar".
	Name() string
	// N returns the current number of disks.
	N() int
	// Disk returns the block's current logical disk in [0, N()).
	Disk(b BlockRef) int
	// AddDisks appends a group of count disks.
	AddDisks(count int) error
	// RemoveDisks removes the disk group with the given logical indices
	// (current numbering); survivors are renumbered compactly.
	RemoveDisks(indices ...int) error
}

// X0Func produces the original pseudo-random number X(i)_0 of a block. It is
// how randomized strategies consume the per-object sequences p_r(s_m).
type X0Func func(b BlockRef) uint64

// NewX0Func builds an X0Func over a generator factory, memoizing one indexed
// sequence per object seed.
func NewX0Func(factory func(seed uint64) prng.Source) X0Func {
	seqs := make(map[uint64]prng.Indexed)
	return func(b BlockRef) uint64 {
		seq, ok := seqs[b.Seed]
		if !ok {
			seq = prng.EnsureIndexed(factory(b.Seed))
			seqs[b.Seed] = seq
		}
		return seq.At(b.Index)
	}
}

// BatchStrategy is a Strategy that can resolve many blocks in one call,
// typically by compiling its lookup function once and fanning the sweep
// across CPU cores (Scaddar does both). DiskBatch must be equivalent to
// calling Disk per block: out[i] = Disk(blocks[i]), with out at least as
// long as blocks. Bulk consumers (Snapshot, the reorg planner) use it
// automatically when available.
type BatchStrategy interface {
	Strategy
	// DiskBatch resolves blocks[i] into out[i] for every i.
	DiskBatch(blocks []BlockRef, out []int)
}

// Snapshot records the disk of every block under a strategy, for measuring
// movement across a scaling operation. Strategies that implement
// BatchStrategy resolve the sweep in bulk (compiled and parallel for
// SCADDAR); the result is identical to the serial per-block loop.
func Snapshot(s Strategy, blocks []BlockRef) []int {
	disks := make([]int, len(blocks))
	if bs, ok := s.(BatchStrategy); ok {
		bs.DiskBatch(blocks, disks)
		return disks
	}
	for i, b := range blocks {
		disks[i] = s.Disk(b)
	}
	return disks
}

// LoadVector counts blocks per logical disk under a strategy, using the
// bulk path when the strategy provides one.
func LoadVector(s Strategy, blocks []BlockRef) []int {
	counts := make([]int, s.N())
	if bs, ok := s.(BatchStrategy); ok {
		for _, d := range Snapshot(bs, blocks) {
			counts[d]++
		}
		return counts
	}
	for _, b := range blocks {
		counts[s.Disk(b)]++
	}
	return counts
}

// Moves compares two per-block disk snapshots and returns the number of
// blocks whose disk changed. The snapshots must be over the same block list.
// Logical renumbering after removals is the caller's concern: compare
// physical identities (see MovedPhysical) when removals are involved.
func Moves(before, after []int) (int, error) {
	if len(before) != len(after) {
		return 0, fmt.Errorf("placement: snapshot lengths %d and %d differ", len(before), len(after))
	}
	n := 0
	for i := range before {
		if before[i] != after[i] {
			n++
		}
	}
	return n, nil
}

// SurvivorMap builds the mapping old-logical-index -> new-logical-index for
// a removal of the (sorted, distinct) removed indices; removed disks map to
// -1. It lets callers compare snapshots across a removal without counting
// pure renumbering as movement.
func SurvivorMap(nBefore int, removed []int) []int {
	m := make([]int, nBefore)
	ri, shift := 0, 0
	for i := 0; i < nBefore; i++ {
		if ri < len(removed) && removed[ri] == i {
			m[i] = -1
			ri++
			shift++
			continue
		}
		m[i] = i - shift
	}
	return m
}

// MovedPhysical counts blocks whose *physical* disk changed across a removal:
// a block on a surviving disk that kept its (renumbered) position did not
// move. before is the pre-removal snapshot, after the post-removal one, and
// removed the sorted removed indices in the pre-removal numbering.
func MovedPhysical(before, after []int, nBefore int, removed []int) (int, error) {
	if len(before) != len(after) {
		return 0, fmt.Errorf("placement: snapshot lengths %d and %d differ", len(before), len(after))
	}
	m := SurvivorMap(nBefore, removed)
	n := 0
	for i := range before {
		if m[before[i]] != after[i] {
			n++
		}
	}
	return n, nil
}

// OptimalMoveFraction returns z_j of Definition 3.4: the minimum fraction of
// all blocks that must move to rebalance a scaling operation from nBefore to
// nAfter disks.
func OptimalMoveFraction(nBefore, nAfter int) float64 {
	if nAfter > nBefore {
		return float64(nAfter-nBefore) / float64(nAfter)
	}
	return float64(nBefore-nAfter) / float64(nBefore)
}
