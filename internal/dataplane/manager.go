package dataplane

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"scaddar/internal/disk"
)

// Manager owns the per-disk segment stores under one root directory, one
// subdirectory per stable disk ID. It is the disk.PayloadFactory the CM
// server uses to attach payload backends as disks join the array.
type Manager struct {
	root string
	opts Options

	mu     sync.Mutex
	stores map[int]*Store
	closed bool
}

// NewManager creates a manager rooted at dir, creating it if needed.
func NewManager(root string, opts Options) (*Manager, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("dataplane: create payload root: %w", err)
	}
	return &Manager{root: root, opts: opts, stores: make(map[int]*Store)}, nil
}

// diskDir names the directory holding one disk's segments.
func (m *Manager) diskDir(id int) string {
	return filepath.Join(m.root, fmt.Sprintf("disk-%05d", id))
}

// Open opens (or creates) the store for one disk, recovering its index.
// Opening the same disk twice returns the same store.
func (m *Manager) Open(id int) (*Store, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrStoreClosed
	}
	if st, ok := m.stores[id]; ok {
		return st, nil
	}
	st, err := OpenStore(m.diskDir(id), m.opts)
	if err != nil {
		return nil, err
	}
	m.stores[id] = st
	return st, nil
}

// Factory adapts the manager to the disk.PayloadFactory the CM server
// expects.
func (m *Manager) Factory() disk.PayloadFactory {
	return func(id int) (disk.PayloadStore, error) { return m.Open(id) }
}

// Store returns the already-open store for a disk, or nil.
func (m *Manager) Store(id int) *Store {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stores[id]
}

// DiskIDs lists every disk that has a payload directory on disk, open or
// not, in ascending order.
func (m *Manager) DiskIDs() ([]int, error) {
	entries, err := os.ReadDir(m.root)
	if err != nil {
		return nil, fmt.Errorf("dataplane: read payload root: %w", err)
	}
	var ids []int
	for _, de := range entries {
		name := de.Name()
		if !de.IsDir() || !strings.HasPrefix(name, "disk-") {
			continue
		}
		id, err := strconv.Atoi(strings.TrimPrefix(name, "disk-"))
		if err != nil {
			continue
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids, nil
}

// Retain destroys the payload directories of every disk NOT in keep — the
// reconcile step that garbage-collects directories left behind by disks
// that were scaled out (or never replayed) before a crash.
func (m *Manager) Retain(keep []int) error {
	keepSet := make(map[int]bool, len(keep))
	for _, id := range keep {
		keepSet[id] = true
	}
	ids, err := m.DiskIDs()
	if err != nil {
		return err
	}
	for _, id := range ids {
		if keepSet[id] {
			continue
		}
		m.mu.Lock()
		st := m.stores[id]
		delete(m.stores, id)
		m.mu.Unlock()
		if st != nil {
			if err := st.Destroy(); err != nil {
				return err
			}
			continue
		}
		if err := os.RemoveAll(m.diskDir(id)); err != nil {
			return fmt.Errorf("dataplane: remove stale payload dir: %w", err)
		}
	}
	return nil
}

// LiveBytes sums the live payload bytes across all open stores.
func (m *Manager) LiveBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int64
	for _, st := range m.stores {
		n += st.LiveBytes()
	}
	return n
}

// Close closes every open store (checkpointing their indexes).
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	var firstErr error
	for _, st := range m.stores {
		if err := st.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
