package dataplane

import (
	"bytes"
	"testing"
)

func TestSeededContentDeterministicAndDistinct(t *testing.T) {
	a := SeededContent(1, 2, 1024)
	b := SeededContent(1, 2, 1024)
	if !bytes.Equal(a, b) {
		t.Fatal("oracle not deterministic")
	}
	if bytes.Equal(a, SeededContent(1, 3, 1024)) {
		t.Fatal("adjacent indices collide")
	}
	if bytes.Equal(a, SeededContent(2, 2, 1024)) {
		t.Fatal("adjacent seeds collide")
	}
	// A prefix of a longer block matches the shorter block byte-for-byte.
	if !bytes.Equal(a[:100], SeededContent(1, 2, 100)) {
		t.Fatal("oracle not prefix-stable")
	}
}

func TestVerifySeededContent(t *testing.T) {
	for _, n := range []int64{0, 1, 7, 8, 9, 63, 64, 65, 1024} {
		data := SeededContent(5, 9, n)
		if !VerifySeededContent(data, 5, 9) {
			t.Fatalf("verify rejected oracle bytes at len %d", n)
		}
		if n > 0 {
			data[n-1] ^= 0x10
			if VerifySeededContent(data, 5, 9) {
				t.Fatalf("verify accepted corrupt bytes at len %d", n)
			}
		}
	}
}
