package dataplane

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"

	"scaddar/internal/bufpool"
	"scaddar/internal/disk"
)

// Typed errors for the segment store, distinguishable with errors.Is.
var (
	// ErrPayloadNotFound is returned by Get for a block the store does not
	// hold.
	ErrPayloadNotFound = errors.New("dataplane: payload not found")
	// ErrStoreClosed is returned by operations on a closed store.
	ErrStoreClosed = errors.New("dataplane: segment store closed")
	// ErrCorruptPayload is returned when a stored record fails its CRC or
	// structural checks on read — the on-disk bytes rotted after the
	// recovery scan accepted them.
	ErrCorruptPayload = errors.New("dataplane: corrupt payload record")
)

// Segment file format constants. The framing deliberately mirrors the
// metadata journal (internal/store): little-endian length, CRC-32C
// (Castagnoli) over the payload, and a recovery scan that trusts the
// longest valid prefix.
const (
	segMagic   = "SCPB" // "SCaddar Payload Blocks"
	segVersion = 1
	// segHeaderLen is magic + version byte + segment sequence.
	segHeaderLen = len(segMagic) + 1 + 8
	// recHeaderLen is the record length + CRC frame.
	recHeaderLen = 8
	// maxPayloadRecord bounds a single record so a corrupt length cannot
	// force a huge allocation during the recovery scan.
	maxPayloadRecord = 64 << 20
	// Record kinds: a stored payload and a deletion tombstone.
	recPut = 0
	recDel = 1
	// maxCoalescedSpan caps how many bytes of physically adjacent records a
	// batched read merges into one ReadAt, bounding the shared buffer a
	// single slow consumer can pin.
	maxCoalescedSpan = 4 << 20
)

// indexFileName is the optional index checkpoint a clean Close writes so
// the next Open can skip the full segment scan.
const indexFileName = "index.idx"

// indexMagic introduces the index checkpoint file.
const indexMagic = "SCPI"

// payloadCRC is the Castagnoli table, matching the metadata journal.
var payloadCRC = crc32.MakeTable(crc32.Castagnoli)

// Options configure a segment store.
type Options struct {
	// SegmentMaxBytes rotates the active segment once it grows past this
	// size. Zero means the 64 MiB default.
	SegmentMaxBytes int64
	// SyncOnPut fsyncs after every append. Off by default: payloads are
	// re-materializable from the content oracle and the metadata journal
	// is the durability record, so the data plane trades fsync latency for
	// a reconcile pass on recovery.
	SyncOnPut bool
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.SegmentMaxBytes <= 0 {
		o.SegmentMaxBytes = 64 << 20
	}
	return o
}

// entry locates one live block payload inside a segment.
type entry struct {
	seg uint64 // segment sequence
	off int64  // offset of the record frame (length word)
	n   int32  // payload length, including the kind byte and block ID
}

// segment is one on-disk segment file.
type segment struct {
	seq  uint64
	path string
	f    *os.File
	size int64 // bytes written, header included
	live int   // live (referenced) records
	dead int64 // frame bytes belonging to dead records and tombstones

	// pins counts reads in flight outside the store mutex. A pruned
	// segment with pins outstanding is marked doomed instead of closed:
	// the file is unlinked immediately but the descriptor stays open until
	// the last reader unpins, so compaction can never yank a file out from
	// under a concurrent read.
	pins   int
	doomed bool
}

// Store is one disk's payload store: an append-only set of CRC-framed
// segment files plus an in-memory index from block ID to record location.
// All methods are safe for concurrent use, though the CM server drives each
// store from its single owner goroutine.
type Store struct {
	dir  string
	opts Options

	mu        sync.Mutex
	segs      []*segment // ascending seq; the last one is the active segment
	bySeq     map[uint64]*segment
	index     map[disk.BlockID]entry
	nextSeq   uint64
	liveBytes int64
	closed    bool

	// readFault, when set, is consulted before every real segment read —
	// the hook the fault injector uses to make transient read errors fire
	// on actual file I/O (not just the simulated access accounting).
	readFault func(disk.BlockID) error

	// scratch is the append buffer, reused across Puts.
	scratch []byte
}

// OpenStore opens (or creates) the segment store rooted at dir and recovers
// its index: from the index checkpoint plus segment tails when the
// checkpoint is valid, or by a full scan of every segment otherwise. A
// checkpoint that references a pruned or shorter-than-recorded segment is
// discarded and the store falls back to the full scan. Torn or corrupt
// record suffixes are truncated — the store trusts the longest valid prefix
// of each segment, like the metadata journal.
func OpenStore(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dataplane: create store dir: %w", err)
	}
	s := &Store{
		dir:   dir,
		opts:  opts.withDefaults(),
		bySeq: make(map[uint64]*segment),
		index: make(map[disk.BlockID]entry),
	}
	if err := s.load(); err != nil {
		s.closeFiles()
		return nil, err
	}
	return s, nil
}

// segPath names a segment file by sequence.
func (s *Store) segPath(seq uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("seg-%016x.blk", seq))
}

// load discovers segment files, recovers the index, and ensures an active
// segment exists.
func (s *Store) load() error {
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("dataplane: read store dir: %w", err)
	}
	var seqs []uint64
	for _, de := range names {
		name := de.Name()
		if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".blk") {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".blk"), 16, 64)
		if err != nil {
			continue // not ours; leave it alone
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		f, err := os.OpenFile(s.segPath(seq), os.O_RDWR, 0o644)
		if err != nil {
			return fmt.Errorf("dataplane: open segment: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return fmt.Errorf("dataplane: stat segment: %w", err)
		}
		seg := &segment{seq: seq, path: s.segPath(seq), f: f, size: st.Size()}
		s.segs = append(s.segs, seg)
		s.bySeq[seq] = seg
		if seq >= s.nextSeq {
			s.nextSeq = seq + 1
		}
	}
	covered, ok := s.loadIndexCheckpoint()
	if !ok {
		// Full scan: replay every segment in sequence order so later puts
		// and tombstones override earlier records.
		s.index = make(map[disk.BlockID]entry)
		covered = make(map[uint64]int64, len(s.segs))
	}
	for _, seg := range s.segs {
		from := covered[seg.seq]
		if from < int64(segHeaderLen) {
			from = 0 // scan from the start, validating the header
		}
		if err := s.scanSegment(seg, from); err != nil {
			return err
		}
	}
	s.recountLive()
	// The checkpoint is consumed; a stale copy must not shadow appends made
	// after this open if the process dies without a clean Close.
	os.Remove(filepath.Join(s.dir, indexFileName))
	if len(s.segs) == 0 {
		if err := s.newSegment(); err != nil {
			return err
		}
	}
	return nil
}

// scanSegment replays one segment's records into the index starting at
// offset from (0 means the whole file, header included). The first torn or
// corrupt record truncates the file — everything before it is trusted,
// everything after is discarded.
func (s *Store) scanSegment(seg *segment, from int64) error {
	data := make([]byte, seg.size-from)
	if n, err := seg.f.ReadAt(data, from); err != nil && !(errors.Is(err, io.EOF) && n == len(data)) {
		return fmt.Errorf("dataplane: read segment %s: %w", seg.path, err)
	}
	off := int64(0)
	if from == 0 {
		if len(data) < segHeaderLen || string(data[:4]) != segMagic ||
			data[4] != segVersion || binary.LittleEndian.Uint64(data[5:13]) != seg.seq {
			// A header too corrupt to trust: drop the whole segment's
			// records by truncating to an empty header rewrite.
			return s.truncateSegment(seg, from, 0)
		}
		off = int64(segHeaderLen)
	}
	for {
		if int64(len(data))-off < recHeaderLen {
			break
		}
		n := binary.LittleEndian.Uint32(data[off:])
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if n == 0 || n > maxPayloadRecord || off+recHeaderLen+int64(n) > int64(len(data)) {
			return s.truncateSegment(seg, from, off)
		}
		payload := data[off+recHeaderLen : off+recHeaderLen+int64(n)]
		if crc32.Checksum(payload, payloadCRC) != crc {
			return s.truncateSegment(seg, from, off)
		}
		kind, bid, _, ok := decodeRecord(payload)
		if !ok {
			return s.truncateSegment(seg, from, off)
		}
		switch kind {
		case recPut:
			s.index[bid] = entry{seg: seg.seq, off: from + off, n: int32(n)}
		case recDel:
			delete(s.index, bid)
		}
		off += recHeaderLen + int64(n)
	}
	if tail := int64(len(data)) - off; tail > 0 {
		// A partial record header at the very end is a torn write too.
		return s.truncateSegment(seg, from, off)
	}
	return nil
}

// truncateSegment discards a torn or corrupt suffix, keeping the longest
// valid prefix.
func (s *Store) truncateSegment(seg *segment, from, off int64) error {
	keep := from + off
	if err := seg.f.Truncate(keep); err != nil {
		return fmt.Errorf("dataplane: truncate torn segment %s: %w", seg.path, err)
	}
	seg.size = keep
	// Index entries pointing past the truncation point are impossible:
	// the scan processes records in offset order and had not indexed the
	// discarded suffix yet.
	return nil
}

// recountLive recomputes per-segment live counts, dead bytes, and the
// store-wide live byte total from the recovered index.
func (s *Store) recountLive() {
	liveFrames := make(map[uint64]int64, len(s.segs))
	s.liveBytes = 0
	for _, seg := range s.segs {
		seg.live, seg.dead = 0, 0
	}
	for bid, e := range s.index {
		if seg := s.bySeq[e.seg]; seg != nil {
			seg.live++
			liveFrames[e.seg] += recHeaderLen + int64(e.n)
		}
		s.liveBytes += dataLen(e, bid)
	}
	for _, seg := range s.segs {
		payload := seg.size - int64(segHeaderLen)
		if seg.size < int64(segHeaderLen) {
			payload = 0
		}
		seg.dead = payload - liveFrames[seg.seq]
	}
}

// newSegment creates and activates a fresh segment.
func (s *Store) newSegment() error {
	seq := s.nextSeq
	s.nextSeq++
	f, err := os.OpenFile(s.segPath(seq), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("dataplane: create segment: %w", err)
	}
	hdr := make([]byte, segHeaderLen)
	copy(hdr, segMagic)
	hdr[4] = segVersion
	binary.LittleEndian.PutUint64(hdr[5:], seq)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("dataplane: write segment header: %w", err)
	}
	seg := &segment{seq: seq, path: s.segPath(seq), f: f, size: int64(segHeaderLen)}
	s.segs = append(s.segs, seg)
	s.bySeq[seq] = seg
	return nil
}

// active returns the segment currently receiving appends.
func (s *Store) active() *segment { return s.segs[len(s.segs)-1] }

// dataLen returns the block-data byte count of a put record's entry: the
// record payload minus the kind byte and the block-ID varint.
func dataLen(e entry, bid disk.BlockID) int64 {
	n := int64(e.n) - 1
	v := uint64(bid)
	for {
		n--
		if v < 0x80 {
			return n
		}
		v >>= 7
	}
}

// decodeRecord splits a record payload into kind, block ID, and data.
func decodeRecord(payload []byte) (kind int, bid disk.BlockID, data []byte, ok bool) {
	if len(payload) < 1 {
		return 0, 0, nil, false
	}
	kind = int(payload[0])
	if kind != recPut && kind != recDel {
		return 0, 0, nil, false
	}
	id, n := binary.Uvarint(payload[1:])
	if n <= 0 {
		return 0, 0, nil, false
	}
	return kind, disk.BlockID(id), payload[1+n:], true
}

// appendRecord frames and appends one record to the active segment,
// rotating first if the segment is full. Returns the record's location.
func (s *Store) appendRecord(kind int, bid disk.BlockID, data []byte) (entry, error) {
	seg := s.active()
	if seg.size >= s.opts.SegmentMaxBytes && seg.size > int64(segHeaderLen) {
		if err := s.newSegment(); err != nil {
			return entry{}, err
		}
		seg = s.active()
	}
	s.scratch = s.scratch[:0]
	s.scratch = append(s.scratch, 0, 0, 0, 0, 0, 0, 0, 0) // frame placeholder
	s.scratch = append(s.scratch, byte(kind))
	s.scratch = binary.AppendUvarint(s.scratch, uint64(bid))
	s.scratch = append(s.scratch, data...)
	payload := s.scratch[recHeaderLen:]
	binary.LittleEndian.PutUint32(s.scratch[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(s.scratch[4:], crc32.Checksum(payload, payloadCRC))
	if _, err := seg.f.WriteAt(s.scratch, seg.size); err != nil {
		return entry{}, fmt.Errorf("dataplane: append to %s: %w", seg.path, err)
	}
	e := entry{seg: seg.seq, off: seg.size, n: int32(len(payload))}
	seg.size += int64(len(s.scratch))
	if s.opts.SyncOnPut {
		if err := seg.f.Sync(); err != nil {
			return entry{}, fmt.Errorf("dataplane: sync %s: %w", seg.path, err)
		}
	}
	return e, nil
}

// Put stores a block payload, replacing any previous payload for the same
// block (the old record becomes dead bytes).
func (s *Store) Put(bid disk.BlockID, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrStoreClosed
	}
	e, err := s.appendRecord(recPut, bid, data)
	if err != nil {
		return err
	}
	if old, ok := s.index[bid]; ok {
		s.liveBytes -= dataLen(old, bid)
		s.retireLocked(old)
	}
	s.index[bid] = e
	if seg := s.bySeq[e.seg]; seg != nil {
		seg.live++
	}
	s.liveBytes += int64(len(data))
	return nil
}

// pinLocked resolves a block to its record location and pins the segment
// so the file survives until unpinLocked, letting the caller perform the
// read outside the store mutex. The injected read fault, if any, fires
// here — before the file I/O, like a media error would.
func (s *Store) pinLocked(bid disk.BlockID) (entry, *segment, error) {
	if fault := s.readFault; fault != nil {
		if err := fault(bid); err != nil {
			return entry{}, nil, err
		}
	}
	e, ok := s.index[bid]
	if !ok {
		return entry{}, nil, fmt.Errorf("%w: block %d", ErrPayloadNotFound, bid)
	}
	seg := s.bySeq[e.seg]
	if seg == nil {
		return entry{}, nil, fmt.Errorf("%w: block %d indexed into missing segment %d", ErrCorruptPayload, bid, e.seg)
	}
	seg.pins++
	return e, seg, nil
}

// unpinLocked drops one read pin; the last unpin of a doomed segment
// closes the (already unlinked) file.
func (s *Store) unpinLocked(seg *segment) {
	seg.pins--
	if seg.pins == 0 && seg.doomed && seg.f != nil {
		seg.f.Close()
		seg.f = nil
	}
}

// verifyRecord checks a framed record read back from a segment and returns
// the block data inside it.
func verifyRecord(frame []byte, bid disk.BlockID) ([]byte, error) {
	n := binary.LittleEndian.Uint32(frame[0:])
	crc := binary.LittleEndian.Uint32(frame[4:])
	payload := frame[recHeaderLen:]
	if int(n) != len(payload) || crc32.Checksum(payload, payloadCRC) != crc {
		return nil, fmt.Errorf("%w: block %d frame check failed", ErrCorruptPayload, bid)
	}
	kind, got, data, ok := decodeRecord(payload)
	if !ok || kind != recPut || got != bid {
		return nil, fmt.Errorf("%w: block %d record mismatch", ErrCorruptPayload, bid)
	}
	return data, nil
}

// Get reads a block payload, verifying its CRC frame. The store mutex is
// held only for the index lookup and segment pin — the file I/O and CRC
// verification run outside it, so slow media never serializes writers,
// compaction, or other readers behind this read.
func (s *Store) Get(bid disk.BlockID) ([]byte, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrStoreClosed
	}
	e, seg, err := s.pinLocked(bid)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	s.mu.Unlock()

	buf := make([]byte, recHeaderLen+int(e.n))
	_, rerr := seg.f.ReadAt(buf, e.off)

	s.mu.Lock()
	s.unpinLocked(seg)
	s.mu.Unlock()

	if rerr != nil {
		return nil, fmt.Errorf("dataplane: read %s: %w", seg.path, rerr)
	}
	return verifyRecord(buf, bid)
}

// pendingRead carries one batch slot from the locked planning pass to the
// unlocked I/O pass.
type pendingRead struct {
	idx int // position in the caller's request slice
	e   entry
	seg *segment
}

// batchScratchPool recycles the planning slice across ReadBlocks calls so
// the steady-state round pipeline performs no per-batch allocation.
var batchScratchPool = sync.Pool{New: func() any { return new([]pendingRead) }}

// Compile-time check: Store provides the batched read fast path.
var _ disk.BatchReader = (*Store)(nil)

// ReadBlocks resolves a batch of payload reads in one pass: under the
// store mutex it consults the fault hook, looks up and pins every
// requested record, then outside the lock it sorts the records by
// (segment, offset), coalesces physically adjacent frames into single
// ReadAt calls, and verifies each record's CRC frame individually.
// Coalesced neighbours share one pooled buffer — one reference per
// successful slot — and a corrupt or faulted record fails only its own
// slot, never the rest of the span.
func (s *Store) ReadBlocks(reqs []disk.BlockRead) {
	scratch := batchScratchPool.Get().(*[]pendingRead)
	pend := (*scratch)[:0]

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		for i := range reqs {
			reqs[i].Payload, reqs[i].Err = bufpool.Payload{}, ErrStoreClosed
		}
		*scratch = pend
		batchScratchPool.Put(scratch)
		return
	}
	for i := range reqs {
		reqs[i].Payload = bufpool.Payload{}
		e, seg, err := s.pinLocked(reqs[i].Block)
		if err != nil {
			reqs[i].Err = err
			continue
		}
		reqs[i].Err = nil
		pend = append(pend, pendingRead{idx: i, e: e, seg: seg})
	}
	s.mu.Unlock()

	slices.SortFunc(pend, func(a, b pendingRead) int {
		if a.seg.seq != b.seg.seq {
			if a.seg.seq < b.seg.seq {
				return -1
			}
			return 1
		}
		switch {
		case a.e.off < b.e.off:
			return -1
		case a.e.off > b.e.off:
			return 1
		default:
			return 0
		}
	})

	for i := 0; i < len(pend); {
		seg := pend[i].seg
		spanStart := pend[i].e.off
		spanEnd := spanStart + recHeaderLen + int64(pend[i].e.n)
		j := i + 1
		for j < len(pend) && pend[j].seg == seg {
			off := pend[j].e.off
			end := off + recHeaderLen + int64(pend[j].e.n)
			// Records never overlap, so a follower either duplicates a
			// frame already inside the span or starts exactly at its end.
			if off > spanEnd || (end > spanEnd && spanEnd-spanStart >= maxCoalescedSpan) {
				break
			}
			if end > spanEnd {
				spanEnd = end
			}
			j++
		}
		buf := bufpool.Get(int(spanEnd - spanStart))
		data := buf.Data()
		if _, err := seg.f.ReadAt(data, spanStart); err != nil {
			for k := i; k < j; k++ {
				reqs[pend[k].idx].Err = fmt.Errorf("dataplane: read %s: %w", seg.path, err)
			}
		} else {
			for k := i; k < j; k++ {
				p := pend[k]
				r := &reqs[p.idx]
				frame := data[p.e.off-spanStart : p.e.off-spanStart+recHeaderLen+int64(p.e.n)]
				blockData, verr := verifyRecord(frame, r.Block)
				if verr != nil {
					r.Err = verr
					continue
				}
				buf.Retain()
				r.Payload = bufpool.Payload{Data: blockData, Buf: buf}
			}
		}
		buf.Release() // drop the planning reference; live refs = successful slots
		i = j
	}

	s.mu.Lock()
	for i := range pend {
		s.unpinLocked(pend[i].seg)
	}
	s.mu.Unlock()

	*scratch = pend
	batchScratchPool.Put(scratch)
}

// Delete removes a block payload by appending a tombstone. Deleting an
// absent block is a no-op.
func (s *Store) Delete(bid disk.BlockID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrStoreClosed
	}
	e, ok := s.index[bid]
	if !ok {
		return nil
	}
	te, err := s.appendRecord(recDel, bid, nil)
	if err != nil {
		return err
	}
	delete(s.index, bid)
	s.retireLocked(e)
	s.liveBytes -= dataLen(e, bid)
	// The tombstone itself is immediately dead weight.
	if seg := s.bySeq[te.seg]; seg != nil {
		seg.dead += recHeaderLen + int64(te.n)
	}
	return nil
}

// retireLocked marks a record dead and prunes its segment if nothing live
// remains in a sealed segment.
func (s *Store) retireLocked(e entry) {
	seg := s.bySeq[e.seg]
	if seg == nil {
		return
	}
	seg.live--
	seg.dead += recHeaderLen + int64(e.n)
	if seg.live == 0 && seg != s.active() {
		s.pruneLocked(seg)
	}
}

// pruneLocked deletes a fully-dead sealed segment. The file is unlinked
// immediately, but if readers still hold pins the descriptor stays open
// (doomed) until the last unpin — in-flight reads finish against the
// unlinked inode instead of racing the close.
func (s *Store) pruneLocked(dead *segment) {
	os.Remove(dead.path)
	delete(s.bySeq, dead.seq)
	for i, seg := range s.segs {
		if seg == dead {
			s.segs = append(s.segs[:i], s.segs[i+1:]...)
			break
		}
	}
	dead.doomed = true
	if dead.pins == 0 {
		dead.f.Close()
		dead.f = nil
	}
}

// Has reports whether the store holds a payload for the block.
func (s *Store) Has(bid disk.BlockID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[bid]
	return ok
}

// Blocks returns the IDs of all stored payloads in unspecified order.
func (s *Store) Blocks() []disk.BlockID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]disk.BlockID, 0, len(s.index))
	for bid := range s.index {
		out = append(out, bid)
	}
	return out
}

// Len returns the number of stored payloads.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// LiveBytes returns the total payload bytes currently referenced by the
// index (excluding framing and dead records).
func (s *Store) LiveBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.liveBytes
}

// SetReadFault installs (or clears, with nil) the injected read-fault hook
// consulted, per block, before every Get's or ReadBlocks' file I/O.
func (s *Store) SetReadFault(f func(disk.BlockID) error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.readFault = f
}

// Compact rewrites every sealed segment that carries dead bytes, copying
// its live records into the active segment and deleting the old file. The
// store stays readable throughout; only the index entries of moved records
// change.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrStoreClosed
	}
	// Collect candidates first: rewriting appends to the active segment,
	// which can rotate and grow s.segs under us.
	var victims []*segment
	for _, seg := range s.segs[:len(s.segs)-1] {
		if seg.dead > 0 {
			victims = append(victims, seg)
		}
	}
	for _, seg := range victims {
		var moved []disk.BlockID
		for bid, e := range s.index {
			if e.seg == seg.seq {
				moved = append(moved, bid)
			}
		}
		sort.Slice(moved, func(i, j int) bool { return moved[i] < moved[j] })
		for _, bid := range moved {
			e := s.index[bid]
			buf := make([]byte, recHeaderLen+int(e.n))
			if _, err := seg.f.ReadAt(buf, e.off); err != nil {
				return fmt.Errorf("dataplane: compact read %s: %w", seg.path, err)
			}
			_, _, data, ok := decodeRecord(buf[recHeaderLen:])
			if !ok {
				return fmt.Errorf("%w: block %d during compaction", ErrCorruptPayload, bid)
			}
			ne, err := s.appendRecord(recPut, bid, data)
			if err != nil {
				return err
			}
			s.index[bid] = ne
			if nseg := s.bySeq[ne.seg]; nseg != nil {
				nseg.live++
			}
			seg.live--
		}
		s.pruneLocked(seg)
	}
	return nil
}

// Sync flushes every segment file to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrStoreClosed
	}
	for _, seg := range s.segs {
		if err := seg.f.Sync(); err != nil {
			return fmt.Errorf("dataplane: sync %s: %w", seg.path, err)
		}
	}
	return nil
}

// Checkpoint writes the index checkpoint file so the next Open can recover
// without a full scan. It records, per segment, how many bytes the
// checkpoint covers; appends after the checkpoint are recovered by scanning
// each segment's tail.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrStoreClosed
	}
	return s.writeIndexCheckpointLocked()
}

// writeIndexCheckpointLocked serializes the index. Format: magic, version,
// segment table (seq, covered size), entry table (block ID, seq, offset,
// payload length), all uvarint past the fixed header.
func (s *Store) writeIndexCheckpointLocked() error {
	buf := make([]byte, 0, 64+len(s.index)*12)
	buf = append(buf, indexMagic...)
	buf = append(buf, segVersion)
	buf = binary.AppendUvarint(buf, uint64(len(s.segs)))
	for _, seg := range s.segs {
		buf = binary.AppendUvarint(buf, seg.seq)
		buf = binary.AppendUvarint(buf, uint64(seg.size))
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.index)))
	for bid, e := range s.index {
		buf = binary.AppendUvarint(buf, uint64(bid))
		buf = binary.AppendUvarint(buf, e.seg)
		buf = binary.AppendUvarint(buf, uint64(e.off))
		buf = binary.AppendUvarint(buf, uint64(e.n))
	}
	sum := crc32.Checksum(buf, payloadCRC)
	buf = binary.LittleEndian.AppendUint32(buf, sum)
	tmp := filepath.Join(s.dir, indexFileName+".tmp")
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("dataplane: write index checkpoint: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, indexFileName)); err != nil {
		return fmt.Errorf("dataplane: install index checkpoint: %w", err)
	}
	return nil
}

// loadIndexCheckpoint tries to recover the index from the checkpoint file.
// It returns the per-segment covered sizes and true on success. Any
// structural problem — bad CRC, a referenced segment that was pruned, or a
// segment shorter than the covered size — discards the checkpoint so Open
// falls back to the full scan.
func (s *Store) loadIndexCheckpoint() (map[uint64]int64, bool) {
	path := filepath.Join(s.dir, indexFileName)
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	if len(buf) < len(indexMagic)+1+4 || string(buf[:4]) != indexMagic || buf[4] != segVersion {
		return nil, false
	}
	body, tail := buf[:len(buf)-4], buf[len(buf)-4:]
	if crc32.Checksum(body, payloadCRC) != binary.LittleEndian.Uint32(tail) {
		return nil, false
	}
	r := body[5:]
	next := func() (uint64, bool) {
		v, n := binary.Uvarint(r)
		if n <= 0 {
			return 0, false
		}
		r = r[n:]
		return v, true
	}
	nSegs, ok := next()
	if !ok {
		return nil, false
	}
	covered := make(map[uint64]int64, nSegs)
	for i := uint64(0); i < nSegs; i++ {
		seq, ok1 := next()
		size, ok2 := next()
		if !ok1 || !ok2 {
			return nil, false
		}
		seg := s.bySeq[seq]
		if seg == nil || seg.size < int64(size) {
			// The checkpoint references a pruned (or truncated) segment:
			// it no longer describes reality. Full rescan.
			return nil, false
		}
		covered[seq] = int64(size)
	}
	nEntries, ok := next()
	if !ok {
		return nil, false
	}
	idx := make(map[disk.BlockID]entry, nEntries)
	for i := uint64(0); i < nEntries; i++ {
		bid, ok1 := next()
		seq, ok2 := next()
		off, ok3 := next()
		n, ok4 := next()
		if !ok1 || !ok2 || !ok3 || !ok4 {
			return nil, false
		}
		if _, exists := covered[seq]; !exists {
			return nil, false
		}
		idx[disk.BlockID(bid)] = entry{seg: seq, off: int64(off), n: int32(n)}
	}
	if len(r) != 0 {
		return nil, false
	}
	s.index = idx
	return covered, true
}

// Wipe discards every payload and segment file, leaving an empty store —
// the data-loss half of a whole-disk failure.
func (s *Store) Wipe() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrStoreClosed
	}
	for _, seg := range s.segs {
		os.Remove(seg.path)
		seg.doomed = true
		if seg.pins == 0 {
			seg.f.Close()
			seg.f = nil
		}
	}
	os.Remove(filepath.Join(s.dir, indexFileName))
	s.segs = nil
	s.bySeq = make(map[uint64]*segment)
	s.index = make(map[disk.BlockID]entry)
	s.liveBytes = 0
	return s.newSegment()
}

// Destroy wipes the store and removes its directory — the disk left the
// array for good.
func (s *Store) Destroy() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closeFilesLocked()
	s.closed = true
	return os.RemoveAll(s.dir)
}

// Close checkpoints the index and closes every segment file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	err := s.writeIndexCheckpointLocked()
	s.closeFilesLocked()
	s.closed = true
	return err
}

// closeFiles closes segment files without taking the lock (load-error path).
func (s *Store) closeFiles() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closeFilesLocked()
}

// closeFilesLocked closes every open segment file.
func (s *Store) closeFilesLocked() {
	for _, seg := range s.segs {
		if seg.f != nil {
			seg.f.Close()
		}
	}
}
