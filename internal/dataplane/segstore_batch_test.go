package dataplane

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"scaddar/internal/bufpool"
	"scaddar/internal/disk"
)

// readBatch runs ReadBlocks over the given block IDs and returns the
// filled slots.
func readBatch(s *Store, bids ...disk.BlockID) []disk.BlockRead {
	reqs := make([]disk.BlockRead, len(bids))
	for i, bid := range bids {
		reqs[i].Block = bid
	}
	s.ReadBlocks(reqs)
	return reqs
}

// releaseBatch drops every successful slot's buffer reference.
func releaseBatch(reqs []disk.BlockRead) {
	for i := range reqs {
		reqs[i].Payload.Release()
	}
}

func TestStoreReadBlocksRoundTrip(t *testing.T) {
	s, err := OpenStore(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const n = 64
	bids := make([]disk.BlockID, n)
	for i := 0; i < n; i++ {
		bids[i] = disk.BlockID(i)
		put(t, s, bids[i], 7, uint64(i), 2048)
	}
	base := bufpool.InUse()
	// Request out of order so the batch must sort, coalesce, and still fill
	// the caller's slots in place.
	shuffled := make([]disk.BlockID, n)
	for i := range shuffled {
		shuffled[i] = bids[(i*17)%n]
	}
	reqs := readBatch(s, shuffled...)
	for i := range reqs {
		if reqs[i].Err != nil {
			t.Fatalf("slot %d (block %d): %v", i, reqs[i].Block, reqs[i].Err)
		}
		if int64(len(reqs[i].Payload.Data)) != 2048 ||
			!VerifySeededContent(reqs[i].Payload.Data, 7, uint64(reqs[i].Block)) {
			t.Fatalf("slot %d (block %d): payload does not match oracle", i, reqs[i].Block)
		}
	}
	// Adjacent puts must have coalesced: far fewer pooled buffers than slots.
	if held := bufpool.InUse() - base; held >= n {
		t.Fatalf("batch holds %d pooled buffers for %d blocks; expected coalescing to share spans", held, n)
	}
	releaseBatch(reqs)
	if bufpool.InUse() != base {
		t.Fatalf("InUse = %d after release, want %d", bufpool.InUse(), base)
	}
}

func TestStoreReadBlocksDuplicateAndMissing(t *testing.T) {
	s, err := OpenStore(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	put(t, s, 1, 3, 1, 512)
	base := bufpool.InUse()
	reqs := readBatch(s, 1, 99, 1)
	if reqs[0].Err != nil || reqs[2].Err != nil {
		t.Fatalf("duplicate slots errored: %v / %v", reqs[0].Err, reqs[2].Err)
	}
	if !errors.Is(reqs[1].Err, ErrPayloadNotFound) {
		t.Fatalf("missing slot: %v, want ErrPayloadNotFound", reqs[1].Err)
	}
	if !VerifySeededContent(reqs[0].Payload.Data, 3, 1) || !VerifySeededContent(reqs[2].Payload.Data, 3, 1) {
		t.Fatal("duplicate slots do not match oracle")
	}
	releaseBatch(reqs)
	if bufpool.InUse() != base {
		t.Fatalf("InUse = %d after release, want %d", bufpool.InUse(), base)
	}
}

// TestStoreReadBlocksCorruptionIsPerBlock flips one byte inside the middle
// record of three physically adjacent records: the coalesced span must
// surface ErrCorruptPayload for exactly that block while its span
// neighbours verify clean — and the shared buffer must still return to the
// pool.
func TestStoreReadBlocksCorruptionIsPerBlock(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := disk.BlockID(0); i < 3; i++ {
		put(t, s, i, 5, uint64(i), 1024)
	}
	// Corrupt block 1's bytes in place on disk.
	s.mu.Lock()
	e := s.index[1]
	seg := s.bySeq[e.seg]
	s.mu.Unlock()
	b := make([]byte, 1)
	if _, err := seg.f.ReadAt(b, e.off+recHeaderLen+16); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := seg.f.WriteAt(b, e.off+recHeaderLen+16); err != nil {
		t.Fatal(err)
	}
	base := bufpool.InUse()
	reqs := readBatch(s, 0, 1, 2)
	if reqs[0].Err != nil || reqs[2].Err != nil {
		t.Fatalf("clean neighbours errored: %v / %v", reqs[0].Err, reqs[2].Err)
	}
	if !errors.Is(reqs[1].Err, ErrCorruptPayload) {
		t.Fatalf("corrupt slot: %v, want ErrCorruptPayload", reqs[1].Err)
	}
	if !VerifySeededContent(reqs[0].Payload.Data, 5, 0) || !VerifySeededContent(reqs[2].Payload.Data, 5, 2) {
		t.Fatal("span neighbours of the corrupt record do not match oracle")
	}
	releaseBatch(reqs)
	if bufpool.InUse() != base {
		t.Fatalf("InUse = %d after release, want %d", bufpool.InUse(), base)
	}
}

// TestStoreReadBlocksInjectedFaultIsPerBlock injects a transient fault for
// one block of a coalesced batch; only that slot fails.
func TestStoreReadBlocksInjectedFaultIsPerBlock(t *testing.T) {
	s, err := OpenStore(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := disk.BlockID(0); i < 4; i++ {
		put(t, s, i, 9, uint64(i), 768)
	}
	boom := errors.New("injected media error")
	s.SetReadFault(func(bid disk.BlockID) error {
		if bid == 2 {
			return boom
		}
		return nil
	})
	base := bufpool.InUse()
	reqs := readBatch(s, 0, 1, 2, 3)
	for i, r := range reqs {
		if r.Block == 2 {
			if !errors.Is(r.Err, boom) {
				t.Fatalf("faulty slot: %v, want injected error", r.Err)
			}
			continue
		}
		if r.Err != nil {
			t.Fatalf("slot %d: %v", i, r.Err)
		}
		if !VerifySeededContent(r.Payload.Data, 9, uint64(r.Block)) {
			t.Fatalf("slot %d does not match oracle", i)
		}
	}
	releaseBatch(reqs)
	if bufpool.InUse() != base {
		t.Fatalf("InUse = %d after release, want %d", bufpool.InUse(), base)
	}
}

func TestStoreReadBlocksClosed(t *testing.T) {
	s, err := OpenStore(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	put(t, s, 1, 1, 1, 128)
	s.Close()
	reqs := readBatch(s, 1)
	if !errors.Is(reqs[0].Err, ErrStoreClosed) {
		t.Fatalf("ReadBlocks on closed store: %v, want ErrStoreClosed", reqs[0].Err)
	}
}

// TestStoreConcurrentReadsAndCompaction is the regression test for the
// narrowed critical section: readers (Get and ReadBlocks) race writers,
// deletes, and repeated Compact calls. Under -race this proves file I/O
// outside the mutex cannot tear store state, and the pin protocol proves
// compaction never unlinks-and-closes a segment mid-read.
func TestStoreConcurrentReadsAndCompaction(t *testing.T) {
	s, err := OpenStore(t.TempDir(), Options{SegmentMaxBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const blocks = 64
	for i := disk.BlockID(0); i < blocks; i++ {
		put(t, s, i, 11, uint64(i), 1024)
	}
	base := bufpool.InUse()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				bid := disk.BlockID((i*7 + g) % blocks)
				if i%2 == 0 {
					data, err := s.Get(bid)
					if err != nil {
						panic(fmt.Sprintf("Get(%d): %v", bid, err))
					}
					if !VerifySeededContent(data, 11, uint64(bid)) {
						panic(fmt.Sprintf("Get(%d): oracle mismatch", bid))
					}
				} else {
					reqs := readBatch(s, bid, (bid+1)%blocks, (bid+2)%blocks)
					for _, r := range reqs {
						if r.Err != nil {
							panic(fmt.Sprintf("ReadBlocks(%d): %v", r.Block, r.Err))
						}
						if !VerifySeededContent(r.Payload.Data, 11, uint64(r.Block)) {
							panic(fmt.Sprintf("ReadBlocks(%d): oracle mismatch", r.Block))
						}
					}
					releaseBatch(reqs)
				}
			}
		}(g)
	}
	// Writer: churn overwrites (creating dead bytes across many small
	// segments) and compact continuously while the readers run.
	for round := 0; round < 30; round++ {
		for i := disk.BlockID(0); i < blocks; i++ {
			put(t, s, i, 11, uint64(i), 1024)
		}
		if err := s.Compact(); err != nil {
			t.Fatalf("Compact: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	if bufpool.InUse() != base {
		t.Fatalf("InUse = %d after drain, want %d", bufpool.InUse(), base)
	}
	for i := disk.BlockID(0); i < blocks; i++ {
		wantOracle(t, s, i, 11, uint64(i), 1024)
	}
}
