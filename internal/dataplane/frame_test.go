package dataplane

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var wire []byte
	for i := 0; i < 5; i++ {
		wire = AppendDataFrame(wire, i, SeededContent(42, uint64(i), 100))
	}
	wire = AppendEndFrame(wire, CloseEvicted)
	br := bufio.NewReader(bytes.NewReader(wire))
	for i := 0; i < 5; i++ {
		f, err := ReadFrame(br)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.End || f.Index != i || !VerifySeededContent(f.Data, 42, uint64(i)) {
			t.Fatalf("frame %d decoded wrong: %+v", i, f)
		}
	}
	f, err := ReadFrame(br)
	if err != nil || !f.End || f.Reason != CloseEvicted {
		t.Fatalf("end frame = %+v, %v", f, err)
	}
	if _, err := ReadFrame(br); !errors.Is(err, io.EOF) {
		t.Fatalf("after end frame: %v, want EOF", err)
	}
}

func TestFrameCorruptionDetected(t *testing.T) {
	wire := AppendDataFrame(nil, 3, SeededContent(1, 3, 64))
	wire[len(wire)-1] ^= 0x01
	_, err := ReadFrame(bufio.NewReader(bytes.NewReader(wire)))
	if !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("corrupt frame read = %v, want ErrFrameCorrupt", err)
	}
	// A torn header mid-stream is corruption, not clean EOF.
	_, err = ReadFrame(bufio.NewReader(bytes.NewReader(wire[:4])))
	if !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("torn header = %v, want ErrFrameCorrupt", err)
	}
}

func TestSessionBackpressureAndEviction(t *testing.T) {
	s := NewSession(1, 10, 64, SessionBufferConfig{Buffer: 2, EvictAfter: 3})
	if d, e := s.Offer(Chunk{Index: 0}); !d || e {
		t.Fatal("first offer should buffer")
	}
	if d, e := s.Offer(Chunk{Index: 1}); !d || e {
		t.Fatal("second offer should buffer")
	}
	// Buffer full: misses accumulate, eviction on the 3rd consecutive.
	if d, e := s.Offer(Chunk{Index: 2}); d || e {
		t.Fatal("third offer should miss without evicting")
	}
	if d, e := s.Offer(Chunk{Index: 3}); d || e {
		t.Fatal("fourth offer should miss without evicting")
	}
	if d, e := s.Offer(Chunk{Index: 4}); d || !e {
		t.Fatal("fifth offer should demand eviction")
	}
	if s.Misses() != 3 || s.Delivered() != 2 {
		t.Fatalf("misses=%d delivered=%d, want 3/2", s.Misses(), s.Delivered())
	}
	// Draining resets the consecutive-miss streak.
	<-s.Chunks()
	if d, e := s.Offer(Chunk{Index: 5}); !d || e {
		t.Fatal("offer after drain should buffer")
	}
	s.Close(CloseEvicted)
	s.Close(CloseDone) // idempotent; first reason wins
	if !s.Closed() || s.Reason() != CloseEvicted {
		t.Fatalf("closed=%v reason=%v", s.Closed(), s.Reason())
	}
	// Channel drains remaining chunks then reports closure.
	n := 0
	for range s.Chunks() {
		n++
	}
	if n != 2 {
		t.Fatalf("drained %d chunks after close, want 2", n)
	}
	// Offers after close are quietly dropped.
	if d, e := s.Offer(Chunk{Index: 6}); d || e {
		t.Fatal("offer after close must be a no-op")
	}
}
