package dataplane

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestFeedSinceAndEviction(t *testing.T) {
	f := NewFeed(16)
	for i := 0; i < 40; i++ {
		f.Publish(Delta{Kind: DeltaMoves, Moves: []MovedBlock{{Object: 1, Index: i}}})
	}
	if f.Seq() != 40 {
		t.Fatalf("Seq = %d, want 40", f.Seq())
	}
	// Recent history is served.
	ds, seq, err := f.Since(30)
	if err != nil || seq != 40 || len(ds) != 10 {
		t.Fatalf("Since(30) = %d deltas, seq %d, %v", len(ds), seq, err)
	}
	if ds[0].Seq != 31 || ds[9].Seq != 40 {
		t.Fatalf("Since(30) seqs = %d..%d", ds[0].Seq, ds[9].Seq)
	}
	// Evicted history demands a snapshot refetch.
	if _, _, err := f.Since(3); !errors.Is(err, ErrDeltaGone) {
		t.Fatalf("Since(3) = %v, want ErrDeltaGone", err)
	}
	// Caught-up client gets nothing.
	ds, _, err = f.Since(40)
	if err != nil || len(ds) != 0 {
		t.Fatalf("Since(40) = %d deltas, %v", len(ds), err)
	}
}

func TestFeedWaitWakesOnPublish(t *testing.T) {
	f := NewFeed(16)
	f.Publish(Delta{Kind: DeltaMoves})
	done := make(chan int, 1)
	go func() {
		ds, _, _ := f.Wait(context.Background(), 1)
		done <- len(ds)
	}()
	time.Sleep(10 * time.Millisecond)
	f.Publish(Delta{Kind: DeltaMoves})
	select {
	case n := <-done:
		if n != 1 {
			t.Fatalf("Wait returned %d deltas, want 1", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Wait did not wake on publish")
	}
	// A cancelled wait returns promptly with nothing new.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	ds, seq, err := f.Wait(ctx, seqOf(f))
	if err != nil || len(ds) != 0 || seq != f.Seq() {
		t.Fatalf("cancelled Wait = %d deltas, seq %d, %v", len(ds), seq, err)
	}
}

// seqOf is a tiny helper for readability.
func seqOf(f *Feed) uint64 { return f.Seq() }
