package dataplane

import (
	"context"
	"errors"
	"sync"
)

// This file is the server side of the snapshot+delta locator protocol.
// Clients fetch one full Snapshot (the operation log, object catalog, and
// in-flight pending set), then follow the Feed: per-round "moves" deltas
// while a reorganization drains, and rare "snapshot" deltas at epoch
// boundaries (scale start/finish, object changes) that carry a fresh
// Snapshot. Placement itself is a pure function of the snapshot — the
// jump-consistent-hash lesson — so 10k sessions tracking a reorg cost the
// server one small delta broadcast per round instead of 10k lookups.

// ObjectInfo describes one object in a locator snapshot, seed included —
// the seed is what lets a client compute placement (and the content
// oracle) locally.
type ObjectInfo struct {
	// ID is the object's identity.
	ID int `json:"id"`
	// Seed drives the object's block randomness and content oracle.
	Seed uint64 `json:"seed"`
	// Blocks is the object's extent.
	Blocks int `json:"blocks"`
	// BlockBytes is the block size.
	BlockBytes int64 `json:"blockBytes"`
}

// PendingBlock is one block whose migration move has not executed yet: it
// is still served from its pre-operation disk From.
type PendingBlock struct {
	// Object is the owning object's ID.
	Object int `json:"object"`
	// Index is the block index within the object.
	Index int `json:"index"`
	// From is the pre-operation logical disk still holding the block.
	From int `json:"from"`
}

// MovedBlock is one block whose migration move executed this round — it
// now lives at its post-operation home.
type MovedBlock struct {
	// Object is the owning object's ID.
	Object int `json:"object"`
	// Index is the block index within the object.
	Index int `json:"index"`
}

// Snapshot is the full client-side locator state at one feed sequence
// number. History is the scaddar operation-log binary codec; together with
// Epoch and Bits it reconstructs the placement function exactly as
// cm.RestoreServer does.
type Snapshot struct {
	// Seq is the feed sequence this snapshot reflects.
	Seq uint64 `json:"seq"`
	// N is the logical disk count.
	N int `json:"n"`
	// Epoch counts complete redistributions.
	Epoch uint64 `json:"epoch,omitempty"`
	// Bits is the generator width.
	Bits uint `json:"bits"`
	// Reorganizing reports an in-flight migration.
	Reorganizing bool `json:"reorganizing,omitempty"`
	// History is the scaling-operation log (scaddar binary codec).
	History []byte `json:"history"`
	// Objects is the catalog with seeds.
	Objects []ObjectInfo `json:"objects"`
	// Pending lists blocks still at their pre-operation homes.
	Pending []PendingBlock `json:"pending,omitempty"`
	// PreOf translates post-removal logical indices to the pre-removal
	// numbering while a scale-down drain is in flight.
	PreOf []int `json:"preOf,omitempty"`
}

// Delta kinds.
const (
	// DeltaMoves carries the blocks whose moves executed this round.
	DeltaMoves = "moves"
	// DeltaSnapshot carries a fresh full snapshot at an epoch boundary
	// (scale op start/finish, rebaseline, object add/remove).
	DeltaSnapshot = "snapshot"
)

// Delta is one feed entry.
type Delta struct {
	// Seq is the entry's position in the feed, starting at 1.
	Seq uint64 `json:"seq"`
	// Kind is DeltaMoves or DeltaSnapshot.
	Kind string `json:"kind"`
	// Moves is set for DeltaMoves.
	Moves []MovedBlock `json:"moves,omitempty"`
	// Snapshot is set for DeltaSnapshot.
	Snapshot *Snapshot `json:"snapshot,omitempty"`
}

// ErrDeltaGone is returned by Since when the requested sequence has been
// evicted from the bounded feed ring — the client must refetch the full
// snapshot.
var ErrDeltaGone = errors.New("dataplane: delta sequence no longer retained")

// Feed is a bounded, sequence-numbered delta log with long-poll support.
// Publish is called by the owner goroutine; Since and Wait are safe for any
// number of concurrent readers.
type Feed struct {
	mu    sync.Mutex
	ring  []Delta
	cap   int
	start uint64 // seq of ring[0]; 1-based
	seq   uint64 // last published seq
	// wake is closed and replaced on every publish (broadcast idiom).
	wake chan struct{}
}

// NewFeed creates a feed retaining up to capacity deltas (minimum 16).
func NewFeed(capacity int) *Feed {
	if capacity < 16 {
		capacity = 16
	}
	return &Feed{cap: capacity, start: 1, wake: make(chan struct{})}
}

// Publish appends a delta, stamping and returning its sequence number.
func (f *Feed) Publish(d Delta) uint64 {
	f.mu.Lock()
	f.seq++
	d.Seq = f.seq
	f.ring = append(f.ring, d)
	if len(f.ring) > f.cap {
		drop := len(f.ring) - f.cap
		f.ring = append(f.ring[:0], f.ring[drop:]...)
		f.start += uint64(drop)
	}
	wake := f.wake
	f.wake = make(chan struct{})
	f.mu.Unlock()
	close(wake)
	return d.Seq
}

// Seq returns the last published sequence number.
func (f *Feed) Seq() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seq
}

// Since returns every retained delta with sequence greater than after,
// plus the latest sequence. If after predates the ring, ErrDeltaGone tells
// the client to refetch the snapshot.
func (f *Feed) Since(after uint64) ([]Delta, uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if after+1 < f.start {
		return nil, f.seq, ErrDeltaGone
	}
	if after >= f.seq {
		return nil, f.seq, nil
	}
	from := int(after + 1 - f.start)
	out := make([]Delta, f.seq-after)
	copy(out, f.ring[from:])
	return out, f.seq, nil
}

// Wait blocks until a delta newer than after is available or the context
// ends, then behaves like Since. A long-poll handler calls it with the
// request context.
func (f *Feed) Wait(ctx context.Context, after uint64) ([]Delta, uint64, error) {
	for {
		f.mu.Lock()
		wake := f.wake
		ready := f.seq > after || after+1 < f.start
		f.mu.Unlock()
		if ready {
			return f.Since(after)
		}
		select {
		case <-ctx.Done():
			return f.Since(after)
		case <-wake:
		}
	}
}
