package dataplane

import (
	"sync/atomic"

	"scaddar/internal/bufpool"
)

// This file is the per-session delivery buffer between the round driver and
// a streaming HTTP client. The owner goroutine offers exactly the chunks
// the round scheduler served; the client's connection handler drains them
// at its own pace. The buffer is bounded and the offer never blocks: a slow
// client misses its deadline (the chunk is dropped and counted as a
// hiccup), and enough *consecutive* misses evict the session — backpressure
// protects the round, the client never stalls it.

// Chunk is one delivered block: its index within the object and its
// payload. The payload carries one buffer reference; whoever consumes the
// chunk (the drain loop, or the cleanup path when the session dies with
// chunks still buffered) must release it exactly once.
type Chunk struct {
	// Index is the block index within the object.
	Index int
	// Payload is the block payload and its pooled backing buffer.
	Payload bufpool.Payload
}

// SessionBufferConfig bounds a session's delivery buffer.
type SessionBufferConfig struct {
	// Buffer is the chunk capacity of the per-session buffer. Zero means 4.
	Buffer int
	// EvictAfter is how many consecutive deadline misses evict the
	// session. Zero means 8.
	EvictAfter int
}

// withDefaults fills unset fields.
func (c SessionBufferConfig) withDefaults() SessionBufferConfig {
	if c.Buffer <= 0 {
		c.Buffer = 4
	}
	if c.EvictAfter <= 0 {
		c.EvictAfter = 8
	}
	return c
}

// Session is one streaming session's bounded chunk buffer. Offer and Close
// are called only by the owner (round driver) goroutine; Chunks is drained
// by the session's connection handler; the counters are safe to read from
// anywhere.
type Session struct {
	stream     int
	object     int
	blockBytes int64
	cfg        SessionBufferConfig

	ch     chan Chunk
	reason atomic.Int32 // CloseReason, valid once closed is true
	closed atomic.Bool

	consecMisses int // owner-only
	misses       atomic.Uint64
	delivered    atomic.Uint64
}

// NewSession creates the buffer for one streaming session.
func NewSession(stream, object int, blockBytes int64, cfg SessionBufferConfig) *Session {
	cfg = cfg.withDefaults()
	return &Session{
		stream:     stream,
		object:     object,
		blockBytes: blockBytes,
		cfg:        cfg,
		ch:         make(chan Chunk, cfg.Buffer),
	}
}

// Stream returns the session's stream ID.
func (s *Session) Stream() int { return s.stream }

// Object returns the object the session plays.
func (s *Session) Object() int { return s.object }

// BlockBytes returns the object's block size.
func (s *Session) BlockBytes() int64 { return s.blockBytes }

// Chunks is the channel the connection handler drains. It is closed when
// the session ends; Reason then says why.
func (s *Session) Chunks() <-chan Chunk { return s.ch }

// Offer hands the round's chunk to the session without blocking. It
// returns (delivered, evict): delivered is false when the buffer was full
// (a deadline miss), and evict turns true once the consecutive-miss limit
// is reached — the caller must stop the stream and Close the session.
// Owner goroutine only.
func (s *Session) Offer(c Chunk) (delivered, evict bool) {
	if s.closed.Load() {
		return false, false
	}
	select {
	case s.ch <- c:
		s.consecMisses = 0
		s.delivered.Add(1)
		return true, false
	default:
		s.consecMisses++
		s.misses.Add(1)
		return false, s.consecMisses >= s.cfg.EvictAfter
	}
}

// Close ends the session with the given reason and closes the chunk
// channel. Owner goroutine only; idempotent.
func (s *Session) Close(reason CloseReason) {
	if s.closed.Swap(true) {
		return
	}
	s.reason.Store(int32(reason))
	close(s.ch)
}

// Closed reports whether the session has ended.
func (s *Session) Closed() bool { return s.closed.Load() }

// Reason returns the close reason; meaningful only after Closed.
func (s *Session) Reason() CloseReason { return CloseReason(s.reason.Load()) }

// Buffered returns the number of chunks waiting in the buffer.
func (s *Session) Buffered() int { return len(s.ch) }

// ReleaseBuffered drains and releases every chunk still sitting in the
// buffer without delivering it. The consumer calls it after detaching (so
// no new offers can land) on every exit path — disconnect, write error,
// eviction — to return abandoned payload references to the pool.
func (s *Session) ReleaseBuffered() {
	for {
		select {
		case c, ok := <-s.ch:
			if !ok {
				return
			}
			c.Payload.Release()
		default:
			return
		}
	}
}

// Misses returns the total deadline misses (dropped chunks).
func (s *Session) Misses() uint64 { return s.misses.Load() }

// Delivered returns the total chunks buffered for the client.
func (s *Session) Delivered() uint64 { return s.delivered.Load() }
