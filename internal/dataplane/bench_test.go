package dataplane

import (
	"bufio"
	"bytes"
	"context"
	"sync"
	"testing"

	"scaddar/internal/bufpool"
)

// BenchmarkStreamChunk measures the per-chunk cost of the streaming hot
// path: acquire a pooled payload buffer (as the batched segment reader
// does), offer it into the session buffer, drain it as the handler does,
// frame it for the wire, release the buffer back to the pool, and
// decode+verify the frame as a client does. This is the work one session
// does once per round; at 10k sessions it runs 10k times per round on the
// delivery path. Steady state is zero allocations per chunk — guarded by
// TestStreamChunkZeroAlloc.
func BenchmarkStreamChunk(b *testing.B) {
	const blockBytes = 4096
	s := NewSession(1, 0, blockBytes, SessionBufferConfig{Buffer: 4})
	seed := SeededContent(42, 0, blockBytes)
	wb := make([]byte, 0, blockBytes+64)
	scratch := make([]byte, blockBytes+64)
	var r bytes.Reader
	br := bufio.NewReaderSize(&r, blockBytes+64)
	b.SetBytes(blockBytes)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := bufpool.Get(blockBytes)
		copy(buf.Data(), seed)
		p := bufpool.Payload{Data: buf.Data(), Buf: buf}
		if delivered, _ := s.Offer(Chunk{Index: i, Payload: p}); !delivered {
			b.Fatal("chunk not delivered")
		}
		c := <-s.Chunks()
		wb = AppendDataFrame(wb[:0], c.Index, c.Payload.Data)
		c.Payload.Release()
		r.Reset(wb)
		br.Reset(&r)
		f, err := ReadFrameInto(br, scratch)
		if err != nil {
			b.Fatalf("frame %d: %v", i, err)
		}
		if f.Index != i || len(f.Data) != blockBytes {
			b.Fatalf("frame %d decoded as index %d, %d bytes", i, f.Index, len(f.Data))
		}
	}
}

// TestStreamChunkZeroAlloc pins the streaming hot path at zero allocations
// per chunk: pooled buffer acquisition, session offer/drain, wire framing,
// release, and scratch-reuse decode must all run without touching the heap
// once the pools are warm.
func TestStreamChunkZeroAlloc(t *testing.T) {
	const blockBytes = 4096
	s := NewSession(1, 0, blockBytes, SessionBufferConfig{Buffer: 4})
	wb := make([]byte, 0, blockBytes+64)
	scratch := make([]byte, blockBytes+64)
	var r bytes.Reader
	br := bufio.NewReaderSize(&r, blockBytes+64)
	// Warm the size class so the measured runs hit the pool.
	bufpool.Get(blockBytes).Release()
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		buf := bufpool.Get(blockBytes)
		p := bufpool.Payload{Data: buf.Data(), Buf: buf}
		if delivered, _ := s.Offer(Chunk{Index: i, Payload: p}); !delivered {
			t.Fatal("chunk not delivered")
		}
		c := <-s.Chunks()
		wb = AppendDataFrame(wb[:0], c.Index, c.Payload.Data)
		c.Payload.Release()
		r.Reset(wb)
		br.Reset(&r)
		f, err := ReadFrameInto(br, scratch)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Index != i || len(f.Data) != blockBytes {
			t.Fatalf("frame %d decoded as index %d, %d bytes", i, f.Index, len(f.Data))
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("stream chunk path allocates %.1f times per chunk, want 0", allocs)
	}
}

// BenchmarkDeltaFeed measures the locator feed's publish-and-catch-up
// cycle: the owner publishes one moves delta and a caught-up follower
// fetches it — the steady-state cost of keeping one long-polling client
// current during a reorganization.
func BenchmarkDeltaFeed(b *testing.B) {
	f := NewFeed(1024)
	moves := []MovedBlock{{Object: 3, Index: 17}, {Object: 5, Index: 9}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		seq := f.Publish(Delta{Kind: DeltaMoves, Moves: moves})
		got, _, err := f.Since(seq - 1)
		if err != nil {
			b.Fatalf("since %d: %v", seq-1, err)
		}
		if len(got) != 1 {
			b.Fatalf("since %d returned %d deltas", seq-1, len(got))
		}
	}
}

// BenchmarkDeltaFeedFanout is BenchmarkDeltaFeed with 64 parked long-poll
// followers: each publish must wake every waiter, which is the fan-out the
// snapshot+delta protocol pays instead of 10k per-block lookups.
func BenchmarkDeltaFeedFanout(b *testing.B) {
	const followers = 64
	f := NewFeed(1024)
	moves := []MovedBlock{{Object: 1, Index: 2}}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for w := 0; w < followers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var after uint64
			for ctx.Err() == nil {
				deltas, seq, err := f.Wait(ctx, after)
				if err != nil {
					return
				}
				_ = deltas
				after = seq
			}
		}()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Publish(Delta{Kind: DeltaMoves, Moves: moves})
	}
	b.StopTimer()
	cancel()
	wg.Wait()
}
