// Package dataplane is the byte-moving layer under the continuous-media
// simulator: per-disk segment stores that hold real block payloads, the
// seeded content oracle that makes every payload reproducible, bounded
// per-session chunk buffers for round-paced streaming delivery, the chunk
// wire framing, and the snapshot+delta locator feed that lets thousands of
// streaming clients track a reorganization without re-asking the server for
// placement every round.
//
// The design splits durability responsibilities with the metadata journal
// (internal/store): the journal is the system of record for *which* blocks
// exist and where they live (SCADDAR re-derives placement by computation),
// while the segment stores hold the payload bytes. Payloads are
// re-materializable from the content oracle, so segment appends are not
// fsynced on the hot path; after a crash, recovery reconciles each disk's
// payload inventory against the replayed metadata — orphaned payloads (an
// ingest killed between data append and journal append) are garbage
// collected, missing payloads are re-materialized.
//
// Segment files reuse the store's CRC-framed record idiom: a 13-byte header
// (magic, version, segment sequence) followed by length- and CRC-32C-framed
// records. Recovery trusts the longest valid prefix of each segment and
// truncates at the first torn or corrupt record.
package dataplane
