package dataplane

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"scaddar/internal/disk"
)

// put stores the oracle payload for (seed, index) under bid.
func put(t *testing.T, s *Store, bid disk.BlockID, seed, index uint64, n int64) {
	t.Helper()
	if err := s.Put(bid, SeededContent(seed, index, n)); err != nil {
		t.Fatalf("Put(%d): %v", bid, err)
	}
}

// wantOracle reads bid and checks it against the oracle.
func wantOracle(t *testing.T, s *Store, bid disk.BlockID, seed, index uint64, n int64) {
	t.Helper()
	data, err := s.Get(bid)
	if err != nil {
		t.Fatalf("Get(%d): %v", bid, err)
	}
	if int64(len(data)) != n || !VerifySeededContent(data, seed, index) {
		t.Fatalf("Get(%d): payload does not match oracle", bid)
	}
}

func TestStorePutGetDeleteRoundTrip(t *testing.T) {
	s, err := OpenStore(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 100; i++ {
		put(t, s, disk.BlockID(i), 7, uint64(i), 512)
	}
	if s.Len() != 100 {
		t.Fatalf("Len = %d, want 100", s.Len())
	}
	for i := 0; i < 100; i++ {
		wantOracle(t, s, disk.BlockID(i), 7, uint64(i), 512)
	}
	if err := s.Delete(3); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(3); !errors.Is(err, ErrPayloadNotFound) {
		t.Fatalf("Get after delete: %v, want ErrPayloadNotFound", err)
	}
	// Overwrite replaces the payload.
	put(t, s, 5, 99, 5, 256)
	wantOracle(t, s, 5, 99, 5, 256)
	if got := s.LiveBytes(); got != 98*512+256 {
		t.Fatalf("LiveBytes = %d, want %d", got, 98*512+256)
	}
}

func TestStoreRecoveryFullScan(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, Options{SegmentMaxBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		put(t, s, disk.BlockID(i), 1, uint64(i), 300)
	}
	s.Delete(10)
	put(t, s, 20, 2, 20, 300) // overwrite in a later segment
	// Crash: no Close, no checkpoint.
	s.closeFiles()
	r, err := OpenStore(dir, Options{SegmentMaxBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 49 {
		t.Fatalf("recovered Len = %d, want 49", r.Len())
	}
	if _, err := r.Get(10); !errors.Is(err, ErrPayloadNotFound) {
		t.Fatalf("deleted block resurfaced: %v", err)
	}
	wantOracle(t, r, 20, 2, 20, 300)
	wantOracle(t, r, 49, 1, 49, 300)
}

func TestStoreRecoveryFromCheckpointPlusTail(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		put(t, s, disk.BlockID(i), 3, uint64(i), 128)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Appends after the checkpoint land in the tail the next open scans.
	for i := 20; i < 30; i++ {
		put(t, s, disk.BlockID(i), 3, uint64(i), 128)
	}
	s.Delete(0)
	s.closeFiles()
	r, err := OpenStore(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 29 {
		t.Fatalf("recovered Len = %d, want 29", r.Len())
	}
	if _, err := r.Get(0); !errors.Is(err, ErrPayloadNotFound) {
		t.Fatalf("post-checkpoint tombstone lost: %v", err)
	}
	wantOracle(t, r, 25, 3, 25, 128)
}

// TestStoreTornFinalRecord is the first crash edge: a payload append torn
// mid-record must be truncated on recovery — the longest valid prefix
// survives, the torn block is simply absent.
func TestStoreTornFinalRecord(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		put(t, s, disk.BlockID(i), 4, uint64(i), 200)
	}
	seg := s.active()
	full := seg.size
	s.closeFiles()
	// Tear the last record: chop 37 bytes off the file.
	if err := os.Truncate(seg.path, full-37); err != nil {
		t.Fatal(err)
	}
	r, err := OpenStore(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 9 {
		t.Fatalf("recovered Len = %d, want 9 (torn final record dropped)", r.Len())
	}
	if _, err := r.Get(9); !errors.Is(err, ErrPayloadNotFound) {
		t.Fatalf("torn block 9 resurfaced: %v", err)
	}
	for i := 0; i < 9; i++ {
		wantOracle(t, r, disk.BlockID(i), 4, uint64(i), 200)
	}
	// A corrupted (bit-flipped) final record must equally be dropped.
	s2 := r
	put(t, s2, 100, 8, 100, 200)
	seg2 := s2.active()
	recOff := seg2.size - 50 // inside the last record's payload
	s2.closeFiles()
	f, err := os.OpenFile(seg2.path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, recOff); err != nil {
		t.Fatal(err)
	}
	f.Close()
	r2, err := OpenStore(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if _, err := r2.Get(100); !errors.Is(err, ErrPayloadNotFound) {
		t.Fatalf("corrupt block 100 resurfaced: %v", err)
	}
}

// TestStoreCheckpointReferencingPrunedSegment is the second crash edge: an
// index checkpoint that references a segment file which was pruned after
// the checkpoint was written must be discarded, falling back to a full
// rescan of the surviving segments.
func TestStoreCheckpointReferencingPrunedSegment(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, Options{SegmentMaxBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		put(t, s, disk.BlockID(i), 5, uint64(i), 400)
	}
	if len(s.segs) < 3 {
		t.Fatalf("want ≥3 segments, got %d", len(s.segs))
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	victim := s.segs[0]
	s.closeFiles()
	// Prune the first segment out from under the checkpoint.
	if err := os.Remove(victim.path); err != nil {
		t.Fatal(err)
	}
	r, err := OpenStore(dir, Options{SegmentMaxBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// The checkpoint indexed all 40 blocks; the fallback full rescan must
	// surface exactly the blocks whose segments survived — and every
	// surviving payload must still verify.
	if r.Len() >= 40 || r.Len() == 0 {
		t.Fatalf("recovered Len = %d, want fewer than 40 and more than 0", r.Len())
	}
	for _, bid := range r.Blocks() {
		wantOracle(t, r, bid, 5, uint64(bid), 400)
	}
	// Nothing may point into the pruned segment.
	if _, err := os.Stat(victim.path); !os.IsNotExist(err) {
		t.Fatalf("victim segment still present: %v", err)
	}
}

func TestStoreWipeAndReuse(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	put(t, s, 1, 6, 1, 100)
	if err := s.Wipe(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 || s.LiveBytes() != 0 {
		t.Fatalf("wiped store not empty: len=%d bytes=%d", s.Len(), s.LiveBytes())
	}
	put(t, s, 2, 6, 2, 100)
	wantOracle(t, s, 2, 6, 2, 100)
}

func TestStorePrunesFullyDeadSegments(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, Options{SegmentMaxBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 30; i++ {
		put(t, s, disk.BlockID(i), 7, uint64(i), 200)
	}
	before := len(s.segs)
	for i := 0; i < 30; i++ {
		if err := s.Delete(disk.BlockID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if len(s.segs) >= before {
		t.Fatalf("no segments pruned: %d before, %d after full drain", before, len(s.segs))
	}
	files, _ := filepath.Glob(filepath.Join(dir, "seg-*.blk"))
	if len(files) != len(s.segs) {
		t.Fatalf("on-disk segments %d != tracked %d", len(files), len(s.segs))
	}
}

func TestStoreCompact(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, Options{SegmentMaxBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		put(t, s, disk.BlockID(i), 9, uint64(i), 300)
	}
	// Kill every other block so sealed segments carry dead weight.
	for i := 0; i < 40; i += 2 {
		if err := s.Delete(disk.BlockID(i)); err != nil {
			t.Fatal(err)
		}
	}
	before := len(s.segs)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if len(s.segs) >= before {
		t.Fatalf("compaction did not shrink segments: %d → %d", before, len(s.segs))
	}
	for i := 1; i < 40; i += 2 {
		wantOracle(t, s, disk.BlockID(i), 9, uint64(i), 300)
	}
	// Survives recovery.
	s.closeFiles()
	r, err := OpenStore(dir, Options{SegmentMaxBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 20 {
		t.Fatalf("post-compact recovery Len = %d, want 20", r.Len())
	}
}

func TestStoreInjectedReadFault(t *testing.T) {
	s, err := OpenStore(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	put(t, s, 1, 11, 1, 64)
	boom := fmt.Errorf("injected transient fault")
	hits := 0
	s.SetReadFault(func(b disk.BlockID) error {
		hits++
		if hits == 1 {
			return boom
		}
		return nil
	})
	if _, err := s.Get(1); !errors.Is(err, boom) {
		t.Fatalf("first Get = %v, want injected fault", err)
	}
	wantOracle(t, s, 1, 11, 1, 64)
}

func TestManagerRetainDestroysStaleDirs(t *testing.T) {
	root := t.TempDir()
	m, err := NewManager(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for _, id := range []int{0, 1, 2, 7} {
		st, err := m.Open(id)
		if err != nil {
			t.Fatal(err)
		}
		put(t, st, disk.BlockID(id), 1, uint64(id), 32)
	}
	if err := m.Retain([]int{0, 2}); err != nil {
		t.Fatal(err)
	}
	ids, err := m.DiskIDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 2 {
		t.Fatalf("retained dirs = %v, want [0 2]", ids)
	}
	if m.Store(1) != nil || m.Store(7) != nil {
		t.Fatal("destroyed stores still registered")
	}
}
