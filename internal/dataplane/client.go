package dataplane

import (
	"errors"
	"fmt"
	"sync"

	"scaddar/internal/placement"
	"scaddar/internal/scaddar"
)

// ErrSnapshotRequired is returned when a client locator detects a gap in
// the delta sequence (or has no snapshot yet) and must refetch the full
// snapshot before locating again.
var ErrSnapshotRequired = errors.New("dataplane: client locator needs a fresh snapshot")

// ClientLocator is the client side of the snapshot+delta protocol: a local,
// pure-function replica of the server's block locator. ApplySnapshot
// installs a full Snapshot (reconstructing the placement strategy from the
// operation log exactly as cm.RestoreServer does); Apply folds in feed
// deltas — dropping moved blocks from the pending set, or swapping in the
// fresh snapshot an epoch delta carries. Locate is safe for any number of
// concurrent readers; many streaming sessions share one ClientLocator, so a
// reorganization costs one delta subscription, not one lookup per session
// per round.
type ClientLocator struct {
	factory scaddar.SourceFactory

	mu      sync.RWMutex
	seq     uint64
	n       int
	reorg   bool
	objects map[int]ObjectInfo
	loc     *scaddar.SafeLocator
	chain   *scaddar.CompiledChain
	pending map[[2]int]int // (object, index) → pre-operation disk
	preOf   []int
}

// NewClientLocator creates an empty locator over the given generator
// family, which must match the server's (the serve CLI uses SplitMix64).
func NewClientLocator(factory scaddar.SourceFactory) *ClientLocator {
	return &ClientLocator{factory: factory}
}

// ApplySnapshot installs a full snapshot, replacing all local state.
func (c *ClientLocator) ApplySnapshot(snap *Snapshot) error {
	hist := &scaddar.History{}
	if err := hist.UnmarshalBinary(snap.History); err != nil {
		return fmt.Errorf("dataplane: snapshot history: %w", err)
	}
	strat, err := placement.NewScaddar(hist.N0(), placement.NewX0Func(c.factory))
	if err != nil {
		return err
	}
	if snap.Bits != 0 {
		if err := strat.SetBits(snap.Bits); err != nil {
			return err
		}
	}
	for e := uint64(0); e < snap.Epoch; e++ {
		if err := strat.Rebaseline(); err != nil {
			return err
		}
	}
	for j := 1; j <= hist.Ops(); j++ {
		op := hist.Op(j)
		switch op.Kind {
		case scaddar.OpAdd:
			if err := strat.AddDisks(op.Count()); err != nil {
				return err
			}
		case scaddar.OpRemove:
			if err := strat.RemoveDisks(op.Removed...); err != nil {
				return err
			}
		default:
			return fmt.Errorf("dataplane: snapshot op %d has unknown kind", j)
		}
	}
	loc, err := strat.ConcurrentLocator(c.factory)
	if err != nil {
		return err
	}
	objects := make(map[int]ObjectInfo, len(snap.Objects))
	for _, o := range snap.Objects {
		objects[o.ID] = o
	}
	pending := make(map[[2]int]int, len(snap.Pending))
	for _, p := range snap.Pending {
		pending[[2]int{p.Object, p.Index}] = p.From
	}
	var preOf []int
	if snap.PreOf != nil {
		preOf = append([]int(nil), snap.PreOf...)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq = snap.Seq
	c.n = snap.N
	c.reorg = snap.Reorganizing
	c.objects = objects
	c.loc = loc
	c.chain = loc.Chain()
	c.pending = pending
	c.preOf = preOf
	return nil
}

// Apply folds one feed delta into the locator. Deltas must arrive in
// sequence; a gap returns ErrSnapshotRequired and the caller refetches the
// snapshot. Already-seen deltas are ignored.
func (c *ClientLocator) Apply(d Delta) error {
	if d.Kind == DeltaSnapshot {
		if d.Snapshot == nil {
			return fmt.Errorf("dataplane: snapshot delta %d without snapshot", d.Seq)
		}
		snap := *d.Snapshot
		snap.Seq = d.Seq
		return c.ApplySnapshot(&snap)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.loc == nil {
		return ErrSnapshotRequired
	}
	if d.Seq <= c.seq {
		return nil
	}
	if d.Seq != c.seq+1 {
		return fmt.Errorf("%w: have seq %d, got delta %d", ErrSnapshotRequired, c.seq, d.Seq)
	}
	if d.Kind == DeltaMoves {
		for _, m := range d.Moves {
			delete(c.pending, [2]int{m.Object, m.Index})
		}
	}
	c.seq = d.Seq
	return nil
}

// Seq returns the feed sequence the locator reflects.
func (c *ClientLocator) Seq() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.seq
}

// N returns the logical disk count.
func (c *ClientLocator) N() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.n
}

// Reorganizing reports whether a migration was draining at the reflected
// sequence.
func (c *ClientLocator) Reorganizing() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.reorg
}

// PendingCount returns the number of blocks still awaiting their move.
func (c *ClientLocator) PendingCount() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.pending)
}

// Object returns the catalog entry for an object.
func (c *ClientLocator) Object(id int) (ObjectInfo, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	o, ok := c.objects[id]
	return o, ok
}

// Objects returns the number of cataloged objects.
func (c *ClientLocator) Objects() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.objects)
}

// Locate computes the logical disk currently holding a block, applying the
// same mid-migration rules as the server's LocatorSnapshot: pending blocks
// resolve to their pre-operation home, and scale-down drains translate
// through the pre-removal numbering. Safe for concurrent callers.
func (c *ClientLocator) Locate(object, index int) (int, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.loc == nil {
		return 0, ErrSnapshotRequired
	}
	obj, ok := c.objects[object]
	if !ok {
		return 0, fmt.Errorf("dataplane: unknown object %d", object)
	}
	if index < 0 || index >= obj.Blocks {
		return 0, fmt.Errorf("dataplane: object %d has no block %d", object, index)
	}
	if from, pending := c.pending[[2]int{object, index}]; pending {
		return from, nil
	}
	x0, err := c.loc.X0(obj.Seed, uint64(index))
	if err != nil {
		return 0, err
	}
	d := c.chain.Locate(x0)
	if c.preOf != nil {
		return c.preOf[d], nil
	}
	return d, nil
}
