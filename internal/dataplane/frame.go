package dataplane

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// This file is the chunk wire framing a streaming session speaks over HTTP:
// the same length + CRC-32C record idiom as the segment files, so a client
// can verify every chunk independently of the transport. A stream is a
// sequence of data frames (block index + payload) terminated by one end
// frame carrying the close reason.

// Frame payload tags.
const (
	frameData = 0
	frameEnd  = 1
)

// CloseReason says why a streaming session ended.
type CloseReason byte

// Close reasons, carried in the stream's end frame.
const (
	// CloseDone: the stream played to its last block.
	CloseDone CloseReason = iota
	// CloseStopped: the stream was stopped by a control operation.
	CloseStopped
	// CloseEvicted: the client fell too far behind the round pacer and was
	// evicted to protect the round (backpressure limit).
	CloseEvicted
)

// String names the close reason.
func (r CloseReason) String() string {
	switch r {
	case CloseDone:
		return "done"
	case CloseStopped:
		return "stopped"
	case CloseEvicted:
		return "evicted"
	default:
		return fmt.Sprintf("reason(%d)", byte(r))
	}
}

// ErrFrameCorrupt is returned when a received frame fails its structural or
// CRC checks.
var ErrFrameCorrupt = errors.New("dataplane: corrupt stream frame")

// maxFrameLen bounds a received frame so a corrupt length cannot force a
// huge allocation.
const maxFrameLen = maxPayloadRecord

// AppendDataFrame appends one chunk frame (block index + payload) to dst
// and returns the extended slice.
func AppendDataFrame(dst []byte, index int, data []byte) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	dst = append(dst, frameData)
	dst = binary.AppendUvarint(dst, uint64(index))
	dst = append(dst, data...)
	payload := dst[start+recHeaderLen:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(payload, payloadCRC))
	return dst
}

// AppendEndFrame appends the terminal frame carrying the close reason.
func AppendEndFrame(dst []byte, reason CloseReason) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	dst = append(dst, frameEnd, byte(reason))
	payload := dst[start+recHeaderLen:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(payload, payloadCRC))
	return dst
}

// Frame is one decoded stream frame.
type Frame struct {
	// End marks the terminal frame; Reason is set and Index/Data are not.
	End bool
	// Reason is the close reason of an end frame.
	Reason CloseReason
	// Index is the block index of a data frame.
	Index int
	// Data is the block payload of a data frame.
	Data []byte
}

// ReadFrame reads and verifies one frame from the stream. It returns
// io.EOF (possibly wrapped) if the stream closes cleanly between frames.
// Each call allocates the frame's payload; decoders on a hot loop should
// use ReadFrameInto with a reused scratch buffer instead.
func ReadFrame(br *bufio.Reader) (Frame, error) {
	return ReadFrameInto(br, nil)
}

// ReadFrameInto is ReadFrame with caller-owned scratch: the frame payload
// is decoded into scratch (grown only when a frame exceeds its capacity),
// so a steady-state decode loop performs no allocation. The returned
// Frame's Data aliases scratch and is valid only until the next call with
// the same buffer.
func ReadFrameInto(br *bufio.Reader, scratch []byte) (Frame, error) {
	// Peek+Discard instead of io.ReadFull into a local array: a slice of a
	// stack array passed through the io.Reader interface escapes to the
	// heap, and this decoder must stay allocation-free.
	hdr, err := br.Peek(recHeaderLen)
	if err != nil {
		if len(hdr) > 0 && errors.Is(err, io.EOF) {
			return Frame{}, fmt.Errorf("%w: torn frame header", ErrFrameCorrupt)
		}
		return Frame{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:])
	crc := binary.LittleEndian.Uint32(hdr[4:])
	if _, err := br.Discard(recHeaderLen); err != nil {
		return Frame{}, err
	}
	if n == 0 || n > maxFrameLen {
		return Frame{}, fmt.Errorf("%w: frame length %d", ErrFrameCorrupt, n)
	}
	payload := scratch
	if uint32(cap(payload)) < n {
		payload = make([]byte, n)
	}
	payload = payload[:n]
	if _, err := io.ReadFull(br, payload); err != nil {
		return Frame{}, fmt.Errorf("%w: torn frame body", ErrFrameCorrupt)
	}
	if crc32.Checksum(payload, payloadCRC) != crc {
		return Frame{}, fmt.Errorf("%w: CRC mismatch", ErrFrameCorrupt)
	}
	switch payload[0] {
	case frameData:
		idx, k := binary.Uvarint(payload[1:])
		if k <= 0 {
			return Frame{}, fmt.Errorf("%w: bad block index", ErrFrameCorrupt)
		}
		return Frame{Index: int(idx), Data: payload[1+k:]}, nil
	case frameEnd:
		if len(payload) != 2 {
			return Frame{}, fmt.Errorf("%w: bad end frame", ErrFrameCorrupt)
		}
		return Frame{End: true, Reason: CloseReason(payload[1])}, nil
	default:
		return Frame{}, fmt.Errorf("%w: unknown frame tag %d", ErrFrameCorrupt, payload[0])
	}
}
