package dataplane

import (
	"encoding/binary"

	"scaddar/internal/prng"
)

// This file is the seeded content oracle. Block payloads are a pure
// function of (object seed, block index, block size), which gives the data
// plane the same property SCADDAR gives placement: nothing needs to be
// looked up to know what a block *should* contain. Ingest writes oracle
// bytes, rebuild re-materializes lost blocks from the oracle (standing in
// for reading the redundant copy, whose bytes are by construction
// identical), and streaming clients verify every delivered chunk against
// the oracle end to end.

// FillSeededContent fills dst with the deterministic payload of the block
// (seed, index): a SplitMix64-style stream keyed by prng.Combine(seed,
// index). The same (seed, index) always yields the same bytes for any
// prefix length.
func FillSeededContent(dst []byte, seed, index uint64) {
	base := prng.Combine(seed, index)
	var w uint64
	for len(dst) >= 8 {
		binary.LittleEndian.PutUint64(dst, prng.Hash64(base+w))
		dst = dst[8:]
		w++
	}
	if len(dst) > 0 {
		var tail [8]byte
		binary.LittleEndian.PutUint64(tail[:], prng.Hash64(base+w))
		copy(dst, tail[:])
	}
}

// SeededContent returns the deterministic payload of block (seed, index)
// at the given block size.
func SeededContent(seed, index uint64, blockBytes int64) []byte {
	if blockBytes <= 0 {
		return nil
	}
	dst := make([]byte, blockBytes)
	FillSeededContent(dst, seed, index)
	return dst
}

// VerifySeededContent reports whether data is exactly the oracle payload of
// block (seed, index). It compares incrementally without allocating the
// expected payload.
func VerifySeededContent(data []byte, seed, index uint64) bool {
	base := prng.Combine(seed, index)
	var w uint64
	for len(data) >= 8 {
		if binary.LittleEndian.Uint64(data) != prng.Hash64(base+w) {
			return false
		}
		data = data[8:]
		w++
	}
	if len(data) > 0 {
		var tail [8]byte
		binary.LittleEndian.PutUint64(tail[:], prng.Hash64(base+w))
		for i, b := range data {
			if b != tail[i] {
				return false
			}
		}
	}
	return true
}
