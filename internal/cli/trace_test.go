package cli

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestTraceGenerateReplayShow(t *testing.T) {
	file := filepath.Join(t.TempDir(), "session.sctr")
	out, errOut, code := run("trace", "generate", "-o", file, "-streams", "20", "-rounds", "30")
	if code != 0 {
		t.Fatalf("generate: code=%d stderr=%q", code, errOut)
	}
	if !strings.Contains(out, "wrote "+file) {
		t.Fatalf("generate output: %q", out)
	}

	out, errOut, code = run("trace", "replay", "-i", file, "-streams", "20", "-rounds", "30")
	if code != 0 {
		t.Fatalf("replay: code=%d stderr=%q", code, errOut)
	}
	for _, want := range []string{"20 streams", "hiccups", "final:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("replay output missing %q:\n%s", want, out)
		}
	}
	// Replays are deterministic: identical output both times.
	out2, _, code := run("trace", "replay", "-i", file, "-streams", "20", "-rounds", "30")
	if code != 0 || out2 != out {
		t.Fatalf("replay not deterministic:\n%s\nvs\n%s", out, out2)
	}

	out, _, code = run("trace", "show", "-i", file, "-n", "5")
	if code != 0 {
		t.Fatalf("show: code=%d", code)
	}
	if !strings.Contains(out, "events:") || !strings.Contains(out, "admit") {
		t.Fatalf("show output: %q", out)
	}
}

func TestTraceErrors(t *testing.T) {
	if _, _, code := run("trace"); code == 0 {
		t.Error("bare trace accepted")
	}
	if _, _, code := run("trace", "frobnicate"); code == 0 {
		t.Error("unknown subcommand accepted")
	}
	if _, _, code := run("trace", "replay", "-i", "/nonexistent/file"); code == 0 {
		t.Error("missing file accepted")
	}
	if _, _, code := run("trace", "show", "-i", "/nonexistent/file"); code == 0 {
		t.Error("missing file accepted")
	}
}
