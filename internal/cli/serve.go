package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"scaddar/internal/cm"
	"scaddar/internal/dataplane"
	"scaddar/internal/gateway"
	"scaddar/internal/obs"
	"scaddar/internal/placement"
	"scaddar/internal/prng"
	"scaddar/internal/repl"
	"scaddar/internal/store"
	"scaddar/internal/workload"
)

// serveOptions configures the serve subcommand; it is a plain struct so
// tests can drive serveGateway without a flag set or signals.
type serveOptions struct {
	addr            string
	n0              int
	objects         int
	blocks          int
	round           time.Duration
	redundancy      string
	utilization     float64
	mailbox         int
	timeout         time.Duration
	drain           time.Duration
	dataDir         string
	checkpointEvery int
	debugAddr       string
	replAddr        string
	binAddr         string
	bits            uint
	eps             float64
	payloadDir      string
	blockBytes      int64
	streamBuffer    int
	streamEvict     int
}

func cmdServe(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(w)
	var opts serveOptions
	fs.StringVar(&opts.addr, "addr", "127.0.0.1:8080", "listen address")
	fs.IntVar(&opts.n0, "n0", 8, "initial disk count")
	fs.IntVar(&opts.objects, "objects", 12, "number of objects (0 = empty catalog, e.g. to join a cluster as a fresh shard)")
	fs.IntVar(&opts.blocks, "blocks", 600, "blocks per object")
	fs.DurationVar(&opts.round, "round", 100*time.Millisecond, "wall-clock round period")
	fs.StringVar(&opts.redundancy, "redundancy", "none", "protection scheme: none | mirror | parity")
	fs.Float64Var(&opts.utilization, "utilization", 0.8, "admission-control utilization target in (0,1]")
	fs.IntVar(&opts.mailbox, "mailbox", 64, "control-plane mailbox depth")
	fs.DurationVar(&opts.timeout, "timeout", 5*time.Second, "per-request deadline")
	fs.DurationVar(&opts.drain, "drain", 30*time.Second, "graceful drain budget on shutdown")
	fs.StringVar(&opts.dataDir, "data-dir", "", "durable state directory (journal + checkpoints); empty = memory-only")
	fs.IntVar(&opts.checkpointEvery, "checkpoint-every", 1024, "journal events between automatic checkpoints")
	fs.StringVar(&opts.debugAddr, "debug-addr", "", "debug listen address serving /metrics and /debug/pprof (empty = off)")
	fs.StringVar(&opts.replAddr, "repl-addr", "", "replication listen address streaming the journal to followers (requires -data-dir; empty = off)")
	fs.StringVar(&opts.binAddr, "bin-addr", "", "binary lookup listen address speaking the wire protocol in docs/PROTOCOL.md (empty = off)")
	fs.UintVar(&opts.bits, "bits", 64, "generator width b; below 64 enables Section 4.3 budget tracking")
	fs.Float64Var(&opts.eps, "eps", 0.05, "unfairness tolerance ε for the randomness budget (used with -bits < 64)")
	fs.StringVar(&opts.payloadDir, "payload-dir", "", "per-disk segment store root carrying real block bytes; empty = metadata-only")
	fs.Int64Var(&opts.blockBytes, "block-bytes", 0, "block size in bytes (0 = server default; smaller blocks make -payload-dir cheap to try)")
	fs.IntVar(&opts.streamBuffer, "stream-buffer", 0, "per-session chunk buffer for GET /v1/sessions/{id}/stream (0 = default 4)")
	fs.IntVar(&opts.streamEvict, "stream-evict-after", 0, "consecutive deadline misses before a slow streaming client is evicted (0 = default 8)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// SIGINT/SIGTERM begin the graceful drain; a second signal aborts.
	stop := make(chan struct{})
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)
	go func() {
		<-sigs
		close(stop)
	}()
	return serveGateway(opts, w, nil, stop)
}

// parseRedundancy maps the flag spelling to the cm scheme.
func parseRedundancy(name string) (cm.Redundancy, error) {
	switch name {
	case "none":
		return cm.RedundancyNone, nil
	case "mirror":
		return cm.RedundancyMirror, nil
	case "parity":
		return cm.RedundancyParity, nil
	default:
		return 0, fmt.Errorf("redundancy %q: want none, mirror, or parity", name)
	}
}

// defaultX0 is the access function every durable-state command must agree
// on: X0 chains are regenerated from object seeds on recovery, so the same
// generator family has to be used when the journal is replayed.
func defaultX0() placement.X0Func {
	return placement.NewX0Func(func(seed uint64) prng.Source { return prng.NewSplitMix64(seed) })
}

// buildLoadedServer assembles a SCADDAR-placed server with a synthetic
// library loaded — the common prologue of serve, simulate, and drill. bits
// of 0 or 64 means the full-width generator; anything narrower truncates
// the X0 family so the Section 4.3 budget arithmetic is meaningful.
func buildLoadedServer(n0, objects, blocks int, bits uint, mutate func(*cm.Config)) (*cm.Server, []workload.Object, error) {
	x0 := defaultX0()
	if bits != 0 && bits < 64 {
		x0 = placement.NewX0Func(func(seed uint64) prng.Source {
			return prng.Truncate(prng.NewSplitMix64(seed), bits)
		})
	}
	strat, err := placement.NewScaddar(n0, x0)
	if err != nil {
		return nil, nil, err
	}
	if bits != 0 && bits < 64 {
		if err := strat.SetBits(bits); err != nil {
			return nil, nil, err
		}
	}
	cfg := cm.DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := cm.NewServer(cfg, strat)
	if err != nil {
		return nil, nil, err
	}
	if objects == 0 {
		// An empty catalog: objects arrive later over the admin API — the
		// shape a gateway needs to join a cluster as a fresh shard.
		return srv, nil, nil
	}
	lib, err := workload.Library(workload.LibraryConfig{
		Objects: objects, MinBlocks: blocks, MaxBlocks: blocks,
		BlockBytes: cfg.BlockBytes, BitrateBitsPerSec: 4 << 20, SeedBase: 42,
	})
	if err != nil {
		return nil, nil, err
	}
	for _, obj := range lib {
		if err := srv.AddObject(obj); err != nil {
			return nil, nil, err
		}
	}
	return srv, lib, nil
}

// serveGateway builds the server, wraps it in a gateway, and serves HTTP
// until stop closes; then it drains sessions gracefully and exits. If ready
// is non-nil it receives the bound address once listening (used by tests
// and by -addr with port 0).
func serveGateway(opts serveOptions, w io.Writer, ready func(addr string), stop <-chan struct{}) error {
	red, err := parseRedundancy(opts.redundancy)
	if err != nil {
		return err
	}
	if opts.bits == 0 {
		opts.bits = 64
	}
	if opts.bits > 64 {
		return fmt.Errorf("bits %d outside [1,64]", opts.bits)
	}
	if opts.dataDir != "" && opts.bits != 64 {
		return fmt.Errorf("-bits %d is incompatible with -data-dir: recovery regenerates X0 chains with the full-width generator family", opts.bits)
	}
	if opts.replAddr != "" && opts.dataDir == "" {
		return fmt.Errorf("-repl-addr requires -data-dir: followers stream the durable journal")
	}

	// With -data-dir the server's state lives in a durable store: an
	// existing journal is recovered (the library flags are ignored — the
	// journal is the authority), a fresh directory is bootstrapped from
	// the synthetic library and journals everything from then on.
	var st *store.Store
	var srv *cm.Server
	if opts.dataDir != "" {
		st, err = store.Open(store.Config{Dir: opts.dataDir})
		if err != nil {
			return err
		}
		defer st.Close()
	}
	if st != nil && st.HasState() {
		var info *store.RecoveryInfo
		srv, info, err = st.Recover(defaultX0())
		if err != nil {
			return fmt.Errorf("recover %s: %w", opts.dataDir, err)
		}
		fmt.Fprintf(w, "serve: recovered %s: checkpoint LSN %d, %d events replayed (library flags ignored)\n",
			opts.dataDir, info.CheckpointLSN, info.ReplayedEvents)
		if info.TornTail {
			fmt.Fprintf(w, "serve: journal tail truncated: %s (%d bytes dropped)\n",
				info.TornReason, info.TruncatedBytes)
		}
	} else {
		srv, _, err = buildLoadedServer(opts.n0, opts.objects, opts.blocks, opts.bits, func(c *cm.Config) {
			c.Redundancy = red
			if opts.utilization > 0 {
				c.Utilization = opts.utilization
			}
			if opts.blockBytes > 0 {
				c.BlockBytes = opts.blockBytes
			}
			if opts.bits < 64 {
				c.GeneratorBits = opts.bits
				c.Tolerance = opts.eps
			}
		})
		if err != nil {
			return err
		}
		if st != nil {
			if err := st.Bootstrap(srv); err != nil {
				return fmt.Errorf("bootstrap %s: %w", opts.dataDir, err)
			}
			fmt.Fprintf(w, "serve: bootstrapped %s at LSN %d\n", opts.dataDir, st.LSN())
		}
	}
	// With -payload-dir every disk gets a real segment store: ingest writes
	// actual bytes, migrations and rebuilds move them, and streaming sessions
	// serve them. Attach after recovery so the startup reconcile can GC
	// orphan payloads and re-materialize missing ones against the recovered
	// catalog (the metadata journal is the system of record).
	if opts.payloadDir != "" {
		mgr, err := dataplane.NewManager(opts.payloadDir, dataplane.Options{})
		if err != nil {
			return err
		}
		defer mgr.Close()
		if err := srv.AttachPayloads(mgr.Factory(), dataplane.SeededContent); err != nil {
			return err
		}
		fmt.Fprintf(w, "serve: payload stores at %s (%d bytes live)\n", opts.payloadDir, mgr.LiveBytes())
	}
	// Snapshot the banner facts before the gateway's owner goroutine takes
	// over the server.
	disks, objects, blocks := srv.N(), srv.Objects(), srv.TotalBlocks()
	factory := func(seed uint64) prng.Source { return prng.NewSplitMix64(seed) }
	if opts.bits < 64 {
		factory = func(seed uint64) prng.Source { return prng.Truncate(prng.NewSplitMix64(seed), opts.bits) }
	}
	// The replication leader shares the gateway's metrics registry so one
	// /metrics scrape covers serving and shipping.
	reg := obs.NewRegistry()
	var ldr *repl.Leader
	if opts.replAddr != "" {
		ldr, err = repl.NewLeader(repl.LeaderConfig{
			Store:    st,
			Registry: reg,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(w, format+"\n", args...)
			},
		})
		if err != nil {
			return err
		}
		rln, err := net.Listen("tcp", opts.replAddr)
		if err != nil {
			return err
		}
		ldr.Serve(rln)
		defer ldr.Close()
		fmt.Fprintf(w, "serve: replication listening on %s\n", rln.Addr())
	}

	g, err := gateway.New(srv, gateway.Config{
		Factory:          factory,
		Round:            opts.round,
		MailboxDepth:     opts.mailbox,
		RequestTimeout:   opts.timeout,
		Store:            st,
		CheckpointEvery:  opts.checkpointEvery,
		Registry:         reg,
		ReplLeader:       ldr,
		StreamBuffer:     opts.streamBuffer,
		StreamEvictAfter: opts.streamEvict,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(w, format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	defer g.Close()

	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}

	// The binary lookup listener serves the same locator snapshot as the
	// HTTP read path, minus the HTTP overhead (docs/PROTOCOL.md). The
	// gateway shuts it down with itself and advertises the bound address
	// in GET /v1/status so loadgen -bin can discover it.
	if opts.binAddr != "" {
		bln, err := net.Listen("tcp", opts.binAddr)
		if err != nil {
			return err
		}
		if _, err := g.ServeBin(bln); err != nil {
			return err
		}
		fmt.Fprintf(w, "serve: binary lookups listening on %s\n", bln.Addr())
	}

	// The debug listener is deliberately separate from the service address:
	// pprof and raw metrics should be bindable to localhost while the data
	// path faces the network.
	if opts.debugAddr != "" {
		dln, err := net.Listen("tcp", opts.debugAddr)
		if err != nil {
			return err
		}
		dmux := http.NewServeMux()
		dmux.HandleFunc("/metrics", func(rw http.ResponseWriter, _ *http.Request) {
			rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			g.Registry().WritePrometheus(rw)
		})
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ds := &http.Server{Handler: dmux}
		go ds.Serve(dln)
		defer ds.Close()
		fmt.Fprintf(w, "serve: debug listening on http://%s (/metrics, /debug/pprof)\n", dln.Addr())
	}

	fmt.Fprintf(w, "serve: %d disks, %d objects, %d blocks, round %s\n",
		disks, objects, blocks, opts.round)
	fmt.Fprintf(w, "serve: listening on http://%s (Ctrl-C to drain and exit)\n", ln.Addr())
	if ready != nil {
		ready(ln.Addr().String())
	}

	hs := &http.Server{Handler: g.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-stop:
	}

	// Graceful exit: drain sessions first (new ones are refused with 503
	// while existing ones play out), then stop accepting connections.
	fmt.Fprintf(w, "serve: draining (budget %s)...\n", opts.drain)
	ctx, cancel := context.WithTimeout(context.Background(), opts.drain)
	defer cancel()
	drainErr := g.Shutdown(ctx)
	if err := hs.Shutdown(ctx); err != nil && drainErr == nil {
		drainErr = err
	}
	gs := g.Status()
	fmt.Fprintf(w, "serve: done after %d rounds; %d sessions served, %d rejected, %d lookups\n",
		gs.Rounds, gs.Gateway.SessionsOpened, gs.Gateway.SessionsRejected, gs.Gateway.Reads)
	if drainErr != nil {
		return fmt.Errorf("drain: %w", drainErr)
	}
	return nil
}
