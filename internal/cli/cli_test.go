package cli

import (
	"bytes"
	"strings"
	"testing"

	"scaddar/internal/scaddar"
)

// run executes the CLI and returns (stdout, stderr, exit code).
func run(args ...string) (string, string, int) {
	var out, errOut bytes.Buffer
	code := Run(args, &out, &errOut)
	return out.String(), errOut.String(), code
}

func TestRunNoArgs(t *testing.T) {
	_, errOut, code := run()
	if code != 2 || !strings.Contains(errOut, "usage") {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
}

func TestRunUnknownCommand(t *testing.T) {
	_, errOut, code := run("frobnicate")
	if code != 2 || !strings.Contains(errOut, "unknown command") {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
}

func TestRunHelp(t *testing.T) {
	out, _, code := run("help")
	if code != 0 || !strings.Contains(out, "simulate") {
		t.Fatalf("code=%d out=%q", code, out)
	}
}

func TestParseOps(t *testing.T) {
	h := scaddar.MustNewHistory(6)
	if err := ParseOps(h, "add:2,remove:1+3,add:1"); err != nil {
		t.Fatal(err)
	}
	if h.N() != 7 || h.Ops() != 3 {
		t.Fatalf("N=%d ops=%d", h.N(), h.Ops())
	}
	if err := ParseOps(scaddar.MustNewHistory(4), ""); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"nop:1", "add:x", "remove:a", "remove:", "add:0", "remove:9"} {
		if err := ParseOps(scaddar.MustNewHistory(4), bad); err == nil {
			t.Errorf("bad spec %q accepted", bad)
		}
	}
}

// TestLocatePaperExample drives the locate command through the paper's
// Section 4.2.1 removal scenario.
func TestLocatePaperExample(t *testing.T) {
	out, errOut, code := run("locate", "-n0", "6", "-ops", "remove:4", "-seed", "9", "-block", "3")
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
	for _, want := range []string{"history:  N0=6 remove(1)→5", "X_0", "X_1", "disk:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestBoundPaperExample(t *testing.T) {
	out, _, code := run("bound", "-bits", "64", "-eps", "0.01", "-disks", "16")
	if code != 0 {
		t.Fatalf("code=%d", code)
	}
	if !strings.Contains(out, "k ≤ 13") || !strings.Contains(out, "k = 13") {
		t.Fatalf("bound output wrong:\n%s", out)
	}
}

func TestBalanceSmall(t *testing.T) {
	out, errOut, code := run("balance", "-n0", "4", "-adds", "3", "-objects", "4", "-blocks", "200")
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
	if !strings.Contains(out, "scaddar") || !strings.Contains(out, "reshuffle") {
		t.Fatalf("balance output wrong:\n%s", out)
	}
}

func TestPlanAddAndRemove(t *testing.T) {
	out, errOut, code := run("plan", "-n0", "8", "-objects", "4", "-blocks", "250", "-add", "2")
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
	if !strings.Contains(out, "8 → 10 disks") {
		t.Fatalf("plan output wrong:\n%s", out)
	}
	out, _, code = run("plan", "-n0", "8", "-objects", "4", "-blocks", "250", "-remove", "1+3")
	if code != 0 || !strings.Contains(out, "8 → 6 disks") {
		t.Fatalf("plan remove output wrong (code %d):\n%s", code, out)
	}
	// Exactly one of -add/-remove.
	if _, _, code := run("plan", "-n0", "8"); code == 0 {
		t.Fatal("plan with neither flag accepted")
	}
	if _, _, code := run("plan", "-n0", "8", "-add", "1", "-remove", "0"); code == 0 {
		t.Fatal("plan with both flags accepted")
	}
	if _, _, code := run("plan", "-n0", "8", "-remove", "x"); code == 0 {
		t.Fatal("plan with bad remove spec accepted")
	}
}

func TestSimulateScenario(t *testing.T) {
	out, errOut, code := run("simulate",
		"-n0", "6", "-objects", "6", "-blocks", "200",
		"-load", "0.5", "-add-at", "5", "-add", "1", "-rounds", "40")
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
	for _, want := range []string{"scale-out to 7 disks", "migration complete", "hiccups 0", "overruns 0", "final: 7 disks"} {
		if !strings.Contains(out, want) {
			t.Fatalf("simulate output missing %q:\n%s", want, out)
		}
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, _, code := run("simulate", "-load", "0"); code == 0 {
		t.Fatal("zero load accepted")
	}
	if _, _, code := run("simulate", "-rounds", "0"); code == 0 {
		t.Fatal("zero rounds accepted")
	}
}

func TestFlagErrorsPropagate(t *testing.T) {
	if _, _, code := run("locate", "-n0", "notanumber"); code != 1 {
		t.Fatal("flag parse error not propagated")
	}
}

func TestDrillMirrorScenario(t *testing.T) {
	out, errOut, code := run("drill",
		"-n0", "6", "-objects", "6", "-blocks", "200",
		"-load", "0.5", "-redundancy", "mirror",
		"-fail-at", "5", "-disk", "2", "-repair-after", "4", "-rounds", "80")
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
	for _, want := range []string{
		"mirror redundancy",
		"round 5: disk 2 FAILED",
		"round 9: replacement online",
		"rebuild complete",
		"unrecoverable 0",
		"rebuilds completed 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("drill output missing %q:\n%s", want, out)
		}
	}
}

func TestDrillNoneLosesData(t *testing.T) {
	out, errOut, code := run("drill",
		"-n0", "4", "-objects", "4", "-blocks", "150",
		"-load", "0.4", "-redundancy", "none",
		"-fail-at", "3", "-disk", "1", "-repair-after", "2", "-rounds", "30")
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
	if !strings.Contains(out, "blocks lost") && strings.Contains(out, "unrecoverable 0") {
		t.Fatalf("unprotected drill reported no losses:\n%s", out)
	}
}

func TestDrillValidation(t *testing.T) {
	if _, _, code := run("drill", "-redundancy", "raid6"); code == 0 {
		t.Fatal("unknown redundancy accepted")
	}
	if _, _, code := run("drill", "-load", "0"); code == 0 {
		t.Fatal("zero load accepted")
	}
	if _, _, code := run("drill", "-fail-at", "0"); code == 0 {
		t.Fatal("fail-at 0 accepted")
	}
}
