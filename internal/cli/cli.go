// Package cli implements the scaddar command-line tool: locating blocks
// through a scaling history, computing the Section 4.3 randomness budget,
// simulating load balance, sizing reorganization plans, and running full
// server scenarios. It lives apart from cmd/scaddar so the command logic is
// unit-testable.
package cli

import (
	"flag"
	"fmt"
	"io"
	"strconv"
	"strings"

	"scaddar/internal/cm"
	"scaddar/internal/experiments"
	"scaddar/internal/placement"
	"scaddar/internal/prng"
	"scaddar/internal/reorg"
	"scaddar/internal/scaddar"
	"scaddar/internal/stats"
	"scaddar/internal/workload"
)

// Run executes the tool with the given arguments (excluding the program
// name) and returns a process exit code.
func Run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	var err error
	switch args[0] {
	case "locate":
		err = cmdLocate(args[1:], stdout)
	case "bound":
		err = cmdBound(args[1:], stdout)
	case "balance":
		err = cmdBalance(args[1:], stdout)
	case "plan":
		err = cmdPlan(args[1:], stdout)
	case "simulate":
		err = cmdSimulate(args[1:], stdout)
	case "drill":
		err = cmdDrill(args[1:], stdout)
	case "trace":
		err = cmdTrace(args[1:], stdout)
	case "forecast":
		err = cmdForecast(args[1:], stdout)
	case "serve":
		err = cmdServe(args[1:], stdout)
	case "cluster":
		err = cmdCluster(args[1:], stdout)
	case "follow":
		err = cmdFollow(args[1:], stdout)
	case "recover":
		err = cmdRecover(args[1:], stdout)
	case "loadgen":
		err = cmdLoadgen(args[1:], stdout)
	case "help", "-h", "--help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "scaddar: unknown command %q\n", args[0])
		usage(stderr)
		return 2
	}
	if err != nil {
		fmt.Fprintf(stderr, "scaddar: %v\n", err)
		return 1
	}
	return 0
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage: scaddar <command> [flags]

commands:
  locate    locate a block through a scaling history (the access function)
  bound     compute the Section 4.3 randomness budget
  balance   simulate load balance across scaling operations
  plan      size the reorganization plan of one scaling operation
  simulate  run an online server scenario (streams + scaling) and report
  drill     run a failure drill (disk failure, degraded serving, rebuild)
  trace     generate | replay | show deterministic session traces
  forecast  predict movement and budget for a planned operation sequence
  serve     run the concurrent HTTP gateway over a live server
  cluster   run a sharded multi-array cluster behind one routing gateway
  follow    tail a leader's journal and serve epoch-fenced replica reads
  recover   inspect a durable state directory and rebuild the server from it
  loadgen   generate concurrent load against a running gateway and report`)
}

// ParseOps applies an operation list like "add:2,remove:1+3" to a history.
func ParseOps(h *scaddar.History, spec string) error {
	if spec == "" {
		return nil
	}
	for _, raw := range strings.Split(spec, ",") {
		op := strings.TrimSpace(raw)
		switch {
		case strings.HasPrefix(op, "add:"):
			k, err := strconv.Atoi(op[len("add:"):])
			if err != nil {
				return fmt.Errorf("bad op %q: %v", op, err)
			}
			if _, err := h.Add(k); err != nil {
				return err
			}
		case strings.HasPrefix(op, "remove:"):
			indices, err := parseIndices(op[len("remove:"):])
			if err != nil {
				return fmt.Errorf("bad op %q: %v", op, err)
			}
			if _, err := h.Remove(indices...); err != nil {
				return err
			}
		default:
			return fmt.Errorf("bad op %q: want add:K or remove:I+J", op)
		}
	}
	return nil
}

// parseIndices parses "1+3+5" into a slice of ints.
func parseIndices(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, "+") {
		i, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, i)
	}
	return out, nil
}

func cmdLocate(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("locate", flag.ContinueOnError)
	fs.SetOutput(w)
	n0 := fs.Int("n0", 8, "initial disk count")
	ops := fs.String("ops", "", "scaling operations, e.g. add:2,remove:1+3")
	seed := fs.Uint64("seed", 1, "object seed s_m")
	block := fs.Uint64("block", 0, "block index i")
	bits := fs.Uint("bits", 64, "generator width b")
	if err := fs.Parse(args); err != nil {
		return err
	}

	h, err := scaddar.NewHistory(*n0)
	if err != nil {
		return err
	}
	if err := ParseOps(h, *ops); err != nil {
		return err
	}
	loc, err := scaddar.NewLocator(h, func(s uint64) prng.Source {
		return prng.Truncate(prng.NewSplitMix64(s), *bits)
	})
	if err != nil {
		return err
	}
	x0, err := loc.X0(*seed, *block)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "history:  %s\n", h)
	fmt.Fprintf(w, "X0:       %d\n", x0)
	for j, x := range h.Trace(x0) {
		fmt.Fprintf(w, "  X_%d = %-22d disk %d of %d\n", j, x, x%uint64(h.NAt(j)), h.NAt(j))
	}
	fmt.Fprintf(w, "disk:     %d (of %d)\n", h.Locate(x0), h.N())
	return nil
}

func cmdBound(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("bound", flag.ContinueOnError)
	fs.SetOutput(w)
	bits := fs.Uint("bits", 32, "generator width b")
	eps := fs.Float64("eps", 0.05, "unfairness tolerance ε")
	disks := fs.Int("disks", 8, "average disk count N̄")
	if err := fs.Parse(args); err != nil {
		return err
	}

	thumb := scaddar.RuleOfThumb(*bits, *eps, float64(*disks))
	exact, err := scaddar.MaxOpsExact(*bits, *disks, *eps, func(int) int { return *disks }, 500)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "rule of thumb: k ≤ %d operations\n", thumb)
	fmt.Fprintf(w, "exact (constant %d disks): k = %d operations\n", *disks, exact)
	fmt.Fprintf(w, "after that, redistribute all blocks and restart the chain.\n")
	return nil
}

func cmdBalance(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("balance", flag.ContinueOnError)
	fs.SetOutput(w)
	n0 := fs.Int("n0", 4, "initial disk count")
	adds := fs.Int("adds", 8, "number of single-disk additions")
	objects := fs.Int("objects", 20, "number of objects")
	blocks := fs.Int("blocks", 1000, "blocks per object")
	bits := fs.Uint("bits", 32, "generator width b")
	eps := fs.Float64("eps", 0.05, "unfairness tolerance ε")
	if err := fs.Parse(args); err != nil {
		return err
	}

	res, err := experiments.RunE2(experiments.E2Config{
		N0: *n0, Ops: *adds, Objects: *objects, BlocksPer: *blocks, Bits: *bits, Eps: *eps,
	})
	if err != nil {
		return err
	}
	fmt.Fprint(w, res.Table().Render())
	if res.BudgetExhaustedAt > 0 {
		fmt.Fprintf(w, "budget exhausted at operation %d: schedule a full redistribution.\n", res.BudgetExhaustedAt)
	}
	return nil
}

func cmdPlan(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("plan", flag.ContinueOnError)
	fs.SetOutput(w)
	n0 := fs.Int("n0", 8, "initial disk count")
	objects := fs.Int("objects", 20, "number of objects")
	blocksPer := fs.Int("blocks", 1000, "blocks per object")
	add := fs.Int("add", 0, "disks to add")
	remove := fs.String("remove", "", "logical indices to remove, e.g. 1+3")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if (*add > 0) == (*remove != "") {
		return fmt.Errorf("specify exactly one of -add or -remove")
	}
	blocks := experiments.BlockUniverse(*objects, *blocksPer)
	x0 := experiments.X0FuncBits(64)
	strat, err := placement.NewScaddar(*n0, x0)
	if err != nil {
		return err
	}
	var plan *reorg.Plan
	if *add > 0 {
		plan, err = reorg.PlanAdd(strat, blocks, *add)
	} else {
		indices, convErr := parseIndices(*remove)
		if convErr != nil {
			return fmt.Errorf("bad -remove: %v", convErr)
		}
		plan, err = reorg.PlanRemove(strat, blocks, indices...)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "operation:      %d → %d disks\n", plan.NBefore, plan.NAfter)
	fmt.Fprintf(w, "blocks total:   %d\n", plan.Blocks)
	fmt.Fprintf(w, "blocks to move: %d (%.1f%%)\n", len(plan.Moves), 100*plan.MoveFraction())
	fmt.Fprintf(w, "optimal z_j:    %.1f%%\n", 100*plan.OptimalFraction())
	fmt.Fprintf(w, "post-op CoV:    %.4f\n", stats.CoVInts(placement.LoadVector(strat, blocks)))
	return nil
}

func cmdSimulate(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	fs.SetOutput(w)
	n0 := fs.Int("n0", 8, "initial disk count")
	objects := fs.Int("objects", 12, "number of objects")
	blocks := fs.Int("blocks", 600, "blocks per object")
	load := fs.Float64("load", 0.6, "stream load as a fraction of capacity")
	addAt := fs.Int("add-at", 20, "round at which to add disks (0 = never)")
	addCount := fs.Int("add", 2, "disks to add at -add-at")
	rounds := fs.Int("rounds", 100, "rounds to simulate")
	measure := fs.Bool("measure", true, "replay rounds through the SCAN model")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *load <= 0 || *load > 1 {
		return fmt.Errorf("load %g outside (0,1]", *load)
	}
	if *rounds < 1 {
		return fmt.Errorf("rounds %d", *rounds)
	}

	x0 := placement.NewX0Func(func(seed uint64) prng.Source { return prng.NewSplitMix64(seed) })
	strat, err := placement.NewScaddar(*n0, x0)
	if err != nil {
		return err
	}
	cfg := cm.DefaultConfig()
	cfg.MeasureRounds = *measure
	srv, err := cm.NewServer(cfg, strat)
	if err != nil {
		return err
	}
	lib, err := workload.Library(workload.LibraryConfig{
		Objects: *objects, MinBlocks: *blocks, MaxBlocks: *blocks,
		BlockBytes: cfg.BlockBytes, BitrateBitsPerSec: 4 << 20, SeedBase: 42,
	})
	if err != nil {
		return err
	}
	for _, obj := range lib {
		if err := srv.AddObject(obj); err != nil {
			return err
		}
	}
	zipf, err := workload.NewZipf(prng.NewSplitMix64(1), *objects, 0.729)
	if err != nil {
		return err
	}
	pos := prng.NewSplitMix64(2)
	target := int(*load * float64(srv.N()) * float64(cfg.Profile.BlocksPerRound(cfg.Round, cfg.BlockBytes)))
	admit := func() error {
		o := zipf.Draw()
		st, err := srv.StartStream(o)
		if err != nil {
			return err
		}
		return srv.SeekStream(st.ID, int(pos.Next()%uint64(lib[o].Blocks)))
	}
	for i := 0; i < target; i++ {
		if err := admit(); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "simulate: %d disks, %d blocks, %d streams (load %.0f%%)\n",
		srv.N(), srv.TotalBlocks(), srv.ActiveStreams(), *load*100)

	var plan *reorg.Plan
	for r := 1; r <= *rounds; r++ {
		if *addAt > 0 && r == *addAt {
			plan, err = srv.ScaleUp(*addCount)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "round %d: scale-out to %d disks (%d moves planned, z=%.1f%%)\n",
				r, srv.N(), len(plan.Moves), 100*plan.OptimalFraction())
		}
		if err := srv.Tick(); err != nil {
			return err
		}
		if plan != nil && !srv.Reorganizing() {
			fmt.Fprintf(w, "round %d: migration complete\n", r)
			if err := srv.FinishReorganization(); err != nil {
				return err
			}
			plan = nil
		}
		for srv.ActiveStreams() < target {
			if err := admit(); err != nil {
				return err
			}
		}
	}
	m := srv.Metrics()
	fmt.Fprintf(w, "rounds %d  served %d  hiccups %d  migrated %d  overruns %d\n",
		m.Rounds, m.BlocksServed, m.Hiccups, m.BlocksMigrated, m.RoundOverruns)
	fmt.Fprintf(w, "final: %d disks, CoV %.4f\n", srv.N(), stats.CoVInts(srv.Array().Loads()))
	return srv.VerifyIntegrity()
}

func cmdDrill(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("drill", flag.ContinueOnError)
	fs.SetOutput(w)
	n0 := fs.Int("n0", 8, "initial disk count")
	objects := fs.Int("objects", 12, "number of objects")
	blocks := fs.Int("blocks", 600, "blocks per object")
	load := fs.Float64("load", 0.6, "stream load as a fraction of capacity")
	redundancy := fs.String("redundancy", "mirror", "protection scheme: none | mirror | parity")
	failAt := fs.Int("fail-at", 10, "round at which the disk fails")
	failDisk := fs.Int("disk", 0, "logical index of the disk to fail")
	repairAfter := fs.Int("repair-after", 5, "rounds between failure and replacement arrival")
	errRate := fs.Float64("error-rate", 0, "transient per-read error probability in [0,1)")
	rounds := fs.Int("rounds", 200, "rounds to simulate")
	seed := fs.Uint64("seed", 1, "fault-injector seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *load <= 0 || *load > 1 {
		return fmt.Errorf("load %g outside (0,1]", *load)
	}
	if *failAt < 1 || *repairAfter < 1 || *rounds < *failAt {
		return fmt.Errorf("need 1 <= fail-at <= rounds and repair-after >= 1")
	}
	var red cm.Redundancy
	switch *redundancy {
	case "none":
		red = cm.RedundancyNone
	case "mirror":
		red = cm.RedundancyMirror
	case "parity":
		red = cm.RedundancyParity
	default:
		return fmt.Errorf("redundancy %q: want none, mirror, or parity", *redundancy)
	}

	x0 := placement.NewX0Func(func(seed uint64) prng.Source { return prng.NewSplitMix64(seed) })
	strat, err := placement.NewScaddar(*n0, x0)
	if err != nil {
		return err
	}
	cfg := cm.DefaultConfig()
	cfg.Redundancy = red
	srv, err := cm.NewServer(cfg, strat)
	if err != nil {
		return err
	}
	lib, err := workload.Library(workload.LibraryConfig{
		Objects: *objects, MinBlocks: *blocks, MaxBlocks: *blocks,
		BlockBytes: cfg.BlockBytes, BitrateBitsPerSec: 4 << 20, SeedBase: 42,
	})
	if err != nil {
		return err
	}
	for _, obj := range lib {
		if err := srv.AddObject(obj); err != nil {
			return err
		}
	}
	zipf, err := workload.NewZipf(prng.NewSplitMix64(1), *objects, 0.729)
	if err != nil {
		return err
	}
	pos := prng.NewSplitMix64(2)
	target := int(*load * float64(srv.N()) * float64(cfg.Profile.BlocksPerRound(cfg.Round, cfg.BlockBytes)))
	for i := 0; i < target; i++ {
		o := zipf.Draw()
		st, err := srv.StartStream(o)
		if err != nil {
			return err
		}
		if err := srv.SeekStream(st.ID, int(pos.Next()%uint64(lib[o].Blocks))); err != nil {
			return err
		}
	}

	repairAt := *failAt + *repairAfter
	inj := cm.NewInjector(*seed).FailAt(*failAt, *failDisk).RepairAt(repairAt, *failDisk)
	if *errRate > 0 {
		if inj, err = inj.WithTransientErrorRate(*errRate); err != nil {
			return err
		}
	}
	if err := srv.InstallFaults(inj); err != nil {
		return err
	}
	fmt.Fprintf(w, "drill: %d disks, %d blocks, %d streams, %s redundancy\n",
		srv.N(), srv.TotalBlocks(), srv.ActiveStreams(), red)
	fmt.Fprintf(w, "schedule: disk %d fails at round %d, replacement arrives at round %d\n",
		*failDisk, *failAt, repairAt)

	wasDegraded := false
	for r := 1; r <= *rounds; r++ {
		if err := srv.Tick(); err != nil {
			return err
		}
		if r == *failAt {
			fmt.Fprintf(w, "round %d: disk %d FAILED; serving degraded\n", r, *failDisk)
		}
		if r == repairAt {
			fmt.Fprintf(w, "round %d: replacement online; rebuilding %d items from spare bandwidth\n",
				r, srv.RebuildRemaining())
		}
		if wasDegraded && !srv.Degraded() {
			fmt.Fprintf(w, "round %d: rebuild complete; array healthy again\n", r)
		}
		wasDegraded = srv.Degraded()
	}
	m := srv.Metrics()
	fmt.Fprintf(w, "rounds %d  served %d  hiccups %d  degraded reads %d  unrecoverable %d\n",
		m.Rounds, m.BlocksServed, m.Hiccups, m.DegradedReads, m.UnrecoverableReads)
	fmt.Fprintf(w, "failover reads %d  transient errors %d  blocks rebuilt %d  rebuild I/Os %d\n",
		m.FailoverReads, m.TransientReadErrors, m.BlocksRebuilt, m.RebuildIOs)
	if m.RebuildsCompleted > 0 {
		fmt.Fprintf(w, "rebuilds completed %d  rounds to repair %d\n",
			m.RebuildsCompleted, m.RoundsToRepair)
	} else if srv.Degraded() {
		fmt.Fprintf(w, "still degraded: %d rebuild items pending, %d blocks lost\n",
			srv.RebuildRemaining(), srv.LostBlocks())
	}
	return srv.VerifyIntegrity()
}
