package cli

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"scaddar/internal/binproto"
	"scaddar/internal/cluster"
	"scaddar/internal/cm"
	"scaddar/internal/obs"
	"scaddar/internal/prng"
	"scaddar/internal/workload"
)

// loadgen -bin: the experiment behind docs/EXPERIMENTS.md E20. The same
// Zipf-shaped lookup stream is replayed three times — over HTTP GETs, over
// binary single lookups, and over binary batched lookups — and the three
// phases are reported side by side, so the protocol's throughput claim can
// be reproduced against a live server instead of a micro-benchmark.
//
// Against a cluster router the HTTP phase goes through the router proxy
// (that is the production HTTP path), while the binary phases dial each
// shard's advertised binAddr directly and route client-side with the same
// jump hash the router uses. That is fair as long as the topology is
// static for the duration of the run: shard scale-ups (-scale-at) only
// grow one shard's internal disk array and move no objects between
// shards, but a concurrent shard add/drain would invalidate the
// client-side routing table.

// binTarget maps an object ID to the binary client pool that owns it.
type binTarget struct {
	pools   []*binproto.Pool
	buckets int         // routing slots; 0 = single gateway, pools[0] owns all
	pins    map[int]int // pinned object → pool index (cluster mode)
}

func (t *binTarget) index(object int) int {
	if t.buckets == 0 {
		return 0
	}
	if i, ok := t.pins[object]; ok {
		return i
	}
	return cluster.RouteSlot(object, t.buckets)
}

func (t *binTarget) close() {
	for _, p := range t.pools {
		p.Close()
	}
}

// binPhase is one phase's merged outcome. Latency samples are per timed
// operation: one lookup in the HTTP and single phases, one whole frame in
// the batched phase (every lookup in a frame experiences the frame's
// latency, so frame percentiles are the honest per-request figure).
type binPhase struct {
	name    string
	lookups int64
	errs    int64
	lats    []time.Duration
	elapsed time.Duration
}

func (p *binPhase) rate() float64 {
	if p.elapsed <= 0 {
		return 0
	}
	return float64(p.lookups) / p.elapsed.Seconds()
}

// runBinPhase fans the per-client body out over opts.clients goroutines,
// each with the same deterministically-seeded workload as runLoadgen, and
// merges their tallies.
func runBinPhase(opts loadgenOptions, name string, objects []lgObject,
	body func(w int, zipf *workload.Zipf, rng prng.Source, deadline time.Time, ph *binPhase) error) (*binPhase, error) {
	start := time.Now()
	deadline := start.Add(opts.duration)
	phases := make([]binPhase, opts.clients)
	errCh := make(chan error, opts.clients)
	var wg sync.WaitGroup
	for i := 0; i < opts.clients; i++ {
		z, err := workload.NewZipf(prng.NewSplitMix64(opts.seed+uint64(i)*2654435761), len(objects), opts.zipf)
		if err != nil {
			return nil, err
		}
		rng := prng.NewSplitMix64(opts.seed*31 + uint64(i))
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := body(i, z, rng, deadline, &phases[i]); err != nil {
				errCh <- err
			}
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, fmt.Errorf("%s phase: %w", name, err)
	default:
	}
	merged := &binPhase{name: name, elapsed: time.Since(start)}
	for i := range phases {
		merged.lookups += phases[i].lookups
		merged.errs += phases[i].errs
		merged.lats = append(merged.lats, phases[i].lats...)
	}
	return merged, nil
}

// runBinLoad resolves the binary endpoints, replays the same lookup
// workload over the HTTP and binary read paths, and prints the comparison.
func runBinLoad(opts loadgenOptions, w io.Writer) error {
	if opts.clients < 1 {
		return fmt.Errorf("clients %d", opts.clients)
	}
	if opts.duration <= 0 {
		return fmt.Errorf("duration %s", opts.duration)
	}
	if opts.batch < 1 || opts.batch > binproto.MaxBatch {
		return fmt.Errorf("batch %d outside [1,%d]", opts.batch, binproto.MaxBatch)
	}
	base := opts.addr
	hc := &http.Client{Timeout: 30 * time.Second}

	resp, err := hc.Get(base + "/v1/objects")
	if err != nil {
		return fmt.Errorf("objects: %w", err)
	}
	var objects []lgObject
	err = json.NewDecoder(resp.Body).Decode(&objects)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("objects: %w", err)
	}
	if len(objects) == 0 {
		return fmt.Errorf("gateway has no objects loaded")
	}

	target, err := resolveBinTarget(opts, hc, base)
	if err != nil {
		return err
	}
	defer target.close()
	if opts.cluster {
		fmt.Fprintf(w, "loadgen -bin: %d clients, %s per phase, %d objects, Zipf θ=%g; HTTP via router %s, binary shard-direct (%d shards, client-side jump hash)\n",
			opts.clients, opts.duration, len(objects), opts.zipf, base, len(target.pools))
	} else {
		fmt.Fprintf(w, "loadgen -bin: %d clients, %s per phase, %d objects, Zipf θ=%g against %s\n",
			opts.clients, opts.duration, len(objects), opts.zipf, base)
	}

	httpPhase, err := runBinPhase(opts, "http", objects,
		func(_ int, zipf *workload.Zipf, rng prng.Source, deadline time.Time, ph *binPhase) error {
			phc := &http.Client{Timeout: 30 * time.Second}
			for time.Now().Before(deadline) {
				obj := objects[zipf.Draw()]
				idx := int(rng.Next() % uint64(obj.Blocks))
				t0 := time.Now()
				resp, err := phc.Get(fmt.Sprintf("%s/v1/objects/%d/blocks/%d", base, obj.ID, idx))
				if err != nil {
					return err
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					ph.errs++
					continue
				}
				ph.lats = append(ph.lats, time.Since(t0))
				ph.lookups++
			}
			return nil
		})
	if err != nil {
		return err
	}

	singlePhase, err := runBinPhase(opts, "bin single", objects,
		func(_ int, zipf *workload.Zipf, rng prng.Source, deadline time.Time, ph *binPhase) error {
			for time.Now().Before(deadline) {
				obj := objects[zipf.Draw()]
				idx := int(rng.Next() % uint64(obj.Blocks))
				c := target.pools[target.index(obj.ID)].Get()
				t0 := time.Now()
				if _, _, _, err := c.Locate(obj.ID, idx); err != nil {
					ph.errs++
					continue
				}
				ph.lats = append(ph.lats, time.Since(t0))
				ph.lookups++
			}
			return nil
		})
	if err != nil {
		return err
	}

	batchName := fmt.Sprintf("bin batch%d", opts.batch)
	batchPhase, err := runBinPhase(opts, batchName, objects,
		func(_ int, zipf *workload.Zipf, rng prng.Source, deadline time.Time, ph *binPhase) error {
			// One address buffer per shard pool: lookups accumulate on their
			// owning shard and flush as a full frame.
			bufs := make([][]cm.BlockAddr, len(target.pools))
			out := make([]binproto.Result, opts.batch)
			flush := func(pi int) error {
				c := target.pools[pi].Get()
				t0 := time.Now()
				if _, err := c.LocateBatch(bufs[pi], out[:len(bufs[pi])]); err != nil {
					return err
				}
				ph.lats = append(ph.lats, time.Since(t0))
				for i := range bufs[pi] {
					if out[i].Code != 0 {
						ph.errs++
					} else {
						ph.lookups++
					}
				}
				bufs[pi] = bufs[pi][:0]
				return nil
			}
			for time.Now().Before(deadline) {
				obj := objects[zipf.Draw()]
				idx := int(rng.Next() % uint64(obj.Blocks))
				pi := target.index(obj.ID)
				bufs[pi] = append(bufs[pi], cm.BlockAddr{Object: obj.ID, Index: idx})
				if len(bufs[pi]) == opts.batch {
					if err := flush(pi); err != nil {
						return err
					}
				}
			}
			return nil
		})
	if err != nil {
		return err
	}

	report := func(p *binPhase, latNote string) {
		h := obs.MustNewHistogram(obs.LatencyBuckets())
		for _, lat := range p.lats {
			h.ObserveDuration(lat)
		}
		sn := h.Snapshot()
		fmt.Fprintf(w, "%-14s %9d lookups in %-8s %9.0f lookups/s  errors %-5d %s p50 %-9s p95 %-9s p99 %s\n",
			p.name+":", p.lookups, p.elapsed.Round(time.Millisecond), p.rate(), p.errs, latNote,
			secondsDuration(sn.Quantile(0.50)),
			secondsDuration(sn.Quantile(0.95)),
			secondsDuration(sn.Quantile(0.99)))
	}
	report(httpPhase, "lat")
	report(singlePhase, "lat")
	report(batchPhase, "frame")
	if httpPhase.rate() > 0 {
		fmt.Fprintf(w, "binary single vs HTTP: %.1fx throughput; batched vs HTTP: %.1fx throughput\n",
			singlePhase.rate()/httpPhase.rate(), batchPhase.rate()/httpPhase.rate())
	}
	return nil
}

// resolveBinTarget discovers the binary endpoint(s). A single gateway
// advertises its binAddr in /v1/status; a cluster router's aggregated
// status page embeds every shard's own status document, so one request
// yields the routing table and each shard's binary address.
func resolveBinTarget(opts loadgenOptions, hc *http.Client, base string) (*binTarget, error) {
	poolSize := opts.clients
	if poolSize > 8 {
		poolSize = 8
	}
	ccfg := binproto.ClientConfig{RequestTimeout: 30 * time.Second}
	if !opts.cluster {
		st, err := fetchStatus(hc, base)
		if err != nil {
			return nil, fmt.Errorf("status: %w", err)
		}
		if st.BinAddr == "" {
			return nil, fmt.Errorf("gateway advertises no binary listener: start serve with -bin-addr")
		}
		pool, err := binproto.DialPool(st.BinAddr, poolSize, ccfg)
		if err != nil {
			return nil, fmt.Errorf("dial %s: %w", st.BinAddr, err)
		}
		return &binTarget{pools: []*binproto.Pool{pool}}, nil
	}

	resp, err := hc.Get(base + "/v1/status")
	if err != nil {
		return nil, fmt.Errorf("cluster status: %w", err)
	}
	var doc struct {
		Cluster cluster.TopologyView `json:"cluster"`
		Shards  []struct {
			ID     int             `json:"id"`
			Status json.RawMessage `json:"status"`
			Error  string          `json:"error"`
		} `json:"shards"`
	}
	err = json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("cluster status: %w", err)
	}
	binAddrs := map[int]string{}
	for _, sh := range doc.Shards {
		if sh.Error != "" {
			return nil, fmt.Errorf("shard %d unreachable: %s", sh.ID, sh.Error)
		}
		var st lgStatus
		if err := json.Unmarshal(sh.Status, &st); err != nil {
			return nil, fmt.Errorf("shard %d status: %w", sh.ID, err)
		}
		if st.BinAddr == "" {
			return nil, fmt.Errorf("shard %d advertises no binary listener: start the cluster with -bin", sh.ID)
		}
		binAddrs[sh.ID] = st.BinAddr
	}
	if len(doc.Cluster.Shards) == 0 {
		return nil, fmt.Errorf("cluster has no shards")
	}
	t := &binTarget{buckets: doc.Cluster.Buckets, pins: map[int]int{}}
	indexOf := map[int]int{}
	fail := func(err error) (*binTarget, error) {
		t.close()
		return nil, err
	}
	// Pools in routing order: slot i of the jump hash is doc.Cluster.Shards[i].
	for i, sh := range doc.Cluster.Shards {
		addr, ok := binAddrs[sh.ID]
		if !ok {
			return fail(fmt.Errorf("shard %d in topology but absent from the status page", sh.ID))
		}
		pool, err := binproto.DialPool(addr, poolSize, ccfg)
		if err != nil {
			return fail(fmt.Errorf("dial shard %d (%s): %w", sh.ID, addr, err))
		}
		t.pools = append(t.pools, pool)
		indexOf[sh.ID] = i
	}
	for obj, shardID := range doc.Cluster.Pins {
		i, ok := indexOf[shardID]
		if !ok {
			return fail(fmt.Errorf("object %d pinned to unknown shard %d", obj, shardID))
		}
		t.pins[obj] = i
	}
	return t, nil
}
