package cli

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"scaddar/internal/cluster"
	"scaddar/internal/cm"
	"scaddar/internal/gateway"
	"scaddar/internal/obs"
	"scaddar/internal/placement"
	"scaddar/internal/prng"
	"scaddar/internal/store"
)

// clusterOptions configures the cluster subcommand; a plain struct so
// tests can drive runCluster without flags or signals.
type clusterOptions struct {
	addr         string
	shards       int
	shardPort    int
	join         string
	manifest     string
	dataDir      string
	n0           int
	objects      int
	blocks       int
	round        time.Duration
	shardTimeout time.Duration
	opTimeout    time.Duration
	probe        time.Duration
	timeout      time.Duration
	bin          bool
}

func cmdCluster(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("cluster", flag.ContinueOnError)
	fs.SetOutput(w)
	var opts clusterOptions
	fs.StringVar(&opts.addr, "addr", "127.0.0.1:8090", "router listen address")
	fs.IntVar(&opts.shards, "shards", 3, "in-process shard gateways to boot (0 = join external shards only)")
	fs.IntVar(&opts.shardPort, "shard-port", 0, "first in-process shard port, consecutive from there (0 = ephemeral; required with -data-dir)")
	fs.StringVar(&opts.join, "join", "", "comma-separated base URLs of external shard gateways to join")
	fs.StringVar(&opts.manifest, "manifest", "", "cluster manifest path (default <data-dir>/cluster.json; empty without -data-dir = ephemeral topology)")
	fs.StringVar(&opts.dataDir, "data-dir", "", "durable state root: per-shard journals under shard-<i>/ plus the cluster manifest")
	fs.IntVar(&opts.n0, "n0", 8, "initial disk count per shard")
	fs.IntVar(&opts.objects, "objects", 24, "objects to seed across the cluster through the router (0 = none)")
	fs.IntVar(&opts.blocks, "blocks", 600, "blocks per seeded object")
	fs.DurationVar(&opts.round, "round", 100*time.Millisecond, "shard round period")
	fs.DurationVar(&opts.shardTimeout, "shard-timeout", 2*time.Second, "per-shard sub-request deadline (routing and fan-out)")
	fs.DurationVar(&opts.opTimeout, "op-timeout", 2*time.Minute, "topology-operation deadline (shard add/drain incl. migration)")
	fs.DurationVar(&opts.probe, "probe", time.Second, "shard health-probe interval (negative = off)")
	fs.DurationVar(&opts.timeout, "timeout", 10*time.Second, "router per-request deadline")
	fs.BoolVar(&opts.bin, "bin", false, "give every in-process shard a binary lookup listener (docs/PROTOCOL.md) on an ephemeral port, advertised via each shard's /v1/status")
	if err := fs.Parse(args); err != nil {
		return err
	}

	stop := make(chan struct{})
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)
	go func() {
		<-sigs
		close(stop)
	}()
	return runCluster(opts, w, nil, stop)
}

// shardProc is one in-process shard: its gateway, HTTP server, and
// (optionally) durable store.
type shardProc struct {
	g   *gateway.Gateway
	hs  *http.Server
	st  *store.Store
	url string
	bin string // binary lookup address, when -bin is set
}

func (p *shardProc) close() {
	p.hs.Close()
	p.g.Close()
	if p.st != nil {
		p.st.Close()
	}
}

// bootClusterShard builds one in-process shard gateway and serves it. A
// fresh shard starts with an empty catalog (objects arrive through the
// router, which owns placement); with a data directory, existing state is
// recovered from the shard's own journal.
func bootClusterShard(opts clusterOptions, i int, w io.Writer) (*shardProc, error) {
	var st *store.Store
	var srv *cm.Server
	var err error
	if opts.dataDir != "" {
		dir := filepath.Join(opts.dataDir, fmt.Sprintf("shard-%d", i))
		st, err = store.Open(store.Config{Dir: dir})
		if err != nil {
			return nil, err
		}
	}
	fail := func(err error) (*shardProc, error) {
		if st != nil {
			st.Close()
		}
		return nil, err
	}
	if st != nil && st.HasState() {
		var info *store.RecoveryInfo
		srv, info, err = st.Recover(defaultX0())
		if err != nil {
			return fail(fmt.Errorf("recover shard %d: %w", i, err))
		}
		fmt.Fprintf(w, "cluster: shard %d recovered: checkpoint LSN %d, %d events replayed\n",
			i, info.CheckpointLSN, info.ReplayedEvents)
	} else {
		strat, serr := placement.NewScaddar(opts.n0, defaultX0())
		if serr != nil {
			return fail(serr)
		}
		srv, err = cm.NewServer(cm.DefaultConfig(), strat)
		if err != nil {
			return fail(err)
		}
		if st != nil {
			if err := st.Bootstrap(srv); err != nil {
				return fail(fmt.Errorf("bootstrap shard %d: %w", i, err))
			}
		}
	}
	g, err := gateway.New(srv, gateway.Config{
		Factory:  func(seed uint64) prng.Source { return prng.NewSplitMix64(seed) },
		Round:    opts.round,
		Store:    st,
		Registry: obs.NewRegistry(),
		Logf: func(format string, args ...any) {
			fmt.Fprintf(w, "shard %d: "+format+"\n", append([]any{i}, args...)...)
		},
	})
	if err != nil {
		return fail(err)
	}
	addr := "127.0.0.1:0"
	if opts.shardPort > 0 {
		addr = fmt.Sprintf("127.0.0.1:%d", opts.shardPort+i)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		g.Close()
		return fail(err)
	}
	// With -bin, each shard also answers binary lookups (docs/PROTOCOL.md)
	// on an ephemeral port. The address is advertised in the shard's own
	// /v1/status (and through the router's aggregated status page), so it
	// does not need a stable port even with -data-dir.
	binAddr := ""
	if opts.bin {
		bln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			ln.Close()
			g.Close()
			return fail(err)
		}
		if _, err := g.ServeBin(bln); err != nil {
			bln.Close()
			ln.Close()
			g.Close()
			return fail(err)
		}
		binAddr = bln.Addr().String()
	}
	hs := &http.Server{Handler: g.Handler()}
	go hs.Serve(ln)
	return &shardProc{g: g, hs: hs, st: st, url: "http://" + ln.Addr().String(), bin: binAddr}, nil
}

// runCluster boots the shard fleet (or joins an external one), fronts it
// with the cluster router, optionally seeds a library through the router,
// and serves until stop closes.
func runCluster(opts clusterOptions, w io.Writer, ready func(addr string), stop <-chan struct{}) error {
	if opts.shards < 0 {
		return fmt.Errorf("shards %d", opts.shards)
	}
	if opts.dataDir != "" {
		if opts.manifest == "" {
			opts.manifest = filepath.Join(opts.dataDir, "cluster.json")
		}
		if opts.shards > 0 && opts.shardPort == 0 {
			return fmt.Errorf("-data-dir with in-process shards needs -shard-port: the manifest records shard URLs, so they must be stable across restarts")
		}
	}

	// Boot the in-process fleet first so every URL exists before the router
	// probes them.
	var urls []string
	for i := 0; i < opts.shards; i++ {
		p, err := bootClusterShard(opts, i, w)
		if err != nil {
			return err
		}
		defer p.close()
		urls = append(urls, p.url)
		fmt.Fprintf(w, "cluster: shard %d listening on %s\n", i, p.url)
		if p.bin != "" {
			fmt.Fprintf(w, "cluster: shard %d binary lookups on %s\n", i, p.bin)
		}
	}
	for _, u := range strings.Split(opts.join, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}

	r, err := cluster.NewRouter(cluster.RouterConfig{
		ManifestPath:   opts.manifest,
		ShardTimeout:   opts.shardTimeout,
		OpTimeout:      opts.opTimeout,
		ProbeInterval:  opts.probe,
		RequestTimeout: opts.timeout,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(w, format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	defer r.Close()

	// Join every URL the topology does not already know (a recovered
	// manifest already lists the stable-port shards).
	known := map[string]bool{}
	for _, sh := range r.Topology().Shards {
		known[sh.URL] = true
	}
	ctx := context.Background()
	for _, u := range urls {
		if known[u] {
			continue
		}
		info, stats, err := r.AddShard(ctx, u)
		if err != nil {
			return fmt.Errorf("join %s: %w", u, err)
		}
		if stats.Moved > 0 {
			fmt.Fprintf(w, "cluster: shard %d joined (%s): moved %d/%d objects (ideal %.1f%%)\n",
				info.ID, u, stats.Moved, stats.Objects, 100*stats.Ideal)
		}
	}
	man := r.Topology()
	if len(man.Shards) == 0 {
		return fmt.Errorf("no shards: use -shards or -join")
	}

	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: r.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	if opts.objects > 0 {
		if err := seedClusterObjects(base, opts.objects, opts.blocks); err != nil {
			return fmt.Errorf("seed: %w", err)
		}
		fmt.Fprintf(w, "cluster: %d objects x %d blocks seeded through the router\n",
			opts.objects, opts.blocks)
	}
	fmt.Fprintf(w, "cluster: topology v%d: %d shards, %d routing slots\n",
		man.Version, len(man.Shards), man.Buckets)
	fmt.Fprintf(w, "cluster: router listening on %s (Ctrl-C to exit)\n", base)
	if ready != nil {
		ready(ln.Addr().String())
	}

	select {
	case err := <-serveErr:
		return err
	case <-stop:
	}
	fmt.Fprintf(w, "cluster: shutting down\n")
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return hs.Shutdown(sctx)
}

// seedClusterObjects loads a synthetic library through the router, which
// places each object on its jump-hash home shard. Objects that already
// exist (a recovered cluster) are left alone.
func seedClusterObjects(base string, objects, blocks int) error {
	hc := &http.Client{Timeout: 30 * time.Second}
	for id := 0; id < objects; id++ {
		body, err := json.Marshal(map[string]any{
			"id": id, "seed": uint64(42 + id), "blocks": blocks,
			"bitrateBitsPerSec": 4 << 20,
		})
		if err != nil {
			return err
		}
		resp, err := hc.Post(base+"/v1/admin/objects", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusCreated:
		case http.StatusConflict: // already seeded (recovered shard)
		default:
			return fmt.Errorf("object %d: status %d: %s", id, resp.StatusCode, bytes.TrimSpace(data))
		}
	}
	return nil
}
