package cli

import (
	"strings"
	"testing"
	"time"
)

// TestClusterAndLoadgen boots a 3-shard cluster on ephemeral ports, seeds a
// small library through the router, and runs the load generator in cluster
// mode against it with a mid-run scale-up targeted at shard 0. The run must
// report per-shard read shares and a drained reorganization.
func TestClusterAndLoadgen(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end cluster test skipped in -short mode")
	}
	opts := clusterOptions{
		addr:         "127.0.0.1:0",
		shards:       3,
		n0:           6,
		objects:      12,
		blocks:       64,
		round:        2 * time.Millisecond,
		shardTimeout: 5 * time.Second,
		opTimeout:    time.Minute,
		probe:        50 * time.Millisecond,
		timeout:      10 * time.Second,
	}
	addrCh := make(chan string, 1)
	stop := make(chan struct{})
	clusterDone := make(chan error, 1)
	var clusterOut syncWriter
	go func() {
		clusterDone <- runCluster(opts, &clusterOut, func(a string) { addrCh <- a }, stop)
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-clusterDone:
		t.Fatalf("cluster exited early: %v\n%s", err, clusterOut.String())
	case <-time.After(30 * time.Second):
		t.Fatal("cluster never became ready")
	}

	var lgOut strings.Builder
	err := runLoadgen(loadgenOptions{
		addr:     "http://" + addr,
		cluster:  true,
		clients:  4,
		duration: 400 * time.Millisecond,
		zipf:     0.729,
		seed:     7,
		scaleAt:  100 * time.Millisecond,
		add:      2,
		shard:    0,
		perSess:  16,
	}, &lgOut)
	if err != nil {
		t.Fatalf("loadgen: %v\n%s", err, lgOut.String())
	}
	out := lgOut.String()
	for _, want := range []string{
		"scale-up +2 accepted",
		"reorganization drained in",
		"read latency overall:",
		"per-shard read share",
		"shard 0",
		"skew: hottest shard carries",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("loadgen output missing %q:\n%s", want, out)
		}
	}

	close(stop)
	select {
	case err := <-clusterDone:
		if err != nil {
			t.Fatalf("cluster: %v\n%s", err, clusterOut.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatal("cluster did not shut down")
	}
	cout := clusterOut.String()
	for _, want := range []string{
		"cluster: shard 0 listening on",
		"cluster: 12 objects x 64 blocks seeded",
		"cluster: topology v",
		"cluster: router listening on",
	} {
		if !strings.Contains(cout, want) {
			t.Errorf("cluster output missing %q:\n%s", want, cout)
		}
	}
}

// TestClusterBinLoadgen boots a 2-shard cluster with per-shard binary
// listeners and runs the loadgen -bin comparison in cluster mode: the
// binary phases must discover every shard's binAddr through the router's
// aggregated status, route lookups client-side with the jump hash, and
// finish with zero lookup errors — a lookup routed to the wrong shard
// would come back unknown-object and count as an error.
func TestClusterBinLoadgen(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end cluster test skipped in -short mode")
	}
	opts := clusterOptions{
		addr:         "127.0.0.1:0",
		shards:       2,
		n0:           6,
		objects:      8,
		blocks:       40,
		round:        2 * time.Millisecond,
		shardTimeout: 5 * time.Second,
		opTimeout:    time.Minute,
		probe:        50 * time.Millisecond,
		timeout:      10 * time.Second,
		bin:          true,
	}
	addrCh := make(chan string, 1)
	stop := make(chan struct{})
	clusterDone := make(chan error, 1)
	var clusterOut syncWriter
	go func() {
		clusterDone <- runCluster(opts, &clusterOut, func(a string) { addrCh <- a }, stop)
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-clusterDone:
		t.Fatalf("cluster exited early: %v\n%s", err, clusterOut.String())
	case <-time.After(30 * time.Second):
		t.Fatal("cluster never became ready")
	}

	var lgOut strings.Builder
	err := runBinLoad(loadgenOptions{
		addr:     "http://" + addr,
		cluster:  true,
		clients:  2,
		duration: 250 * time.Millisecond,
		zipf:     0.729,
		seed:     7,
		batch:    16,
	}, &lgOut)
	if err != nil {
		t.Fatalf("loadgen -bin -cluster: %v\n%s", err, lgOut.String())
	}
	out := lgOut.String()
	for _, want := range []string{
		"binary shard-direct (2 shards",
		"bin single:",
		"bin batch16:",
		"vs HTTP:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("loadgen -bin output missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "errors 0"); got != 3 {
		t.Errorf("expected 3 error-free phases (misrouted lookups count as errors), got %d:\n%s", got, out)
	}

	close(stop)
	select {
	case err := <-clusterDone:
		if err != nil {
			t.Fatalf("cluster: %v\n%s", err, clusterOut.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatal("cluster did not shut down")
	}
	for _, want := range []string{
		"cluster: shard 0 binary lookups on",
		"cluster: shard 1 binary lookups on",
	} {
		if !strings.Contains(clusterOut.String(), want) {
			t.Errorf("cluster output missing %q:\n%s", want, clusterOut.String())
		}
	}
}

// TestClusterBadFlags covers validation without booting anything.
func TestClusterBadFlags(t *testing.T) {
	var out strings.Builder
	if err := runCluster(clusterOptions{shards: -1}, &out, nil, nil); err == nil {
		t.Error("negative shard count accepted")
	}
	if err := runCluster(clusterOptions{shards: 2, dataDir: t.TempDir()}, &out, nil, nil); err == nil {
		t.Error("data-dir without shard-port accepted")
	}
	if err := runCluster(clusterOptions{shards: 0}, &out, nil, nil); err == nil {
		t.Error("empty cluster accepted")
	}
}
