package cli

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// startServe boots serveGateway with the given options on an ephemeral port
// and returns the bound address plus a shutdown func that drains and
// reports any serve error.
func startServe(t *testing.T, opts serveOptions, out *strings.Builder) (string, func()) {
	t.Helper()
	addrCh := make(chan string, 1)
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() { done <- serveGateway(opts, out, func(a string) { addrCh <- a }, stop) }()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("serve exited early: %v\n%s", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("serve never became ready")
	}
	var once bool
	return addr, func() {
		if once {
			return
		}
		once = true
		close(stop)
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("serve: %v\n%s", err, out.String())
			}
		case <-time.After(60 * time.Second):
			t.Fatal("serve did not drain")
		}
	}
}

// TestServeDataDirAndRecover proves the CLI durability loop: serve with
// -data-dir bootstraps a store, a restart recovers it instead of reloading
// the synthetic library, and the recover subcommand inspects the same
// directory offline.
func TestServeDataDirAndRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end serve test skipped in -short mode")
	}
	dir := filepath.Join(t.TempDir(), "state")
	opts := serveOptions{
		addr:       "127.0.0.1:0",
		n0:         4,
		objects:    3,
		blocks:     50,
		round:      2 * time.Millisecond,
		redundancy: "none", utilization: 0.8,
		mailbox: 64, timeout: 5 * time.Second, drain: 30 * time.Second,
		dataDir: dir, checkpointEvery: 1 << 20,
	}

	var first strings.Builder
	_, shutdown := startServe(t, opts, &first)
	shutdown()
	if !strings.Contains(first.String(), "serve: bootstrapped "+dir) {
		t.Fatalf("first boot did not bootstrap:\n%s", first.String())
	}

	// Second boot must recover the journaled state; the (different) library
	// flags are ignored, so the object count stays at 3.
	opts.objects, opts.blocks = 9, 10
	var second strings.Builder
	_, shutdown2 := startServe(t, opts, &second)
	shutdown2()
	sout := second.String()
	if !strings.Contains(sout, "serve: recovered "+dir) {
		t.Fatalf("second boot did not recover:\n%s", sout)
	}
	if !strings.Contains(sout, "serve: 4 disks, 3 objects, 150 blocks") {
		t.Fatalf("recovered banner wrong:\n%s", sout)
	}

	// The offline inspector agrees.
	var rec strings.Builder
	if code := Run([]string{"recover", "-data-dir", dir}, &rec, &rec); code != 0 {
		t.Fatalf("recover exited %d:\n%s", code, rec.String())
	}
	rout := rec.String()
	for _, want := range []string{
		"disks:            4",
		"objects:          3 (150 blocks)",
		"integrity:        ok",
	} {
		if !strings.Contains(rout, want) {
			t.Errorf("recover output missing %q:\n%s", want, rout)
		}
	}
}

// TestRecoverErrors covers the inspector's failure modes.
func TestRecoverErrors(t *testing.T) {
	var out strings.Builder
	if code := Run([]string{"recover"}, &out, &out); code == 0 {
		t.Error("recover without -data-dir succeeded")
	}
	if code := Run([]string{"recover", "-data-dir", filepath.Join(t.TempDir(), "missing")}, &out, &out); code == 0 {
		t.Error("recover on a missing directory succeeded")
	}
}
