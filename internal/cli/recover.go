package cli

import (
	"flag"
	"fmt"
	"io"

	"scaddar/internal/store"
)

// cmdRecover implements `scaddar recover -data-dir DIR`: open a durable
// state directory read-only, rebuild the server from the newest checkpoint
// plus the journal tail, and report what recovery would see — without
// modifying the directory (torn tails are diagnosed, not truncated).
func cmdRecover(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("recover", flag.ContinueOnError)
	fs.SetOutput(w)
	dataDir := fs.String("data-dir", "", "durable state directory to inspect (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataDir == "" {
		return fmt.Errorf("recover: -data-dir is required")
	}

	st, err := store.Open(store.Config{Dir: *dataDir, ReadOnly: true})
	if err != nil {
		return err
	}
	defer st.Close()
	srv, info, err := st.Recover(defaultX0())
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "checkpoint LSN:   %d\n", info.CheckpointLSN)
	fmt.Fprintf(w, "replayed events:  %d\n", info.ReplayedEvents)
	fmt.Fprintf(w, "recovered LSN:    %d\n", info.LSN)
	if info.TornTail {
		fmt.Fprintf(w, "torn tail:        yes (%s, %d bytes beyond last valid record)\n",
			info.TornReason, info.TruncatedBytes)
	} else {
		fmt.Fprintf(w, "torn tail:        no\n")
	}
	if info.DroppedSegments > 0 {
		fmt.Fprintf(w, "dropped segments: %d\n", info.DroppedSegments)
	}
	if info.DroppedCheckpoints > 0 {
		fmt.Fprintf(w, "dropped ckpts:    %d\n", info.DroppedCheckpoints)
	}
	fmt.Fprintf(w, "disks:            %d\n", srv.N())
	fmt.Fprintf(w, "objects:          %d (%d blocks)\n", srv.Objects(), srv.TotalBlocks())
	if srv.Reorganizing() {
		fmt.Fprintf(w, "reorganizing:     yes (%d blocks left to migrate)\n", srv.MigrationRemaining())
	} else {
		fmt.Fprintf(w, "reorganizing:     no\n")
	}
	if srv.Degraded() {
		fmt.Fprintf(w, "degraded:         yes (%d rebuild items pending, %d blocks lost)\n",
			srv.RebuildRemaining(), srv.LostBlocks())
	} else {
		fmt.Fprintf(w, "degraded:         no\n")
	}
	if err := srv.VerifyIntegrity(); err != nil {
		return fmt.Errorf("integrity: %w", err)
	}
	fmt.Fprintf(w, "integrity:        ok\n")
	return nil
}
