package cli

// loadgen -stream: the streaming-mode load generator. Instead of timed block
// lookups it opens real playback sessions and drains their chunked streams,
// exactly the way a population of viewers would:
//
//   - every client shares ONE dataplane.ClientLocator kept current by a
//     single delta subscription (GET /v1/locator/snapshot once, then
//     GET /v1/locator/deltas long-polls) — ten thousand sessions tracking a
//     live reorganization cost the server one feed, not 10k lookups/round;
//   - every received chunk is CRC-checked by the wire framing and verified
//     byte-for-byte against the seeded content oracle at its block index, so
//     a migration or rebuild that served the wrong bytes is caught here;
//   - chunk inter-arrival gaps are sampled and reported as percentiles,
//     split by the reorganization window when -scale-at fires mid-run — the
//     client-side view of hiccups that ROADMAP experiment E19 records.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"scaddar/internal/dataplane"
	"scaddar/internal/obs"
	"scaddar/internal/prng"
	"scaddar/internal/workload"
)

// streamTally is one streaming client's outcome counters.
type streamTally struct {
	opened    int
	rejected  int
	done      int
	evicted   int
	stopped   int
	chunks    int
	bytes     int64
	frameErrs int
	oracleErr int
	locateErr int
	gaps      []sample // lat = inter-chunk gap, at = offset from run start
	misses    int      // gaps above the -deadline threshold
}

// streamClient drains whole sessions until the run deadline.
type streamClient struct {
	http     *http.Client
	base     string
	loc      *dataplane.ClientLocator
	objects  []lgObject
	zipf     *workload.Zipf
	rng      prng.Source
	deadline time.Duration // client-side gap threshold; 0 = off
	start    time.Time
	tally    streamTally
}

// runStreamLoad drives concurrent streaming sessions against a gateway and
// reports chunk integrity plus pacing percentiles.
func runStreamLoad(opts loadgenOptions, w io.Writer) error {
	if opts.clients < 1 {
		return fmt.Errorf("clients %d", opts.clients)
	}
	if opts.duration <= 0 {
		return fmt.Errorf("duration %s", opts.duration)
	}
	base := opts.addr
	hc := &http.Client{} // no global timeout: streams legitimately outlive any fixed budget
	factory := func(seed uint64) prng.Source { return prng.NewSplitMix64(seed) }
	loc := dataplane.NewClientLocator(factory)

	snap, err := fetchLocatorSnapshot(hc, base)
	if err != nil {
		return err
	}
	if err := loc.ApplySnapshot(snap); err != nil {
		return err
	}
	if len(snap.Objects) == 0 {
		return fmt.Errorf("gateway has no objects loaded")
	}
	objects := make([]lgObject, len(snap.Objects))
	for i, o := range snap.Objects {
		objects[i] = lgObject{ID: o.ID, Blocks: o.Blocks}
	}

	fmt.Fprintf(w, "loadgen: %d streaming clients against %s for %s (%d objects, Zipf θ=%g, one shared locator)\n",
		opts.clients, base, opts.duration, len(objects), opts.zipf)

	// Snapshot the server's counters before the run so the final report can
	// attribute flushes and rounds to this run alone.
	before, beforeErr := fetchStreamCounters(hc, base)

	start := time.Now()
	deadline := start.Add(opts.duration)
	runCtx, cancelRun := context.WithDeadline(context.Background(), deadline)
	defer cancelRun()

	// One delta subscription keeps the shared locator current for everyone.
	var resyncs int
	subDone := make(chan struct{})
	go func() {
		defer close(subDone)
		resyncs = followLocatorFeed(runCtx, hc, base, loc)
	}()

	clients := make([]*streamClient, opts.clients)
	var wg sync.WaitGroup
	for i := range clients {
		z, err := workload.NewZipf(prng.NewSplitMix64(opts.seed+uint64(i)*2654435761), len(objects), opts.zipf)
		if err != nil {
			return err
		}
		c := &streamClient{
			http: hc, base: base, loc: loc, objects: objects, zipf: z,
			rng:      prng.NewSplitMix64(opts.seed*31 + uint64(i)),
			deadline: opts.deadline, start: start,
		}
		clients[i] = c
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.run(runCtx, deadline)
		}()
	}

	// Mid-run scale-up, with the reorganization window measured by status
	// polls — the same shape as lookup mode.
	var reorgStart, reorgEnd time.Duration
	if opts.scaleAt > 0 && opts.scaleAt < opts.duration {
		time.Sleep(opts.scaleAt)
		body, _ := json.Marshal(map[string]int{"add": opts.add})
		reorgStart = time.Since(start)
		resp, err := hc.Post(base+"/v1/scale", "application/json", bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("scale: %w", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			fmt.Fprintf(w, "loadgen: scale-up rejected with status %d\n", resp.StatusCode)
			reorgStart = 0
		} else {
			fmt.Fprintf(w, "loadgen: scale-up +%d accepted at t=%s\n", opts.add, reorgStart.Round(time.Millisecond))
			for time.Now().Before(deadline.Add(30 * time.Second)) {
				st, err := fetchStatus(hc, base)
				if err == nil && !st.Reorganizing {
					reorgEnd = time.Since(start)
					break
				}
				time.Sleep(20 * time.Millisecond)
			}
			fmt.Fprintf(w, "loadgen: reorganization drained in %s\n", (reorgEnd - reorgStart).Round(time.Millisecond))
		}
	}
	wg.Wait()
	cancelRun()
	<-subDone
	elapsed := time.Since(start)

	// Merge tallies.
	var t streamTally
	var gaps []sample
	for _, c := range clients {
		t.opened += c.tally.opened
		t.rejected += c.tally.rejected
		t.done += c.tally.done
		t.evicted += c.tally.evicted
		t.stopped += c.tally.stopped
		t.chunks += c.tally.chunks
		t.bytes += c.tally.bytes
		t.frameErrs += c.tally.frameErrs
		t.oracleErr += c.tally.oracleErr
		t.locateErr += c.tally.locateErr
		t.misses += c.tally.misses
		gaps = append(gaps, c.tally.gaps...)
	}
	fmt.Fprintf(w, "sessions opened %d (rejected %d): %d done, %d evicted, %d stopped\n",
		t.opened, t.rejected, t.done, t.evicted, t.stopped)
	fmt.Fprintf(w, "chunks %d (%.1f MiB, %.1f chunks/s)  frame errors %d  oracle mismatches %d  locate errors %d  feed resyncs %d\n",
		t.chunks, float64(t.bytes)/(1<<20), float64(t.chunks)/elapsed.Seconds(),
		t.frameErrs, t.oracleErr, t.locateErr, resyncs)
	mibs := float64(t.bytes) / (1 << 20) / elapsed.Seconds()
	fmt.Fprintf(w, "throughput %.1f MiB/s aggregate, %.2f MiB/s per client (%d clients)\n",
		mibs, mibs/float64(opts.clients), opts.clients)
	if t.frameErrs > 0 || t.oracleErr > 0 {
		fmt.Fprintf(w, "loadgen: INTEGRITY FAILURES DETECTED\n")
	}
	if opts.deadline > 0 {
		fmt.Fprintf(w, "client deadline %s: %d chunk gaps missed it\n", opts.deadline, t.misses)
	}

	// Pacing percentiles: chunk inter-arrival gaps, split by the reorg
	// window when one was driven.
	report := func(label string, keep func(sample) bool) {
		h := obs.MustNewHistogram(obs.LatencyBuckets())
		for _, s := range gaps {
			if keep(s) {
				h.ObserveDuration(s.lat)
			}
		}
		if h.Count() == 0 {
			return
		}
		sn := h.Snapshot()
		fmt.Fprintf(w, "%-22s n=%-7d p50 %-9s p95 %-9s p99 %s\n", label, sn.Count,
			secondsDuration(sn.Quantile(0.50)),
			secondsDuration(sn.Quantile(0.95)),
			secondsDuration(sn.Quantile(0.99)))
	}
	report("chunk gap overall:", func(sample) bool { return true })
	if reorgEnd > reorgStart {
		report("  before reorg:", func(s sample) bool { return s.at < reorgStart })
		report("  during reorg:", func(s sample) bool { return s.at >= reorgStart && s.at < reorgEnd })
		report("  after reorg:", func(s sample) bool { return s.at >= reorgEnd })
	}

	// The server's own data-plane counters close the loop: its deadline
	// misses (hiccups) and evictions should explain any client-side gaps,
	// and the flush count shows how hard the coalesced drain worked — an
	// awake session pays one Write+flush per round regardless of how many
	// chunks it gathered, so flushes/round ≈ concurrently-drained sessions.
	if st, err := fetchStreamCounters(hc, base); err == nil {
		fmt.Fprintf(w, "server: %d chunks buffered, %d deadline misses, %d evictions, %d locator deltas\n",
			st.StreamChunks, st.StreamMisses, st.StreamEvictions, st.DeltasPublished)
		if beforeErr == nil {
			rounds := st.Rounds - before.Rounds
			flushes := st.StreamFlushes - before.StreamFlushes
			chunks := st.StreamChunks - before.StreamChunks
			if rounds > 0 && flushes > 0 {
				fmt.Fprintf(w, "server: %d flushes over %d rounds (%.2f flushes/round, %.2f chunks/flush)\n",
					flushes, rounds, float64(flushes)/float64(rounds), float64(chunks)/float64(flushes))
			}
		}
	}
	return nil
}

// run is one streaming client loop: open a session on a Zipf-popular
// object, drain its chunk stream verifying every frame, repeat.
func (c *streamClient) run(ctx context.Context, deadline time.Time) {
	for time.Now().Before(deadline) {
		obj := c.objects[c.zipf.Draw()]
		sess, retryAfter, ok := c.openStream(obj.ID)
		if !ok {
			c.tally.rejected++
			select {
			case <-ctx.Done():
				return
			case <-time.After(c.jitterGap(retryAfter)):
			}
			continue
		}
		c.tally.opened++
		c.drainStream(ctx, sess, obj)
	}
}

// jitterGap spreads a backoff hint over [d/2, d].
func (c *streamClient) jitterGap(d time.Duration) time.Duration {
	if d <= 0 {
		d = time.Second
	}
	half := d / 2
	return half + time.Duration(c.rng.Next()%uint64(half+1))
}

// openStream opens a session for an object.
func (c *streamClient) openStream(object int) (id int, retryAfter time.Duration, ok bool) {
	body, _ := json.Marshal(map[string]int{"object": object})
	resp, err := c.http.Post(c.base+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, time.Second, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		io.Copy(io.Discard, resp.Body)
		return 0, retryAfterHint(resp.Header), false
	}
	var out struct {
		Session int `json:"session"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, time.Second, false
	}
	return out.Session, 0, true
}

// drainStream reads a session's chunk stream to its end frame (or the run
// deadline), verifying framing, oracle bytes, and the shared locator.
func (c *streamClient) drainStream(ctx context.Context, sess int, obj lgObject) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/v1/sessions/%d/stream", c.base, sess), nil)
	if err != nil {
		return
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return
	}
	info, haveInfo := c.loc.Object(obj.ID)
	br := bufio.NewReader(resp.Body)
	var prev time.Time
	for {
		f, err := dataplane.ReadFrame(br)
		if err != nil {
			// A deadline cancellation mid-frame is the run ending, not a
			// protocol failure.
			if ctx.Err() == nil && err != io.EOF {
				c.tally.frameErrs++
			}
			return
		}
		now := time.Now()
		if f.End {
			switch f.Reason {
			case dataplane.CloseDone:
				c.tally.done++
			case dataplane.CloseEvicted:
				c.tally.evicted++
			default:
				c.tally.stopped++
			}
			return
		}
		c.tally.chunks++
		c.tally.bytes += int64(len(f.Data))
		if haveInfo && !dataplane.VerifySeededContent(f.Data, info.Seed, uint64(f.Index)) {
			c.tally.oracleErr++
		}
		// Exercise the shared locator exactly as a smart client would: the
		// block that just arrived must be locatable without asking the
		// server.
		if _, err := c.loc.Locate(obj.ID, f.Index); err != nil {
			c.tally.locateErr++
		}
		if !prev.IsZero() {
			gap := now.Sub(prev)
			c.tally.gaps = append(c.tally.gaps, sample{at: prev.Sub(c.start), lat: gap})
			if c.deadline > 0 && gap > c.deadline {
				c.tally.misses++
			}
		}
		prev = now
	}
}

// fetchLocatorSnapshot fetches the full wire-format locator snapshot.
func fetchLocatorSnapshot(hc *http.Client, base string) (*dataplane.Snapshot, error) {
	resp, err := hc.Get(base + "/v1/locator/snapshot")
	if err != nil {
		return nil, fmt.Errorf("locator snapshot: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("locator snapshot: status %d", resp.StatusCode)
	}
	var snap dataplane.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("locator snapshot: %w", err)
	}
	return &snap, nil
}

// followLocatorFeed long-polls the delta feed and applies every delta to the
// shared locator until ctx ends. A 410 (cursor fell out of the bounded ring)
// or a sequence gap triggers a full snapshot refetch; the count of those
// resyncs is returned.
func followLocatorFeed(ctx context.Context, hc *http.Client, base string, loc *dataplane.ClientLocator) int {
	resyncs := 0
	after := loc.Seq()
	resync := func() bool {
		snap, err := fetchLocatorSnapshot(hc, base)
		if err != nil {
			return false
		}
		if err := loc.ApplySnapshot(snap); err != nil {
			return false
		}
		after = loc.Seq()
		resyncs++
		return true
	}
	for ctx.Err() == nil {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			fmt.Sprintf("%s/v1/locator/deltas?after=%d", base, after), nil)
		if err != nil {
			return resyncs
		}
		resp, err := hc.Do(req)
		if err != nil {
			continue
		}
		if resp.StatusCode == http.StatusGone {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			resync()
			continue
		}
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			continue
		}
		var dr struct {
			Deltas []dataplane.Delta `json:"deltas"`
			Seq    uint64            `json:"seq"`
		}
		err = json.NewDecoder(resp.Body).Decode(&dr)
		resp.Body.Close()
		if err != nil {
			continue
		}
		for _, d := range dr.Deltas {
			if err := loc.Apply(d); err != nil {
				resync()
				break
			}
		}
		if s := loc.Seq(); s > after {
			after = s
		} else if dr.Seq > after {
			after = dr.Seq
		}
	}
	return resyncs
}

// streamCounters is the slice of /v1/status the streaming report uses.
type streamCounters struct {
	Rounds          int
	StreamChunks    int64
	StreamFlushes   int64
	StreamMisses    int64
	StreamEvictions int64
	DeltasPublished int64
}

// fetchStreamCounters pulls the gateway's data-plane counters from
// /v1/status.
func fetchStreamCounters(hc *http.Client, base string) (streamCounters, error) {
	var out struct {
		Rounds  int `json:"rounds"`
		Gateway struct {
			StreamChunks    int64 `json:"streamChunks"`
			StreamFlushes   int64 `json:"streamFlushes"`
			StreamMisses    int64 `json:"streamMisses"`
			StreamEvictions int64 `json:"streamEvictions"`
			DeltasPublished int64 `json:"deltasPublished"`
		} `json:"gateway"`
	}
	resp, err := hc.Get(base + "/v1/status")
	if err != nil {
		return streamCounters{}, err
	}
	defer resp.Body.Close()
	err = json.NewDecoder(resp.Body).Decode(&out)
	return streamCounters{
		Rounds:          out.Rounds,
		StreamChunks:    out.Gateway.StreamChunks,
		StreamFlushes:   out.Gateway.StreamFlushes,
		StreamMisses:    out.Gateway.StreamMisses,
		StreamEvictions: out.Gateway.StreamEvictions,
		DeltasPublished: out.Gateway.DeltasPublished,
	}, err
}
