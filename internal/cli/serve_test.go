package cli

import (
	"strings"
	"testing"
	"time"
)

// TestServeAndLoadgen is the end-to-end demo in miniature: boot the gateway
// on an ephemeral port, run the load generator against it with a mid-run
// scale-up over HTTP, and check that the run reports percentile latency and
// a drained reorganization, then that the server drains cleanly.
func TestServeAndLoadgen(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end serve test skipped in -short mode")
	}
	opts := serveOptions{
		addr:        "127.0.0.1:0",
		n0:          6,
		objects:     8,
		blocks:      200,
		round:       2 * time.Millisecond,
		redundancy:  "mirror",
		utilization: 0.8,
		mailbox:     64,
		timeout:     5 * time.Second,
		drain:       30 * time.Second,
	}
	addrCh := make(chan string, 1)
	stop := make(chan struct{})
	serveDone := make(chan error, 1)
	var serveOut strings.Builder
	go func() {
		serveDone <- serveGateway(opts, &serveOut, func(a string) { addrCh <- a }, stop)
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-serveDone:
		t.Fatalf("serve exited early: %v\n%s", err, serveOut.String())
	case <-time.After(10 * time.Second):
		t.Fatal("serve never became ready")
	}

	var lgOut strings.Builder
	err := runLoadgen(loadgenOptions{
		addr:     "http://" + addr,
		clients:  4,
		duration: 400 * time.Millisecond,
		zipf:     0.729,
		seed:     7,
		scaleAt:  100 * time.Millisecond,
		add:      2,
		perSess:  16,
	}, &lgOut)
	if err != nil {
		t.Fatalf("loadgen: %v\n%s", err, lgOut.String())
	}
	out := lgOut.String()
	for _, want := range []string{
		"scale-up +2 accepted",
		"reorganization drained in",
		"read latency overall:",
		"during reorg:",
		"p99",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("loadgen output missing %q:\n%s", want, out)
		}
	}

	close(stop)
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("serve: %v\n%s", err, serveOut.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatal("serve did not drain")
	}
	sout := serveOut.String()
	if !strings.Contains(sout, "listening on http://") || !strings.Contains(sout, "serve: done after") {
		t.Errorf("serve output unexpected:\n%s", sout)
	}
}

// TestServeAndBinLoadgen boots a gateway with a binary lookup listener and
// runs the loadgen -bin comparison against it: all three phases must
// report, the binary endpoint must be discovered through /v1/status, and
// no phase may see lookup errors.
func TestServeAndBinLoadgen(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end serve test skipped in -short mode")
	}
	opts := serveOptions{
		addr:        "127.0.0.1:0",
		binAddr:     "127.0.0.1:0",
		n0:          6,
		objects:     6,
		blocks:      120,
		round:       2 * time.Millisecond,
		redundancy:  "none",
		utilization: 0.8,
		mailbox:     64,
		timeout:     5 * time.Second,
		drain:       30 * time.Second,
	}
	addrCh := make(chan string, 1)
	stop := make(chan struct{})
	serveDone := make(chan error, 1)
	var serveOut strings.Builder
	go func() {
		serveDone <- serveGateway(opts, &serveOut, func(a string) { addrCh <- a }, stop)
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-serveDone:
		t.Fatalf("serve exited early: %v\n%s", err, serveOut.String())
	case <-time.After(10 * time.Second):
		t.Fatal("serve never became ready")
	}

	var lgOut strings.Builder
	err := runBinLoad(loadgenOptions{
		addr:     "http://" + addr,
		clients:  3,
		duration: 250 * time.Millisecond,
		zipf:     0.729,
		seed:     7,
		batch:    32,
	}, &lgOut)
	if err != nil {
		t.Fatalf("loadgen -bin: %v\n%s", err, lgOut.String())
	}
	out := lgOut.String()
	for _, want := range []string{"http:", "bin single:", "bin batch32:", "vs HTTP:"} {
		if !strings.Contains(out, want) {
			t.Errorf("loadgen -bin output missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "errors 0"); got != 3 {
		t.Errorf("expected 3 error-free phases, got %d:\n%s", got, out)
	}

	close(stop)
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("serve: %v\n%s", err, serveOut.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatal("serve did not drain")
	}
	if !strings.Contains(serveOut.String(), "binary lookups listening on") {
		t.Errorf("serve output missing the binary listener banner:\n%s", serveOut.String())
	}
}

// TestServeBadFlags covers the option validation paths without booting.
func TestServeBadFlags(t *testing.T) {
	var out strings.Builder
	if err := serveGateway(serveOptions{redundancy: "raid6"}, &out, nil, nil); err == nil {
		t.Error("bad redundancy accepted")
	}
	if err := runBinLoad(loadgenOptions{clients: 0}, &out); err == nil {
		t.Error("bin: zero clients accepted")
	}
	if err := runBinLoad(loadgenOptions{clients: 1, duration: 0}, &out); err == nil {
		t.Error("bin: zero duration accepted")
	}
	if err := runBinLoad(loadgenOptions{clients: 1, duration: time.Second, batch: 0}, &out); err == nil {
		t.Error("bin: zero batch accepted")
	}
	if err := runLoadgen(loadgenOptions{clients: 0}, &out); err == nil {
		t.Error("zero clients accepted")
	}
	if err := runLoadgen(loadgenOptions{clients: 1, duration: 0}, &out); err == nil {
		t.Error("zero duration accepted")
	}
	if err := runLoadgen(loadgenOptions{clients: 1, duration: time.Second, addr: "http://127.0.0.1:1"}, &out); err == nil {
		t.Error("unreachable gateway accepted")
	}
}
