package cli

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"scaddar/internal/cluster"
	"scaddar/internal/obs"
	"scaddar/internal/prng"
	"scaddar/internal/workload"
)

// loadgenOptions configures the load generator; a plain struct so tests can
// call runLoadgen directly.
type loadgenOptions struct {
	addr     string
	follower string
	cluster  bool
	clients  int
	duration time.Duration
	zipf     float64
	seed     uint64
	scaleAt  time.Duration
	add      int
	shard    int
	perSess  int
	dash     time.Duration
	stream   bool
	deadline time.Duration
	bin      bool
	batch    int
}

func cmdLoadgen(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(w)
	var opts loadgenOptions
	fs.StringVar(&opts.addr, "addr", "http://127.0.0.1:8080", "gateway base URL")
	fs.StringVar(&opts.follower, "follower", "", "replica base URL (scaddar follow) to spread reads onto and report replication lag percentiles (empty = leader only)")
	fs.BoolVar(&opts.cluster, "cluster", false, "target is a cluster router: attribute requests to shards via the X-Scaddar-Shard header and report per-shard skew")
	fs.IntVar(&opts.clients, "clients", 8, "concurrent client goroutines")
	fs.DurationVar(&opts.duration, "duration", 10*time.Second, "how long to generate load")
	fs.Float64Var(&opts.zipf, "zipf", 0.729, "Zipf skew θ for object popularity")
	fs.Uint64Var(&opts.seed, "seed", 1, "client PRNG seed base")
	fs.DurationVar(&opts.scaleAt, "scale-at", 0, "when to request a scale-up over HTTP (0 = never)")
	fs.IntVar(&opts.add, "add", 2, "disks to add at -scale-at")
	fs.IntVar(&opts.shard, "shard", 0, "shard ID the -scale-at request targets in -cluster mode (the router scales one shard at a time)")
	fs.IntVar(&opts.perSess, "per-session", 32, "block lookups per session before closing it")
	fs.DurationVar(&opts.dash, "dash", 0, "scrape /v1/metrics and print a live dashboard line at this interval (0 = off)")
	fs.BoolVar(&opts.stream, "stream", false, "drive chunked streaming sessions (GET /v1/sessions/{id}/stream) instead of block lookups, tracking placement via the snapshot+delta locator feed and verifying every chunk against the content oracle")
	fs.DurationVar(&opts.deadline, "deadline", 0, "client-side chunk deadline for the -stream hiccup count (0 = server round pacing only)")
	fs.BoolVar(&opts.bin, "bin", false, "compare the HTTP read path against the binary lookup protocol (docs/PROTOCOL.md): one HTTP phase, one binary single-lookup phase, and one binary batched phase, reported side by side")
	fs.IntVar(&opts.batch, "batch", 64, "lookups per frame in the -bin batched phase")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if opts.bin && opts.stream {
		return fmt.Errorf("-bin and -stream are mutually exclusive")
	}
	if opts.bin {
		return runBinLoad(opts, w)
	}
	if opts.stream {
		return runStreamLoad(opts, w)
	}
	return runLoadgen(opts, w)
}

// sample is one timed request outcome.
type sample struct {
	at    time.Duration // offset from run start
	lat   time.Duration
	code  int
	shard string // answering shard (cluster mode; empty otherwise)
}

// lgClient is the per-goroutine worker state.
type lgClient struct {
	http    *http.Client
	base    string
	replica string // when non-empty, every other block read goes here
	cluster bool   // record the answering shard from the response header
	zipf    *workload.Zipf
	rng     prng.Source
	objects []lgObject
	perSess int
	samples []sample
	opened  int
	reject  int
	retries int
	start   time.Time
}

// retryAfterHint reads the server's Retry-After header; absent or
// malformed, back off one second.
func retryAfterHint(h http.Header) time.Duration {
	if s := h.Get("Retry-After"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return time.Duration(n) * time.Second
		}
	}
	return time.Second
}

// jitter spreads a backoff hint over [d/2, d] so clients pushed back at the
// same instant don't return in lockstep and re-create the overload.
func (c *lgClient) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		d = time.Second
	}
	half := d / 2
	return half + time.Duration(c.rng.Next()%uint64(half+1))
}

type lgObject struct {
	ID     int `json:"id"`
	Blocks int `json:"blocks"`
}

// runLoadgen drives concurrent sessions against a running gateway and
// reports throughput and latency percentiles, split by the reorganization
// window when a scale-up was requested mid-run.
func runLoadgen(opts loadgenOptions, w io.Writer) error {
	if opts.clients < 1 {
		return fmt.Errorf("clients %d", opts.clients)
	}
	if opts.duration <= 0 {
		return fmt.Errorf("duration %s", opts.duration)
	}
	if opts.perSess < 1 {
		opts.perSess = 32
	}
	base := opts.addr
	hc := &http.Client{Timeout: 30 * time.Second}

	// Discover the library from the gateway itself.
	resp, err := hc.Get(base + "/v1/objects")
	if err != nil {
		return fmt.Errorf("objects: %w", err)
	}
	var objects []lgObject
	err = json.NewDecoder(resp.Body).Decode(&objects)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("objects: %w", err)
	}
	if len(objects) == 0 {
		return fmt.Errorf("gateway has no objects loaded")
	}

	fmt.Fprintf(w, "loadgen: %d clients against %s for %s (%d objects, Zipf θ=%g)\n",
		opts.clients, base, opts.duration, len(objects), opts.zipf)

	start := time.Now()
	deadline := start.Add(opts.duration)
	clients := make([]*lgClient, opts.clients)
	var wg sync.WaitGroup
	for i := range clients {
		z, err := workload.NewZipf(prng.NewSplitMix64(opts.seed+uint64(i)*2654435761), len(objects), opts.zipf)
		if err != nil {
			return err
		}
		c := &lgClient{
			http: hc, base: base, replica: opts.follower, cluster: opts.cluster, zipf: z,
			rng:     prng.NewSplitMix64(opts.seed*31 + uint64(i)),
			objects: objects, perSess: opts.perSess, start: start,
		}
		clients[i] = c
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.run(deadline)
		}()
	}

	// Live dashboard: scrape the Prometheus endpoint at the requested
	// interval and print one line per tick with throughput, latency, and
	// the server's own view of the reorganization.
	dashDone := make(chan struct{})
	if opts.dash > 0 {
		go func() {
			defer close(dashDone)
			tick := time.NewTicker(opts.dash)
			defer tick.Stop()
			var lastReads float64
			for now := range tick.C {
				if !now.Before(deadline) {
					return
				}
				samples, err := scrapeSamples(hc, base)
				if err != nil {
					continue
				}
				ms := obs.NewMetricSet(samples)
				var line string
				if opts.cluster {
					// The router's page carries one relabeled copy of each
					// gateway counter per shard: sum them for the fleet rate.
					reads := sumSamples(samples, "gateway_reads_total")
					shards, _ := ms.Value("cluster_shards")
					unavail, _ := ms.Value("cluster_unavailable_total")
					line = fmt.Sprintf("dash t=%-7s %7.0f req/s  shards=%.0f  unavailable=%.0f",
						time.Since(start).Round(100*time.Millisecond),
						(reads-lastReads)/opts.dash.Seconds(), shards, unavail)
					if h, ok := ms.Histogram("cluster_proxy_seconds", "", ""); ok && h.Count > 0 {
						line += fmt.Sprintf("  p95=%s", secondsDuration(h.Quantile(0.95)))
					}
					lastReads = reads
				} else {
					reads, _ := ms.Value("gateway_reads_total")
					disks, _ := ms.Value("cm_disks")
					pending, _ := ms.Value("cm_migration_pending")
					unf, _ := ms.Value("cm_unfairness")
					line = fmt.Sprintf("dash t=%-7s %7.0f req/s  disks=%.0f  pending=%.0f  unfairness=%.3f",
						time.Since(start).Round(100*time.Millisecond),
						(reads-lastReads)/opts.dash.Seconds(), disks, pending, unf)
					if h, ok := ms.Histogram("gateway_read_seconds", "", ""); ok && h.Count > 0 {
						line += fmt.Sprintf("  p95=%s", secondsDuration(h.Quantile(0.95)))
					}
					lastReads = reads
				}
				fmt.Fprintln(w, line)
			}
		}()
	} else {
		close(dashDone)
	}

	// With a follower in play, sample its replication lag through the run;
	// percentiles land in the final report next to the latency ones.
	lagDone := make(chan struct{})
	var lagSamples []uint64
	if opts.follower != "" {
		go func() {
			defer close(lagDone)
			tick := time.NewTicker(10 * time.Millisecond)
			defer tick.Stop()
			for now := range tick.C {
				if !now.Before(deadline) {
					return
				}
				if lag, err := fetchFollowerLag(hc, opts.follower); err == nil {
					lagSamples = append(lagSamples, lag)
				}
			}
		}()
	} else {
		close(lagDone)
	}

	// Mid-run scale-up over HTTP, with the reorganization window measured
	// by polling /v1/status.
	var reorgStart, reorgEnd time.Duration
	if opts.scaleAt > 0 && opts.scaleAt < opts.duration {
		time.Sleep(opts.scaleAt)
		scaleReq := map[string]int{"add": opts.add}
		if opts.cluster {
			// The router scales one shard's array at a time.
			scaleReq["shard"] = opts.shard
		}
		body, _ := json.Marshal(scaleReq)
		reorgStart = time.Since(start)
		resp, err := hc.Post(base+"/v1/scale", "application/json", bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("scale: %w", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			fmt.Fprintf(w, "loadgen: scale-up rejected with status %d\n", resp.StatusCode)
			reorgStart = 0
		} else {
			fmt.Fprintf(w, "loadgen: scale-up +%d accepted at t=%s\n", opts.add, reorgStart.Round(time.Millisecond))
			for time.Now().Before(deadline.Add(30 * time.Second)) {
				var reorganizing bool
				var err error
				if opts.cluster {
					reorganizing, err = fetchShardReorganizing(hc, base, opts.shard)
				} else {
					var st lgStatus
					st, err = fetchStatus(hc, base)
					reorganizing = st.Reorganizing
				}
				if err == nil && !reorganizing {
					reorgEnd = time.Since(start)
					break
				}
				time.Sleep(20 * time.Millisecond)
			}
			fmt.Fprintf(w, "loadgen: reorganization drained in %s\n", (reorgEnd - reorgStart).Round(time.Millisecond))
		}
	}
	wg.Wait()
	<-dashDone
	<-lagDone
	elapsed := time.Since(start)

	// Merge per-client tallies.
	var all []sample
	var opened, rejected, retries int
	codes := map[int]int{}
	for _, c := range clients {
		all = append(all, c.samples...)
		opened += c.opened
		rejected += c.reject
		retries += c.retries
		for _, s := range c.samples {
			codes[s.code]++
		}
	}
	fmt.Fprintf(w, "requests %d in %s (%.1f req/s)  sessions opened %d  rejected %d  retries after 503 %d\n",
		len(all), elapsed.Round(time.Millisecond), float64(len(all))/elapsed.Seconds(), opened, rejected, retries)
	keys := make([]int, 0, len(codes))
	for k := range codes {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	fmt.Fprintf(w, "status:")
	for _, k := range keys {
		fmt.Fprintf(w, "  %d x %d", k, codes[k])
	}
	fmt.Fprintln(w)

	// Percentiles come from the same fixed-bucket histogram the server
	// exposes, so client-side and scraped figures are directly comparable.
	report := func(label string, keep func(sample) bool) {
		h := obs.MustNewHistogram(obs.LatencyBuckets())
		for _, s := range all {
			if s.code == http.StatusOK && keep(s) {
				h.ObserveDuration(s.lat)
			}
		}
		if h.Count() == 0 {
			return
		}
		sn := h.Snapshot()
		fmt.Fprintf(w, "%-22s n=%-7d p50 %-9s p95 %-9s p99 %s\n", label, sn.Count,
			secondsDuration(sn.Quantile(0.50)),
			secondsDuration(sn.Quantile(0.95)),
			secondsDuration(sn.Quantile(0.99)))
	}
	report("read latency overall:", func(sample) bool { return true })
	if reorgEnd > reorgStart {
		report("  before reorg:", func(s sample) bool { return s.at < reorgStart })
		report("  during reorg:", func(s sample) bool { return s.at >= reorgStart && s.at < reorgEnd })
		report("  after reorg:", func(s sample) bool { return s.at >= reorgEnd })
	}
	if opts.cluster {
		reportShardSkew(w, all, report)
	}
	if len(lagSamples) > 0 {
		sort.Slice(lagSamples, func(i, j int) bool { return lagSamples[i] < lagSamples[j] })
		q := func(p float64) uint64 {
			i := int(p * float64(len(lagSamples)-1))
			return lagSamples[i]
		}
		fmt.Fprintf(w, "replication lag (events) n=%-7d p50 %-9d p95 %-9d p99 %d  max %d\n",
			len(lagSamples), q(0.50), q(0.95), q(0.99), lagSamples[len(lagSamples)-1])
	}
	return nil
}

// reportShardSkew breaks successful reads down by the shard that answered
// them (the router stamps every proxied response with X-Scaddar-Shard).
// Object→shard routing is uniform by hash, but Zipf popularity concentrates
// traffic on whichever shards hold the hot objects — the skew factor shows
// how far the hottest shard sits above a uniform split.
func reportShardSkew(w io.Writer, all []sample, report func(string, func(sample) bool)) {
	counts := map[string]int{}
	total := 0
	for _, s := range all {
		if s.code == http.StatusOK && s.shard != "" {
			counts[s.shard]++
			total++
		}
	}
	if total == 0 {
		fmt.Fprintln(w, "per-shard: no attributed reads (is the target a cluster router?)")
		return
	}
	shards := make([]string, 0, len(counts))
	for id := range counts {
		shards = append(shards, id)
	}
	sort.Slice(shards, func(i, j int) bool {
		a, _ := strconv.Atoi(shards[i])
		b, _ := strconv.Atoi(shards[j])
		return a < b
	})
	ideal := 1.0 / float64(len(shards))
	maxShare := 0.0
	fmt.Fprintf(w, "per-shard read share (uniform would be %.1f%% each):\n", 100*ideal)
	for _, id := range shards {
		share := float64(counts[id]) / float64(total)
		if share > maxShare {
			maxShare = share
		}
		id := id
		report(fmt.Sprintf("  shard %-3s %5.1f%%:", id, 100*share),
			func(s sample) bool { return s.shard == id })
	}
	fmt.Fprintf(w, "skew: hottest shard carries %.2fx its uniform share\n", maxShare/ideal)
}

// lgReplStatus is the slice of the replica's /v1/replication JSON the lag
// sampler cares about.
type lgReplStatus struct {
	Follower struct {
		AppliedLSN uint64 `json:"appliedLsn"`
		LeaderLSN  uint64 `json:"leaderLsn"`
	} `json:"follower"`
}

// fetchFollowerLag reads the replica's position and returns how many
// journal events it trails the leader's advertised frontier by.
func fetchFollowerLag(hc *http.Client, base string) (uint64, error) {
	resp, err := hc.Get(base + "/v1/replication")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("replication status %d", resp.StatusCode)
	}
	var st lgReplStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return 0, err
	}
	if st.Follower.LeaderLSN <= st.Follower.AppliedLSN {
		return 0, nil
	}
	return st.Follower.LeaderLSN - st.Follower.AppliedLSN, nil
}

// run is one client loop: open a session on a Zipf-popular object, walk its
// blocks with timed lookups, close, repeat until the deadline.
func (c *lgClient) run(deadline time.Time) {
	for time.Now().Before(deadline) {
		obj := c.objects[c.zipf.Draw()]
		sess, retryAfter, ok := c.openSession(obj.ID)
		if !ok {
			c.reject++
			c.retries++
			time.Sleep(c.jitter(retryAfter))
			continue
		}
		c.opened++
		pos := int(c.rng.Next() % uint64(obj.Blocks))
		for i := 0; i < c.perSess && time.Now().Before(deadline); i++ {
			idx := (pos + i) % obj.Blocks
			target := c.base
			if c.replica != "" && i%2 == 1 {
				target = c.replica
			}
			t0 := time.Now()
			resp, err := c.http.Get(fmt.Sprintf("%s/v1/objects/%d/blocks/%d", target, obj.ID, idx))
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			s := sample{
				at:   t0.Sub(c.start),
				lat:  time.Since(t0),
				code: resp.StatusCode,
			}
			if c.cluster {
				s.shard = resp.Header.Get(clusterShardHeader)
			}
			c.samples = append(c.samples, s)
			// A 503 is the server pushing back, not a miss: honor its
			// Retry-After hint with jitter and retry the same block.
			if resp.StatusCode == http.StatusServiceUnavailable {
				c.retries++
				time.Sleep(c.jitter(retryAfterHint(resp.Header)))
				i--
			}
		}
		req, _ := http.NewRequest("DELETE", fmt.Sprintf("%s/v1/sessions/%d", c.base, sess), nil)
		if resp, err := c.http.Do(req); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
}

// openSession opens one streaming session; on 503 it reports the server's
// Retry-After hint so the caller can back off.
func (c *lgClient) openSession(object int) (id int, retryAfter time.Duration, ok bool) {
	body, _ := json.Marshal(map[string]int{"object": object})
	resp, err := c.http.Post(c.base+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, time.Second, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		io.Copy(io.Discard, resp.Body)
		return 0, retryAfterHint(resp.Header), false
	}
	var out struct {
		Session int `json:"session"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, time.Second, false
	}
	return out.Session, 0, true
}

// lgStatus is the slice of the /v1/status JSON the load generator cares
// about.
type lgStatus struct {
	Disks        int    `json:"disks"`
	Reorganizing bool   `json:"reorganizing"`
	BinAddr      string `json:"binAddr"`
}

func fetchStatus(hc *http.Client, base string) (lgStatus, error) {
	var m lgStatus
	resp, err := hc.Get(base + "/v1/status")
	if err != nil {
		return m, err
	}
	defer resp.Body.Close()
	return m, json.NewDecoder(resp.Body).Decode(&m)
}

// clusterShardHeader is the response header the cluster router stamps with
// the ID of the shard that answered a proxied request.
const clusterShardHeader = cluster.ShardHeader

// scrapeSamples fetches and parses the target's Prometheus exposition.
func scrapeSamples(hc *http.Client, base string) ([]obs.Sample, error) {
	resp, err := hc.Get(base + "/v1/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return obs.ParseText(resp.Body)
}

// sumSamples adds up every sample with the given name regardless of labels
// (a cluster page carries one per-shard copy of each gateway counter).
func sumSamples(samples []obs.Sample, name string) float64 {
	var sum float64
	for _, s := range samples {
		if s.Name == name {
			sum += s.Value
		}
	}
	return sum
}

// fetchShardReorganizing reads one shard's embedded status document out of
// the router's aggregated /v1/status page.
func fetchShardReorganizing(hc *http.Client, base string, shard int) (bool, error) {
	resp, err := hc.Get(base + "/v1/status")
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	var doc struct {
		Shards []struct {
			ID     int      `json:"id"`
			Status lgStatus `json:"status"`
			Error  string   `json:"error"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return false, err
	}
	for _, sh := range doc.Shards {
		if sh.ID == shard {
			if sh.Error != "" {
				return false, fmt.Errorf("shard %d: %s", shard, sh.Error)
			}
			return sh.Status.Reorganizing, nil
		}
	}
	return false, fmt.Errorf("shard %d not in cluster status", shard)
}

// secondsDuration renders a float64 seconds value (the unit obs histograms
// record latency in) as a rounded time.Duration.
func secondsDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second)).Round(10 * time.Microsecond)
}
