package cli

import (
	"flag"
	"fmt"
	"io"
	"strconv"
	"strings"

	"scaddar/internal/scaddar"
)

// cmdForecast implements `scaddar forecast`: evaluate a planned operation
// sequence without moving a block — expected movement per operation,
// cumulative I/O, and the budget trajectory with the recommended
// redistribution point.
func cmdForecast(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("forecast", flag.ContinueOnError)
	fs.SetOutput(w)
	n0 := fs.Int("n0", 8, "current disk count")
	done := fs.String("done", "", "operations already performed, e.g. add:2,remove:1+3")
	plan := fs.String("plan", "", "planned operations, e.g. add:2,add:1,remove:1 (counts only)")
	bits := fs.Uint("bits", 32, "generator width b")
	eps := fs.Float64("eps", 0.05, "unfairness tolerance ε")
	blocks := fs.Int("blocks", 0, "total blocks, to print absolute move counts (0 = fractions only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *plan == "" {
		return fmt.Errorf("forecast: -plan is required")
	}

	hist, err := scaddar.NewHistory(*n0)
	if err != nil {
		return err
	}
	if err := ParseOps(hist, *done); err != nil {
		return err
	}
	planned, err := parsePlan(*plan)
	if err != nil {
		return err
	}
	f, err := scaddar.ForecastPlan(hist, *bits, *eps, planned)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "state: %s, b=%d, ε=%g\n", hist, *bits, *eps)
	fmt.Fprintf(w, "%-4s %-8s %-10s %-12s %-10s %s\n", "op", "disks", "move z_j", "cumulative", "bound f", "within ε")
	for _, s := range f.Steps {
		moveStr := fmt.Sprintf("%.3f", s.MoveFraction)
		cumStr := fmt.Sprintf("%.3f", s.CumulativeMoves)
		if *blocks > 0 {
			moveStr = fmt.Sprintf("%d", int(s.MoveFraction*float64(*blocks)+0.5))
			cumStr = fmt.Sprintf("%d", int(s.CumulativeMoves*float64(*blocks)+0.5))
		}
		bound := "∞"
		if s.GuaranteedUnfairness < 1e6 {
			bound = fmt.Sprintf("%.4f", s.GuaranteedUnfairness)
		}
		fmt.Fprintf(w, "%-4d %3d→%-4d %-10s %-12s %-10s %v\n",
			s.Op, s.NBefore, s.NAfter, moveStr, cumStr, bound, s.WithinTolerance)
	}
	switch {
	case f.RedistributeAfter == len(f.Steps):
		fmt.Fprintln(w, "the whole plan fits the randomness budget.")
	case f.RedistributeAfter == 0:
		fmt.Fprintln(w, "even the first operation breaks the budget: redistribute first.")
	default:
		fmt.Fprintf(w, "schedule a FULL REDISTRIBUTION after operation %d; later operations break the budget.\n",
			f.RedistributeAfter)
	}
	return nil
}

// parsePlan parses "add:2,remove:1" into planned operations (removal
// entries give a count, not indices — the forecast is index-agnostic).
func parsePlan(spec string) ([]scaddar.PlannedOp, error) {
	var out []scaddar.PlannedOp
	for _, raw := range strings.Split(spec, ",") {
		op := strings.TrimSpace(raw)
		switch {
		case strings.HasPrefix(op, "add:"):
			k, err := strconv.Atoi(op[len("add:"):])
			if err != nil {
				return nil, fmt.Errorf("bad plan op %q: %v", op, err)
			}
			out = append(out, scaddar.PlannedOp{Add: k})
		case strings.HasPrefix(op, "remove:"):
			k, err := strconv.Atoi(op[len("remove:"):])
			if err != nil {
				return nil, fmt.Errorf("bad plan op %q: %v", op, err)
			}
			out = append(out, scaddar.PlannedOp{Remove: k})
		default:
			return nil, fmt.Errorf("bad plan op %q: want add:K or remove:K", op)
		}
	}
	return out, nil
}
