package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"scaddar/internal/gateway"
	"scaddar/internal/obs"
	"scaddar/internal/prng"
	"scaddar/internal/repl"
)

// followOptions configures the follow subcommand; a plain struct so tests
// can drive runFollower without a flag set or signals.
type followOptions struct {
	leader  string
	addr    string
	maxLag  uint64
	timeout time.Duration
	quiet   bool
}

func cmdFollow(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("follow", flag.ContinueOnError)
	fs.SetOutput(w)
	var opts followOptions
	fs.StringVar(&opts.leader, "leader", "", "leader replication address (serve -repl-addr) to tail; required")
	fs.StringVar(&opts.addr, "addr", "127.0.0.1:8081", "HTTP listen address for replica reads")
	fs.Uint64Var(&opts.maxLag, "max-lag", 0, "staleness budget in journal events; reads beyond it fail retryably (0 = unbounded)")
	fs.DurationVar(&opts.timeout, "timeout", 5*time.Second, "per-request deadline")
	fs.BoolVar(&opts.quiet, "quiet", false, "suppress per-connection replication log lines")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if opts.leader == "" {
		return fmt.Errorf("follow: -leader is required")
	}

	stop := make(chan struct{})
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)
	go func() {
		<-sigs
		close(stop)
	}()
	return runFollower(opts, w, nil, stop)
}

// runFollower tails the leader's journal and serves epoch-fenced reads over
// HTTP until stop closes. The follower must use the same generator family
// as the leader (the default full-width one): X0 chains and locator
// snapshots are regenerated locally from the shipped events.
func runFollower(opts followOptions, w io.Writer, ready func(addr string), stop <-chan struct{}) error {
	reg := obs.NewRegistry()
	var logf func(string, ...any)
	if !opts.quiet {
		logf = func(format string, args ...any) {
			fmt.Fprintf(w, format+"\n", args...)
		}
	}
	f, err := repl.StartFollower(repl.FollowerConfig{
		Addr:         opts.leader,
		X0:           defaultX0(),
		Factory:      func(seed uint64) prng.Source { return prng.NewSplitMix64(seed) },
		MaxLagEvents: opts.maxLag,
		Registry:     reg,
		Logf:         logf,
	})
	if err != nil {
		return err
	}
	defer f.Close()

	rp, err := gateway.NewReplica(gateway.ReplicaConfig{
		Follower:       f,
		RequestTimeout: opts.timeout,
		Registry:       reg,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "follow: tailing %s, serving reads on http://%s (Ctrl-C to exit)\n",
		opts.leader, ln.Addr())
	if ready != nil {
		ready(ln.Addr().String())
	}

	hs := &http.Server{Handler: rp.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-stop:
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	shutErr := hs.Shutdown(ctx)
	st := f.Status()
	fmt.Fprintf(w, "follow: done at LSN %d epoch %d; %d reconnects, %d snapshots\n",
		st.AppliedLSN, st.Epoch, st.Reconnects, st.Snapshots)
	return shutErr
}
