package cli

import (
	"strings"
	"testing"
	"time"
)

// TestServeAndStreamLoadgen boots a gateway with real payload stores and
// drives the streaming load generator against it through a mid-run
// scale-up: sessions must play, every chunk must verify against the oracle,
// and the report must carry the pacing percentiles split by the reorg
// window.
func TestServeAndStreamLoadgen(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end streaming test skipped in -short mode")
	}
	opts := serveOptions{
		addr:        "127.0.0.1:0",
		n0:          6,
		objects:     8,
		blocks:      120,
		round:       2 * time.Millisecond,
		redundancy:  "mirror",
		utilization: 0.8,
		mailbox:     64,
		timeout:     5 * time.Second,
		drain:       30 * time.Second,
		payloadDir:  t.TempDir(),
		blockBytes:  4 << 10,
	}
	addrCh := make(chan string, 1)
	stop := make(chan struct{})
	serveDone := make(chan error, 1)
	var serveOut strings.Builder
	go func() {
		serveDone <- serveGateway(opts, &serveOut, func(a string) { addrCh <- a }, stop)
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-serveDone:
		t.Fatalf("serve exited early: %v\n%s", err, serveOut.String())
	case <-time.After(10 * time.Second):
		t.Fatal("serve never became ready")
	}

	var lgOut strings.Builder
	err := runStreamLoad(loadgenOptions{
		addr:     "http://" + addr,
		clients:  6,
		duration: 500 * time.Millisecond,
		zipf:     0.729,
		seed:     7,
		scaleAt:  100 * time.Millisecond,
		add:      2,
	}, &lgOut)
	if err != nil {
		t.Fatalf("stream loadgen: %v\n%s", err, lgOut.String())
	}
	out := lgOut.String()
	for _, want := range []string{
		"streaming clients",
		"scale-up +2 accepted",
		"reorganization drained in",
		"chunk gap overall:",
		"during reorg:",
		"frame errors 0",
		"oracle mismatches 0",
		"locate errors 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stream loadgen output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "INTEGRITY FAILURES") {
		t.Errorf("integrity failures reported:\n%s", out)
	}

	close(stop)
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("serve: %v\n%s", err, serveOut.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatal("serve did not drain")
	}
	if !strings.Contains(serveOut.String(), "payload stores at") {
		t.Errorf("serve banner missing payload line:\n%s", serveOut.String())
	}
}
