package cli

import (
	"flag"
	"fmt"
	"io"
	"os"

	"scaddar/internal/cm"
	"scaddar/internal/fsio"
	"scaddar/internal/placement"
	"scaddar/internal/prng"
	"scaddar/internal/trace"
	"scaddar/internal/workload"
)

// cmdTrace implements `scaddar trace <generate|replay|show>`: synthetic
// session traces can be generated to a file, inspected, and replayed
// deterministically against a fresh server.
func cmdTrace(args []string, w io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("trace: want generate, replay, or show")
	}
	switch args[0] {
	case "generate":
		return cmdTraceGenerate(args[1:], w)
	case "replay":
		return cmdTraceReplay(args[1:], w)
	case "show":
		return cmdTraceShow(args[1:], w)
	default:
		return fmt.Errorf("trace: unknown subcommand %q", args[0])
	}
}

// traceSessionFlags registers the session-shape flags shared by generate
// and replay (replay needs them to rebuild the matching library).
func traceSessionFlags(fs *flag.FlagSet) *trace.SessionConfig {
	cfg := trace.DefaultSession()
	fs.IntVar(&cfg.Objects, "objects", cfg.Objects, "library size")
	fs.IntVar(&cfg.BlocksPer, "blocks", cfg.BlocksPer, "blocks per object")
	fs.IntVar(&cfg.Streams, "streams", cfg.Streams, "streams to admit")
	fs.IntVar(&cfg.Rounds, "rounds", cfg.Rounds, "rounds to run")
	fs.IntVar(&cfg.ScaleUpAt, "add-at", cfg.ScaleUpAt, "round to scale out at (0 = never)")
	fs.IntVar(&cfg.ScaleUpCount, "add", cfg.ScaleUpCount, "disks to add")
	fs.Uint64Var(&cfg.Seed, "seed", cfg.Seed, "generator seed")
	return &cfg
}

func cmdTraceGenerate(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("trace generate", flag.ContinueOnError)
	fs.SetOutput(w)
	cfg := traceSessionFlags(fs)
	out := fs.String("o", "session.sctr", "output file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, err := trace.GenerateSession(*cfg)
	if err != nil {
		return err
	}
	data, err := tr.MarshalBinary()
	if err != nil {
		return err
	}
	// Atomic write: a crash mid-generate must not leave a torn trace file
	// behind under the final name.
	if err := fsio.WriteFileAtomic(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s: %d events, %d bytes\n", *out, len(tr.Events), len(data))
	return nil
}

// loadTrace reads and decodes a trace file.
func loadTrace(path string) (*trace.Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var tr trace.Trace
	if err := tr.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return &tr, nil
}

func cmdTraceReplay(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("trace replay", flag.ContinueOnError)
	fs.SetOutput(w)
	cfg := traceSessionFlags(fs)
	in := fs.String("i", "session.sctr", "trace file")
	n0 := fs.Int("n0", 6, "initial disk count")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, err := loadTrace(*in)
	if err != nil {
		return err
	}
	x0 := placement.NewX0Func(func(seed uint64) prng.Source { return prng.NewSplitMix64(seed) })
	strat, err := placement.NewScaddar(*n0, x0)
	if err != nil {
		return err
	}
	srv, err := cm.NewServer(cm.DefaultConfig(), strat)
	if err != nil {
		return err
	}
	lib, err := workload.Library(workload.LibraryConfig{
		Objects: cfg.Objects, MinBlocks: cfg.BlocksPer, MaxBlocks: cfg.BlocksPer,
		BlockBytes: srv.Config().BlockBytes, BitrateBitsPerSec: 4 << 20, SeedBase: 99,
	})
	if err != nil {
		return err
	}
	for _, obj := range lib {
		if err := srv.AddObject(obj); err != nil {
			return err
		}
	}
	res, err := trace.Apply(srv, tr)
	if err != nil {
		return err
	}
	m := res.Metrics
	fmt.Fprintf(w, "replayed %d events: %d streams, %d rounds, %d blocks served, %d hiccups, %d migrated\n",
		len(tr.Events), res.Streams, m.Rounds, m.BlocksServed, m.Hiccups, m.BlocksMigrated)
	fmt.Fprintf(w, "final: %d disks, %d blocks\n", srv.N(), srv.TotalBlocks())
	return srv.VerifyIntegrity()
}

func cmdTraceShow(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("trace show", flag.ContinueOnError)
	fs.SetOutput(w)
	in := fs.String("i", "session.sctr", "trace file")
	limit := fs.Int("n", 20, "events to print (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, err := loadTrace(*in)
	if err != nil {
		return err
	}
	counts := make(map[trace.Kind]int)
	for _, ev := range tr.Events {
		counts[ev.Kind]++
	}
	fmt.Fprintf(w, "%d events:", len(tr.Events))
	for k := trace.KindTick; k <= trace.KindRedistribute; k++ {
		if counts[k] > 0 {
			fmt.Fprintf(w, " %s=%d", k, counts[k])
		}
	}
	fmt.Fprintln(w)
	n := *limit
	if n == 0 || n > len(tr.Events) {
		n = len(tr.Events)
	}
	for i := 0; i < n; i++ {
		ev := tr.Events[i]
		fmt.Fprintf(w, "%4d  %-20s A=%d B=%d\n", i, ev.Kind, ev.A, ev.B)
	}
	return nil
}
