package cli

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncWriter guards a strings.Builder so the test can read output while the
// command goroutine is still writing.
type syncWriter struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncWriter) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestFollowBadFlags(t *testing.T) {
	var out strings.Builder
	if err := cmdFollow(nil, &out); err == nil || !strings.Contains(err.Error(), "-leader") {
		t.Fatalf("missing -leader accepted: %v", err)
	}
}

// TestServeReplAndFollow is the replication demo in miniature: a durable
// leader with -repl-addr, a follower tailing it, and replica reads served
// over HTTP that agree with the leader's.
func TestServeReplAndFollow(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end replication test skipped in -short mode")
	}
	opts := serveOptions{
		addr:        "127.0.0.1:0",
		n0:          4,
		objects:     6,
		blocks:      40,
		round:       2 * time.Millisecond,
		redundancy:  "none",
		utilization: 0.8,
		mailbox:     64,
		timeout:     5 * time.Second,
		drain:       30 * time.Second,
		dataDir:     t.TempDir(),
		replAddr:    "127.0.0.1:0",
	}
	addrCh := make(chan string, 1)
	stop := make(chan struct{})
	serveDone := make(chan error, 1)
	serveOut := &syncWriter{}
	go func() {
		serveDone <- serveGateway(opts, serveOut, func(a string) { addrCh <- a }, stop)
	}()
	var gwAddr string
	select {
	case gwAddr = <-addrCh:
	case err := <-serveDone:
		t.Fatalf("serve exited early: %v\n%s", err, serveOut.String())
	case <-time.After(10 * time.Second):
		t.Fatal("serve never became ready")
	}

	// The replication banner is printed before the HTTP listener comes up,
	// so once ready fired the address is in the output.
	var replAddr string
	for _, line := range strings.Split(serveOut.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, "serve: replication listening on "); ok {
			replAddr = strings.TrimSpace(rest)
		}
	}
	if replAddr == "" {
		t.Fatalf("no replication banner in serve output:\n%s", serveOut.String())
	}

	fstop := make(chan struct{})
	followDone := make(chan error, 1)
	faddrCh := make(chan string, 1)
	followOut := &syncWriter{}
	go func() {
		followDone <- runFollower(followOptions{
			leader:  replAddr,
			addr:    "127.0.0.1:0",
			timeout: 5 * time.Second,
			quiet:   true,
		}, followOut, func(a string) { faddrCh <- a }, fstop)
	}()
	var fAddr string
	select {
	case fAddr = <-faddrCh:
	case err := <-followDone:
		t.Fatalf("follow exited early: %v\n%s", err, followOut.String())
	case <-time.After(10 * time.Second):
		t.Fatal("follow never became ready")
	}

	// Wait for the replica to bootstrap, then read through it.
	getJSON := func(url string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		defer resp.Body.Close()
		body := map[string]any{}
		_ = json.NewDecoder(resp.Body).Decode(&body)
		return resp.StatusCode, body
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, _ := getJSON(fmt.Sprintf("http://%s/v1/healthz", fAddr))
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never became healthy\n%s", followOut.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	code, replicaRead := getJSON(fmt.Sprintf("http://%s/v1/objects/0/blocks/3", fAddr))
	if code != http.StatusOK {
		t.Fatalf("replica read: %d %v", code, replicaRead)
	}
	code, leaderRead := getJSON(fmt.Sprintf("http://%s/v1/objects/0/blocks/3", gwAddr))
	if code != http.StatusOK {
		t.Fatalf("leader read: %d %v", code, leaderRead)
	}
	if replicaRead["disk"] != leaderRead["disk"] {
		t.Fatalf("replica locates disk %v, leader %v", replicaRead["disk"], leaderRead["disk"])
	}

	// The leader gateway reports its follower connections.
	code, repl := getJSON(fmt.Sprintf("http://%s/v1/replication", gwAddr))
	if code != http.StatusOK || repl["role"] != "leader" {
		t.Fatalf("leader /v1/replication: %d %v", code, repl)
	}

	// Loadgen spreads reads across leader and replica and reports the
	// replication lag percentiles it sampled.
	var lgOut strings.Builder
	if err := runLoadgen(loadgenOptions{
		addr:     "http://" + gwAddr,
		follower: "http://" + fAddr,
		clients:  2,
		duration: 300 * time.Millisecond,
		zipf:     0.729,
		seed:     7,
		perSess:  8,
	}, &lgOut); err != nil {
		t.Fatalf("loadgen: %v\n%s", err, lgOut.String())
	}
	for _, want := range []string{"replication lag (events)", "retries after 503"} {
		if !strings.Contains(lgOut.String(), want) {
			t.Errorf("loadgen output missing %q:\n%s", want, lgOut.String())
		}
	}

	close(fstop)
	if err := <-followDone; err != nil {
		t.Fatalf("follow: %v\n%s", err, followOut.String())
	}
	if !strings.Contains(followOut.String(), "follow: done at LSN") {
		t.Errorf("follow output unexpected:\n%s", followOut.String())
	}
	close(stop)
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v\n%s", err, serveOut.String())
	}
}
