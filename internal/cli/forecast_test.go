package cli

import (
	"strings"
	"testing"
)

func TestForecastCommand(t *testing.T) {
	out, errOut, code := run("forecast",
		"-n0", "4", "-bits", "32", "-eps", "0.05",
		"-plan", "add:1,add:1,add:1,add:1,add:1,add:1,add:1,add:1,add:1")
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
	if !strings.Contains(out, "FULL REDISTRIBUTION after operation 8") {
		t.Fatalf("forecast output wrong:\n%s", out)
	}
}

func TestForecastWholePlanFits(t *testing.T) {
	out, _, code := run("forecast", "-n0", "8", "-bits", "64", "-eps", "0.01", "-plan", "add:2,remove:1")
	if code != 0 {
		t.Fatalf("code=%d", code)
	}
	if !strings.Contains(out, "whole plan fits") {
		t.Fatalf("forecast output wrong:\n%s", out)
	}
}

func TestForecastWithHistoryAndBlocks(t *testing.T) {
	out, _, code := run("forecast",
		"-n0", "4", "-done", "add:1,add:1,add:1,add:1,add:1,add:1",
		"-bits", "32", "-eps", "0.05", "-plan", "add:1,add:1,add:1", "-blocks", "10000")
	if code != 0 {
		t.Fatalf("code=%d", code)
	}
	if !strings.Contains(out, "after operation 2") {
		t.Fatalf("forecast with prior history wrong:\n%s", out)
	}
}

func TestForecastErrors(t *testing.T) {
	if _, _, code := run("forecast", "-n0", "4"); code == 0 {
		t.Error("missing plan accepted")
	}
	if _, _, code := run("forecast", "-plan", "nop:1"); code == 0 {
		t.Error("bad plan grammar accepted")
	}
	if _, _, code := run("forecast", "-plan", "add:x"); code == 0 {
		t.Error("bad count accepted")
	}
	if _, _, code := run("forecast", "-plan", "remove:9", "-n0", "4"); code == 0 {
		t.Error("total removal accepted")
	}
}
