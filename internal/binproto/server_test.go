package binproto

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scaddar/internal/cm"
	"scaddar/internal/placement"
	"scaddar/internal/prng"
	"scaddar/internal/workload"
)

func testFactory(seed uint64) prng.Source { return prng.NewSplitMix64(seed) }

// testBackend is a cm.Server plus the published snapshot a test binproto
// server reads from, with a helper to re-snapshot after mutations.
type testBackend struct {
	srv  *cm.Server
	snap atomic.Pointer[cm.LocatorSnapshot]
}

func newTestBackend(t testing.TB, n0, objects, blocks int) *testBackend {
	t.Helper()
	strat, err := placement.NewScaddar(n0, placement.NewX0Func(testFactory))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := cm.NewServer(cm.DefaultConfig(), strat)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := workload.Library(workload.LibraryConfig{
		Objects: objects, MinBlocks: blocks, MaxBlocks: blocks,
		BlockBytes: cm.DefaultConfig().BlockBytes, BitrateBitsPerSec: 4 << 20, SeedBase: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, obj := range lib {
		if err := srv.AddObject(obj); err != nil {
			t.Fatal(err)
		}
	}
	b := &testBackend{srv: srv}
	b.publish(t)
	return b
}

func (b *testBackend) publish(t testing.TB) {
	t.Helper()
	sn, err := b.srv.BuildSnapshot(testFactory)
	if err != nil {
		t.Fatal(err)
	}
	b.snap.Store(sn)
}

// startServer runs a binproto server for the backend on a loopback
// listener, returning its address.
func startServer(t testing.TB, b *testBackend, mutate func(*ServerConfig)) string {
	t.Helper()
	cfg := ServerConfig{Snapshot: b.snap.Load}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(s.Close)
	return ln.Addr().String()
}

func dialTest(t testing.TB, addr string) *Client {
	t.Helper()
	c, err := Dial(addr, ClientConfig{RequestTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestLocateMatchesSnapshot(t *testing.T) {
	b := newTestBackend(t, 6, 4, 100)
	c := dialTest(t, startServer(t, b, nil))
	sn := b.snap.Load()
	for o := 0; o < 4; o++ {
		for i := 0; i < 100; i += 7 {
			want, err := sn.Locate(o, i)
			if err != nil {
				t.Fatal(err)
			}
			got, epoch, healthy, err := c.Locate(o, i)
			if err != nil {
				t.Fatalf("Locate(%d,%d): %v", o, i, err)
			}
			if got != want {
				t.Fatalf("Locate(%d,%d): disk %d, snapshot says %d", o, i, got, want)
			}
			if epoch != sn.Epoch() {
				t.Fatalf("Locate(%d,%d): epoch %d, want %d", o, i, epoch, sn.Epoch())
			}
			if !healthy {
				t.Fatalf("Locate(%d,%d): reported unhealthy on a healthy array", o, i)
			}
		}
	}
}

func TestLocateBatchMatchesSnapshot(t *testing.T) {
	b := newTestBackend(t, 6, 4, 100)
	c := dialTest(t, startServer(t, b, nil))
	sn := b.snap.Load()
	var addrs []cm.BlockAddr
	for o := 0; o < 4; o++ {
		for i := 0; i < 100; i++ {
			addrs = append(addrs, cm.BlockAddr{Object: o, Index: i})
		}
	}
	out := make([]Result, len(addrs))
	epoch, err := c.LocateBatch(addrs, out)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != sn.Epoch() {
		t.Fatalf("batch epoch %d, want %d", epoch, sn.Epoch())
	}
	for k, a := range addrs {
		want, err := sn.Locate(a.Object, a.Index)
		if err != nil {
			t.Fatal(err)
		}
		if out[k].Code != 0 || out[k].Disk != want {
			t.Fatalf("entry %d (%d/%d): got %+v, want disk %d", k, a.Object, a.Index, out[k], want)
		}
	}
}

func TestTypedErrorsRoundTrip(t *testing.T) {
	b := newTestBackend(t, 4, 2, 50)
	c := dialTest(t, startServer(t, b, nil))
	if _, _, _, err := c.Locate(99, 0); !errors.Is(err, cm.ErrUnknownObject) {
		t.Fatalf("unknown object: got %v, want cm.ErrUnknownObject", err)
	}
	if _, _, _, err := c.Locate(0, 50); !errors.Is(err, cm.ErrBlockOutOfRange) {
		t.Fatalf("out of range: got %v, want cm.ErrBlockOutOfRange", err)
	}
	// The connection must survive typed errors.
	if _, _, _, err := c.Locate(0, 0); err != nil {
		t.Fatalf("lookup after errors: %v", err)
	}
	// Batch variant: per-entry codes, no request failure.
	out := make([]Result, 3)
	if _, err := c.LocateBatch([]cm.BlockAddr{{Object: 99}, {Object: 0, Index: 50}, {Object: 0, Index: 0}}, out); err != nil {
		t.Fatal(err)
	}
	if out[0].Code != ErrCodeUnknownObject || !errors.Is(out[0].Err(), cm.ErrUnknownObject) {
		t.Fatalf("entry 0: %+v", out[0])
	}
	if out[1].Code != ErrCodeOutOfRange || !errors.Is(out[1].Err(), cm.ErrBlockOutOfRange) {
		t.Fatalf("entry 1: %+v", out[1])
	}
	if out[2].Code != 0 || out[2].Err() != nil {
		t.Fatalf("entry 2: %+v", out[2])
	}
}

func TestEpochPingDrain(t *testing.T) {
	b := newTestBackend(t, 6, 3, 40)
	c := dialTest(t, startServer(t, b, nil))
	info, err := c.Epoch()
	if err != nil {
		t.Fatal(err)
	}
	if info.Disks != 6 || info.Objects != 3 || info.Epoch != 0 || info.Reorganizing {
		t.Fatalf("epoch info: %+v", info)
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	// The server closes after acknowledging drain: the next request fails.
	if err := c.Ping(); err == nil {
		t.Fatal("ping after drain succeeded, want connection error")
	}
}

func TestEpochEchoTracksReorganization(t *testing.T) {
	b := newTestBackend(t, 4, 2, 60)
	c := dialTest(t, startServer(t, b, nil))
	addrs := []cm.BlockAddr{{Object: 0, Index: 1}}
	out := make([]Result, 1)
	e0, err := c.LocateBatch(addrs, out)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.srv.ScaleUp(2); err != nil {
		t.Fatal(err)
	}
	b.publish(t)
	e1, err := c.LocateBatch(addrs, out)
	if err != nil {
		t.Fatal(err)
	}
	if e1 == e0 {
		t.Fatalf("epoch did not change across scale-up: %d", e1)
	}
	info, err := c.Epoch()
	if err != nil {
		t.Fatal(err)
	}
	if !info.Reorganizing {
		t.Fatal("epoch info does not report the in-flight reorganization")
	}
}

func TestDrainingRefusesLookups(t *testing.T) {
	b := newTestBackend(t, 4, 2, 50)
	var draining atomic.Bool
	addr := startServer(t, b, func(cfg *ServerConfig) {
		cfg.Draining = draining.Load
	})
	c := dialTest(t, addr)
	if _, _, _, err := c.Locate(0, 0); err != nil {
		t.Fatal(err)
	}
	draining.Store(true)
	if _, _, _, err := c.Locate(0, 0); !errors.Is(err, ErrDraining) {
		t.Fatalf("got %v, want ErrDraining", err)
	}
	if _, err := c.LocateBatch([]cm.BlockAddr{{}}, make([]Result, 1)); !errors.Is(err, ErrDraining) {
		t.Fatalf("batch: got %v, want ErrDraining", err)
	}
	// Ping still answers so orchestration can watch the drain.
	if err := c.Ping(); err != nil {
		t.Fatalf("ping while draining: %v", err)
	}
}

func TestBatchTooLarge(t *testing.T) {
	b := newTestBackend(t, 4, 2, 50)
	addr := startServer(t, b, func(cfg *ServerConfig) { cfg.MaxBatch = 4 })
	c := dialTest(t, addr)
	addrs := make([]cm.BlockAddr, 5)
	if _, err := c.LocateBatch(addrs, make([]Result, 5)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("got %v, want ErrTooLarge", err)
	}
	// Connection survives.
	if _, err := c.LocateBatch(addrs[:4], make([]Result, 4)); err != nil {
		t.Fatalf("batch at limit after rejection: %v", err)
	}
}

func TestConcurrentPipelinedClients(t *testing.T) {
	b := newTestBackend(t, 8, 4, 200)
	c := dialTest(t, startServer(t, b, nil))
	sn := b.snap.Load()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			addrs := make([]cm.BlockAddr, 16)
			out := make([]Result, 16)
			for iter := 0; iter < 50; iter++ {
				for i := range addrs {
					addrs[i] = cm.BlockAddr{Object: (g + i) % 4, Index: (g*31 + i*7 + iter) % 200}
				}
				if _, err := c.LocateBatch(addrs, out); err != nil {
					errs <- err
					return
				}
				for i, a := range addrs {
					want, _ := sn.Locate(a.Object, a.Index)
					if out[i].Disk != want {
						errs <- errors.New("pipelined response mismatched its request")
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

func TestVersionNegotiationRejectsUnknown(t *testing.T) {
	b := newTestBackend(t, 4, 1, 10)
	addr := startServer(t, b, nil)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := writeHandshake(nc, 99); err != nil {
		t.Fatal(err)
	}
	ver, err := readHandshake(nc)
	if err != nil {
		t.Fatal(err)
	}
	if ver != Version {
		t.Fatalf("server offered version %d, want %d", ver, Version)
	}
	// Server hangs up after offering its version.
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	var one [1]byte
	if _, err := nc.Read(one[:]); err == nil {
		t.Fatal("connection stayed open after version mismatch")
	}
}
