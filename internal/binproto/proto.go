// Package binproto is the gateway's binary lookup transport: a
// length-prefixed, CRC-32C-framed request/response protocol on a dedicated
// listener, built for the one question clients ask millions of times —
// "which disk holds block i of object m". The HTTP surface answers that in
// ~6µs of JSON and routing; the compiled REMAP chain underneath answers in
// ~79ns. This protocol closes the gap: persistent connections, pipelined
// requests matched by correlation ID, and a bulk opcode that carries many
// lookups per frame into LocatorSnapshot.LocateBatch, with encode and
// decode allocation-free on the steady path.
//
// Every response echoes the placement epoch of the snapshot that answered
// it, so a client interleaving lookups with a reorganization can detect
// that two answers came from different placement generations and
// re-validate whatever it cached. The wire format is specified normatively
// in docs/PROTOCOL.md — byte-accurate, with golden frames under
// testdata/binproto keeping spec and code from drifting. Framing reuses the
// store's record idiom (length prefix + CRC-32C over the payload), so a
// torn or bit-flipped frame is detected and the connection dropped rather
// than resynchronized.
package binproto

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"scaddar/internal/cm"
)

// Protocol constants. See docs/PROTOCOL.md for the normative spec.
const (
	// Magic opens both handshake directions.
	Magic = "SBLK"
	// Version is the highest protocol version this implementation speaks.
	// The handshake negotiates down: a server that does not speak the
	// client's requested version answers with its own highest and closes.
	Version = 1

	handshakeLen   = 5 // magic + version byte
	frameHeaderLen = 8 // uint32 LE payload len + uint32 LE CRC-32C

	// MaxFrameLen bounds a frame's declared payload length. A peer
	// announcing more is hostile or corrupt; the connection is dropped
	// before any payload is read.
	MaxFrameLen = 1 << 20
	// MaxBatch bounds the lookup count in one OpLocateBatch frame.
	// Larger batches get ErrCodeTooLarge. 8192 lookups fit comfortably
	// under MaxFrameLen in both directions.
	MaxBatch = 8192
	// maxPingBody bounds the opaque payload OpPing echoes.
	maxPingBody = 256
)

// Request opcodes. A response carries the request's opcode with RespFlag
// set; whole-request failures come back as OpError instead.
const (
	// OpLocate resolves one block: body is u32 object, u32 block index.
	OpLocate uint8 = 0x01
	// OpLocateBatch resolves many blocks in one frame: body is u32 count
	// followed by count pairs of u32 object, u32 block index.
	OpLocateBatch uint8 = 0x02
	// OpEpoch fetches the current placement epoch and snapshot shape
	// without resolving any block. Empty body.
	OpEpoch uint8 = 0x03
	// OpPing echoes its opaque body (at most 256 bytes) for liveness and
	// RTT measurement.
	OpPing uint8 = 0x04
	// OpDrain asks the server to finish the pipelined requests already
	// received on this connection, acknowledge, and close. Empty body.
	OpDrain uint8 = 0x05

	// RespFlag marks a payload as a response: response opcode =
	// request opcode | RespFlag.
	RespFlag uint8 = 0x80
	// OpError is the typed error response frame: body is u8 error code,
	// u8 original request opcode, then a human-readable message.
	OpError uint8 = 0xFF
)

// Wire error codes carried by OpError frames and by per-entry status bytes
// in OpLocateBatch responses. Codes 3-6 map one-to-one onto the cm sentinel
// errors a lookup surface can return; CodeForError and ErrorFromCode are
// the two directions of that mapping.
const (
	// ErrCodeUnknownOpcode: the request opcode is not defined at the
	// negotiated version. The connection stays open.
	ErrCodeUnknownOpcode uint8 = 1
	// ErrCodeMalformed: the frame passed CRC but its body does not parse
	// (truncated fields, trailing bytes, over-limit ping). The connection
	// stays open — the frame boundary was still sound.
	ErrCodeMalformed uint8 = 2
	// ErrCodeUnknownObject maps cm.ErrUnknownObject.
	ErrCodeUnknownObject uint8 = 3
	// ErrCodeOutOfRange maps cm.ErrBlockOutOfRange.
	ErrCodeOutOfRange uint8 = 4
	// ErrCodeBusy maps cm.ErrBusy.
	ErrCodeBusy uint8 = 5
	// ErrCodeEpochFenced maps cm.ErrEpochFenced.
	ErrCodeEpochFenced uint8 = 6
	// ErrCodeDraining: the server is shutting down and no longer answers
	// lookups on this connection.
	ErrCodeDraining uint8 = 7
	// ErrCodeTooLarge: a batch declared more than MaxBatch lookups.
	ErrCodeTooLarge uint8 = 8
	// ErrCodeInternal: the lookup failed for a reason that is the
	// server's fault (locator misconfiguration), never the request's.
	ErrCodeInternal uint8 = 9
)

// Snapshot flag bits carried in RespLocate, RespLocateBatch, and RespEpoch.
const (
	// FlagReorganizing: a migration drain was in flight in the answering
	// snapshot; locations may change as moves execute.
	FlagReorganizing uint8 = 1 << 0
	// FlagDegraded: at least one disk was failed or rebuilding.
	FlagDegraded uint8 = 1 << 1
	// FlagUnhealthyDisk (RespLocate only): the disk named in this
	// response was not healthy at snapshot time.
	FlagUnhealthyDisk uint8 = 1 << 2
)

// EntryUnhealthy is OR-ed into a batch entry's status byte when the entry
// resolved (low bits zero) but its home disk was not healthy at snapshot
// time. The low 7 bits remain the entry's error code, 0 on success.
const EntryUnhealthy uint8 = 0x80

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// errBadFrame reports a frame that failed structural validation (CRC,
// length bound). The stream cannot be resynchronized past it; the receiver
// drops the connection.
var errBadFrame = errors.New("binproto: bad frame")

// ErrDraining is returned by a client whose request was refused with
// ErrCodeDraining.
var ErrDraining = errors.New("binproto: server draining")

// ErrTooLarge is returned for batches over MaxBatch, locally or by the
// server.
var ErrTooLarge = errors.New("binproto: batch too large")

// errMalformed is the client-side decode failure for a response body.
var errMalformed = errors.New("binproto: malformed frame")

// CodeForError maps a lookup error to its wire error code. Unrecognized
// errors map to ErrCodeInternal.
func CodeForError(err error) uint8 {
	switch {
	case errors.Is(err, cm.ErrUnknownObject):
		return ErrCodeUnknownObject
	case errors.Is(err, cm.ErrBlockOutOfRange):
		return ErrCodeOutOfRange
	case errors.Is(err, cm.ErrBusy):
		return ErrCodeBusy
	case errors.Is(err, cm.ErrEpochFenced):
		return ErrCodeEpochFenced
	default:
		return ErrCodeInternal
	}
}

// ErrorFromCode is the inverse of CodeForError: it maps a wire error code
// back to the typed sentinel a local lookup would have returned, so
// errors.Is works identically against local and remote lookups. The wire
// message is included verbatim.
func ErrorFromCode(code uint8, msg string) error {
	switch code {
	case ErrCodeUnknownObject:
		return fmt.Errorf("%w: %s", cm.ErrUnknownObject, msg)
	case ErrCodeOutOfRange:
		return fmt.Errorf("%w: %s", cm.ErrBlockOutOfRange, msg)
	case ErrCodeBusy:
		return fmt.Errorf("%w: %s", cm.ErrBusy, msg)
	case ErrCodeEpochFenced:
		return fmt.Errorf("%w: %s", cm.ErrEpochFenced, msg)
	case ErrCodeDraining:
		return fmt.Errorf("%w: %s", ErrDraining, msg)
	case ErrCodeTooLarge:
		return fmt.Errorf("%w: %s", ErrTooLarge, msg)
	default:
		return fmt.Errorf("binproto: server error %d: %s", code, msg)
	}
}

// entryStatusForLocate maps a cm batch status code to the wire error code
// used in a batch entry's status byte.
func entryStatusForLocate(code uint8) uint8 {
	switch code {
	case cm.LocateOK:
		return 0
	case cm.LocateUnknownObject:
		return ErrCodeUnknownObject
	case cm.LocateOutOfRange:
		return ErrCodeOutOfRange
	default:
		return ErrCodeInternal
	}
}

// writeHandshake sends one handshake half: magic plus a version byte.
func writeHandshake(w io.Writer, version uint8) error {
	var buf [handshakeLen]byte
	copy(buf[:], Magic)
	buf[4] = version
	_, err := w.Write(buf[:])
	return err
}

// readHandshake reads and validates one handshake half, returning the
// peer's version byte.
func readHandshake(r io.Reader) (uint8, error) {
	var buf [handshakeLen]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("binproto: handshake: %w", err)
	}
	if string(buf[:4]) != Magic {
		return 0, fmt.Errorf("binproto: handshake lacks magic %q", Magic)
	}
	return buf[4], nil
}

// writeFrame frames a payload (opcode and correlation ID already included)
// onto w. The bufio.Writer's capacity is the connection's bounded
// pending-reply queue: when framing would overflow it, bufio flushes to the
// socket under whatever write deadline the caller armed, so a peer that
// stops reading turns bounded buffering into a deadline error instead of
// unbounded memory.
func writeFrame(w *bufio.Writer, payload []byte) error {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrameInto reads and validates one frame, reusing *buf for the
// payload (growing it once to the connection's steady frame size). The
// returned slice aliases *buf and is valid until the next call. A declared
// length of zero, above max, or a CRC mismatch returns errBadFrame: the
// stream is unrecoverable and the caller must drop the connection.
func readFrameInto(r *bufio.Reader, buf *[]byte, max uint32) ([]byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n == 0 || n > max {
		return nil, fmt.Errorf("%w: declares %d payload bytes (max %d)", errBadFrame, n, max)
	}
	if uint32(cap(*buf)) < n {
		*buf = make([]byte, n)
	}
	payload := (*buf)[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(hdr[4:]) {
		return nil, fmt.Errorf("%w: CRC mismatch", errBadFrame)
	}
	return payload, nil
}

// appendHeader starts a request or response payload: opcode then u32 LE
// correlation ID.
func appendHeader(dst []byte, op uint8, corr uint32) []byte {
	dst = append(dst, op)
	return binary.LittleEndian.AppendUint32(dst, corr)
}

// appendError renders an OpError payload.
func appendError(dst []byte, corr uint32, code, origOp uint8, msg string) []byte {
	dst = appendHeader(dst, OpError, corr)
	dst = append(dst, code, origOp)
	return append(dst, msg...)
}

// wireCursor walks a frame payload's fixed-width little-endian fields with
// uniform error handling, the fixed-width sibling of repl's uvarint
// frameCursor. Decoding never allocates.
type wireCursor struct {
	buf []byte
	off int
	bad bool
}

func (c *wireCursor) u8() uint8 {
	if c.bad || c.off+1 > len(c.buf) {
		c.bad = true
		return 0
	}
	v := c.buf[c.off]
	c.off++
	return v
}

func (c *wireCursor) u32() uint32 {
	if c.bad || c.off+4 > len(c.buf) {
		c.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint32(c.buf[c.off:])
	c.off += 4
	return v
}

func (c *wireCursor) u64() uint64 {
	if c.bad || c.off+8 > len(c.buf) {
		c.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(c.buf[c.off:])
	c.off += 8
	return v
}

func (c *wireCursor) rest() []byte {
	b := c.buf[c.off:]
	c.off = len(c.buf)
	return b
}

// done reports whether the payload parsed cleanly with no trailing bytes.
func (c *wireCursor) done() bool { return !c.bad && c.off == len(c.buf) }
