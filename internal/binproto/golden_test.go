package binproto

import (
	"bufio"
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden frames from the encoders")

// goldenFrames builds every frame documented in docs/PROTOCOL.md with the
// package's real encoders. The names match the <!-- golden:NAME --> markers
// in the spec and the testdata file names.
func goldenFrames(t *testing.T) map[string][]byte {
	t.Helper()
	frame := func(payload []byte) []byte {
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		if err := writeFrame(bw, payload); err != nil {
			t.Fatal(err)
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	var hs bytes.Buffer
	if err := writeHandshake(&hs, Version); err != nil {
		t.Fatal(err)
	}

	// Request: corr 7, lookups (1,0) (1,7) (9,4).
	req := appendHeader(nil, OpLocateBatch, 7)
	req = appendU32(req, 3)
	for _, e := range [][2]uint32{{1, 0}, {1, 7}, {9, 4}} {
		req = appendU32(appendU32(req, e[0]), e[1])
	}

	// Response: epoch 5, FlagDegraded, disks 3/6/0 with statuses
	// OK / OK|EntryUnhealthy / ErrCodeUnknownObject.
	resp := appendHeader(nil, OpLocateBatch|RespFlag, 7)
	resp = appendU64(resp, 5)
	resp = append(resp, FlagDegraded)
	resp = appendU32(resp, 3)
	resp = append(appendU32(resp, 3), 0)
	resp = append(appendU32(resp, 6), EntryUnhealthy)
	resp = append(appendU32(resp, 0), ErrCodeUnknownObject)

	return map[string][]byte{
		"handshake":            hs.Bytes(),
		"batch3-request":       frame(req),
		"batch3-response":      frame(resp),
		"error-unknown-opcode": frame(appendError(nil, 9, ErrCodeUnknownOpcode, 0x6F, "unknown opcode 0x6f")),
	}
}

// specHexBlocks extracts the hex dumps from docs/PROTOCOL.md: each
// <!-- golden:NAME --> marker is followed by a fenced block whose lines are
// hex bytes with an optional "; comment" tail.
func specHexBlocks(t *testing.T) map[string][]byte {
	t.Helper()
	doc, err := os.ReadFile(filepath.Join("..", "..", "docs", "PROTOCOL.md"))
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile("(?s)<!-- golden:([a-z0-9-]+) -->\\s*```\n(.*?)```")
	blocks := map[string][]byte{}
	for _, m := range re.FindAllStringSubmatch(string(doc), -1) {
		name, body := m[1], m[2]
		var b []byte
		for _, line := range strings.Split(body, "\n") {
			if i := strings.IndexByte(line, ';'); i >= 0 {
				line = line[:i]
			}
			for _, tok := range strings.Fields(line) {
				v, err := strconv.ParseUint(tok, 16, 8)
				if err != nil {
					t.Fatalf("golden block %q: bad hex token %q: %v", name, tok, err)
				}
				b = append(b, byte(v))
			}
		}
		blocks[name] = b
	}
	return blocks
}

// TestGoldenFrames pins the wire format three ways at once: the encoders,
// the committed testdata/*.bin files, and the hex dumps in docs/PROTOCOL.md
// must all agree byte for byte. Run with -update to regenerate testdata
// after an intentional (version-bumping) format change.
func TestGoldenFrames(t *testing.T) {
	frames := goldenFrames(t)
	spec := specHexBlocks(t)
	if len(spec) != len(frames) {
		t.Errorf("docs/PROTOCOL.md has %d golden blocks, want %d", len(spec), len(frames))
	}
	for name, want := range frames {
		path := filepath.Join("testdata", name+".bin")
		if *updateGolden {
			if err := os.WriteFile(path, want, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		disk, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update to regenerate)", name, err)
		}
		if !bytes.Equal(disk, want) {
			t.Errorf("%s: testdata differs from encoder output\n disk: %x\n code: %x", name, disk, want)
		}
		doc, ok := spec[name]
		if !ok {
			t.Errorf("docs/PROTOCOL.md is missing a <!-- golden:%s --> block", name)
			continue
		}
		if !bytes.Equal(doc, want) {
			t.Errorf("%s: docs/PROTOCOL.md hex differs from encoder output\n  doc: %x\n code: %x", name, doc, want)
		}
	}
}

// TestGoldenFramesDecode re-reads the golden frames through the decoder and
// asserts every field the spec documents for them, so the prose stays honest
// about what the bytes mean, not just what they are.
func TestGoldenFramesDecode(t *testing.T) {
	readGolden := func(name string) []byte {
		b, err := os.ReadFile(filepath.Join("testdata", name+".bin"))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	decode := func(frame []byte) []byte {
		var buf []byte
		payload, err := readFrameInto(bufio.NewReader(bytes.NewReader(frame)), &buf, MaxFrameLen)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		return payload
	}

	if v, err := readHandshake(bytes.NewReader(readGolden("handshake"))); err != nil || v != Version {
		t.Errorf("handshake: version %d err %v, want %d", v, err, Version)
	}

	cur := wireCursor{buf: decode(readGolden("batch3-request"))}
	if op, corr, n := cur.u8(), cur.u32(), cur.u32(); op != OpLocateBatch || corr != 7 || n != 3 {
		t.Errorf("request: op 0x%02x corr %d count %d", op, corr, n)
	}
	for i, want := range [][2]uint32{{1, 0}, {1, 7}, {9, 4}} {
		if o, blk := cur.u32(), cur.u32(); o != want[0] || blk != want[1] {
			t.Errorf("request entry %d: (%d,%d), want (%d,%d)", i, o, blk, want[0], want[1])
		}
	}
	if !cur.done() {
		t.Error("request: trailing bytes")
	}

	cur = wireCursor{buf: decode(readGolden("batch3-response"))}
	if op, corr := cur.u8(), cur.u32(); op != OpLocateBatch|RespFlag || corr != 7 {
		t.Errorf("response: op 0x%02x corr %d", op, corr)
	}
	if e, fl, n := cur.u64(), cur.u8(), cur.u32(); e != 5 || fl != FlagDegraded || n != 3 {
		t.Errorf("response: epoch %d flags 0x%02x count %d", e, fl, n)
	}
	for i, want := range []struct {
		disk   uint32
		status uint8
	}{{3, 0}, {6, EntryUnhealthy}, {0, ErrCodeUnknownObject}} {
		if d, st := cur.u32(), cur.u8(); d != want.disk || st != want.status {
			t.Errorf("response entry %d: disk %d status 0x%02x, want %d 0x%02x",
				i, d, st, want.disk, want.status)
		}
	}
	if !cur.done() {
		t.Error("response: trailing bytes")
	}

	cur = wireCursor{buf: decode(readGolden("error-unknown-opcode"))}
	if op, corr := cur.u8(), cur.u32(); op != OpError || corr != 9 {
		t.Errorf("error: op 0x%02x corr %d", op, corr)
	}
	if code, orig := cur.u8(), cur.u8(); code != ErrCodeUnknownOpcode || orig != 0x6F {
		t.Errorf("error: code %d orig 0x%02x", code, orig)
	}
	if msg := string(cur.rest()); msg != "unknown opcode 0x6f" {
		t.Errorf("error message %q", msg)
	}
}

// TestGoldenErrorFrameLive sends the undefined opcode from the spec's worked
// example to a real server and asserts the reply on the wire is the golden
// error frame, byte for byte — the spec example is live server behavior, not
// hand-authored fiction.
func TestGoldenErrorFrameLive(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "error-unknown-opcode.bin"))
	if err != nil {
		t.Fatal(err)
	}
	b := newTestBackend(t, 4, 1, 10)
	nc := rawConn(t, startServer(t, b, nil))
	sendRaw(t, nc, appendHeader(nil, 0x6F, 9))
	got := make([]byte, len(want))
	if _, err := io.ReadFull(nc, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("server reply differs from golden frame\n  got: %x\n want: %x", got, want)
	}
}

// A compile-time-ish guard for the doc's worked-example arithmetic: both
// batch frames must be exactly the sizes the prose claims.
func TestGoldenFrameSizes(t *testing.T) {
	for name, want := range map[string]int{
		"handshake":            handshakeLen,
		"batch3-request":       41,
		"batch3-response":      41,
		"error-unknown-opcode": 34,
	} {
		b, err := os.ReadFile(filepath.Join("testdata", name+".bin"))
		if err != nil {
			t.Fatal(err)
		}
		if len(b) != want {
			t.Errorf("%s: %d bytes, want %d", name, len(b), want)
		}
	}
}
