package binproto

import (
	"bufio"
	"encoding/binary"
	"hash/crc32"
	"io"
	"net"
	"testing"
	"time"

	"scaddar/internal/cm"
	"scaddar/internal/obs"
)

// rawConn dials and handshakes, returning the naked connection for tests
// that need to write hostile bytes.
func rawConn(t *testing.T, addr string) net.Conn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	nc.SetDeadline(time.Now().Add(10 * time.Second))
	if err := writeHandshake(nc, Version); err != nil {
		t.Fatal(err)
	}
	if _, err := readHandshake(nc); err != nil {
		t.Fatal(err)
	}
	return nc
}

// sendRaw frames a payload manually.
func sendRaw(t *testing.T, nc net.Conn, payload []byte) {
	t.Helper()
	bw := bufio.NewWriter(nc)
	if err := writeFrame(bw, payload); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
}

// readRaw reads one response frame.
func readRaw(t *testing.T, nc net.Conn) []byte {
	t.Helper()
	var buf []byte
	payload, err := readFrameInto(bufio.NewReader(nc), &buf, MaxFrameLen)
	if err != nil {
		t.Fatal(err)
	}
	return payload
}

// expectClosed asserts the server hangs up.
func expectClosed(t *testing.T, nc net.Conn) {
	t.Helper()
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	var one [1]byte
	if _, err := nc.Read(one[:]); err == nil {
		t.Fatal("connection still open, want server hangup")
	}
}

func TestUnknownOpcodeKeepsConnection(t *testing.T) {
	b := newTestBackend(t, 4, 1, 10)
	nc := rawConn(t, startServer(t, b, nil))
	sendRaw(t, nc, appendHeader(nil, 0x6F, 42))
	resp := readRaw(t, nc)
	cur := wireCursor{buf: resp}
	if op, corr := cur.u8(), cur.u32(); op != OpError || corr != 42 {
		t.Fatalf("got op 0x%02x corr %d, want OpError corr 42", op, corr)
	}
	if code, orig := cur.u8(), cur.u8(); code != ErrCodeUnknownOpcode || orig != 0x6F {
		t.Fatalf("got code %d orig 0x%02x, want ErrCodeUnknownOpcode 0x6f", code, orig)
	}
	// The same connection still answers real requests.
	sendRaw(t, nc, appendHeader(nil, OpPing, 43))
	resp = readRaw(t, nc)
	if resp[0] != OpPing|RespFlag {
		t.Fatalf("ping after unknown opcode: got 0x%02x", resp[0])
	}
}

func TestMalformedBodyKeepsConnection(t *testing.T) {
	b := newTestBackend(t, 4, 1, 10)
	nc := rawConn(t, startServer(t, b, nil))
	// OpLocate with a truncated body (one u32 instead of two).
	sendRaw(t, nc, appendU32(appendHeader(nil, OpLocate, 7), 0))
	resp := readRaw(t, nc)
	cur := wireCursor{buf: resp}
	if op, corr := cur.u8(), cur.u32(); op != OpError || corr != 7 {
		t.Fatalf("got op 0x%02x corr %d", op, corr)
	}
	if code := cur.u8(); code != ErrCodeMalformed {
		t.Fatalf("got code %d, want ErrCodeMalformed", code)
	}
	// Trailing garbage after a valid body is malformed too.
	p := appendU32(appendU32(appendHeader(nil, OpLocate, 8), 0), 0)
	sendRaw(t, nc, append(p, 0xEE))
	resp = readRaw(t, nc)
	if resp[0] != OpError || resp[5] != ErrCodeMalformed {
		t.Fatalf("trailing bytes: got op 0x%02x code %d", resp[0], resp[5])
	}
	sendRaw(t, nc, appendHeader(nil, OpPing, 9))
	if resp = readRaw(t, nc); resp[0] != OpPing|RespFlag {
		t.Fatalf("ping after malformed: got 0x%02x", resp[0])
	}
}

func TestOversizedLengthPrefixDropsConnection(t *testing.T) {
	b := newTestBackend(t, 4, 1, 10)
	nc := rawConn(t, startServer(t, b, nil))
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[:4], MaxFrameLen+1)
	if _, err := nc.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	expectClosed(t, nc)
}

func TestCorruptCRCDropsConnection(t *testing.T) {
	b := newTestBackend(t, 4, 1, 10)
	nc := rawConn(t, startServer(t, b, nil))
	payload := appendHeader(nil, OpPing, 1)
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, crcTable)^0xDEADBEEF)
	if _, err := nc.Write(append(hdr[:], payload...)); err != nil {
		t.Fatal(err)
	}
	expectClosed(t, nc)
}

func TestTornFrameDropsConnection(t *testing.T) {
	b := newTestBackend(t, 4, 1, 10)
	addr := startServer(t, b, func(cfg *ServerConfig) { cfg.IdleTimeout = 200 * time.Millisecond })
	nc := rawConn(t, addr)
	// Declare 100 payload bytes, send 3, stop mid-frame: the idle deadline
	// tears the connection down instead of waiting forever.
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[:4], 100)
	if _, err := nc.Write(append(hdr[:], 1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	expectClosed(t, nc)
}

func TestZeroLengthFrameDropsConnection(t *testing.T) {
	b := newTestBackend(t, 4, 1, 10)
	nc := rawConn(t, startServer(t, b, nil))
	var hdr [frameHeaderLen]byte
	if _, err := nc.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	expectClosed(t, nc)
}

func TestSlowReaderEviction(t *testing.T) {
	b := newTestBackend(t, 4, 2, 200)
	reg := obs.NewRegistry()
	addr := startServer(t, b, func(cfg *ServerConfig) {
		cfg.Registry = reg
		cfg.WriteTimeout = 100 * time.Millisecond
		cfg.WriteBuffer = 4 << 10
	})
	evictions := reg.NewCounter("bin_slow_evictions_total", "")
	nc := rawConn(t, addr)
	// Pipeline large batches without ever reading a reply. Replies overrun
	// the 4 KiB bounded buffer, the flush to our stalled socket hits the
	// write deadline, and the server evicts us.
	payload := appendU32(appendHeader(nil, OpLocateBatch, 1), 512)
	for i := 0; i < 512; i++ {
		payload = appendU32(payload, uint32(i%2))
		payload = appendU32(payload, uint32(i%200))
	}
	bw := bufio.NewWriter(nc)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if err := writeFrame(bw, payload); err != nil {
			break // server hung up on us mid-write: eviction worked
		}
		if err := bw.Flush(); err != nil {
			break
		}
	}
	if time.Now().After(deadline) {
		t.Fatal("server kept absorbing replies from a reader that never reads")
	}
	waitUntil := time.Now().Add(5 * time.Second)
	for evictions.Value() == 0 && time.Now().Before(waitUntil) {
		time.Sleep(10 * time.Millisecond)
	}
	if evictions.Value() == 0 {
		t.Fatal("slow-reader eviction not recorded")
	}
}

func TestEpochChangeMidPipeline(t *testing.T) {
	// Two batches pipelined around a scale-up: each batch is answered from
	// one snapshot, so the epochs differ but neither batch mixes
	// generations.
	b := newTestBackend(t, 4, 2, 60)
	c := dialTest(t, startServer(t, b, nil))
	addrs := []cm.BlockAddr{{Object: 0, Index: 0}, {Object: 1, Index: 5}}
	out := make([]Result, 2)
	e0, err := c.LocateBatch(addrs, out)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.srv.ScaleUp(1); err != nil {
		t.Fatal(err)
	}
	b.publish(t)
	sn := b.snap.Load()
	e1, err := c.LocateBatch(addrs, out)
	if err != nil {
		t.Fatal(err)
	}
	if e0 == e1 {
		t.Fatal("epoch echo did not change across a scale-up")
	}
	if e1 != sn.Epoch() {
		t.Fatalf("second batch epoch %d, want %d", e1, sn.Epoch())
	}
	for i, a := range addrs {
		want, _ := sn.Locate(a.Object, a.Index)
		if out[i].Disk != want {
			t.Fatalf("entry %d: disk %d, new snapshot says %d", i, out[i].Disk, want)
		}
	}
}

// TestHandshakeGarbage makes sure a peer that is not speaking the protocol
// at all is rejected before any frame handling.
func TestHandshakeGarbage(t *testing.T) {
	b := newTestBackend(t, 4, 1, 10)
	addr := startServer(t, b, nil)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if _, err := io.WriteString(nc, "GET / HTTP/1.1\r\n\r\n"); err != nil {
		t.Fatal(err)
	}
	expectClosed(t, nc)
}
