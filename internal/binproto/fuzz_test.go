package binproto

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"net"
	"testing"
	"time"
)

// FuzzBinProto drives the server's full per-connection path with arbitrary
// post-handshake bytes: framing, CRC validation, opcode dispatch, and body
// decoding. The server must never panic and must never write a structurally
// invalid frame back. Correctly-framed garbage payloads are also re-framed
// with a valid CRC and replayed, so the fuzzer reaches the per-opcode
// decoders instead of dying at the checksum.
func FuzzBinProto(f *testing.F) {
	f.Add(appendU32(appendU32(appendHeader(nil, OpLocate, 1), 0), 0))
	f.Add(appendU32(appendHeader(nil, OpLocateBatch, 2), 0))
	batch := appendU32(appendHeader(nil, OpLocateBatch, 3), 2)
	batch = appendU32(appendU32(batch, 0), 0)
	batch = appendU32(appendU32(batch, 1), 5)
	f.Add(batch)
	f.Add(appendHeader(nil, OpEpoch, 4))
	f.Add(appendHeader(nil, OpPing, 5))
	f.Add(appendHeader(nil, OpDrain, 6))
	f.Add(appendHeader(nil, 0xEE, 7))
	f.Add([]byte{0x00})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	b := newTestBackend(f, 4, 2, 50)
	srv, err := NewServer(ServerConfig{Snapshot: b.snap.Load, WriteTimeout: time.Second, IdleTimeout: time.Second})
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > MaxFrameLen {
			return
		}
		// Pass 1: the raw bytes as a hostile stream (framing usually fails
		// CRC; exercises the drop path).
		// Pass 2: the bytes framed as a valid payload (exercises dispatch
		// and body decoders).
		streams := [][]byte{append([]byte(nil), data...)}
		if len(data) > 0 {
			var hdr [frameHeaderLen]byte
			binary.LittleEndian.PutUint32(hdr[:4], uint32(len(data)))
			binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(data, crcTable))
			streams = append(streams, append(hdr[:], data...))
		}
		for _, stream := range streams {
			client, server := net.Pipe()
			done := make(chan struct{})
			go func() {
				defer close(done)
				srv.wg.Add(1)
				srv.mu.Lock()
				srv.conns[server] = struct{}{}
				srv.mu.Unlock()
				srv.handleConn(server)
			}()
			client.SetDeadline(time.Now().Add(5 * time.Second))
			writeHandshake(client, Version)
			// Drain whatever the server answers and validate the framing of
			// every response it produces; net.Pipe is unbuffered, so this
			// must run concurrently with the stream write below.
			drained := make(chan struct{})
			go func() {
				defer close(drained)
				if _, err := readHandshake(client); err != nil {
					return
				}
				br := bufio.NewReader(client)
				var buf []byte
				for {
					payload, err := readFrameInto(br, &buf, MaxFrameLen)
					if err != nil {
						return
					}
					cur := wireCursor{buf: payload}
					cur.u8()
					cur.u32()
					if cur.bad {
						panic("server wrote a frame shorter than opcode+corr")
					}
				}
			}()
			client.Write(stream)
			client.Close()
			<-done
			<-drained
		}
	})
}
