package binproto

import (
	"bufio"
	"bytes"
	"errors"
	"testing"

	"scaddar/internal/cm"
)

func TestFrameRoundTrip(t *testing.T) {
	payload := appendU32(appendHeader(nil, OpLocate, 0xCAFE), 7)
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if err := writeFrame(bw, payload); err != nil {
		t.Fatal(err)
	}
	bw.Flush()
	var scratch []byte
	got, err := readFrameInto(bufio.NewReader(&buf), &scratch, MaxFrameLen)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round-trip: got % x, want % x", got, payload)
	}
}

func TestReadFrameRejectsOversizedAndZero(t *testing.T) {
	for _, n := range []uint32{0, MaxFrameLen + 1} {
		var buf bytes.Buffer
		buf.Write([]byte{byte(n), byte(n >> 8), byte(n >> 16), byte(n >> 24), 0, 0, 0, 0})
		var scratch []byte
		if _, err := readFrameInto(bufio.NewReader(&buf), &scratch, MaxFrameLen); !errors.Is(err, errBadFrame) {
			t.Fatalf("declared len %d: got %v, want errBadFrame", n, err)
		}
	}
}

func TestWireCursorTrailing(t *testing.T) {
	c := wireCursor{buf: []byte{1, 2, 3, 4, 5}}
	if c.u32(); !c.done() {
		// u32 consumed 4 of 5 bytes: done must be false.
	} else {
		t.Fatal("done with a trailing byte")
	}
	c = wireCursor{buf: []byte{1, 2}}
	c.u32()
	if !c.bad {
		t.Fatal("u32 over a 2-byte buffer did not mark the cursor bad")
	}
}

func TestErrorCodeMappingIsInverse(t *testing.T) {
	for _, err := range []error{cm.ErrUnknownObject, cm.ErrBlockOutOfRange, cm.ErrBusy, cm.ErrEpochFenced} {
		code := CodeForError(err)
		if code == ErrCodeInternal {
			t.Fatalf("%v maps to internal", err)
		}
		back := ErrorFromCode(code, "x")
		if !errors.Is(back, err) {
			t.Fatalf("code %d decodes to %v, not %v", code, back, err)
		}
	}
	if CodeForError(errors.New("anything else")) != ErrCodeInternal {
		t.Fatal("unrecognized error must map to ErrCodeInternal")
	}
}

// TestEncodeDecodeZeroAlloc is the steady-path allocation guard the
// tentpole demands: once scratch buffers exist, framing a batch request and
// decoding its response allocate nothing.
func TestEncodeDecodeZeroAlloc(t *testing.T) {
	addrs := make([]cm.BlockAddr, 64)
	for i := range addrs {
		addrs[i] = cm.BlockAddr{Object: i % 4, Index: i}
	}
	scratch := make([]byte, 0, 4096)
	allocs := testing.AllocsPerRun(200, func() {
		buf := appendHeader(scratch[:0], OpLocateBatch, 9)
		buf = appendU32(buf, uint32(len(addrs)))
		for _, a := range addrs {
			buf = appendU32(buf, uint32(a.Object))
			buf = appendU32(buf, uint32(a.Index))
		}
		scratch = buf[:0]
	})
	if allocs != 0 {
		t.Fatalf("batch request encode allocates %.1f, want 0", allocs)
	}

	// A synthetic batch response to decode into a fixed Result slice.
	resp := appendHeader(scratch[:0], OpLocateBatch|RespFlag, 9)
	resp = appendU64(resp, 42)
	resp = append(resp, 0)
	resp = appendU32(resp, uint32(len(addrs)))
	for i := range addrs {
		resp = appendU32(resp, uint32(i%8))
		resp = append(resp, 0)
	}
	out := make([]Result, len(addrs))
	ca := &call{op: OpLocateBatch, out: out}
	allocs = testing.AllocsPerRun(200, func() {
		cur := wireCursor{buf: resp}
		op := cur.u8()
		cur.u32()
		decodeInto(ca, op, &cur)
		if ca.bad || ca.n != len(addrs) {
			t.Fatal("decode failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("batch response decode allocates %.1f, want 0", allocs)
	}
}

func BenchmarkEncodeBatchRequest(b *testing.B) {
	addrs := make([]cm.BlockAddr, 64)
	scratch := make([]byte, 0, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := appendHeader(scratch[:0], OpLocateBatch, uint32(i))
		buf = appendU32(buf, uint32(len(addrs)))
		for _, a := range addrs {
			buf = appendU32(buf, uint32(a.Object))
			buf = appendU32(buf, uint32(a.Index))
		}
		scratch = buf[:0]
	}
}

func BenchmarkDecodeBatchResponse(b *testing.B) {
	n := 64
	resp := appendHeader(nil, OpLocateBatch|RespFlag, 9)
	resp = appendU64(resp, 42)
	resp = append(resp, 0)
	resp = appendU32(resp, uint32(n))
	for i := 0; i < n; i++ {
		resp = appendU32(resp, uint32(i%8))
		resp = append(resp, 0)
	}
	ca := &call{op: OpLocateBatch, out: make([]Result, n)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cur := wireCursor{buf: resp}
		op := cur.u8()
		cur.u32()
		decodeInto(ca, op, &cur)
	}
}
