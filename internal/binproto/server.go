package binproto

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"scaddar/internal/cm"
	"scaddar/internal/obs"
)

// Server defaults.
const (
	// DefaultWriteTimeout is how long one reply write may block before the
	// connection is evicted as a slow reader.
	DefaultWriteTimeout = 5 * time.Second
	// DefaultIdleTimeout is how long a connection may sit with no
	// complete request before it is closed.
	DefaultIdleTimeout = 2 * time.Minute
	// DefaultWriteBuffer is the per-connection bounded pending-reply
	// queue, in bytes. Replies beyond it block on the socket under the
	// write deadline instead of growing memory.
	DefaultWriteBuffer = 64 << 10
)

// ServerConfig configures a binary lookup server. Snapshot is the only
// required field.
type ServerConfig struct {
	// Snapshot returns the current locator snapshot; every request frame
	// is answered from exactly one call, so a batch is atomic with
	// respect to the placement epoch it echoes. The gateway's Snapshot
	// method satisfies this directly.
	Snapshot func() *cm.LocatorSnapshot
	// Draining, when non-nil and true, makes the server refuse new
	// lookups with ErrCodeDraining while still answering ping and drain.
	Draining func() bool
	// Registry receives the bin_* counters and histograms; nil creates a
	// private registry.
	Registry *obs.Registry
	// Logf, when non-nil, receives connection-level diagnostics.
	Logf func(format string, args ...any)
	// MaxBatch overrides the per-frame lookup bound (default MaxBatch).
	MaxBatch int
	// WriteTimeout overrides DefaultWriteTimeout.
	WriteTimeout time.Duration
	// IdleTimeout overrides DefaultIdleTimeout.
	IdleTimeout time.Duration
	// WriteBuffer overrides DefaultWriteBuffer.
	WriteBuffer int
}

// Server answers binary lookup requests over persistent TCP connections.
// Each connection is owned by one goroutine: it reads a frame, answers it
// from one snapshot load, and flushes when the pipelined burst is drained.
type Server struct {
	cfg ServerConfig
	m   *binMetrics

	mu     sync.Mutex
	closed bool
	lns    map[net.Listener]struct{}
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NewServer validates the config and applies defaults.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Snapshot == nil {
		return nil, errors.New("binproto: ServerConfig.Snapshot is required")
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = MaxBatch
	}
	if cfg.MaxBatch > MaxBatch {
		return nil, fmt.Errorf("binproto: MaxBatch %d exceeds protocol bound %d", cfg.MaxBatch, MaxBatch)
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = DefaultWriteTimeout
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = DefaultIdleTimeout
	}
	if cfg.WriteBuffer <= 0 {
		cfg.WriteBuffer = DefaultWriteBuffer
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Server{
		cfg:   cfg,
		m:     newBinMetrics(reg),
		lns:   make(map[net.Listener]struct{}),
		conns: make(map[net.Conn]struct{}),
	}, nil
}

// Serve accepts connections on ln until the listener fails or the server
// closes. It blocks, like http.Server.Serve; run it in its own goroutine.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("binproto: server closed")
	}
	s.lns[ln] = struct{}{}
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			delete(s.lns, ln)
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			continue
		}
		s.conns[nc] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handleConn(nc)
	}
}

// Close stops all listeners, closes every live connection, and waits for
// their handlers to return.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	for ln := range s.lns {
		ln.Close()
	}
	for nc := range s.conns {
		nc.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// srvConn is one connection's reusable state: input frame buffer, response
// scratch, and the batch-lookup working set. Everything here is touched by
// the single handler goroutine only, so steady-state request handling
// allocates nothing.
type srvConn struct {
	nc  net.Conn
	br  *bufio.Reader
	bw  *bufio.Writer
	in  []byte
	out []byte
	// batch working set, grown once to the client's steady batch size.
	addrs   []cm.BlockAddr
	disks   []int32
	status  []uint8
	scratch cm.BatchScratch
}

// handleConn owns one connection from handshake to close.
func (s *Server) handleConn(nc net.Conn) {
	defer func() {
		nc.Close()
		s.mu.Lock()
		delete(s.conns, nc)
		s.mu.Unlock()
		s.m.connsActive.Add(-1)
		s.wg.Done()
	}()
	s.m.connsTotal.Inc()
	s.m.connsActive.Add(1)

	nc.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
	ver, err := readHandshake(nc)
	if err != nil {
		s.logf("binproto: %s: %v", nc.RemoteAddr(), err)
		return
	}
	if ver != Version {
		// Unsupported version: answer with ours and hang up; the client
		// reports the mismatch.
		writeHandshake(nc, Version)
		s.logf("binproto: %s: unsupported version %d", nc.RemoteAddr(), ver)
		return
	}
	if err := writeHandshake(nc, Version); err != nil {
		return
	}

	c := &srvConn{
		nc: nc,
		br: bufio.NewReaderSize(nc, 64<<10),
		bw: bufio.NewWriterSize(nc, s.cfg.WriteBuffer),
	}
	for {
		nc.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		payload, err := readFrameInto(c.br, &c.in, MaxFrameLen)
		if err != nil {
			if errors.Is(err, errBadFrame) {
				s.m.badFrames.Inc()
				s.logf("binproto: %s: %v", nc.RemoteAddr(), err)
			} else if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("binproto: %s: read: %v", nc.RemoteAddr(), err)
			}
			return
		}
		drain, err := s.handleFrame(c, payload)
		if err != nil {
			// A reply write failed: the peer is gone or too slow to keep
			// its bounded reply queue moving.
			if isTimeout(err) {
				s.m.slowEvictions.Inc()
				s.logf("binproto: %s: evicting slow reader: %v", nc.RemoteAddr(), err)
			}
			return
		}
		// Flush when the pipelined burst is drained: more buffered input
		// means more replies are coming, so batching them into one write
		// is free.
		if c.br.Buffered() == 0 || drain {
			if err := s.flush(c); err != nil {
				if isTimeout(err) {
					s.m.slowEvictions.Inc()
					s.logf("binproto: %s: evicting slow reader: %v", nc.RemoteAddr(), err)
				}
				return
			}
		}
		if drain {
			return
		}
	}
}

// handleFrame answers one request payload. It returns drain=true when the
// connection should close after the pending replies flush.
func (s *Server) handleFrame(c *srvConn, payload []byte) (drain bool, err error) {
	start := time.Now()
	s.m.frames.Inc()
	cur := wireCursor{buf: payload}
	op := cur.u8()
	corr := cur.u32()
	if cur.bad {
		// Too short to even carry a correlation ID; answer corr 0.
		s.m.errorFrames.Inc()
		return false, s.writeReply(c, appendError(c.out[:0], 0, ErrCodeMalformed, op, "frame shorter than header"))
	}

	draining := s.cfg.Draining != nil && s.cfg.Draining()
	switch op {
	case OpLocate:
		if draining {
			s.m.errorFrames.Inc()
			return false, s.writeReply(c, appendError(c.out[:0], corr, ErrCodeDraining, op, "server draining"))
		}
		object, index := cur.u32(), cur.u32()
		if !cur.done() {
			s.m.errorFrames.Inc()
			return false, s.writeReply(c, appendError(c.out[:0], corr, ErrCodeMalformed, op, "locate body is object u32, block u32"))
		}
		sn := s.cfg.Snapshot()
		s.m.lookups.Inc()
		d, lerr := sn.Locate(int(object), int(index))
		if lerr != nil {
			s.m.lookupErrors.Inc()
			s.m.errorFrames.Inc()
			return false, s.writeReply(c, appendError(c.out[:0], corr, CodeForError(lerr), op, lerr.Error()))
		}
		out := appendHeader(c.out[:0], op|RespFlag, corr)
		out = appendU64(out, sn.Epoch())
		out = appendU32(out, uint32(d))
		out = append(out, snapFlags(sn)|diskFlag(sn, d))
		err = s.writeReply(c, out)

	case OpLocateBatch:
		if draining {
			s.m.errorFrames.Inc()
			return false, s.writeReply(c, appendError(c.out[:0], corr, ErrCodeDraining, op, "server draining"))
		}
		count := int(cur.u32())
		if cur.bad {
			s.m.errorFrames.Inc()
			return false, s.writeReply(c, appendError(c.out[:0], corr, ErrCodeMalformed, op, "batch body lacks count"))
		}
		if count > s.cfg.MaxBatch {
			s.m.errorFrames.Inc()
			return false, s.writeReply(c, appendError(c.out[:0], corr, ErrCodeTooLarge, op,
				fmt.Sprintf("batch of %d exceeds limit %d", count, s.cfg.MaxBatch)))
		}
		c.addrs = growAddrs(c.addrs, count)
		for i := 0; i < count; i++ {
			c.addrs[i] = cm.BlockAddr{Object: int(cur.u32()), Index: int(cur.u32())}
		}
		if !cur.done() {
			s.m.errorFrames.Inc()
			return false, s.writeReply(c, appendError(c.out[:0], corr, ErrCodeMalformed, op, "batch body is count u32 then count (object u32, block u32) pairs"))
		}
		c.disks = growInt32s(c.disks, count)
		c.status = growBytes(c.status, count)
		sn := s.cfg.Snapshot()
		s.m.lookups.Add(uint64(count))
		sn.LocateBatch(c.addrs[:count], c.disks, c.status, &c.scratch)
		out := appendHeader(c.out[:0], op|RespFlag, corr)
		out = appendU64(out, sn.Epoch())
		out = append(out, snapFlags(sn))
		out = appendU32(out, uint32(count))
		for i := 0; i < count; i++ {
			st := entryStatusForLocate(c.status[i])
			if st != 0 {
				s.m.lookupErrors.Inc()
			} else if !sn.Healthy(int(c.disks[i])) {
				st = EntryUnhealthy
			}
			out = appendU32(out, uint32(c.disks[i]))
			out = append(out, st)
		}
		err = s.writeReply(c, out)

	case OpEpoch:
		if !cur.done() {
			s.m.errorFrames.Inc()
			return false, s.writeReply(c, appendError(c.out[:0], corr, ErrCodeMalformed, op, "epoch request has no body"))
		}
		sn := s.cfg.Snapshot()
		out := appendHeader(c.out[:0], op|RespFlag, corr)
		out = appendU64(out, sn.Epoch())
		out = append(out, snapFlags(sn))
		out = appendU32(out, uint32(sn.N()))
		out = appendU32(out, uint32(len(sn.Objects())))
		err = s.writeReply(c, out)

	case OpPing:
		body := cur.rest()
		if len(body) > maxPingBody {
			s.m.errorFrames.Inc()
			return false, s.writeReply(c, appendError(c.out[:0], corr, ErrCodeMalformed, op,
				fmt.Sprintf("ping body of %d exceeds %d bytes", len(body), maxPingBody)))
		}
		out := appendHeader(c.out[:0], op|RespFlag, corr)
		out = append(out, body...)
		err = s.writeReply(c, out)

	case OpDrain:
		out := appendHeader(c.out[:0], op|RespFlag, corr)
		return true, s.writeReply(c, out)

	default:
		// Unknown opcode: the frame boundary was sound, so answer a typed
		// error and keep the connection.
		s.m.errorFrames.Inc()
		err = s.writeReply(c, appendError(c.out[:0], corr, ErrCodeUnknownOpcode, op,
			fmt.Sprintf("unknown opcode 0x%02x", op)))
	}
	if err == nil {
		s.m.frameSeconds.ObserveDuration(time.Since(start))
	}
	return false, err
}

// writeReply frames one response into the connection's bounded reply
// buffer, arming the write deadline first so that a full buffer draining
// to a stalled peer errors out instead of blocking forever. c.out is
// retained as the next response's scratch.
func (s *Server) writeReply(c *srvConn, payload []byte) error {
	c.out = payload[:0]
	c.nc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	return writeFrame(c.bw, payload)
}

// flush pushes buffered replies to the socket under the write deadline.
func (s *Server) flush(c *srvConn) error {
	c.nc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	return c.bw.Flush()
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// snapFlags renders a snapshot's state bits.
func snapFlags(sn *cm.LocatorSnapshot) uint8 {
	var f uint8
	if sn.Reorganizing() {
		f |= FlagReorganizing
	}
	if sn.Degraded() {
		f |= FlagDegraded
	}
	return f
}

// diskFlag renders the single-locate health bit.
func diskFlag(sn *cm.LocatorSnapshot, d int) uint8 {
	if sn.Healthy(d) {
		return 0
	}
	return FlagUnhealthyDisk
}

// isTimeout reports whether an error is a net timeout (slow-reader
// eviction rather than a peer hangup).
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(dst []byte, v uint64) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func growAddrs(s []cm.BlockAddr, n int) []cm.BlockAddr {
	if cap(s) < n {
		return make([]cm.BlockAddr, n)
	}
	return s[:n]
}

func growInt32s(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growBytes(s []byte, n int) []byte {
	if cap(s) < n {
		return make([]byte, n)
	}
	return s[:n]
}

// binMetrics holds the binary path's observability cells, resolved once at
// construction like the gateway's gwMetrics — never looked up on the hot
// path.
type binMetrics struct {
	connsTotal    *obs.Counter
	connsActive   *obs.Gauge
	frames        *obs.Counter
	lookups       *obs.Counter
	lookupErrors  *obs.Counter
	errorFrames   *obs.Counter
	badFrames     *obs.Counter
	slowEvictions *obs.Counter
	frameSeconds  *obs.Histogram
}

func newBinMetrics(reg *obs.Registry) *binMetrics {
	return &binMetrics{
		connsTotal:    reg.NewCounter("bin_connections_total", "Binary protocol connections accepted."),
		connsActive:   reg.NewGauge("bin_connections_active", "Binary protocol connections currently open."),
		frames:        reg.NewCounter("bin_frames_total", "Binary protocol request frames handled."),
		lookups:       reg.NewCounter("bin_lookups_total", "Block lookups answered over the binary protocol."),
		lookupErrors:  reg.NewCounter("bin_lookup_errors_total", "Binary protocol lookups that failed (unknown object, out of range)."),
		errorFrames:   reg.NewCounter("bin_error_frames_total", "Typed error frames sent."),
		badFrames:     reg.NewCounter("bin_bad_frames_total", "Structurally invalid frames received (connection dropped)."),
		slowEvictions: reg.NewCounter("bin_slow_evictions_total", "Connections evicted because reply writes hit the write deadline."),
		frameSeconds:  reg.NewHistogram("bin_frame_seconds", "Binary protocol per-frame service time.", obs.LatencyBuckets()),
	}
}
