package binproto

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"scaddar/internal/cm"
)

// Result is one resolved entry of a batch lookup.
type Result struct {
	// Disk is the logical disk holding the block; meaningful only when
	// Code is zero.
	Disk int
	// Healthy reports the disk's health at snapshot time.
	Healthy bool
	// Code is zero on success, otherwise the wire error code
	// (ErrCodeUnknownObject, ErrCodeOutOfRange, ...). Err converts it.
	Code uint8
}

// Err returns the entry's typed error, or nil on success.
func (r Result) Err() error {
	if r.Code == 0 {
		return nil
	}
	return ErrorFromCode(r.Code, "batch entry")
}

// EpochInfo is the answer to an OpEpoch request.
type EpochInfo struct {
	// Epoch is the placement epoch (cm.LocatorSnapshot.Epoch).
	Epoch uint64
	// Disks is the logical disk count.
	Disks int
	// Objects is the catalog size.
	Objects int
	// Reorganizing mirrors FlagReorganizing from the response.
	Reorganizing bool
	// Degraded mirrors FlagDegraded from the response.
	Degraded bool
}

// ClientConfig configures Dial.
type ClientConfig struct {
	// DialTimeout bounds the TCP connect plus handshake (default 5s).
	DialTimeout time.Duration
	// RequestTimeout, when positive, bounds each request's wait for its
	// response. Zero means wait until the connection dies.
	RequestTimeout time.Duration
}

// call is one in-flight request's completion slot. Calls are pooled: the
// reader goroutine decodes the response directly into the slot and signals
// done, so a steady request stream allocates nothing per call.
type call struct {
	op   uint8
	out  []Result // batch decode target (nil otherwise)
	n    int      // entries decoded into out
	ep   EpochInfo
	disk int
	errc uint8 // OpError code (0 = none)
	msg  string
	bad  bool // response undecodable
	done chan struct{}
}

// Client is a pipelined binary-protocol client over one persistent
// connection. Any number of goroutines may issue requests concurrently:
// writes are serialized, responses are matched to callers by correlation
// ID on a single reader goroutine. A Client is not safe for use after
// Close or a connection failure; Dial a new one.
type Client struct {
	nc net.Conn

	wmu  sync.Mutex // serializes request encoding + writing
	bw   *bufio.Writer
	wbuf []byte // request scratch, guarded by wmu

	mu      sync.Mutex // guards corr, pending, err
	corr    uint32
	pending map[uint32]*call
	err     error // set once the connection is dead

	pool    sync.Pool
	timeout time.Duration
	closed  atomic.Bool
}

// Dial connects, performs the version handshake, and starts the response
// reader.
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	nc, err := net.DialTimeout("tcp", addr, cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	return NewClient(nc, cfg)
}

// NewClient performs the handshake over an existing connection and starts
// the response reader. On error the connection is closed.
func NewClient(nc net.Conn, cfg ClientConfig) (*Client, error) {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	nc.SetDeadline(time.Now().Add(cfg.DialTimeout))
	if err := writeHandshake(nc, Version); err != nil {
		nc.Close()
		return nil, err
	}
	ver, err := readHandshake(nc)
	if err != nil {
		nc.Close()
		return nil, err
	}
	if ver != Version {
		nc.Close()
		return nil, fmt.Errorf("binproto: server speaks version %d, want %d", ver, Version)
	}
	nc.SetDeadline(time.Time{})
	c := &Client{
		nc:      nc,
		bw:      bufio.NewWriterSize(nc, 64<<10),
		pending: make(map[uint32]*call),
		timeout: cfg.RequestTimeout,
	}
	c.pool.New = func() any { return &call{done: make(chan struct{}, 1)} }
	go c.readLoop()
	return c, nil
}

// Close tears the connection down; in-flight requests fail.
func (c *Client) Close() error {
	c.closed.Store(true)
	return c.nc.Close()
}

// readLoop is the single response reader: it matches each frame to its
// pending call by correlation ID and decodes in place.
func (c *Client) readLoop() {
	br := bufio.NewReaderSize(c.nc, 64<<10)
	var buf []byte
	for {
		payload, err := readFrameInto(br, &buf, MaxFrameLen)
		if err != nil {
			c.fail(fmt.Errorf("binproto: connection lost: %w", err))
			return
		}
		cur := wireCursor{buf: payload}
		op := cur.u8()
		corr := cur.u32()
		if cur.bad {
			c.fail(fmt.Errorf("%w: response shorter than header", errMalformed))
			return
		}
		c.mu.Lock()
		ca := c.pending[corr]
		delete(c.pending, corr)
		c.mu.Unlock()
		if ca == nil {
			// Stale response (caller timed out): drop it.
			continue
		}
		decodeInto(ca, op, &cur)
		ca.done <- struct{}{}
	}
}

// decodeInto fills a call slot from a response cursor.
func decodeInto(ca *call, op uint8, cur *wireCursor) {
	if op == OpError {
		ca.errc = cur.u8()
		cur.u8() // original opcode, informational
		ca.msg = string(cur.rest())
		if ca.errc == 0 || !cur.done() {
			ca.bad = true
		}
		return
	}
	if op != ca.op|RespFlag {
		ca.bad = true
		return
	}
	switch ca.op {
	case OpLocate:
		ca.ep.Epoch = cur.u64()
		ca.disk = int(int32(cur.u32()))
		flags := cur.u8()
		ca.ep.Reorganizing = flags&FlagReorganizing != 0
		ca.ep.Degraded = flags&FlagDegraded != 0
		if flags&FlagUnhealthyDisk == 0 {
			ca.n = 1 // reused as "healthy" marker for single locate
		} else {
			ca.n = 0
		}
		ca.bad = !cur.done()
	case OpLocateBatch:
		ca.ep.Epoch = cur.u64()
		flags := cur.u8()
		ca.ep.Reorganizing = flags&FlagReorganizing != 0
		ca.ep.Degraded = flags&FlagDegraded != 0
		n := int(cur.u32())
		if cur.bad || n > len(ca.out) {
			ca.bad = true
			return
		}
		for i := 0; i < n; i++ {
			d := int(int32(cur.u32()))
			st := cur.u8()
			ca.out[i] = Result{
				Disk:    d,
				Healthy: st&EntryUnhealthy == 0 && st&^EntryUnhealthy == 0,
				Code:    st &^ EntryUnhealthy,
			}
		}
		ca.n = n
		ca.bad = !cur.done()
	case OpEpoch:
		ca.ep.Epoch = cur.u64()
		flags := cur.u8()
		ca.ep.Reorganizing = flags&FlagReorganizing != 0
		ca.ep.Degraded = flags&FlagDegraded != 0
		ca.ep.Disks = int(cur.u32())
		ca.ep.Objects = int(cur.u32())
		ca.bad = !cur.done()
	case OpPing, OpDrain:
		cur.rest()
	}
}

// fail marks the client dead and releases every waiter.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		if c.closed.Load() {
			err = net.ErrClosed
		}
		c.err = err
	}
	pending := c.pending
	c.pending = make(map[uint32]*call)
	c.mu.Unlock()
	for _, ca := range pending {
		ca.errc = 0
		ca.bad = true
		ca.done <- struct{}{}
	}
}

// roundTrip sends one request and waits for its response. encode appends
// the request body (after the opcode/corr header) to the scratch.
func (c *Client) roundTrip(ca *call, encode func(dst []byte) []byte) error {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return err
	}
	c.corr++
	corr := c.corr
	c.pending[corr] = ca
	c.mu.Unlock()

	c.wmu.Lock()
	buf := appendHeader(c.wbuf[:0], ca.op, corr)
	buf = encode(buf)
	c.wbuf = buf[:0]
	err := writeFrame(c.bw, buf)
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, corr)
		c.mu.Unlock()
		c.fail(fmt.Errorf("binproto: write: %w", err))
		return err
	}

	if c.timeout > 0 {
		t := time.NewTimer(c.timeout)
		defer t.Stop()
		select {
		case <-ca.done:
		case <-t.C:
			c.mu.Lock()
			abandoned := c.pending[corr] == ca
			if abandoned {
				delete(c.pending, corr)
			}
			c.mu.Unlock()
			if abandoned {
				return fmt.Errorf("binproto: request timed out after %v", c.timeout)
			}
			<-ca.done // response landed while we were giving up
		}
	} else {
		<-ca.done
	}
	if ca.bad {
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		if err != nil {
			return err
		}
		return errMalformed
	}
	if ca.errc != 0 {
		return ErrorFromCode(ca.errc, ca.msg)
	}
	return nil
}

// newCall takes a pooled call slot for an opcode.
func (c *Client) newCall(op uint8) *call {
	ca := c.pool.Get().(*call)
	ca.op, ca.out, ca.n, ca.ep, ca.disk, ca.errc, ca.msg, ca.bad = op, nil, 0, EpochInfo{}, 0, 0, "", false
	return ca
}

// Locate resolves one block. The returned epoch is the placement epoch of
// the answering snapshot; healthy reports the disk's health there. Lookup
// failures come back as the same typed sentinels a local
// LocatorSnapshot.Locate returns (cm.ErrUnknownObject, ...).
func (c *Client) Locate(object, index int) (disk int, epoch uint64, healthy bool, err error) {
	ca := c.newCall(OpLocate)
	defer c.pool.Put(ca)
	err = c.roundTrip(ca, func(dst []byte) []byte {
		dst = appendU32(dst, uint32(object))
		return appendU32(dst, uint32(index))
	})
	if err != nil {
		return 0, 0, false, err
	}
	return ca.disk, ca.ep.Epoch, ca.n == 1, nil
}

// LocateBatch resolves len(addrs) blocks in one frame; out must be at
// least as long. Per-entry failures land in out[i].Code without failing
// the batch. The returned epoch is the single snapshot epoch the whole
// batch was answered under — the batch is atomic with respect to
// reorganizations.
func (c *Client) LocateBatch(addrs []cm.BlockAddr, out []Result) (epoch uint64, err error) {
	if len(out) < len(addrs) {
		return 0, errors.New("binproto: LocateBatch output shorter than input")
	}
	if len(addrs) > MaxBatch {
		return 0, fmt.Errorf("%w: %d > %d", ErrTooLarge, len(addrs), MaxBatch)
	}
	ca := c.newCall(OpLocateBatch)
	ca.out = out
	defer c.pool.Put(ca)
	err = c.roundTrip(ca, func(dst []byte) []byte {
		dst = appendU32(dst, uint32(len(addrs)))
		for _, a := range addrs {
			dst = appendU32(dst, uint32(a.Object))
			dst = appendU32(dst, uint32(a.Index))
		}
		return dst
	})
	if err != nil {
		return 0, err
	}
	if ca.n != len(addrs) {
		return 0, fmt.Errorf("%w: %d entries for %d lookups", errMalformed, ca.n, len(addrs))
	}
	return ca.ep.Epoch, nil
}

// Epoch fetches the current placement epoch and snapshot shape.
func (c *Client) Epoch() (EpochInfo, error) {
	ca := c.newCall(OpEpoch)
	defer c.pool.Put(ca)
	err := c.roundTrip(ca, func(dst []byte) []byte { return dst })
	return ca.ep, err
}

// Ping round-trips an empty frame.
func (c *Client) Ping() error {
	ca := c.newCall(OpPing)
	defer c.pool.Put(ca)
	return c.roundTrip(ca, func(dst []byte) []byte { return dst })
}

// Drain asks the server to answer everything already pipelined on this
// connection and close it. After a successful Drain the client is spent.
func (c *Client) Drain() error {
	ca := c.newCall(OpDrain)
	defer c.pool.Put(ca)
	return c.roundTrip(ca, func(dst []byte) []byte { return dst })
}

// Pool is a fixed set of clients to one address, handed out round-robin so
// many goroutines can drive full pipelines without serializing on one
// connection's writer lock.
type Pool struct {
	clients []*Client
	next    atomic.Uint64
}

// DialPool opens size connections to addr.
func DialPool(addr string, size int, cfg ClientConfig) (*Pool, error) {
	if size <= 0 {
		size = 1
	}
	p := &Pool{clients: make([]*Client, size)}
	for i := range p.clients {
		c, err := Dial(addr, cfg)
		if err != nil {
			p.Close()
			return nil, err
		}
		p.clients[i] = c
	}
	return p, nil
}

// Get returns the next client round-robin.
func (p *Pool) Get() *Client {
	return p.clients[p.next.Add(1)%uint64(len(p.clients))]
}

// Close closes every connection in the pool.
func (p *Pool) Close() {
	for _, c := range p.clients {
		if c != nil {
			c.Close()
		}
	}
}
