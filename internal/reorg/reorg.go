// Package reorg turns a scaling operation into an executable block-movement
// plan — the paper's redistribution function RF() — and executes it against
// a simulated disk array, either all at once or throttled round by round so
// the continuous-media server keeps serving streams while it reorganizes
// ("no prior work has addressed such redistribution while the CM server is
// online").
//
// Plans are expressed over logical disk indices with a precise execution
// convention:
//
//   - PlanAdd returns moves valid AFTER the physical array has grown: old
//     disks keep their logical indices and destinations include the new
//     ones. Grow the array, then execute.
//   - PlanRemove returns moves valid BEFORE the physical array shrinks:
//     sources are the doomed disks and destinations are survivors, both in
//     the pre-removal numbering. Execute (drain), then detach the disks.
//
// This matches operational reality: added disks are attached empty before
// data flows to them, and disks being retired are drained before they are
// pulled.
package reorg

import (
	"fmt"

	"scaddar/internal/disk"
	"scaddar/internal/placement"
)

// Move relocates one block between logical disk indices (see the package
// comment for when each index space is valid).
type Move struct {
	Block placement.BlockRef
	From  int
	To    int
}

// Plan is the ordered list of block movements implementing one scaling
// operation.
type Plan struct {
	// NBefore and NAfter are the disk counts around the operation.
	NBefore, NAfter int
	// Moves lists every block that changes disks.
	Moves []Move
	// Blocks is the total number of blocks considered, for movement-
	// fraction reporting.
	Blocks int
}

// MoveFraction returns the fraction of all blocks the plan relocates.
func (p *Plan) MoveFraction() float64 {
	if p.Blocks == 0 {
		return 0
	}
	return float64(len(p.Moves)) / float64(p.Blocks)
}

// OptimalFraction returns z_j, the minimum movement fraction for this
// operation (Definition 3.4 RO1).
func (p *Plan) OptimalFraction() float64 {
	return placement.OptimalMoveFraction(p.NBefore, p.NAfter)
}

// PlanAdd applies an addition of count disks to the strategy and returns the
// resulting plan. The strategy is mutated; the physical array must be grown
// before the plan is executed.
func PlanAdd(s placement.Strategy, blocks []placement.BlockRef, count int) (*Plan, error) {
	nBefore := s.N()
	before := placement.Snapshot(s, blocks)
	if err := s.AddDisks(count); err != nil {
		return nil, err
	}
	after := placement.Snapshot(s, blocks)
	plan := &Plan{NBefore: nBefore, NAfter: s.N(), Blocks: len(blocks)}
	for i, b := range blocks {
		if before[i] != after[i] {
			plan.Moves = append(plan.Moves, Move{Block: b, From: before[i], To: after[i]})
		}
	}
	return plan, nil
}

// PlanRemove applies a removal of the given logical indices to the strategy
// and returns the resulting plan with both endpoints in the PRE-removal
// numbering. The strategy is mutated; the plan must be executed before the
// physical array is shrunk.
func PlanRemove(s placement.Strategy, blocks []placement.BlockRef, indices ...int) (*Plan, error) {
	nBefore := s.N()
	before := placement.Snapshot(s, blocks)
	if err := s.RemoveDisks(indices...); err != nil {
		return nil, err
	}
	after := placement.Snapshot(s, blocks)

	// Invert the survivor compaction: post-removal logical -> pre-removal.
	removed := make([]int, 0, len(indices))
	removed = append(removed, indices...)
	sortInts(removed)
	surv := placement.SurvivorMap(nBefore, removed)
	preOf := make([]int, s.N())
	for old, nw := range surv {
		if nw >= 0 {
			preOf[nw] = old
		}
	}

	plan := &Plan{NBefore: nBefore, NAfter: s.N(), Blocks: len(blocks)}
	for i, b := range blocks {
		destPre := preOf[after[i]]
		if before[i] != destPre {
			plan.Moves = append(plan.Moves, Move{Block: b, From: before[i], To: destPre})
		}
	}
	return plan, nil
}

// Rebaseliner is a strategy that supports the paper's complete
// redistribution (placement.Scaddar implements it).
type Rebaseliner interface {
	placement.Strategy
	Rebaseline() error
}

// PlanRebaseline applies a complete redistribution to the strategy and
// returns the resulting plan — the "redistribution of all the blocks" the
// paper recommends once the Section 4.3 budget is exhausted. The disk count
// is unchanged; nearly all blocks move. Both endpoints are current logical
// indices, valid immediately.
func PlanRebaseline(s Rebaseliner, blocks []placement.BlockRef) (*Plan, error) {
	before := placement.Snapshot(s, blocks)
	if err := s.Rebaseline(); err != nil {
		return nil, err
	}
	after := placement.Snapshot(s, blocks)
	plan := &Plan{NBefore: s.N(), NAfter: s.N(), Blocks: len(blocks)}
	for i, b := range blocks {
		if before[i] != after[i] {
			plan.Moves = append(plan.Moves, Move{Block: b, From: before[i], To: after[i]})
		}
	}
	return plan, nil
}

// sortInts is a tiny insertion sort; removal groups are small.
func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for k := i; k > 0 && xs[k] < xs[k-1]; k-- {
			xs[k], xs[k-1] = xs[k-1], xs[k]
		}
	}
}

// BlockIDFunc maps a placement block reference to the disk-layer block ID.
type BlockIDFunc func(placement.BlockRef) disk.BlockID

// DiskFunc resolves a plan-space logical index to the physical disk at
// execution time.
type DiskFunc func(logical int) (*disk.Disk, error)

// PayloadMoveFunc relocates a block's real bytes alongside its metadata
// move. It runs after the metadata has moved (src.Remove + dst.Store), with
// both physical disks resolved; implementations read the source payload,
// write the destination, and drop the source copy.
type PayloadMoveFunc func(b placement.BlockRef, id disk.BlockID, src, dst *disk.Disk) error

// Executor carries out a plan move by move, optionally throttled by
// per-disk I/O budgets so that migration shares each round's bandwidth with
// stream service.
type Executor struct {
	plan      *Plan
	blockID   BlockIDFunc
	diskOf    DiskFunc
	payload   PayloadMoveFunc
	pending   []Move
	pendingBy map[placement.BlockRef]int // block -> current source disk
	moved     int
	rounds    int
	// movedLog accumulates the blocks Step executed since the last
	// TakeMoved call, for durable-event emission.
	movedLog []placement.BlockRef
}

// NewExecutor prepares a plan for execution.
func NewExecutor(plan *Plan, blockID BlockIDFunc, diskOf DiskFunc) (*Executor, error) {
	if plan == nil {
		return nil, fmt.Errorf("reorg: nil plan")
	}
	if blockID == nil || diskOf == nil {
		return nil, fmt.Errorf("reorg: executor needs block-ID and disk resolvers")
	}
	pending := make([]Move, len(plan.Moves))
	copy(pending, plan.Moves)
	pendingBy := make(map[placement.BlockRef]int, len(pending))
	for _, m := range pending {
		pendingBy[m.Block] = m.From
	}
	return &Executor{plan: plan, blockID: blockID, diskOf: diskOf, pending: pending, pendingBy: pendingBy}, nil
}

// SetPayloadMover installs the optional hook that moves each block's real
// bytes with its metadata. Install it before the first Step/ExecuteAll call;
// a nil mover (the default) keeps the executor a pure metadata simulation.
func (e *Executor) SetPayloadMover(fn PayloadMoveFunc) { e.payload = fn }

// PendingSource reports the logical disk a block must still be read from
// because its move has not executed yet. This is what keeps the access
// function correct while a reorganization is in flight: until the block
// physically moves, it is served from its pre-operation home.
func (e *Executor) PendingSource(b placement.BlockRef) (from int, pending bool) {
	from, pending = e.pendingBy[b]
	return from, pending
}

// PendingSources returns a copy of the pending-move source map: every block
// whose move has not executed yet, keyed to the logical disk it must still
// be read from. Concurrent read paths snapshot this once per round to serve
// lookups without touching the (single-owner) executor.
func (e *Executor) PendingSources() map[placement.BlockRef]int {
	out := make(map[placement.BlockRef]int, len(e.pendingBy))
	for b, from := range e.pendingBy {
		out[b] = from
	}
	return out
}

// PendingList returns a copy of the not-yet-executed moves in plan order.
// Unlike PendingSources it is a flat slice, so bulk consumers (the cm
// snapshot builder) can partition it into ranges and index it in parallel.
func (e *Executor) PendingList() []Move {
	out := make([]Move, len(e.pending))
	copy(out, e.pending)
	return out
}

// Done reports whether every move has been executed.
func (e *Executor) Done() bool { return len(e.pending) == 0 }

// Moved returns the number of moves executed so far.
func (e *Executor) Moved() int { return e.moved }

// Rounds returns the number of throttled Step calls made so far.
func (e *Executor) Rounds() int { return e.rounds }

// Remaining returns the number of moves not yet executed.
func (e *Executor) Remaining() int { return len(e.pending) }

// ExecuteAll runs the whole plan without throttling (an offline
// reorganization with the server down) and returns the number of blocks
// moved.
func (e *Executor) ExecuteAll() (int, error) {
	n := 0
	for len(e.pending) > 0 {
		if err := e.executeOne(e.pending[0]); err != nil {
			return n, err
		}
		e.pending = e.pending[1:]
		n++
	}
	return n, nil
}

// Step executes moves while per-disk I/O budget remains: each move consumes
// one read on the source and one write on the destination. budget is
// indexed by plan-space logical disk; it is decremented in place. Moves
// whose source or destination budget is exhausted are skipped and stay
// pending for the next round, so one saturated disk does not stall the whole
// migration.
func (e *Executor) Step(budget []int) (moved int, err error) {
	e.rounds++
	kept := e.pending[:0]
	for i, m := range e.pending {
		if m.From >= len(budget) || m.To >= len(budget) {
			kept = append(kept, e.pending[i:]...)
			e.pending = kept
			return moved, fmt.Errorf("reorg: move endpoints %d→%d outside budget of %d disks", m.From, m.To, len(budget))
		}
		if budget[m.From] <= 0 || budget[m.To] <= 0 {
			kept = append(kept, m)
			continue
		}
		if err := e.executeOne(m); err != nil {
			kept = append(kept, e.pending[i+1:]...)
			e.pending = kept
			return moved, err
		}
		e.movedLog = append(e.movedLog, m.Block)
		budget[m.From]--
		budget[m.To]--
		moved++
	}
	e.pending = kept
	return moved, nil
}

// TakeMoved returns the blocks Step has executed since the last call and
// clears the log. The caller (the CM server) journals them; replay uses
// ExecuteBlock to re-apply exactly those moves, because pending order is not
// deterministic across restarts.
func (e *Executor) TakeMoved() []placement.BlockRef {
	out := e.movedLog
	e.movedLog = nil
	return out
}

// ExecuteBlock executes the pending move of one specific block, regardless
// of its position in the pending order. It exists for journal replay.
func (e *Executor) ExecuteBlock(b placement.BlockRef) error {
	if _, ok := e.pendingBy[b]; !ok {
		return fmt.Errorf("reorg: block %+v has no pending move", b)
	}
	for i, m := range e.pending {
		if m.Block == b {
			if err := e.executeOne(m); err != nil {
				return err
			}
			e.pending = append(e.pending[:i], e.pending[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("reorg: pending move for %+v not indexed", b)
}

// ExtractBySource removes and returns every pending move whose source is
// the given logical disk. It exists for fault handling: when a disk fails
// mid-migration its outstanding moves can no longer be executed from the
// (wiped) source, so the recovery layer extracts them and re-materializes
// each block at its destination from redundant copies instead. Extracted
// blocks stop being reported by PendingSource — their authoritative
// location is the move's destination from now on.
func (e *Executor) ExtractBySource(from int) []Move {
	var out []Move
	kept := e.pending[:0]
	for _, m := range e.pending {
		if m.From == from {
			out = append(out, m)
			delete(e.pendingBy, m.Block)
		} else {
			kept = append(kept, m)
		}
	}
	// Zero the tail so extracted moves are not retained by the backing array.
	for i := len(kept); i < len(e.pending); i++ {
		e.pending[i] = Move{}
	}
	e.pending = kept
	return out
}

// executeOne performs one move against the physical disks.
func (e *Executor) executeOne(m Move) error {
	src, err := e.diskOf(m.From)
	if err != nil {
		return fmt.Errorf("reorg: resolving source of %+v: %w", m, err)
	}
	dst, err := e.diskOf(m.To)
	if err != nil {
		return fmt.Errorf("reorg: resolving destination of %+v: %w", m, err)
	}
	id := e.blockID(m.Block)
	if err := src.Remove(id); err != nil {
		return fmt.Errorf("reorg: %w", err)
	}
	if err := dst.Store(id); err != nil {
		return fmt.Errorf("reorg: %w", err)
	}
	if e.payload != nil {
		if err := e.payload(m.Block, id, src, dst); err != nil {
			return fmt.Errorf("reorg: %w", err)
		}
	}
	src.RecordMigration()
	dst.RecordMigration()
	delete(e.pendingBy, m.Block)
	e.moved++
	return nil
}
