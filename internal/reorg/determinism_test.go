package reorg

import (
	"reflect"
	"testing"

	"scaddar/internal/placement"
	"scaddar/internal/prng"
)

// serialOnly hides a strategy's bulk path: only the plain Strategy methods
// are promoted, so placement.Snapshot falls back to the per-block loop. The
// determinism tests plan the same operations through both faces and demand
// byte-identical plans.
type serialOnly struct{ placement.Strategy }

// planUniverse builds a block universe large enough to cross the
// par.MinParallel threshold, so the batch face really fans out.
func planUniverse(nobj, blocksPer int) []placement.BlockRef {
	blocks := make([]placement.BlockRef, 0, nobj*blocksPer)
	for o := 0; o < nobj; o++ {
		for i := 0; i < blocksPer; i++ {
			blocks = append(blocks, placement.BlockRef{Seed: uint64(o + 1), Index: uint64(i)})
		}
	}
	return blocks
}

func newPlanStrategy(t *testing.T, n0 int) *placement.Scaddar {
	t.Helper()
	x0 := placement.NewX0Func(func(seed uint64) prng.Source { return prng.NewSplitMix64(seed) })
	strat, err := placement.NewScaddar(n0, x0)
	if err != nil {
		t.Fatal(err)
	}
	return strat
}

func TestPlanAddParallelMatchesSerial(t *testing.T) {
	blocks := planUniverse(30, 100)
	serial, parallel := newPlanStrategy(t, 10), newPlanStrategy(t, 10)
	ps, err := PlanAdd(serialOnly{serial}, blocks, 3)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := PlanAdd(parallel, blocks, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ps, pp) {
		t.Fatalf("parallel PlanAdd diverged from serial:\n serial:   %d moves\n parallel: %d moves",
			len(ps.Moves), len(pp.Moves))
	}
}

func TestPlanRemoveParallelMatchesSerial(t *testing.T) {
	blocks := planUniverse(30, 100)
	serial, parallel := newPlanStrategy(t, 10), newPlanStrategy(t, 10)
	ps, err := PlanRemove(serialOnly{serial}, blocks, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := PlanRemove(parallel, blocks, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ps, pp) {
		t.Fatalf("parallel PlanRemove diverged from serial:\n serial:   %d moves\n parallel: %d moves",
			len(ps.Moves), len(pp.Moves))
	}
}

func TestPlanScheduleParallelMatchesSerial(t *testing.T) {
	// A whole scaling schedule, planned through both faces: every plan must
	// match at every step, not just after one operation.
	blocks := planUniverse(25, 100)
	serial, parallel := newPlanStrategy(t, 8), newPlanStrategy(t, 8)
	type step struct {
		add     int
		removes []int
	}
	schedule := []step{{add: 4}, {removes: []int{1, 6}}, {add: 2}, {removes: []int{0}}, {add: 5}}
	for si, st := range schedule {
		var ps, pp *Plan
		var err error
		if st.add > 0 {
			if ps, err = PlanAdd(serialOnly{serial}, blocks, st.add); err != nil {
				t.Fatal(err)
			}
			if pp, err = PlanAdd(parallel, blocks, st.add); err != nil {
				t.Fatal(err)
			}
		} else {
			if ps, err = PlanRemove(serialOnly{serial}, blocks, st.removes...); err != nil {
				t.Fatal(err)
			}
			if pp, err = PlanRemove(parallel, blocks, st.removes...); err != nil {
				t.Fatal(err)
			}
		}
		if !reflect.DeepEqual(ps, pp) {
			t.Fatalf("step %d: parallel plan diverged from serial", si)
		}
	}
}
