package reorg

import (
	"testing"

	"scaddar/internal/disk"
	"scaddar/internal/placement"
	"scaddar/internal/prng"
)

// harness wires a scaddar strategy, a block universe, and a physical array
// loaded accordingly.
type harness struct {
	strat  *placement.Scaddar
	blocks []placement.BlockRef
	array  *disk.Array
}

func newHarness(t *testing.T, n0, nobj, blocksPer int) *harness {
	t.Helper()
	x0 := placement.NewX0Func(func(seed uint64) prng.Source { return prng.NewSplitMix64(seed) })
	strat, err := placement.NewScaddar(n0, x0)
	if err != nil {
		t.Fatal(err)
	}
	array, err := disk.NewArray(n0, disk.Cheetah73)
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{strat: strat, array: array}
	for o := 0; o < nobj; o++ {
		for i := 0; i < blocksPer; i++ {
			b := placement.BlockRef{Seed: uint64(o + 1), Index: uint64(i)}
			h.blocks = append(h.blocks, b)
			d, err := array.Disk(strat.Disk(b))
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Store(blockIDOf(b)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return h
}

// blockIDOf packs a reference for the test harness.
func blockIDOf(b placement.BlockRef) disk.BlockID {
	return disk.BlockID(b.Seed<<32 | b.Index)
}

// verify checks that every block sits on the disk the strategy names.
func (h *harness) verify(t *testing.T) {
	t.Helper()
	for _, b := range h.blocks {
		d, err := h.array.Disk(h.strat.Disk(b))
		if err != nil {
			t.Fatal(err)
		}
		if !d.Has(blockIDOf(b)) {
			t.Fatalf("block %+v not on expected disk %d", b, d.ID())
		}
	}
}

func TestPlanAddAndExecuteAll(t *testing.T) {
	h := newHarness(t, 6, 10, 200)
	plan, err := PlanAdd(h.strat, h.blocks, 2)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NBefore != 6 || plan.NAfter != 8 || plan.Blocks != len(h.blocks) {
		t.Fatalf("plan header %+v", plan)
	}
	// Movement near z_j = 0.25.
	if f := plan.MoveFraction(); f < plan.OptimalFraction()-0.04 || f > plan.OptimalFraction()+0.04 {
		t.Fatalf("move fraction %.3f, want ~%.3f", f, plan.OptimalFraction())
	}
	// Every move goes to an added disk.
	for _, m := range plan.Moves {
		if m.To < 6 || m.To >= 8 {
			t.Fatalf("move to old disk: %+v", m)
		}
	}
	if _, err := h.array.Add(2, disk.Cheetah73); err != nil {
		t.Fatal(err)
	}
	exec, err := NewExecutor(plan, blockIDOf, h.array.Disk)
	if err != nil {
		t.Fatal(err)
	}
	n, err := exec.ExecuteAll()
	if err != nil {
		t.Fatal(err)
	}
	if n != len(plan.Moves) || !exec.Done() || exec.Remaining() != 0 {
		t.Fatalf("executed %d of %d", n, len(plan.Moves))
	}
	h.verify(t)
}

func TestPlanRemoveAndExecuteAll(t *testing.T) {
	h := newHarness(t, 8, 10, 200)
	// Count blocks on doomed logical disks 2 and 5 before the plan.
	doomed := 0
	for _, b := range h.blocks {
		d := h.strat.Disk(b)
		if d == 2 || d == 5 {
			doomed++
		}
	}
	plan, err := PlanRemove(h.strat, h.blocks, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NBefore != 8 || plan.NAfter != 6 {
		t.Fatalf("plan header %+v", plan)
	}
	if len(plan.Moves) != doomed {
		t.Fatalf("plan moves %d blocks, want exactly the %d on doomed disks", len(plan.Moves), doomed)
	}
	for _, m := range plan.Moves {
		if m.From != 2 && m.From != 5 {
			t.Fatalf("move from surviving disk: %+v", m)
		}
		if m.To == 2 || m.To == 5 || m.To < 0 || m.To >= 8 {
			t.Fatalf("move to invalid destination: %+v", m)
		}
	}
	exec, err := NewExecutor(plan, blockIDOf, h.array.Disk)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.ExecuteAll(); err != nil {
		t.Fatal(err)
	}
	// Doomed disks must be empty; then detach them.
	for _, logical := range []int{2, 5} {
		d, _ := h.array.Disk(logical)
		if d.Len() != 0 {
			t.Fatalf("doomed disk %d still holds %d blocks", logical, d.Len())
		}
	}
	if _, err := h.array.Remove(2, 5); err != nil {
		t.Fatal(err)
	}
	h.verify(t)
}

func TestThrottledStep(t *testing.T) {
	h := newHarness(t, 4, 10, 200)
	plan, err := PlanAdd(h.strat, h.blocks, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.array.Add(1, disk.Cheetah73); err != nil {
		t.Fatal(err)
	}
	exec, err := NewExecutor(plan, blockIDOf, h.array.Disk)
	if err != nil {
		t.Fatal(err)
	}
	rounds := 0
	for !exec.Done() {
		budget := make([]int, 5)
		for i := range budget {
			budget[i] = 20
		}
		moved, err := exec.Step(budget)
		if err != nil {
			t.Fatal(err)
		}
		// The destination (disk 4) caps throughput at 20 moves/round.
		if moved > 20 {
			t.Fatalf("round moved %d, budget allows 20", moved)
		}
		rounds++
		if rounds > 10000 {
			t.Fatal("throttled migration did not converge")
		}
	}
	if exec.Rounds() != rounds {
		t.Fatalf("Rounds() = %d, want %d", exec.Rounds(), rounds)
	}
	wantRounds := (len(plan.Moves) + 19) / 20
	if rounds != wantRounds {
		t.Fatalf("took %d rounds, want %d for %d moves at 20/round", rounds, wantRounds, len(plan.Moves))
	}
	h.verify(t)
}

func TestStepSkipsExhaustedDisks(t *testing.T) {
	h := newHarness(t, 4, 10, 100)
	plan, err := PlanAdd(h.strat, h.blocks, 2) // destinations 4 and 5
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.array.Add(2, disk.Cheetah73); err != nil {
		t.Fatal(err)
	}
	exec, err := NewExecutor(plan, blockIDOf, h.array.Disk)
	if err != nil {
		t.Fatal(err)
	}
	// Give budget only to disk 5 (and sources): moves to 4 must wait, moves
	// to 5 must proceed.
	budget := []int{1000, 1000, 1000, 1000, 0, 1000}
	moved, err := exec.Step(budget)
	if err != nil {
		t.Fatal(err)
	}
	to5 := 0
	for _, m := range plan.Moves {
		if m.To == 5 {
			to5++
		}
	}
	if moved != to5 {
		t.Fatalf("moved %d, want all %d moves destined to disk 5", moved, to5)
	}
	if exec.Remaining() != len(plan.Moves)-to5 {
		t.Fatalf("remaining %d, want %d", exec.Remaining(), len(plan.Moves)-to5)
	}
}

func TestPendingSource(t *testing.T) {
	h := newHarness(t, 4, 5, 100)
	plan, err := PlanAdd(h.strat, h.blocks, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) == 0 {
		t.Fatal("plan has no moves")
	}
	if _, err := h.array.Add(1, disk.Cheetah73); err != nil {
		t.Fatal(err)
	}
	exec, err := NewExecutor(plan, blockIDOf, h.array.Disk)
	if err != nil {
		t.Fatal(err)
	}
	m0 := plan.Moves[0]
	if from, pending := exec.PendingSource(m0.Block); !pending || from != m0.From {
		t.Fatalf("PendingSource = %d %v, want %d true", from, pending, m0.From)
	}
	// A block with no move is not pending.
	var still placement.BlockRef
	found := false
	moveSet := make(map[placement.BlockRef]bool)
	for _, m := range plan.Moves {
		moveSet[m.Block] = true
	}
	for _, b := range h.blocks {
		if !moveSet[b] {
			still, found = b, true
			break
		}
	}
	if !found {
		t.Fatal("no staying block found")
	}
	if _, pending := exec.PendingSource(still); pending {
		t.Fatal("staying block reported pending")
	}
	if _, err := exec.ExecuteAll(); err != nil {
		t.Fatal(err)
	}
	if _, pending := exec.PendingSource(m0.Block); pending {
		t.Fatal("executed move still reported pending")
	}
}

func TestExecutorValidation(t *testing.T) {
	if _, err := NewExecutor(nil, blockIDOf, nil); err == nil {
		t.Error("nil plan accepted")
	}
	plan := &Plan{}
	if _, err := NewExecutor(plan, nil, func(int) (*disk.Disk, error) { return nil, nil }); err == nil {
		t.Error("nil blockID accepted")
	}
	if _, err := NewExecutor(plan, blockIDOf, nil); err == nil {
		t.Error("nil diskOf accepted")
	}
}

func TestStepBudgetTooShort(t *testing.T) {
	h := newHarness(t, 4, 2, 50)
	plan, err := PlanAdd(h.strat, h.blocks, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.array.Add(1, disk.Cheetah73); err != nil {
		t.Fatal(err)
	}
	exec, err := NewExecutor(plan, blockIDOf, h.array.Disk)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Step([]int{5, 5}); err == nil {
		t.Fatal("short budget accepted")
	}
	// The executor must still be able to finish afterwards.
	if _, err := exec.ExecuteAll(); err != nil {
		t.Fatal(err)
	}
	if !exec.Done() {
		t.Fatal("executor not done after recovery")
	}
	h.verify(t)
}

func TestMoveFractionEmptyPlan(t *testing.T) {
	p := &Plan{NBefore: 4, NAfter: 5}
	if p.MoveFraction() != 0 {
		t.Fatal("empty plan has nonzero move fraction")
	}
	if p.OptimalFraction() != 0.2 {
		t.Fatalf("optimal fraction = %g", p.OptimalFraction())
	}
}

// TestExecuteAllTwice ensures idempotence of completion.
func TestExecuteAllTwice(t *testing.T) {
	h := newHarness(t, 4, 2, 50)
	plan, err := PlanAdd(h.strat, h.blocks, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.array.Add(1, disk.Cheetah73); err != nil {
		t.Fatal(err)
	}
	exec, _ := NewExecutor(plan, blockIDOf, h.array.Disk)
	if _, err := exec.ExecuteAll(); err != nil {
		t.Fatal(err)
	}
	n, err := exec.ExecuteAll()
	if err != nil || n != 0 {
		t.Fatalf("second ExecuteAll = %d, %v", n, err)
	}
}

func TestExtractBySource(t *testing.T) {
	h := newHarness(t, 6, 10, 200)
	plan, err := PlanAdd(h.strat, h.blocks, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.array.Add(2, disk.Cheetah73); err != nil {
		t.Fatal(err)
	}
	exec, err := NewExecutor(plan, blockIDOf, h.array.Disk)
	if err != nil {
		t.Fatal(err)
	}
	// Drain part of the plan so the extraction runs against a mid-flight
	// executor, like a failure landing during a reorganization.
	budget := make([]int, h.array.N())
	for i := range budget {
		budget[i] = 5
	}
	if _, err := exec.Step(budget); err != nil {
		t.Fatal(err)
	}
	wantFrom2 := 0
	for _, m := range plan.Moves {
		if from, pending := exec.PendingSource(m.Block); pending && from == 2 {
			wantFrom2++
		}
	}
	before := exec.Remaining()

	extracted := exec.ExtractBySource(2)
	if len(extracted) != wantFrom2 {
		t.Fatalf("extracted %d moves from disk 2, PendingSource said %d", len(extracted), wantFrom2)
	}
	for _, m := range extracted {
		if m.From != 2 {
			t.Fatalf("extracted move from disk %d: %+v", m.From, m)
		}
	}
	if exec.Remaining() != before-len(extracted) {
		t.Fatalf("Remaining = %d after extracting %d of %d", exec.Remaining(), len(extracted), before)
	}
	for _, m := range extracted {
		if _, pending := exec.PendingSource(m.Block); pending {
			t.Fatalf("extracted move still pending: %+v", m)
		}
	}
	// Idempotent: a second extraction finds nothing.
	if again := exec.ExtractBySource(2); len(again) != 0 {
		t.Fatalf("second extraction returned %d moves", len(again))
	}
	// The rest of the plan still drains normally.
	if _, err := exec.ExecuteAll(); err != nil {
		t.Fatal(err)
	}
	if !exec.Done() {
		t.Fatalf("executor not done; %d remaining", exec.Remaining())
	}
	// Extracted moves are exactly the unfinished work: applying them by hand
	// restores full placement-conformance.
	for _, m := range extracted {
		src, err := h.array.Disk(m.From)
		if err != nil {
			t.Fatal(err)
		}
		dst, err := h.array.Disk(m.To)
		if err != nil {
			t.Fatal(err)
		}
		if err := src.Remove(blockIDOf(m.Block)); err != nil {
			t.Fatal(err)
		}
		if err := dst.Store(blockIDOf(m.Block)); err != nil {
			t.Fatal(err)
		}
	}
	h.verify(t)
}

func TestExtractBySourceNoMatches(t *testing.T) {
	h := newHarness(t, 4, 4, 100)
	plan, err := PlanAdd(h.strat, h.blocks, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.array.Add(1, disk.Cheetah73); err != nil {
		t.Fatal(err)
	}
	exec, err := NewExecutor(plan, blockIDOf, h.array.Disk)
	if err != nil {
		t.Fatal(err)
	}
	// The added disk (index 4) sources no moves in an add plan.
	if got := exec.ExtractBySource(4); len(got) != 0 {
		t.Fatalf("extraction from a pure-target disk returned %d moves", len(got))
	}
	if exec.Remaining() != len(plan.Moves) {
		t.Fatalf("no-op extraction changed Remaining to %d", exec.Remaining())
	}
}
