// Package schedule implements round-based disk scheduling for continuous
// media retrieval: a calibrated seek-distance model, elevator (SCAN and
// C-SCAN) request ordering, and per-round service-time computation.
//
// The cm package's admission arithmetic uses a fixed per-round block budget
// derived from the disk profile's *average* seek. That is the standard
// simplification, and this package is what justifies it: scheduling each
// round's requests with SCAN amortizes seeks far below the average-seek
// model's prediction (each sweep crosses the surface once no matter how
// many requests it serves), so the fixed budget is conservative. Experiment
// E10 regenerates that comparison.
//
// Block positions are derived, not stored: a block's logical block address
// is a hash of its identity within the disk's capacity, modeling the
// fragmented allocation of a long-lived server and keeping the substrate
// stateless (consistent with SCADDAR's no-directory philosophy).
package schedule

import (
	"fmt"
	"math"
	"sort"
	"time"

	"scaddar/internal/disk"
	"scaddar/internal/prng"
)

// Request is one block read positioned on the disk surface.
type Request struct {
	Block disk.BlockID
	// LBA is the logical block address in [0, capacity).
	LBA int64
}

// LBAFor derives a block's logical block address on a disk with the given
// capacity in blocks. The address is a hash of the block identity: uniform
// across the surface and stable without per-block state.
func LBAFor(b disk.BlockID, capacityBlocks int64) (int64, error) {
	if capacityBlocks < 1 {
		return 0, fmt.Errorf("schedule: capacity %d blocks", capacityBlocks)
	}
	return int64(prng.Hash64(uint64(b)) % uint64(capacityBlocks)), nil
}

// SeekModel maps a seek distance (in blocks of LBA space, a proxy for
// cylinders) to a seek time with the classic square-root profile:
//
//	t(d) = Min + (Max-Min) * sqrt(d/Span)    for d > 0; t(0) = 0.
type SeekModel struct {
	// Min is the single-track seek time.
	Min time.Duration
	// Max is the full-stroke seek time.
	Max time.Duration
	// Span is the LBA distance of a full stroke.
	Span int64
}

// Calibrate builds a SeekModel for a profile and block size such that the
// expected seek over uniformly random request pairs equals the profile's
// average seek. With d = |x-y| for uniform x, y, E[sqrt(d/Span)] = 8/15, so
// Max solves avg = Min + (Max-Min)*8/15; Min is taken as a third of the
// average, the usual single-track/average ratio class.
func Calibrate(p disk.Profile, blockBytes int64) (*SeekModel, error) {
	if p.AvgSeek <= 0 {
		return nil, fmt.Errorf("schedule: profile %q has no average seek", p.Name)
	}
	span := p.CapacityBlocks(blockBytes)
	if span < 2 {
		return nil, fmt.Errorf("schedule: profile %q holds %d blocks of %d bytes", p.Name, span, blockBytes)
	}
	min := p.AvgSeek / 3
	max := min + time.Duration(float64(p.AvgSeek-min)*15.0/8.0)
	return &SeekModel{Min: min, Max: max, Span: int64(span)}, nil
}

// Time returns the seek time for an LBA distance.
func (m *SeekModel) Time(distance int64) time.Duration {
	if distance < 0 {
		distance = -distance
	}
	if distance == 0 {
		return 0
	}
	if distance > m.Span {
		distance = m.Span
	}
	frac := math.Sqrt(float64(distance) / float64(m.Span))
	return m.Min + time.Duration(float64(m.Max-m.Min)*frac)
}

// Policy orders a round's requests for service.
type Policy int

// Scheduling policies.
const (
	// FCFS serves requests in arrival order.
	FCFS Policy = iota
	// SCAN sweeps the head across the surface, serving requests in LBA
	// order from the current position to the far edge, then the remainder
	// on the way back (the elevator algorithm).
	SCAN
	// CSCAN sweeps in one direction only, returning to the start edge
	// with a single full-stroke seek (uniform worst-case latency).
	CSCAN
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case FCFS:
		return "fcfs"
	case SCAN:
		return "scan"
	case CSCAN:
		return "cscan"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Order returns the service order of requests under a policy, starting from
// the given head position. The input is not modified.
func Order(policy Policy, requests []Request, head int64) ([]Request, error) {
	out := make([]Request, len(requests))
	copy(out, requests)
	switch policy {
	case FCFS:
		return out, nil
	case SCAN:
		sort.Slice(out, func(i, j int) bool { return out[i].LBA < out[j].LBA })
		// Serve ahead of the head first (upward sweep), then the ones
		// behind it in descending order (downward sweep).
		split := sort.Search(len(out), func(i int) bool { return out[i].LBA >= head })
		ordered := make([]Request, 0, len(out))
		ordered = append(ordered, out[split:]...)
		for i := split - 1; i >= 0; i-- {
			ordered = append(ordered, out[i])
		}
		return ordered, nil
	case CSCAN:
		sort.Slice(out, func(i, j int) bool { return out[i].LBA < out[j].LBA })
		split := sort.Search(len(out), func(i int) bool { return out[i].LBA >= head })
		ordered := make([]Request, 0, len(out))
		ordered = append(ordered, out[split:]...)
		ordered = append(ordered, out[:split]...)
		return ordered, nil
	default:
		return nil, fmt.Errorf("schedule: unknown policy %d", int(policy))
	}
}

// RoundCost is the outcome of servicing one round's requests.
type RoundCost struct {
	// Total is the full service time of the round.
	Total time.Duration
	// SeekTotal is the portion spent seeking.
	SeekTotal time.Duration
	// Head is the final head position.
	Head int64
}

// ServiceTime computes the time to serve the requests in the given order:
// per request, a seek from the previous position plus half-rotation latency
// plus transfer. CSCAN's return stroke is charged when the order wraps
// (a request behind the head during a one-directional sweep).
func ServiceTime(m *SeekModel, p disk.Profile, blockBytes int64, ordered []Request, head int64, policy Policy) RoundCost {
	rot := p.RotationalLatency()
	transfer := time.Duration(0)
	if p.TransferBytesPerSec > 0 {
		transfer = time.Duration(float64(blockBytes) / float64(p.TransferBytesPerSec) * float64(time.Second))
	}
	cost := RoundCost{Head: head}
	pos := head
	upward := true
	for _, r := range ordered {
		var seek time.Duration
		if policy == CSCAN && r.LBA < pos && upward {
			// Return stroke: full sweep back plus the approach.
			seek = m.Time(m.Span) + m.Time(r.LBA)
			upward = false
		} else {
			seek = m.Time(r.LBA - pos)
		}
		cost.SeekTotal += seek
		cost.Total += seek + rot + transfer
		pos = r.LBA
	}
	cost.Head = pos
	return cost
}

// RoundBudget reports how many uniformly random requests fit into a round
// under a policy, by direct simulation with the given seed: it grows the
// request count until the round's service time exceeds the round length,
// averaging over trials. This is the workload-aware counterpart of
// disk.Profile.BlocksPerRound.
func RoundBudget(m *SeekModel, p disk.Profile, blockBytes int64, round time.Duration, policy Policy, trials int, seed uint64) (int, error) {
	if trials < 1 {
		return 0, fmt.Errorf("schedule: need at least one trial")
	}
	src := prng.NewSplitMix64(seed)
	fits := func(k int) bool {
		over := 0
		for trial := 0; trial < trials; trial++ {
			reqs := make([]Request, k)
			for i := range reqs {
				reqs[i] = Request{Block: disk.BlockID(src.Next()), LBA: int64(src.Next() % uint64(m.Span))}
			}
			head := int64(src.Next() % uint64(m.Span))
			ordered, err := Order(policy, reqs, head)
			if err != nil {
				return false
			}
			if ServiceTime(m, p, blockBytes, ordered, head, policy).Total > round {
				over++
			}
		}
		// A budget "fits" when at most 5% of rounds overrun.
		return over*20 <= trials
	}
	k := 1
	if !fits(k) {
		return 0, nil
	}
	for fits(k * 2) {
		k *= 2
		if k > 1<<20 {
			return 0, fmt.Errorf("schedule: budget diverged")
		}
	}
	lo, hi := k, k*2
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if fits(mid) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, nil
}
