package schedule

import (
	"testing"
	"testing/quick"
	"time"

	"scaddar/internal/disk"
	"scaddar/internal/prng"
)

const testBlock = 256 << 10

func testModel(t *testing.T) *SeekModel {
	t.Helper()
	m, err := Calibrate(disk.Cheetah73, testBlock)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestLBAFor(t *testing.T) {
	if _, err := LBAFor(1, 0); err == nil {
		t.Error("zero capacity accepted")
	}
	const capacity = 100000
	seen := make(map[int64]int)
	for b := disk.BlockID(0); b < 20000; b++ {
		lba, err := LBAFor(b, capacity)
		if err != nil {
			t.Fatal(err)
		}
		if lba < 0 || lba >= capacity {
			t.Fatalf("LBA %d out of range", lba)
		}
		seen[lba]++
	}
	// Deterministic.
	a, _ := LBAFor(42, capacity)
	b, _ := LBAFor(42, capacity)
	if a != b {
		t.Fatal("LBAFor not deterministic")
	}
}

func TestCalibrateValidation(t *testing.T) {
	if _, err := Calibrate(disk.Profile{}, testBlock); err == nil {
		t.Error("zero-seek profile accepted")
	}
	tiny := disk.Cheetah73
	tiny.CapacityBytes = 100
	if _, err := Calibrate(tiny, testBlock); err == nil {
		t.Error("sub-block capacity accepted")
	}
}

// TestCalibrateMeanSeek checks the calibration contract: the expected seek
// over uniformly random pairs reproduces the profile's average seek.
func TestCalibrateMeanSeek(t *testing.T) {
	m := testModel(t)
	src := prng.NewSplitMix64(11)
	var total time.Duration
	const samples = 200000
	for i := 0; i < samples; i++ {
		a := int64(src.Next() % uint64(m.Span))
		b := int64(src.Next() % uint64(m.Span))
		total += m.Time(a - b)
	}
	mean := total / samples
	want := disk.Cheetah73.AvgSeek
	if mean < want*95/100 || mean > want*105/100 {
		t.Fatalf("mean calibrated seek %v, want ~%v", mean, want)
	}
}

func TestSeekModelShape(t *testing.T) {
	m := testModel(t)
	if m.Time(0) != 0 {
		t.Error("zero-distance seek not free")
	}
	if m.Time(-5) != m.Time(5) {
		t.Error("seek not symmetric")
	}
	if m.Time(1) < m.Min {
		t.Error("short seek below single-track time")
	}
	if m.Time(m.Span) != m.Max {
		t.Errorf("full stroke = %v, want Max %v", m.Time(m.Span), m.Max)
	}
	if m.Time(m.Span*2) != m.Max {
		t.Error("beyond-span seek not clamped")
	}
	if m.Time(m.Span/4) >= m.Time(m.Span/2) {
		t.Error("seek time not increasing")
	}
}

func TestOrderFCFS(t *testing.T) {
	reqs := []Request{{1, 500}, {2, 100}, {3, 900}}
	got, err := Order(FCFS, reqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		if got[i] != reqs[i] {
			t.Fatal("FCFS reordered requests")
		}
	}
}

func TestOrderSCAN(t *testing.T) {
	reqs := []Request{{1, 500}, {2, 100}, {3, 900}, {4, 300}}
	got, err := Order(SCAN, reqs, 400)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{500, 900, 300, 100} // up from 400, then down
	for i, w := range want {
		if got[i].LBA != w {
			t.Fatalf("SCAN order = %v, want LBAs %v", got, want)
		}
	}
	// Input must not be mutated.
	if reqs[0].LBA != 500 || reqs[1].LBA != 100 {
		t.Fatal("Order mutated its input")
	}
}

func TestOrderCSCAN(t *testing.T) {
	reqs := []Request{{1, 500}, {2, 100}, {3, 900}, {4, 300}}
	got, err := Order(CSCAN, reqs, 400)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{500, 900, 100, 300} // up from 400, wrap, up again
	for i, w := range want {
		if got[i].LBA != w {
			t.Fatalf("CSCAN order = %v, want LBAs %v", got, want)
		}
	}
}

func TestOrderUnknownPolicy(t *testing.T) {
	if _, err := Order(Policy(9), nil, 0); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestPolicyString(t *testing.T) {
	if FCFS.String() != "fcfs" || SCAN.String() != "scan" || CSCAN.String() != "cscan" {
		t.Fatal("policy names wrong")
	}
	if Policy(9).String() == "" {
		t.Fatal("unknown policy has empty name")
	}
}

// TestSCANBeatsFCFS is the classic scheduling result: for the same random
// request set, the SCAN sweep spends far less time seeking than FCFS.
func TestSCANBeatsFCFS(t *testing.T) {
	m := testModel(t)
	src := prng.NewSplitMix64(3)
	var fcfsTotal, scanTotal time.Duration
	for trial := 0; trial < 50; trial++ {
		reqs := make([]Request, 64)
		for i := range reqs {
			reqs[i] = Request{Block: disk.BlockID(i), LBA: int64(src.Next() % uint64(m.Span))}
		}
		head := int64(src.Next() % uint64(m.Span))
		f, _ := Order(FCFS, reqs, head)
		s, _ := Order(SCAN, reqs, head)
		fcfsTotal += ServiceTime(m, disk.Cheetah73, testBlock, f, head, FCFS).SeekTotal
		scanTotal += ServiceTime(m, disk.Cheetah73, testBlock, s, head, SCAN).SeekTotal
	}
	// With the sqrt seek curve and 64 requests per sweep, SCAN's adjacent
	// gaps cost ~Min + 0.125·(Max−Min) each, roughly half the FCFS average
	// seek.
	if scanTotal*9 > fcfsTotal*5 {
		t.Fatalf("SCAN seeks %v not well below FCFS %v", scanTotal, fcfsTotal)
	}
}

func TestServiceTimeComposition(t *testing.T) {
	m := testModel(t)
	reqs := []Request{{1, 1000}, {2, 2000}}
	cost := ServiceTime(m, disk.Cheetah73, testBlock, reqs, 1000, SCAN)
	rot := disk.Cheetah73.RotationalLatency()
	transfer := time.Duration(float64(testBlock) / float64(disk.Cheetah73.TransferBytesPerSec) * float64(time.Second))
	want := m.Time(0) + m.Time(1000) + 2*(rot+transfer)
	if cost.Total != want {
		t.Fatalf("total %v, want %v", cost.Total, want)
	}
	if cost.Head != 2000 {
		t.Fatalf("final head %d, want 2000", cost.Head)
	}
	if cost.SeekTotal != m.Time(1000) {
		t.Fatalf("seek total %v, want %v", cost.SeekTotal, m.Time(1000))
	}
}

// TestRoundBudgetSCANAboveFixedModel: the workload-aware SCAN budget must
// exceed the fixed average-seek estimate (the fixed model is conservative),
// and FCFS must sit at or below SCAN.
func TestRoundBudgetSCANAboveFixedModel(t *testing.T) {
	m := testModel(t)
	fixed := disk.Cheetah73.BlocksPerRound(time.Second, testBlock)
	scan, err := RoundBudget(m, disk.Cheetah73, testBlock, time.Second, SCAN, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	fcfs, err := RoundBudget(m, disk.Cheetah73, testBlock, time.Second, FCFS, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if scan <= fixed {
		t.Fatalf("SCAN budget %d not above fixed model %d", scan, fixed)
	}
	if fcfs > scan {
		t.Fatalf("FCFS budget %d above SCAN %d", fcfs, scan)
	}
}

func TestRoundBudgetValidation(t *testing.T) {
	m := testModel(t)
	if _, err := RoundBudget(m, disk.Cheetah73, testBlock, time.Second, SCAN, 0, 1); err == nil {
		t.Fatal("zero trials accepted")
	}
	// A round too short for anything yields budget 0.
	got, err := RoundBudget(m, disk.Cheetah73, testBlock, time.Microsecond, SCAN, 5, 1)
	if err != nil || got != 0 {
		t.Fatalf("starved round budget = %d, %v", got, err)
	}
}

// TestQuickSCANVisitsAll property-tests that every policy serves every
// request exactly once.
func TestQuickSCANVisitsAll(t *testing.T) {
	f := func(lbasRaw []uint16, headRaw uint16) bool {
		if len(lbasRaw) == 0 {
			return true
		}
		reqs := make([]Request, len(lbasRaw))
		for i, l := range lbasRaw {
			reqs[i] = Request{Block: disk.BlockID(i), LBA: int64(l)}
		}
		for _, policy := range []Policy{FCFS, SCAN, CSCAN} {
			out, err := Order(policy, reqs, int64(headRaw))
			if err != nil || len(out) != len(reqs) {
				return false
			}
			seen := make(map[disk.BlockID]bool)
			for _, r := range out {
				if seen[r.Block] {
					return false
				}
				seen[r.Block] = true
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
