package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Fatalf("N = %d, want 8", s.N)
	}
	if !almost(s.Mean, 5, 1e-12) {
		t.Errorf("Mean = %g, want 5", s.Mean)
	}
	if !almost(s.StdPop, 2, 1e-12) {
		t.Errorf("StdPop = %g, want 2", s.StdPop)
	}
	if !almost(s.Std, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("Std = %g, want %g", s.Std, math.Sqrt(32.0/7.0))
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %g/%g, want 2/9", s.Min, s.Max)
	}
	if s.Sum != 40 {
		t.Errorf("Sum = %g, want 40", s.Sum)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3})
	if s.Mean != 3 || s.Std != 0 || s.StdPop != 0 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestCoV(t *testing.T) {
	if got := CoV([]float64{5, 5, 5}); got != 0 {
		t.Errorf("constant CoV = %g, want 0", got)
	}
	// mean 5, population std 2 -> CoV 0.4
	if got := CoV([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almost(got, 0.4, 1e-12) {
		t.Errorf("CoV = %g, want 0.4", got)
	}
	if got := CoV(nil); got != 0 {
		t.Errorf("empty CoV = %g, want 0", got)
	}
	if got := CoV([]float64{-1, 1}); !math.IsInf(got, 1) {
		t.Errorf("zero-mean CoV = %g, want +Inf", got)
	}
	if got := CoV([]float64{0, 0}); got != 0 {
		t.Errorf("all-zero CoV = %g, want 0", got)
	}
}

func TestCoVInts(t *testing.T) {
	if got, want := CoVInts([]int{2, 4, 4, 4, 5, 5, 7, 9}), 0.4; !almost(got, want, 1e-12) {
		t.Errorf("CoVInts = %g, want %g", got, want)
	}
}

func TestUnfairness(t *testing.T) {
	if _, err := Unfairness(nil); err == nil {
		t.Error("empty unfairness did not error")
	}
	u, err := Unfairness([]float64{10, 10, 10})
	if err != nil || u != 0 {
		t.Errorf("uniform unfairness = %g, %v", u, err)
	}
	u, err = Unfairness([]float64{10, 12})
	if err != nil || !almost(u, 0.2, 1e-12) {
		t.Errorf("unfairness = %g, want 0.2", u)
	}
	u, err = Unfairness([]float64{0, 5})
	if err != nil || !math.IsInf(u, 1) {
		t.Errorf("zero-min unfairness = %g, want +Inf", u)
	}
}

func TestUnfairnessInts(t *testing.T) {
	u, err := UnfairnessInts([]int{100, 110})
	if err != nil || !almost(u, 0.1, 1e-12) {
		t.Errorf("UnfairnessInts = %g, want 0.1", u)
	}
}

// TestChiSquareSurvivalTabulated checks against standard chi-square table
// values: the 5% critical point for several degrees of freedom.
func TestChiSquareSurvivalTabulated(t *testing.T) {
	cases := []struct {
		dof  float64
		x    float64
		want float64
	}{
		{1, 3.841, 0.05},
		{2, 5.991, 0.05},
		{5, 11.070, 0.05},
		{10, 18.307, 0.05},
		{30, 43.773, 0.05},
		{1, 6.635, 0.01},
		{10, 23.209, 0.01},
	}
	for _, c := range cases {
		got := ChiSquareSurvival(c.x, c.dof)
		if !almost(got, c.want, 5e-4) {
			t.Errorf("ChiSquareSurvival(%g, dof=%g) = %g, want ~%g", c.x, c.dof, got, c.want)
		}
	}
}

func TestChiSquareSurvivalEdges(t *testing.T) {
	if got := ChiSquareSurvival(0, 5); got != 1 {
		t.Errorf("survival at 0 = %g, want 1", got)
	}
	if got := ChiSquareSurvival(-3, 5); got != 1 {
		t.Errorf("survival at -3 = %g, want 1", got)
	}
	if got := ChiSquareSurvival(1e6, 5); got > 1e-10 {
		t.Errorf("survival at 1e6 = %g, want ~0", got)
	}
}

func TestChiSquareUniform(t *testing.T) {
	// Perfectly uniform counts: statistic 0, p-value 1.
	stat, dof, p, err := ChiSquareUniform([]int{100, 100, 100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if stat != 0 || dof != 3 || p != 1 {
		t.Errorf("uniform: stat=%g dof=%d p=%g", stat, dof, p)
	}
	// Extremely skewed counts: tiny p-value.
	_, _, p, err = ChiSquareUniform([]int{1000, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-10 {
		t.Errorf("skewed p = %g, want ~0", p)
	}
}

func TestChiSquareUniformErrors(t *testing.T) {
	if _, _, _, err := ChiSquareUniform([]int{5}); err == nil {
		t.Error("single category accepted")
	}
	if _, _, _, err := ChiSquareUniform([]int{0, 0}); err == nil {
		t.Error("empty sample accepted")
	}
	if _, _, _, err := ChiSquareUniform([]int{3, -1}); err == nil {
		t.Error("negative count accepted")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 9.999, 10, 11} {
		h.Add(x)
	}
	if h.Under != 1 {
		t.Errorf("Under = %d, want 1", h.Under)
	}
	if h.Over != 2 {
		t.Errorf("Over = %d, want 2", h.Over)
	}
	want := []int{2, 1, 0, 0, 1}
	for i, c := range want {
		if h.Counts[i] != c {
			t.Errorf("bin %d = %d, want %d", i, h.Counts[i], c)
		}
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d, want 7", h.Total())
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("zero bins accepted")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("lo == hi accepted")
	}
	if _, err := NewHistogram(9, 2, 3); err == nil {
		t.Error("lo > hi accepted")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	q, err := Quantile(xs, 0)
	if err != nil || q != 1 {
		t.Errorf("q0 = %g, want 1", q)
	}
	q, err = Quantile(xs, 1)
	if err != nil || q != 9 {
		t.Errorf("q1 = %g, want 9", q)
	}
	q, err = Quantile(xs, 0.5)
	if err != nil || !almost(q, 3.5, 1e-12) {
		t.Errorf("median = %g, want 3.5", q)
	}
	// Input must not be mutated.
	if xs[0] != 3 || xs[7] != 6 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("empty quantile accepted")
	}
	if _, err := Quantile([]float64{1}, -0.1); err == nil {
		t.Error("negative level accepted")
	}
	if _, err := Quantile([]float64{1}, 1.1); err == nil {
		t.Error("level > 1 accepted")
	}
	if q, err := Quantile([]float64{7}, 0.3); err != nil || q != 7 {
		t.Errorf("single-sample quantile = %g, %v", q, err)
	}
}

// TestQuickCoVScaleInvariant property-tests that CoV is invariant under
// positive scaling of the sample.
func TestQuickCoVScaleInvariant(t *testing.T) {
	f := func(raw []uint8, scaleRaw uint8) bool {
		if len(raw) < 2 {
			return true
		}
		scale := float64(scaleRaw%100) + 1
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v) + 1 // keep the mean positive
			ys[i] = xs[i] * scale
		}
		return almost(CoV(xs), CoV(ys), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickUnfairnessNonNegative property-tests that unfairness of positive
// loads is finite and non-negative.
func TestQuickUnfairnessNonNegative(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v) + 1
		}
		u, err := Unfairness(xs)
		return err == nil && u >= 0 && !math.IsInf(u, 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
