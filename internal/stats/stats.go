// Package stats implements the descriptive statistics and uniformity tests
// used by the SCADDAR evaluation: the coefficient of variation of per-disk
// load (the paper's Section 5 metric), the unfairness coefficient of a load
// distribution (Section 4.3), chi-square goodness-of-fit tests against the
// uniform distribution, and simple fixed-width histograms.
//
// Everything is implemented from scratch on top of the math package so the
// library has no dependencies beyond the standard library.
package stats

import (
	"errors"
	"math"
	"sort"
)

// Summary holds one-pass descriptive statistics of a sample.
type Summary struct {
	N      int     // number of observations
	Mean   float64 // arithmetic mean
	Std    float64 // sample standard deviation (n-1 denominator)
	StdPop float64 // population standard deviation (n denominator)
	Min    float64
	Max    float64
	Sum    float64
}

// Summarize computes descriptive statistics of xs. It returns a zero Summary
// for an empty sample. The variance is computed with Welford's algorithm for
// numerical stability.
func Summarize(xs []float64) Summary {
	var s Summary
	if len(xs) == 0 {
		return s
	}
	s.N = len(xs)
	s.Min = xs[0]
	s.Max = xs[0]
	var mean, m2 float64
	for i, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		delta := x - mean
		mean += delta / float64(i+1)
		m2 += delta * (x - mean)
	}
	s.Mean = mean
	s.StdPop = math.Sqrt(m2 / float64(s.N))
	if s.N > 1 {
		s.Std = math.Sqrt(m2 / float64(s.N-1))
	}
	return s
}

// CoV returns the coefficient of variation (population standard deviation
// divided by the mean) of xs — the load-balance metric of the paper's
// Section 5: "the standard deviation divided by the average number of blocks
// across all disks". It returns 0 for an empty sample and +Inf when the mean
// is zero but the sample is not identically zero.
func CoV(xs []float64) float64 {
	s := Summarize(xs)
	if s.N == 0 {
		return 0
	}
	if s.Mean == 0 {
		if s.StdPop == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return s.StdPop / s.Mean
}

// CoVInts is CoV for integer counts, the common case of blocks-per-disk.
func CoVInts(counts []int) float64 {
	xs := make([]float64, len(counts))
	for i, c := range counts {
		xs[i] = float64(c)
	}
	return CoV(xs)
}

// Unfairness returns the paper's unfairness coefficient of a load vector:
// (largest load / smallest load) - 1. The paper defines it over *expected*
// loads; applied to an empirical load vector it is the natural plug-in
// estimate. It returns +Inf if the smallest load is zero while the largest
// is not, and an error for an empty vector.
func Unfairness(loads []float64) (float64, error) {
	if len(loads) == 0 {
		return 0, errors.New("stats: unfairness of empty load vector")
	}
	min, max := loads[0], loads[0]
	for _, l := range loads[1:] {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	if min == max {
		return 0, nil
	}
	if min == 0 {
		return math.Inf(1), nil
	}
	return max/min - 1, nil
}

// UnfairnessInts is Unfairness for integer counts.
func UnfairnessInts(counts []int) (float64, error) {
	xs := make([]float64, len(counts))
	for i, c := range counts {
		xs[i] = float64(c)
	}
	return Unfairness(xs)
}

// ChiSquareUniform tests observed category counts against the uniform
// distribution over len(counts) categories. It returns the chi-square
// statistic, the degrees of freedom, and the p-value (probability of a
// statistic at least this large under uniformity). At least two categories
// and a positive total are required.
func ChiSquareUniform(counts []int) (stat float64, dof int, p float64, err error) {
	k := len(counts)
	if k < 2 {
		return 0, 0, 0, errors.New("stats: chi-square needs at least 2 categories")
	}
	total := 0
	for _, c := range counts {
		if c < 0 {
			return 0, 0, 0, errors.New("stats: negative count")
		}
		total += c
	}
	if total == 0 {
		return 0, 0, 0, errors.New("stats: chi-square of empty sample")
	}
	expected := float64(total) / float64(k)
	for _, c := range counts {
		d := float64(c) - expected
		stat += d * d / expected
	}
	dof = k - 1
	p = ChiSquareSurvival(stat, float64(dof))
	return stat, dof, p, nil
}

// ChiSquareSurvival returns P(X >= x) for a chi-square random variable with
// the given degrees of freedom, i.e. the upper tail. It is computed through
// the regularized incomplete gamma function Q(dof/2, x/2).
func ChiSquareSurvival(x, dof float64) float64 {
	if x <= 0 {
		return 1
	}
	return regularizedGammaQ(dof/2, x/2)
}

// regularizedGammaQ computes Q(a, x) = Γ(a, x)/Γ(a), the upper regularized
// incomplete gamma function, with the standard series / continued-fraction
// split (Numerical Recipes §6.2).
func regularizedGammaQ(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 1
	}
	if x < a+1 {
		return 1 - gammaPSeries(a, x)
	}
	return gammaQContinuedFraction(a, x)
}

// gammaPSeries evaluates P(a,x) by its power series; accurate for x < a+1.
func gammaPSeries(a, x float64) float64 {
	const (
		maxIter = 500
		eps     = 1e-14
	)
	lgA, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lgA)
}

// gammaQContinuedFraction evaluates Q(a,x) by Lentz's continued fraction;
// accurate for x >= a+1.
func gammaQContinuedFraction(a, x float64) float64 {
	const (
		maxIter = 500
		eps     = 1e-14
		fpmin   = 1e-300
	)
	lgA, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lgA) * h
}

// Histogram is a fixed-width histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi   float64
	Counts   []int
	Under    int // observations below Lo
	Over     int // observations at or above Hi
	binWidth float64
}

// NewHistogram creates a histogram with the given bounds and bin count.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, errors.New("stats: histogram needs at least one bin")
	}
	if !(lo < hi) {
		return nil, errors.New("stats: histogram bounds must satisfy lo < hi")
	}
	return &Histogram{
		Lo:       lo,
		Hi:       hi,
		Counts:   make([]int, bins),
		binWidth: (hi - lo) / float64(bins),
	}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / h.binWidth)
		if i >= len(h.Counts) { // guard against floating-point edge at Hi
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Total returns the number of observations recorded, including out-of-range
// ones.
func (h *Histogram) Total() int {
	n := h.Under + h.Over
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Quantile returns the q-th sample quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7, the default of R and
// NumPy). It reports an error for an empty sample or q outside [0,1].
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("stats: quantile of empty sample")
	}
	if q < 0 || q > 1 {
		return 0, errors.New("stats: quantile level outside [0,1]")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}
