package workload

import (
	"math"
	"testing"
	"time"

	"scaddar/internal/prng"
)

func TestObjectDuration(t *testing.T) {
	o := Object{Blocks: 100, BlockBytes: 256 << 10, BitrateBitsPerSec: 4 << 20}
	// 100 * 256KiB * 8 bits / 4Mib/s = 50 s.
	if got := o.Duration(); got != 50*time.Second {
		t.Errorf("duration = %v, want 50s", got)
	}
	if got := (Object{Blocks: 1, BlockBytes: 1}).Duration(); got != 0 {
		t.Errorf("zero-bitrate duration = %v, want 0", got)
	}
}

func TestLibraryValidation(t *testing.T) {
	cfg := DefaultLibraryConfig()
	cfg.Objects = 0
	if _, err := Library(cfg); err == nil {
		t.Error("empty library accepted")
	}
	cfg = DefaultLibraryConfig()
	cfg.MinBlocks = 10
	cfg.MaxBlocks = 5
	if _, err := Library(cfg); err == nil {
		t.Error("inverted block range accepted")
	}
	cfg = DefaultLibraryConfig()
	cfg.BlockBytes = 0
	if _, err := Library(cfg); err == nil {
		t.Error("zero block size accepted")
	}
}

func TestLibraryReproducibleAndInRange(t *testing.T) {
	cfg := DefaultLibraryConfig()
	a, err := Library(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Library(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != cfg.Objects {
		t.Fatalf("library size %d, want %d", len(a), cfg.Objects)
	}
	seeds := make(map[uint64]bool)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("library not reproducible at object %d", i)
		}
		if a[i].Blocks < cfg.MinBlocks || a[i].Blocks > cfg.MaxBlocks {
			t.Fatalf("object %d has %d blocks, outside [%d,%d]", i, a[i].Blocks, cfg.MinBlocks, cfg.MaxBlocks)
		}
		if seeds[a[i].Seed] {
			t.Fatalf("duplicate seed %d", a[i].Seed)
		}
		seeds[a[i].Seed] = true
		if a[i].ID != i {
			t.Fatalf("object %d has ID %d", i, a[i].ID)
		}
	}
}

func TestZipfValidation(t *testing.T) {
	src := prng.NewSplitMix64(1)
	if _, err := NewZipf(src, 0, 1); err == nil {
		t.Error("zero items accepted")
	}
	if _, err := NewZipf(src, 10, -1); err == nil {
		t.Error("negative exponent accepted")
	}
	if _, err := NewZipf(src, 10, math.NaN()); err == nil {
		t.Error("NaN exponent accepted")
	}
	if _, err := NewZipf(nil, 10, 1); err == nil {
		t.Error("nil source accepted")
	}
}

func TestZipfSkew(t *testing.T) {
	z, err := NewZipf(prng.NewSplitMix64(7), 100, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 100)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[z.Draw()]++
	}
	// With s=1 over 100 items, P(0) = 1/H(100) ≈ 0.1928.
	p0 := float64(counts[0]) / draws
	if p0 < 0.17 || p0 < float64(counts[50])/draws {
		t.Errorf("P(0) = %.4f; zipf skew missing (counts[0]=%d counts[50]=%d)", p0, counts[0], counts[50])
	}
	// Monotone on average: first item much more popular than the 10th.
	if counts[0] < counts[9]*3 {
		t.Errorf("counts[0]=%d not ≫ counts[9]=%d", counts[0], counts[9])
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	z, err := NewZipf(prng.NewSplitMix64(7), 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 10)
	const draws = 50000
	for i := 0; i < draws; i++ {
		counts[z.Draw()]++
	}
	for i, c := range counts {
		if c < draws/10*85/100 || c > draws/10*115/100 {
			t.Errorf("s=0 item %d count %d deviates from uniform %d", i, c, draws/10)
		}
	}
}

func TestZipfWith32BitSource(t *testing.T) {
	z, err := NewZipf(prng.NewPCG32(7), 5, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if d := z.Draw(); d < 0 || d >= 5 {
			t.Fatalf("draw %d out of range", d)
		}
	}
}

func TestPoissonValidation(t *testing.T) {
	if _, err := NewPoisson(prng.NewSplitMix64(1), 0); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewPoisson(prng.NewSplitMix64(1), math.Inf(1)); err == nil {
		t.Error("infinite rate accepted")
	}
	if _, err := NewPoisson(nil, 1); err == nil {
		t.Error("nil source accepted")
	}
}

func TestPoissonMeanInterval(t *testing.T) {
	p, err := NewPoisson(prng.NewSplitMix64(11), 2.0) // mean interval 0.5 s
	if err != nil {
		t.Fatal(err)
	}
	var total time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		iv := p.NextInterval()
		if iv < 0 {
			t.Fatalf("negative interval %v", iv)
		}
		total += iv
	}
	mean := total / n
	if mean < 480*time.Millisecond || mean > 520*time.Millisecond {
		t.Errorf("mean interval = %v, want ~500ms", mean)
	}
}

func TestVCRValidation(t *testing.T) {
	if _, err := NewVCR(nil, 10, 10); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := NewVCR(prng.NewSplitMix64(1), -1, 0); err == nil {
		t.Error("negative jump accepted")
	}
	if _, err := NewVCR(prng.NewSplitMix64(1), 600, 600); err == nil {
		t.Error("probabilities over 1000 accepted")
	}
}

func TestVCRDistribution(t *testing.T) {
	v, err := NewVCR(prng.NewSplitMix64(3), 100, 50) // 10% jump, 5% stop
	if err != nil {
		t.Fatal(err)
	}
	var plays, jumps, stops int
	const n = 100000
	for i := 0; i < n; i++ {
		action, pos := v.Next(500)
		switch action {
		case VCRPlay:
			plays++
		case VCRJump:
			jumps++
			if pos < 0 || pos >= 500 {
				t.Fatalf("jump position %d out of range", pos)
			}
		case VCRStop:
			stops++
		}
	}
	if jumps < n*8/100 || jumps > n*12/100 {
		t.Errorf("jumps = %d, want ~%d", jumps, n/10)
	}
	if stops < n*4/100 || stops > n*6/100 {
		t.Errorf("stops = %d, want ~%d", stops, n/20)
	}
	if plays < n*80/100 {
		t.Errorf("plays = %d, want ~%d", plays, n*85/100)
	}
}

func TestVCRZeroBlocks(t *testing.T) {
	v, err := NewVCR(prng.NewSplitMix64(3), 1000, 0) // always jump
	if err != nil {
		t.Fatal(err)
	}
	if action, pos := v.Next(0); action != VCRJump || pos != 0 {
		t.Fatalf("zero-block jump = %v %d", action, pos)
	}
}
