// Package workload generates the synthetic continuous-media workloads that
// drive the evaluation: object libraries (sizes and bitrates), Zipf-skewed
// object popularity, Poisson stream arrivals, and VCR-style seek behaviour.
// All generators are seeded and reproducible, built on internal/prng rather
// than math/rand so that experiment outputs are stable across Go releases.
package workload

import (
	"fmt"
	"math"
	"time"

	"scaddar/internal/prng"
)

// Object describes one continuous-media object in the server's library.
type Object struct {
	// ID is the object's index in the library.
	ID int
	// Seed is the pseudo-random placement seed s_m.
	Seed uint64
	// Blocks is the number of fixed-size blocks the object occupies.
	Blocks int
	// BlockBytes is the block size.
	BlockBytes int64
	// BitrateBitsPerSec is the display rate; one block must be delivered
	// every BlockBytes*8/Bitrate seconds.
	BitrateBitsPerSec int64
}

// Duration returns the object's playback duration.
func (o Object) Duration() time.Duration {
	if o.BitrateBitsPerSec <= 0 {
		return 0
	}
	bits := float64(o.Blocks) * float64(o.BlockBytes) * 8
	return time.Duration(bits / float64(o.BitrateBitsPerSec) * float64(time.Second))
}

// LibraryConfig controls synthetic library generation.
type LibraryConfig struct {
	// Objects is the number of objects to generate.
	Objects int
	// MinBlocks and MaxBlocks bound the per-object block counts; sizes are
	// drawn uniformly in the range.
	MinBlocks, MaxBlocks int
	// BlockBytes is the fixed block size shared by all objects.
	BlockBytes int64
	// BitrateBitsPerSec is the display rate shared by all objects (MPEG-2
	// video of the paper's era is ~4 Mb/s).
	BitrateBitsPerSec int64
	// SeedBase offsets the per-object placement seeds so distinct libraries
	// do not share block sequences.
	SeedBase uint64
}

// DefaultLibraryConfig matches the Section 5 experiment scale: 20 objects of
// a thousand-odd blocks each, 256 KiB blocks, 4 Mb/s MPEG-2 streams.
func DefaultLibraryConfig() LibraryConfig {
	return LibraryConfig{
		Objects:           20,
		MinBlocks:         800,
		MaxBlocks:         1200,
		BlockBytes:        256 << 10,
		BitrateBitsPerSec: 4 << 20,
		SeedBase:          0x5cadda2,
	}
}

// Library generates a reproducible object library.
func Library(cfg LibraryConfig) ([]Object, error) {
	if cfg.Objects < 1 {
		return nil, fmt.Errorf("workload: library needs at least 1 object, got %d", cfg.Objects)
	}
	if cfg.MinBlocks < 1 || cfg.MaxBlocks < cfg.MinBlocks {
		return nil, fmt.Errorf("workload: invalid block range [%d,%d]", cfg.MinBlocks, cfg.MaxBlocks)
	}
	if cfg.BlockBytes < 1 {
		return nil, fmt.Errorf("workload: invalid block size %d", cfg.BlockBytes)
	}
	src := prng.NewSplitMix64(cfg.SeedBase)
	objs := make([]Object, cfg.Objects)
	span := uint64(cfg.MaxBlocks - cfg.MinBlocks + 1)
	for i := range objs {
		objs[i] = Object{
			ID:                i,
			Seed:              cfg.SeedBase + uint64(i)*0x10001 + 1,
			Blocks:            cfg.MinBlocks + int(src.Next()%span),
			BlockBytes:        cfg.BlockBytes,
			BitrateBitsPerSec: cfg.BitrateBitsPerSec,
		}
	}
	return objs, nil
}

// Zipf draws integers in [0, n) with P(i) proportional to 1/(i+1)^s — the
// standard popularity skew of video-on-demand catalogs (s ≈ 0.729 in the
// classic VOD measurement literature). It precomputes the CDF and samples
// by binary search, so Draw is O(log n).
type Zipf struct {
	src prng.Source
	cdf []float64
}

// NewZipf creates a Zipf sampler over n items with exponent s >= 0 (s = 0
// is uniform).
func NewZipf(src prng.Source, n int, s float64) (*Zipf, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: zipf needs at least 1 item, got %d", n)
	}
	if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return nil, fmt.Errorf("workload: invalid zipf exponent %g", s)
	}
	if src == nil {
		return nil, fmt.Errorf("workload: zipf needs a random source")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{src: src, cdf: cdf}, nil
}

// Draw returns the next sample.
func (z *Zipf) Draw() int {
	u := z.uniform01()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// uniform01 converts one source output to a float in [0, 1).
func (z *Zipf) uniform01() float64 {
	bits := z.src.Bits()
	v := z.src.Next()
	return float64(v) / (float64(prng.MaxValue(bits)) + 1)
}

// Poisson generates exponentially distributed inter-arrival times with the
// given mean rate (arrivals per second) — the standard stream-arrival model
// for CM servers.
type Poisson struct {
	src  prng.Source
	rate float64
}

// NewPoisson creates an arrival process with rate > 0 arrivals per second.
func NewPoisson(src prng.Source, rate float64) (*Poisson, error) {
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return nil, fmt.Errorf("workload: invalid arrival rate %g", rate)
	}
	if src == nil {
		return nil, fmt.Errorf("workload: poisson needs a random source")
	}
	return &Poisson{src: src, rate: rate}, nil
}

// NextInterval returns the next exponentially distributed inter-arrival
// time.
func (p *Poisson) NextInterval() time.Duration {
	u := float64(p.src.Next())/(float64(prng.MaxValue(p.src.Bits()))+1) + 1e-18
	secs := -math.Log(u) / p.rate
	return time.Duration(secs * float64(time.Second))
}

// VCRAction is one viewer interaction.
type VCRAction int

// Viewer interactions.
const (
	// VCRPlay continues sequential playback.
	VCRPlay VCRAction = iota
	// VCRJump seeks to a random position (fast-forward/rewind landing).
	VCRJump
	// VCRStop terminates the stream.
	VCRStop
)

// VCR generates VCR-style interaction sequences: at each block boundary the
// viewer continues, jumps to a random position, or stops. Random placement's
// support for such unpredictable access is one of the RIO advantages the
// paper cites for adopting it.
type VCR struct {
	src          prng.Source
	jumpPerMille uint64
	stopPerMille uint64
}

// NewVCR creates an interaction generator with the given per-block jump and
// stop probabilities, each expressed per mille (0..1000).
func NewVCR(src prng.Source, jumpPerMille, stopPerMille int) (*VCR, error) {
	if src == nil {
		return nil, fmt.Errorf("workload: vcr needs a random source")
	}
	if jumpPerMille < 0 || stopPerMille < 0 || jumpPerMille+stopPerMille > 1000 {
		return nil, fmt.Errorf("workload: invalid vcr probabilities %d+%d per mille", jumpPerMille, stopPerMille)
	}
	return &VCR{src: src, jumpPerMille: uint64(jumpPerMille), stopPerMille: uint64(stopPerMille)}, nil
}

// Next returns the viewer's action at a block boundary and, for VCRJump,
// the new position in [0, blocks).
func (v *VCR) Next(blocks int) (VCRAction, int) {
	roll := v.src.Next() % 1000
	switch {
	case roll < v.jumpPerMille:
		if blocks <= 0 {
			return VCRJump, 0
		}
		return VCRJump, int(v.src.Next() % uint64(blocks))
	case roll < v.jumpPerMille+v.stopPerMille:
		return VCRStop, 0
	default:
		return VCRPlay, 0
	}
}
