package cache

import (
	"testing"
	"testing/quick"

	"scaddar/internal/disk"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(-1); err == nil {
		t.Error("negative capacity accepted")
	}
	c, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	c.Put(1)
	if c.Len() != 0 || c.Get(1) {
		t.Error("zero-capacity cache stored a block")
	}
}

func TestBasicHitMiss(t *testing.T) {
	c, _ := New(2)
	if c.Get(1) {
		t.Fatal("hit on empty cache")
	}
	c.Put(1)
	if !c.Get(1) {
		t.Fatal("miss on cached block")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d/%d", hits, misses)
	}
	if c.HitRate() != 0.5 {
		t.Fatalf("hit rate = %g", c.HitRate())
	}
}

func TestEvictionOrder(t *testing.T) {
	c, _ := New(3)
	c.Put(1)
	c.Put(2)
	c.Put(3)
	// Touch 1 so 2 becomes the LRU victim.
	if !c.Get(1) {
		t.Fatal("1 evicted early")
	}
	c.Put(4) // evicts 2
	if c.Contains(2) {
		t.Fatal("2 not evicted")
	}
	for _, b := range []disk.BlockID{1, 3, 4} {
		if !c.Contains(b) {
			t.Fatalf("%d evicted wrongly", b)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestPutRefreshesExisting(t *testing.T) {
	c, _ := New(2)
	c.Put(1)
	c.Put(2)
	c.Put(1) // refresh, no eviction
	c.Put(3) // evicts 2
	if !c.Contains(1) || c.Contains(2) || !c.Contains(3) {
		t.Fatal("refresh on Put not honored")
	}
}

func TestRemoveAndClear(t *testing.T) {
	c, _ := New(4)
	c.Put(1)
	c.Put(2)
	c.Remove(1)
	c.Remove(99) // absent: no-op
	if c.Contains(1) || !c.Contains(2) || c.Len() != 1 {
		t.Fatal("remove broken")
	}
	c.Get(2)
	c.Clear()
	if c.Len() != 0 || c.Contains(2) {
		t.Fatal("clear broken")
	}
	if hits, _ := c.Stats(); hits != 1 {
		t.Fatal("clear dropped statistics")
	}
}

func TestSequentialFollowerHits(t *testing.T) {
	// The interval-caching effect: a follower within the cache window hits
	// every block the leader pulled; beyond the window it misses. The
	// capacity must comfortably exceed twice the gap: the blocks between
	// leader and follower age un-refreshed while blocks behind the
	// follower keep getting refreshed, so at capacity ≈ 2·gap LRU evicts
	// exactly the block the follower needs next.
	c, _ := New(16)
	const gap = 4
	for pos := 0; pos < 100; pos++ {
		// Leader reads pos (miss, from disk) and caches it.
		if c.Get(disk.BlockID(pos)) {
			t.Fatalf("leader hit at %d", pos)
		}
		c.Put(disk.BlockID(pos))
		// Follower reads pos-gap: always a hit once started.
		if pos >= gap {
			if !c.Get(disk.BlockID(pos - gap)) {
				t.Fatalf("follower missed at %d", pos-gap)
			}
		}
	}
	// A distant follower (gap 50 > capacity) misses everything.
	far, _ := New(16)
	for pos := 0; pos < 100; pos++ {
		far.Get(disk.BlockID(pos))
		far.Put(disk.BlockID(pos))
		if pos >= 50 && far.Get(disk.BlockID(pos-50)) {
			t.Fatalf("distant follower hit at %d", pos-50)
		}
	}
}

// TestQuickNeverExceedsCapacity property-tests the size bound.
func TestQuickNeverExceedsCapacity(t *testing.T) {
	f := func(capRaw uint8, ops []uint16) bool {
		capacity := int(capRaw % 16)
		c, err := New(capacity)
		if err != nil {
			return false
		}
		for _, op := range ops {
			b := disk.BlockID(op % 64)
			if op%3 == 0 {
				c.Get(b)
			} else if op%3 == 1 {
				c.Put(b)
			} else {
				c.Remove(b)
			}
			if c.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
