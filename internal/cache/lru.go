// Package cache implements the server-side block buffer of a
// continuous-media server: a fixed-capacity LRU over block identities.
//
// Under sequential playback an LRU buffer behaves like the classic interval
// cache (Dan & Sitaram): when one viewer follows another through the same
// object closely enough, the follower's reads hit the blocks the leader
// just pulled — the popular titles of a Zipf catalog effectively stream
// from RAM, and the disks only serve the leaders. Experiment E13 measures
// that effect; the cm server consults the cache before charging a disk.
package cache

import (
	"container/list"
	"fmt"

	"scaddar/internal/disk"
)

// LRU is a fixed-capacity least-recently-used cache of block identities.
// The zero value is unusable; use New. Not safe for concurrent use (the
// round loop is single-threaded).
type LRU struct {
	capacity int
	order    *list.List // front = most recent; values are disk.BlockID
	index    map[disk.BlockID]*list.Element

	hits, misses int
}

// New creates an LRU holding up to capacity blocks. Zero capacity is valid
// and caches nothing (every lookup misses).
func New(capacity int) (*LRU, error) {
	if capacity < 0 {
		return nil, fmt.Errorf("cache: negative capacity %d", capacity)
	}
	return &LRU{
		capacity: capacity,
		order:    list.New(),
		index:    make(map[disk.BlockID]*list.Element),
	}, nil
}

// Capacity returns the configured block capacity.
func (c *LRU) Capacity() int { return c.capacity }

// Len returns the number of cached blocks.
func (c *LRU) Len() int { return c.order.Len() }

// Contains reports whether the block is cached without touching recency.
func (c *LRU) Contains(b disk.BlockID) bool {
	_, ok := c.index[b]
	return ok
}

// Get looks the block up, refreshing its recency on a hit.
func (c *LRU) Get(b disk.BlockID) bool {
	el, ok := c.index[b]
	if !ok {
		c.misses++
		return false
	}
	c.order.MoveToFront(el)
	c.hits++
	return true
}

// Put inserts (or refreshes) a block, evicting the least recently used one
// when at capacity.
func (c *LRU) Put(b disk.BlockID) {
	if c.capacity == 0 {
		return
	}
	if el, ok := c.index[b]; ok {
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.index, oldest.Value.(disk.BlockID))
	}
	c.index[b] = c.order.PushFront(b)
}

// Remove drops a block (e.g. when its object is deleted). It is a no-op
// for absent blocks.
func (c *LRU) Remove(b disk.BlockID) {
	if el, ok := c.index[b]; ok {
		c.order.Remove(el)
		delete(c.index, b)
	}
}

// Stats returns cumulative hit and miss counts.
func (c *LRU) Stats() (hits, misses int) { return c.hits, c.misses }

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (c *LRU) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Clear empties the cache, keeping the statistics.
func (c *LRU) Clear() {
	c.order.Init()
	c.index = make(map[disk.BlockID]*list.Element)
}
