package bufpool

import (
	"sync"
	"testing"
)

func TestClassFor(t *testing.T) {
	cases := []struct {
		n, class int
	}{
		{0, 0}, {1, 0}, {512, 0}, {513, 1}, {1024, 1}, {4096, 3},
		{4097, 4}, {1 << 20, 11}, {1 << 24, 15}, {1<<24 + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.class {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.class)
		}
	}
}

func TestGetReleaseRoundTrip(t *testing.T) {
	base := InUse()
	b := Get(4096)
	if len(b.Data()) != 4096 {
		t.Fatalf("Data len = %d, want 4096", len(b.Data()))
	}
	if cap(b.data) != 4096 {
		t.Fatalf("backing cap = %d, want 4096", cap(b.data))
	}
	if InUse() != base+1 {
		t.Fatalf("InUse = %d, want %d", InUse(), base+1)
	}
	b.Release()
	if InUse() != base {
		t.Fatalf("InUse after release = %d, want %d", InUse(), base)
	}
}

func TestRetainRelease(t *testing.T) {
	base := InUse()
	b := Get(100)
	b.Retain()
	b.Retain()
	b.Release()
	b.Release()
	if InUse() != base+1 {
		t.Fatalf("buffer returned to pool while still referenced")
	}
	b.Release()
	if InUse() != base {
		t.Fatalf("InUse = %d, want %d after final release", InUse(), base)
	}
}

func TestOverReleasePanics(t *testing.T) {
	b := Get(64)
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("second Release did not panic")
		}
	}()
	b.Release()
}

func TestRetainAfterFreePanics(t *testing.T) {
	b := Get(64)
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("Retain on released buffer did not panic")
		}
	}()
	b.Retain()
}

func TestOversizedRequestUnpooled(t *testing.T) {
	base := InUse()
	b := Get(1<<24 + 1)
	if b.class != -1 {
		t.Fatalf("oversized buffer got class %d, want -1", b.class)
	}
	if len(b.Data()) != 1<<24+1 {
		t.Fatalf("Data len = %d", len(b.Data()))
	}
	b.Release()
	if InUse() != base {
		t.Fatalf("InUse = %d, want %d", InUse(), base)
	}
}

func TestUnpooledPayloadReleaseNoop(t *testing.T) {
	p := Unpooled([]byte("hello"))
	p.Retain()
	p.Release()
	p.Release() // no-op, must not panic
	if string(p.Data) != "hello" {
		t.Fatalf("unpooled data clobbered: %q", p.Data)
	}
}

func TestPayloadOwnershipTransfer(t *testing.T) {
	base := InUse()
	b := Get(128)
	p := Payload{Data: b.Data(), Buf: b}
	p.Retain()
	p.Release()
	p.Release()
	if InUse() != base {
		t.Fatalf("InUse = %d, want %d", InUse(), base)
	}
}

// TestGetReleaseZeroAlloc guards the pool's steady state: after warm-up,
// a Get/Release cycle must not allocate. This is the foundation of the
// pipeline-wide 0 allocs/chunk budget.
func TestGetReleaseZeroAlloc(t *testing.T) {
	// Warm the class so the pool holds a buffer.
	Get(4096).Release()
	allocs := testing.AllocsPerRun(1000, func() {
		b := Get(4096)
		b.Retain()
		b.Release()
		b.Release()
	})
	if allocs != 0 {
		t.Fatalf("Get/Retain/Release allocated %.1f times per run, want 0", allocs)
	}
}

func TestConcurrentRetainRelease(t *testing.T) {
	base := InUse()
	b := Get(1024)
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		b.Retain()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				b.Retain()
				b.Release()
			}
			b.Release()
		}()
	}
	wg.Wait()
	b.Release()
	if InUse() != base {
		t.Fatalf("InUse = %d, want %d", InUse(), base)
	}
}
