// Package bufpool provides size-classed, reference-counted payload buffers
// for the block-delivery hot path.
//
// A continuous-media round at E19 scale moves thousands of blocks per
// second from segment files through the delivery sink into streaming
// responses. Allocating a fresh []byte per block makes the garbage
// collector a round participant; instead every payload read lands in a
// pooled Buf that flows *by reference* through
// cm.DeliverySink → dataplane.Session → the HTTP frame encoder and is
// returned to its sync.Pool when the last holder releases it.
//
// Reference counting is required — not just ergonomic — because a chunk's
// lifetime forks: the round driver may drop it on a deadline miss, the
// session may be evicted with chunks still buffered, or the consumer may
// disconnect mid-stream. Each path must release exactly once; Release
// panics on over-release so lifecycle bugs fail loudly under test instead
// of silently corrupting a recycled buffer.
package bufpool

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// minClassBits is the smallest size class (512 B); payloads below it round
// up. maxClassBits caps pooling at 16 MiB — larger requests are satisfied
// with a one-off allocation that is still refcounted but never pooled.
const (
	minClassBits = 9
	maxClassBits = 24
	numClasses   = maxClassBits - minClassBits + 1
)

// pools holds one sync.Pool per power-of-two size class.
var pools [numClasses]sync.Pool

// inUse counts pooled buffers currently held by at least one reference.
// The buffer-lifecycle leak tests snapshot it before a scenario and assert
// it returns to the snapshot after every session path (miss, eviction,
// paused-open, disconnect) has run.
var inUse atomic.Int64

// Buf is a pooled, reference-counted byte buffer. The backing array's
// capacity is its size class; Data() views the first n bytes requested
// from Get. A Buf starts with one reference and is recycled when the
// count reaches zero.
type Buf struct {
	data  []byte
	n     int
	class int32
	refs  atomic.Int32
}

// classFor returns the pool index for a request of n bytes, or -1 when the
// request exceeds the largest class and must be allocated off-pool.
func classFor(n int) int {
	if n <= 1<<minClassBits {
		return 0
	}
	if n > 1<<maxClassBits {
		return -1
	}
	c := 0
	for sz := 1 << minClassBits; sz < n; sz <<= 1 {
		c++
	}
	return c
}

// Get returns a buffer whose Data() slice is exactly n bytes, drawn from
// the matching size-class pool (or freshly allocated for oversized
// requests). The caller holds the initial reference.
func Get(n int) *Buf {
	if n < 0 {
		panic(fmt.Sprintf("bufpool: negative size %d", n))
	}
	c := classFor(n)
	if c < 0 {
		b := &Buf{data: make([]byte, n), n: n, class: -1}
		b.refs.Store(1)
		inUse.Add(1)
		return b
	}
	b, _ := pools[c].Get().(*Buf)
	if b == nil {
		b = &Buf{data: make([]byte, 1<<(minClassBits+c)), class: int32(c)}
	}
	b.n = n
	b.refs.Store(1)
	inUse.Add(1)
	return b
}

// Data returns the payload view of the buffer: the first n bytes requested
// from Get. The slice is valid until the last reference is released.
func (b *Buf) Data() []byte { return b.data[:b.n] }

// Retain adds a reference. Each Retain must be paired with exactly one
// Release.
func (b *Buf) Retain() {
	if b.refs.Add(1) <= 1 {
		panic("bufpool: Retain on released buffer")
	}
}

// Release drops one reference; the last release returns the buffer to its
// pool. Releasing more times than retained panics — a loud failure beats a
// recycled buffer being scribbled over while a reader still holds it.
func (b *Buf) Release() {
	switch r := b.refs.Add(-1); {
	case r == 0:
		inUse.Add(-1)
		if b.class >= 0 {
			pools[b.class].Put(b)
		}
	case r < 0:
		panic("bufpool: buffer over-released")
	}
}

// InUse reports the number of pooled buffers currently referenced. It is a
// global gauge intended for leak tests: quiesce the system, then assert
// InUse returned to its starting value.
func InUse() int64 { return inUse.Load() }

// Payload is the unit that flows through the delivery pipeline: a byte
// view plus the pooled buffer backing it (nil for unpooled bytes such as
// oracle-materialized content, making Release a no-op). Passing a Payload
// transfers ownership of one reference; the receiver must either Release
// it or hand it on.
type Payload struct {
	// Data is the payload bytes. It may alias a shared pooled buffer
	// (coalesced reads hand out sub-slices of one span), so holders must
	// not write into it.
	Data []byte
	// Buf is the pooled backing buffer, nil when Data is unpooled.
	Buf *Buf
}

// Unpooled wraps plain bytes in a Payload whose Release is a no-op. Used
// for oracle-materialized content and other allocations the pool does not
// manage.
func Unpooled(data []byte) Payload { return Payload{Data: data} }

// Retain adds a reference to the backing buffer, if pooled.
func (p Payload) Retain() {
	if p.Buf != nil {
		p.Buf.Retain()
	}
}

// Release drops the caller's reference to the backing buffer, if pooled.
func (p Payload) Release() {
	if p.Buf != nil {
		p.Buf.Release()
	}
}
