// Package par provides deterministic data-parallel range fan-out for the
// bulk block sweeps (plan construction, layout computation, snapshot
// builds). It deliberately offers only one shape — split [0,n) into
// contiguous chunks, run one worker per chunk, wait for all — because that
// shape is what keeps the parallel sweeps byte-identical to their serial
// forms: every worker writes a disjoint index range (or a private
// accumulator merged in worker order), so the output never depends on
// scheduling.
package par

import (
	"runtime"
	"sync"
)

// MinParallel is the default smallest sweep worth fanning out. Below it the
// goroutine hand-off costs more than the arithmetic it distributes.
const MinParallel = 2048

// Workers returns the fan-out width bulk sweeps use: GOMAXPROCS at call
// time, so the sweeps track the scheduler's actual parallelism.
func Workers() int { return runtime.GOMAXPROCS(0) }

// Ranges splits [0,n) into up to Workers() contiguous chunks and calls
// fn(lo, hi) for each, concurrently, returning when all chunks are done.
// Sweeps shorter than MinParallel (and any sweep when Workers() == 1) run
// inline on the caller's goroutine. fn must confine its writes to the
// chunk's index range or to per-chunk state; under that contract the result
// is identical to fn(0, n).
func Ranges(n int, fn func(lo, hi int)) {
	if n < MinParallel {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	RangesN(n, Workers(), fn)
}

// RangesN is Ranges with an explicit worker count, bypassing the
// MinParallel threshold. It exists for tests that must exercise the
// multi-worker merge paths regardless of machine width, and for callers
// that know their per-element cost. Worker counts below 2 (or n below 2)
// run inline.
func RangesN(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers < 2 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
