package par

import (
	"sync/atomic"
	"testing"
)

func TestRangesNCoversDisjointly(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{0, 4}, {1, 4}, {3, 4}, {4, 4}, {5, 4}, {4096, 3}, {4097, 8}, {10, 1},
	} {
		hits := make([]int32, tc.n)
		var calls int32
		RangesN(tc.n, tc.workers, func(lo, hi int) {
			atomic.AddInt32(&calls, 1)
			if lo > hi || lo < 0 || hi > tc.n {
				t.Errorf("n=%d workers=%d: bad range [%d,%d)", tc.n, tc.workers, lo, hi)
				return
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d workers=%d: index %d covered %d times", tc.n, tc.workers, i, h)
			}
		}
	}
}

func TestRangesSerialBelowThreshold(t *testing.T) {
	n := MinParallel - 1
	covered := 0
	last := 0
	Ranges(n, func(lo, hi int) {
		if lo != last {
			t.Fatalf("serial path split the range: lo=%d after %d", lo, last)
		}
		last = hi
		covered += hi - lo
	})
	if covered != n {
		t.Fatalf("covered %d of %d", covered, n)
	}
}

func TestWorkersPositive(t *testing.T) {
	if Workers() < 1 {
		t.Fatalf("Workers() = %d", Workers())
	}
}
