package experiments

import (
	"fmt"

	"scaddar/internal/cm"
	"scaddar/internal/placement"
	"scaddar/internal/prng"
	"scaddar/internal/workload"
)

// E7Config parameterizes the online-reorganization experiment.
type E7Config struct {
	// N0 is the initial disk count.
	N0 int
	// AddDisks is the size of the added disk group.
	AddDisks int
	// Objects and BlocksPer size the library.
	Objects, BlocksPer int
	// StreamLoad is the fraction of admission capacity to occupy with
	// active streams during the migration.
	StreamLoad float64
	// MaxRounds caps the simulation.
	MaxRounds int
}

// DefaultE7 scales an 8-disk server to 10 under a 60% stream load.
func DefaultE7() E7Config {
	return E7Config{N0: 8, AddDisks: 2, Objects: 20, BlocksPer: 1000, StreamLoad: 0.6, MaxRounds: 100000}
}

// E7Row is the outcome at one stream-load level.
type E7Row struct {
	// LoadFraction is the occupied fraction of admission capacity.
	LoadFraction float64
	// ActiveStreams is the number of concurrent streams.
	ActiveStreams int
	// PlanMoves is the number of blocks the operation must move.
	PlanMoves int
	// Rounds is how many scheduling rounds the throttled migration took.
	Rounds int
	// Hiccups counts stream-rounds that missed their deadline during the
	// migration.
	Hiccups int
	// BlocksServed counts stream blocks delivered during the migration.
	BlocksServed int
}

// E7Result is the online-reorganization report.
type E7Result struct {
	Config E7Config
	Rows   []E7Row
}

// RunE7 demonstrates the motivation of Sections 1 and 6: a SCADDAR scale-out
// executed online, with migration throttled to each disk's spare bandwidth,
// completes without a single missed stream deadline — at higher stream loads
// it simply takes more rounds. The zero-load row gives the fastest possible
// drain for comparison.
func RunE7(cfg E7Config) (*E7Result, error) {
	res := &E7Result{Config: cfg}
	for _, load := range []float64{0, cfg.StreamLoad / 2, cfg.StreamLoad} {
		row, err := runE7Once(cfg, load)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

// runE7Once runs one scale-out under the given stream load.
func runE7Once(cfg E7Config, load float64) (*E7Row, error) {
	x0 := placement.NewX0Func(func(seed uint64) prng.Source { return prng.NewSplitMix64(seed) })
	strat, err := placement.NewScaddar(cfg.N0, x0)
	if err != nil {
		return nil, err
	}
	srv, err := cm.NewServer(cm.DefaultConfig(), strat)
	if err != nil {
		return nil, err
	}
	lib, err := workload.Library(workload.LibraryConfig{
		Objects:           cfg.Objects,
		MinBlocks:         cfg.BlocksPer,
		MaxBlocks:         cfg.BlocksPer,
		BlockBytes:        srv.Config().BlockBytes,
		BitrateBitsPerSec: 4 << 20,
		SeedBase:          777,
	})
	if err != nil {
		return nil, err
	}
	for _, obj := range lib {
		if err := srv.AddObject(obj); err != nil {
			return nil, err
		}
	}

	// Occupy the requested fraction of admission capacity, spreading
	// streams over objects by a Zipf popularity draw. Streams are staggered
	// to uniform playback positions — the steady state of a server whose
	// viewers arrived over time; admitting hundreds of viewers of one object
	// at the identical position would instead model a synchronized flash
	// crowd and hotspot a single disk per round.
	zipf, err := workload.NewZipf(prng.NewSplitMix64(31), cfg.Objects, 0.729)
	if err != nil {
		return nil, err
	}
	positions := prng.NewSplitMix64(32)
	capacityStreams := int(load * float64(srv.N()) * float64(srv.Config().Profile.BlocksPerRound(srv.Config().Round, srv.Config().BlockBytes)))
	stagger := func() error {
		obj := zipf.Draw()
		st, err := srv.StartStream(obj)
		if err != nil {
			return err
		}
		blocks := lib[obj].Blocks
		return srv.SeekStream(st.ID, int(positions.Next()%uint64(blocks)))
	}
	for i := 0; i < capacityStreams; i++ {
		if err := stagger(); err != nil {
			return nil, err
		}
	}

	plan, err := srv.ScaleUp(cfg.AddDisks)
	if err != nil {
		return nil, err
	}
	baseline := srv.Metrics()
	rounds := 0
	for srv.Reorganizing() {
		if err := srv.Tick(); err != nil {
			return nil, err
		}
		rounds++
		if rounds > cfg.MaxRounds {
			return nil, fmt.Errorf("experiments: migration did not converge in %d rounds", cfg.MaxRounds)
		}
		// Keep the stream population topped up as streams finish, so the
		// load level is sustained for the whole migration.
		for srv.ActiveStreams() < capacityStreams {
			if err := stagger(); err != nil {
				return nil, err
			}
		}
	}
	if err := srv.FinishReorganization(); err != nil {
		return nil, err
	}
	m := srv.Metrics()
	return &E7Row{
		LoadFraction:  load,
		ActiveStreams: capacityStreams,
		PlanMoves:     len(plan.Moves),
		Rounds:        rounds,
		Hiccups:       m.Hiccups - baseline.Hiccups,
		BlocksServed:  m.BlocksServed - baseline.BlocksServed,
	}, nil
}

// Table renders the online-reorganization report.
func (r *E7Result) Table() *Table {
	t := &Table{
		ID: "E7",
		Caption: fmt.Sprintf("Online reorganization — scale %d→%d disks under live streams (1s rounds)",
			r.Config.N0, r.Config.N0+r.Config.AddDisks),
		Header: []string{"stream load", "streams", "plan moves", "rounds to drain", "hiccups", "blocks served"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			f3(row.LoadFraction), d(row.ActiveStreams), d(row.PlanMoves),
			d(row.Rounds), d(row.Hiccups), d(row.BlocksServed),
		})
	}
	return t
}
