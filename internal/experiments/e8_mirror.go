package experiments

import (
	"fmt"

	"scaddar/internal/mirror"
	"scaddar/internal/parity"
	"scaddar/internal/placement"
)

// E8Config parameterizes the fault-tolerance experiment.
type E8Config struct {
	// N0 is the initial disk count.
	N0 int
	// Ops is the number of single-disk additions applied before the
	// failure drills (mirror offsets recompute as N changes).
	Ops int
	// Objects and BlocksPer size the block universe.
	Objects, BlocksPer int
	// Bits is the generator width.
	Bits uint
	// ParityGroup is the group size g for the hybrid parity comparison.
	ParityGroup int
}

// DefaultE8 drills failures on a 6-disk array scaled to 8, comparing
// mirroring against hybrid parity with groups of 4.
func DefaultE8() E8Config {
	return E8Config{N0: 6, Ops: 2, Objects: 20, BlocksPer: 500, Bits: 64, ParityGroup: 4}
}

// E8Row is one failure drill under one scheme.
type E8Row struct {
	// Scheme is "mirror" or "parity".
	Scheme string
	// Failed describes the failed disk set.
	Failed string
	// Blocks, Readable, Degraded, Lost summarize availability. Degraded
	// counts reads served from a mirror or reconstructed via parity XOR.
	Blocks, Readable, Degraded, Lost int
}

// E8Result is the fault-tolerance report.
type E8Result struct {
	Config E8Config
	// MirrorOverhead is the storage multiplier of mirroring (always 2).
	MirrorOverhead float64
	// ParityOverhead is the realized multiplier of the hybrid parity
	// scheme, between 1+1/g and 2 depending on the collision rate.
	ParityOverhead float64
	Rows           []E8Row
}

// RunE8 exercises both Section 6 fault-tolerance extensions: blocks
// mirrored at offset f(N_j) = N_j/2, and the hybrid parity scheme the paper
// plans as future work ("data parity bits to handle faults with less
// required storage space"). Both survive every single-disk failure even
// after scaling operations; the drills also quantify each scheme's limit
// under a worst-case double failure and the storage saved by parity.
func RunE8(cfg E8Config) (*E8Result, error) {
	blocks := BlockUniverse(cfg.Objects, cfg.BlocksPer)
	objects := make(map[uint64]int)
	for _, b := range blocks {
		if int(b.Index)+1 > objects[b.Seed] {
			objects[b.Seed] = int(b.Index) + 1
		}
	}
	x0 := X0FuncBits(cfg.Bits)
	strat, err := placement.NewScaddar(cfg.N0, x0)
	if err != nil {
		return nil, err
	}
	m, err := mirror.New(strat, mirror.HalfOffset)
	if err != nil {
		return nil, err
	}
	p, err := parity.New(strat, cfg.ParityGroup)
	if err != nil {
		return nil, err
	}
	for op := 0; op < cfg.Ops; op++ {
		if err := strat.AddDisks(1); err != nil {
			return nil, err
		}
	}

	res := &E8Result{Config: cfg, MirrorOverhead: m.StorageOverhead()}
	res.ParityOverhead, err = p.Overhead(objects)
	if err != nil {
		return nil, err
	}
	record := func(name string, failed map[int]bool) error {
		mrep, err := m.Survive(blocks, failed)
		if err != nil {
			return err
		}
		res.Rows = append(res.Rows, E8Row{
			Scheme:   "mirror",
			Failed:   name,
			Blocks:   mrep.Blocks,
			Readable: mrep.Readable,
			Degraded: mrep.DegradedReads,
			Lost:     mrep.Lost,
		})
		prep, err := p.Survive(objects, failed)
		if err != nil {
			return err
		}
		res.Rows = append(res.Rows, E8Row{
			Scheme:   "parity",
			Failed:   name,
			Blocks:   prep.Blocks,
			Readable: prep.Blocks - prep.Lost,
			Degraded: prep.Reconstructed + prep.FromMirror,
			Lost:     prep.Lost,
		})
		return nil
	}

	// Every single-disk failure.
	for dsk := 0; dsk < strat.N(); dsk++ {
		if err := record(fmt.Sprintf("disk %d", dsk), map[int]bool{dsk: true}); err != nil {
			return nil, err
		}
	}
	// A non-partner double failure and the worst-case partner pair.
	n := strat.N()
	partner := mirror.HalfOffset(n) % n
	if err := record("disks 0+1 (non-partners)", map[int]bool{0: true, 1: true}); err != nil {
		return nil, err
	}
	if err := record(fmt.Sprintf("disks 0+%d (offset partners)", partner),
		map[int]bool{0: true, partner: true}); err != nil {
		return nil, err
	}
	return res, nil
}

// Table renders the fault-tolerance report.
func (r *E8Result) Table() *Table {
	t := &Table{
		ID: "E8",
		Caption: fmt.Sprintf("Section 6 — mirroring (%.0fx storage) vs hybrid parity g=%d (%.2fx) after %d scaling ops",
			r.MirrorOverhead, r.Config.ParityGroup, r.ParityOverhead, r.Config.Ops),
		Header: []string{"scheme", "failure", "blocks", "readable", "degraded/reconstructed", "lost"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Scheme, row.Failed, d(row.Blocks), d(row.Readable), d(row.Degraded), d(row.Lost),
		})
	}
	return t
}
