package experiments

import (
	"fmt"

	"scaddar/internal/cm"
	"scaddar/internal/disk"
	"scaddar/internal/placement"
	"scaddar/internal/prng"
	"scaddar/internal/workload"
)

// E11Config parameterizes the heterogeneous-array experiment.
type E11Config struct {
	// OldDisks is the number of old-generation disks.
	OldDisks int
	// NewDisks is the number of attached next-generation disks, each with
	// twice the old generation's per-round throughput.
	NewDisks int
	// Objects and BlocksPer size the library.
	Objects, BlocksPer int
	// Rounds is the verification run length at full admission.
	Rounds int
}

// DefaultE11 attaches 2 double-speed disks to a 6-disk array.
func DefaultE11() E11Config {
	return E11Config{OldDisks: 6, NewDisks: 2, Objects: 10, BlocksPer: 400, Rounds: 30}
}

// NextGen2x returns a disk profile with twice the Cheetah-class per-block
// throughput (faster seek, spindle, and transfer — a next-generation
// drive).
func NextGen2x() disk.Profile {
	p := disk.Cheetah73
	p.Name = "nextgen2x"
	p.AvgSeek /= 2
	p.RPM *= 2
	p.TransferBytesPerSec *= 2
	p.CapacityBytes *= 2
	return p
}

// E11Row is one configuration's outcome.
type E11Row struct {
	// Config names the wiring: "uniform over mixed disks" or "logical
	// mapping".
	Config string
	// LogicalDisks is the placement-visible disk count.
	LogicalDisks int
	// AdmittedStreams is the admission limit.
	AdmittedStreams int
	// UtilizationPct is AdmittedStreams as a percentage of the aggregate
	// physical block throughput.
	UtilizationPct float64
	// Hiccups observed across the verification run at full admission.
	Hiccups int
}

// E11Result is the heterogeneous-array report.
type E11Result struct {
	Config E11Config
	// PhysicalCapacity is the aggregate blocks/round of the hardware.
	PhysicalCapacity int
	Rows             []E11Row
}

// RunE11 quantifies the Section 6 heterogeneity claim. Uniform random
// placement over a mixed-generation array is bound by the WEAKEST disk
// (every disk receives the same demand, so the fast disks idle); carving
// each fast disk into old-generation-sized logical disks restores full
// utilization. The paper: "By applying previous work of mapping homogeneous
// logical disks to heterogeneous physical disks, SCADDAR may naturally
// evolve to allow block redistribution on heterogeneous physical disks."
func RunE11(cfg E11Config) (*E11Result, error) {
	old := disk.Cheetah73
	next := NextGen2x()
	base := cm.DefaultConfig()
	oldCap := old.BlocksPerRound(base.Round, base.BlockBytes)
	newCap := next.BlocksPerRound(base.Round, base.BlockBytes)
	res := &E11Result{
		Config:           cfg,
		PhysicalCapacity: cfg.OldDisks*oldCap + cfg.NewDisks*newCap,
	}

	// (a) Uniform placement over the mixed physical array: attach the new
	// disks as-is via ScaleUpProfile.
	mixed, err := buildE11Server(cfg, cfg.OldDisks)
	if err != nil {
		return nil, err
	}
	if _, err := mixed.ScaleUpProfile(cfg.NewDisks, next); err != nil {
		return nil, err
	}
	for mixed.Reorganizing() {
		if err := mixed.Tick(); err != nil {
			return nil, err
		}
	}
	if err := mixed.FinishReorganization(); err != nil {
		return nil, err
	}
	row, err := runE11Verification(cfg, mixed, "uniform over mixed disks")
	if err != nil {
		return nil, err
	}
	row.UtilizationPct = 100 * float64(row.AdmittedStreams) / float64(res.PhysicalCapacity)
	res.Rows = append(res.Rows, *row)

	// (b) The logical mapping: each fast disk hosts logicalPerNew
	// old-equivalent logical disks, so the placement sees a homogeneous
	// array of old-generation units.
	logicalPerNew := newCap / oldCap
	logicalN := cfg.OldDisks + cfg.NewDisks*logicalPerNew
	mapped, err := buildE11Server(cfg, cfg.OldDisks)
	if err != nil {
		return nil, err
	}
	if _, err := mapped.ScaleUp(cfg.NewDisks * logicalPerNew); err != nil {
		return nil, err
	}
	for mapped.Reorganizing() {
		if err := mapped.Tick(); err != nil {
			return nil, err
		}
	}
	if err := mapped.FinishReorganization(); err != nil {
		return nil, err
	}
	if mapped.N() != logicalN {
		return nil, fmt.Errorf("experiments: mapped array has %d logical disks, want %d", mapped.N(), logicalN)
	}
	row, err = runE11Verification(cfg, mapped, "logical mapping")
	if err != nil {
		return nil, err
	}
	row.UtilizationPct = 100 * float64(row.AdmittedStreams) / float64(res.PhysicalCapacity)
	res.Rows = append(res.Rows, *row)
	return res, nil
}

// buildE11Server builds a server over n old-generation disks with the
// standard library.
func buildE11Server(cfg E11Config, n int) (*cm.Server, error) {
	x0 := placement.NewX0Func(func(seed uint64) prng.Source { return prng.NewSplitMix64(seed) })
	strat, err := placement.NewScaddar(n, x0)
	if err != nil {
		return nil, err
	}
	// Statistical admission (overload probability ≤ 1e-4 per round) keeps
	// both configurations hiccup-free, so the comparison is purely about
	// how much hardware each wiring can sell.
	serverCfg := cm.DefaultConfig()
	serverCfg.OverloadTarget = 1e-4
	srv, err := cm.NewServer(serverCfg, strat)
	if err != nil {
		return nil, err
	}
	lib, err := workload.Library(workload.LibraryConfig{
		Objects: cfg.Objects, MinBlocks: cfg.BlocksPer, MaxBlocks: cfg.BlocksPer,
		BlockBytes: srv.Config().BlockBytes, BitrateBitsPerSec: 4 << 20, SeedBase: 11,
	})
	if err != nil {
		return nil, err
	}
	for _, obj := range lib {
		if err := srv.AddObject(obj); err != nil {
			return nil, err
		}
	}
	return srv, nil
}

// runE11Verification admits to the limit, runs the verification rounds, and
// reports.
func runE11Verification(cfg E11Config, srv *cm.Server, name string) (*E11Row, error) {
	pos := prng.NewSplitMix64(3)
	admitted := 0
	for {
		st, err := srv.StartStream(admitted % cfg.Objects)
		if err != nil {
			break // admission limit reached
		}
		if err := srv.SeekStream(st.ID, int(pos.Next()%uint64(cfg.BlocksPer))); err != nil {
			return nil, err
		}
		admitted++
	}
	before := srv.Metrics().Hiccups
	for r := 0; r < cfg.Rounds; r++ {
		if err := srv.Tick(); err != nil {
			return nil, err
		}
	}
	return &E11Row{
		Config:          name,
		LogicalDisks:    srv.N(),
		AdmittedStreams: admitted,
		Hiccups:         srv.Metrics().Hiccups - before,
	}, nil
}

// Table renders the heterogeneous-array report.
func (r *E11Result) Table() *Table {
	t := &Table{
		ID: "E11",
		Caption: fmt.Sprintf("Section 6 — %d old + %d double-speed disks (aggregate %d blocks/round)",
			r.Config.OldDisks, r.Config.NewDisks, r.PhysicalCapacity),
		Header: []string{"wiring", "logical disks", "admitted streams", "hw utilization", "hiccups"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Config, d(row.LogicalDisks), d(row.AdmittedStreams),
			fmt.Sprintf("%.0f%%", row.UtilizationPct), d(row.Hiccups),
		})
	}
	return t
}
