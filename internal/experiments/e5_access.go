package experiments

import (
	"fmt"
	"time"

	"scaddar/internal/placement"
	"scaddar/internal/prng"
	"scaddar/internal/scaddar"
)

// E5Config parameterizes the access-cost experiment.
type E5Config struct {
	// OpCounts are the history lengths j at which to measure lookups.
	OpCounts []int
	// Lookups is the number of lookups to time per point.
	Lookups int
}

// DefaultE5 measures at j = 0, 1, 2, 4, 8, 16, 32 with 200k lookups each.
func DefaultE5() E5Config {
	return E5Config{OpCounts: []int{0, 1, 2, 4, 8, 16, 32}, Lookups: 200000}
}

// E5Row is the cost at one history length.
type E5Row struct {
	Ops int
	// ScaddarNs is nanoseconds per SCADDAR chain lookup.
	ScaddarNs float64
	// DirectoryNs is nanoseconds per directory map lookup.
	DirectoryNs float64
	// ReshuffleNs is nanoseconds per plain X0 mod N computation.
	ReshuffleNs float64
}

// E5Result is the access-cost series.
type E5Result struct {
	Config E5Config
	Rows   []E5Row
}

// RunE5 quantifies AO1: the cost of locating a block grows linearly — and
// cheaply — with the number of recorded scaling operations, stays within
// the same order as a directory hash lookup, and needs no per-block state.
// The timings use the wall clock and are meant for relative comparison; the
// root benchmarks measure the same thing under testing.B.
func RunE5(cfg E5Config) (*E5Result, error) {
	if cfg.Lookups < 1 {
		return nil, fmt.Errorf("experiments: E5 needs at least one lookup")
	}
	res := &E5Result{Config: cfg}
	// Pre-generate the x0 population once.
	xs := make([]uint64, 4096)
	src := prng.NewSplitMix64(4242)
	for i := range xs {
		xs[i] = src.Next()
	}
	for _, ops := range cfg.OpCounts {
		h, err := scaddar.NewHistory(8)
		if err != nil {
			return nil, err
		}
		for j := 0; j < ops; j++ {
			// Alternate adds and removals so both REMAP forms are timed.
			if j%3 == 2 {
				if _, err := h.Remove(j % h.N()); err != nil {
					return nil, err
				}
			} else {
				if _, err := h.Add(1); err != nil {
					return nil, err
				}
			}
		}

		start := time.Now()
		sink := 0
		for i := 0; i < cfg.Lookups; i++ {
			sink += h.Locate(xs[i%len(xs)])
		}
		scNs := float64(time.Since(start).Nanoseconds()) / float64(cfg.Lookups)

		// Directory lookup: a map from block to disk.
		dir, err := placement.NewDirectory(h.N(), prng.NewSplitMix64(7))
		if err != nil {
			return nil, err
		}
		refs := make([]placement.BlockRef, len(xs))
		for i := range refs {
			refs[i] = placement.BlockRef{Seed: uint64(i), Index: uint64(i)}
			dir.Disk(refs[i]) // pre-populate
		}
		start = time.Now()
		for i := 0; i < cfg.Lookups; i++ {
			sink += dir.Disk(refs[i%len(refs)])
		}
		dirNs := float64(time.Since(start).Nanoseconds()) / float64(cfg.Lookups)

		n := uint64(h.N())
		start = time.Now()
		for i := 0; i < cfg.Lookups; i++ {
			sink += int(xs[i%len(xs)] % n)
		}
		rsNs := float64(time.Since(start).Nanoseconds()) / float64(cfg.Lookups)
		if sink == -1 {
			return nil, fmt.Errorf("experiments: impossible") // keep sink alive
		}

		res.Rows = append(res.Rows, E5Row{Ops: ops, ScaddarNs: scNs, DirectoryNs: dirNs, ReshuffleNs: rsNs})
	}
	return res, nil
}

// Table renders the access-cost series.
func (r *E5Result) Table() *Table {
	t := &Table{
		ID:      "E5",
		Caption: "AO1 — block-location cost vs. number of scaling operations (ns/lookup)",
		Header:  []string{"ops j", "scaddar chain", "directory map", "mod-only"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			d(row.Ops), f3(row.ScaddarNs), f3(row.DirectoryNs), f3(row.ReshuffleNs),
		})
	}
	return t
}
