package experiments

import (
	"fmt"

	"scaddar/internal/placement"
	"scaddar/internal/prng"
)

// E3Config parameterizes the movement-fraction experiment.
type E3Config struct {
	// Objects and BlocksPer size the block universe.
	Objects, BlocksPer int
	// Bits is the generator width.
	Bits uint
}

// DefaultE3 uses a 20k-block universe.
func DefaultE3() E3Config { return E3Config{Objects: 20, BlocksPer: 1000, Bits: 64} }

// E3Step is one scaling operation in the schedule.
type E3Step struct {
	// NBefore and NAfter describe the operation.
	NBefore, NAfter int
	// Remove lists the logical indices removed (nil for additions).
	Remove []int
}

// DefaultE3Schedule exercises additions and removals of single disks and
// groups.
func DefaultE3Schedule() []E3Step {
	return []E3Step{
		{NBefore: 8, NAfter: 10},                      // add a 2-disk group
		{NBefore: 10, NAfter: 11},                     // add 1
		{NBefore: 11, NAfter: 9, Remove: []int{2, 7}}, // remove a 2-disk group
		{NBefore: 9, NAfter: 12},                      // add 3
		{NBefore: 12, NAfter: 11, Remove: []int{0}},   // remove 1
	}
}

// E3Row is the measurement of one operation under one strategy.
type E3Row struct {
	Op       string
	Strategy string
	// Fraction is the fraction of all blocks that changed physical disks.
	Fraction float64
	// Optimal is z_j.
	Optimal float64
}

// E3Result is the movement table.
type E3Result struct {
	Config E3Config
	Rows   []E3Row
}

// RunE3 measures the per-operation movement fraction of every strategy
// against the optimal z_j of Definition 3.4, over a mixed schedule of
// additions and removals. SCADDAR, the directory scheme, and the naive
// scheme should sit at z_j; complete redistribution and round-robin far
// above it; consistent hashing near it.
func RunE3(cfg E3Config) (*E3Result, error) {
	blocks := BlockUniverse(cfg.Objects, cfg.BlocksPer)
	x0 := X0FuncBits(cfg.Bits)
	schedule := DefaultE3Schedule()
	n0 := schedule[0].NBefore

	sc, err := placement.NewScaddar(n0, x0)
	if err != nil {
		return nil, err
	}
	nv, err := placement.NewNaive(n0, x0)
	if err != nil {
		return nil, err
	}
	rs, err := placement.NewReshuffle(n0, x0)
	if err != nil {
		return nil, err
	}
	rr, err := placement.NewRoundRobin(n0)
	if err != nil {
		return nil, err
	}
	dir, err := placement.NewDirectory(n0, prng.NewSplitMix64(99))
	if err != nil {
		return nil, err
	}
	ch, err := placement.NewConsistent(n0, 128)
	if err != nil {
		return nil, err
	}
	jp, err := placement.NewJump(n0, x0)
	if err != nil {
		return nil, err
	}
	strategies := []placement.Strategy{sc, nv, rs, rr, dir, ch, jp}

	res := &E3Result{Config: cfg}
	for _, step := range schedule {
		opName := fmt.Sprintf("%d→%d", step.NBefore, step.NAfter)
		for _, s := range strategies {
			if s.Name() == "jump" && step.Remove != nil {
				// Jump hashing cannot remove arbitrary buckets — the
				// structural limitation this comparison documents. Keep its
				// disk count in sync by shrinking at the tail instead, and
				// record the row as not-applicable.
				tail := make([]int, len(step.Remove))
				for i := range tail {
					tail[i] = step.NAfter + i
				}
				if err := s.RemoveDisks(tail...); err != nil {
					return nil, err
				}
				res.Rows = append(res.Rows, E3Row{
					Op: opName, Strategy: s.Name(),
					Fraction: -1, // marker: not applicable
					Optimal:  placement.OptimalMoveFraction(step.NBefore, step.NAfter),
				})
				continue
			}
			if s.N() != step.NBefore {
				return nil, fmt.Errorf("experiments: %s has %d disks, schedule expects %d", s.Name(), s.N(), step.NBefore)
			}
			before := placement.Snapshot(s, blocks)
			var moves int
			if step.Remove == nil {
				if err := s.AddDisks(step.NAfter - step.NBefore); err != nil {
					return nil, err
				}
				after := placement.Snapshot(s, blocks)
				moves, err = placement.Moves(before, after)
			} else {
				if err := s.RemoveDisks(step.Remove...); err != nil {
					return nil, err
				}
				after := placement.Snapshot(s, blocks)
				moves, err = placement.MovedPhysical(before, after, step.NBefore, sortedCopy(step.Remove))
			}
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, E3Row{
				Op:       opName,
				Strategy: s.Name(),
				Fraction: float64(moves) / float64(len(blocks)),
				Optimal:  placement.OptimalMoveFraction(step.NBefore, step.NAfter),
			})
		}
	}
	return res, nil
}

// sortedCopy returns a sorted copy of xs.
func sortedCopy(xs []int) []int {
	out := append([]int(nil), xs...)
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && out[k] < out[k-1]; k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return out
}

// Table renders the movement-fraction table.
func (r *E3Result) Table() *Table {
	t := &Table{
		ID:      "E3",
		Caption: "RO1 — fraction of blocks moved per scaling operation (optimal = z_j)",
		Header:  []string{"op", "z_j", "scaddar", "naive", "directory", "consistent", "jump", "reshuffle", "roundrobin"},
	}
	byOp := map[string]map[string]float64{}
	var order []string
	optimal := map[string]float64{}
	for _, row := range r.Rows {
		if _, ok := byOp[row.Op]; !ok {
			byOp[row.Op] = map[string]float64{}
			order = append(order, row.Op)
		}
		byOp[row.Op][row.Strategy] = row.Fraction
		optimal[row.Op] = row.Optimal
	}
	cell := func(v float64) string {
		if v < 0 {
			return "n/a"
		}
		return f3(v)
	}
	for _, op := range order {
		m := byOp[op]
		t.Rows = append(t.Rows, []string{
			op, f3(optimal[op]),
			cell(m["scaddar"]), cell(m["naive"]), cell(m["directory"]),
			cell(m["consistent"]), cell(m["jump"]), cell(m["reshuffle"]), cell(m["roundrobin"]),
		})
	}
	return t
}
