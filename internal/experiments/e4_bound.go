package experiments

import (
	"scaddar/internal/scaddar"
)

// E4Row is one (b, ε, N̄) configuration with the rule-of-thumb and exact
// maximum operation counts.
type E4Row struct {
	Bits     uint
	Eps      float64
	AvgDisks int
	// RuleOfThumb is the paper's closed-form estimate.
	RuleOfThumb int
	// Exact is the simulation of the Lemma 4.3 precondition for a
	// constant-size array of AvgDisks disks.
	Exact int
}

// E4Result is the Section 4.3 table.
type E4Result struct {
	Rows []E4Row
}

// RunE4 reproduces and extends the Section 4.3 worked examples: the number
// of scaling operations supportable before the randomness budget forces a
// full redistribution, for a grid of generator widths, tolerances, and
// average array sizes. The paper's own rows are (64, 1%, 16) → 13 and
// (32, 5%, 8) → 8.
func RunE4() (*E4Result, error) {
	type cfg struct {
		bits uint
		eps  float64
		n    int
	}
	grid := []cfg{
		{64, 0.01, 16}, // the paper's Section 4.3 worked example
		{32, 0.05, 8},  // the paper's Section 5 setting
		{32, 0.01, 8},
		{32, 0.05, 16},
		{32, 0.01, 16},
		{48, 0.01, 16},
		{64, 0.05, 8},
		{64, 0.01, 8},
		{64, 0.01, 64},
		{64, 0.001, 16},
	}
	res := &E4Result{}
	for _, c := range grid {
		exact, err := scaddar.MaxOpsExact(c.bits, c.n, c.eps, func(int) int { return c.n }, 200)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, E4Row{
			Bits:        c.bits,
			Eps:         c.eps,
			AvgDisks:    c.n,
			RuleOfThumb: scaddar.RuleOfThumb(c.bits, c.eps, float64(c.n)),
			Exact:       exact,
		})
	}
	return res, nil
}

// Table renders the bound table.
func (r *E4Result) Table() *Table {
	t := &Table{
		ID:      "E4",
		Caption: "Section 4.3 — max scaling operations k before full redistribution",
		Header:  []string{"bits", "ε", "N̄", "rule-of-thumb k", "exact k"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			d(int(row.Bits)),
			f4(row.Eps),
			d(row.AvgDisks),
			d(row.RuleOfThumb),
			d(row.Exact),
		})
	}
	return t
}
