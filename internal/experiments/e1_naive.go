package experiments

import (
	"fmt"

	"scaddar/internal/placement"
)

// E1Config parameterizes the Figure 1 reproduction.
type E1Config struct {
	// N0 is the initial disk count (the figure uses 4).
	N0 int
	// Adds is the number of successive single-disk additions (the figure
	// shows 2).
	Adds int
	// Objects and BlocksPer size the block universe.
	Objects, BlocksPer int
	// Bits is the generator width.
	Bits uint
}

// DefaultE1 matches Figure 1: 4 initial disks, two single-disk additions.
func DefaultE1() E1Config {
	return E1Config{N0: 4, Adds: 2, Objects: 40, BlocksPer: 500, Bits: 64}
}

// E1Result reports, for the final addition, how many movers each
// pre-existing disk contributed, per strategy.
type E1Result struct {
	Config E1Config
	// Sources[strategy][disk] is the number of blocks the final addition
	// moved off that disk.
	Sources map[string][]int
	// IgnoredDisks[strategy] lists disks that contributed no movers — the
	// Figure 1 pathology when non-empty for a scheme that should draw
	// uniformly.
	IgnoredDisks map[string][]int
}

// RunE1 reproduces Figure 1: under the naive scheme the second addition
// draws movers only from a subset of disks (the paper's example: disks 1, 3
// and 4, ignoring 0 and 2), while SCADDAR draws from all of them.
func RunE1(cfg E1Config) (*E1Result, error) {
	if cfg.Adds < 2 {
		return nil, fmt.Errorf("experiments: E1 needs at least 2 additions to expose the skew")
	}
	blocks := BlockUniverse(cfg.Objects, cfg.BlocksPer)
	x0 := X0FuncBits(cfg.Bits)

	naive, err := placement.NewNaive(cfg.N0, x0)
	if err != nil {
		return nil, err
	}
	sc, err := placement.NewScaddar(cfg.N0, x0)
	if err != nil {
		return nil, err
	}

	res := &E1Result{
		Config:       cfg,
		Sources:      make(map[string][]int),
		IgnoredDisks: make(map[string][]int),
	}
	for _, strat := range []placement.Strategy{naive, sc} {
		for op := 0; op < cfg.Adds-1; op++ {
			if err := strat.AddDisks(1); err != nil {
				return nil, err
			}
		}
		before := placement.Snapshot(strat, blocks)
		if err := strat.AddDisks(1); err != nil {
			return nil, err
		}
		after := placement.Snapshot(strat, blocks)
		sources := make([]int, strat.N()-1)
		for i := range blocks {
			if before[i] != after[i] {
				sources[before[i]]++
			}
		}
		res.Sources[strat.Name()] = sources
		var ignored []int
		for disk, c := range sources {
			if c == 0 {
				ignored = append(ignored, disk)
			}
		}
		res.IgnoredDisks[strat.Name()] = ignored
	}
	return res, nil
}

// Table renders the result.
func (r *E1Result) Table() *Table {
	t := &Table{
		ID: "E1",
		Caption: fmt.Sprintf("Figure 1 — source disks of blocks moved by addition #%d (N0=%d, 1-disk adds)",
			r.Config.Adds, r.Config.N0),
		Header: []string{"strategy", "per-disk movers", "ignored disks"},
	}
	for _, name := range []string{"naive", "scaddar"} {
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%v", r.Sources[name]),
			fmt.Sprintf("%v", r.IgnoredDisks[name]),
		})
	}
	return t
}
