package experiments

import (
	"strings"
	"testing"
)

func TestE1ReproducesFigure1Skew(t *testing.T) {
	res, err := RunE1(DefaultE1())
	if err != nil {
		t.Fatal(err)
	}
	// The naive second addition must ignore some disks (Figure 1: 0 and 2)…
	if len(res.IgnoredDisks["naive"]) == 0 {
		t.Fatalf("naive ignored no disks: %v", res.Sources["naive"])
	}
	// …while SCADDAR draws movers from every disk.
	if len(res.IgnoredDisks["scaddar"]) != 0 {
		t.Fatalf("scaddar ignored disks %v", res.IgnoredDisks["scaddar"])
	}
	// With N0=4 and two 1-disk adds, the naive movers have X0 ≡ 5 (mod 6);
	// specifically disks 0 and 2 contribute nothing.
	src := res.Sources["naive"]
	if src[0] != 0 || src[2] != 0 {
		t.Fatalf("naive sources = %v, want disks 0 and 2 empty", src)
	}
	if src[1] == 0 || src[3] == 0 || src[4] == 0 {
		t.Fatalf("naive sources = %v, want disks 1, 3, 4 non-empty", src)
	}
	tbl := res.Table().Render()
	if !strings.Contains(tbl, "naive") || !strings.Contains(tbl, "scaddar") {
		t.Fatal("table rendering incomplete")
	}
}

func TestE1RejectsSingleAdd(t *testing.T) {
	cfg := DefaultE1()
	cfg.Adds = 1
	if _, err := RunE1(cfg); err == nil {
		t.Fatal("single-add E1 accepted")
	}
}

func TestE2MatchesSection5(t *testing.T) {
	res, err := RunE2(DefaultE2())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 11 {
		t.Fatalf("points = %d, want 11", len(res.Points))
	}
	// The paper's protocol: with b=32, ε≈5%, N̄≈8 the budget is exhausted
	// right after the 8th operation (exact Lemma 4.3 check: 9th op fails).
	if res.BudgetExhaustedAt != 9 {
		t.Fatalf("budget exhausted at op %d, want 9 (i.e. 8 ops supported)", res.BudgetExhaustedAt)
	}
	// SCADDAR stays load balanced throughout the supported window: CoV
	// within 3x of the ideal reshuffle curve while within budget.
	for _, p := range res.Points {
		if p.OpIndex == 0 || !p.WithinBudget {
			continue
		}
		if p.CoV["scaddar"] > 3*p.CoV["reshuffle"]+0.05 {
			t.Errorf("op %d: scaddar CoV %.4f vs reshuffle %.4f", p.OpIndex, p.CoV["scaddar"], p.CoV["reshuffle"])
		}
	}
	// The paper: the SCADDAR curve grows faster than the full-redistribution
	// curve. Compare the final supported point against the start.
	last := res.Points[8]
	first := res.Points[1]
	growthSc := last.CoV["scaddar"] - first.CoV["scaddar"]
	growthRs := last.CoV["reshuffle"] - first.CoV["reshuffle"]
	if growthSc < growthRs-0.01 {
		t.Errorf("scaddar CoV growth %.4f not above reshuffle growth %.4f", growthSc, growthRs)
	}
	// The recommended lifecycle (rebaseline before the budget breaks) keeps
	// the balance healthy through the whole run, unlike plain SCADDAR whose
	// CoV degrades once past the budget.
	if res.Rebaselines == 0 {
		t.Error("lifecycle series never rebaselined in a budget-exceeding run")
	}
	final := res.Points[len(res.Points)-1]
	if final.CoV["scaddar+redist"] > 0.1 {
		t.Errorf("lifecycle CoV %.4f at the end of the run", final.CoV["scaddar+redist"])
	}
	if final.CoV["scaddar"] < 2*final.CoV["scaddar+redist"] {
		t.Errorf("past-budget scaddar CoV %.4f not clearly worse than lifecycle %.4f",
			final.CoV["scaddar"], final.CoV["scaddar+redist"])
	}
}

func TestE3MovementShape(t *testing.T) {
	res, err := RunE3(DefaultE3())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(DefaultE3Schedule())*7 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Strategy == "jump" && row.Fraction < 0 {
			continue // arbitrary removals: structurally unsupported
		}
		switch row.Strategy {
		case "scaddar", "naive", "directory", "jump":
			if row.Fraction < row.Optimal-0.03 || row.Fraction > row.Optimal+0.03 {
				t.Errorf("%s %s: fraction %.3f, optimal %.3f", row.Op, row.Strategy, row.Fraction, row.Optimal)
			}
		case "consistent":
			if row.Fraction > row.Optimal+0.12 {
				t.Errorf("%s consistent: fraction %.3f far above optimal %.3f", row.Op, row.Fraction, row.Optimal)
			}
		case "reshuffle", "roundrobin":
			if row.Fraction < 2*row.Optimal {
				t.Errorf("%s %s: fraction %.3f suspiciously low (optimal %.3f)", row.Op, row.Strategy, row.Fraction, row.Optimal)
			}
		}
	}
}

func TestE4PaperRows(t *testing.T) {
	res, err := RunE4()
	if err != nil {
		t.Fatal(err)
	}
	found64, found32 := false, false
	for _, row := range res.Rows {
		if row.Bits == 64 && row.Eps == 0.01 && row.AvgDisks == 16 {
			found64 = true
			if row.RuleOfThumb != 13 {
				t.Errorf("(64,1%%,16) rule of thumb = %d, want 13", row.RuleOfThumb)
			}
			if row.Exact < 12 || row.Exact > 14 {
				t.Errorf("(64,1%%,16) exact = %d, want ~13", row.Exact)
			}
		}
		if row.Bits == 32 && row.Eps == 0.05 && row.AvgDisks == 8 {
			found32 = true
			if row.RuleOfThumb != 8 {
				t.Errorf("(32,5%%,8) rule of thumb = %d, want 8", row.RuleOfThumb)
			}
		}
		// Monotonicity sanity: more bits can never hurt.
	}
	if !found64 || !found32 {
		t.Fatal("paper rows missing from the grid")
	}
}

func TestE5AccessCost(t *testing.T) {
	cfg := DefaultE5()
	cfg.Lookups = 20000 // keep the unit test fast
	res, err := RunE5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(cfg.OpCounts) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The chain cost must grow with j but stay cheap in absolute terms
	// (well under a microsecond even at j=32).
	last := res.Rows[len(res.Rows)-1]
	if last.ScaddarNs > 5000 {
		t.Errorf("j=%d lookup costs %.0f ns; AO1 violated", last.Ops, last.ScaddarNs)
	}
	if res.Rows[0].ScaddarNs > last.ScaddarNs+500 {
		t.Errorf("cost at j=0 (%.0f ns) exceeds cost at j=%d (%.0f ns)",
			res.Rows[0].ScaddarNs, last.Ops, last.ScaddarNs)
	}
}

func TestE5Validation(t *testing.T) {
	if _, err := RunE5(E5Config{OpCounts: []int{1}, Lookups: 0}); err == nil {
		t.Fatal("zero lookups accepted")
	}
}

func TestE6BoundDominatesEmpirical(t *testing.T) {
	cfg := DefaultE6()
	cfg.Blocks = 1 << 17 // faster in unit tests
	res, err := RunE6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Sampling noise on max/min-1 with ~Blocks/N per disk: generous slack.
	for _, row := range res.Rows {
		if row.Bound > 10 {
			continue // bound collapsed; nothing to check
		}
		noise := 0.12
		if row.Empirical > row.Bound+noise {
			t.Errorf("op %d: empirical %.4f exceeds bound %.4f (+noise)", row.Ops, row.Empirical, row.Bound)
		}
	}
	// The bound grows monotonically with operations.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Bound < res.Rows[i-1].Bound {
			t.Errorf("bound decreased at op %d", res.Rows[i].Ops)
		}
	}
}

func TestE7OnlineReorgNoHiccups(t *testing.T) {
	cfg := DefaultE7()
	cfg.Objects = 10
	cfg.BlocksPer = 300 // keep the unit test fast
	res, err := RunE7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Hiccups != 0 {
			t.Errorf("load %.2f: %d hiccups during online reorganization", row.LoadFraction, row.Hiccups)
		}
		if row.Rounds < 1 {
			t.Errorf("load %.2f: migration took %d rounds", row.LoadFraction, row.Rounds)
		}
	}
	// Higher load leaves less spare bandwidth: drains take at least as many
	// rounds as the idle drain.
	if res.Rows[2].Rounds < res.Rows[0].Rounds {
		t.Errorf("loaded drain (%d rounds) faster than idle drain (%d rounds)",
			res.Rows[2].Rounds, res.Rows[0].Rounds)
	}
}

func TestE8FaultToleranceSurvival(t *testing.T) {
	res, err := RunE8(DefaultE8())
	if err != nil {
		t.Fatal(err)
	}
	if res.MirrorOverhead != 2 {
		t.Fatalf("mirror overhead = %g", res.MirrorOverhead)
	}
	// Hybrid parity must actually save storage over mirroring.
	if res.ParityOverhead >= 2 || res.ParityOverhead < 1.25 {
		t.Fatalf("parity overhead = %.3f, want in [1.25, 2)", res.ParityOverhead)
	}
	lostSomewhere := false
	for _, row := range res.Rows {
		// Both schemes guarantee zero loss for any single-disk failure.
		if strings.HasPrefix(row.Failed, "disk ") {
			if row.Lost != 0 {
				t.Errorf("%s %s: lost %d blocks", row.Scheme, row.Failed, row.Lost)
			}
			if row.Readable != row.Blocks {
				t.Errorf("%s %s: %d/%d readable", row.Scheme, row.Failed, row.Readable, row.Blocks)
			}
		}
		// Mirroring also survives non-partner double failures.
		if row.Scheme == "mirror" && strings.Contains(row.Failed, "non-partners") && row.Lost != 0 {
			t.Errorf("mirror %s: lost %d blocks", row.Failed, row.Lost)
		}
		if strings.Contains(row.Failed, "offset partners") && row.Lost > 0 {
			lostSomewhere = true
		}
	}
	if !lostSomewhere {
		t.Fatal("offset-partner double failure lost nothing; drill is miswired")
	}
}

func TestE9StorageAdvantage(t *testing.T) {
	res, err := RunE9(DefaultE9())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(DefaultE9().Libraries) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	prev := 0.0
	for _, row := range res.Rows {
		if row.ScaddarBytes >= row.DirectoryBytes {
			t.Errorf("%dx%d: scaddar %d bytes not below directory %d",
				row.Objects, row.BlocksPer, row.ScaddarBytes, row.DirectoryBytes)
		}
		// SCADDAR metadata is dominated by seeds (8 B/object), so the
		// advantage grows with blocks per object.
		if row.Ratio <= prev && row.BlocksPer > 1000 {
			t.Errorf("ratio not growing: %.0f after %.0f", row.Ratio, prev)
		}
		prev = row.Ratio
	}
	// The paper-scale row (thousands of objects, tens of thousands of
	// blocks): the directory is thousands of times larger.
	big := res.Rows[2]
	if big.Ratio < 1000 {
		t.Errorf("paper-scale ratio %.0f, want >= 1000", big.Ratio)
	}
}

func TestE9Validation(t *testing.T) {
	if _, err := RunE9(E9Config{Ops: 0}); err == nil {
		t.Fatal("zero ops accepted")
	}
}

func TestE10SchedulingBudgets(t *testing.T) {
	cfg := DefaultE10()
	cfg.Trials = 10 // keep the unit test fast
	res, err := RunE10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	budgets := map[string]int{}
	for _, row := range res.Rows {
		budgets[row.Policy] = row.Budget
	}
	// The fixed average-seek model must be conservative relative to a real
	// elevator schedule, and FCFS must not beat SCAN.
	if budgets["scan"] <= res.FixedModel {
		t.Errorf("SCAN budget %d not above fixed model %d", budgets["scan"], res.FixedModel)
	}
	if budgets["fcfs"] > budgets["scan"] {
		t.Errorf("FCFS budget %d above SCAN %d", budgets["fcfs"], budgets["scan"])
	}
	if budgets["cscan"] <= res.FixedModel {
		t.Errorf("CSCAN budget %d not above fixed model %d", budgets["cscan"], res.FixedModel)
	}
}

func TestE11LogicalMappingWins(t *testing.T) {
	cfg := DefaultE11()
	cfg.Rounds = 10 // keep the unit test fast
	res, err := RunE11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	mixed, mapped := res.Rows[0], res.Rows[1]
	if mixed.Config == "logical mapping" {
		mixed, mapped = mapped, mixed
	}
	// The logical mapping must admit strictly more streams from the same
	// hardware (the new disks' extra bandwidth is otherwise stranded).
	if mapped.AdmittedStreams <= mixed.AdmittedStreams {
		t.Errorf("mapping admits %d, mixed admits %d", mapped.AdmittedStreams, mixed.AdmittedStreams)
	}
	if mapped.UtilizationPct <= mixed.UtilizationPct {
		t.Errorf("mapping utilization %.0f%% not above mixed %.0f%%", mapped.UtilizationPct, mixed.UtilizationPct)
	}
	// Both stay hiccup-free under statistical admission.
	if mixed.Hiccups != 0 || mapped.Hiccups != 0 {
		t.Errorf("hiccups: mixed %d, mapped %d", mixed.Hiccups, mapped.Hiccups)
	}
	// Logical disk counts: 8 physical vs 6 + 2*2 logical.
	if mixed.LogicalDisks != 8 || mapped.LogicalDisks != 10 {
		t.Errorf("logical disks: mixed %d, mapped %d", mixed.LogicalDisks, mapped.LogicalDisks)
	}
}

func TestE12GeneratorQuality(t *testing.T) {
	res, err := RunE12(DefaultE12())
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]E12Row{}
	for _, row := range res.Rows {
		rows[row.Generator] = row
	}
	// Quality generators look like random samples: p-values away from both
	// 0 (skew) and 1 (lattice), CoV near multinomial noise.
	for _, name := range []string{"splitmix64", "xorshift64star", "pcg32"} {
		row := rows[name]
		if row.ChiP0 < 0.01 || row.ChiP0 > 0.999 {
			t.Errorf("%s initial p = %g", name, row.ChiP0)
		}
		if row.CoV0 > 0.05 {
			t.Errorf("%s initial CoV = %g", name, row.CoV0)
		}
	}
	// The LCG's low bits cycle with period N on a power-of-two modulus:
	// the initial placement is PERFECTLY uniform (CoV ~ 0, p ~ 1) — the
	// lattice signature, not randomness. Consecutive blocks would march
	// round-robin across disks, defeating the statistical independence the
	// admission analysis needs.
	for _, name := range []string{"lcg64", "lcg64-low"} {
		row := rows[name]
		if row.CoV0 > 0.001 {
			t.Errorf("%s initial CoV = %g, expected the degenerate lattice ~0", name, row.CoV0)
		}
		if row.ChiP0 < 0.999 {
			t.Errorf("%s initial p = %g, expected ~1 (over-uniform)", name, row.ChiP0)
		}
	}
}

func TestE13CacheSweep(t *testing.T) {
	cfg := DefaultE13()
	cfg.Rounds = 80 // keep the unit test fast
	res, err := RunE13(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(cfg.CacheSizes) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Hit rate grows monotonically with cache size; disk reads shrink.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].HitRate < res.Rows[i-1].HitRate {
			t.Errorf("hit rate fell from %.3f to %.3f at %d blocks",
				res.Rows[i-1].HitRate, res.Rows[i].HitRate, res.Rows[i].CacheBlocks)
		}
		if res.Rows[i].DiskReads > res.Rows[i-1].DiskReads {
			t.Errorf("disk reads grew from %d to %d at %d blocks",
				res.Rows[i-1].DiskReads, res.Rows[i].DiskReads, res.Rows[i].CacheBlocks)
		}
	}
	// No cache: zero hits. Largest cache: the majority of reads hit.
	if res.Rows[0].HitRate != 0 {
		t.Errorf("cacheless hit rate %.3f", res.Rows[0].HitRate)
	}
	last := res.Rows[len(res.Rows)-1]
	if last.HitRate < 0.5 {
		t.Errorf("largest cache hit rate %.3f, want > 0.5", last.HitRate)
	}
	// Accounting: disk reads + hits == blocks served.
	for _, row := range res.Rows {
		if got := row.DiskReads + int(row.HitRate*float64(row.BlocksServed)+0.5); got < row.BlocksServed*99/100 || got > row.BlocksServed*101/100 {
			t.Errorf("cache %d: reads %d + hits ≈ %d != served %d",
				row.CacheBlocks, row.DiskReads, got-row.DiskReads, row.BlocksServed)
		}
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		ID:      "T",
		Caption: "caption",
		Header:  []string{"a", "long-header"},
		Rows:    [][]string{{"xxxxx", "1"}},
	}
	out := tbl.Render()
	for _, want := range []string{"== T: caption ==", "long-header", "xxxxx"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestBlockUniverseDeterministic(t *testing.T) {
	a := BlockUniverse(3, 5)
	b := BlockUniverse(3, 5)
	if len(a) != 15 {
		t.Fatalf("universe size %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("universe not deterministic")
		}
	}
}
