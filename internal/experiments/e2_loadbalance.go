package experiments

import (
	"fmt"

	"scaddar/internal/placement"
	"scaddar/internal/scaddar"
	"scaddar/internal/stats"
)

// E2Config parameterizes the Section 5 load-balance experiment.
type E2Config struct {
	// N0 is the initial disk count.
	N0 int
	// Ops is the number of successive single-disk additions to perform.
	Ops int
	// Objects and BlocksPer size the library; the paper uses 20 objects.
	Objects, BlocksPer int
	// Bits is the generator width; the paper's Section 5 uses 32.
	Bits uint
	// Eps is the unfairness tolerance; the paper uses ~5%.
	Eps float64
}

// DefaultE2 matches the Section 5 protocol: 20 objects, b=32, ε≈5%,
// single-disk additions starting from 4 disks so the average array size
// across the run is the paper's N̄≈8. With these numbers the exact Lemma 4.3
// precondition fails after the 8th operation — the paper's "after eight
// scaling operations ... redistribution of all blocks is recommended".
func DefaultE2() E2Config {
	return E2Config{N0: 4, Ops: 10, Objects: 20, BlocksPer: 1000, Bits: 32, Eps: 0.05}
}

// E2Point is the measurement after one scaling operation.
type E2Point struct {
	// OpIndex is j (1-based); 0 is the initial state.
	OpIndex int
	// Disks is N_j.
	Disks int
	// CoV maps strategy name to the coefficient of variation of per-disk
	// block counts.
	CoV map[string]float64
	// WithinBudget reports whether the exact Lemma 4.3 precondition still
	// holds for SCADDAR at this point.
	WithinBudget bool
	// GuaranteedUnfairness is the analytical bound at this point.
	GuaranteedUnfairness float64
}

// E2Result is the full CoV-vs-operations series.
type E2Result struct {
	Config E2Config
	Points []E2Point
	// BudgetExhaustedAt is the first operation index where the Lemma 4.3
	// precondition fails (0 if never).
	BudgetExhaustedAt int
	// Rebaselines counts the complete redistributions the lifecycle series
	// ("scaddar+redist") performed.
	Rebaselines int
}

// RunE2 regenerates the Section 5 experiment (whose figures the paper
// omitted): the coefficient of variation of blocks per disk after each
// scaling operation, for SCADDAR, the naive scheme, and complete
// redistribution, with the Section 4.3 budget tracked alongside.
func RunE2(cfg E2Config) (*E2Result, error) {
	blocks := BlockUniverse(cfg.Objects, cfg.BlocksPer)
	x0 := X0FuncBits(cfg.Bits)

	sc, err := placement.NewScaddar(cfg.N0, x0)
	if err != nil {
		return nil, err
	}
	nv, err := placement.NewNaive(cfg.N0, x0)
	if err != nil {
		return nil, err
	}
	rs, err := placement.NewReshuffle(cfg.N0, x0)
	if err != nil {
		return nil, err
	}
	// The paper's full lifecycle: SCADDAR plus the recommended complete
	// redistribution whenever the next operation would break the budget.
	rb, err := placement.NewScaddar(cfg.N0, x0)
	if err != nil {
		return nil, err
	}
	if err := rb.SetBits(cfg.Bits); err != nil {
		return nil, err
	}
	strategies := []placement.Strategy{sc, nv, rs, rb}

	budget, err := scaddar.NewBudget(cfg.Bits, cfg.N0)
	if err != nil {
		return nil, err
	}
	rbBudget, err := scaddar.NewBudget(cfg.Bits, cfg.N0)
	if err != nil {
		return nil, err
	}

	labels := []string{"scaddar", "naive", "reshuffle", "scaddar+redist"}

	res := &E2Result{Config: cfg}
	measure := func(op int) {
		p := E2Point{
			OpIndex:              op,
			Disks:                sc.N(),
			CoV:                  make(map[string]float64),
			WithinBudget:         budget.WithinTolerance(cfg.Eps),
			GuaranteedUnfairness: budget.GuaranteedUnfairness(),
		}
		for i, s := range strategies {
			p.CoV[labels[i]] = stats.CoVInts(placement.LoadVector(s, blocks))
		}
		res.Points = append(res.Points, p)
		if !p.WithinBudget && res.BudgetExhaustedAt == 0 {
			res.BudgetExhaustedAt = op
		}
	}

	measure(0)
	for op := 1; op <= cfg.Ops; op++ {
		// The lifecycle strategy redistributes *before* the operation that
		// would break its budget, exactly as Section 4.3 prescribes.
		if !rbBudget.NextWithinTolerance(rb.N()+1, cfg.Eps) {
			if err := rb.Rebaseline(); err != nil {
				return nil, err
			}
			if err := rbBudget.Reset(rb.N()); err != nil {
				return nil, err
			}
			res.Rebaselines++
		}
		for _, s := range strategies {
			if err := s.AddDisks(1); err != nil {
				return nil, err
			}
		}
		if err := budget.Record(sc.N()); err != nil {
			return nil, err
		}
		if err := rbBudget.Record(rb.N()); err != nil {
			return nil, err
		}
		measure(op)
	}
	return res, nil
}

// Table renders the CoV series.
func (r *E2Result) Table() *Table {
	t := &Table{
		ID: "E2",
		Caption: fmt.Sprintf("Section 5 — CoV of blocks/disk vs. scaling operations (%d objects, b=%d, ε=%g)",
			r.Config.Objects, r.Config.Bits, r.Config.Eps),
		Header: []string{"op", "disks", "scaddar", "naive", "reshuffle", "scaddar+redist", "bound f", "within ε"},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			d(p.OpIndex), d(p.Disks),
			f4(p.CoV["scaddar"]), f4(p.CoV["naive"]), f4(p.CoV["reshuffle"]), f4(p.CoV["scaddar+redist"]),
			f4(p.GuaranteedUnfairness),
			fmt.Sprintf("%v", p.WithinBudget),
		})
	}
	return t
}
