package experiments

import (
	"fmt"

	"scaddar/internal/placement"
	"scaddar/internal/prng"
	"scaddar/internal/stats"
)

// E12Config parameterizes the generator-quality experiment.
type E12Config struct {
	// N0 is the initial disk count.
	N0 int
	// Ops is the number of single-disk additions before measuring.
	Ops int
	// Objects and BlocksPer size the block universe.
	Objects, BlocksPer int
}

// DefaultE12 measures after a 4-operation chain on 8 disks.
func DefaultE12() E12Config {
	return E12Config{N0: 8, Ops: 4, Objects: 20, BlocksPer: 1000}
}

// E12Row is one generator family's placement quality.
type E12Row struct {
	Generator string
	// CoV0 is the coefficient of variation of the initial placement.
	CoV0 float64
	// CoVJ is the CoV after the operation chain.
	CoVJ float64
	// ChiP0 and ChiPJ are chi-square uniformity p-values before and after.
	ChiP0, ChiPJ float64
}

// E12Result is the generator-quality report.
type E12Result struct {
	Config E12Config
	Rows   []E12Row
}

// RunE12 probes an assumption the paper states but does not test: "We will
// pretend in this analysis that the pseudo-random number generator in fact
// generates a truly random number." The REMAP chain consumes randomness
// from the HIGH end of X (q = X div N), so generators with weak low bits
// (the classic LCG failure) still place well — but a generator whose output
// is poor overall degrades both the initial placement and the post-chain
// balance. The table puts numbers on which families are safe to use as
// p_r(s_m).
func RunE12(cfg E12Config) (*E12Result, error) {
	families := []struct {
		name string
		mk   func(seed uint64) prng.Source
	}{
		{"splitmix64", func(s uint64) prng.Source { return prng.NewSplitMix64(s) }},
		{"xorshift64star", func(s uint64) prng.Source { return prng.NewXorshift64Star(s) }},
		{"pcg32", func(s uint64) prng.Source { return prng.NewPCG32(s) }},
		{"lcg64", func(s uint64) prng.Source { return prng.NewLCG64(s) }},
		// lcg64-low deliberately feeds the chain the WEAK low 32 bits of
		// the LCG (by discarding the high bits), the classic misuse.
		{"lcg64-low", func(s uint64) prng.Source { return &lowBits{src: prng.NewLCG64(s)} }},
	}
	res := &E12Result{Config: cfg}
	for _, fam := range families {
		x0 := placement.NewX0Func(fam.mk)
		strat, err := placement.NewScaddar(cfg.N0, x0)
		if err != nil {
			return nil, err
		}
		blocks := BlockUniverse(cfg.Objects, cfg.BlocksPer)
		loads0 := placement.LoadVector(strat, blocks)
		_, _, p0, err := stats.ChiSquareUniform(loads0)
		if err != nil {
			return nil, err
		}
		for op := 0; op < cfg.Ops; op++ {
			if err := strat.AddDisks(1); err != nil {
				return nil, err
			}
		}
		loadsJ := placement.LoadVector(strat, blocks)
		_, _, pJ, err := stats.ChiSquareUniform(loadsJ)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, E12Row{
			Generator: fam.name,
			CoV0:      stats.CoVInts(loads0),
			CoVJ:      stats.CoVInts(loadsJ),
			ChiP0:     p0,
			ChiPJ:     pJ,
		})
	}
	return res, nil
}

// lowBits exposes only the low 32 bits of a 64-bit source — the classic way
// to misuse an LCG.
type lowBits struct {
	src prng.Source
}

func (l *lowBits) Next() uint64 { return l.src.Next() & 0xFFFFFFFF }
func (l *lowBits) Bits() uint   { return 32 }
func (l *lowBits) Seed() uint64 { return l.src.Seed() }
func (l *lowBits) Reset()       { l.src.Reset() }

// interface check: lowBits is a valid Source.
var _ prng.Source = (*lowBits)(nil)

// Table renders the generator-quality report.
func (r *E12Result) Table() *Table {
	t := &Table{
		ID: "E12",
		Caption: fmt.Sprintf("Generator quality — placement uniformity before and after %d scaling ops (%d blocks)",
			r.Config.Ops, r.Config.Objects*r.Config.BlocksPer),
		Header: []string{"generator", "CoV initial", "CoV after ops", "chi² p initial", "chi² p after"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Generator, f4(row.CoV0), f4(row.CoVJ), f4(row.ChiP0), f4(row.ChiPJ),
		})
	}
	return t
}
