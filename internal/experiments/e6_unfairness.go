package experiments

import (
	"fmt"

	"scaddar/internal/prng"
	"scaddar/internal/scaddar"
	"scaddar/internal/stats"
)

// E6Config parameterizes the unfairness-bound experiment.
type E6Config struct {
	// Bits is the generator width; small widths make the bound reachable
	// empirically.
	Bits uint
	// N0 is the initial disk count.
	N0 int
	// Ops is the number of single-disk additions.
	Ops int
	// Blocks is the sample size per measurement.
	Blocks int
}

// DefaultE6 uses a deliberately small 20-bit budget so the bound's growth
// is visible within a handful of operations.
func DefaultE6() E6Config { return E6Config{Bits: 20, N0: 4, Ops: 8, Blocks: 1 << 19} }

// E6Row is one measurement.
type E6Row struct {
	Ops   int
	Disks int
	// Empirical is the measured max/min - 1 over per-disk block counts.
	Empirical float64
	// Bound is the analytical guarantee 1/(R0/μ_k - 1) of Lemma 4.3.
	Bound float64
	// CoV is the coefficient of variation at this point.
	CoV float64
}

// E6Result is the unfairness series.
type E6Result struct {
	Config E6Config
	Rows   []E6Row
}

// RunE6 verifies Lemmas 4.2/4.3 empirically: the measured unfairness of a
// SCADDAR placement stays below the analytical bound as operations accrue
// and the random range shrinks. The empirical figure includes sampling
// noise of roughly sqrt(N/Blocks), so the bound dominating it is the
// expected outcome until the budget collapses.
func RunE6(cfg E6Config) (*E6Result, error) {
	h, err := scaddar.NewHistory(cfg.N0)
	if err != nil {
		return nil, err
	}
	budget, err := scaddar.NewBudget(cfg.Bits, cfg.N0)
	if err != nil {
		return nil, err
	}
	src, ok := prng.Truncate(prng.NewSplitMix64(20260704), cfg.Bits).(prng.Indexed)
	if !ok {
		return nil, fmt.Errorf("experiments: truncated source lost indexing")
	}

	res := &E6Result{Config: cfg}
	measure := func() error {
		counts := make([]int, h.N())
		for i := 0; i < cfg.Blocks; i++ {
			counts[h.Locate(src.At(uint64(i)))]++
		}
		unf, err := stats.UnfairnessInts(counts)
		if err != nil {
			return err
		}
		res.Rows = append(res.Rows, E6Row{
			Ops:       h.Ops(),
			Disks:     h.N(),
			Empirical: unf,
			Bound:     budget.GuaranteedUnfairness(),
			CoV:       stats.CoVInts(counts),
		})
		return nil
	}
	if err := measure(); err != nil {
		return nil, err
	}
	for op := 1; op <= cfg.Ops; op++ {
		if _, err := h.Add(1); err != nil {
			return nil, err
		}
		if err := budget.Record(h.N()); err != nil {
			return nil, err
		}
		if err := measure(); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Table renders the unfairness series.
func (r *E6Result) Table() *Table {
	t := &Table{
		ID: "E6",
		Caption: fmt.Sprintf("Lemmas 4.2/4.3 — empirical unfairness vs. analytical bound (b=%d, %d blocks)",
			r.Config.Bits, r.Config.Blocks),
		Header: []string{"ops j", "disks", "empirical (max/min - 1)", "bound", "CoV"},
	}
	for _, row := range r.Rows {
		bound := "∞"
		if row.Bound < 1e6 {
			bound = f4(row.Bound)
		}
		t.Rows = append(t.Rows, []string{
			d(row.Ops), d(row.Disks), f4(row.Empirical), bound, f4(row.CoV),
		})
	}
	return t
}
