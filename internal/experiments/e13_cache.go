package experiments

import (
	"fmt"

	"scaddar/internal/cm"
	"scaddar/internal/placement"
	"scaddar/internal/prng"
	"scaddar/internal/workload"
)

// E13Config parameterizes the block-buffer experiment.
type E13Config struct {
	// N0 is the disk count.
	N0 int
	// Objects and BlocksPer size the library.
	Objects, BlocksPer int
	// ZipfS is the popularity skew of arrivals.
	ZipfS float64
	// ArrivalsPerRound is the number of new streams admitted each round
	// (each starts at block 0, as real viewers do).
	ArrivalsPerRound int
	// Rounds is the run length.
	Rounds int
	// CacheSizes are the buffer sizes (in blocks) to sweep; 0 = no cache.
	CacheSizes []int
}

// DefaultE13 sweeps cache sizes on a 4-disk server with skewed arrivals.
func DefaultE13() E13Config {
	return E13Config{
		N0: 4, Objects: 10, BlocksPer: 300, ZipfS: 1.0,
		ArrivalsPerRound: 2, Rounds: 200,
		CacheSizes: []int{0, 128, 512, 2048},
	}
}

// E13Row is one cache size's outcome.
type E13Row struct {
	CacheBlocks int
	// HitRate is cache hits / blocks served.
	HitRate float64
	// DiskReads is the total disk reads over the run.
	DiskReads int
	// BlocksServed is the total stream deliveries.
	BlocksServed int
	// Hiccups over the run.
	Hiccups int
}

// E13Result is the block-buffer report.
type E13Result struct {
	Config E13Config
	Rows   []E13Row
}

// RunE13 measures the interval-caching effect on top of random placement:
// with Zipf-skewed arrivals, viewers of a popular title trail each other
// closely, and a modest block buffer serves the followers from RAM — the
// disks only carry each title's leading stream. Random placement and the
// buffer compose: placement spreads the leaders' reads uniformly, the
// buffer absorbs the followers.
func RunE13(cfg E13Config) (*E13Result, error) {
	res := &E13Result{Config: cfg}
	for _, size := range cfg.CacheSizes {
		row, err := runE13Once(cfg, size)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

// runE13Once runs the arrival schedule against one cache size.
func runE13Once(cfg E13Config, cacheBlocks int) (*E13Row, error) {
	x0 := placement.NewX0Func(func(seed uint64) prng.Source { return prng.NewSplitMix64(seed) })
	strat, err := placement.NewScaddar(cfg.N0, x0)
	if err != nil {
		return nil, err
	}
	serverCfg := cm.DefaultConfig()
	serverCfg.CacheBlocks = cacheBlocks
	srv, err := cm.NewServer(serverCfg, strat)
	if err != nil {
		return nil, err
	}
	lib, err := workload.Library(workload.LibraryConfig{
		Objects: cfg.Objects, MinBlocks: cfg.BlocksPer, MaxBlocks: cfg.BlocksPer,
		BlockBytes: serverCfg.BlockBytes, BitrateBitsPerSec: 4 << 20, SeedBase: 5,
	})
	if err != nil {
		return nil, err
	}
	for _, obj := range lib {
		if err := srv.AddObject(obj); err != nil {
			return nil, err
		}
	}
	zipf, err := workload.NewZipf(prng.NewSplitMix64(13), cfg.Objects, cfg.ZipfS)
	if err != nil {
		return nil, err
	}

	diskReads := 0
	for r := 0; r < cfg.Rounds; r++ {
		for a := 0; a < cfg.ArrivalsPerRound; a++ {
			// Admission may refuse near capacity; skip quietly — the
			// comparison is about how far each configuration gets.
			if _, err := srv.StartStream(zipf.Draw()); err != nil {
				break
			}
		}
		srv.Array().ResetRounds()
		if err := srv.Tick(); err != nil {
			return nil, err
		}
		for i := 0; i < srv.N(); i++ {
			d, err := srv.Array().Disk(i)
			if err != nil {
				return nil, err
			}
			reads, _, _ := d.RoundLoad()
			diskReads += reads
		}
	}
	m := srv.Metrics()
	hitRate := 0.0
	if m.BlocksServed > 0 {
		hitRate = float64(m.CacheHits) / float64(m.BlocksServed)
	}
	return &E13Row{
		CacheBlocks:  cacheBlocks,
		HitRate:      hitRate,
		DiskReads:    diskReads,
		BlocksServed: m.BlocksServed,
		Hiccups:      m.Hiccups,
	}, nil
}

// Table renders the block-buffer report.
func (r *E13Result) Table() *Table {
	t := &Table{
		ID: "E13",
		Caption: fmt.Sprintf("Block buffer — interval caching over random placement (Zipf %.2f, %d arrivals/round, %d rounds)",
			r.Config.ZipfS, r.Config.ArrivalsPerRound, r.Config.Rounds),
		Header: []string{"cache blocks", "hit rate", "disk reads", "blocks served", "hiccups"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			d(row.CacheBlocks), f3(row.HitRate), d(row.DiskReads), d(row.BlocksServed), d(row.Hiccups),
		})
	}
	return t
}
