package experiments

import (
	"fmt"
	"time"

	"scaddar/internal/disk"
	"scaddar/internal/schedule"
)

// E10Config parameterizes the round-scheduling experiment.
type E10Config struct {
	// Profile is the disk model.
	Profile disk.Profile
	// BlockBytes is the block size.
	BlockBytes int64
	// Round is the scheduling round length.
	Round time.Duration
	// Trials is the Monte-Carlo sample per budget probe.
	Trials int
	// Seed fixes the randomness.
	Seed uint64
}

// DefaultE10 uses the paper-era configuration of the cm layer.
func DefaultE10() E10Config {
	return E10Config{
		Profile:    disk.Cheetah73,
		BlockBytes: 256 << 10,
		Round:      time.Second,
		Trials:     40,
		Seed:       1,
	}
}

// E10Row is one policy's per-round block budget.
type E10Row struct {
	Policy string
	// Budget is the number of uniformly random block reads that fit the
	// round (95th-percentile feasibility).
	Budget int
}

// E10Result is the scheduling report.
type E10Result struct {
	Config E10Config
	// FixedModel is the average-seek estimate the cm layer's admission
	// uses (disk.Profile.BlocksPerRound).
	FixedModel int
	Rows       []E10Row
}

// RunE10 validates the simulator's round model: scheduling each round's
// random requests with the elevator algorithm amortizes seeks, so the
// workload-aware SCAN/C-SCAN budgets exceed the fixed average-seek estimate
// the admission arithmetic uses — i.e. the fixed model is conservative, the
// safe direction. FCFS shows what ignoring scheduling costs.
func RunE10(cfg E10Config) (*E10Result, error) {
	model, err := schedule.Calibrate(cfg.Profile, cfg.BlockBytes)
	if err != nil {
		return nil, err
	}
	res := &E10Result{
		Config:     cfg,
		FixedModel: cfg.Profile.BlocksPerRound(cfg.Round, cfg.BlockBytes),
	}
	for _, policy := range []schedule.Policy{schedule.FCFS, schedule.SCAN, schedule.CSCAN} {
		budget, err := schedule.RoundBudget(model, cfg.Profile, cfg.BlockBytes, cfg.Round, policy, cfg.Trials, cfg.Seed)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, E10Row{Policy: policy.String(), Budget: budget})
	}
	return res, nil
}

// Table renders the scheduling report.
func (r *E10Result) Table() *Table {
	t := &Table{
		ID: "E10",
		Caption: fmt.Sprintf("Round scheduling — blocks/round on %s, %d KiB blocks, %v rounds (fixed avg-seek model: %d)",
			r.Config.Profile.Name, r.Config.BlockBytes>>10, r.Config.Round, r.FixedModel),
		Header: []string{"policy", "blocks/round"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{row.Policy, d(row.Budget)})
	}
	return t
}
