package experiments

import (
	"fmt"

	"scaddar/internal/scaddar"
)

// E9Config parameterizes the metadata-storage experiment.
type E9Config struct {
	// Ops is the length of the scaling history both schemes must support.
	Ops int
	// Libraries lists (objects, blocksPer) library shapes to sweep.
	Libraries [][2]int
}

// DefaultE9 sweeps library sizes from a small server to the paper's
// "thousands of CM objects ... each ... tens of thousands of blocks".
func DefaultE9() E9Config {
	return E9Config{
		Ops: 8,
		Libraries: [][2]int{
			{20, 1000},    // the Section 5 simulation scale
			{100, 10000},  // a mid-size server
			{1000, 20000}, // the paper's "thousands of objects"
			{5000, 50000}, // a large library
		},
	}
}

// E9Row compares metadata footprints for one library shape.
type E9Row struct {
	Objects, BlocksPer int
	// TotalBlocks is objects × blocksPer.
	TotalBlocks int64
	// DirectoryBytes is the floor for a block-location directory: 4 bytes
	// per block (a packed disk index; real directories with keys and
	// pointers are several times larger).
	DirectoryBytes int64
	// ScaddarBytes is the measured size of the binary operation log plus
	// one 8-byte seed per object.
	ScaddarBytes int64
	// Ratio is DirectoryBytes / ScaddarBytes.
	Ratio float64
}

// E9Result is the metadata-storage table.
type E9Result struct {
	Config E9Config
	Rows   []E9Row
}

// RunE9 quantifies the paper's storage claim: SCADDAR needs "only a storage
// structure for recording scaling operations, which is significantly less
// than the number of all block locations", versus a directory that "can
// potentially expand to millions of entries". The directory figure below is
// a deliberate *under*-estimate (4 bytes per block, no keys, no index
// structure), so the measured ratios are lower bounds on SCADDAR's
// advantage.
func RunE9(cfg E9Config) (*E9Result, error) {
	if cfg.Ops < 1 {
		return nil, fmt.Errorf("experiments: E9 needs at least one operation")
	}
	// Build a representative operation log and measure its encoded size.
	h, err := scaddar.NewHistory(8)
	if err != nil {
		return nil, err
	}
	for j := 0; j < cfg.Ops; j++ {
		if j%3 == 2 {
			if _, err := h.Remove(j % h.N()); err != nil {
				return nil, err
			}
		} else {
			if _, err := h.Add(1); err != nil {
				return nil, err
			}
		}
	}
	logBytes, err := h.MarshalBinary()
	if err != nil {
		return nil, err
	}

	res := &E9Result{Config: cfg}
	for _, lib := range cfg.Libraries {
		objects, blocksPer := lib[0], lib[1]
		total := int64(objects) * int64(blocksPer)
		row := E9Row{
			Objects:        objects,
			BlocksPer:      blocksPer,
			TotalBlocks:    total,
			DirectoryBytes: total * 4,
			ScaddarBytes:   int64(len(logBytes)) + int64(objects)*8,
		}
		row.Ratio = float64(row.DirectoryBytes) / float64(row.ScaddarBytes)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the storage comparison.
func (r *E9Result) Table() *Table {
	t := &Table{
		ID: "E9",
		Caption: fmt.Sprintf("Metadata storage — block directory (4 B/block floor) vs SCADDAR log (%d ops) + seeds",
			r.Config.Ops),
		Header: []string{"objects", "blocks/obj", "total blocks", "directory bytes", "scaddar bytes", "ratio"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			d(row.Objects), d(row.BlocksPer),
			fmt.Sprintf("%d", row.TotalBlocks),
			fmt.Sprintf("%d", row.DirectoryBytes),
			fmt.Sprintf("%d", row.ScaddarBytes),
			fmt.Sprintf("%.0fx", row.Ratio),
		})
	}
	return t
}
