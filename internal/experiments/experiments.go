// Package experiments implements the reproduction of every table and figure
// in the SCADDAR paper's evaluation, plus the quantitative claims its
// analysis sections make. Each experiment is a pure function from a
// configuration to a structured result; cmd/benchtables renders the results
// as tables and the root bench_test.go wraps them as Go benchmarks.
//
// Experiment index (see DESIGN.md for the full mapping):
//
//	E1  Figure 1 — naive-approach skew after two single-disk additions
//	E2  Section 5 — CoV of per-disk load vs. number of scaling operations
//	E3  RO1 — block-movement fractions vs. the optimal z_j, per strategy
//	E4  Section 4.3 — rule-of-thumb vs. exact max operations table
//	E5  AO1 — access-function cost vs. number of operations
//	E6  Lemmas 4.2/4.3 — empirical unfairness vs. the analytical bound
//	E7  online reorganization under live streams (Section 1/6 motivation)
//	E8  Section 6 — offset mirroring: availability under disk failures
package experiments

import (
	"fmt"
	"strings"

	"scaddar/internal/placement"
	"scaddar/internal/prng"
)

// BlockUniverse builds the standard experiment block population: nobj
// objects of blocksPer blocks each, with deterministic seeds.
func BlockUniverse(nobj, blocksPer int) []placement.BlockRef {
	blocks := make([]placement.BlockRef, 0, nobj*blocksPer)
	for o := 0; o < nobj; o++ {
		for i := 0; i < blocksPer; i++ {
			blocks = append(blocks, placement.BlockRef{Seed: uint64(o)*0x10001 + 11, Index: uint64(i)})
		}
	}
	return blocks
}

// X0FuncBits returns a block-randomness source of the given generator width
// built on SplitMix64 (truncated as needed), the experiments' default.
func X0FuncBits(bits uint) placement.X0Func {
	return placement.NewX0Func(func(seed uint64) prng.Source {
		return prng.Truncate(prng.NewSplitMix64(seed), bits)
	})
}

// Table is a rendered experiment result: a caption, a header row, and data
// rows, ready for text output.
type Table struct {
	ID      string
	Caption string
	Header  []string
	Rows    [][]string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Caption)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// RenderCSV formats the table as RFC-4180 CSV, with the experiment ID
// prefixed to every row so multiple tables concatenate into one file.
func (t *Table) RenderCSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		b.WriteString(csvEscape(t.ID))
		for _, cell := range cells {
			b.WriteByte(',')
			b.WriteString(csvEscape(cell))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// csvEscape quotes a cell when it contains CSV metacharacters.
func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// f3 formats a float with three decimals.
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }

// f4 formats a float with four decimals.
func f4(x float64) string { return fmt.Sprintf("%.4f", x) }

// d formats an int.
func d(x int) string { return fmt.Sprintf("%d", x) }
