package gateway

import (
	"testing"
	"time"

	"scaddar/internal/binproto"
	"scaddar/internal/cm"
)

// BenchmarkBinGatewayRead measures the binary lookup path end to end over
// real loopback TCP, against the same 8-disk/8-object/500-block fixture as
// BenchmarkGatewayRead. In the batch variants one benchmark iteration is
// ONE LOOKUP (batches of 64 are issued every 64 iterations), so ns/op and
// allocs/op compare directly against the HTTP benchmark's per-read numbers
// — that is the ≥10×-throughput, ≤2-allocs acceptance gate for this
// protocol, recorded in BENCH_9.json.
func BenchmarkBinGatewayRead(b *testing.B) {
	const batch = 64
	_, addr := newBinGateway(b, 8, 8, 500, nil, nil)
	dial := func(b *testing.B) *binproto.Client {
		b.Helper()
		c, err := binproto.Dial(addr, binproto.ClientConfig{DialTimeout: 5 * time.Second})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { c.Close() })
		return c
	}
	fill := func(addrs []cm.BlockAddr, base int) {
		for i := range addrs {
			n := base + i
			addrs[i] = cm.BlockAddr{Object: n % 8, Index: (n * 37) % 500}
		}
	}

	b.Run("single", func(b *testing.B) {
		c := dial(b)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, _, err := c.Locate(i%8, (i*37)%500); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("batch64", func(b *testing.B) {
		c := dial(b)
		addrs := make([]cm.BlockAddr, batch)
		out := make([]binproto.Result, batch)
		b.ReportAllocs()
		for i := 0; i < b.N; i += batch {
			fill(addrs, i)
			if _, err := c.LocateBatch(addrs, out); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("batch64-parallel", func(b *testing.B) {
		pool, err := binproto.DialPool(addr, 8, binproto.ClientConfig{DialTimeout: 5 * time.Second})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(pool.Close)
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			c := pool.Get()
			addrs := make([]cm.BlockAddr, batch)
			out := make([]binproto.Result, batch)
			i := 0
			for pb.Next() {
				if i%batch == 0 {
					fill(addrs, i)
					if _, err := c.LocateBatch(addrs, out); err != nil {
						b.Fatal(err)
					}
				}
				i++
			}
		})
	})
}
