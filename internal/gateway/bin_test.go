package gateway

import (
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scaddar/internal/binproto"
	"scaddar/internal/cm"
)

// newBinGateway wires a binary listener onto a fresh test gateway.
func newBinGateway(t testing.TB, n0, objects, blocks int, mutate func(*cm.Config), gmutate func(*Config)) (*Gateway, string) {
	t.Helper()
	g := newTestGateway(t, n0, objects, blocks, mutate, gmutate)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.ServeBin(ln); err != nil {
		t.Fatal(err)
	}
	return g, ln.Addr().String()
}

// TestBinReadMatchesHTTP cross-checks the two read surfaces: every block's
// binary answer must equal the HTTP answer and the snapshot's own Locate.
func TestBinReadMatchesHTTP(t *testing.T) {
	g, addr := newBinGateway(t, 6, 4, 80, nil, nil)
	c, err := binproto.Dial(addr, binproto.ClientConfig{RequestTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sn := g.Snapshot()
	for o := 0; o < 4; o++ {
		for i := 0; i < 80; i += 9 {
			want, err := sn.Locate(o, i)
			if err != nil {
				t.Fatal(err)
			}
			got, _, _, err := c.Locate(o, i)
			if err != nil {
				t.Fatalf("binary Locate(%d,%d): %v", o, i, err)
			}
			if got != want {
				t.Fatalf("binary Locate(%d,%d) = %d, snapshot says %d", o, i, got, want)
			}
			rec, body := doJSON(t, g.Handler(), "GET", fmt.Sprintf("/v1/objects/%d/blocks/%d", o, i), nil)
			if rec.Code != http.StatusOK {
				t.Fatalf("HTTP read %d/%d -> %d", o, i, rec.Code)
			}
			if int(body["disk"].(float64)) != got {
				t.Fatalf("block %d/%d: HTTP says disk %v, binary says %d", o, i, body["disk"], got)
			}
		}
	}
}

// TestBinMetricsOnGatewayRegistry asserts the binary path's counters land
// in the same registry the gateway serves at /v1/metrics.
func TestBinMetricsOnGatewayRegistry(t *testing.T) {
	g, addr := newBinGateway(t, 4, 2, 30, nil, nil)
	c, err := binproto.Dial(addr, binproto.ClientConfig{RequestTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, _, err := c.Locate(0, 0); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	g.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/metrics -> %d", rec.Code)
	}
	body := rec.Body.String()
	for _, metric := range []string{"bin_connections_total", "bin_frames_total", "bin_lookups_total"} {
		if !strings.Contains(body, metric) {
			t.Fatalf("/v1/metrics lacks %s", metric)
		}
	}
}

// TestBinGatewayCloseShutsListener makes sure the gateway tears the binary
// server down with itself.
func TestBinGatewayCloseShutsListener(t *testing.T) {
	g, addr := newBinGateway(t, 4, 2, 20, nil, nil)
	c, err := binproto.Dial(addr, binproto.ClientConfig{RequestTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	g.Close()
	if err := c.Ping(); err == nil {
		t.Fatal("binary connection survived gateway Close")
	}
	if _, err := binproto.Dial(addr, binproto.ClientConfig{DialTimeout: time.Second}); err == nil {
		t.Fatal("binary listener still accepting after gateway Close")
	}
}

// TestBinUnderReorg is the binary twin of TestGatewayUnderLoad: concurrent
// binary batch readers hammer the gateway while a scale-up and a
// disk-failure drill run, with oracle checks at every step — statuses are
// only ever OK/unknown/out-of-range, disks are in range for the echoed
// epoch, and once the dust settles every answer equals the snapshot's.
func TestBinUnderReorg(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short mode")
	}
	const objects, blocks = 10, 120
	g, addr := newBinGateway(t, 8, objects, blocks,
		func(c *cm.Config) { c.Redundancy = cm.RedundancyMirror },
		func(c *Config) { c.MailboxDepth = 256 })
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	var (
		stop       atomic.Bool
		violations atomic.Int64
		firstBad   atomic.Value
		lookups    atomic.Int64
		epochMoves atomic.Int64
	)
	fail := func(format string, args ...any) {
		violations.Add(1)
		firstBad.CompareAndSwap(nil, fmt.Sprintf(format, args...))
	}

	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := binproto.Dial(addr, binproto.ClientConfig{RequestTimeout: 10 * time.Second})
			if err != nil {
				fail("dial: %v", err)
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(2000 + w)))
			addrs := make([]cm.BlockAddr, 32)
			out := make([]binproto.Result, 32)
			lastEpoch := uint64(0)
			for !stop.Load() {
				for i := range addrs {
					// Deliberately stray out of the catalog and extent.
					addrs[i] = cm.BlockAddr{Object: rng.Intn(objects + 2), Index: rng.Intn(blocks + 30)}
				}
				epoch, err := c.LocateBatch(addrs, out)
				if err != nil {
					fail("batch: %v", err)
					return
				}
				lookups.Add(int64(len(addrs)))
				if epoch != lastEpoch {
					if epoch < lastEpoch {
						fail("epoch went backwards: %d after %d", epoch, lastEpoch)
					}
					epochMoves.Add(1)
					lastEpoch = epoch
				}
				for i, a := range addrs {
					switch out[i].Code {
					case 0:
						if a.Object >= objects || a.Index >= blocks {
							fail("out-of-catalog %d/%d answered OK", a.Object, a.Index)
						}
						// 8 disks + 2 added; no answer may ever name more.
						if out[i].Disk < 0 || out[i].Disk >= 10 {
							fail("block %d/%d on impossible disk %d", a.Object, a.Index, out[i].Disk)
						}
					case binproto.ErrCodeUnknownObject:
						if a.Object < objects {
							fail("catalog object %d reported unknown", a.Object)
						}
					case binproto.ErrCodeOutOfRange:
						if a.Object < objects && a.Index < blocks {
							fail("in-extent block %d/%d reported out of range", a.Object, a.Index)
						}
					default:
						fail("entry %d/%d: unexpected status %d", a.Object, a.Index, out[i].Code)
					}
				}
			}
		}(w)
	}

	post := func(path string) *http.Response {
		t.Helper()
		resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(`{"add": 2}`))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	waitStatus := func(what string, cond func(Status) bool) {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			if cond(g.Status()) {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		stop.Store(true)
		wg.Wait()
		t.Fatalf("timed out waiting for %s; status %+v", what, g.Status())
	}

	time.Sleep(20 * time.Millisecond)
	resp := post("/v1/scale")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("scale-up -> %d", resp.StatusCode)
	}
	resp.Body.Close()
	waitStatus("scale-up drain", func(st Status) bool { return !st.Reorganizing && st.Disks == 10 })

	for _, p := range []string{"/v1/disks/3/fail", "/v1/disks/3/repair"} {
		resp := post(p)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("%s -> %d", p, resp.StatusCode)
		}
		resp.Body.Close()
		time.Sleep(10 * time.Millisecond)
	}
	waitStatus("rebuild", func(st Status) bool { return !st.Degraded })

	time.Sleep(50 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if n := violations.Load(); n != 0 {
		t.Fatalf("%d oracle violations; first: %v", n, firstBad.Load())
	}
	if lookups.Load() == 0 {
		t.Fatal("binary load generator idle")
	}
	if epochMoves.Load() == 0 {
		t.Fatal("no reader ever observed the epoch change across the scale-up")
	}

	// Quiescent oracle: every block's binary answer equals the final
	// snapshot's Locate.
	c, err := binproto.Dial(addr, binproto.ClientConfig{RequestTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sn := g.Snapshot()
	addrs := make([]cm.BlockAddr, 0, objects*blocks)
	for o := 0; o < objects; o++ {
		for i := 0; i < blocks; i++ {
			addrs = append(addrs, cm.BlockAddr{Object: o, Index: i})
		}
	}
	out := make([]binproto.Result, len(addrs))
	epoch, err := c.LocateBatch(addrs, out)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != sn.Epoch() {
		t.Fatalf("final epoch %d, snapshot says %d", epoch, sn.Epoch())
	}
	for k, a := range addrs {
		want, err := sn.Locate(a.Object, a.Index)
		if err != nil {
			t.Fatal(err)
		}
		if out[k].Code != 0 || out[k].Disk != want {
			t.Fatalf("block %d/%d: binary %+v, snapshot disk %d", a.Object, a.Index, out[k], want)
		}
	}
}
