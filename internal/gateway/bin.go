package gateway

import (
	"net"

	"scaddar/internal/binproto"
)

// This file wires the binary lookup protocol (internal/binproto,
// docs/PROTOCOL.md) onto a gateway. The binary server needs exactly two
// things from the gateway — the atomic locator snapshot and the draining
// flag — so the same placement answers flow out of both listeners: an HTTP
// read and a binary lookup racing the same reorganization see the same
// epoch-tagged snapshot pointer.

// ServeBin starts a binary lookup server over this gateway's snapshot on
// the listener, accepting in a background goroutine. The server shares the
// gateway's metrics registry (bin_* counters and histograms land next to
// the gateway_* ones), advertises the bound address as binAddr in
// GET /v1/status so clients can discover the fast read path, and is shut
// down when the gateway closes.
func (g *Gateway) ServeBin(ln net.Listener) (*binproto.Server, error) {
	bs, err := binproto.NewServer(binproto.ServerConfig{
		Snapshot: g.Snapshot,
		Draining: g.Draining,
		Registry: g.reg,
		Logf:     g.cfg.Logf,
	})
	if err != nil {
		return nil, err
	}
	go func() {
		if err := bs.Serve(ln); err != nil {
			g.logf("gateway: binary listener: %v", err)
		}
	}()
	g.binAddr.Store(ln.Addr().String())
	g.onClose(bs.Close)
	return bs, nil
}
