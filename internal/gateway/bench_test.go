package gateway

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

// BenchmarkGatewayRead measures the HTTP hot path end to end: mux dispatch,
// one atomic snapshot load, a SafeLocator lookup, and JSON encoding. The
// parallel variant is the number that matters — the read path holds no lock,
// so it should scale with GOMAXPROCS.
func BenchmarkGatewayRead(b *testing.B) {
	g := newTestGateway(b, 8, 8, 500, nil, nil)
	h := g.Handler()
	paths := make([]string, 256)
	for i := range paths {
		paths[i] = fmt.Sprintf("/v1/objects/%d/blocks/%d", i%8, (i*37)%500)
	}

	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest("GET", paths[i%len(paths)], nil)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("read = %d", rec.Code)
			}
		}
	})

	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				req := httptest.NewRequest("GET", paths[i%len(paths)], nil)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					b.Fatalf("read = %d", rec.Code)
				}
				i++
			}
		})
	})
}
