package gateway

// HTTP handlers for the streaming data plane (stream.go): the chunked
// round-paced session stream and the snapshot+delta locator side channel.

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"time"

	"scaddar/internal/bufpool"
	"scaddar/internal/cm"
	"scaddar/internal/dataplane"
)

// maxDeltaWait bounds a locator delta long-poll: an idle feed parks the
// request at most this long before answering with whatever it has (usually
// nothing), so clients see liveness without the server pinning connections
// forever.
const maxDeltaWait = 30 * time.Second

// handleStream serves a session's playback as a chunked stream of CRC-framed
// blocks, paced by the round driver: one data frame per round while the
// client keeps up, then one end frame saying why the stream finished (done,
// stopped, or evicted for falling behind). Exempt from the request deadline
// (see Handler); the response lives as long as the session plays.
func (g *Gateway) handleStream(w http.ResponseWriter, r *http.Request) {
	id, err := pathInt(r, "id")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError,
			map[string]string{"error": "gateway: response writer cannot stream"})
		return
	}
	// Attach through the mailbox so registration is serialized with Tick:
	// delivery starts with the next round's block, never between a state
	// check and the map insert. Admission gets a bounded deadline even
	// though the stream itself has none.
	actx, cancel := context.WithTimeout(r.Context(), g.cfg.RequestTimeout)
	defer cancel()
	// The discard hook compensates an attach that lands after this handler
	// has already reported a timeout: without it the phantom consumer holds
	// ErrStreamAttached against every reconnect until eviction. Detach only
	// — the client saw a 504 and is retrying this same session, so the
	// stream must keep playing (unattended, so no byte work) for the retry
	// to pick up; stopping it here would hand the reconnect a dead stream.
	discard := func(v any) {
		g.dp.detach(id, v.(*dataplane.Session))
	}
	v, err := g.execDiscard(actx, false, func(s *cm.Server) (any, error) {
		st, err := s.Stream(id)
		if err != nil {
			return nil, err
		}
		obj, err := s.Object(st.Object)
		if err != nil {
			return nil, err
		}
		sess := dataplane.NewSession(st.ID, st.Object, obj.BlockBytes, dataplane.SessionBufferConfig{
			Buffer:     g.cfg.StreamBuffer,
			EvictAfter: g.cfg.StreamEvictAfter,
		})
		// A stream that already finished gets an immediate end frame.
		if st.State != cm.StreamPlaying && st.State != cm.StreamPaused {
			reason := dataplane.CloseStopped
			if st.State == cm.StreamDone {
				reason = dataplane.CloseDone
			}
			sess.Close(reason)
		}
		if err := g.dp.attach(sess); err != nil {
			return nil, err
		}
		// A paused-open session starts playing only now, with its consumer
		// in place — the next round's block is the first one paced out, so
		// nothing was ever delivered to nobody. Resuming after attach keeps
		// a lost 409 race from starting playback for the loser.
		if st.State == cm.StreamPaused {
			if err := s.ResumeStream(id); err != nil {
				g.dp.detach(id, sess)
				return nil, err
			}
		}
		return sess, nil
	}, discard)
	if err != nil {
		g.writeError(w, err)
		return
	}
	sess := v.(*dataplane.Session)
	// Detach first (Deliver holds the same lock, so nothing lands after),
	// then sweep whatever the drain loop left buffered back to the pool —
	// the disconnect/eviction edge of the payload ownership chain.
	defer func() {
		g.dp.detach(id, sess)
		sess.ReleaseBuffered()
	}()
	g.m.streamsAttached.Inc()

	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	// The write scratch is pooled (binproto's per-conn reuse idiom) and
	// sized for a full drain burst: every buffered chunk plus an end frame,
	// each with its frame header. Drains gather all currently buffered
	// chunks into one Write+Flush pair instead of paying a syscall pair per
	// chunk — at E19 scale that turns 10k flushes per round into one per
	// awake session.
	frameCap := int(sess.BlockBytes()) + 64
	wb := bufpool.Get((cap(sess.Chunks()) + 1) * frameCap)
	defer wb.Release()
	for {
		select {
		case c, open := <-sess.Chunks():
			buf := wb.Data()[:0]
			// Gather: the received chunk, then everything else already
			// buffered, then the end frame if the channel closed behind them.
			for {
				if !open {
					buf = dataplane.AppendEndFrame(buf, sess.Reason())
					if _, werr := w.Write(buf); werr == nil {
						g.m.streamFlushes.Inc()
						flusher.Flush()
					}
					return
				}
				buf = dataplane.AppendDataFrame(buf, c.Index, c.Payload.Data)
				c.Payload.Release()
				select {
				case c, open = <-sess.Chunks():
					continue
				default:
				}
				break
			}
			if _, werr := w.Write(buf); werr != nil {
				// The connection is gone; stop the server-side stream so it
				// does not play on (and burn round bandwidth) for nobody.
				g.stopAbandonedStream(id, sess)
				return
			}
			g.m.streamBytes.Add(uint64(len(buf)))
			g.m.streamFlushes.Inc()
			flusher.Flush()
		case <-r.Context().Done():
			g.stopAbandonedStream(id, sess)
			return
		}
	}
}

// stopAbandonedStream ends the server-side stream of a client that
// disconnected mid-playback. Best-effort: the gateway may be draining or the
// mailbox full, in which case the stream plays out unattended (WantsPayload
// is already false once the session detaches).
func (g *Gateway) stopAbandonedStream(id int, sess *dataplane.Session) {
	if sess.Closed() {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.RequestTimeout)
	defer cancel()
	_, _ = g.exec(ctx, false, func(s *cm.Server) (any, error) {
		g.dp.closeStream(id, dataplane.CloseStopped)
		return nil, s.StopStream(id)
	})
}

// handleLocatorSnapshot serves the cached full locator snapshot — the
// baseline of the snapshot+delta protocol. One atomic load, no mailbox: ten
// thousand clients bootstrapping cost the round driver nothing.
func (g *Gateway) handleLocatorSnapshot(w http.ResponseWriter, r *http.Request) {
	g.m.snapshotFetches.Inc()
	writeJSON(w, http.StatusOK, g.dp.snap.Load())
}

// deltaResponse is the payload of the locator delta long-poll.
type deltaResponse struct {
	// Deltas are the feed entries after the requested sequence, in order.
	Deltas []dataplane.Delta `json:"deltas"`
	// Seq is the newest published sequence; poll again with after=Seq.
	Seq uint64 `json:"seq"`
}

// handleLocatorDeltas long-polls the locator feed: ?after=N parks until a
// delta newer than N exists (bounded by maxDeltaWait and the client's own
// context), then returns everything newer. 410 Gone when N has fallen out of
// the bounded ring — the client refetches the snapshot and resubscribes.
func (g *Gateway) handleLocatorDeltas(w http.ResponseWriter, r *http.Request) {
	after, err := queryUint(r, "after")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	g.m.deltaPolls.Inc()
	ctx, cancel := context.WithTimeout(r.Context(), maxDeltaWait)
	defer cancel()
	deltas, seq, derr := g.dp.feed.Wait(ctx, after)
	if derr != nil {
		if errors.Is(derr, dataplane.ErrDeltaGone) {
			writeJSON(w, http.StatusGone, map[string]any{"error": derr.Error(), "seq": seq})
			return
		}
		g.writeError(w, derr)
		return
	}
	if deltas == nil {
		deltas = []dataplane.Delta{}
	}
	writeJSON(w, http.StatusOK, deltaResponse{Deltas: deltas, Seq: seq})
}

// queryUint parses an optional unsigned query parameter (absent means 0).
func queryUint(r *http.Request, name string) (uint64, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return 0, nil
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, errors.New("bad " + name + " " + strconv.Quote(s))
	}
	return v, nil
}
