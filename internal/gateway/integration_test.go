package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scaddar/internal/cm"
)

// TestGatewayUnderLoad is the -race integration test from the issue: hammer
// the gateway over real HTTP with concurrent sessions and block lookups
// while a scale-up, a disk-failure drill, and a scale-down all run mid-load.
// The invariants: the read path never answers 5xx (503 is the only allowed
// service answer, and only on the control plane), admission rejects instead
// of overcommitting, and at the end no block has been lost.
func TestGatewayUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short mode")
	}
	g := newTestGateway(t, 8, 12, 150,
		func(c *cm.Config) { c.Redundancy = cm.RedundancyMirror },
		func(c *Config) { c.MailboxDepth = 256 })
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()
	client := ts.Client()

	capStreams := int(0.8 * float64(cm.DefaultConfig().Profile.BlocksPerRound(
		cm.DefaultConfig().Round, cm.DefaultConfig().BlockBytes)) * 8)

	post := func(path string, body string) (*http.Response, error) {
		req, err := http.NewRequest("POST", ts.URL+path, strings.NewReader(body))
		if err != nil {
			return nil, err
		}
		return client.Do(req)
	}

	var (
		stop      atomic.Bool
		badStatus atomic.Int64 // unexpected statuses observed by workers
		opened    atomic.Int64
		lookups   atomic.Int64
		rejected  atomic.Int64
		firstBad  atomic.Value // string describing the first violation
	)
	fail := func(format string, args ...any) {
		badStatus.Add(1)
		firstBad.CompareAndSwap(nil, fmt.Sprintf(format, args...))
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			for !stop.Load() {
				// Concurrent block lookups: must only ever be 200/404.
				for i := 0; i < 10; i++ {
					obj, idx := rng.Intn(14), rng.Intn(170) // deliberately strays out of range
					resp, err := client.Get(fmt.Sprintf("%s/v1/objects/%d/blocks/%d", ts.URL, obj, idx))
					if err != nil {
						fail("read transport error: %v", err)
						return
					}
					resp.Body.Close()
					lookups.Add(1)
					if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
						fail("read %d/%d -> %d", obj, idx, resp.StatusCode)
					}
				}
				// Session lifecycle on the control plane: 503 is legitimate
				// backpressure, anything else unexpected is a bug.
				resp, err := post("/v1/sessions", fmt.Sprintf(`{"object": %d}`, rng.Intn(12)))
				if err != nil {
					fail("open transport error: %v", err)
					return
				}
				if resp.StatusCode == http.StatusServiceUnavailable {
					if resp.Header.Get("Retry-After") == "" {
						fail("503 without Retry-After")
					}
					resp.Body.Close()
					rejected.Add(1)
					time.Sleep(2 * time.Millisecond)
					continue
				}
				if resp.StatusCode != http.StatusCreated {
					fail("open -> %d", resp.StatusCode)
					resp.Body.Close()
					continue
				}
				var sess struct {
					Session int `json:"session"`
					Blocks  int `json:"blocks"`
				}
				if err := json.NewDecoder(resp.Body).Decode(&sess); err != nil {
					fail("open decode: %v", err)
					resp.Body.Close()
					continue
				}
				resp.Body.Close()
				opened.Add(1)

				if rng.Intn(2) == 0 {
					resp, err := post(fmt.Sprintf("/v1/sessions/%d/seek", sess.Session),
						fmt.Sprintf(`{"position": %d}`, rng.Intn(sess.Blocks)))
					if err == nil {
						// Seek may race stream completion: 404 is fine then.
						if resp.StatusCode != http.StatusOK &&
							resp.StatusCode != http.StatusNotFound &&
							resp.StatusCode != http.StatusServiceUnavailable {
							fail("seek -> %d", resp.StatusCode)
						}
						resp.Body.Close()
					}
				}
				time.Sleep(time.Duration(rng.Intn(4)) * time.Millisecond)

				req, _ := http.NewRequest("DELETE", fmt.Sprintf("%s/v1/sessions/%d", ts.URL, sess.Session), nil)
				if resp, err := client.Do(req); err == nil {
					if resp.StatusCode != http.StatusNoContent &&
						resp.StatusCode != http.StatusNotFound &&
						resp.StatusCode != http.StatusServiceUnavailable {
						fail("close -> %d", resp.StatusCode)
					}
					resp.Body.Close()
				}
			}
		}(w)
	}

	waitMetrics := func(what string, cond func(Status) bool) {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			if cond(g.Status()) {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		stop.Store(true)
		wg.Wait()
		t.Fatalf("timed out waiting for %s; status %+v", what, g.Status())
	}
	mustAccept := func(resp *http.Response, err error, what string) {
		t.Helper()
		if err != nil {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("%s: %v", what, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("%s -> %d", what, resp.StatusCode)
		}
	}

	// Let the workers build up load, then run the maintenance sequence.
	time.Sleep(30 * time.Millisecond)

	resp, err := post("/v1/scale", `{"add": 2}`)
	mustAccept(resp, err, "scale-up")
	waitMetrics("scale-up drain", func(st Status) bool {
		return !st.Reorganizing && st.Disks == 10
	})

	resp, err = post("/v1/disks/3/fail", "")
	mustAccept(resp, err, "fail disk")
	time.Sleep(20 * time.Millisecond)
	resp, err = post("/v1/disks/3/repair", "")
	mustAccept(resp, err, "repair disk")
	waitMetrics("rebuild", func(st Status) bool { return !st.Degraded })

	resp, err = post("/v1/scale", `{"remove": [1, 8]}`)
	mustAccept(resp, err, "scale-down")
	waitMetrics("scale-down drain", func(st Status) bool {
		return !st.Reorganizing && st.Disks == 8
	})

	// Keep hammering the settled array a while before stopping, so the
	// post-reorganization read path sees real traffic too.
	time.Sleep(150 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if n := badStatus.Load(); n != 0 {
		t.Fatalf("%d protocol violations; first: %v", n, firstBad.Load())
	}
	if opened.Load() == 0 || lookups.Load() == 0 {
		t.Fatalf("load generator idle: %d sessions, %d lookups", opened.Load(), lookups.Load())
	}

	// No overcommitment ever: admitted streams stay within capacity.
	st := g.Status()
	if st.ActiveStreams > capStreams {
		t.Errorf("overcommitted: %d active streams > capacity %d", st.ActiveStreams, capStreams)
	}
	if st.Server.UnrecoverableReads != 0 {
		t.Errorf("unrecoverable reads under mirror redundancy: %d", st.Server.UnrecoverableReads)
	}

	// Final invariant: every block of every object is still where the
	// placement says, nothing lost through two reorganizations and a drill.
	if _, err := g.Exec(context.Background(), func(s *cm.Server) (any, error) {
		if err := s.VerifyIntegrity(); err != nil {
			return nil, err
		}
		if lost := s.LostBlocks(); lost != 0 {
			return nil, fmt.Errorf("%d blocks lost", lost)
		}
		return nil, nil
	}); err != nil {
		t.Fatalf("post-load verification: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := g.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	t.Logf("load summary: %d sessions opened, %d rejected (503), %d lookups, %d rounds",
		opened.Load(), rejected.Load(), lookups.Load(), g.Status().Rounds)
}
