package gateway

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"scaddar/internal/cm"
	"scaddar/internal/dataplane"
)

// newStreamGateway builds a gateway whose server has real payload stores
// attached, plus a live httptest server over its handler.
func newStreamGateway(t testing.TB, n0, objects, blocks int, gmutate func(*Config)) (*Gateway, *httptest.Server) {
	t.Helper()
	srv := newTestServer(t, n0, objects, blocks, func(c *cm.Config) { c.BlockBytes = 4 << 10 })
	mgr, err := dataplane.NewManager(t.TempDir(), dataplane.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	if err := srv.AttachPayloads(mgr.Factory(), dataplane.SeededContent); err != nil {
		t.Fatal(err)
	}
	gcfg := Config{Factory: testFactory, Round: 2 * time.Millisecond}
	if gmutate != nil {
		gmutate(&gcfg)
	}
	g, err := New(srv, gcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)
	return g, ts
}

// openSession opens a streaming session for an object and returns its ID.
func openSession(t testing.TB, base string, object int) int {
	t.Helper()
	body := strings.NewReader(fmt.Sprintf(`{"object":%d}`, object))
	resp, err := http.Post(base+"/v1/sessions", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("open session: %d %s", resp.StatusCode, b)
	}
	var out struct {
		Session int `json:"session"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Session
}

// fetchWireSnapshot fetches the locator snapshot endpoint.
func fetchWireSnapshot(t testing.TB, base string) *dataplane.Snapshot {
	t.Helper()
	resp, err := http.Get(base + "/v1/locator/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: status %d", resp.StatusCode)
	}
	var snap dataplane.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return &snap
}

// TestStreamEndToEnd plays one session over HTTP: every frame must verify
// against the content oracle at its block index, frames must be in playback
// order, and the stream must terminate with a "done" end frame.
func TestStreamEndToEnd(t *testing.T) {
	_, ts := newStreamGateway(t, 4, 2, 8, nil)
	snap := fetchWireSnapshot(t, ts.URL)
	if len(snap.Objects) != 2 {
		t.Fatalf("snapshot has %d objects, want 2", len(snap.Objects))
	}
	obj := snap.Objects[0]
	id := openSession(t, ts.URL, obj.ID)

	resp, err := http.Get(fmt.Sprintf("%s/v1/sessions/%d/stream", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: status %d", resp.StatusCode)
	}
	br := bufio.NewReader(resp.Body)
	last := -1
	got := 0
	for {
		f, err := dataplane.ReadFrame(br)
		if err != nil {
			t.Fatalf("frame %d: %v", got, err)
		}
		if f.End {
			if f.Reason != dataplane.CloseDone {
				t.Fatalf("end reason %v, want done", f.Reason)
			}
			break
		}
		if f.Index <= last {
			t.Fatalf("frame order: index %d after %d", f.Index, last)
		}
		if int64(len(f.Data)) != obj.BlockBytes {
			t.Fatalf("frame %d: %d bytes, want %d", f.Index, len(f.Data), obj.BlockBytes)
		}
		if !dataplane.VerifySeededContent(f.Data, obj.Seed, uint64(f.Index)) {
			t.Fatalf("frame %d: bytes do not match the oracle", f.Index)
		}
		last = f.Index
		got++
	}
	if got == 0 {
		t.Fatal("stream delivered no frames")
	}
	if last != obj.Blocks-1 {
		t.Fatalf("stream ended at block %d, want %d", last, obj.Blocks-1)
	}
}

// TestStreamPausedOpen pins the paused-open contract: a session opened with
// {"paused": true} holds its admission slot but is not served — rounds may
// pass, nothing is delivered — and the stream attach resumes it, so the
// consumer receives every block from index 0 with no admission-to-attach
// head drop.
func TestStreamPausedOpen(t *testing.T) {
	g, ts := newStreamGateway(t, 4, 1, 8, nil)
	snap := fetchWireSnapshot(t, ts.URL)
	obj := snap.Objects[0]

	body := strings.NewReader(fmt.Sprintf(`{"object":%d, "paused": true}`, obj.ID))
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Session int    `json:"session"`
		State   string `json:"state"`
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("open paused: status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if out.State != "paused" {
		t.Fatalf("opened state %q, want paused", out.State)
	}

	// Let the pacer run: a paused stream must not advance or deliver.
	start := g.Status().Rounds
	for g.Status().Rounds < start+5 {
		time.Sleep(time.Millisecond)
	}
	if n := g.Status().Gateway.StreamChunks; n != 0 {
		t.Fatalf("paused stream delivered %d chunks before attach", n)
	}
	v, err := g.exec(t.Context(), false, func(s *cm.Server) (any, error) {
		return s.Stream(out.Session)
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := v.(*cm.Stream); st.State != cm.StreamPaused || st.Position != 0 || st.Served != 0 {
		t.Fatalf("before attach: state %v position %d served %d, want paused 0 0", st.State, st.Position, st.Served)
	}

	// Attach resumes; every block arrives from index 0.
	sresp, err := http.Get(fmt.Sprintf("%s/v1/sessions/%d/stream", ts.URL, out.Session))
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("stream: status %d", sresp.StatusCode)
	}
	br := bufio.NewReader(sresp.Body)
	next := 0
	for {
		f, err := dataplane.ReadFrame(br)
		if err != nil {
			t.Fatalf("frame %d: %v", next, err)
		}
		if f.End {
			if f.Reason != dataplane.CloseDone {
				t.Fatalf("end reason %v, want done", f.Reason)
			}
			break
		}
		if f.Index != next {
			t.Fatalf("frame index %d, want %d (paused open must not drop head chunks)", f.Index, next)
		}
		if !dataplane.VerifySeededContent(f.Data, obj.Seed, uint64(f.Index)) {
			t.Fatalf("frame %d: bytes do not match the oracle", f.Index)
		}
		next++
	}
	if next != obj.Blocks {
		t.Fatalf("received %d blocks, want %d", next, obj.Blocks)
	}
}

// TestStreamSecondConsumerConflicts verifies that a session's stream admits
// exactly one consumer.
func TestStreamSecondConsumerConflicts(t *testing.T) {
	_, ts := newStreamGateway(t, 4, 1, 400, nil)
	snap := fetchWireSnapshot(t, ts.URL)
	id := openSession(t, ts.URL, snap.Objects[0].ID)

	url := fmt.Sprintf("%s/v1/sessions/%d/stream", ts.URL, id)
	first, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer first.Body.Close()
	if first.StatusCode != http.StatusOK {
		t.Fatalf("first consumer: status %d", first.StatusCode)
	}
	second, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Body.Close()
	if second.StatusCode != http.StatusConflict {
		t.Fatalf("second consumer: status %d, want 409", second.StatusCode)
	}
	// Unknown sessions are a clean 404, not a hung stream.
	resp, err := http.Get(ts.URL + "/v1/sessions/99999/stream")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session: status %d, want 404", resp.StatusCode)
	}
}

// TestStreamSlowClientEvicted opens a stream and never reads it: once the
// socket and session buffers fill, every round is a deadline miss, and the
// consecutive-miss limit must evict the session rather than stall the round
// driver. The unread response must end with an "evicted" frame.
func TestStreamSlowClientEvicted(t *testing.T) {
	g, ts := newStreamGateway(t, 4, 1, 100000, func(c *Config) {
		c.StreamBuffer = 1
		c.StreamEvictAfter = 4
	})
	snap := fetchWireSnapshot(t, ts.URL)
	id := openSession(t, ts.URL, snap.Objects[0].ID)

	resp, err := http.Get(fmt.Sprintf("%s/v1/sessions/%d/stream", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	waitStatus(t, g, "slow client eviction", func(st Status) bool {
		return st.Gateway.StreamEvictions >= 1
	})
	if g.Status().Gateway.StreamMisses < 4 {
		t.Fatalf("misses %d, want >= 4", g.Status().Gateway.StreamMisses)
	}
	// Drain what the socket buffered; the tail must be the evicted frame.
	br := bufio.NewReader(resp.Body)
	for {
		f, err := dataplane.ReadFrame(br)
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
		if f.End {
			if f.Reason != dataplane.CloseEvicted {
				t.Fatalf("end reason %v, want evicted", f.Reason)
			}
			break
		}
	}
	// The server-side stream must be stopped, not playing for nobody.
	waitStatus(t, g, "stream stop after eviction", func(st Status) bool {
		return st.ActiveStreams == 0
	})
}

// TestLocatorDeltaTracking drives a scale-up while a client tracks placement
// purely through the snapshot+delta side channel; after the reorganization
// drains, the client's locator must agree with the gateway's snapshot for
// every block, without one per-block request during the drain.
func TestLocatorDeltaTracking(t *testing.T) {
	g, ts := newStreamGateway(t, 4, 2, 200, nil)
	loc := dataplane.NewClientLocator(testFactory)
	snap := fetchWireSnapshot(t, ts.URL)
	if err := loc.ApplySnapshot(snap); err != nil {
		t.Fatal(err)
	}

	rec, out := doJSON(t, g.Handler(), http.MethodPost, "/v1/scale", map[string]any{"add": 2})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("scale: %d %v", rec.Code, out)
	}

	// Follow the feed until the post-scale baseline (N=6, not reorganizing)
	// has been applied.
	deadline := time.Now().Add(30 * time.Second)
	after := loc.Seq()
	for loc.N() != 6 || loc.Reorganizing() || loc.PendingCount() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("reorg never converged: n=%d reorg=%v pending=%d",
				loc.N(), loc.Reorganizing(), loc.PendingCount())
		}
		resp, err := http.Get(fmt.Sprintf("%s/v1/locator/deltas?after=%d", ts.URL, after))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			t.Fatalf("deltas: status %d", resp.StatusCode)
		}
		var dr deltaResponse
		if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		for _, d := range dr.Deltas {
			if err := loc.Apply(d); err != nil {
				t.Fatalf("apply delta %d (%s): %v", d.Seq, d.Kind, err)
			}
		}
		after = dr.Seq
	}

	// The tracked locator must agree with the server's everywhere.
	sn := g.Snapshot()
	for _, o := range snap.Objects {
		for idx := 0; idx < o.Blocks; idx++ {
			want, err := sn.Locate(o.ID, idx)
			if err != nil {
				t.Fatal(err)
			}
			got, err := loc.Locate(o.ID, idx)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("object %d block %d: client says disk %d, server %d", o.ID, idx, got, want)
			}
		}
	}
	if g.Status().Gateway.DeltasPublished == 0 {
		t.Fatal("no deltas were published during the reorganization")
	}

	// Malformed cursors are rejected, not treated as zero.
	resp, err := http.Get(ts.URL + "/v1/locator/deltas?after=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad cursor: status %d, want 400", resp.StatusCode)
	}
}

// TestStreamSurvivesScaleUp plays a session across a live scale-up: chunks
// must keep verifying against the oracle while blocks migrate under the
// stream.
func TestStreamSurvivesScaleUp(t *testing.T) {
	g, ts := newStreamGateway(t, 4, 1, 60, nil)
	snap := fetchWireSnapshot(t, ts.URL)
	obj := snap.Objects[0]
	id := openSession(t, ts.URL, obj.ID)

	resp, err := http.Get(fmt.Sprintf("%s/v1/sessions/%d/stream", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	rec, out := doJSON(t, g.Handler(), http.MethodPost, "/v1/scale", map[string]any{"add": 2})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("scale: %d %v", rec.Code, out)
	}

	br := bufio.NewReader(resp.Body)
	frames := 0
	for {
		f, err := dataplane.ReadFrame(br)
		if err != nil {
			t.Fatalf("frame: %v", err)
		}
		if f.End {
			if f.Reason != dataplane.CloseDone {
				t.Fatalf("end reason %v, want done", f.Reason)
			}
			break
		}
		if !dataplane.VerifySeededContent(f.Data, obj.Seed, uint64(f.Index)) {
			t.Fatalf("frame %d: bytes do not match the oracle", f.Index)
		}
		frames++
	}
	if frames == 0 {
		t.Fatal("no frames before completion")
	}
	waitStatus(t, g, "scale-up drain", func(st Status) bool { return !st.Reorganizing && st.Disks == 6 })
}
